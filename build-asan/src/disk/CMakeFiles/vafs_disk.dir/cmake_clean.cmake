file(REMOVE_RECURSE
  "CMakeFiles/vafs_disk.dir/disk.cc.o"
  "CMakeFiles/vafs_disk.dir/disk.cc.o.d"
  "CMakeFiles/vafs_disk.dir/disk_array.cc.o"
  "CMakeFiles/vafs_disk.dir/disk_array.cc.o.d"
  "CMakeFiles/vafs_disk.dir/disk_model.cc.o"
  "CMakeFiles/vafs_disk.dir/disk_model.cc.o.d"
  "libvafs_disk.a"
  "libvafs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
