file(REMOVE_RECURSE
  "libvafs_disk.a"
)
