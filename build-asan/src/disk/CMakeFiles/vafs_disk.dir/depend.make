# Empty dependencies file for vafs_disk.
# This may be replaced when dependencies are built.
