# Empty dependencies file for vafs_rope.
# This may be replaced when dependencies are built.
