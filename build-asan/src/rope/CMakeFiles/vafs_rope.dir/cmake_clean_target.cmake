file(REMOVE_RECURSE
  "libvafs_rope.a"
)
