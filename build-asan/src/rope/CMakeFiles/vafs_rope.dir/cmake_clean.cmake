file(REMOVE_RECURSE
  "CMakeFiles/vafs_rope.dir/rope.cc.o"
  "CMakeFiles/vafs_rope.dir/rope.cc.o.d"
  "CMakeFiles/vafs_rope.dir/rope_server.cc.o"
  "CMakeFiles/vafs_rope.dir/rope_server.cc.o.d"
  "libvafs_rope.a"
  "libvafs_rope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_rope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
