# CMake generated Testfile for 
# Source directory: /root/repo/src/rope
# Build directory: /root/repo/build-asan/src/rope
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
