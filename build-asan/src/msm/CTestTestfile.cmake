# CMake generated Testfile for 
# Source directory: /root/repo/src/msm
# Build directory: /root/repo/build-asan/src/msm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
