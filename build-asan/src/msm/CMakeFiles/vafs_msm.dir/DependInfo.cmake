
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msm/interleaved.cc" "src/msm/CMakeFiles/vafs_msm.dir/interleaved.cc.o" "gcc" "src/msm/CMakeFiles/vafs_msm.dir/interleaved.cc.o.d"
  "/root/repo/src/msm/recorder.cc" "src/msm/CMakeFiles/vafs_msm.dir/recorder.cc.o" "gcc" "src/msm/CMakeFiles/vafs_msm.dir/recorder.cc.o.d"
  "/root/repo/src/msm/reorganizer.cc" "src/msm/CMakeFiles/vafs_msm.dir/reorganizer.cc.o" "gcc" "src/msm/CMakeFiles/vafs_msm.dir/reorganizer.cc.o.d"
  "/root/repo/src/msm/scattering_repair.cc" "src/msm/CMakeFiles/vafs_msm.dir/scattering_repair.cc.o" "gcc" "src/msm/CMakeFiles/vafs_msm.dir/scattering_repair.cc.o.d"
  "/root/repo/src/msm/service_scheduler.cc" "src/msm/CMakeFiles/vafs_msm.dir/service_scheduler.cc.o" "gcc" "src/msm/CMakeFiles/vafs_msm.dir/service_scheduler.cc.o.d"
  "/root/repo/src/msm/strand_store.cc" "src/msm/CMakeFiles/vafs_msm.dir/strand_store.cc.o" "gcc" "src/msm/CMakeFiles/vafs_msm.dir/strand_store.cc.o.d"
  "/root/repo/src/msm/striped.cc" "src/msm/CMakeFiles/vafs_msm.dir/striped.cc.o" "gcc" "src/msm/CMakeFiles/vafs_msm.dir/striped.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/vafs_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/vafs_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/disk/CMakeFiles/vafs_disk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/media/CMakeFiles/vafs_media.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/vafs_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/layout/CMakeFiles/vafs_layout.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/vafs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
