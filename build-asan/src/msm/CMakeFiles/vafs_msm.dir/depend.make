# Empty dependencies file for vafs_msm.
# This may be replaced when dependencies are built.
