file(REMOVE_RECURSE
  "CMakeFiles/vafs_msm.dir/interleaved.cc.o"
  "CMakeFiles/vafs_msm.dir/interleaved.cc.o.d"
  "CMakeFiles/vafs_msm.dir/recorder.cc.o"
  "CMakeFiles/vafs_msm.dir/recorder.cc.o.d"
  "CMakeFiles/vafs_msm.dir/reorganizer.cc.o"
  "CMakeFiles/vafs_msm.dir/reorganizer.cc.o.d"
  "CMakeFiles/vafs_msm.dir/scattering_repair.cc.o"
  "CMakeFiles/vafs_msm.dir/scattering_repair.cc.o.d"
  "CMakeFiles/vafs_msm.dir/service_scheduler.cc.o"
  "CMakeFiles/vafs_msm.dir/service_scheduler.cc.o.d"
  "CMakeFiles/vafs_msm.dir/strand_store.cc.o"
  "CMakeFiles/vafs_msm.dir/strand_store.cc.o.d"
  "CMakeFiles/vafs_msm.dir/striped.cc.o"
  "CMakeFiles/vafs_msm.dir/striped.cc.o.d"
  "libvafs_msm.a"
  "libvafs_msm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_msm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
