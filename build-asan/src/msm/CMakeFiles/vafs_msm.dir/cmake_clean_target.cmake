file(REMOVE_RECURSE
  "libvafs_msm.a"
)
