
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/devices.cc" "src/media/CMakeFiles/vafs_media.dir/devices.cc.o" "gcc" "src/media/CMakeFiles/vafs_media.dir/devices.cc.o.d"
  "/root/repo/src/media/media.cc" "src/media/CMakeFiles/vafs_media.dir/media.cc.o" "gcc" "src/media/CMakeFiles/vafs_media.dir/media.cc.o.d"
  "/root/repo/src/media/silence.cc" "src/media/CMakeFiles/vafs_media.dir/silence.cc.o" "gcc" "src/media/CMakeFiles/vafs_media.dir/silence.cc.o.d"
  "/root/repo/src/media/sources.cc" "src/media/CMakeFiles/vafs_media.dir/sources.cc.o" "gcc" "src/media/CMakeFiles/vafs_media.dir/sources.cc.o.d"
  "/root/repo/src/media/vbr_source.cc" "src/media/CMakeFiles/vafs_media.dir/vbr_source.cc.o" "gcc" "src/media/CMakeFiles/vafs_media.dir/vbr_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/vafs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
