# Empty dependencies file for vafs_media.
# This may be replaced when dependencies are built.
