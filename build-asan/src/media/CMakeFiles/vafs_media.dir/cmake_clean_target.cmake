file(REMOVE_RECURSE
  "libvafs_media.a"
)
