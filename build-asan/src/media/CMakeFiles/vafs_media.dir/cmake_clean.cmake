file(REMOVE_RECURSE
  "CMakeFiles/vafs_media.dir/devices.cc.o"
  "CMakeFiles/vafs_media.dir/devices.cc.o.d"
  "CMakeFiles/vafs_media.dir/media.cc.o"
  "CMakeFiles/vafs_media.dir/media.cc.o.d"
  "CMakeFiles/vafs_media.dir/silence.cc.o"
  "CMakeFiles/vafs_media.dir/silence.cc.o.d"
  "CMakeFiles/vafs_media.dir/sources.cc.o"
  "CMakeFiles/vafs_media.dir/sources.cc.o.d"
  "CMakeFiles/vafs_media.dir/vbr_source.cc.o"
  "CMakeFiles/vafs_media.dir/vbr_source.cc.o.d"
  "libvafs_media.a"
  "libvafs_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
