# Empty dependencies file for vafs_sim.
# This may be replaced when dependencies are built.
