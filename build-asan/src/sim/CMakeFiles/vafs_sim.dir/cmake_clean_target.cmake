file(REMOVE_RECURSE
  "libvafs_sim.a"
)
