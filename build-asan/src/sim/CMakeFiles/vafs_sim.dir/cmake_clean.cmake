file(REMOVE_RECURSE
  "CMakeFiles/vafs_sim.dir/simulator.cc.o"
  "CMakeFiles/vafs_sim.dir/simulator.cc.o.d"
  "libvafs_sim.a"
  "libvafs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
