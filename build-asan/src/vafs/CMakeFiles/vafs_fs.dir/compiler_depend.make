# Empty compiler generated dependencies file for vafs_fs.
# This may be replaced when dependencies are built.
