file(REMOVE_RECURSE
  "libvafs_fs.a"
)
