
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vafs/file_system.cc" "src/vafs/CMakeFiles/vafs_fs.dir/file_system.cc.o" "gcc" "src/vafs/CMakeFiles/vafs_fs.dir/file_system.cc.o.d"
  "/root/repo/src/vafs/persistence.cc" "src/vafs/CMakeFiles/vafs_fs.dir/persistence.cc.o" "gcc" "src/vafs/CMakeFiles/vafs_fs.dir/persistence.cc.o.d"
  "/root/repo/src/vafs/text_files.cc" "src/vafs/CMakeFiles/vafs_fs.dir/text_files.cc.o" "gcc" "src/vafs/CMakeFiles/vafs_fs.dir/text_files.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/rope/CMakeFiles/vafs_rope.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/msm/CMakeFiles/vafs_msm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/vafs_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/vafs_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/media/CMakeFiles/vafs_media.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/layout/CMakeFiles/vafs_layout.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/disk/CMakeFiles/vafs_disk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/vafs_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/vafs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
