file(REMOVE_RECURSE
  "CMakeFiles/vafs_fs.dir/file_system.cc.o"
  "CMakeFiles/vafs_fs.dir/file_system.cc.o.d"
  "CMakeFiles/vafs_fs.dir/persistence.cc.o"
  "CMakeFiles/vafs_fs.dir/persistence.cc.o.d"
  "CMakeFiles/vafs_fs.dir/text_files.cc.o"
  "CMakeFiles/vafs_fs.dir/text_files.cc.o.d"
  "libvafs_fs.a"
  "libvafs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
