# CMake generated Testfile for 
# Source directory: /root/repo/src/vafs
# Build directory: /root/repo/build-asan/src/vafs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
