file(REMOVE_RECURSE
  "CMakeFiles/vafs_layout.dir/allocator.cc.o"
  "CMakeFiles/vafs_layout.dir/allocator.cc.o.d"
  "CMakeFiles/vafs_layout.dir/strand_index.cc.o"
  "CMakeFiles/vafs_layout.dir/strand_index.cc.o.d"
  "libvafs_layout.a"
  "libvafs_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
