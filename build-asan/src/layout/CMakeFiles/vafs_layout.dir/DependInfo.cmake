
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/allocator.cc" "src/layout/CMakeFiles/vafs_layout.dir/allocator.cc.o" "gcc" "src/layout/CMakeFiles/vafs_layout.dir/allocator.cc.o.d"
  "/root/repo/src/layout/strand_index.cc" "src/layout/CMakeFiles/vafs_layout.dir/strand_index.cc.o" "gcc" "src/layout/CMakeFiles/vafs_layout.dir/strand_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/vafs_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/disk/CMakeFiles/vafs_disk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/vafs_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
