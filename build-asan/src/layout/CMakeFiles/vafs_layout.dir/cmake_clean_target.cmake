file(REMOVE_RECURSE
  "libvafs_layout.a"
)
