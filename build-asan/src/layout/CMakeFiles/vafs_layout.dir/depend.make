# Empty dependencies file for vafs_layout.
# This may be replaced when dependencies are built.
