# Empty compiler generated dependencies file for vafs_obs.
# This may be replaced when dependencies are built.
