file(REMOVE_RECURSE
  "CMakeFiles/vafs_obs.dir/auditor.cc.o"
  "CMakeFiles/vafs_obs.dir/auditor.cc.o.d"
  "CMakeFiles/vafs_obs.dir/metrics.cc.o"
  "CMakeFiles/vafs_obs.dir/metrics.cc.o.d"
  "CMakeFiles/vafs_obs.dir/trace.cc.o"
  "CMakeFiles/vafs_obs.dir/trace.cc.o.d"
  "libvafs_obs.a"
  "libvafs_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
