file(REMOVE_RECURSE
  "libvafs_obs.a"
)
