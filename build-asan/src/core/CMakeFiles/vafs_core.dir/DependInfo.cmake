
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cc" "src/core/CMakeFiles/vafs_core.dir/admission.cc.o" "gcc" "src/core/CMakeFiles/vafs_core.dir/admission.cc.o.d"
  "/root/repo/src/core/continuity.cc" "src/core/CMakeFiles/vafs_core.dir/continuity.cc.o" "gcc" "src/core/CMakeFiles/vafs_core.dir/continuity.cc.o.d"
  "/root/repo/src/core/editing_bounds.cc" "src/core/CMakeFiles/vafs_core.dir/editing_bounds.cc.o" "gcc" "src/core/CMakeFiles/vafs_core.dir/editing_bounds.cc.o.d"
  "/root/repo/src/core/profiles.cc" "src/core/CMakeFiles/vafs_core.dir/profiles.cc.o" "gcc" "src/core/CMakeFiles/vafs_core.dir/profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/vafs_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/vafs_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/disk/CMakeFiles/vafs_disk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/media/CMakeFiles/vafs_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
