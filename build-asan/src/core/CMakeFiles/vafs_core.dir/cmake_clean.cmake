file(REMOVE_RECURSE
  "CMakeFiles/vafs_core.dir/admission.cc.o"
  "CMakeFiles/vafs_core.dir/admission.cc.o.d"
  "CMakeFiles/vafs_core.dir/continuity.cc.o"
  "CMakeFiles/vafs_core.dir/continuity.cc.o.d"
  "CMakeFiles/vafs_core.dir/editing_bounds.cc.o"
  "CMakeFiles/vafs_core.dir/editing_bounds.cc.o.d"
  "CMakeFiles/vafs_core.dir/profiles.cc.o"
  "CMakeFiles/vafs_core.dir/profiles.cc.o.d"
  "libvafs_core.a"
  "libvafs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
