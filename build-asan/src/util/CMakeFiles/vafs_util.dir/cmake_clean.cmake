file(REMOVE_RECURSE
  "CMakeFiles/vafs_util.dir/result.cc.o"
  "CMakeFiles/vafs_util.dir/result.cc.o.d"
  "libvafs_util.a"
  "libvafs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
