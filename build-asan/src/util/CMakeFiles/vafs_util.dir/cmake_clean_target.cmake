file(REMOVE_RECURSE
  "libvafs_util.a"
)
