# Empty dependencies file for vafs_util.
# This may be replaced when dependencies are built.
