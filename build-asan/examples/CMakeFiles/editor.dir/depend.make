# Empty dependencies file for editor.
# This may be replaced when dependencies are built.
