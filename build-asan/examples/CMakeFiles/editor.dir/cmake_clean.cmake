file(REMOVE_RECURSE
  "CMakeFiles/editor.dir/editor.cpp.o"
  "CMakeFiles/editor.dir/editor.cpp.o.d"
  "editor"
  "editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
