# Empty compiler generated dependencies file for editor.
# This may be replaced when dependencies are built.
