file(REMOVE_RECURSE
  "CMakeFiles/news_service.dir/news_service.cpp.o"
  "CMakeFiles/news_service.dir/news_service.cpp.o.d"
  "news_service"
  "news_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
