# Empty compiler generated dependencies file for news_service.
# This may be replaced when dependencies are built.
