file(REMOVE_RECURSE
  "CMakeFiles/vafs_shell.dir/vafs_shell.cpp.o"
  "CMakeFiles/vafs_shell.dir/vafs_shell.cpp.o.d"
  "vafs_shell"
  "vafs_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafs_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
