# Empty compiler generated dependencies file for vafs_shell.
# This may be replaced when dependencies are built.
