file(REMOVE_RECURSE
  "CMakeFiles/continuity_test.dir/continuity_test.cc.o"
  "CMakeFiles/continuity_test.dir/continuity_test.cc.o.d"
  "continuity_test"
  "continuity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
