# Empty dependencies file for continuity_test.
# This may be replaced when dependencies are built.
