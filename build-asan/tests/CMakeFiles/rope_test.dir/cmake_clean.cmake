file(REMOVE_RECURSE
  "CMakeFiles/rope_test.dir/rope_test.cc.o"
  "CMakeFiles/rope_test.dir/rope_test.cc.o.d"
  "rope_test"
  "rope_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
