# Empty compiler generated dependencies file for rope_test.
# This may be replaced when dependencies are built.
