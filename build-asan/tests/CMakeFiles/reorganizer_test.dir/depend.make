# Empty dependencies file for reorganizer_test.
# This may be replaced when dependencies are built.
