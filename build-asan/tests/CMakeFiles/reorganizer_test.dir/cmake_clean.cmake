file(REMOVE_RECURSE
  "CMakeFiles/reorganizer_test.dir/reorganizer_test.cc.o"
  "CMakeFiles/reorganizer_test.dir/reorganizer_test.cc.o.d"
  "reorganizer_test"
  "reorganizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorganizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
