file(REMOVE_RECURSE
  "CMakeFiles/rope_server_test.dir/rope_server_test.cc.o"
  "CMakeFiles/rope_server_test.dir/rope_server_test.cc.o.d"
  "rope_server_test"
  "rope_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rope_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
