# Empty compiler generated dependencies file for text_files_test.
# This may be replaced when dependencies are built.
