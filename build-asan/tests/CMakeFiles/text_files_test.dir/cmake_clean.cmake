file(REMOVE_RECURSE
  "CMakeFiles/text_files_test.dir/text_files_test.cc.o"
  "CMakeFiles/text_files_test.dir/text_files_test.cc.o.d"
  "text_files_test"
  "text_files_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
