file(REMOVE_RECURSE
  "CMakeFiles/vbr_test.dir/vbr_test.cc.o"
  "CMakeFiles/vbr_test.dir/vbr_test.cc.o.d"
  "vbr_test"
  "vbr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
