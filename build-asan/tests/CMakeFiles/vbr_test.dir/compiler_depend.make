# Empty compiler generated dependencies file for vbr_test.
# This may be replaced when dependencies are built.
