file(REMOVE_RECURSE
  "CMakeFiles/striped_test.dir/striped_test.cc.o"
  "CMakeFiles/striped_test.dir/striped_test.cc.o.d"
  "striped_test"
  "striped_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
