file(REMOVE_RECURSE
  "CMakeFiles/rope_property_test.dir/rope_property_test.cc.o"
  "CMakeFiles/rope_property_test.dir/rope_property_test.cc.o.d"
  "rope_property_test"
  "rope_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rope_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
