# Empty dependencies file for strand_index_test.
# This may be replaced when dependencies are built.
