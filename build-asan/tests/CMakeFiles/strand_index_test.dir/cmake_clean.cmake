file(REMOVE_RECURSE
  "CMakeFiles/strand_index_test.dir/strand_index_test.cc.o"
  "CMakeFiles/strand_index_test.dir/strand_index_test.cc.o.d"
  "strand_index_test"
  "strand_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strand_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
