file(REMOVE_RECURSE
  "CMakeFiles/strand_store_test.dir/strand_store_test.cc.o"
  "CMakeFiles/strand_store_test.dir/strand_store_test.cc.o.d"
  "strand_store_test"
  "strand_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strand_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
