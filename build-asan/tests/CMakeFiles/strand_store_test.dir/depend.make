# Empty dependencies file for strand_store_test.
# This may be replaced when dependencies are built.
