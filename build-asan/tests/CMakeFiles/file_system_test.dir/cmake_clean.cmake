file(REMOVE_RECURSE
  "CMakeFiles/file_system_test.dir/file_system_test.cc.o"
  "CMakeFiles/file_system_test.dir/file_system_test.cc.o.d"
  "file_system_test"
  "file_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
