# Empty dependencies file for file_system_test.
# This may be replaced when dependencies are built.
