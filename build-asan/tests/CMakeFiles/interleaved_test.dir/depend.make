# Empty dependencies file for interleaved_test.
# This may be replaced when dependencies are built.
