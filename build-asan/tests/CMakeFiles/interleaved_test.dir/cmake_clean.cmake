file(REMOVE_RECURSE
  "CMakeFiles/interleaved_test.dir/interleaved_test.cc.o"
  "CMakeFiles/interleaved_test.dir/interleaved_test.cc.o.d"
  "interleaved_test"
  "interleaved_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleaved_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
