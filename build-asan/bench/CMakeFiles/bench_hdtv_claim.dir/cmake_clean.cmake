file(REMOVE_RECURSE
  "CMakeFiles/bench_hdtv_claim.dir/bench_hdtv_claim.cc.o"
  "CMakeFiles/bench_hdtv_claim.dir/bench_hdtv_claim.cc.o.d"
  "bench_hdtv_claim"
  "bench_hdtv_claim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hdtv_claim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
