# Empty compiler generated dependencies file for bench_hdtv_claim.
# This may be replaced when dependencies are built.
