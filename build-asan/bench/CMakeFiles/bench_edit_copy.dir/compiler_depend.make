# Empty compiler generated dependencies file for bench_edit_copy.
# This may be replaced when dependencies are built.
