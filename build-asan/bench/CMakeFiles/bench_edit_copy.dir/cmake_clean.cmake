file(REMOVE_RECURSE
  "CMakeFiles/bench_edit_copy.dir/bench_edit_copy.cc.o"
  "CMakeFiles/bench_edit_copy.dir/bench_edit_copy.cc.o.d"
  "bench_edit_copy"
  "bench_edit_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edit_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
