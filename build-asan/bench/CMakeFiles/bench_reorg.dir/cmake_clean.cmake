file(REMOVE_RECURSE
  "CMakeFiles/bench_reorg.dir/bench_reorg.cc.o"
  "CMakeFiles/bench_reorg.dir/bench_reorg.cc.o.d"
  "bench_reorg"
  "bench_reorg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
