# Empty dependencies file for bench_reorg.
# This may be replaced when dependencies are built.
