# Empty dependencies file for bench_vbr.
# This may be replaced when dependencies are built.
