file(REMOVE_RECURSE
  "CMakeFiles/bench_vbr.dir/bench_vbr.cc.o"
  "CMakeFiles/bench_vbr.dir/bench_vbr.cc.o.d"
  "bench_vbr"
  "bench_vbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
