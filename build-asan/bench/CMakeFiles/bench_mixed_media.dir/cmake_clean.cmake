file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_media.dir/bench_mixed_media.cc.o"
  "CMakeFiles/bench_mixed_media.dir/bench_mixed_media.cc.o.d"
  "bench_mixed_media"
  "bench_mixed_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
