# Empty compiler generated dependencies file for bench_mixed_media.
# This may be replaced when dependencies are built.
