file(REMOVE_RECURSE
  "CMakeFiles/bench_admission_transition.dir/bench_admission_transition.cc.o"
  "CMakeFiles/bench_admission_transition.dir/bench_admission_transition.cc.o.d"
  "bench_admission_transition"
  "bench_admission_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_admission_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
