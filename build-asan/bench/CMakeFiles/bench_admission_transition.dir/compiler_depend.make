# Empty compiler generated dependencies file for bench_admission_transition.
# This may be replaced when dependencies are built.
