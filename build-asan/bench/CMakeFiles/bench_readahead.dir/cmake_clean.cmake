file(REMOVE_RECURSE
  "CMakeFiles/bench_readahead.dir/bench_readahead.cc.o"
  "CMakeFiles/bench_readahead.dir/bench_readahead.cc.o.d"
  "bench_readahead"
  "bench_readahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
