# Empty dependencies file for bench_readahead.
# This may be replaced when dependencies are built.
