file(REMOVE_RECURSE
  "CMakeFiles/bench_admission.dir/bench_admission.cc.o"
  "CMakeFiles/bench_admission.dir/bench_admission.cc.o.d"
  "bench_admission"
  "bench_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
