# Empty dependencies file for bench_silence.
# This may be replaced when dependencies are built.
