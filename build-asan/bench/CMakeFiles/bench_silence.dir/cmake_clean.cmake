file(REMOVE_RECURSE
  "CMakeFiles/bench_silence.dir/bench_silence.cc.o"
  "CMakeFiles/bench_silence.dir/bench_silence.cc.o.d"
  "bench_silence"
  "bench_silence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_silence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
