# Empty dependencies file for bench_architectures.
# This may be replaced when dependencies are built.
