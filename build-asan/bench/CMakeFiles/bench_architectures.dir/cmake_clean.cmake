file(REMOVE_RECURSE
  "CMakeFiles/bench_architectures.dir/bench_architectures.cc.o"
  "CMakeFiles/bench_architectures.dir/bench_architectures.cc.o.d"
  "bench_architectures"
  "bench_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
