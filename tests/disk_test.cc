#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/disk/disk.h"
#include "src/disk/disk_array.h"
#include "src/disk/disk_model.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

TEST(DiskModelTest, GeometryDerivedQuantities) {
  DiskModel model(TestDiskParameters());
  EXPECT_EQ(model.params().TotalSectors(), 200 * 4 * 32);
  EXPECT_EQ(model.params().SectorsPerCylinder(), 128);
  EXPECT_EQ(model.params().CapacityBytes(), 200LL * 4 * 32 * 512);
}

TEST(DiskModelTest, SectorToChsRoundTrips) {
  DiskModel model(TestDiskParameters());
  const Chs chs = model.SectorToChs(128 * 3 + 32 * 2 + 7);
  EXPECT_EQ(chs.cylinder, 3);
  EXPECT_EQ(chs.surface, 2);
  EXPECT_EQ(chs.sector, 7);
  EXPECT_EQ(model.SectorToCylinder(128 * 3), 3);
}

TEST(DiskModelTest, SeekTimeCalibration) {
  DiskModel model(TestDiskParameters());
  EXPECT_EQ(model.SeekTimeForDistance(0), 0);
  // seek(1) == min_seek, seek(full stroke) == max_seek.
  EXPECT_NEAR(model.SeekTimeForDistance(1), 2000, 1);
  EXPECT_NEAR(model.SeekTimeForDistance(199), 20000, 1);
}

TEST(DiskModelTest, SeekTimeMonotone) {
  DiskModel model(TestDiskParameters());
  SimDuration previous = -1;
  for (int64_t d = 0; d < 200; ++d) {
    const SimDuration seek = model.SeekTimeForDistance(d);
    EXPECT_GE(seek, previous) << "distance " << d;
    previous = seek;
  }
}

TEST(DiskModelTest, SeekConcavity) {
  // sqrt model: marginal cost of extra distance decreases.
  DiskModel model(TestDiskParameters());
  const SimDuration d10 = model.SeekTimeForDistance(10) - model.SeekTimeForDistance(5);
  const SimDuration d100 = model.SeekTimeForDistance(105) - model.SeekTimeForDistance(100);
  EXPECT_GT(d10, d100);
}

TEST(DiskModelTest, RotationAndTransfer) {
  DiskModel model(TestDiskParameters());
  // 3600 rpm = 60 rotations/sec -> 16667 usec per rotation.
  EXPECT_NEAR(model.RotationTime(), 16667, 2);
  EXPECT_EQ(model.AverageRotationalLatency(), model.RotationTime() / 2);
  // One track of 32 sectors transfers in one rotation.
  EXPECT_NEAR(model.TransferTime(32), model.RotationTime(), 40);
  // Transfer rate: 32 sectors * 512 B * 60 rot/s * 8 bits.
  EXPECT_NEAR(model.TransferRateBitsPerSec(), 32.0 * 512 * 60 * 8, 1.0);
}

TEST(DiskModelTest, MaxAccessGapIsFullStrokePlusRotation) {
  DiskModel model(TestDiskParameters());
  EXPECT_EQ(model.MaxAccessGap(),
            model.SeekTimeForDistance(199) + model.WorstRotationalLatency());
}

TEST(DiskModelTest, MaxCylinderDistanceForGapInvertsSeek) {
  DiskModel model(TestDiskParameters());
  for (int64_t d : {1, 5, 50, 150, 199}) {
    const SimDuration gap = model.SeekTimeForDistance(d) + model.AverageRotationalLatency();
    EXPECT_EQ(model.MaxCylinderDistanceForGap(gap), d) << "distance " << d;
    // One microsecond less cannot cover distance d.
    EXPECT_LT(model.MaxCylinderDistanceForGap(gap - 1), d);
  }
  // Gap smaller than rotational latency: not even distance 0 fits.
  EXPECT_EQ(model.MaxCylinderDistanceForGap(model.AverageRotationalLatency() - 1), -1);
}

TEST(DiskTest, WriteReadRoundTrip) {
  Disk disk(TestDiskParameters());
  std::vector<uint8_t> payload(512 * 3);
  std::iota(payload.begin(), payload.end(), 0);
  ASSERT_TRUE(disk.Write(100, 3, payload).ok());
  std::vector<uint8_t> read_back;
  ASSERT_TRUE(disk.Read(100, 3, &read_back).ok());
  EXPECT_EQ(read_back, payload);
}

TEST(DiskTest, UnwrittenSectorsReadZero) {
  Disk disk(TestDiskParameters());
  std::vector<uint8_t> data;
  ASSERT_TRUE(disk.Read(5, 2, &data).ok());
  EXPECT_EQ(data.size(), 1024u);
  EXPECT_TRUE(std::all_of(data.begin(), data.end(), [](uint8_t b) { return b == 0; }));
}

TEST(DiskTest, RejectsOutOfRangeExtents) {
  Disk disk(TestDiskParameters());
  std::vector<uint8_t> out;
  EXPECT_EQ(disk.Read(-1, 1, &out).status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(disk.Read(disk.total_sectors(), 1, &out).status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(disk.Read(disk.total_sectors() - 1, 2, &out).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(disk.Write(0, 0, {}).status().code(), ErrorCode::kOutOfRange);
}

TEST(DiskTest, RejectsMisSizedWrite) {
  Disk disk(TestDiskParameters());
  std::vector<uint8_t> payload(100);  // not 512
  EXPECT_EQ(disk.Write(0, 1, payload).status().code(), ErrorCode::kInvalidArgument);
}

TEST(DiskTest, ServiceTimeIncludesSeekLatencyTransfer) {
  Disk disk(TestDiskParameters());
  const DiskModel& model = disk.model();
  disk.MoveHeadToCylinder(0);
  std::vector<uint8_t> out;
  // Read on cylinder 50 (sector 50*128), 4 sectors.
  Result<SimDuration> service = disk.Read(50 * 128, 4, &out);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(*service, model.SeekTime(0, 50) + model.AverageRotationalLatency() +
                          model.TransferTime(4));
  // Head is now at cylinder 50: a re-read pays no seek.
  Result<SimDuration> again = disk.Read(50 * 128, 4, &out);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, model.AverageRotationalLatency() + model.TransferTime(4));
}

TEST(DiskTest, PeekMatchesRead) {
  Disk disk(TestDiskParameters());
  const SimDuration peek = disk.PeekServiceTime(1000, 8);
  std::vector<uint8_t> out;
  Result<SimDuration> service = disk.Read(1000, 8, &out);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(peek, *service);
}

TEST(DiskTest, CountersAccumulate) {
  Disk disk(TestDiskParameters());
  std::vector<uint8_t> out;
  ASSERT_TRUE(disk.Read(0, 1, &out).ok());
  ASSERT_TRUE(disk.Write(10, 1, std::vector<uint8_t>(512, 1)).ok());
  EXPECT_EQ(disk.reads(), 1);
  EXPECT_EQ(disk.writes(), 1);
  EXPECT_GT(disk.busy_time(), 0);
}

TEST(DiskTest, TimingOnlyModeSkipsData) {
  Disk disk(TestDiskParameters(), DiskOptions{.retain_data = false});
  ASSERT_TRUE(disk.Write(0, 2, {}).ok());
  std::vector<uint8_t> out{1, 2, 3};
  ASSERT_TRUE(disk.Read(0, 2, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(DiskArrayTest, StripesBlocksAcrossMembers) {
  DiskArray array(TestDiskParameters(), 4);
  EXPECT_EQ(array.members(), 4);
  EXPECT_EQ(array.MemberForBlock(0), 0);
  EXPECT_EQ(array.MemberForBlock(5), 1);
  EXPECT_EQ(array.MemberForBlock(7), 3);
}

TEST(DiskArrayTest, BatchCompletesWithSlowestMember) {
  DiskArray array(TestDiskParameters(), 2);
  // Member 0 reads near its head; member 1 must seek across the disk.
  array.member(0).MoveHeadToCylinder(0);
  array.member(1).MoveHeadToCylinder(0);
  std::vector<DiskArray::BatchRequest> batch = {
      {0, 0, 4},
      {1, 199 * 128, 4},
  };
  const SimDuration fast = array.member(0).PeekServiceTime(0, 4);
  const SimDuration slow = array.member(1).PeekServiceTime(199 * 128, 4);
  ASSERT_LT(fast, slow);
  std::vector<std::vector<uint8_t>> out;
  Result<DiskArray::BatchOutcome> outcome = array.ReadBatch(batch, &out);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->AllOk());
  EXPECT_EQ(outcome->completion_time, slow);
  ASSERT_EQ(outcome->per_request.size(), 2u);
  EXPECT_EQ(outcome->per_request[0].service, fast);
  EXPECT_EQ(outcome->per_request[1].service, slow);
  EXPECT_EQ(out.size(), 2u);
}

TEST(DiskArrayTest, RejectsTwoRequestsOnOneMember) {
  DiskArray array(TestDiskParameters(), 2);
  std::vector<DiskArray::BatchRequest> batch = {{0, 0, 1}, {0, 128, 1}};
  EXPECT_EQ(array.ReadBatch(batch, nullptr).status().code(), ErrorCode::kInvalidArgument);
}

TEST(DiskArrayTest, WriteReadRoundTripPerMember) {
  DiskArray array(TestDiskParameters(), 3);
  std::vector<DiskArray::BatchRequest> batch = {{0, 10, 1}, {1, 20, 1}, {2, 30, 1}};
  std::vector<std::vector<uint8_t>> payloads(3, std::vector<uint8_t>(512));
  payloads[0].assign(512, 0xaa);
  payloads[1].assign(512, 0xbb);
  payloads[2].assign(512, 0xcc);
  Result<DiskArray::BatchOutcome> written = array.WriteBatch(batch, payloads);
  ASSERT_TRUE(written.ok());
  EXPECT_TRUE(written->AllOk());
  std::vector<std::vector<uint8_t>> out;
  Result<DiskArray::BatchOutcome> read = array.ReadBatch(batch, &out);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->AllOk());
  EXPECT_EQ(out, payloads);
}

TEST(DiskArrayTest, AggregateBandwidthScalesWithMembers) {
  DiskArray array(TestDiskParameters(), 8);
  EXPECT_DOUBLE_EQ(array.AggregateTransferRateBitsPerSec(),
                   8.0 * array.member_model().TransferRateBitsPerSec());
}

// Property sweep: the seek-model inversion holds across geometries.
class SeekInversionTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SeekInversionTest, InversionConsistent) {
  DiskParameters params = TestDiskParameters();
  params.cylinders = GetParam();
  DiskModel model(params);
  for (int64_t d = 0; d < params.cylinders; d += std::max<int64_t>(1, params.cylinders / 17)) {
    const SimDuration gap = model.SeekTimeForDistance(d) + model.AverageRotationalLatency();
    EXPECT_GE(model.MaxCylinderDistanceForGap(gap), d);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, SeekInversionTest,
                         ::testing::Values<int64_t>(2, 10, 100, 1000, 5000));

}  // namespace
}  // namespace vafs
