// Crash-consistency matrix: power-cut every write boundary of a
// checkpoint and of a journaled mutation batch, and prove that recovery
// (LoadImage + journal replay, or the fsck scavenger) always lands on a
// consistent image — no leaked extents, no doubly-claimed extents, every
// surviving object readable.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/media/sources.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/checksum.h"
#include "src/vafs/file_system.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

std::vector<uint8_t> NoteBytes() {
  std::vector<uint8_t> bytes(700);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  return bytes;
}

// Stage A: the state committed by the first checkpoint (generation 1).
// One AV rope by alice plus a small text file.
void BuildBase(MultimediaFileSystem* fs) {
  VideoSource video(TestVideo(), 7);
  AudioSource audio(TestAudio(), SpeechProfile{}, 7);
  Result<MultimediaFileSystem::RecordResult> rec = fs->Record("alice", &video, &audio, 1.0);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  Status wrote = fs->text_files().Write("config.txt", std::vector<uint8_t>{1, 2, 3, 4});
  ASSERT_TRUE(wrote.ok()) << wrote.ToString();
  Status checkpoint = fs->Checkpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.ToString();
}

// Stage B: journaled mutations on top of the committed base — a new
// video-only rope with a trigger, a text write, and a text removal. May
// fail partway when a power cut is armed; that is the point.
Status Mutate(MultimediaFileSystem* fs) {
  VideoSource video(TestVideo(), 8);
  Result<MultimediaFileSystem::RecordResult> rec = fs->Record("bob", &video, nullptr, 0.2);
  if (!rec.ok()) {
    return rec.status();
  }
  if (Status s = fs->rope_server().AddTrigger("bob", rec->rope, Trigger{0.1, "cue"}); !s.ok()) {
    return s;
  }
  if (Status s = fs->text_files().Write("notes.txt", NoteBytes()); !s.ok()) {
    return s;
  }
  return fs->text_files().Remove("config.txt");
}

// The on-disk image is structurally sound: fsck sees every sector claimed
// by at most one owner and nothing allocated-but-unreachable. Torn journal
// tails and a shredded root slot are legitimate crash scars, so only the
// structural finding kinds fail the check.
void ExpectStructurallySound(MultimediaFileSystem* fs) {
  Result<FsckReport> report = fs->RunFsck();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->used_scavenger);
  for (const FsckFinding& finding : report->findings) {
    EXPECT_NE(finding.kind, FsckFindingKind::kLeakedExtent)
        << FsckFindingKindName(finding.kind) << ": " << finding.detail;
    EXPECT_NE(finding.kind, FsckFindingKind::kDoublyClaimedExtent)
        << FsckFindingKindName(finding.kind) << ": " << finding.detail;
    EXPECT_NE(finding.kind, FsckFindingKind::kUnreadableStrand)
        << FsckFindingKindName(finding.kind) << ": " << finding.detail;
  }
}

// Alice's base rope (committed before any crash) must always survive.
void ExpectBaseRecovered(MultimediaFileSystem* fs) {
  const Rope* alice = nullptr;
  for (const Rope* rope : fs->rope_server().AllRopes()) {
    if (rope->creator() == "alice") {
      alice = rope;
    }
  }
  ASSERT_NE(alice, nullptr);
  Result<std::vector<std::vector<uint8_t>>> blocks =
      fs->ReadRopeBlocks("alice", alice->id(), Medium::kVideo, TimeInterval{0.0, 1.0});
  ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();
  EXPECT_FALSE(blocks->empty());
}

// The full Stage-B state: both ropes, bob's trigger, notes.txt content,
// and config.txt gone.
void ExpectMutatedState(MultimediaFileSystem* fs) {
  EXPECT_EQ(fs->rope_server().rope_count(), 2);
  EXPECT_EQ(fs->storage_manager().strand_count(), 3);
  Result<std::vector<uint8_t>> notes = fs->text_files().Read("notes.txt");
  ASSERT_TRUE(notes.ok()) << notes.status().ToString();
  EXPECT_EQ(*notes, NoteBytes());
  EXPECT_FALSE(fs->text_files().Exists("config.txt"));
  const Rope* bob = nullptr;
  for (const Rope* rope : fs->rope_server().AllRopes()) {
    if (rope->creator() == "bob") {
      bob = rope;
    }
  }
  ASSERT_NE(bob, nullptr);
  EXPECT_EQ(bob->triggers().size(), 1u);
  Result<std::vector<std::vector<uint8_t>>> blocks =
      fs->ReadRopeBlocks("bob", bob->id(), Medium::kVideo, TimeInterval{0.0, 0.2});
  ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();
}

enum class Phase { kMutate, kCheckpoint };

// Sectors the phase writes when nothing crashes, measured on a scratch
// instance; the matrix then cuts power at every one of those boundaries.
void MeasurePhaseSectors(Phase phase, int64_t* out) {
  MultimediaFileSystem fs(TestConfig());
  ASSERT_NO_FATAL_FAILURE(BuildBase(&fs));
  if (phase == Phase::kCheckpoint) {
    Status mutated = Mutate(&fs);
    ASSERT_TRUE(mutated.ok()) << mutated.ToString();
  }
  const int64_t before = fs.disk().fault_injector().sectors_written();
  if (phase == Phase::kMutate) {
    Status mutated = Mutate(&fs);
    ASSERT_TRUE(mutated.ok()) << mutated.ToString();
  } else {
    Status checkpoint = fs.Checkpoint();
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.ToString();
  }
  *out = fs.disk().fault_injector().sectors_written() - before;
  ASSERT_GT(*out, 0);
}

// One crash point: cut power after `cut_after_sectors` durable sectors of
// the phase (torn alternates shred on/off across the matrix), then recover
// and check every consistency invariant.
void RunCrashPoint(Phase phase, int64_t cut_after_sectors, bool torn) {
  SCOPED_TRACE("phase=" + std::string(phase == Phase::kMutate ? "mutate" : "checkpoint") +
               " cut_after=" + std::to_string(cut_after_sectors) +
               (torn ? " torn" : " clean"));
  MultimediaFileSystem fs(TestConfig());
  ASSERT_NO_FATAL_FAILURE(BuildBase(&fs));
  if (phase == Phase::kCheckpoint) {
    Status mutated = Mutate(&fs);
    ASSERT_TRUE(mutated.ok()) << mutated.ToString();
  }

  fs.disk().fault_injector().ArmPowerCut(cut_after_sectors, torn);
  if (phase == Phase::kMutate) {
    (void)Mutate(&fs);  // dies at the crash point
  } else {
    (void)fs.Checkpoint();
  }
  ASSERT_TRUE(fs.disk().powered_off());

  Status recovered = fs.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_FALSE(fs.disk().powered_off());

  ASSERT_NO_FATAL_FAILURE(ExpectBaseRecovered(&fs));
  if (phase == Phase::kCheckpoint) {
    // Every Stage-B mutation was journaled before the checkpoint started;
    // whichever generation survives, the full state comes back.
    ASSERT_NO_FATAL_FAILURE(ExpectMutatedState(&fs));
  } else {
    // Mid-mutation cut: some prefix of Stage B survives. Whatever did must
    // be fully readable.
    EXPECT_GE(fs.rope_server().rope_count(), 1);
    EXPECT_LE(fs.rope_server().rope_count(), 2);
    for (const Rope* rope : fs.rope_server().AllRopes()) {
      if (rope->TrackFor(Medium::kVideo).rate <= 0) {
        continue;
      }
      Result<std::vector<std::vector<uint8_t>>> blocks = fs.ReadRopeBlocks(
          rope->creator(), rope->id(), Medium::kVideo, TimeInterval{0.0, 0.05});
      EXPECT_TRUE(blocks.ok()) << blocks.status().ToString();
    }
    for (const TextFileService::ExportedFile& file : fs.text_files().ExportAll()) {
      Result<std::vector<uint8_t>> data = fs.text_files().Read(file.name);
      EXPECT_TRUE(data.ok()) << file.name << ": " << data.status().ToString();
    }
  }
  ASSERT_NO_FATAL_FAILURE(ExpectStructurallySound(&fs));

  // Life goes on: a fresh checkpoint commits, and a second recovery
  // round-trips it.
  Status checkpoint = fs.Checkpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.ToString();
  const int64_t ropes_before = fs.rope_server().rope_count();
  const int64_t strands_before = fs.storage_manager().strand_count();
  Status again = fs.Recover();
  ASSERT_TRUE(again.ok()) << again.ToString();
  EXPECT_EQ(fs.rope_server().rope_count(), ropes_before);
  EXPECT_EQ(fs.storage_manager().strand_count(), strands_before);
}

TEST(CrashMatrixTest, CheckpointSurvivesEveryWriteBoundary) {
  int64_t phase_sectors = 0;
  ASSERT_NO_FATAL_FAILURE(MeasurePhaseSectors(Phase::kCheckpoint, &phase_sectors));
  for (int64_t cut = 0; cut < phase_sectors; ++cut) {
    ASSERT_NO_FATAL_FAILURE(RunCrashPoint(Phase::kCheckpoint, cut, cut % 2 == 1));
  }
}

TEST(CrashMatrixTest, JournaledMutationsSurviveEveryWriteBoundary) {
  int64_t phase_sectors = 0;
  ASSERT_NO_FATAL_FAILURE(MeasurePhaseSectors(Phase::kMutate, &phase_sectors));
  for (int64_t cut = 0; cut < phase_sectors; ++cut) {
    ASSERT_NO_FATAL_FAILURE(RunCrashPoint(Phase::kMutate, cut, cut % 2 == 1));
  }
}

TEST(CrashRecoveryTest, JournalReplayRecoversMutationsWithoutCheckpoint) {
  MultimediaFileSystem fs(TestConfig());
  ASSERT_NO_FATAL_FAILURE(BuildBase(&fs));
  Status mutated = Mutate(&fs);
  ASSERT_TRUE(mutated.ok()) << mutated.ToString();
  // No second checkpoint: recovery must get Stage B from the journal.
  Status recovered = fs.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  ASSERT_NO_FATAL_FAILURE(ExpectMutatedState(&fs));
  ASSERT_NO_FATAL_FAILURE(ExpectStructurallySound(&fs));
}

// Satellite (f): a checkpoint that fails partway must leave the previous
// generation committed, so retry and recovery both work.
TEST(CrashRecoveryTest, FailedCheckpointKeepsPreviousImageCommitted) {
  MultimediaFileSystem fs(TestConfig());
  ASSERT_NO_FATAL_FAILURE(BuildBase(&fs));
  Status mutated = Mutate(&fs);
  ASSERT_TRUE(mutated.ok()) << mutated.ToString();

  fs.disk().fault_injector().set_write_fault_rate(1.0);
  EXPECT_FALSE(fs.Checkpoint().ok());
  fs.disk().fault_injector().set_write_fault_rate(0.0);

  // The receipt still names generation 1, whose journal carries Stage B.
  Status recovered = fs.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  ASSERT_NO_FATAL_FAILURE(ExpectMutatedState(&fs));

  // And a retried checkpoint commits cleanly on the same instance.
  Status retried = fs.Checkpoint();
  ASSERT_TRUE(retried.ok()) << retried.ToString();
  ASSERT_TRUE(fs.Recover().ok());
  ASSERT_NO_FATAL_FAILURE(ExpectMutatedState(&fs));
}

// Satellite (b): recovery rebuilds the scheduler, so admission slots held
// by requests that died with the crash are released — the same number of
// playbacks is admitted before and after.
TEST(CrashRecoveryTest, RecoverReleasesAdmissionSlotsOfAbandonedRequests) {
  MultimediaFileSystem fs(TestConfig());
  ASSERT_NO_FATAL_FAILURE(BuildBase(&fs));
  const Rope* alice = fs.rope_server().AllRopes().front();
  const RopeId rope = alice->id();

  auto admit_until_rejected = [&fs, rope]() {
    int accepted = 0;
    while (accepted < 64) {
      Result<RequestId> id =
          fs.Play("alice", rope, Medium::kVideo, TimeInterval{0.0, 1.0});
      if (!id.ok()) {
        EXPECT_EQ(id.status().code(), ErrorCode::kAdmissionRejected);
        break;
      }
      ++accepted;
    }
    return accepted;
  };

  const int accepted = admit_until_rejected();
  ASSERT_GT(accepted, 0);
  ASSERT_LT(accepted, 64) << "admission never rejected; matrix needs a tighter disk";

  Status recovered = fs.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(admit_until_rejected(), accepted);
}

TEST(CrashRecoveryTest, FsckScavengesStrandsWhenBothRootsAreCorrupt) {
  MultimediaFileSystem fs(TestConfig());
  ASSERT_NO_FATAL_FAILURE(BuildBase(&fs));
  ASSERT_TRUE(fs.Checkpoint().ok());  // generation 2: both root slots written

  // Smash both roots: keep the signature, garbage the record, so recovery
  // sees corrupt (not merely absent) roots and falls back to the scavenger.
  const int64_t total = fs.disk().total_sectors();
  std::vector<uint8_t> junk(static_cast<size_t>(fs.disk().bytes_per_sector()), 0xA5);
  const char magic[8] = {'V', 'A', 'F', 'S', '0', '0', '0', '2'};
  std::copy(magic, magic + 8, junk.begin());
  ASSERT_TRUE(fs.disk().Write(total - 2, 1, junk).ok());
  ASSERT_TRUE(fs.disk().Write(total - 1, 1, junk).ok());

  Status recovered = fs.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  // Strands come back from their Header Block signatures; ropes and text
  // files have no on-disk signature and die with the catalog.
  EXPECT_EQ(fs.storage_manager().strand_count(), 2);
  EXPECT_EQ(fs.rope_server().rope_count(), 0);

  Result<FsckReport> report = fs.RunFsck();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->used_scavenger);
  EXPECT_EQ(report->strands_recovered, 2);

  // The scavenged store is live: record and commit a fresh first image.
  VideoSource video(TestVideo(), 9);
  ASSERT_TRUE(fs.Record("carol", &video, nullptr, 0.2).ok());
  Status checkpoint = fs.Checkpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.ToString();
  ASSERT_TRUE(fs.Recover().ok());
  EXPECT_EQ(fs.rope_server().rope_count(), 1);
  EXPECT_EQ(fs.storage_manager().strand_count(), 3);
}

// With crash injection disabled the whole pipeline — including the new
// journaling writes — must stay bit-identical across seeds.
TEST(CrashRecoveryTest, DisabledInjectionLeavesDiskBitIdentical) {
  auto run = [](uint64_t fault_seed, std::vector<int64_t>* populated, uint64_t* crc) {
    FileSystemConfig config = TestConfig();
    config.faults.seed = fault_seed;
    MultimediaFileSystem fs(config);
    ASSERT_NO_FATAL_FAILURE(BuildBase(&fs));
    Status mutated = Mutate(&fs);
    ASSERT_TRUE(mutated.ok()) << mutated.ToString();
    ASSERT_TRUE(fs.Checkpoint().ok());
    *populated = fs.disk().PopulatedSectors();
    std::vector<uint8_t> all;
    for (int64_t sector : *populated) {
      std::vector<uint8_t> data;
      ASSERT_TRUE(fs.disk().Read(sector, 1, &data).ok());
      all.insert(all.end(), data.begin(), data.end());
    }
    *crc = Crc64(all);
  };
  std::vector<int64_t> populated_a, populated_b;
  uint64_t crc_a = 0, crc_b = 0;
  ASSERT_NO_FATAL_FAILURE(run(1, &populated_a, &crc_a));
  ASSERT_NO_FATAL_FAILURE(run(42, &populated_b, &crc_b));
  EXPECT_EQ(populated_a, populated_b);
  EXPECT_EQ(crc_a, crc_b);
}

TEST(CrashRecoveryTest, RecoveryMetricsCountCrashPointsAndReplays) {
  obs::MetricsRegistry registry;
  obs::MetricsSink sink(&registry);
  MultimediaFileSystem fs(TestConfig());
  fs.disk().set_trace_sink(&sink);

  ASSERT_NO_FATAL_FAILURE(BuildBase(&fs));
  Status mutated = Mutate(&fs);
  ASSERT_TRUE(mutated.ok()) << mutated.ToString();

  fs.disk().fault_injector().ArmPowerCut(1, /*torn=*/true);
  (void)fs.Checkpoint();  // dies mid-catalog-write
  ASSERT_TRUE(fs.Recover().ok());

  const obs::Counter* survived = registry.FindCounter("recovery.crash_points_survived");
  ASSERT_NE(survived, nullptr);
  EXPECT_EQ(survived->value(), 1);
  const obs::Counter* flips = registry.FindCounter("persistence.root_flips");
  ASSERT_NE(flips, nullptr);
  EXPECT_GE(flips->value(), 1);
  // Stage B journaled at least: strand add, rope create, trigger edit,
  // notes.txt write, config.txt removal.
  const obs::Counter* replays = registry.FindCounter("persistence.journal_replays");
  ASSERT_NE(replays, nullptr);
  EXPECT_GE(replays->value(), 5);
}

}  // namespace
}  // namespace vafs
