#include <gtest/gtest.h>

#include <algorithm>

#include "src/media/devices.h"
#include "src/media/media.h"
#include "src/media/silence.h"
#include "src/media/sources.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

TEST(MediaProfileTest, DerivedQuantities) {
  const MediaProfile video = TestVideo();
  EXPECT_DOUBLE_EQ(video.BitRate(), 30.0 * 16384);
  EXPECT_DOUBLE_EQ(video.UnitDuration(), 1.0 / 30.0);
  EXPECT_NE(video.ToString().find("video"), std::string::npos);
}

TEST(MediaProfileTest, PresetsMatchPaperFigures) {
  EXPECT_NEAR(UvcCompressedVideo().BitRate(), 2.88e6, 1e4);   // ~2.9 Mbit/s
  EXPECT_NEAR(TelephoneAudio().BitRate(), 64e3, 1.0);         // 8 KB/s
  EXPECT_GT(HdtvVideo().BitRate(), 2.4e9);                    // ~2.5 Gbit/s claim
  EXPECT_LT(HdtvVideo().BitRate(), 2.6e9);
  EXPECT_DOUBLE_EQ(UvcRawVideo().BitRate() / UvcCompressedVideo().BitRate(), 12.0);
}

TEST(VideoSourceTest, FramesHaveConfiguredSize) {
  VideoSource source(TestVideo(), 1);
  const VideoFrame frame = source.NextFrame();
  EXPECT_EQ(frame.index, 0);
  EXPECT_EQ(static_cast<int64_t>(frame.payload.size()), source.frame_bytes());
  EXPECT_EQ(source.frame_bytes(), 2048);
}

TEST(VideoSourceTest, DeterministicAndRegenerable) {
  VideoSource a(TestVideo(), 42);
  VideoSource b(TestVideo(), 42);
  for (int i = 0; i < 5; ++i) {
    const VideoFrame frame_a = a.NextFrame();
    const VideoFrame frame_b = b.NextFrame();
    EXPECT_EQ(frame_a.payload, frame_b.payload);
    EXPECT_EQ(frame_a.payload, a.FramePayload(i));
  }
}

TEST(VideoSourceTest, FramesDifferAcrossIndexAndSeed) {
  VideoSource source(TestVideo(), 42);
  EXPECT_NE(source.FramePayload(0), source.FramePayload(1));
  VideoSource other(TestVideo(), 43);
  EXPECT_NE(source.FramePayload(0), other.FramePayload(0));
}

TEST(AudioSourceTest, ProducesRequestedCounts) {
  AudioSource source(TestAudio(), SpeechProfile{}, 7);
  EXPECT_EQ(source.NextSamples(100).size(), 100u);
  EXPECT_EQ(source.samples_produced(), 100);
  EXPECT_EQ(source.NextSamples(50).size(), 50u);
  EXPECT_EQ(source.samples_produced(), 150);
}

TEST(AudioSourceTest, ScriptAlternatesSpeechAndSilence) {
  AudioSource source(TestAudio(), SpeechProfile{}, 7);
  const int64_t total = 4000 * 30;  // 30 seconds
  source.NextSamples(total);
  int64_t silent = 0;
  bool saw_transition = false;
  bool previous = source.IsScriptedSilence(0);
  for (int64_t i = 0; i < total; ++i) {
    const bool now_silent = source.IsScriptedSilence(i);
    silent += now_silent ? 1 : 0;
    saw_transition |= (now_silent != previous);
    previous = now_silent;
  }
  EXPECT_TRUE(saw_transition);
  // Mean 1.2 s talk / 0.6 s silence -> roughly one third silent.
  EXPECT_GT(silent, total / 10);
  EXPECT_LT(silent, total * 6 / 10);
}

TEST(AudioSourceTest, SpeechIsLouderThanSilence) {
  SpeechProfile speech;
  AudioSource source(TestAudio(), speech, 11);
  const int64_t chunk = 400;  // 100 ms
  double max_silence_energy = 0.0;
  double min_speech_energy = 1e9;
  for (int block = 0; block < 100; ++block) {
    std::vector<uint8_t> samples = source.NextSamples(chunk);
    const int64_t start = block * chunk;
    // Classify by majority of scripted state.
    int64_t silent_count = 0;
    for (int64_t i = 0; i < chunk; ++i) {
      silent_count += source.IsScriptedSilence(start + i) ? 1 : 0;
    }
    const double energy = SilenceDetector::AverageEnergy(samples);
    if (silent_count == chunk) {
      max_silence_energy = std::max(max_silence_energy, energy);
    } else if (silent_count == 0) {
      min_speech_energy = std::min(min_speech_energy, energy);
    }
  }
  EXPECT_LT(max_silence_energy, 100.0);
  EXPECT_GT(min_speech_energy, 100.0);
}

TEST(SilenceDetectorTest, EnergyOfFlatSignalIsZero) {
  std::vector<uint8_t> flat(64, 128);
  EXPECT_DOUBLE_EQ(SilenceDetector::AverageEnergy(flat), 0.0);
  EXPECT_TRUE(SilenceDetector().IsSilent(flat));
}

TEST(SilenceDetectorTest, EnergyOfSquareWave) {
  std::vector<uint8_t> wave;
  for (int i = 0; i < 64; ++i) {
    wave.push_back(i % 2 == 0 ? 128 + 50 : 128 - 50);
  }
  EXPECT_DOUBLE_EQ(SilenceDetector::AverageEnergy(wave), 2500.0);
  EXPECT_FALSE(SilenceDetector(100.0).IsSilent(wave));
  EXPECT_TRUE(SilenceDetector(3000.0).IsSilent(wave));
}

TEST(SilenceDetectorTest, EmptyWindowIsSilent) {
  EXPECT_TRUE(SilenceDetector().IsSilent({}));
}

TEST(PlaybackConsumerTest, OnTimeBlocksNeverViolate) {
  // 10 blocks of 100 ms each, all ready well before their deadlines.
  PlaybackConsumer consumer(100'000, 0, 50'000);
  for (int i = 0; i < 10; ++i) {
    consumer.BlockReady(i * 10'000);
  }
  EXPECT_EQ(consumer.violations(), 0);
  EXPECT_EQ(consumer.total_tardiness(), 0);
  EXPECT_EQ(consumer.blocks_ready(), 10);
}

TEST(PlaybackConsumerTest, LateBlockCountsOnceAndShiftsDeadlines) {
  PlaybackConsumer consumer(100'000, 0, 0);
  consumer.BlockReady(0);         // deadline 0: on time
  consumer.BlockReady(150'000);   // deadline 100'000: 50 ms late
  EXPECT_EQ(consumer.violations(), 1);
  EXPECT_EQ(consumer.total_tardiness(), 50'000);
  // Deadlines shift: the next block is due at 250'000, not 200'000.
  consumer.BlockReady(240'000);
  EXPECT_EQ(consumer.violations(), 1);
}

TEST(PlaybackConsumerTest, StartupDelayDefersFirstDeadline) {
  PlaybackConsumer consumer(100'000, 1'000'000, 200'000);
  EXPECT_EQ(consumer.next_deadline(), 1'200'000);
  consumer.BlockReady(1'100'000);
  EXPECT_EQ(consumer.violations(), 0);
}

TEST(PlaybackConsumerTest, BufferOccupancyTracksUnplayedBlocks) {
  PlaybackConsumer consumer(100'000, 0, 0);
  // 5 blocks all ready at t=0: first plays [0,100ms), so 5 buffered.
  for (int i = 0; i < 5; ++i) {
    consumer.BlockReady(0);
  }
  EXPECT_EQ(consumer.max_buffered_blocks(), 5);
  EXPECT_EQ(consumer.BufferedAt(0), 5);
  EXPECT_EQ(consumer.BufferedAt(100'000), 4);
  EXPECT_EQ(consumer.BufferedAt(450'000), 1);
  EXPECT_EQ(consumer.BufferedAt(500'000), 0);
  EXPECT_EQ(consumer.NextDrainAfter(0), 100'000);
  EXPECT_EQ(consumer.NextDrainAfter(499'999), 500'000);
  EXPECT_EQ(consumer.NextDrainAfter(500'000), -1);
  EXPECT_EQ(consumer.playback_end(), 500'000);
}

TEST(CaptureProducerTest, CaptureEndsAreSpaced) {
  CaptureProducer producer(100'000, 50'000, 2);
  EXPECT_EQ(producer.CaptureEnd(0), 150'000);
  EXPECT_EQ(producer.CaptureEnd(3), 450'000);
}

TEST(CaptureProducerTest, TimelyWritesNeverOverflow) {
  CaptureProducer producer(100'000, 0, 2);
  for (int i = 0; i < 10; ++i) {
    // Each block written 10 ms after its capture completes.
    EXPECT_TRUE(producer.BlockWritten(producer.CaptureEnd(i) + 10'000));
  }
  EXPECT_EQ(producer.overflows(), 0);
}

TEST(CaptureProducerTest, SlowWritesOverflowBoundedBuffers) {
  CaptureProducer producer(100'000, 0, 2);
  // Block 0 captured at 100 ms but written only at 350 ms; meanwhile
  // block 2's capture (starting at 200 ms) found both buffers occupied.
  EXPECT_FALSE(producer.BlockWritten(350'000));
  EXPECT_EQ(producer.overflows(), 1);
}

TEST(CaptureProducerTest, LargerPoolAbsorbsTheSameDelay) {
  CaptureProducer producer(100'000, 0, 4);
  EXPECT_TRUE(producer.BlockWritten(350'000));
  EXPECT_EQ(producer.overflows(), 0);
}

}  // namespace
}  // namespace vafs
