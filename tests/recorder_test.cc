#include <gtest/gtest.h>

#include "src/msm/recorder.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class RecorderTest : public ::testing::Test {
 protected:
  RecorderTest() : disk_(TestDiskParameters()), store_(&disk_) {}

  StrandPlacement Placement(const MediaProfile& media) {
    const DeviceProfile& device =
        media.medium == Medium::kVideo ? TestVideoDevice() : TestAudioDevice();
    ContinuityModel model(TestStorage(), device);
    Result<StrandPlacement> placement =
        model.DerivePlacement(RetrievalArchitecture::kPipelined, media);
    EXPECT_TRUE(placement.ok());
    return *placement;
  }

  Disk disk_;
  StrandStore store_;
};

TEST_F(RecorderTest, VideoRecordingProducesExpectedBlocks) {
  VideoSource source(TestVideo(), 5);
  const StrandPlacement placement = Placement(TestVideo());
  Result<RecordingResult> result = RecordVideo(&store_, &source, placement, 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->units_recorded, 60);  // 2 s at 30 fps
  EXPECT_EQ(result->blocks_total, (60 + placement.granularity - 1) / placement.granularity);
  EXPECT_EQ(result->silence_blocks, 0);
  EXPECT_LE(result->max_gap_sec, placement.max_scattering_sec + 1e-9);

  Result<const Strand*> strand = store_.Get(result->strand);
  ASSERT_TRUE(strand.ok());
  EXPECT_EQ((*strand)->info().unit_count, 60);
  EXPECT_EQ((*strand)->info().medium, Medium::kVideo);
}

TEST_F(RecorderTest, VideoContentSurvivesRoundTrip) {
  VideoSource source(TestVideo(), 77);
  const StrandPlacement placement = Placement(TestVideo());
  Result<RecordingResult> result = RecordVideo(&store_, &source, placement, 1.0);
  ASSERT_TRUE(result.ok());

  // Every frame of every block must match the regenerable source payload.
  const int64_t frame_bytes = source.frame_bytes();
  Result<const Strand*> strand = store_.Get(result->strand);
  ASSERT_TRUE(strand.ok());
  for (int64_t block = 0; block < (*strand)->block_count(); ++block) {
    std::vector<uint8_t> payload;
    ASSERT_TRUE(store_.ReadBlock(result->strand, block, &payload).ok());
    const int64_t units = (*strand)->UnitsInBlock(block);
    for (int64_t i = 0; i < units; ++i) {
      const int64_t frame = block * placement.granularity + i;
      std::vector<uint8_t> expected = source.FramePayload(frame);
      ASSERT_GE(static_cast<int64_t>(payload.size()), (i + 1) * frame_bytes);
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                             payload.begin() + static_cast<ptrdiff_t>(i * frame_bytes)))
          << "frame " << frame;
    }
  }
}

TEST_F(RecorderTest, AudioRecordingEliminatesSilence) {
  SpeechProfile speech;
  speech.silence_mean_sec = 1.0;  // pauses long enough to silence whole blocks
  AudioSource source(TestAudio(), speech, 21);
  // 512-sample blocks (128 ms): fine-grained enough for elimination.
  const StrandPlacement placement{512, 0.0, 0.1};
  Result<RecordingResult> result =
      RecordAudio(&store_, &source, SilenceDetector(), placement, 30.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->units_recorded, 4000 * 30);
  // The speech profile spends roughly a third of the time silent; at
  // least some blocks must have been eliminated, but not all.
  EXPECT_GT(result->silence_blocks, 0);
  EXPECT_LT(result->silence_blocks, result->blocks_total);

  Result<const Strand*> strand = store_.Get(result->strand);
  ASSERT_TRUE(strand.ok());
  EXPECT_EQ((*strand)->index().silence_block_count(), result->silence_blocks);
}

TEST_F(RecorderTest, SilenceEliminationSavesSpace) {
  const StrandPlacement placement{512, 0.0, 0.1};
  SpeechProfile speech;
  speech.silence_mean_sec = 1.0;
  // Same duration, with and without elimination (threshold 0 disables it).
  AudioSource with_source(TestAudio(), speech, 33);
  const int64_t free_start = store_.allocator().free_sectors();
  Result<RecordingResult> with =
      RecordAudio(&store_, &with_source, SilenceDetector(100.0), placement, 20.0);
  ASSERT_TRUE(with.ok());
  const int64_t used_with = free_start - store_.allocator().free_sectors();

  AudioSource without_source(TestAudio(), speech, 33);
  const int64_t free_middle = store_.allocator().free_sectors();
  Result<RecordingResult> without =
      RecordAudio(&store_, &without_source, SilenceDetector(0.0), placement, 20.0);
  ASSERT_TRUE(without.ok());
  const int64_t used_without = free_middle - store_.allocator().free_sectors();

  EXPECT_EQ(without->silence_blocks, 0);
  EXPECT_LT(used_with, used_without);
}

TEST_F(RecorderTest, TinyDurationStillRecordsOneUnit) {
  VideoSource source(TestVideo(), 1);
  Result<RecordingResult> result =
      RecordVideo(&store_, &source, Placement(TestVideo()), 0.001);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->units_recorded, 1);
  EXPECT_EQ(result->blocks_total, 1);
}

}  // namespace
}  // namespace vafs
