#include <gtest/gtest.h>

#include "src/rope/rope.h"

namespace vafs {
namespace {

Track MakeTrack(std::vector<TrackSegment> segments, double rate = 30.0, int64_t granularity = 4) {
  Track track;
  track.medium = Medium::kVideo;
  track.rate = rate;
  track.granularity = granularity;
  track.segments = std::move(segments);
  return track;
}

TEST(TrackTest, TotalsAndDuration) {
  Track track = MakeTrack({{1, 0, 60}, {kNullStrand, 0, 30}, {2, 10, 30}});
  EXPECT_EQ(track.TotalUnits(), 120);
  EXPECT_DOUBLE_EQ(track.DurationSec(), 4.0);
  EXPECT_EQ(track.UnitsAt(2.0), 60);
  EXPECT_EQ(track.UnitsAt(0.017), 1);  // rounds to nearest frame
}

TEST(TrackTest, AppendSegmentMergesContiguous) {
  Track track = MakeTrack({});
  AppendSegment(&track, {1, 0, 10});
  AppendSegment(&track, {1, 10, 5});  // contiguous in strand 1
  EXPECT_EQ(track.segments.size(), 1u);
  EXPECT_EQ(track.segments[0].unit_count, 15);
  AppendSegment(&track, {1, 20, 5});  // same strand, NOT contiguous
  EXPECT_EQ(track.segments.size(), 2u);
  AppendSegment(&track, {kNullStrand, 0, 3});
  AppendSegment(&track, {kNullStrand, 0, 4});  // gaps merge
  EXPECT_EQ(track.segments.size(), 3u);
  EXPECT_EQ(track.segments.back().unit_count, 7);
  AppendSegment(&track, {2, 0, 0});  // empty: dropped
  EXPECT_EQ(track.segments.size(), 3u);
}

TEST(TrackTest, SliceAcrossSegments) {
  Track track = MakeTrack({{1, 0, 10}, {2, 100, 10}, {3, 200, 10}});
  std::vector<TrackSegment> slice = SliceTrack(track, 5, 15);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0], (TrackSegment{1, 5, 5}));
  EXPECT_EQ(slice[1], (TrackSegment{2, 100, 10}));
  // Slice crossing a gap keeps the gap portion.
  Track with_gap = MakeTrack({{1, 0, 10}, {kNullStrand, 0, 10}, {2, 0, 10}});
  slice = SliceTrack(with_gap, 8, 14);
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_TRUE(slice[1].IsGap());
  EXPECT_EQ(slice[1].unit_count, 10);
  EXPECT_EQ(slice[2], (TrackSegment{2, 0, 2}));
}

TEST(TrackTest, SliceEdgeCases) {
  Track track = MakeTrack({{1, 0, 10}});
  EXPECT_TRUE(SliceTrack(track, 10, 5).empty());  // beyond end
  EXPECT_TRUE(SliceTrack(track, 3, 0).empty());   // zero length
  std::vector<TrackSegment> whole = SliceTrack(track, 0, 10);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0], (TrackSegment{1, 0, 10}));
}

TEST(TrackTest, EraseRangeShortensAndRejoins) {
  Track track = MakeTrack({{1, 0, 30}});
  EraseRange(&track, 10, 10);
  EXPECT_EQ(track.TotalUnits(), 20);
  ASSERT_EQ(track.segments.size(), 2u);
  EXPECT_EQ(track.segments[0], (TrackSegment{1, 0, 10}));
  EXPECT_EQ(track.segments[1], (TrackSegment{1, 20, 10}));
  // Erasing the hole's neighbourhood rejoins contiguous remains.
  Track track2 = MakeTrack({{1, 0, 30}});
  EraseRange(&track2, 0, 10);
  ASSERT_EQ(track2.segments.size(), 1u);
  EXPECT_EQ(track2.segments[0], (TrackSegment{1, 10, 20}));
}

TEST(TrackTest, BlankRangePreservesDuration) {
  Track track = MakeTrack({{1, 0, 30}});
  BlankRange(&track, 10, 10);
  EXPECT_EQ(track.TotalUnits(), 30);
  ASSERT_EQ(track.segments.size(), 3u);
  EXPECT_TRUE(track.segments[1].IsGap());
  EXPECT_EQ(track.segments[1].unit_count, 10);
}

TEST(TrackTest, InsertShiftsRemainder) {
  Track track = MakeTrack({{1, 0, 20}});
  InsertSegments(&track, 10, {{2, 50, 5}});
  EXPECT_EQ(track.TotalUnits(), 25);
  ASSERT_EQ(track.segments.size(), 3u);
  EXPECT_EQ(track.segments[0], (TrackSegment{1, 0, 10}));
  EXPECT_EQ(track.segments[1], (TrackSegment{2, 50, 5}));
  EXPECT_EQ(track.segments[2], (TrackSegment{1, 10, 10}));
  // Insert at the very end appends.
  InsertSegments(&track, 25, {{3, 0, 5}});
  EXPECT_EQ(track.segments.back(), (TrackSegment{3, 0, 5}));
}

TEST(TrackTest, InsertAdjacentPiecesRemerge) {
  Track track = MakeTrack({{1, 0, 20}});
  // Inserting strand 1's units 20.. right at the end merges.
  InsertSegments(&track, 20, {{1, 20, 10}});
  ASSERT_EQ(track.segments.size(), 1u);
  EXPECT_EQ(track.segments[0].unit_count, 30);
}

TEST(AccessControlTest, EmptyListsAllowEveryone) {
  AccessControl access;
  EXPECT_TRUE(access.AllowsPlay("anyone", "creator"));
  EXPECT_TRUE(access.AllowsEdit("anyone", "creator"));
}

TEST(AccessControlTest, ListsRestrict) {
  AccessControl access;
  access.play_users = {"alice"};
  access.edit_users = {"bob"};
  EXPECT_TRUE(access.AllowsPlay("alice", "creator"));
  EXPECT_FALSE(access.AllowsPlay("bob", "creator"));
  EXPECT_TRUE(access.AllowsEdit("bob", "creator"));
  EXPECT_FALSE(access.AllowsEdit("alice", "creator"));
  // The creator is always allowed.
  EXPECT_TRUE(access.AllowsPlay("creator", "creator"));
  EXPECT_TRUE(access.AllowsEdit("creator", "creator"));
}

TEST(RopeTest, LengthIsLongerTimeline) {
  Rope rope(1, "alice");
  rope.video() = MakeTrack({{1, 0, 90}});         // 3 s at 30 fps
  rope.audio().medium = Medium::kAudio;
  rope.audio().rate = 4000.0;
  rope.audio().granularity = 512;
  rope.audio().segments = {{2, 0, 20000}};        // 5 s at 4 kHz
  EXPECT_DOUBLE_EQ(rope.LengthSec(), 5.0);
}

TEST(RopeTest, SynchronizationInfoSegmentsByBothTracks) {
  // Video: strand 1 for 2 s then strand 2 for 2 s. Audio: strand 3 for 4 s.
  Rope rope(1, "alice");
  rope.video() = MakeTrack({{1, 0, 60}, {2, 0, 60}});
  rope.audio().medium = Medium::kAudio;
  rope.audio().rate = 4000.0;
  rope.audio().granularity = 512;
  rope.audio().segments = {{3, 0, 16000}};

  std::vector<SyncInterval> info = rope.SynchronizationInfo();
  ASSERT_EQ(info.size(), 2u);
  EXPECT_EQ(info[0].video_strand, 1u);
  EXPECT_EQ(info[0].audio_strand, 3u);
  EXPECT_DOUBLE_EQ(info[0].start_sec, 0.0);
  EXPECT_NEAR(info[0].length_sec, 2.0, 1e-9);
  EXPECT_EQ(info[0].video_block, 0);
  EXPECT_EQ(info[0].audio_block, 0);
  EXPECT_EQ(info[1].video_strand, 2u);
  EXPECT_EQ(info[1].audio_strand, 3u);
  // Audio correspondence: 2 s in = sample 8000 = block 15 (granularity 512).
  EXPECT_EQ(info[1].audio_block, 8000 / 512);
  EXPECT_EQ(info[1].video_block, 0);  // strand 2 starts at its block 0
}

TEST(RopeTest, SynchronizationInfoMarksGapsAsNullStrands) {
  Rope rope(1, "alice");
  rope.video() = MakeTrack({{1, 0, 30}, {kNullStrand, 0, 30}, {1, 30, 30}});
  std::vector<SyncInterval> info = rope.SynchronizationInfo();
  ASSERT_EQ(info.size(), 3u);
  EXPECT_EQ(info[1].video_strand, kNullStrand);
  EXPECT_EQ(info[0].video_strand, 1u);
  EXPECT_EQ(info[2].video_strand, 1u);
  // The resumed interval starts at strand unit 30 -> block 7 (granularity 4).
  EXPECT_EQ(info[2].video_block, 30 / 4);
}

}  // namespace
}  // namespace vafs
