#include <gtest/gtest.h>

#include "src/msm/recorder.h"
#include "src/rope/rope_server.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class RopeServerTest : public ::testing::Test {
 protected:
  RopeServerTest() : disk_(TestDiskParameters()), store_(&disk_), server_(&store_) {}

  StrandId RecordVideoStrand(double duration_sec, uint64_t seed) {
    VideoSource source(TestVideo(), seed);
    ContinuityModel model(TestStorage(), TestVideoDevice());
    Result<StrandPlacement> placement =
        model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
    EXPECT_TRUE(placement.ok());
    Result<RecordingResult> result = RecordVideo(&store_, &source, *placement, duration_sec);
    EXPECT_TRUE(result.ok());
    return result->strand;
  }

  StrandId RecordAudioStrand(double duration_sec, uint64_t seed) {
    AudioSource source(TestAudio(), SpeechProfile{}, seed);
    Result<RecordingResult> result = RecordAudio(&store_, &source, SilenceDetector(),
                                                 StrandPlacement{512, 0.0, 0.1}, duration_sec);
    EXPECT_TRUE(result.ok());
    return result->strand;
  }

  RopeId AvRope(double duration_sec, uint64_t seed) {
    Result<RopeId> rope = server_.CreateRope(
        "alice", RecordVideoStrand(duration_sec, seed), RecordAudioStrand(duration_sec, seed));
    EXPECT_TRUE(rope.ok());
    return *rope;
  }

  Disk disk_;
  StrandStore store_;
  RopeServer server_;
};

TEST_F(RopeServerTest, CreateRopeAdoptsStrandParameters) {
  const RopeId id = AvRope(2.0, 1);
  Result<const Rope*> rope = server_.Find(id);
  ASSERT_TRUE(rope.ok());
  EXPECT_EQ((*rope)->creator(), "alice");
  EXPECT_DOUBLE_EQ((*rope)->video().rate, 30.0);
  EXPECT_DOUBLE_EQ((*rope)->audio().rate, 4000.0);
  EXPECT_NEAR((*rope)->LengthSec(), 2.0, 0.01);
  EXPECT_EQ(server_.rope_count(), 1);
}

TEST_F(RopeServerTest, CreateRopeValidation) {
  EXPECT_EQ(server_.CreateRope("alice", kNullStrand, kNullStrand).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(server_.CreateRope("alice", 12345, kNullStrand).status().code(),
            ErrorCode::kNotFound);
  // Medium mismatch: audio strand in the video slot.
  const StrandId audio = RecordAudioStrand(1.0, 3);
  EXPECT_EQ(server_.CreateRope("alice", audio, kNullStrand).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(RopeServerTest, InsertSplicesBothMedia) {
  const RopeId base = AvRope(4.0, 10);
  const RopeId clip = AvRope(2.0, 20);
  const double base_length = (*server_.Find(base))->LengthSec();
  // Fig. 9: insert the whole clip at t = 1 s.
  ASSERT_TRUE(server_.Insert("alice", base, 1.0, MediaSelector::kAudioVisual, clip,
                             TimeInterval{0.0, 2.0})
                  .ok());
  Result<const Rope*> rope = server_.Find(base);
  ASSERT_TRUE(rope.ok());
  EXPECT_NEAR((*rope)->LengthSec(), base_length + 2.0, 0.01);
  // The video track now has three intervals: base[0,1), clip, base[1,..).
  EXPECT_EQ((*rope)->video().segments.size(), 3u);
  const std::vector<SyncInterval> info = (*rope)->SynchronizationInfo();
  EXPECT_GE(info.size(), 3u);
}

TEST_F(RopeServerTest, InsertSingleMediumLeavesOtherAlone) {
  const RopeId base = AvRope(4.0, 11);
  const RopeId clip = AvRope(2.0, 21);
  const double audio_before = (*server_.Find(base))->audio().DurationSec();
  ASSERT_TRUE(server_.Insert("alice", base, 1.0, MediaSelector::kVideo, clip,
                             TimeInterval{0.0, 2.0})
                  .ok());
  Result<const Rope*> rope = server_.Find(base);
  EXPECT_NEAR((*rope)->video().DurationSec(), 6.0, 0.01);
  EXPECT_NEAR((*rope)->audio().DurationSec(), audio_before, 1e-9);
}

TEST_F(RopeServerTest, InsertFromRopeWithoutMediumInsertsAlignedGap) {
  const RopeId base = AvRope(4.0, 12);
  // A video-only rope.
  Result<RopeId> clip = server_.CreateRope("alice", RecordVideoStrand(2.0, 22), kNullStrand);
  ASSERT_TRUE(clip.ok());
  ASSERT_TRUE(server_.Insert("alice", base, 1.0, MediaSelector::kAudioVisual, *clip,
                             TimeInterval{0.0, 2.0})
                  .ok());
  Result<const Rope*> rope = server_.Find(base);
  // Both timelines grew by 2 s; the audio grew by a gap.
  EXPECT_NEAR((*rope)->video().DurationSec(), 6.0, 0.01);
  EXPECT_NEAR((*rope)->audio().DurationSec(), 6.0, 0.01);
  bool has_gap = false;
  for (const TrackSegment& segment : (*rope)->audio().segments) {
    has_gap |= segment.IsGap();
  }
  EXPECT_TRUE(has_gap);
}

TEST_F(RopeServerTest, ReplaceSwapsContent) {
  const RopeId base = AvRope(4.0, 13);
  const RopeId donor = AvRope(2.0, 23);
  const StrandId donor_video = (*server_.Find(donor))->video().segments[0].strand;
  ASSERT_TRUE(server_.Replace("alice", base, MediaSelector::kVideo, TimeInterval{1.0, 2.0},
                              donor, TimeInterval{0.0, 2.0})
                  .ok());
  Result<const Rope*> rope = server_.Find(base);
  EXPECT_NEAR((*rope)->video().DurationSec(), 4.0, 0.01);
  // The middle of the video track now references the donor's strand.
  const Track& video = (*rope)->video();
  ASSERT_EQ(video.segments.size(), 3u);
  EXPECT_EQ(video.segments[1].strand, donor_video);
}

TEST_F(RopeServerTest, ReplaceFillsNonExistentMedium) {
  // The paper's Rope4/Rope5 example: an audio-only rope gains the video
  // component of another rope.
  Result<RopeId> audio_only = server_.CreateRope("alice", kNullStrand, RecordAudioStrand(3.0, 14));
  ASSERT_TRUE(audio_only.ok());
  Result<RopeId> video_donor = server_.CreateRope("alice", RecordVideoStrand(3.0, 24), kNullStrand);
  ASSERT_TRUE(video_donor.ok());
  ASSERT_TRUE(server_.Replace("alice", *audio_only, MediaSelector::kVideo,
                              TimeInterval{0.0, 3.0}, *video_donor, TimeInterval{0.0, 3.0})
                  .ok());
  Result<const Rope*> rope = server_.Find(*audio_only);
  EXPECT_GT((*rope)->video().rate, 0.0);
  EXPECT_NEAR((*rope)->video().DurationSec(), 3.0, 0.01);
  EXPECT_NEAR((*rope)->audio().DurationSec(), 3.0, 0.01);
  // Synchronization info pairs the two strands.
  const std::vector<SyncInterval> info = (*rope)->SynchronizationInfo();
  ASSERT_FALSE(info.empty());
  EXPECT_NE(info[0].video_strand, kNullStrand);
  EXPECT_NE(info[0].audio_strand, kNullStrand);
}

TEST_F(RopeServerTest, SubstringCreatesIndependentRope) {
  const RopeId base = AvRope(4.0, 15);
  ASSERT_TRUE(server_.AddTrigger("alice", base, Trigger{2.5, "slide 2"}).ok());
  ASSERT_TRUE(server_.AddTrigger("alice", base, Trigger{0.5, "slide 1"}).ok());
  Result<RopeId> sub =
      server_.Substring("bob", base, MediaSelector::kAudioVisual, TimeInterval{2.0, 1.5});
  ASSERT_TRUE(sub.ok());
  Result<const Rope*> rope = server_.Find(*sub);
  EXPECT_EQ((*rope)->creator(), "bob");
  EXPECT_NEAR((*rope)->LengthSec(), 1.5, 0.01);
  // Triggers in range come along, re-based (2.5 -> 0.5).
  ASSERT_EQ((*rope)->triggers().size(), 1u);
  EXPECT_NEAR((*rope)->triggers()[0].at_sec, 0.5, 1e-9);
  // The base is untouched.
  EXPECT_NEAR((*server_.Find(base))->LengthSec(), 4.0, 0.01);
}

TEST_F(RopeServerTest, ConcatAlignsAndAppends) {
  const RopeId first = AvRope(2.0, 16);
  const RopeId second = AvRope(3.0, 26);
  ASSERT_TRUE(server_.AddTrigger("alice", second, Trigger{1.0, "part 2"}).ok());
  Result<RopeId> combined = server_.Concat("carol", first, second);
  ASSERT_TRUE(combined.ok());
  Result<const Rope*> rope = server_.Find(*combined);
  EXPECT_NEAR((*rope)->LengthSec(), 5.0, 0.02);
  // The second part's trigger shifted by the first rope's length.
  ASSERT_EQ((*rope)->triggers().size(), 1u);
  EXPECT_NEAR((*rope)->triggers()[0].at_sec, 3.0, 0.02);
  // Sources are untouched; strands are shared, not copied.
  EXPECT_EQ(server_.InterestCount((*rope)->video().segments[0].strand), 2);
}

TEST_F(RopeServerTest, DeleteAllMediaShortensRope) {
  const RopeId base = AvRope(4.0, 17);
  ASSERT_TRUE(server_.AddTrigger("alice", base, Trigger{1.5, "gone"}).ok());
  ASSERT_TRUE(server_.AddTrigger("alice", base, Trigger{3.5, "kept"}).ok());
  ASSERT_TRUE(
      server_.Delete("alice", base, MediaSelector::kAudioVisual, TimeInterval{1.0, 2.0}).ok());
  Result<const Rope*> rope = server_.Find(base);
  EXPECT_NEAR((*rope)->LengthSec(), 2.0, 0.01);
  // The in-range trigger vanished; the later one shifted left.
  ASSERT_EQ((*rope)->triggers().size(), 1u);
  EXPECT_EQ((*rope)->triggers()[0].text, "kept");
  EXPECT_NEAR((*rope)->triggers()[0].at_sec, 1.5, 1e-9);
}

TEST_F(RopeServerTest, DeleteOneMediumBlanksIt) {
  const RopeId base = AvRope(4.0, 18);
  ASSERT_TRUE(server_.Delete("alice", base, MediaSelector::kAudio, TimeInterval{1.0, 2.0}).ok());
  Result<const Rope*> rope = server_.Find(base);
  // Duration unchanged; audio has a gap in the middle.
  EXPECT_NEAR((*rope)->LengthSec(), 4.0, 0.01);
  EXPECT_NEAR((*rope)->audio().DurationSec(), 4.0, 0.01);
  bool has_gap = false;
  for (const TrackSegment& segment : (*rope)->audio().segments) {
    has_gap |= segment.IsGap();
  }
  EXPECT_TRUE(has_gap);
}

TEST_F(RopeServerTest, AccessControlEnforced) {
  const RopeId base = AvRope(2.0, 19);
  AccessControl access;
  access.play_users = {"bob"};
  access.edit_users = {};  // empty edit list = everyone may edit; tighten:
  access.edit_users = {"alice"};
  ASSERT_TRUE(server_.SetAccess("alice", base, access).ok());
  // carol may not play or edit.
  EXPECT_EQ(server_
                .ResolveBlocks("carol", base, Medium::kVideo, TimeInterval{0.0, 1.0})
                .status()
                .code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(server_.Delete("carol", base, MediaSelector::kVideo, TimeInterval{0.0, 1.0}).code(),
            ErrorCode::kPermissionDenied);
  // bob may play but not edit.
  EXPECT_TRUE(server_.ResolveBlocks("bob", base, Medium::kVideo, TimeInterval{0.0, 1.0}).ok());
  EXPECT_EQ(server_.Substring("carol", base, MediaSelector::kVideo, TimeInterval{0.0, 1.0})
                .status()
                .code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(RopeServerTest, ResolveBlocksCoversIntervalAndGaps) {
  const RopeId base = AvRope(4.0, 30);
  Result<const Rope*> rope = server_.Find(base);
  const int64_t q = (*rope)->video().granularity;
  Result<std::vector<PrimaryEntry>> blocks =
      server_.ResolveBlocks("alice", base, Medium::kVideo, TimeInterval{0.0, 4.0});
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(static_cast<int64_t>(blocks->size()), (120 + q - 1) / q);
  // Blank some audio, then resolve: gaps appear as silence entries.
  ASSERT_TRUE(server_.Delete("alice", base, MediaSelector::kAudio, TimeInterval{1.0, 2.0}).ok());
  Result<std::vector<PrimaryEntry>> audio_blocks =
      server_.ResolveBlocks("alice", base, Medium::kAudio, TimeInterval{0.0, 4.0});
  ASSERT_TRUE(audio_blocks.ok());
  int64_t silence = 0;
  for (const PrimaryEntry& entry : *audio_blocks) {
    silence += entry.IsSilence() ? 1 : 0;
  }
  EXPECT_GE(silence, 2000 / 512);  // at least the blanked 2 s worth
}

TEST_F(RopeServerTest, GarbageCollectionFollowsInterests) {
  const StrandId video = RecordVideoStrand(2.0, 40);
  const StrandId audio = RecordAudioStrand(2.0, 41);
  Result<RopeId> rope = server_.CreateRope("alice", video, audio);
  ASSERT_TRUE(rope.ok());
  EXPECT_EQ(server_.InterestCount(video), 1);
  // A substring shares the strands.
  Result<RopeId> sub =
      server_.Substring("alice", *rope, MediaSelector::kAudioVisual, TimeInterval{0.0, 1.0});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(server_.InterestCount(video), 2);
  // Nothing is collectable while referenced.
  EXPECT_EQ(server_.CollectGarbage(), 0);
  ASSERT_TRUE(server_.DeleteRope("alice", *rope).ok());
  EXPECT_EQ(server_.InterestCount(video), 1);
  EXPECT_EQ(server_.CollectGarbage(), 0);
  ASSERT_TRUE(server_.DeleteRope("alice", *sub).ok());
  EXPECT_EQ(server_.InterestCount(video), 0);
  // Both strands are now garbage.
  const int64_t strands_before = store_.strand_count();
  EXPECT_EQ(server_.CollectGarbage(), 2);
  EXPECT_EQ(store_.strand_count(), strands_before - 2);
}

TEST_F(RopeServerTest, PinnedStrandsSurviveCollection) {
  const StrandId video = RecordVideoStrand(1.0, 50);
  server_.Pin(video);
  EXPECT_EQ(server_.CollectGarbage(), 0);
  server_.Unpin(video);
  EXPECT_EQ(server_.CollectGarbage(), 1);
}

TEST_F(RopeServerTest, DeleteRangeReleasesStrandWhenFullyRemoved) {
  const StrandId video = RecordVideoStrand(2.0, 60);
  Result<RopeId> rope = server_.CreateRope("alice", video, kNullStrand);
  ASSERT_TRUE(rope.ok());
  // Delete the entire content: the strand loses its last interest.
  ASSERT_TRUE(server_
                  .Delete("alice", *rope, MediaSelector::kAudioVisual,
                          TimeInterval{0.0, 2.0})
                  .ok());
  EXPECT_EQ(server_.InterestCount(video), 0);
  EXPECT_EQ(server_.CollectGarbage(), 1);
}

TEST_F(RopeServerTest, RepairRopeFixesEditSeams) {
  // Two strands recorded far apart in time end up far apart on disk once
  // the disk has filled in between; concatenating them creates a seam.
  const RopeId first = AvRope(3.0, 70);
  // Fill space so the next strand lands far away.
  const StrandId filler = RecordVideoStrand(8.0, 71);
  const RopeId second = AvRope(3.0, 72);
  Result<RopeId> combined = server_.Concat("alice", first, second);
  ASSERT_TRUE(combined.ok());

  Result<RopeServer::RopeRepairStats> stats = server_.RepairRope(*combined, Medium::kVideo);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->seams_checked, 1);
  // Whether a repair fired depends on the realized gap; if it did, the
  // rope must now reference the copy strand and every seam must be within
  // bounds on re-check.
  Result<RopeServer::RopeRepairStats> recheck = server_.RepairRope(*combined, Medium::kVideo);
  ASSERT_TRUE(recheck.ok());
  EXPECT_EQ(recheck->seams_repaired, 0);
  (void)filler;
}

TEST_F(RopeServerTest, OutOfRangeIntervalsRejected) {
  const RopeId base = AvRope(2.0, 80);
  EXPECT_EQ(server_
                .ResolveBlocks("alice", base, Medium::kVideo, TimeInterval{5.0, 1.0})
                .status()
                .code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(server_.Insert("alice", base, 10.0, MediaSelector::kVideo, base,
                           TimeInterval{0.0, 1.0})
                .code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(server_
                .Substring("alice", base, MediaSelector::kVideo, TimeInterval{3.0, 1.0})
                .status()
                .code(),
            ErrorCode::kOutOfRange);
}

TEST_F(RopeServerTest, TriggerValidation) {
  const RopeId base = AvRope(2.0, 81);
  EXPECT_EQ(server_.AddTrigger("alice", base, Trigger{-1.0, "bad"}).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(server_.AddTrigger("alice", base, Trigger{99.0, "bad"}).code(),
            ErrorCode::kOutOfRange);
  EXPECT_TRUE(server_.AddTrigger("alice", base, Trigger{1.0, "ok"}).ok());
}

}  // namespace
}  // namespace vafs
