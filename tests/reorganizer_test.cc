#include <gtest/gtest.h>

#include "src/msm/recorder.h"
#include "src/msm/reorganizer.h"
#include "src/rope/rope_server.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class ReorganizerTest : public ::testing::Test {
 protected:
  ReorganizerTest() : disk_(TestDiskParameters()), store_(&disk_), server_(&store_) {}

  // A well-placed strand recorded under the derived placement.
  StrandId HealthyStrand(uint64_t seed, double duration = 2.0) {
    VideoSource source(TestVideo(), seed);
    ContinuityModel model(TestStorage(), TestVideoDevice());
    Result<StrandPlacement> placement =
        model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
    Result<RecordingResult> result = RecordVideo(&store_, &source, *placement, duration);
    EXPECT_TRUE(result.ok());
    return result->strand;
  }

  // A strand recorded under a lax contract with placement deliberately
  // strewn across the disk: legal when written, anomalous once audited
  // against a tighter (recomputed) bound — the Section 6.2 scenario.
  StrandId ScatteredStrand() {
    Result<std::unique_ptr<StrandWriter>> writer =
        store_.CreateStrand(TestVideo(), StrandPlacement{2, 0.0, 10.0});
    EXPECT_TRUE(writer.ok());
    const std::vector<uint8_t> payload(2 * 16384 / 8, 1);
    for (int64_t b = 0; b < 6; ++b) {
      // Ping-pong the arm: farthest-forward, then farthest-backward.
      (*writer)->SetPlacementPreference(b % 2 == 0 ? PlacementPreference::kFarthestForward
                                                   : PlacementPreference::kFarthestBackward);
      EXPECT_TRUE((*writer)->AppendBlock(payload).ok());
    }
    Result<StrandId> id = (*writer)->Finish(12);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  Disk disk_;
  StrandStore store_;
  RopeServer server_;
};

TEST_F(ReorganizerTest, HealthyStrandAuditsClean) {
  const StrandId id = HealthyStrand(1);
  Result<StrandHealth> health = AuditStrand(&store_, id);
  ASSERT_TRUE(health.ok());
  EXPECT_GT(health->data_blocks, 0);
  EXPECT_EQ(health->anomalous_gaps, 0);
  EXPECT_LE(health->max_gap_sec, health->bound_sec + 1e-9);
  EXPECT_FALSE(health->NeedsRepair());
}

TEST_F(ReorganizerTest, ScatteredStrandFailsTightAudit) {
  const StrandId id = ScatteredStrand();
  // Within its own (lax) contract...
  Result<StrandHealth> lax = AuditStrand(&store_, id);
  ASSERT_TRUE(lax.ok());
  EXPECT_FALSE(lax->NeedsRepair());
  // ...but anomalous against a recomputed 12 ms bound.
  Result<StrandHealth> tight = AuditStrand(&store_, id, 0.012);
  ASSERT_TRUE(tight.ok());
  EXPECT_TRUE(tight->NeedsRepair());
  EXPECT_GT(tight->max_gap_sec, 0.012);
}

TEST_F(ReorganizerTest, RelocationRestoresScattering) {
  const StrandId id = ScatteredStrand();
  Result<StrandHealth> before = AuditStrand(&store_, id, 0.012);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->NeedsRepair());

  Result<RelocationOutcome> outcome =
      RelocateStrand(&store_, id, /*pack_hint_sector=*/-1, /*new_bound_sec=*/0.012);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->blocks_moved, 6);
  EXPECT_GT(outcome->copy_time, 0);

  Result<StrandHealth> after = AuditStrand(&store_, outcome->new_strand);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->max_gap_sec, before->max_gap_sec);
  EXPECT_EQ(after->anomalous_gaps, 0);
  // The relocated strand carries the new contract.
  Result<const Strand*> relocated = store_.Get(outcome->new_strand);
  ASSERT_TRUE(relocated.ok());
  EXPECT_DOUBLE_EQ((*relocated)->info().max_scattering_sec, 0.012);
}

TEST_F(ReorganizerTest, RelocationPreservesContent) {
  const StrandId id = ScatteredStrand();
  Result<RelocationOutcome> outcome = RelocateStrand(&store_, id);
  ASSERT_TRUE(outcome.ok());
  Result<const Strand*> original = store_.Get(id);
  Result<const Strand*> relocated = store_.Get(outcome->new_strand);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(relocated.ok());
  EXPECT_EQ((*relocated)->info().unit_count, (*original)->info().unit_count);
  for (int64_t b = 0; b < (*original)->block_count(); ++b) {
    std::vector<uint8_t> from;
    std::vector<uint8_t> to;
    ASSERT_TRUE(store_.ReadBlock(id, b, &from).ok());
    ASSERT_TRUE(store_.ReadBlock(outcome->new_strand, b, &to).ok());
    EXPECT_EQ(from, to) << "block " << b;
  }
}

TEST_F(ReorganizerTest, RelocationPreservesSilence) {
  Result<std::unique_ptr<StrandWriter>> writer =
      store_.CreateStrand(TestAudio(), StrandPlacement{512, 0.0, 0.1});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(512, 1)).ok());
  ASSERT_TRUE((*writer)->AppendSilence().ok());
  ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(512, 2)).ok());
  Result<StrandId> id = (*writer)->Finish(3 * 512);
  ASSERT_TRUE(id.ok());

  Result<RelocationOutcome> outcome = RelocateStrand(&store_, *id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->blocks_moved, 2);  // silence is kept, not moved
  Result<const Strand*> relocated = store_.Get(outcome->new_strand);
  ASSERT_TRUE(relocated.ok());
  EXPECT_TRUE((*relocated)->index().Lookup(1)->IsSilence());
  EXPECT_EQ((*relocated)->index().silence_block_count(), 1);
}

TEST_F(ReorganizerTest, ReorganizeStorageRelocatesAnomalousAndRebinds) {
  const StrandId scattered = ScatteredStrand();
  const StrandId healthy = HealthyStrand(3);
  Result<RopeId> rope1 = server_.CreateRope("alice", scattered, kNullStrand);
  Result<RopeId> rope2 = server_.CreateRope("alice", healthy, kNullStrand);
  ASSERT_TRUE(rope1.ok());
  ASSERT_TRUE(rope2.ok());

  Result<RopeServer::StorageReorgStats> stats = server_.ReorganizeStorage(0.012);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->strands_audited, 2);
  EXPECT_EQ(stats->strands_relocated, 1);  // only the scattered one moves
  EXPECT_EQ(stats->blocks_moved, 6);

  // The rope now references the relocated strand; the original is gone.
  const Rope* rope = *server_.Find(*rope1);
  EXPECT_NE(rope->video().segments[0].strand, scattered);
  EXPECT_FALSE(store_.Get(scattered).ok());
  // And every referenced strand now passes the tight audit.
  for (const TrackSegment& segment : rope->video().segments) {
    Result<StrandHealth> health = AuditStrand(&store_, segment.strand, 0.012);
    ASSERT_TRUE(health.ok());
    EXPECT_FALSE(health->NeedsRepair());
  }
}

TEST_F(ReorganizerTest, CompactStorageConsolidatesFreeSpace) {
  // Record several strands, delete every other one: free space fragments.
  std::vector<RopeId> ropes;
  for (int i = 0; i < 6; ++i) {
    const StrandId id = HealthyStrand(static_cast<uint64_t>(i) + 1, 1.0);
    ropes.push_back(*server_.CreateRope("alice", id, kNullStrand));
  }
  for (size_t i = 0; i < ropes.size(); i += 2) {
    ASSERT_TRUE(server_.DeleteRope("alice", ropes[i]).ok());
  }
  ASSERT_EQ(server_.CollectGarbage(), 3);
  const int64_t largest_before = store_.allocator().LargestFreeExtent();

  Result<RopeServer::StorageReorgStats> stats = server_.CompactStorage();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->strands_relocated, 3);
  EXPECT_GE(stats->largest_free_extent_after, largest_before);

  // The surviving ropes still resolve to readable blocks.
  for (size_t i = 1; i < ropes.size(); i += 2) {
    Result<std::vector<PrimaryEntry>> blocks =
        server_.ResolveBlocks("alice", ropes[i], Medium::kVideo, TimeInterval{0.0, 1.0});
    ASSERT_TRUE(blocks.ok());
    for (const PrimaryEntry& entry : *blocks) {
      std::vector<uint8_t> payload;
      EXPECT_TRUE(disk_.Read(entry.sector, entry.sector_count, &payload).ok());
    }
  }
}

TEST_F(ReorganizerTest, UnknownStrandRejected) {
  EXPECT_FALSE(AuditStrand(&store_, 999).ok());
  EXPECT_FALSE(RelocateStrand(&store_, 999).ok());
}

}  // namespace
}  // namespace vafs
