#include <gtest/gtest.h>

#include <vector>

#include "src/disk/disk_array.h"
#include "src/msm/block_cache.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : disk_(TestDiskParameters()), store_(&disk_) {
    tee_.Add(&log_);
    tee_.Add(&auditor_);
    store_.set_trace_sink(&tee_);
  }

  // Strict mode: every test's full trace (scheduler rounds, admission
  // decisions, strand placements) must replay clean through the auditor.
  void TearDown() override { EXPECT_TRUE(auditor_.Clean()) << auditor_.Report(); }

  // Scheduler options with the trace pipeline attached.
  SchedulerOptions Traced() {
    SchedulerOptions options;
    options.trace = &tee_;
    return options;
  }

  StrandPlacement VideoPlacement() {
    ContinuityModel model(TestStorage(), TestVideoDevice());
    Result<StrandPlacement> placement =
        model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
    EXPECT_TRUE(placement.ok());
    return *placement;
  }

  // Records a strand and returns a playback request over all its blocks.
  PlaybackRequest MakePlayback(double duration_sec, uint64_t seed) {
    VideoSource source(TestVideo(), seed);
    const StrandPlacement placement = VideoPlacement();
    Result<RecordingResult> recorded = RecordVideo(&store_, &source, placement, duration_sec);
    EXPECT_TRUE(recorded.ok());
    Result<const Strand*> strand = store_.Get(recorded->strand);
    EXPECT_TRUE(strand.ok());
    PlaybackRequest request;
    for (int64_t b = 0; b < (*strand)->block_count(); ++b) {
      request.blocks.push_back(*(*strand)->index().Lookup(b));
    }
    request.block_duration = (*strand)->info().BlockDuration();
    request.spec = RequestSpec{TestVideo(), placement.granularity};
    return request;
  }

  AdmissionControl MakeAdmission() {
    // Use the realized average scattering so admission is representative.
    const double avg = std::max(store_.AverageScatteringSec(), 1e-4);
    return AdmissionControl(TestStorage(), avg);
  }

  Disk disk_;
  StrandStore store_;
  Simulator sim_;
  // Trace pipeline: record + audit every event of the test (strict mode).
  // Admission plans against the fleet-average scattering (Eq. 13), so at
  // full load a round whose strands scatter worse than average can exceed
  // its Eq. 11 budget by a small statistical margin; 5% slack absorbs that
  // spread while still catching systematic overruns.
  obs::TraceLog log_;
  obs::ContinuityAuditor auditor_{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::TeeSink tee_;
};

TEST_F(SchedulerTest, SinglePlaybackCompletesWithoutViolations) {
  PlaybackRequest request = MakePlayback(5.0, 1);
  const int64_t total_blocks = static_cast<int64_t>(request.blocks.size());
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  scheduler.RunUntilIdle();

  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->blocks_done, total_blocks);
  EXPECT_EQ(stats->continuity_violations, 0);
  EXPECT_GT(stats->completion_time, 0);
  EXPECT_GE(stats->startup_latency, 0);
}

TEST_F(SchedulerTest, ManyConcurrentPlaybacksMeetDeadlines) {
  std::vector<PlaybackRequest> requests;
  for (int i = 0; i < 3; ++i) {
    requests.push_back(MakePlayback(4.0, 100 + i));
  }
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  std::vector<RequestId> ids;
  for (PlaybackRequest& request : requests) {
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  scheduler.RunUntilIdle();
  for (RequestId id : ids) {
    Result<RequestStats> stats = scheduler.stats(id);
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats->completed);
    EXPECT_EQ(stats->continuity_violations, 0) << "request " << id;
  }
  EXPECT_GT(scheduler.rounds_executed(), 1);
}

TEST_F(SchedulerTest, AdmissionRejectsBeyondCeiling) {
  AdmissionControl admission = MakeAdmission();
  // Build the smallest strand once; submit the same blocks many times.
  PlaybackRequest prototype = MakePlayback(2.0, 7);
  const int64_t n_max =
      admission.Analyze({RequestSpec{TestVideo(), VideoPlacement().granularity}}).n_max;
  ServiceScheduler scheduler(&store_, &sim_, admission, Traced());
  int admitted = 0;
  int rejected = 0;
  for (int64_t i = 0; i < n_max + 3; ++i) {
    PlaybackRequest request = prototype;
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    if (id.ok()) {
      ++admitted;
    } else {
      EXPECT_EQ(id.status().code(), ErrorCode::kAdmissionRejected);
      ++rejected;
    }
  }
  EXPECT_EQ(admitted, n_max);
  EXPECT_EQ(rejected, 3);
  scheduler.RunUntilIdle();
}

TEST_F(SchedulerTest, SteppedAdmissionRaisesKGradually) {
  PlaybackRequest first = MakePlayback(6.0, 11);
  PlaybackRequest second = MakePlayback(6.0, 12);
  PlaybackRequest third = MakePlayback(6.0, 13);
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  ASSERT_TRUE(scheduler.SubmitPlayback(std::move(first)).ok());
  // Let the first request get going.
  sim_.RunUntil(SecondsToUsec(1.0));
  const int64_t k_before = scheduler.current_k();
  ASSERT_TRUE(scheduler.SubmitPlayback(std::move(second)).ok());
  ASSERT_TRUE(scheduler.SubmitPlayback(std::move(third)).ok());
  scheduler.RunUntilIdle();
  EXPECT_GE(scheduler.current_k(), k_before);
}

TEST_F(SchedulerTest, LateJoinerDoesNotGlitchExistingStreams) {
  // Start one stream, then admit two more mid-flight; the stepped
  // transition must keep the first stream's deadlines intact.
  PlaybackRequest first = MakePlayback(8.0, 21);
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> first_id = scheduler.SubmitPlayback(std::move(first));
  ASSERT_TRUE(first_id.ok());
  sim_.RunUntil(SecondsToUsec(2.0));

  PlaybackRequest second = MakePlayback(4.0, 22);
  PlaybackRequest third = MakePlayback(4.0, 23);
  ASSERT_TRUE(scheduler.SubmitPlayback(std::move(second)).ok());
  ASSERT_TRUE(scheduler.SubmitPlayback(std::move(third)).ok());
  scheduler.RunUntilIdle();

  Result<RequestStats> stats = scheduler.stats(*first_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->continuity_violations, 0);
}

TEST_F(SchedulerTest, StopHaltsARequest) {
  PlaybackRequest request = MakePlayback(10.0, 31);
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(SecondsToUsec(1.0));
  ASSERT_TRUE(scheduler.Stop(*id).ok());
  scheduler.RunUntilIdle();
  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_LT(stats->blocks_done, static_cast<int64_t>(stats->blocks_total));
  EXPECT_EQ(scheduler.active_request_count(), 0);
}

TEST_F(SchedulerTest, NonDestructivePauseResumes) {
  PlaybackRequest request = MakePlayback(6.0, 41);
  const int64_t total = static_cast<int64_t>(request.blocks.size());
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(SecondsToUsec(1.0));
  ASSERT_TRUE(scheduler.Pause(*id, /*destructive=*/false).ok());
  const int64_t done_at_pause = scheduler.stats(*id)->blocks_done;
  sim_.RunUntil(SecondsToUsec(3.0));
  // Nothing advanced while paused.
  EXPECT_EQ(scheduler.stats(*id)->blocks_done, done_at_pause);
  ASSERT_TRUE(scheduler.Resume(*id).ok());
  scheduler.RunUntilIdle();
  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->blocks_done, total);
}

TEST_F(SchedulerTest, DestructivePauseReRunsAdmission) {
  PlaybackRequest request = MakePlayback(6.0, 51);
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(SecondsToUsec(1.0));
  ASSERT_TRUE(scheduler.Pause(*id, /*destructive=*/true).ok());
  ASSERT_TRUE(scheduler.Resume(*id).ok());
  scheduler.RunUntilIdle();
  EXPECT_TRUE(scheduler.stats(*id)->completed);
}

TEST_F(SchedulerTest, PauseStateTransitionsValidated) {
  PlaybackRequest request = MakePlayback(3.0, 61);
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(scheduler.Resume(*id).code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(scheduler.Pause(*id, false).ok());
  EXPECT_EQ(scheduler.Pause(*id, false).code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(scheduler.Resume(*id).ok());
  scheduler.RunUntilIdle();
  EXPECT_EQ(scheduler.stats(999).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(scheduler.Stop(999).code(), ErrorCode::kNotFound);
}

TEST_F(SchedulerTest, RecordingWritesAStrand) {
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  RecordingRequest request;
  request.profile = TestVideo();
  request.placement = VideoPlacement();
  request.total_blocks = 20;
  Result<RequestId> id = scheduler.SubmitRecording(request);
  ASSERT_TRUE(id.ok());
  scheduler.RunUntilIdle();
  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->blocks_done, 20);
  EXPECT_EQ(stats->capture_overflows, 0);
  ASSERT_NE(stats->recorded_strand, kNullStrand);
  Result<const Strand*> strand = store_.Get(stats->recorded_strand);
  ASSERT_TRUE(strand.ok());
  EXPECT_EQ((*strand)->block_count(), 20);
}

TEST_F(SchedulerTest, MixedRecordAndPlaybackCoexist) {
  PlaybackRequest playback = MakePlayback(4.0, 71);
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> play_id = scheduler.SubmitPlayback(std::move(playback));
  ASSERT_TRUE(play_id.ok());
  RecordingRequest recording;
  recording.profile = TestVideo();
  recording.placement = VideoPlacement();
  recording.total_blocks = 15;
  Result<RequestId> record_id = scheduler.SubmitRecording(recording);
  ASSERT_TRUE(record_id.ok());
  scheduler.RunUntilIdle();
  EXPECT_TRUE(scheduler.stats(*play_id)->completed);
  EXPECT_EQ(scheduler.stats(*play_id)->continuity_violations, 0);
  EXPECT_TRUE(scheduler.stats(*record_id)->completed);
  EXPECT_EQ(scheduler.stats(*record_id)->capture_overflows, 0);
}

TEST_F(SchedulerTest, SilenceBlocksPlayForFree) {
  // A playback plan that is mostly silence finishes with almost no disk
  // traffic.
  PlaybackRequest request = MakePlayback(1.0, 81);
  const size_t data_blocks = request.blocks.size();
  for (int i = 0; i < 100; ++i) {
    request.blocks.push_back(PrimaryEntry{kSilenceSector, 0});
  }
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  const int64_t reads_before = disk_.reads();
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  scheduler.RunUntilIdle();
  EXPECT_TRUE(scheduler.stats(*id)->completed);
  EXPECT_EQ(disk_.reads() - reads_before, static_cast<int64_t>(data_blocks));
}

TEST_F(SchedulerTest, FastForwardDoublesConsumptionRate) {
  PlaybackRequest normal = MakePlayback(4.0, 91);
  PlaybackRequest fast = normal;
  fast.rate_multiplier = 2.0;
  {
    Simulator sim;
    ServiceScheduler scheduler(&store_, &sim, MakeAdmission(), Traced());
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(normal));
    ASSERT_TRUE(id.ok());
    scheduler.RunUntilIdle();
    // Normal speed: completes around the content duration.
    EXPECT_TRUE(scheduler.stats(*id)->completed);
  }
  {
    Simulator sim;
    ServiceScheduler scheduler(&store_, &sim, MakeAdmission(), Traced());
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(fast));
    ASSERT_TRUE(id.ok());
    scheduler.RunUntilIdle();
    Result<RequestStats> stats = scheduler.stats(*id);
    EXPECT_TRUE(stats->completed);
    // The small test disk can sustain 2x for this stream.
    EXPECT_EQ(stats->continuity_violations, 0);
  }
}

TEST_F(SchedulerTest, BufferCapLimitsPrefetch) {
  PlaybackRequest request = MakePlayback(6.0, 95);
  request.device_buffers = 2;
  request.read_ahead_blocks = 1;
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  scheduler.RunUntilIdle();
  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_LE(stats->max_buffered_blocks, 2 + 1);  // cap plus the one in flight
}

TEST_F(SchedulerTest, DestructivePauseFreesSlotForNewStream) {
  // Fill the scheduler to exactly n_max streams...
  AdmissionControl admission = MakeAdmission();
  PlaybackRequest prototype = MakePlayback(6.0, 201);
  const int64_t n_max =
      admission.Analyze({RequestSpec{TestVideo(), VideoPlacement().granularity}}).n_max;
  ASSERT_GE(n_max, 2);
  ServiceScheduler scheduler(&store_, &sim_, admission, Traced());
  std::vector<RequestId> ids;
  for (int64_t i = 0; i < n_max; ++i) {
    Result<RequestId> id = scheduler.SubmitPlayback(prototype);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  sim_.RunUntil(SecondsToUsec(0.5));
  // ...so a further stream bounces off the ceiling...
  EXPECT_EQ(scheduler.SubmitPlayback(prototype).status().code(), ErrorCode::kAdmissionRejected);
  // ...until a destructive pause gives its slot back.
  ASSERT_TRUE(scheduler.Pause(ids[0], /*destructive=*/true).ok());
  Result<RequestId> newcomer = scheduler.SubmitPlayback(prototype);
  EXPECT_TRUE(newcomer.ok()) << newcomer.status().message();
  scheduler.RunUntilIdle();
}

TEST_F(SchedulerTest, ResumeAfterDestructivePauseNotDoubleCounted) {
  // At exactly n_max streams, destructively pause one and resume it. The
  // resumed request must be presented to admission only as the candidate
  // (n_max - 1 holders + 1 = n_max: feasible); counting it among the
  // existing set too would push the tally to n_max + 1 and bounce a resume
  // that the paper guarantees fits.
  AdmissionControl admission = MakeAdmission();
  PlaybackRequest prototype = MakePlayback(6.0, 211);
  const int64_t n_max =
      admission.Analyze({RequestSpec{TestVideo(), VideoPlacement().granularity}}).n_max;
  ASSERT_GE(n_max, 2);
  ServiceScheduler scheduler(&store_, &sim_, admission, Traced());
  std::vector<RequestId> ids;
  for (int64_t i = 0; i < n_max; ++i) {
    Result<RequestId> id = scheduler.SubmitPlayback(prototype);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  sim_.RunUntil(SecondsToUsec(0.5));
  ASSERT_TRUE(scheduler.Pause(ids[0], /*destructive=*/true).ok());
  Status resumed = scheduler.Resume(ids[0]);
  EXPECT_TRUE(resumed.ok()) << resumed.message();
  scheduler.RunUntilIdle();
  EXPECT_TRUE(scheduler.stats(ids[0])->completed);
}

TEST_F(SchedulerTest, ResumeRejectedWhenSlotGivenAway) {
  // Destructive PAUSE means the slot can be handed to someone else; the
  // RESUME then re-runs admission and loses.
  AdmissionControl admission = MakeAdmission();
  PlaybackRequest prototype = MakePlayback(6.0, 221);
  const int64_t n_max =
      admission.Analyze({RequestSpec{TestVideo(), VideoPlacement().granularity}}).n_max;
  ASSERT_GE(n_max, 2);
  ServiceScheduler scheduler(&store_, &sim_, admission, Traced());
  std::vector<RequestId> ids;
  for (int64_t i = 0; i < n_max; ++i) {
    Result<RequestId> id = scheduler.SubmitPlayback(prototype);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  sim_.RunUntil(SecondsToUsec(0.5));
  ASSERT_TRUE(scheduler.Pause(ids[0], /*destructive=*/true).ok());
  ASSERT_TRUE(scheduler.SubmitPlayback(prototype).ok());  // slot retaken
  EXPECT_EQ(scheduler.Resume(ids[0]).code(), ErrorCode::kAdmissionRejected);
  scheduler.RunUntilIdle();
  EXPECT_FALSE(scheduler.stats(ids[0])->completed);
}

TEST_F(SchedulerTest, StopBeforeFirstBlockAbortsRecording) {
  // Stop a recording whose capture device has not yet produced a block: the
  // writer is aborted outright, leaving no strand (and no leaked extents)
  // behind.
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  const int64_t strands_before = store_.strand_count();
  RecordingRequest request;
  request.profile = TestVideo();
  request.placement = VideoPlacement();
  request.total_blocks = 20;
  Result<RequestId> id = scheduler.SubmitRecording(request);
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(1);  // first round: writer created, capture still busy
  Result<RequestStats> before = scheduler.stats(*id);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->blocks_done, 0);
  ASSERT_TRUE(scheduler.Stop(*id).ok());
  scheduler.RunUntilIdle();
  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->recorded_strand, kNullStrand);
  EXPECT_EQ(store_.strand_count(), strands_before);
}

TEST_F(SchedulerTest, StartupLatencyStaysUnsetWhenStoppedBeforeStart) {
  // Zero is a legitimate startup latency, so "never started" must be the
  // explicit unset marker rather than 0.
  PlaybackRequest request = MakePlayback(3.0, 231);
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.Stop(*id).ok());  // before the first round ever ran
  scheduler.RunUntilIdle();
  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->blocks_done, 0);
  EXPECT_EQ(stats->startup_latency, RequestStats::kUnsetLatency);
}

TEST_F(SchedulerTest, CacheAdmitRevocationKeepsTheSlotLedgerBalanced) {
  // Regression: a cache-admitted viewer never held an Eq. 17 slot, so the
  // revocation path (destructive pause) must not release one, and a later
  // Resume that succeeds under plain admission must take exactly one. The
  // strict auditor replays the whole lifecycle against the slot ledger.
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 22});
  SchedulerOptions options = Traced();
  options.service_order = ServiceOrder::kPlanned;
  options.block_cache = &cache;
  options.cache_aware_admission = true;
  PlaybackRequest shared = MakePlayback(4.0, 401);
  const int64_t total = static_cast<int64_t>(shared.blocks.size());
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), options);

  // A leader on the shared strand, then distinct-strand fillers up to the
  // Eq. 17 ceiling. The cache is cold and no filler shares a strand, so
  // the first failure is a genuine rejection, not a cache admit.
  PlaybackRequest leader_request = shared;
  Result<RequestId> leader = scheduler.SubmitPlayback(std::move(leader_request));
  ASSERT_TRUE(leader.ok());
  std::vector<RequestId> fillers;
  for (int i = 0; i < 64; ++i) {
    Result<RequestId> id = scheduler.SubmitPlayback(MakePlayback(4.0, 500 + i));
    if (!id.ok()) {
      break;
    }
    fillers.push_back(*id);
  }
  ASSERT_LT(fillers.size(), 64u) << "never reached the admission ceiling";

  // A lockstep viewer of the leader's strand rides its scheduled reads:
  // expected coverage ~1.0, admitted past the full Eq. 17 table.
  Result<RequestId> rider = scheduler.SubmitPlayback(std::move(shared));
  ASSERT_TRUE(rider.ok());
  ASSERT_TRUE(scheduler.stats(*rider)->cache_admitted);

  // Run to mid-stream, then kill the leader: the rider's next rounds find
  // neither cached extents nor shared transfers, and the collapse detector
  // must revoke the cache admission.
  int guard = 0;
  while (scheduler.stats(*leader)->blocks_done < total / 2) {
    ASSERT_LT(++guard, 1000) << "leader never reached mid-stream";
    sim_.RunUntil(sim_.Now() + 100'000);
  }
  ASSERT_TRUE(scheduler.Stop(*leader).ok());
  guard = 0;
  while (!scheduler.stats(*rider)->paused && !scheduler.stats(*rider)->completed) {
    ASSERT_LT(++guard, 1000) << "rider neither revoked nor completed";
    sim_.RunUntil(sim_.Now() + 100'000);
  }
  ASSERT_TRUE(scheduler.stats(*rider)->paused);
  bool revoked = false;
  for (const obs::TraceEvent& event : log_.events()) {
    revoked = revoked || (event.kind == obs::TraceEventKind::kCacheAdmitRevoked &&
                          event.request == *rider);
  }
  EXPECT_TRUE(revoked);

  // The leader's slot is free now, so Resume re-applies under plain
  // admission: the rider holds a regular slot, not a cache tenancy.
  ASSERT_TRUE(scheduler.Resume(*rider).ok());
  EXPECT_FALSE(scheduler.stats(*rider)->cache_admitted);
  scheduler.RunUntilIdle();
  EXPECT_TRUE(scheduler.stats(*rider)->completed);
  EXPECT_GT(scheduler.stats(*rider)->blocks_done, 0);
  for (RequestId id : fillers) {
    EXPECT_TRUE(scheduler.stats(id)->completed);
  }
}

TEST_F(SchedulerTest, AdmitStopCyclesLeaveNoPinnedResidue) {
  // Regression: prelude read-ahead pages are pinned before playback
  // starts; a Stop (or revocation) before consumption must unpin exactly
  // the pins that landed. A request that recorded pins its inserts never
  // took would slowly turn the cache into unevictable pinned residue.
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 22});
  SchedulerOptions options = Traced();
  options.service_order = ServiceOrder::kPlanned;
  options.block_cache = &cache;
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), options);
  const PlaybackRequest prototype = MakePlayback(3.0, 461);
  for (int cycle = 0; cycle < 6; ++cycle) {
    PlaybackRequest request = prototype;
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    ASSERT_TRUE(id.ok());
    // Stop at a different point each cycle: immediately, mid-prelude, and
    // after playback start all exercise a different unpin path.
    sim_.RunUntil(sim_.Now() + cycle * 40'000);
    ASSERT_TRUE(scheduler.Stop(*id).ok());
    scheduler.RunUntilIdle();
    EXPECT_EQ(cache.stats().pinned_entries, 0) << "cycle " << cycle;
  }
}

TEST_F(SchedulerTest, DeadArrayMemberFailsOnceNotPerBlock) {
  // Regression: when a whole DiskArray member dies mid-stream, the planned
  // dispatcher used to push every queued transfer at the dead arm, and each
  // block burned its own attempt through the retry machinery (a fault event
  // and fault accounting per block, against a device that answers instantly
  // with nothing). The member must fail once; the rest of its queue is
  // skipped directly.
  PlaybackRequest request = MakePlayback(5.0, 77);
  const int64_t total_blocks = static_cast<int64_t>(request.blocks.size());
  DiskArray array(TestDiskParameters(), 2);
  for (int m = 0; m < 2; ++m) {
    array.member(m).set_trace_sink(&tee_);
  }
  SchedulerOptions options = Traced();
  options.service_order = ServiceOrder::kPlanned;
  options.disk_array = &array;
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), options);
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  // A second of healthy rounds, then member 1 dies for good.
  sim_.ScheduleAfter(SecondsToUsec(1.0), [&array] { array.FailMember(1); });
  scheduler.RunUntilIdle();

  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->blocks_done, total_blocks);  // skip-on-time: the clock never stalls
  EXPECT_GT(stats->blocks_skipped, 0);
  EXPECT_LT(stats->blocks_skipped, total_blocks);  // member 0 kept delivering
  // No per-block attempts against the dead arm: zero retries, and at most
  // one device_failed fault observation (the wave that caught it dying).
  EXPECT_EQ(stats->blocks_retried, 0);
  EXPECT_LE(stats->faults_seen, 1);
  int64_t device_failed_events = 0;
  int64_t skips = 0;
  for (const obs::TraceEvent& event : log_.events()) {
    if (event.kind == obs::TraceEventKind::kDiskFault && event.detail == "device_failed") {
      ++device_failed_events;
    }
    if (event.kind == obs::TraceEventKind::kBlockSkipped) {
      ++skips;
    }
  }
  EXPECT_LE(device_failed_events, 1);
  EXPECT_EQ(skips, stats->blocks_skipped);
}

TEST_F(SchedulerTest, EmptyRequestsRejected) {
  ServiceScheduler scheduler(&store_, &sim_, MakeAdmission(), Traced());
  EXPECT_EQ(scheduler.SubmitPlayback(PlaybackRequest{}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(scheduler.SubmitRecording(RecordingRequest{}).status().code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace vafs
