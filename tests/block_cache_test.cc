#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/msm/block_cache.h"
#include "src/msm/recorder.h"
#include "src/msm/scattering_repair.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

// --- PagePool -----------------------------------------------------------

TEST(PagePoolTest, RecyclesReleasedPages) {
  PagePool pool;
  std::vector<uint8_t>* page = pool.Acquire(1024);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->size(), 1024u);
  (*page)[0] = 0xFF;
  pool.Release(page);
  EXPECT_EQ(pool.pages_pooled(), 1);
  // The recycled page comes back zeroed at the requested size.
  std::vector<uint8_t>* again = pool.Acquire(512);
  EXPECT_EQ(pool.pages_pooled(), 0);
  EXPECT_EQ(again->size(), 512u);
  EXPECT_EQ((*again)[0], 0);
  pool.Release(again);
}

TEST(PagePoolTest, DistinctLivePagesDoNotAlias) {
  PagePool pool;
  std::vector<uint8_t>* a = pool.Acquire(256);
  std::vector<uint8_t>* b = pool.Acquire(256);
  EXPECT_NE(a, b);
  pool.Release(a);
  pool.Release(b);
  EXPECT_EQ(pool.pages_pooled(), 2);
}

// --- BlockCache unit ----------------------------------------------------

TEST(BlockCacheTest, DisabledCacheNeverHits) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 0});
  EXPECT_FALSE(cache.enabled());
  cache.Insert(0, 8, 4096, false);
  EXPECT_FALSE(cache.Lookup(0, 8));
  EXPECT_EQ(cache.stats().insertions, 0);
}

TEST(BlockCacheTest, HitMissAndExactExtentMatch) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 20});
  cache.Insert(100, 8, 4096, false);
  EXPECT_TRUE(cache.Lookup(100, 8));
  // Same start, different length: the platter extent differs, so miss.
  EXPECT_FALSE(cache.Lookup(100, 4));
  EXPECT_FALSE(cache.Lookup(200, 8));
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_TRUE(cache.Contains(100, 8));
  // Contains must not disturb the measured rate.
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 3);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedFirst) {
  // Room for exactly two 4 KB entries.
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 8192});
  cache.Insert(0, 8, 4096, false);
  cache.Insert(100, 8, 4096, false);
  // Touch the older entry so the newer one becomes LRU.
  EXPECT_TRUE(cache.Lookup(0, 8));
  cache.Insert(200, 8, 4096, false);
  EXPECT_TRUE(cache.Contains(0, 8));
  EXPECT_FALSE(cache.Contains(100, 8));
  EXPECT_TRUE(cache.Contains(200, 8));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(BlockCacheTest, IntervalBiasedEntriesEvictLast) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 8192});
  cache.Insert(0, 8, 4096, /*interval_biased=*/true);  // LRU, but biased
  cache.Insert(100, 8, 4096, false);
  cache.Insert(200, 8, 4096, false);
  // The plain entry went first even though the biased one was older.
  EXPECT_TRUE(cache.Contains(0, 8));
  EXPECT_FALSE(cache.Contains(100, 8));
}

TEST(BlockCacheTest, PinnedEntriesSurviveEvictionUntilUnpinned) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 8192});
  cache.Insert(0, 8, 4096, false);
  cache.Pin(0, 8);
  EXPECT_EQ(cache.stats().pinned_entries, 1);
  cache.Insert(100, 8, 4096, false);
  cache.Insert(200, 8, 4096, false);  // would evict sector 0 by LRU
  EXPECT_TRUE(cache.Contains(0, 8));
  // Pin counts nest: one unpin of a doubly-pinned entry keeps it pinned.
  cache.Pin(0, 8);
  cache.Unpin(0, 8);
  EXPECT_EQ(cache.stats().pinned_entries, 1);
  cache.Unpin(0, 8);
  EXPECT_EQ(cache.stats().pinned_entries, 0);
  cache.Insert(300, 8, 4096, false);
  EXPECT_FALSE(cache.Contains(0, 8));  // now evictable, and LRU
}

TEST(BlockCacheTest, InsertDroppedWhenEverythingIsPinned) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 4096});
  cache.Insert(0, 8, 4096, false);
  cache.Pin(0, 8);
  cache.Insert(100, 8, 4096, false);
  EXPECT_FALSE(cache.Contains(100, 8));
  EXPECT_TRUE(cache.Contains(0, 8));
}

TEST(BlockCacheTest, OversizeInsertIsDropped) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 4096});
  cache.Insert(0, 64, 8192, false);
  EXPECT_FALSE(cache.Contains(0, 64));
  EXPECT_EQ(cache.stats().resident_bytes, 0);
}

TEST(BlockCacheTest, InvalidateRangeDropsOverlappingEntries) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 20});
  cache.Insert(0, 8, 4096, false);    // [0, 8) — overlaps from the left
  cache.Insert(10, 8, 4096, false);   // [10, 18) — inside
  cache.Insert(20, 8, 4096, false);   // [20, 28) — overlaps the tail
  cache.Insert(40, 8, 4096, false);   // [40, 48) — untouched
  cache.Pin(10, 8);                   // invalidation outranks pinning
  const int64_t dropped = cache.InvalidateRange(4, 20);  // [4, 24)
  EXPECT_EQ(dropped, 3);
  EXPECT_FALSE(cache.Contains(0, 8));
  EXPECT_FALSE(cache.Contains(10, 8));
  EXPECT_FALSE(cache.Contains(20, 8));
  EXPECT_TRUE(cache.Contains(40, 8));
  EXPECT_EQ(cache.stats().pinned_entries, 0);
  EXPECT_EQ(cache.stats().invalidated_entries, 3);
}

TEST(BlockCacheTest, InvalidateAllEmptiesTheCache) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 20});
  cache.Insert(0, 8, 4096, false);
  cache.Insert(100, 8, 4096, true);
  cache.Pin(0, 8);
  cache.InvalidateAll();
  EXPECT_EQ(cache.stats().resident_entries, 0);
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.stats().pinned_entries, 0);
  EXPECT_EQ(cache.stats().invalidated_entries, 2);
  EXPECT_FALSE(cache.Contains(0, 8));
}

TEST(BlockCacheTest, RecentHitRateTracksTheWindow) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 20, .hit_window = 8});
  EXPECT_DOUBLE_EQ(cache.RecentHitRate(), 0.0);
  cache.Insert(0, 8, 4096, false);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.Lookup(0, 8));
  }
  EXPECT_DOUBLE_EQ(cache.RecentHitRate(), 1.0);
  // A run of misses (the sharing stream went away) must drag the estimate
  // down within roughly one window, not be averaged into history forever.
  for (int i = 0; i < 16; ++i) {
    cache.Lookup(999, 8);
  }
  EXPECT_LT(cache.RecentHitRate(), 0.5);
}

TEST(BlockCacheTest, InvalidationDecaysTheHitWindow) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 20, .hit_window = 64});
  for (int i = 0; i < 8; ++i) {
    cache.Insert(i * 10, 8, 4096, false);
  }
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(cache.Lookup(i * 10, 8));
    }
  }
  EXPECT_DOUBLE_EQ(cache.RecentHitRate(), 1.0);
  // Half the entries vanish under an invalidation: the evidence behind
  // those hits is gone, so the estimate must decay in proportion instead
  // of reporting a perfect window built on departed extents.
  cache.InvalidateRange(0, 38);  // drops sectors 0, 10, 20, 30
  EXPECT_LE(cache.RecentHitRate(), 0.5 + 1e-9);
  EXPECT_GT(cache.RecentHitRate(), 0.0);
  // A storm that empties the cache resets the window outright: the next
  // admission decision starts from zero evidence, not stale history.
  cache.InvalidateAll();
  EXPECT_DOUBLE_EQ(cache.RecentHitRate(), 0.0);
}

TEST(BlockCacheTest, PinFailsWhenExtentIsNotResident) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 4096});
  cache.Insert(0, 8, 4096, false);
  EXPECT_TRUE(cache.Pin(0, 8));
  // The insert is dropped (everything resident is pinned), so the pin
  // must report failure instead of silently doing nothing...
  cache.Insert(100, 8, 4096, false);
  EXPECT_FALSE(cache.Pin(100, 8));
  // ...and a length mismatch is not the pinned extent either.
  EXPECT_FALSE(cache.Pin(0, 4));
  // Unpinning the failed extent must not release the real pin.
  cache.Unpin(100, 8);
  EXPECT_EQ(cache.stats().pinned_entries, 1);
}

// --- Invalidation through the store (coherence) -------------------------

class CacheCoherenceTest : public ::testing::Test {
 protected:
  CacheCoherenceTest()
      : disk_(TestDiskParameters()),
        store_(&disk_),
        cache_(BlockCacheOptions{.capacity_bytes = 1 << 22}) {
    store_.set_block_cache(&cache_);
  }

  StrandPlacement VideoPlacement() {
    ContinuityModel model(TestStorage(), TestVideoDevice());
    return *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  }

  StrandId RecordStrand(double duration_sec, uint64_t seed) {
    VideoSource source(TestVideo(), seed);
    Result<RecordingResult> recorded =
        RecordVideo(&store_, &source, VideoPlacement(), duration_sec);
    EXPECT_TRUE(recorded.ok());
    return recorded->strand;
  }

  // Caches every data extent of the strand, as the planner would after a
  // full playback pass.
  void PrimeCache(StrandId id) {
    const Strand* strand = *store_.Get(id);
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      const PrimaryEntry entry = *strand->index().Lookup(b);
      if (!entry.IsSilence()) {
        cache_.Insert(entry.sector, entry.sector_count,
                      entry.sector_count * disk_.model().params().bytes_per_sector, false);
      }
    }
  }

  // Blankets the disk with fixed-size cached chunks, as if all this space
  // had been read while earlier strands lived there. Any later write must
  // punch holes in this coverage.
  static constexpr int64_t kChunk = 64;
  void BlanketPrime() {
    const int64_t total = disk_.model().params().TotalSectors();
    for (int64_t s = 0; s + kChunk <= total; s += kChunk) {
      cache_.Insert(s, kChunk, 512, false);
    }
  }

  // Asserts no stale blanket chunk survives over any data extent of the
  // strand; returns how many chunks were checked.
  int64_t ExpectExtentsUncached(StrandId id) {
    const Strand* strand = *store_.Get(id);
    int64_t checked = 0;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      const PrimaryEntry entry = *strand->index().Lookup(b);
      if (entry.IsSilence()) {
        continue;
      }
      for (int64_t s = (entry.sector / kChunk) * kChunk;
           s < entry.sector + entry.sector_count; s += kChunk) {
        EXPECT_FALSE(cache_.Contains(s, kChunk)) << "stale chunk at sector " << s;
        ++checked;
      }
    }
    return checked;
  }

  // Records a strand whose blocks all sit near `cylinder` (tight window),
  // to force a seam repair between distant strands.
  StrandId StrandNearCylinder(int64_t cylinder, int64_t blocks, double max_scattering_sec) {
    const StrandPlacement placement{2, 0.0, max_scattering_sec};
    Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
    EXPECT_TRUE(writer.ok());
    const int64_t per_cylinder = disk_.model().params().SectorsPerCylinder();
    EXPECT_TRUE((*writer)->SetAnchor(cylinder * per_cylinder + 1).ok());
    const int64_t block_bytes = 2 * 16384 / 8;
    for (int64_t b = 0; b < blocks; ++b) {
      EXPECT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(block_bytes, 1)).ok());
    }
    Result<StrandId> id = (*writer)->Finish(blocks * 2);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  Disk disk_;
  StrandStore store_;
  BlockCache cache_;
};

TEST_F(CacheCoherenceTest, RelocateBlocksInvalidatesRewrittenExtents) {
  const StrandId id = RecordStrand(2.0, 7);
  BlanketPrime();
  Result<BlockRelocationOutcome> outcome = RelocateBlocks(&store_, id, 1, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->blocks_copied, 2);
  // The copy strand wrote fresh extents; the stale coverage over every one
  // of them must be gone, while the untouched blanket stays resident.
  EXPECT_GT(ExpectExtentsUncached(outcome->copy_strand), 0);
  EXPECT_GT(cache_.stats().invalidated_entries, 0);
  EXPECT_GT(cache_.stats().resident_entries, 0);
}

TEST_F(CacheCoherenceTest, RepairSeamInvalidatesCopiedBlocks) {
  // Distant strands under a tight bound: the seam repair must copy.
  const double bound = 0.020;
  const StrandId a = StrandNearCylinder(5, 5, bound);
  const StrandId b = StrandNearCylinder(190, 40, bound);
  BlanketPrime();
  Result<RepairOutcome> outcome = RepairSeam(&store_, a, 4, b, 0, 40);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->already_continuous);
  ASSERT_GT(outcome->blocks_copied, 0);
  // Every copied block punched its stale coverage out of the cache.
  EXPECT_GT(ExpectExtentsUncached(outcome->copy_strand), 0);
  EXPECT_GT(cache_.stats().invalidated_entries, 0);
}

TEST_F(CacheCoherenceTest, DeleteInvalidatesTheStrandExtents) {
  const StrandId id = RecordStrand(2.0, 17);
  PrimeCache(id);
  const int64_t resident_before = cache_.stats().resident_entries;
  ASSERT_GT(resident_before, 0);
  ASSERT_TRUE(store_.Delete(id).ok());
  EXPECT_EQ(cache_.stats().resident_entries, 0);
  EXPECT_EQ(cache_.stats().invalidated_entries, resident_before);
}

TEST_F(CacheCoherenceTest, DeleteResetsTheRecentHitRate) {
  const StrandId id = RecordStrand(2.0, 21);
  PrimeCache(id);
  const Strand* strand = *store_.Get(id);
  for (int64_t b = 0; b < strand->block_count(); ++b) {
    const PrimaryEntry entry = *strand->index().Lookup(b);
    if (!entry.IsSilence()) {
      EXPECT_TRUE(cache_.Lookup(entry.sector, entry.sector_count));
    }
  }
  EXPECT_DOUBLE_EQ(cache_.RecentHitRate(), 1.0);
  // Deleting the strand drops every entry behind that perfect window; an
  // admission decision made on the stale rate would admit against extents
  // that no longer exist.
  ASSERT_TRUE(store_.Delete(id).ok());
  EXPECT_DOUBLE_EQ(cache_.RecentHitRate(), 0.0);
}

TEST_F(CacheCoherenceTest, RelocationDecaysTheRecentHitRate) {
  const StrandId id = RecordStrand(2.0, 29);
  BlanketPrime();
  // A perfect window measured over blanket chunks...
  for (int64_t s = 0; s + kChunk <= 64 * kChunk; s += kChunk) {
    EXPECT_TRUE(cache_.Lookup(s, kChunk));
  }
  EXPECT_DOUBLE_EQ(cache_.RecentHitRate(), 1.0);
  // ...must lose weight when relocation rewrites sectors under the cache,
  // even though most of the blanket survives.
  Result<BlockRelocationOutcome> outcome = RelocateBlocks(&store_, id, 1, 2);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GT(cache_.stats().invalidated_entries, 0);
  EXPECT_LT(cache_.RecentHitRate(), 1.0);
}

// --- Shared-strand playback: no block is read twice ---------------------

class SharedStrandTest : public ::testing::Test {
 protected:
  SharedStrandTest() : disk_(TestDiskParameters()), store_(&disk_) {
    tee_.Add(&log_);
    tee_.Add(&auditor_);
  }

  void TearDown() override { EXPECT_TRUE(auditor_.Clean()) << auditor_.Report(); }

  StrandPlacement VideoPlacement() {
    ContinuityModel model(TestStorage(), TestVideoDevice());
    return *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  }

  PlaybackRequest MakePlayback(StrandId id) {
    const Strand* strand = *store_.Get(id);
    PlaybackRequest request;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      request.blocks.push_back(*strand->index().Lookup(b));
    }
    request.block_duration = strand->info().BlockDuration();
    request.spec = RequestSpec{TestVideo(), VideoPlacement().granularity};
    return request;
  }

  Disk disk_;
  StrandStore store_;
  obs::TraceLog log_;
  obs::ContinuityAuditor auditor_{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::TeeSink tee_;
};

TEST_F(SharedStrandTest, TwoViewersOfOneStrandNeverReadABlockTwice) {
  VideoSource source(TestVideo(), 23);
  Result<RecordingResult> recorded = RecordVideo(&store_, &source, VideoPlacement(), 3.0);
  ASSERT_TRUE(recorded.ok());

  Simulator sim;
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 22});
  AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
  SchedulerOptions options;
  options.service_order = ServiceOrder::kPlanned;
  options.block_cache = &cache;
  options.trace = &tee_;
  ServiceScheduler scheduler(&store_, &sim, admission, options);

  // Capture device traffic only from here on (recording is done).
  obs::TraceLog disk_log;
  disk_.set_trace_sink(&disk_log);

  // Lockstep pair: both rounds want the same extents, dedup shares the
  // transfers.
  Result<RequestId> a = scheduler.SubmitPlayback(MakePlayback(recorded->strand));
  Result<RequestId> b = scheduler.SubmitPlayback(MakePlayback(recorded->strand));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  scheduler.RunUntilIdle();
  // Laggard viewer: every extent is already resident, so its whole run is
  // served from the cache.
  Result<RequestId> c = scheduler.SubmitPlayback(MakePlayback(recorded->strand));
  ASSERT_TRUE(c.ok());
  scheduler.RunUntilIdle();
  disk_.set_trace_sink(nullptr);

  EXPECT_EQ(scheduler.stats(*a)->continuity_violations, 0);
  EXPECT_EQ(scheduler.stats(*b)->continuity_violations, 0);
  EXPECT_EQ(scheduler.stats(*c)->continuity_violations, 0);

  // Between dedup (lockstep rounds share one transfer) and the cache
  // (laggards replay resident extents), no data sector is fetched twice.
  std::set<int64_t> seen;
  for (const obs::TraceEvent& event : disk_log.events()) {
    if (event.kind != obs::TraceEventKind::kDiskRead) {
      continue;
    }
    EXPECT_TRUE(seen.insert(event.sector).second)
        << "sector " << event.sector << " read twice";
  }
  EXPECT_FALSE(seen.empty());
  EXPECT_GT(cache.stats().hits, 0);
}

}  // namespace
}  // namespace vafs
