// Causal span tracing and critical-path attribution (src/obs/span.h,
// src/obs/critical_path.h).
//
// The contracts under test:
//
//  - span ids derive only from structural indices (node, round, stage,
//    ordinal) — deterministic, distinct, never wall clock;
//  - for every round, the scheduler's per-stage ledger sums exactly to the
//    measured round time (the ContinuityAuditor enforces the epsilon) and
//    the analyzer's dominant verdict names the largest charge;
//  - faulted runs charge a visible kRetry share;
//  - the streaming analyzer and the static Analyze() walk agree;
//  - on a faulted multi-node cluster run, every exported artifact
//    (trace summaries, Perfetto, Prometheus, JSON snapshot, folded
//    stacks, critical-path JSON, cluster signature) is byte-identical
//    across worker counts {1, 2, 8} — the PR 7 invariant extended to the
//    span layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/disk/disk_array.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"
#include "src/obs/critical_path.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/sim/workload.h"
#include "src/util/worker_pool.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

TEST(SpanIdTest, IdsAreDeterministicAndDistinct) {
  // Same structural indices, same ids — across processes and runs.
  EXPECT_EQ(obs::RoundTraceId(2, 17), obs::RoundTraceId(2, 17));
  EXPECT_NE(obs::RoundTraceId(2, 17), obs::RoundTraceId(2, 18));
  EXPECT_NE(obs::RoundTraceId(2, 17), obs::RoundTraceId(3, 17));
  // The single-node id (-1) must not collide with real node 0.
  EXPECT_NE(obs::RoundTraceId(-1, 5), obs::RoundTraceId(0, 5));

  const uint64_t trace = obs::RoundTraceId(2, 17);
  const uint64_t root = obs::RootSpanId(trace);
  EXPECT_NE(root, 0u);
  EXPECT_NE(root, trace);
  EXPECT_NE(obs::ChildSpanId(root, obs::SpanStage::kTransfer, 0),
            obs::ChildSpanId(root, obs::SpanStage::kTransfer, 1));
  EXPECT_NE(obs::ChildSpanId(root, obs::SpanStage::kTransfer, 0),
            obs::ChildSpanId(root, obs::SpanStage::kSeek, 0));
  EXPECT_NE(obs::ChildSpanId(root, obs::SpanStage::kWave, 0),
            obs::ChildSpanId(obs::RootSpanId(obs::RoundTraceId(2, 18)), obs::SpanStage::kWave, 0));
}

// One planned-round workload over a 4-member array with spans on: the
// analyzer sits between the scheduler and the tee, the strict auditor
// checks every span and verdict inline.
struct SpanRun {
  std::vector<obs::RoundCriticalPath> rounds;
  std::string critical_path_json;
  std::string folded;
  std::string static_json;  // CriticalPathAnalyzer::Analyze over the log
  bool auditor_clean = false;
  std::string auditor_report;
  int64_t span_events = 0;
};

SpanRun RunSpanWorkload(bool fault_member) {
  constexpr int kMembers = 4;
  constexpr int kStreams = 3;
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);

  obs::TraceLog log;
  obs::ContinuityAuditor auditor{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::TeeSink tee;
  tee.Add(&log);
  tee.Add(&auditor);
  obs::CriticalPathAnalyzer analyzer(obs::CriticalPathOptions{&tee});

  ContinuityModel model(TestStorage(), TestVideoDevice());
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  EXPECT_TRUE(placement.ok());
  std::vector<PlaybackRequest> requests;
  for (int i = 0; i < kStreams; ++i) {
    VideoSource source(TestVideo(), 100 + static_cast<uint64_t>(i));
    Result<RecordingResult> recorded = RecordVideo(&store, &source, *placement, 3.0);
    EXPECT_TRUE(recorded.ok());
    Result<const Strand*> strand = store.Get(recorded->strand);
    EXPECT_TRUE(strand.ok());
    PlaybackRequest request;
    for (int64_t b = 0; b < (*strand)->block_count(); ++b) {
      request.blocks.push_back(*(*strand)->index().Lookup(b));
    }
    request.block_duration = (*strand)->info().BlockDuration();
    request.spec = RequestSpec{TestVideo(), placement->granularity};
    requests.push_back(std::move(request));
  }

  DiskArray array(TestDiskParameters(), kMembers);
  if (fault_member) {
    array.member(1).fault_injector().MarkBad(0, array.member(1).total_sectors());
  }

  Simulator sim;
  SchedulerOptions options;
  options.trace = &analyzer;
  options.emit_spans = true;
  options.service_order = ServiceOrder::kPlanned;
  options.disk_array = &array;
  const double avg = std::max(store.AverageScatteringSec(), 1e-4);
  ServiceScheduler scheduler(&store, &sim, AdmissionControl(TestStorage(), avg), options);
  for (PlaybackRequest& request : requests) {
    EXPECT_TRUE(scheduler.SubmitPlayback(std::move(request)).ok());
  }
  scheduler.RunUntilIdle();

  SpanRun run;
  run.rounds = analyzer.rounds();
  run.critical_path_json = analyzer.ToJson();
  run.folded = obs::CriticalPathAnalyzer::FoldedStacks(log.events());
  run.static_json = obs::CriticalPathAnalyzer::ToJson(obs::CriticalPathAnalyzer::Analyze(log.events()));
  run.auditor_clean = auditor.Clean();
  run.auditor_report = auditor.Report();
  for (const obs::TraceEvent& event : log.events()) {
    run.span_events += event.kind == obs::TraceEventKind::kSpan ? 1 : 0;
  }
  return run;
}

TEST(CriticalPathTest, StageLedgerSumsToRoundDuration) {
  const SpanRun run = RunSpanWorkload(/*fault_member=*/false);
  EXPECT_TRUE(run.auditor_clean) << run.auditor_report;
  ASSERT_GT(run.rounds.size(), 1u);
  EXPECT_GT(run.span_events, 0);
  for (const obs::RoundCriticalPath& round : run.rounds) {
    // The exact-partition invariant: every advanced microsecond charged to
    // one stage, queue residual non-negative.
    EXPECT_LE(std::abs(round.stages.Total() - round.duration),
              obs::ContinuityAuditor::kStageSumEpsilonUsec)
        << "round " << round.round;
    EXPECT_GE(round.stages.queue, 0) << "round " << round.round;
    // The dominant verdict names the largest charge.
    const SimDuration charges[] = {round.stages.queue,     round.stages.seek,
                                   round.stages.transfer,  round.stages.retry,
                                   round.stages.cache,     round.stages.merge_patch,
                                   round.stages.append};
    EXPECT_EQ(round.dominant_usec, *std::max_element(std::begin(charges), std::end(charges)))
        << "round " << round.round;
  }
}

TEST(CriticalPathTest, FaultedMemberChargesRetryStage) {
  const SpanRun run = RunSpanWorkload(/*fault_member=*/true);
  EXPECT_TRUE(run.auditor_clean) << run.auditor_report;
  ASSERT_FALSE(run.rounds.empty());
  SimDuration retry_total = 0;
  for (const obs::RoundCriticalPath& round : run.rounds) {
    retry_total += round.stages.retry;
    EXPECT_LE(std::abs(round.stages.Total() - round.duration),
              obs::ContinuityAuditor::kStageSumEpsilonUsec)
        << "round " << round.round;
  }
  EXPECT_GT(retry_total, 0) << "whole-bad member produced no retry charge";
}

TEST(CriticalPathTest, StreamingAndStaticWalksAgree) {
  const SpanRun run = RunSpanWorkload(/*fault_member=*/false);
  EXPECT_EQ(run.critical_path_json, run.static_json);
}

TEST(CriticalPathTest, ArtifactsAreWellFormed) {
  const SpanRun run = RunSpanWorkload(/*fault_member=*/false);
  Result<obs::JsonValue> parsed = obs::JsonValue::Parse(run.critical_path_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->StringOr("kind", ""), "vafs.critical_path");
  const obs::JsonValue* rounds = parsed->Find("rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->array.size(), run.rounds.size());

  // Folded stacks: "frame;frame usec" lines, every count positive.
  ASSERT_FALSE(run.folded.empty());
  size_t start = 0;
  while (start < run.folded.size()) {
    size_t end = run.folded.find('\n', start);
    if (end == std::string::npos) {
      end = run.folded.size();
    }
    const std::string line = run.folded.substr(start, end - start);
    if (!line.empty()) {
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      EXPECT_GT(std::stoll(line.substr(space + 1)), 0) << line;
      EXPECT_NE(line.find("round r"), std::string::npos) << "no round root in: " << line;
    }
    start = end + 1;
  }
}

// --- Satellite 3: exporter byte-identity across worker counts -------------

// One faulted 2-node cluster run on `workers` wall-clock workers, every
// external artifact rendered to bytes.
struct ClusterImage {
  std::string signature;
  std::string slo_json;
  std::string critical_path_json;
  std::string node_traces;
  std::string perfetto;
  std::string prometheus;
  std::string snapshots;
  std::string folded;
};

ClusterImage RunFaultedCluster(int workers) {
  WorkerPool pool(workers);
  cluster::ClusterOptions options;
  options.nodes = 2;
  options.node_config = TestConfig();
  options.node_config.scheduler.service_order = ServiceOrder::kPlanned;
  options.node_config.scheduler.worker_pool = &pool;
  options.node_config.block_cache.capacity_bytes = 1 << 22;
  options.node_config.sessions.batch_window_sec = 1.0;
  options.node_config.sessions.max_patch_blocks = 64;
  options.node_config.telemetry.enabled = true;
  options.node_config.telemetry.trace_capacity = 0;  // retain everything
  options.node_config.telemetry.spans = true;
  options.media = TestVideo();
  options.epoch_sec = 0.25;
  options.hot_replicas = 2;
  options.cold_replicas = 1;
  options.failover_bound_epochs = 2;
  cluster::ClusterCoordinator coordinator(options);
  EXPECT_TRUE(coordinator.AddTitle(0, 100, 4.0, /*hot=*/true).ok());
  EXPECT_TRUE(coordinator.CheckpointAll().ok());

  std::vector<sim::WorkloadArrival> arrivals;
  for (double time_sec : {0.1, 0.2, 0.5}) {
    sim::WorkloadArrival arrival;
    arrival.time_sec = time_sec;
    arrival.title = 0;
    arrivals.push_back(arrival);
  }
  sim::WorkloadOptions::NodeFailure kill;
  kill.time_sec = 1.4;
  kill.node = 0;
  coordinator.Run(arrivals, {kill}, 8.0);

  ClusterImage image;
  image.signature = coordinator.Signature();
  image.slo_json = coordinator.ClusterSloJson();
  std::vector<obs::RoundCriticalPath> merged;
  for (int n = 0; n < coordinator.nodes(); ++n) {
    MultimediaFileSystem& fs = coordinator.node(n).fs();
    obs::TraceLog* log = fs.trace_log();
    EXPECT_NE(log, nullptr);
    for (const obs::TraceEvent& event : log->events()) {
      image.node_traces += obs::TraceEventSummary(event);
      image.node_traces += '\n';
    }
    image.perfetto += obs::PerfettoExporter(&log->events()).Export();
    image.prometheus += obs::PrometheusExporter(fs.metrics(), log).Export();
    image.snapshots += fs.TelemetrySnapshotJson();
    image.folded += obs::CriticalPathAnalyzer::FoldedStacks(log->events());
    if (const obs::CriticalPathAnalyzer* analyzer = fs.critical_path(); analyzer != nullptr) {
      merged.insert(merged.end(), analyzer->rounds().begin(), analyzer->rounds().end());
    }
  }
  image.critical_path_json = obs::CriticalPathAnalyzer::ToJson(merged);
  return image;
}

TEST(SpanClusterDeterminismTest, ExportsAreByteIdenticalAcrossWorkerCounts) {
  const ClusterImage reference = RunFaultedCluster(1);
  EXPECT_FALSE(reference.node_traces.empty());
  EXPECT_NE(reference.node_traces.find("span"), std::string::npos)
      << "no spans in the node trace stream";
  EXPECT_NE(reference.critical_path_json.find("\"rounds\":["), std::string::npos);
  // The faulted node's death must be visible, and the snapshot must carry
  // the critical-path table.
  EXPECT_NE(reference.signature.find("state=dead"), std::string::npos);
  EXPECT_NE(reference.snapshots.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(reference.prometheus.find("vafs_trace_events_dropped_total"), std::string::npos);

  for (int workers : {2, 8}) {
    const ClusterImage image = RunFaultedCluster(workers);
    EXPECT_EQ(image.signature, reference.signature) << "workers=" << workers;
    EXPECT_EQ(image.slo_json, reference.slo_json) << "workers=" << workers;
    EXPECT_EQ(image.critical_path_json, reference.critical_path_json) << "workers=" << workers;
    EXPECT_EQ(image.node_traces, reference.node_traces) << "workers=" << workers;
    EXPECT_EQ(image.perfetto, reference.perfetto) << "workers=" << workers;
    EXPECT_EQ(image.prometheus, reference.prometheus) << "workers=" << workers;
    EXPECT_EQ(image.snapshots, reference.snapshots) << "workers=" << workers;
    EXPECT_EQ(image.folded, reference.folded) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace vafs
