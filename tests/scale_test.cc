// Scale smoke test for the flat request table and incremental planner.
//
// DESIGN.md section 15: the round hot path was rebuilt around a flat,
// generation-stamped slot table and an incremental round planner so one
// node can carry tens of thousands of concurrent streams. The refactor's
// contract is the same hard one the wall-clock engine carries: none of it
// may change simulated-time results. This test drives ~5k concurrent
// streams through a couple of planned rounds under a strict continuity
// auditor and asserts every telemetry artifact is byte-identical across
//
//   - worker counts (1 vs 8 wall-clock workers),
//   - slot-table iteration orders (live-id order vs raw slot scan, the
//     legacy-map-equivalent vs flat-table orders), and
//   - planner modes (incremental reuse vs from-scratch replanning).
//
// Block playback is stretched far past the round time so the run is also
// *clean* under Eq. 11 — at this population a ledger bug or a planner
// ordering bug would show up as a violation or a digest flip.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/disk/disk_array.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/worker_pool.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

constexpr int kMembers = 8;
constexpr int kCatalog = 8;       // distinct recorded strands
constexpr int64_t kStreams = 5000;
constexpr int64_t kBlocksPerStream = 2;  // ~2 rounds at forced_k = 1

struct ScaleImage {
  std::string trace;
  std::string metrics;
  std::string slo;
  uint64_t payload_digest = 0;
  int64_t rounds = 0;
  SimTime completion = 0;
  int64_t blocks_done = 0;
  bool auditor_clean = false;
  std::string auditor_report;
};

ScaleImage RunScale(int workers, bool scan_slot_order, bool incremental) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);

  obs::TraceLog log;
  obs::ContinuityAuditor auditor{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::MetricsRegistry registry;
  obs::MetricsSink metrics_sink(&registry);
  obs::SloTracker slo;
  obs::TeeSink tee;
  tee.Add(&log);
  tee.Add(&auditor);
  tee.Add(&metrics_sink);
  tee.Add(&slo);

  ContinuityModel model(TestStorage(), TestVideoDevice());
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  EXPECT_TRUE(placement.ok());
  std::vector<std::vector<PrimaryEntry>> catalog;
  for (int i = 0; i < kCatalog; ++i) {
    VideoSource source(TestVideo(), 500 + static_cast<uint64_t>(i));
    Result<RecordingResult> recorded = RecordVideo(&store, &source, *placement, 1.0);
    EXPECT_TRUE(recorded.ok());
    Result<const Strand*> strand = store.Get(recorded->strand);
    EXPECT_TRUE(strand.ok());
    std::vector<PrimaryEntry> blocks;
    const int64_t count = std::min<int64_t>(kBlocksPerStream, (*strand)->block_count());
    for (int64_t b = 0; b < count; ++b) {
      blocks.push_back(*(*strand)->index().Lookup(b));
    }
    catalog.push_back(std::move(blocks));
  }

  DiskArray array(TestDiskParameters(), kMembers);
  WorkerPool pool(workers);
  Simulator sim;
  SchedulerOptions options;
  options.trace = &tee;
  options.service_order = ServiceOrder::kPlanned;
  options.disk_array = &array;
  options.worker_pool = &pool;
  options.verify_payloads = true;
  options.bypass_admission = true;  // the hot path is under test, not Eq. 17
  options.forced_k = 1;
  options.batch_activation = true;  // all 5k join the rotation in one round
  options.scan_slot_order = scan_slot_order;
  options.incremental_planning = incremental;
  const double avg = std::max(store.AverageScatteringSec(), 1e-4);
  ServiceScheduler scheduler(&store, &sim, AdmissionControl(TestStorage(), avg), options);

  std::vector<RequestId> ids;
  ids.reserve(static_cast<size_t>(kStreams));
  for (int64_t i = 0; i < kStreams; ++i) {
    PlaybackRequest request;
    request.blocks = catalog[static_cast<size_t>(i) % catalog.size()];
    // Stretch one block's playback far past the mechanical round time:
    // Eq. 11 then holds even with 5k streams in one rotation, so the
    // auditor must come back fully clean, not merely deterministic.
    request.block_duration = SecondsToUsec(600.0);
    request.spec = RequestSpec{TestVideo(), placement->granularity};
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    EXPECT_TRUE(id.ok());
    if (id.ok()) {
      ids.push_back(*id);
    }
  }
  scheduler.RunUntilIdle();

  ScaleImage image;
  for (const obs::TraceEvent& event : log.events()) {
    image.trace += obs::TraceEventSummary(event);
    image.trace += '\n';
  }
  image.metrics = registry.ToJson();
  image.slo = slo.Report().ToJson();
  image.payload_digest = scheduler.payload_digest();
  image.rounds = scheduler.rounds_executed();
  image.completion = sim.Now();
  for (RequestId id : ids) {
    Result<RequestStats> stats = scheduler.stats(id);
    EXPECT_TRUE(stats.ok());
    if (stats.ok()) {
      image.blocks_done += stats->blocks_done;
    }
  }
  image.auditor_clean = auditor.Clean();
  image.auditor_report = auditor.Report();
  return image;
}

void ExpectSameImage(const ScaleImage& image, const ScaleImage& reference,
                     const std::string& what) {
  EXPECT_TRUE(image.auditor_clean) << what << ": " << image.auditor_report;
  EXPECT_EQ(image.trace, reference.trace) << what;
  EXPECT_EQ(image.metrics, reference.metrics) << what;
  EXPECT_EQ(image.slo, reference.slo) << what;
  EXPECT_EQ(image.payload_digest, reference.payload_digest) << what;
  EXPECT_EQ(image.rounds, reference.rounds) << what;
  EXPECT_EQ(image.completion, reference.completion) << what;
  EXPECT_EQ(image.blocks_done, reference.blocks_done) << what;
}

TEST(ScaleSmokeTest, FiveThousandStreamsAreByteIdenticalAcrossHotPathModes) {
  const ScaleImage reference =
      RunScale(/*workers=*/1, /*scan_slot_order=*/false, /*incremental=*/true);
  EXPECT_TRUE(reference.auditor_clean) << reference.auditor_report;
  EXPECT_GE(reference.rounds, 2);
  EXPECT_EQ(reference.blocks_done, kStreams * kBlocksPerStream);
  EXPECT_FALSE(reference.trace.empty());

  ExpectSameImage(RunScale(/*workers=*/8, /*scan_slot_order=*/false, /*incremental=*/true),
                  reference, "workers=8");
  ExpectSameImage(RunScale(/*workers=*/1, /*scan_slot_order=*/true, /*incremental=*/true),
                  reference, "scan_slot_order");
  ExpectSameImage(RunScale(/*workers=*/1, /*scan_slot_order=*/false, /*incremental=*/false),
                  reference, "from_scratch_planning");
}

}  // namespace
}  // namespace vafs
