#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace vafs {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(5, [&] { order.push_back(1); });
  sim.ScheduleAt(5, [&] { order.push_back(2); });
  sim.ScheduleAt(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { observed = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(observed, 150);
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  SimTime observed = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(10, [&] { observed = sim.Now(); });  // in the past
  });
  sim.Run();
  EXPECT_EQ(observed, 100);
}

TEST(SimulatorTest, EventsCanCascade) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) {
      sim.ScheduleAfter(7, tick);
    }
  };
  sim.ScheduleAt(0, tick);
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), 63);
  EXPECT_EQ(sim.events_executed(), 10);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] { ++ran; });
  sim.ScheduleAt(20, [&] { ++ran; });
  sim.ScheduleAt(30, [&] { ++ran; });
  sim.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

}  // namespace
}  // namespace vafs
