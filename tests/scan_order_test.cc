#include <gtest/gtest.h>

#include <vector>

#include "src/msm/recorder.h"
#include "src/msm/round_planner.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"
#include "src/obs/trace.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

// --- BuildRoundPlan (pure planner) --------------------------------------

class RoundPlannerTest : public ::testing::Test {
 protected:
  RoundPlannerTest() : model_(TestDiskParameters()) {}

  // A candidate whose extent starts at the first sector of `cylinder`.
  PlanCandidate AtCylinder(int64_t ordinal, int64_t cylinder, int64_t sectors = 4) {
    PlanCandidate candidate;
    candidate.ordinal = ordinal;
    candidate.sector = cylinder * model_.params().SectorsPerCylinder();
    candidate.sectors = sectors;
    return candidate;
  }

  PlanCandidate AtSector(int64_t ordinal, int64_t sector, int64_t sectors) {
    PlanCandidate candidate;
    candidate.ordinal = ordinal;
    candidate.sector = sector;
    candidate.sectors = sectors;
    return candidate;
  }

  PlanCandidate Silence(int64_t ordinal) {
    PlanCandidate candidate;
    candidate.ordinal = ordinal;
    candidate.silence = true;
    return candidate;
  }

  int64_t CylinderOf(const PlannedTransfer& transfer) const {
    return model_.SectorToCylinder(transfer.start_sector);
  }

  DiskModel model_;
};

TEST_F(RoundPlannerTest, CScanWrapsPastTheOutermostCylinder) {
  // Head at cylinder 40; wants at 50, 10 and 90. The elevator sweeps up
  // from the arm (50, then 90) and wraps for the one behind it (10).
  PlanInput input;
  input.request = 1;
  input.blocks = {AtCylinder(0, 50), AtCylinder(1, 10), AtCylinder(2, 90)};
  const RoundPlan plan = BuildRoundPlan(model_, {40}, 1, {input});
  ASSERT_EQ(plan.transfers.size(), 3u);
  EXPECT_EQ(CylinderOf(plan.transfers[0]), 50);
  EXPECT_EQ(CylinderOf(plan.transfers[1]), 90);
  EXPECT_EQ(CylinderOf(plan.transfers[2]), 10);
  EXPECT_EQ(plan.read_transfers, 3);
  EXPECT_EQ(plan.data_blocks, 3);
  EXPECT_EQ(plan.coalesced_blocks, 0);
}

TEST_F(RoundPlannerTest, SingleTransferRound) {
  PlanInput input;
  input.request = 1;
  input.blocks = {AtCylinder(0, 7)};
  const RoundPlan plan = BuildRoundPlan(model_, {100}, 1, {input});
  ASSERT_EQ(plan.transfers.size(), 1u);
  EXPECT_EQ(plan.read_transfers, 1);
  EXPECT_EQ(plan.data_blocks, 1);
  ASSERT_EQ(plan.riders_of(plan.transfers[0]).size(), 1u);
  EXPECT_EQ(plan.riders_of(plan.transfers[0])[0].request, 1u);
}

TEST_F(RoundPlannerTest, ContiguousBlocksCoalesceIntoOneTransfer) {
  PlanInput input;
  input.request = 1;
  input.blocks = {AtSector(0, 100, 4), AtSector(1, 104, 4), AtSector(2, 108, 4)};
  const RoundPlan plan = BuildRoundPlan(model_, {0}, 1, {input});
  ASSERT_EQ(plan.transfers.size(), 1u);
  EXPECT_EQ(plan.transfers[0].start_sector, 100);
  EXPECT_EQ(plan.transfers[0].sectors, 12);
  EXPECT_EQ(plan.riders_of(plan.transfers[0]).size(), 3u);
  EXPECT_EQ(plan.coalesced_blocks, 2);
  EXPECT_EQ(plan.read_transfers, 1);
}

TEST_F(RoundPlannerTest, SilenceGapBreaksCoalescingEvenWhenExtentsAbut) {
  // An eliminated-silence entry sits between two physically adjacent
  // extents: a timeline boundary, so they must stay separate transfers.
  PlanInput input;
  input.request = 1;
  input.blocks = {AtSector(0, 100, 4), Silence(1), AtSector(2, 104, 4)};
  const RoundPlan plan = BuildRoundPlan(model_, {0}, 1, {input});
  ASSERT_EQ(plan.transfers.size(), 2u);
  EXPECT_EQ(plan.coalesced_blocks, 0);
  EXPECT_EQ(plan.read_transfers, 2);
  EXPECT_EQ(plan.data_blocks, 2);  // silence is not a data block
}

TEST_F(RoundPlannerTest, NonAdjacentBlocksOfOneRequestDoNotCoalesce) {
  PlanInput input;
  input.request = 1;
  input.blocks = {AtSector(0, 100, 4), AtSector(1, 112, 4)};
  const RoundPlan plan = BuildRoundPlan(model_, {0}, 1, {input});
  EXPECT_EQ(plan.transfers.size(), 2u);
  EXPECT_EQ(plan.coalesced_blocks, 0);
}

TEST_F(RoundPlannerTest, SharedExtentDedupsAcrossRequests) {
  PlanInput a;
  a.request = 1;
  a.blocks = {AtSector(0, 100, 4)};
  PlanInput b;
  b.request = 2;
  b.blocks = {AtSector(5, 100, 4)};
  const RoundPlan plan = BuildRoundPlan(model_, {0}, 1, {a, b});
  ASSERT_EQ(plan.transfers.size(), 1u);
  EXPECT_EQ(plan.riders_of(plan.transfers[0]).size(), 2u);
  EXPECT_EQ(plan.deduped_blocks, 1);
  EXPECT_EQ(plan.read_transfers, 1);
  EXPECT_EQ(plan.data_blocks, 2);
}

TEST_F(RoundPlannerTest, CacheHitsPlanNoTransfer) {
  PlanInput input;
  input.request = 1;
  PlanCandidate hit = AtSector(0, 100, 4);
  hit.cache_hit = true;
  input.blocks = {hit, AtSector(1, 104, 4)};
  const RoundPlan plan = BuildRoundPlan(model_, {0}, 1, {input});
  ASSERT_EQ(plan.transfers.size(), 1u);
  EXPECT_EQ(plan.transfers[0].start_sector, 104);
  EXPECT_EQ(plan.cache_hits, 1);
  EXPECT_EQ(plan.data_blocks, 2);
}

TEST_F(RoundPlannerTest, ArrayMembersGetIndependentCScanQueues) {
  // Two members: block ordinals alternate members; each member's queue
  // must be elevator-ordered on its own.
  PlanInput input;
  input.request = 1;
  input.blocks = {AtCylinder(0, 80), AtCylinder(1, 60), AtCylinder(2, 20),
                  AtCylinder(3, 90)};
  const RoundPlan plan = BuildRoundPlan(model_, {50, 50}, 2, {input});
  ASSERT_EQ(plan.transfers.size(), 4u);
  std::vector<int64_t> member0;
  std::vector<int64_t> member1;
  for (const PlannedTransfer& transfer : plan.transfers) {
    (transfer.member == 0 ? member0 : member1).push_back(CylinderOf(transfer));
  }
  // Member 0 holds ordinals 0 and 2 (cylinders 80, 20): sweep from 50
  // takes 80 first, wraps to 20. Member 1 holds 60 then 90, in sweep order.
  EXPECT_EQ(member0, (std::vector<int64_t>{80, 20}));
  EXPECT_EQ(member1, (std::vector<int64_t>{60, 90}));
}

// SCAN (seek-ordered) servicing, the paper's Section 6.2 optimization.
class ScanOrderTest : public ::testing::Test {
 protected:
  ScanOrderTest() : disk_(TestDiskParameters()), store_(&disk_) {}

  StrandPlacement VideoPlacement() {
    ContinuityModel model(TestStorage(), TestVideoDevice());
    return *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  }

  PlaybackRequest MakePlayback(double duration_sec, uint64_t seed) {
    VideoSource source(TestVideo(), seed);
    const StrandPlacement placement = VideoPlacement();
    RecordingResult recorded = *RecordVideo(&store_, &source, placement, duration_sec);
    const Strand* strand = *store_.Get(recorded.strand);
    PlaybackRequest request;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      request.blocks.push_back(*strand->index().Lookup(b));
    }
    request.block_duration = strand->info().BlockDuration();
    request.spec = RequestSpec{TestVideo(), placement.granularity};
    return request;
  }

  // Runs n identical streams under the given order; returns total disk
  // busy time (positioning + transfer actually paid).
  struct RunOutcome {
    SimDuration busy_time = 0;
    int64_t violations = 0;
    bool all_admitted = true;
  };
  RunOutcome Run(ServiceOrder order, int n, bool bypass) {
    Simulator sim;
    AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
    SchedulerOptions options;
    options.service_order = order;
    options.bypass_admission = bypass;
    options.forced_k = bypass ? 4 : 0;
    ServiceScheduler scheduler(&store_, &sim, admission, options);
    const SimDuration busy_before = disk_.busy_time();
    std::vector<RequestId> ids;
    RunOutcome outcome;
    for (int i = 0; i < n; ++i) {
      Result<RequestId> id = scheduler.SubmitPlayback(MakePlayback(3.0, 100 + i));
      if (!id.ok()) {
        outcome.all_admitted = false;
        break;
      }
      ids.push_back(*id);
    }
    scheduler.RunUntilIdle();
    for (RequestId id : ids) {
      outcome.violations += scheduler.stats(id)->continuity_violations;
    }
    outcome.busy_time = disk_.busy_time() - busy_before;
    return outcome;
  }

  Disk disk_;
  StrandStore store_;
};

TEST_F(ScanOrderTest, ScanCompletesCleanly) {
  const RunOutcome outcome = Run(ServiceOrder::kSeekScan, 2, false);
  EXPECT_TRUE(outcome.all_admitted);
  EXPECT_EQ(outcome.violations, 0);
}

TEST_F(ScanOrderTest, ScanSpendsNoMoreDiskTimeThanFifo) {
  // Same workload, same admission: SCAN's sorted service order can only
  // shrink the inter-request repositioning cost.
  const RunOutcome fifo = Run(ServiceOrder::kRoundRobin, 2, true);
  const RunOutcome scan = Run(ServiceOrder::kSeekScan, 2, true);
  EXPECT_LE(scan.busy_time, fifo.busy_time);
}

TEST_F(ScanOrderTest, BypassAdmissionAdmitsBeyondCeiling) {
  AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
  const int64_t n_max =
      admission.Analyze({RequestSpec{TestVideo(), VideoPlacement().granularity}}).n_max;
  const RunOutcome overloaded =
      Run(ServiceOrder::kRoundRobin, static_cast<int>(n_max) + 2, true);
  EXPECT_TRUE(overloaded.all_admitted);  // nothing was rejected
}

// Planned rounds (block-level C-SCAN + coalescing + dedup) through the
// full scheduler, replayed strict through the continuity auditor.
class PlannedOrderTest : public ScanOrderTest {
 protected:
  PlannedOrderTest() {
    tee_.Add(&log_);
    tee_.Add(&auditor_);
  }

  void TearDown() override { EXPECT_TRUE(auditor_.Clean()) << auditor_.Report(); }

  RunOutcome RunTraced(ServiceOrder order, int n, bool bypass, BlockCache* cache) {
    Simulator sim;
    AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
    SchedulerOptions options;
    options.service_order = order;
    options.bypass_admission = bypass;
    options.forced_k = bypass ? 4 : 0;
    options.block_cache = cache;
    options.trace = &tee_;
    ServiceScheduler scheduler(&store_, &sim, admission, options);
    const SimDuration busy_before = disk_.busy_time();
    std::vector<RequestId> ids;
    RunOutcome outcome;
    for (int i = 0; i < n; ++i) {
      Result<RequestId> id = scheduler.SubmitPlayback(MakePlayback(3.0, 300 + i));
      if (!id.ok()) {
        outcome.all_admitted = false;
        break;
      }
      ids.push_back(*id);
    }
    scheduler.RunUntilIdle();
    for (RequestId id : ids) {
      outcome.violations += scheduler.stats(id)->continuity_violations;
    }
    outcome.busy_time = disk_.busy_time() - busy_before;
    return outcome;
  }

  obs::TraceLog log_;
  obs::ContinuityAuditor auditor_{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::TeeSink tee_;
};

TEST_F(PlannedOrderTest, PlannedCompletesCleanlyUnderStrictAudit) {
  const RunOutcome outcome = RunTraced(ServiceOrder::kPlanned, 2, false, nullptr);
  EXPECT_TRUE(outcome.all_admitted);
  EXPECT_EQ(outcome.violations, 0);
}

TEST_F(PlannedOrderTest, PlannedSpendsNoMoreDiskTimeThanPerRequestScan) {
  // Same admitted workload: ordering per transfer (and coalescing
  // contiguous blocks) can only shrink the arm travel the per-request
  // SCAN sort pays.
  const RunOutcome scan = Run(ServiceOrder::kSeekScan, 2, true);
  const RunOutcome planned = RunTraced(ServiceOrder::kPlanned, 2, true, nullptr);
  EXPECT_LE(planned.busy_time, scan.busy_time);
  EXPECT_EQ(planned.violations, 0);
}

TEST_F(PlannedOrderTest, PlannedRoundsEmitSeekAccounting) {
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 1 << 22});
  const RunOutcome outcome = RunTraced(ServiceOrder::kPlanned, 2, false, &cache);
  EXPECT_EQ(outcome.violations, 0);
  int64_t planned_rounds = 0;
  int64_t seek_events = 0;
  for (const obs::TraceEvent& event : log_.events()) {
    if (event.kind == obs::TraceEventKind::kRoundPlanned) {
      ++planned_rounds;
      EXPECT_GE(event.transfers, 0);
      EXPECT_LE(event.transfers + event.cache_hits + event.coalesced_blocks +
                    event.deduped_blocks,
                event.blocks + event.transfers);
    }
    if (event.kind == obs::TraceEventKind::kSeekAccounting) {
      ++seek_events;
      // Measured arm travel never exceeds the alpha-model worst case the
      // admission math charged (the auditor enforces this too).
      EXPECT_LE(event.seek_cylinders, event.seek_cylinders_worst);
    }
  }
  EXPECT_GT(planned_rounds, 0);
  EXPECT_GT(seek_events, 0);
}

TEST_F(ScanOrderTest, ScanToleratesOverloadBetterThanFifo) {
  // Slightly past the (pessimistic) ceiling, SCAN's cheaper switches keep
  // more deadlines than FIFO order does.
  AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
  const int64_t n_max =
      admission.Analyze({RequestSpec{TestVideo(), VideoPlacement().granularity}}).n_max;
  const int n = static_cast<int>(n_max) + 1;
  const RunOutcome fifo = Run(ServiceOrder::kRoundRobin, n, true);
  const RunOutcome scan = Run(ServiceOrder::kSeekScan, n, true);
  EXPECT_LE(scan.violations, fifo.violations);
}

}  // namespace
}  // namespace vafs
