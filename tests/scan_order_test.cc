#include <gtest/gtest.h>

#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

// SCAN (seek-ordered) servicing, the paper's Section 6.2 optimization.
class ScanOrderTest : public ::testing::Test {
 protected:
  ScanOrderTest() : disk_(TestDiskParameters()), store_(&disk_) {}

  StrandPlacement VideoPlacement() {
    ContinuityModel model(TestStorage(), TestVideoDevice());
    return *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  }

  PlaybackRequest MakePlayback(double duration_sec, uint64_t seed) {
    VideoSource source(TestVideo(), seed);
    const StrandPlacement placement = VideoPlacement();
    RecordingResult recorded = *RecordVideo(&store_, &source, placement, duration_sec);
    const Strand* strand = *store_.Get(recorded.strand);
    PlaybackRequest request;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      request.blocks.push_back(*strand->index().Lookup(b));
    }
    request.block_duration = strand->info().BlockDuration();
    request.spec = RequestSpec{TestVideo(), placement.granularity};
    return request;
  }

  // Runs n identical streams under the given order; returns total disk
  // busy time (positioning + transfer actually paid).
  struct RunOutcome {
    SimDuration busy_time = 0;
    int64_t violations = 0;
    bool all_admitted = true;
  };
  RunOutcome Run(ServiceOrder order, int n, bool bypass) {
    Simulator sim;
    AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
    SchedulerOptions options;
    options.service_order = order;
    options.bypass_admission = bypass;
    options.forced_k = bypass ? 4 : 0;
    ServiceScheduler scheduler(&store_, &sim, admission, options);
    const SimDuration busy_before = disk_.busy_time();
    std::vector<RequestId> ids;
    RunOutcome outcome;
    for (int i = 0; i < n; ++i) {
      Result<RequestId> id = scheduler.SubmitPlayback(MakePlayback(3.0, 100 + i));
      if (!id.ok()) {
        outcome.all_admitted = false;
        break;
      }
      ids.push_back(*id);
    }
    scheduler.RunUntilIdle();
    for (RequestId id : ids) {
      outcome.violations += scheduler.stats(id)->continuity_violations;
    }
    outcome.busy_time = disk_.busy_time() - busy_before;
    return outcome;
  }

  Disk disk_;
  StrandStore store_;
};

TEST_F(ScanOrderTest, ScanCompletesCleanly) {
  const RunOutcome outcome = Run(ServiceOrder::kSeekScan, 2, false);
  EXPECT_TRUE(outcome.all_admitted);
  EXPECT_EQ(outcome.violations, 0);
}

TEST_F(ScanOrderTest, ScanSpendsNoMoreDiskTimeThanFifo) {
  // Same workload, same admission: SCAN's sorted service order can only
  // shrink the inter-request repositioning cost.
  const RunOutcome fifo = Run(ServiceOrder::kRoundRobin, 2, true);
  const RunOutcome scan = Run(ServiceOrder::kSeekScan, 2, true);
  EXPECT_LE(scan.busy_time, fifo.busy_time);
}

TEST_F(ScanOrderTest, BypassAdmissionAdmitsBeyondCeiling) {
  AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
  const int64_t n_max =
      admission.Analyze({RequestSpec{TestVideo(), VideoPlacement().granularity}}).n_max;
  const RunOutcome overloaded =
      Run(ServiceOrder::kRoundRobin, static_cast<int>(n_max) + 2, true);
  EXPECT_TRUE(overloaded.all_admitted);  // nothing was rejected
}

TEST_F(ScanOrderTest, ScanToleratesOverloadBetterThanFifo) {
  // Slightly past the (pessimistic) ceiling, SCAN's cheaper switches keep
  // more deadlines than FIFO order does.
  AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
  const int64_t n_max =
      admission.Analyze({RequestSpec{TestVideo(), VideoPlacement().granularity}}).n_max;
  const int n = static_cast<int>(n_max) + 1;
  const RunOutcome fifo = Run(ServiceOrder::kRoundRobin, n, true);
  const RunOutcome scan = Run(ServiceOrder::kSeekScan, n, true);
  EXPECT_LE(scan.violations, fifo.violations);
}

}  // namespace
}  // namespace vafs
