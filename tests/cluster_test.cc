// Cluster sharding and failover (src/cluster/): placement, routing,
// node-loss failover within the stamped bound, explicit load shedding,
// journal-replay restart with catalog reconciliation, token-bucket
// re-replication, and byte-identical replay of a seeded failure run.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/obs/trace.h"
#include "src/sim/workload.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

using cluster::ClusterCoordinator;
using cluster::ClusterOptions;
using cluster::NodeState;
using cluster::ViewerRecord;

ClusterOptions TestClusterOptions(int nodes) {
  ClusterOptions options;
  options.nodes = nodes;
  options.node_config = TestConfig();
  options.node_config.scheduler.service_order = ServiceOrder::kPlanned;
  options.node_config.block_cache.capacity_bytes = 1 << 22;
  options.node_config.sessions.batch_window_sec = 1.0;
  options.node_config.sessions.max_patch_blocks = 64;
  options.media = TestVideo();
  options.epoch_sec = 0.25;
  options.hot_replicas = 2;
  options.cold_replicas = 1;
  options.failover_bound_epochs = 2;
  return options;
}

std::vector<sim::WorkloadArrival> ArrivalsAt(const std::vector<std::pair<double, int64_t>>& spec) {
  std::vector<sim::WorkloadArrival> arrivals;
  for (const auto& [time_sec, title] : spec) {
    sim::WorkloadArrival arrival;
    arrival.time_sec = time_sec;
    arrival.title = title;
    arrivals.push_back(arrival);
  }
  return arrivals;
}

int CountEvents(const ClusterCoordinator& coordinator, obs::TraceEventKind kind) {
  int count = 0;
  for (const obs::TraceEvent& event :
       const_cast<ClusterCoordinator&>(coordinator).trace_log().events()) {
    count += event.kind == kind ? 1 : 0;
  }
  return count;
}

TEST(ClusterTest, PlacementSpreadsReplicasAndRoutesViewers) {
  ClusterCoordinator coordinator(TestClusterOptions(2));
  ASSERT_TRUE(coordinator.AddTitle(0, 100, 2.0, /*hot=*/true).ok());
  ASSERT_TRUE(coordinator.AddTitle(1, 101, 2.0, /*hot=*/false).ok());
  ASSERT_TRUE(coordinator.AddTitle(2, 102, 2.0, /*hot=*/false).ok());

  coordinator.Run(ArrivalsAt({{0.1, 0}, {0.15, 1}, {0.2, 2}, {0.3, 0}}), {}, 4.0);

  EXPECT_EQ(coordinator.census().admitted, 4);
  EXPECT_EQ(coordinator.census().rejected, 0);
  EXPECT_EQ(coordinator.census().finished, 4);
  EXPECT_EQ(coordinator.census().shed, 0);
  // The two cold titles spread across both nodes (least-loaded placement).
  std::vector<int> nodes_used;
  for (const ViewerRecord& viewer : coordinator.viewers()) {
    nodes_used.push_back(viewer.node);
  }
  EXPECT_TRUE(std::find(nodes_used.begin(), nodes_used.end(), 0) != nodes_used.end());
  EXPECT_TRUE(std::find(nodes_used.begin(), nodes_used.end(), 1) != nodes_used.end());
  EXPECT_TRUE(coordinator.AuditsClean()) << coordinator.AuditReport();
}

TEST(ClusterTest, ViewersOfOneTitleOnOneNodeShareStreams) {
  ClusterCoordinator coordinator(TestClusterOptions(1));
  ASSERT_TRUE(coordinator.AddTitle(0, 100, 3.0, /*hot=*/false).ok());

  // Three viewers inside the batch window: one leader, two riders.
  coordinator.Run(ArrivalsAt({{0.1, 0}, {0.4, 0}, {0.7, 0}}), {}, 5.0);

  EXPECT_EQ(coordinator.census().admitted, 3);
  const SessionCensus& sessions = coordinator.node(0).fs().session_manager()->census();
  EXPECT_EQ(sessions.leaders, 1);
  EXPECT_EQ(sessions.batched, 2);
  EXPECT_TRUE(coordinator.AuditsClean()) << coordinator.AuditReport();
}

TEST(ClusterTest, NodeKillFailsViewersOverWithinStampedBound) {
  ClusterOptions options = TestClusterOptions(2);
  ClusterCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.AddTitle(0, 100, 4.0, /*hot=*/true).ok());
  ASSERT_TRUE(coordinator.CheckpointAll().ok());

  // Both viewers land on distinct nodes (least-loaded routing); node 0
  // dies under its viewer at 1.4 s and never comes back.
  sim::WorkloadOptions::NodeFailure kill;
  kill.time_sec = 1.4;
  kill.node = 0;
  coordinator.Run(ArrivalsAt({{0.1, 0}, {0.2, 0}}), {kill}, 8.0);

  EXPECT_EQ(coordinator.census().admitted, 2);
  EXPECT_EQ(coordinator.census().nodes_killed, 1);
  EXPECT_EQ(coordinator.census().failed_over, 1);
  EXPECT_EQ(coordinator.census().shed, 0);
  EXPECT_EQ(coordinator.census().finished, 2);
  EXPECT_EQ(coordinator.node(0).state(), NodeState::kDead);

  EXPECT_EQ(CountEvents(coordinator, obs::TraceEventKind::kNodeDown), 1);
  ASSERT_EQ(CountEvents(coordinator, obs::TraceEventKind::kFailover), 1);
  for (const obs::TraceEvent& event : coordinator.trace_log().events()) {
    if (event.kind != obs::TraceEventKind::kFailover) {
      continue;
    }
    EXPECT_EQ(event.node, 1);  // resumed on the survivor
    EXPECT_GT(event.round_budget, 0);
    EXPECT_LE(event.duration, event.round_budget);  // the auditor's rule
  }
  // Every viewer is accounted for: no silent stream deaths.
  for (const ViewerRecord& viewer : coordinator.viewers()) {
    EXPECT_EQ(viewer.state, ViewerRecord::State::kFinished);
  }
  EXPECT_TRUE(coordinator.AuditsClean()) << coordinator.AuditReport();
}

TEST(ClusterTest, ShedsLowestPriorityViewersWhenSurvivorIsFull) {
  ClusterOptions options = TestClusterOptions(2);
  options.node_config.scheduler.cache_aware_admission = false;
  ClusterOptions probe_options = options;
  ClusterCoordinator probe(probe_options);
  ASSERT_TRUE(probe.AddTitle(0, 100, 6.0, /*hot=*/true).ok());
  // Measure one node's Eq. 17 ceiling for this title by packing distinct
  // solo streams onto node 0 until admission refuses.
  int64_t n_max = 0;
  {
    MultimediaFileSystem& fs = probe.node(0).fs();
    const RopeId rope = *probe.ReplicaRope(0, 0);
    while (n_max < 64) {
      Result<RequestId> id = fs.Play("probe", rope, Medium::kVideo, TimeInterval{0.0, 6.0});
      if (!id.ok()) {
        break;
      }
      ++n_max;
    }
    ASSERT_GT(n_max, 1);
    ASSERT_LT(n_max, 64);
  }

  // Fresh cluster: batching disabled so every viewer is a full stream
  // (riders would otherwise share slots and nothing would shed).
  options.node_config.sessions.batch_window_sec = 0.0;
  options.node_config.sessions.max_patch_blocks = 0;
  ClusterCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.AddTitle(0, 100, 6.0, /*hot=*/true).ok());

  // Saturate BOTH nodes to their ceiling, then kill node 0: the survivor
  // has no free slots, so every orphan must shed — lowest priority first,
  // each with an explicit kShedLoad record.
  std::vector<std::pair<double, int64_t>> spec;
  for (int64_t i = 0; i < 2 * n_max; ++i) {
    spec.push_back({0.1 + 0.01 * static_cast<double>(i), 0});
  }
  sim::WorkloadOptions::NodeFailure kill;
  kill.time_sec = 2.0;
  kill.node = 0;
  coordinator.Run(ArrivalsAt(spec), {kill}, 10.0);

  EXPECT_EQ(coordinator.census().admitted, 2 * n_max);
  EXPECT_GT(coordinator.census().shed, 0);
  EXPECT_EQ(CountEvents(coordinator, obs::TraceEventKind::kShedLoad),
            static_cast<int>(coordinator.census().shed));
  // No orphan vanished without a verdict.
  for (const ViewerRecord& viewer : coordinator.viewers()) {
    EXPECT_TRUE(viewer.state == ViewerRecord::State::kFinished ||
                viewer.state == ViewerRecord::State::kShed);
  }
  // Anyone who did fail over outranks (arrived before) everyone shed.
  int64_t best_shed = -1;
  for (const ViewerRecord& viewer : coordinator.viewers()) {
    if (viewer.state == ViewerRecord::State::kShed &&
        (best_shed < 0 || viewer.priority < best_shed)) {
      best_shed = viewer.priority;
    }
  }
  for (const ViewerRecord& viewer : coordinator.viewers()) {
    if (viewer.failovers > 0 && best_shed >= 0) {
      EXPECT_LT(viewer.priority, best_shed);
    }
  }
  EXPECT_TRUE(coordinator.AuditsClean()) << coordinator.AuditReport();
}

TEST(ClusterTest, RestartReplaysJournalAndReconcilesCatalog) {
  ClusterOptions options = TestClusterOptions(2);
  options.reconcile_titles_per_epoch = 1;  // force the walk across epochs
  ClusterCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.AddTitle(0, 100, 2.0, /*hot=*/true).ok());
  ASSERT_TRUE(coordinator.CheckpointAll().ok());
  // Placed after the checkpoint: only the intent journal knows about it,
  // so a restart that loses the journal replay would drop the replica.
  ASSERT_TRUE(coordinator.AddTitle(1, 101, 2.0, /*hot=*/true).ok());

  sim::WorkloadOptions::NodeFailure kill;
  kill.time_sec = 0.5;
  kill.node = 0;
  kill.restart_after_sec = 1.0;
  coordinator.Run(ArrivalsAt({{0.1, 0}}), {kill}, 6.0);

  EXPECT_EQ(coordinator.census().nodes_killed, 1);
  EXPECT_EQ(coordinator.census().nodes_restarted, 1);
  EXPECT_EQ(coordinator.node(0).state(), NodeState::kUp);
  ASSERT_EQ(CountEvents(coordinator, obs::TraceEventKind::kNodeUp), 1);
  for (const obs::TraceEvent& event : coordinator.trace_log().events()) {
    if (event.kind == obs::TraceEventKind::kNodeUp) {
      // Both replicas verified — including the journal-only title.
      EXPECT_EQ(event.blocks, 2);
    }
  }
  // A viewer arriving after the restart routes to the readmitted node.
  coordinator.Run(ArrivalsAt({{6.1, 0}, {6.15, 1}}), {}, 10.0);
  EXPECT_EQ(coordinator.census().rejected, 0);
  EXPECT_TRUE(coordinator.AuditsClean()) << coordinator.AuditReport();
}

TEST(ClusterTest, RepairTokenBucketRestoresLostReplicas) {
  ClusterOptions options = TestClusterOptions(3);
  options.repair_tokens_per_epoch = 1;  // several epochs to afford one title
  options.repair_token_burst = 1;
  ClusterCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.AddTitle(0, 100, 4.0, /*hot=*/true).ok());

  sim::WorkloadOptions::NodeFailure kill;
  kill.time_sec = 0.5;
  kill.node = 0;
  coordinator.Run({}, {kill}, 30.0);

  EXPECT_EQ(coordinator.census().re_replications, 1);
  EXPECT_GT(coordinator.census().repair_blocks, 0);
  EXPECT_EQ(coordinator.LiveReplicas(0), 2);  // back at its target
  ASSERT_EQ(CountEvents(coordinator, obs::TraceEventKind::kReReplicate), 1);
  SimTime repaired_at = 0;
  int64_t title_blocks = 0;
  for (const obs::TraceEvent& event : coordinator.trace_log().events()) {
    if (event.kind == obs::TraceEventKind::kReReplicate) {
      repaired_at = event.time;
      title_blocks = event.blocks;
      EXPECT_EQ(event.node, 2);  // the node not already holding the title
      EXPECT_GE(event.blocks, 2);
    }
  }
  // The bucket starts at burst (1 block) and refills 1 block/epoch: a
  // multi-block title cannot be afforded at the detection boundary, so
  // repair lands (blocks - burst) epochs later — throttled, not flooding
  // the cluster the instant the node dies.
  EXPECT_GE(repaired_at, SecondsToUsec(kill.time_sec) +
                             (title_blocks - 1) * SecondsToUsec(options.epoch_sec));
  EXPECT_TRUE(coordinator.AuditsClean()) << coordinator.AuditReport();
}

TEST(ClusterTest, SeededFailureRunReplaysByteIdentically) {
  const auto run_once = [](std::string* slo_json) {
    ClusterOptions options = TestClusterOptions(2);
    ClusterCoordinator coordinator(options);
    EXPECT_TRUE(coordinator.AddTitle(0, 100, 3.0, /*hot=*/true).ok());
    EXPECT_TRUE(coordinator.AddTitle(1, 101, 3.0, /*hot=*/false).ok());
    sim::WorkloadOptions workload;
    workload.titles = 2;
    workload.duration_sec = 2.0;
    workload.arrival_rate_per_sec = 2.0;
    workload.seed = 77;
    sim::WorkloadOptions::NodeFailure kill;
    kill.time_sec = 1.2;
    kill.node = 1;
    workload.node_failures = {kill};
    const sim::WorkloadEngine engine(workload);
    coordinator.Run(engine.Generate(), engine.FailureSchedule(), 8.0);
    if (slo_json != nullptr) {
      *slo_json = coordinator.ClusterSloJson();
    }
    return coordinator.Signature();
  };
  std::string slo_a;
  std::string slo_b;
  EXPECT_EQ(run_once(&slo_a), run_once(&slo_b));
  EXPECT_EQ(slo_a, slo_b);
  EXPECT_NE(slo_a.find("\"kind\":\"vafs.slo.cluster\""), std::string::npos);
}

}  // namespace
}  // namespace vafs
