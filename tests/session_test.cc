#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/obs/auditor.h"
#include "src/sim/workload.h"
#include "src/util/time.h"
#include "src/vafs/file_system.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

// --- Workload engine ----------------------------------------------------

TEST(WorkloadTest, SameSeedReproducesTheExactTrace) {
  sim::WorkloadOptions options;
  options.titles = 10;
  options.duration_sec = 200.0;
  options.arrival_rate_per_sec = 2.0;
  options.seed = 42;
  const std::vector<sim::WorkloadArrival> a = sim::WorkloadEngine(options).Generate();
  const std::vector<sim::WorkloadArrival> b = sim::WorkloadEngine(options).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_sec, b[i].time_sec);
    EXPECT_EQ(a[i].title, b[i].title);
  }
  // Sanity of the shape: sorted, inside the window, plausibly Poisson.
  ASSERT_FALSE(a.empty());
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].time_sec, a[i - 1].time_sec);
  }
  EXPECT_LT(a.back().time_sec, options.duration_sec);
  EXPECT_GT(a.size(), 200u);  // ~400 expected at rate 2 over 200 s
  EXPECT_LT(a.size(), 800u);
}

TEST(WorkloadTest, ZipfSkewsTowardTheHeadTitles) {
  sim::ZipfPopularity zipf(10, 1.0);
  double total = 0.0;
  for (int64_t t = 0; t < zipf.titles(); ++t) {
    total += zipf.Probability(t);
    if (t > 0) {
      EXPECT_LT(zipf.Probability(t), zipf.Probability(t - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  sim::WorkloadOptions options;
  options.titles = 10;
  options.zipf_exponent = 1.0;
  options.duration_sec = 500.0;
  options.arrival_rate_per_sec = 2.0;
  options.seed = 7;
  std::map<int64_t, int64_t> counts;
  for (const sim::WorkloadArrival& arrival : sim::WorkloadEngine(options).Generate()) {
    ++counts[arrival.title];
  }
  // The head title dominates the tail by a wide margin under s = 1.
  EXPECT_GT(counts[0], 3 * counts[9]);
}

TEST(WorkloadTest, FlashCrowdConcentratesArrivalsOnOneTitle) {
  sim::WorkloadOptions options;
  options.titles = 8;
  options.duration_sec = 100.0;
  options.arrival_rate_per_sec = 1.0;
  options.flash_start_sec = 40.0;
  options.flash_duration_sec = 10.0;
  options.flash_rate_multiplier = 8.0;
  options.flash_title_bias = 0.9;
  options.flash_title = 3;
  options.seed = 11;
  int64_t in_flash = 0;
  int64_t in_flash_on_title = 0;
  int64_t outside = 0;
  for (const sim::WorkloadArrival& arrival : sim::WorkloadEngine(options).Generate()) {
    const bool window = arrival.time_sec >= options.flash_start_sec &&
                        arrival.time_sec < options.flash_start_sec + options.flash_duration_sec;
    EXPECT_EQ(arrival.flash, window);
    if (window) {
      ++in_flash;
      in_flash_on_title += arrival.title == options.flash_title ? 1 : 0;
    } else {
      ++outside;
    }
  }
  // The burst runs ~8x the base rate over 1/9 of the window: it should
  // out-number the entire off-flash trace and point mostly at one title.
  EXPECT_GT(in_flash, outside / 2);
  EXPECT_GT(in_flash_on_title * 10, in_flash * 7);

  // Widening the flash must not disturb the trace before it.
  sim::WorkloadOptions wider = options;
  wider.flash_duration_sec = 30.0;
  const std::vector<sim::WorkloadArrival> narrow = sim::WorkloadEngine(options).Generate();
  const std::vector<sim::WorkloadArrival> wide = sim::WorkloadEngine(wider).Generate();
  for (size_t i = 0; i < narrow.size() && i < wide.size(); ++i) {
    if (narrow[i].time_sec >= options.flash_start_sec) {
      break;
    }
    EXPECT_DOUBLE_EQ(narrow[i].time_sec, wide[i].time_sec);
    EXPECT_EQ(narrow[i].title, wide[i].title);
  }
}

// --- Session layer ------------------------------------------------------

class SessionTest : public ::testing::Test {
 protected:
  // Planned scheduler + shared cache + telemetry + sessions, with the
  // strict auditor riding the telemetry tee as the user trace sink.
  FileSystemConfig SessionConfig() {
    FileSystemConfig config = TestConfig();
    config.scheduler.service_order = ServiceOrder::kPlanned;
    config.scheduler.cache_aware_admission = true;
    config.scheduler.trace = &auditor_;
    config.block_cache.capacity_bytes = 1 << 22;
    config.telemetry.enabled = true;
    config.sessions.enabled = true;
    config.sessions.batch_window_sec = 1.0;
    config.sessions.max_patch_blocks = 64;
    config.sessions.runway_margin_blocks = 0;  // bound = the leader's remainder
    return config;
  }

  void TearDown() override { EXPECT_TRUE(auditor_.Clean()) << auditor_.Report(); }

  static RopeId RecordTitle(MultimediaFileSystem* fs, double duration_sec, uint64_t seed) {
    VideoSource video(TestVideo(), seed);
    Result<MultimediaFileSystem::RecordResult> recorded =
        fs->Record("studio", &video, nullptr, duration_sec);
    EXPECT_TRUE(recorded.ok()) << recorded.status().ToString();
    return recorded->rope;
  }

  obs::ContinuityAuditor auditor_{obs::AuditorOptions{.round_time_slack = 0.05}};
};

TEST_F(SessionTest, DisabledSessionsRejectOpen) {
  FileSystemConfig config = TestConfig();
  MultimediaFileSystem fs(config);
  const RopeId rope = RecordTitle(&fs, 1.0, 3);
  EXPECT_EQ(fs.OpenSession("alice", rope, Medium::kVideo, TimeInterval{0.0, 1.0}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(SessionTest, ArrivalAtTheBatchWindowEdgeStillRides) {
  MultimediaFileSystem fs(SessionConfig());
  const RopeId rope = RecordTitle(&fs, 4.0, 5);
  const TimeInterval interval{0.0, 4.0};
  Result<SessionTicket> leader = fs.OpenSession("alice", rope, Medium::kVideo, interval);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  EXPECT_EQ(leader->mode, SessionTicket::Mode::kLeader);
  const SimTime opened = fs.simulator().Now();
  // Exactly at the window edge: inclusive, so the viewer attaches as a
  // rider on the leader's stream and holds no request of its own.
  fs.simulator().RunUntil(opened + SecondsToUsec(1.0));
  Result<SessionTicket> rider = fs.OpenSession("bob", rope, Medium::kVideo, interval);
  ASSERT_TRUE(rider.ok()) << rider.status().ToString();
  EXPECT_EQ(rider->mode, SessionTicket::Mode::kBatched);
  EXPECT_EQ(rider->request, leader->request);
  EXPECT_GT(rider->gap_blocks, 0);
  fs.RunUntilIdle();
  EXPECT_TRUE(fs.Stats(leader->request)->completed);
  EXPECT_EQ(fs.session_manager()->census().batched, 1);
  EXPECT_EQ(fs.SloSnapshot().sessions_batched, 1);
}

TEST_F(SessionTest, ArrivalPastTheWindowOpensItsOwnStreamWithoutPatching) {
  FileSystemConfig config = SessionConfig();
  config.sessions.max_patch_blocks = 0;  // patching off: window is a cliff
  MultimediaFileSystem fs(config);
  const RopeId rope = RecordTitle(&fs, 4.0, 9);
  const TimeInterval interval{0.0, 4.0};
  Result<SessionTicket> leader = fs.OpenSession("alice", rope, Medium::kVideo, interval);
  ASSERT_TRUE(leader.ok());
  const SimTime opened = fs.simulator().Now();
  fs.simulator().RunUntil(opened + SecondsToUsec(1.0) + 1);
  Result<SessionTicket> late = fs.OpenSession("bob", rope, Medium::kVideo, interval);
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_EQ(late->mode, SessionTicket::Mode::kLeader);
  EXPECT_NE(late->request, leader->request);
  fs.RunUntilIdle();
  EXPECT_TRUE(fs.Stats(leader->request)->completed);
  EXPECT_TRUE(fs.Stats(late->request)->completed);
  EXPECT_EQ(fs.session_manager()->census().batched, 0);
  EXPECT_EQ(fs.session_manager()->census().leaders, 2);
}

TEST_F(SessionTest, PatchedRiderMergesAndSeesByteIdenticalContent) {
  MultimediaFileSystem fs(SessionConfig());
  VideoSource video(TestVideo(), 13);
  Result<MultimediaFileSystem::RecordResult> recorded =
      fs.Record("studio", &video, nullptr, 4.0);
  ASSERT_TRUE(recorded.ok());
  const TimeInterval interval{0.0, 4.0};
  Result<SessionTicket> leader = fs.OpenSession("alice", recorded->rope, Medium::kVideo, interval);
  ASSERT_TRUE(leader.ok());
  const SimTime opened = fs.simulator().Now();
  // Past the batch window but well inside patch range.
  fs.simulator().RunUntil(opened + SecondsToUsec(1.5));
  Result<SessionTicket> rider = fs.OpenSession("bob", recorded->rope, Medium::kVideo, interval);
  ASSERT_TRUE(rider.ok()) << rider.status().ToString();
  ASSERT_EQ(rider->mode, SessionTicket::Mode::kPatched);
  EXPECT_EQ(rider->request, leader->request);
  ASSERT_NE(rider->patch_request, 0u);
  ASSERT_GT(rider->gap_blocks, 0);
  EXPECT_GT(rider->runway_bound, 0);
  fs.RunUntilIdle();

  // The patch read exactly the missed prefix, then merged; the leader
  // carried the rest of the title for both viewers.
  const SessionCensus& census = fs.session_manager()->census();
  EXPECT_EQ(census.patched, 1);
  EXPECT_EQ(census.merged, 1);
  EXPECT_EQ(census.degraded, 0);
  EXPECT_EQ(fs.SloSnapshot().sessions_merged, 1);
  Result<const Strand*> strand = fs.storage_manager().Get(recorded->video_strand);
  ASSERT_TRUE(strand.ok());
  const int64_t total = (*strand)->block_count();
  const int64_t gap = rider->gap_blocks;
  EXPECT_EQ(fs.Stats(rider->patch_request)->blocks_done, gap);
  EXPECT_EQ(fs.Stats(leader->request)->blocks_done, total);

  // Byte identity: the rider's sequence — patch deliveries over [0, gap)
  // followed by the leader's from gap on — must equal a solo pass. Both
  // resolve through the storage manager's untimed read path.
  for (int64_t b = 0; b < total; ++b) {
    std::vector<uint8_t> rider_bytes;
    std::vector<uint8_t> solo_bytes;
    const StrandId source = recorded->video_strand;  // patch and leader share it
    ASSERT_TRUE(fs.storage_manager().ReadBlock(source, b, &rider_bytes).ok());
    ASSERT_TRUE(fs.storage_manager().ReadBlock(recorded->video_strand, b, &solo_bytes).ok());
    ASSERT_EQ(rider_bytes, solo_bytes) << "block " << b << (b < gap ? " (patch)" : " (leader)");
  }
}

TEST_F(SessionTest, LeaderRevokedDuringPatchDegradesToSoloWithoutDoubleRelease) {
  FileSystemConfig config = SessionConfig();
  config.block_cache.capacity_bytes = 1 << 23;  // hot title + filler churn stay resident
  MultimediaFileSystem fs(config);
  const RopeId hot = RecordTitle(&fs, 4.0, 21);
  const TimeInterval interval{0.0, 4.0};

  // Prime: one full solo pass leaves the hot title resident in the cache.
  Result<RequestId> primer = fs.Play("primer", hot, Medium::kVideo, interval);
  ASSERT_TRUE(primer.ok()) << primer.status().ToString();
  fs.RunUntilIdle();

  // Saturate the Eq. 17 slots with distinct cold titles (streams of one
  // shared title would cover each other's lookahead and cache-admit) so
  // the next viewer of the hot title only fits as a cache tenant.
  std::vector<RequestId> fillers;
  for (int i = 0;; ++i) {
    ASSERT_LT(i, 40) << "admission never saturated";
    const RopeId cold = RecordTitle(&fs, 2.5, 100 + i);
    Result<RequestId> id = fs.Play("filler", cold, Medium::kVideo, TimeInterval{0.0, 2.5});
    if (!id.ok()) {
      break;
    }
    fillers.push_back(*id);
  }
  ASSERT_FALSE(fillers.empty());

  Result<SessionTicket> leader = fs.OpenSession("alice", hot, Medium::kVideo, interval);
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  ASSERT_EQ(leader->mode, SessionTicket::Mode::kLeader);
  ASSERT_TRUE(fs.Stats(leader->request)->cache_admitted);

  const SimTime opened = fs.simulator().Now();
  fs.simulator().RunUntil(opened + SecondsToUsec(1.5));
  Result<SessionTicket> rider = fs.OpenSession("bob", hot, Medium::kVideo, interval);
  ASSERT_TRUE(rider.ok()) << rider.status().ToString();
  ASSERT_EQ(rider->mode, SessionTicket::Mode::kPatched);
  ASSERT_NE(rider->patch_request, 0u);

  // Collapse the coverage both cache tenants were admitted on: the next
  // planned round revokes the leader and the patch together, in one pass.
  fs.simulator().ScheduleAfter(SecondsToUsec(0.1),
                               [&fs]() { fs.block_cache()->InvalidateAll(); });
  fs.RunUntilIdle();

  int64_t revoked = 0;
  for (const obs::TraceEvent& event : fs.trace_log()->events()) {
    if (event.kind == obs::TraceEventKind::kCacheAdmitRevoked) {
      ++revoked;
    }
  }
  EXPECT_GE(revoked, 2) << "leader and patch should both lose their cache admission";

  // The rider degrades to solo exactly once even though it lost its leader
  // and its patch in the same round, and the leader's trail pins come off
  // exactly once: nothing stays pinned, nothing underflows.
  const SessionCensus& census = fs.session_manager()->census();
  EXPECT_EQ(census.patched, 1);
  EXPECT_EQ(census.merged, 0);
  EXPECT_EQ(census.degraded, 1);
  EXPECT_EQ(fs.session_manager()->LiveViewers(), 0);
  EXPECT_EQ(fs.block_cache()->stats().pinned_entries, 0);
  // The solo patch got its one deferred resume; with the slots still full
  // and the cache cold it stays parked rather than completing.
  EXPECT_TRUE(fs.Stats(rider->patch_request)->paused);
  EXPECT_FALSE(fs.Stats(rider->patch_request)->completed);
  for (RequestId id : fillers) {
    EXPECT_TRUE(fs.Stats(id)->completed);
  }
}

TEST_F(SessionTest, FlashCrowdAdmitsRidersUnderStrictAudit) {
  MultimediaFileSystem fs(SessionConfig());
  std::vector<RopeId> ropes;
  ropes.push_back(RecordTitle(&fs, 4.0, 17));
  ropes.push_back(RecordTitle(&fs, 4.0, 19));

  sim::WorkloadOptions options;
  options.titles = 4;
  options.duration_sec = 6.0;
  options.arrival_rate_per_sec = 0.8;
  options.flash_start_sec = 1.0;
  options.flash_duration_sec = 2.0;
  options.flash_rate_multiplier = 6.0;
  options.flash_title_bias = 1.0;
  options.flash_title = 0;
  options.seed = 33;
  const std::vector<sim::WorkloadArrival> arrivals = sim::WorkloadEngine(options).Generate();
  ASSERT_GT(arrivals.size(), 4u);

  const SimTime base = fs.simulator().Now();
  std::vector<SessionTicket> admitted;
  int rejected = 0;
  for (const sim::WorkloadArrival& arrival : arrivals) {
    const RopeId rope = ropes[static_cast<size_t>(arrival.title) % ropes.size()];
    fs.simulator().ScheduleAt(base + SecondsToUsec(arrival.time_sec), [&fs, &admitted, &rejected,
                                                                       rope]() {
      Result<SessionTicket> ticket =
          fs.OpenSession("crowd", rope, Medium::kVideo, TimeInterval{0.0, 4.0});
      if (ticket.ok()) {
        admitted.push_back(*ticket);
      } else {
        ++rejected;
      }
    });
  }
  fs.RunUntilIdle();

  const SessionCensus& census = fs.session_manager()->census();
  EXPECT_EQ(census.viewers, static_cast<int64_t>(admitted.size()));
  EXPECT_EQ(static_cast<size_t>(census.viewers) + rejected, arrivals.size());
  // The flash crowd shares streams: the layer must admit more viewers than
  // it opened physical streams, with nobody degraded.
  EXPECT_GT(census.batched + census.patched, 0);
  EXPECT_GT(census.viewers, census.leaders);
  EXPECT_EQ(census.degraded, 0);
  EXPECT_EQ(fs.session_manager()->LiveViewers(), 0);
  for (const SessionTicket& ticket : admitted) {
    EXPECT_TRUE(fs.Stats(ticket.request)->completed) << "session " << ticket.session;
  }
}

}  // namespace
}  // namespace vafs
