#include <gtest/gtest.h>

#include <vector>

#include "src/layout/strand_index.h"

namespace vafs {
namespace {

PrimaryEntry Block(int64_t sector, int64_t count = 4) { return PrimaryEntry{sector, count}; }
PrimaryEntry Silence() { return PrimaryEntry{kSilenceSector, 0}; }

TEST(StrandIndexTest, AppendAndLookup) {
  StrandIndex index;
  index.Append(Block(100));
  index.Append(Block(200));
  index.Append(Silence());
  index.Append(Block(300));
  EXPECT_EQ(index.block_count(), 4);
  EXPECT_EQ(index.silence_block_count(), 1);
  ASSERT_TRUE(index.Lookup(0).ok());
  EXPECT_EQ(index.Lookup(0)->sector, 100);
  EXPECT_TRUE(index.Lookup(2)->IsSilence());
  EXPECT_EQ(index.Lookup(3)->sector, 300);
}

TEST(StrandIndexTest, LookupOutOfRange) {
  StrandIndex index;
  index.Append(Block(1));
  EXPECT_EQ(index.Lookup(-1).status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(index.Lookup(1).status().code(), ErrorCode::kOutOfRange);
}

TEST(StrandIndexTest, StructuralCountsFollowFanout) {
  StrandIndex index(IndexFanout{4, 2});
  EXPECT_EQ(index.primary_block_count(), 0);
  EXPECT_EQ(index.secondary_block_count(), 0);
  for (int i = 0; i < 9; ++i) {  // 9 entries: 3 PBs of <=4, 2 SBs of <=2
    index.Append(Block(i * 10));
  }
  EXPECT_EQ(index.primary_block_count(), 3);
  EXPECT_EQ(index.secondary_block_count(), 2);
  EXPECT_EQ(StrandIndex::kColdLookupHops, 3);
}

TEST(StrandIndexTest, DefaultFanoutScalesToLargeStrands) {
  StrandIndex index;
  // One hour of 30 fps video at 4 frames/block = 27000 blocks.
  for (int i = 0; i < 27000; ++i) {
    index.Append(Block(i));
  }
  // 27000 / 256 = 106 PBs; 106 / 128 = 1 SB.
  EXPECT_EQ(index.primary_block_count(), 106);
  EXPECT_EQ(index.secondary_block_count(), 1);
}

TEST(StrandIndexTest, PrimaryBlockSerializationRoundTrip) {
  StrandIndex index(IndexFanout{4, 2});
  index.Append(Block(100, 8));
  index.Append(Silence());
  index.Append(Block(300, 8));
  index.Append(Block(400, 8));
  index.Append(Block(500, 8));  // second PB

  std::vector<std::vector<uint8_t>> blobs;
  for (int64_t pb = 0; pb < index.primary_block_count(); ++pb) {
    blobs.push_back(index.SerializePrimaryBlock(pb));
  }
  EXPECT_EQ(blobs[0].size(), 4u * 16);
  EXPECT_EQ(blobs[1].size(), 1u * 16);

  Result<StrandIndex> rebuilt = StrandIndex::FromSerializedPrimaries(IndexFanout{4, 2}, blobs);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->block_count(), 5);
  EXPECT_EQ(rebuilt->silence_block_count(), 1);
  for (int64_t b = 0; b < 5; ++b) {
    EXPECT_EQ(*rebuilt->Lookup(b), *index.Lookup(b)) << "block " << b;
  }
}

TEST(StrandIndexTest, CorruptPrimaryRejected) {
  EXPECT_FALSE(
      StrandIndex::FromSerializedPrimaries(IndexFanout{}, {{1, 2, 3}}).ok());  // not 16B multiple
  // Negative sector with nonzero count.
  std::vector<uint8_t> bad(16, 0xff);
  bad[8] = 0x02;  // sector_count mangled vs silence rules
  EXPECT_FALSE(StrandIndex::FromSerializedPrimaries(IndexFanout{}, {bad}).ok());
}

TEST(StrandIndexTest, SecondaryBlockRecordsPbPlacement) {
  StrandIndex index(IndexFanout{2, 2});
  for (int i = 0; i < 5; ++i) {
    index.Append(Block(1000 + i));
  }
  // 3 PBs; pretend they were placed at sectors 7, 9, 11 (1 sector each).
  std::vector<std::pair<int64_t, int64_t>> pb_extents = {{7, 1}, {9, 1}, {11, 1}};
  const std::vector<uint8_t> sb0 = index.SerializeSecondaryBlock(0, pb_extents);
  const std::vector<uint8_t> sb1 = index.SerializeSecondaryBlock(1, pb_extents);
  EXPECT_EQ(sb0.size(), 2u * 32);  // two PB entries of 4 int64 fields
  EXPECT_EQ(sb1.size(), 1u * 32);
  // First SB entry: startBlock 0, blockCount 2, sector 7, sectorCount 1.
  auto get_i64 = [](const std::vector<uint8_t>& blob, size_t offset) {
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(blob[offset + static_cast<size_t>(i)]) << (8 * i);
    }
    return static_cast<int64_t>(value);
  };
  EXPECT_EQ(get_i64(sb0, 0), 0);
  EXPECT_EQ(get_i64(sb0, 8), 2);
  EXPECT_EQ(get_i64(sb0, 16), 7);
  EXPECT_EQ(get_i64(sb0, 24), 1);
  // Second PB entry starts at block 2.
  EXPECT_EQ(get_i64(sb0, 32), 2);
  // Third PB (in SB 1) starts at block 4 and has the tail single block.
  EXPECT_EQ(get_i64(sb1, 0), 4);
  EXPECT_EQ(get_i64(sb1, 8), 1);
}

TEST(StrandIndexTest, HeaderBlockLayout) {
  StrandIndex index(IndexFanout{2, 1});
  for (int i = 0; i < 3; ++i) {
    index.Append(Block(i));
  }
  StrandIndex::HeaderMeta meta;
  meta.id = 7;
  meta.medium = 0;
  meta.recording_rate = 30.0;
  meta.granularity = 4;
  meta.bits_per_unit = 100;
  meta.unit_count = 12;
  meta.max_scattering_sec = 0.25;
  // 2 PBs -> 2 SBs with fanout 1.
  const std::vector<uint8_t> header = index.SerializeHeaderBlock(meta, {{100, 1}, {200, 1}});
  // magic + crc + len + 8 meta fields + secondaryCount (8 each) + 2 * 16.
  EXPECT_EQ(header.size(), 96u + 32);

  // The magic is the literal byte signature the scavenger scans for.
  EXPECT_EQ(std::string(header.begin(), header.begin() + 8), "VAFSHB02");

  // Round-trips, even with sector padding appended.
  std::vector<uint8_t> padded = header;
  padded.resize(512, 0);
  auto parsed = StrandIndex::ParseHeaderBlock(padded);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->meta.id, 7);
  EXPECT_EQ(parsed->meta.recording_rate, 30.0);
  EXPECT_EQ(parsed->meta.unit_count, 12);
  EXPECT_EQ(parsed->meta.max_scattering_sec, 0.25);
  ASSERT_EQ(parsed->sb_extents.size(), 2u);
  EXPECT_EQ(parsed->sb_extents[0].first, 100);

  // One flipped payload bit must fail the checksum.
  padded[40] ^= 0x01;
  EXPECT_FALSE(StrandIndex::ParseHeaderBlock(padded).ok());
}

}  // namespace
}  // namespace vafs
