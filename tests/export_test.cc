#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

namespace vafs {
namespace obs {
namespace {

TraceEvent Event(TraceEventKind kind, SimTime time) {
  TraceEvent event;
  event.kind = kind;
  event.time = time;
  return event;
}

// A small but representative trace: one round servicing two requests, with
// a disk transfer and a completion.
std::vector<TraceEvent> SampleTrace() {
  std::vector<TraceEvent> events;

  TraceEvent submit = Event(TraceEventKind::kSubmitAccepted, 100);
  submit.request = 1;
  events.push_back(submit);
  submit.request = 2;
  events.push_back(submit);

  TraceEvent round_start = Event(TraceEventKind::kRoundStart, 1000);
  round_start.round = 0;
  round_start.k = 2;
  events.push_back(round_start);

  TraceEvent read = Event(TraceEventKind::kDiskRead, 2000);
  read.request = 1;
  read.sector = 640;
  read.blocks = 8;  // sectors
  read.seek_cylinders = 17;
  read.duration = 950;
  events.push_back(read);

  TraceEvent serviced = Event(TraceEventKind::kRequestServiced, 2400);
  serviced.request = 1;
  serviced.blocks = 2;
  serviced.k = 2;
  serviced.block_playback = 1000;
  serviced.round_budget = 2000;
  serviced.duration = 900;
  events.push_back(serviced);
  serviced.request = 2;
  serviced.time = 2450;
  events.push_back(serviced);

  TraceEvent round_end = Event(TraceEventKind::kRoundEnd, 2500);
  round_end.round = 0;
  round_end.k = 2;
  round_end.blocks = 4;
  round_end.duration = 1500;
  round_end.round_budget = 2000;
  events.push_back(round_end);

  TraceEvent completed = Event(TraceEventKind::kCompleted, 2600);
  completed.request = 1;
  events.push_back(completed);
  return events;
}

// Events matching a (ph, pid, tid) triple, optionally filtered by name.
std::vector<const JsonValue*> Select(const JsonValue& trace, const std::string& ph, double pid,
                                     double tid, const std::string& name = "") {
  std::vector<const JsonValue*> matches;
  const JsonValue* events = trace.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return matches;
  }
  for (const JsonValue& event : events->array) {
    if (event.StringOr("ph", "") != ph || event.NumberOr("pid", -1) != pid ||
        event.NumberOr("tid", -1) != tid) {
      continue;
    }
    if (!name.empty() && event.StringOr("name", "") != name) {
      continue;
    }
    matches.push_back(&event);
  }
  return matches;
}

TEST(PerfettoExporterTest, EmitsValidJsonWithExpectedEnvelope) {
  const std::vector<TraceEvent> events = SampleTrace();
  const PerfettoExporter exporter(&events);
  EXPECT_STREQ(exporter.Format(), "perfetto");
  EXPECT_STREQ(exporter.FileExtension(), ".perfetto.json");

  Result<JsonValue> parsed = JsonValue::Parse(exporter.Export());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->StringOr("displayTimeUnit", ""), "ms");
  const JsonValue* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  EXPECT_FALSE(trace_events->array.empty());
}

TEST(PerfettoExporterTest, NamesProcessesAndOneTrackPerRequest) {
  const std::vector<TraceEvent> events = SampleTrace();
  Result<JsonValue> parsed = JsonValue::Parse(PerfettoExporter(&events).Export());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const JsonValue* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());

  // Process naming metadata for scheduler / disk / persistence.
  std::vector<std::string> processes;
  for (const JsonValue& event : trace_events->array) {
    if (event.StringOr("ph", "") == "M" && event.StringOr("name", "") == "process_name") {
      const JsonValue* arguments = event.Find("args");
      ASSERT_NE(arguments, nullptr);
      processes.push_back(arguments->StringOr("name", ""));
    }
  }
  EXPECT_EQ(processes,
            (std::vector<std::string>{"vafs scheduler", "vafs disk", "vafs persistence"}));

  // Exactly one named thread per distinct request id, on the scheduler pid.
  std::vector<std::string> request_threads;
  for (const JsonValue& event : trace_events->array) {
    if (event.StringOr("ph", "") == "M" && event.StringOr("name", "") == "thread_name" &&
        event.NumberOr("pid", -1) == 1 && event.NumberOr("tid", -1) >= 1) {
      const JsonValue* arguments = event.Find("args");
      ASSERT_NE(arguments, nullptr);
      request_threads.push_back(arguments->StringOr("name", ""));
    }
  }
  EXPECT_EQ(request_threads, (std::vector<std::string>{"request 1", "request 2"}));

  // Each request's service window lands on its own track as a complete
  // slice whose ts is completion minus duration.
  for (double request : {1.0, 2.0}) {
    const auto slices = Select(*parsed, "X", 1, request, "service");
    ASSERT_EQ(slices.size(), 1u) << "request " << request;
    EXPECT_EQ(slices[0]->NumberOr("dur", 0), 900.0);
    const JsonValue* arguments = slices[0]->Find("args");
    ASSERT_NE(arguments, nullptr);
    EXPECT_EQ(arguments->NumberOr("blocks", 0), 2.0);
    EXPECT_EQ(arguments->NumberOr("budget_usec", 0), 2000.0);
  }
  const auto service_one = Select(*parsed, "X", 1, 1, "service");
  EXPECT_EQ(service_one[0]->NumberOr("ts", 0), 2400.0 - 900.0);
}

TEST(PerfettoExporterTest, RoundAndDiskSlicesCarryBudgetAndGeometryArgs) {
  const std::vector<TraceEvent> events = SampleTrace();
  Result<JsonValue> parsed = JsonValue::Parse(PerfettoExporter(&events).Export());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // The round slice sits on the scheduler's rounds track (tid 0) and its
  // args expose the Eq. 11 budget and realized slack.
  const auto rounds = Select(*parsed, "X", 1, 0, "round 0");
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0]->NumberOr("ts", 0), 2500.0 - 1500.0);
  EXPECT_EQ(rounds[0]->NumberOr("dur", 0), 1500.0);
  const JsonValue* round_args = rounds[0]->Find("args");
  ASSERT_NE(round_args, nullptr);
  EXPECT_EQ(round_args->NumberOr("budget_usec", 0), 2000.0);
  EXPECT_EQ(round_args->NumberOr("slack_usec", -1), 500.0);

  // The disk transfer is a slice on the device track with geometry args.
  const auto reads = Select(*parsed, "X", 2, 1, "disk_read");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0]->NumberOr("dur", 0), 950.0);
  const JsonValue* read_args = reads[0]->Find("args");
  ASSERT_NE(read_args, nullptr);
  EXPECT_EQ(read_args->NumberOr("sector", 0), 640.0);
  EXPECT_EQ(read_args->NumberOr("sectors", 0), 8.0);
  EXPECT_EQ(read_args->NumberOr("seek_cylinders", 0), 17.0);

  // Lifecycle events render as thread-scoped instants.
  const auto completions = Select(*parsed, "i", 1, 1, "completed");
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0]->StringOr("s", ""), "t");
}

TEST(PrometheusExporterTest, MetricNameSanitizes) {
  EXPECT_EQ(PrometheusExporter::MetricName("disk.read_service_usec"),
            "vafs_disk_read_service_usec");
  EXPECT_EQ(PrometheusExporter::MetricName("weird-name.x/y"), "vafs_weird_name_x_y");
}

// Minimal exposition-format parser used to round-trip the export: maps
// "name value" and "name{le=\"edge\"} value" lines, and records TYPE lines.
struct Exposition {
  std::map<std::string, std::string> types;          // metric -> counter/gauge/histogram
  std::map<std::string, double> samples;             // plain samples
  std::map<std::string, std::vector<std::pair<std::string, double>>> buckets;

  static Exposition Parse(const std::string& text) {
    Exposition parsed;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) {
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream fields(line.substr(7));
        std::string metric, type;
        fields >> metric >> type;
        parsed.types[metric] = type;
        continue;
      }
      EXPECT_NE(line[0], '#') << "unexpected comment: " << line;
      const size_t space = line.rfind(' ');
      if (space == std::string::npos) {
        ADD_FAILURE() << "malformed sample line: " << line;
        continue;
      }
      const std::string key = line.substr(0, space);
      const double value = std::stod(line.substr(space + 1));
      const size_t brace = key.find('{');
      if (brace == std::string::npos) {
        parsed.samples[key] = value;
        continue;
      }
      // Only the le label is ever emitted.
      const std::string metric = key.substr(0, brace);
      const std::string label = key.substr(brace, key.size() - brace);
      if (label.rfind("{le=\"", 0) != 0) {
        ADD_FAILURE() << "unexpected label set: " << line;
        continue;
      }
      const std::string edge = label.substr(5, label.size() - 7);
      parsed.buckets[metric].emplace_back(edge, value);
    }
    return parsed;
  }
};

TEST(PrometheusExporterTest, ExpositionRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.counter("scheduler.rounds").Increment(42);
  registry.gauge("scheduler.current_k").Set(3.5);
  Histogram& histogram = registry.histogram("disk.read_service_usec");
  histogram.Record(1.0);    // bucket 0 (<= 1)
  histogram.Record(3.0);    // bucket 2 (2, 4]
  histogram.Record(100.0);  // bucket 7 (64, 128]

  const PrometheusExporter exporter(&registry);
  EXPECT_STREQ(exporter.FileExtension(), ".prom");
  const std::string text = exporter.Export();
  Exposition parsed = Exposition::Parse(text);

  EXPECT_EQ(parsed.types["vafs_scheduler_rounds"], "counter");
  EXPECT_EQ(parsed.types["vafs_scheduler_current_k"], "gauge");
  EXPECT_EQ(parsed.types["vafs_disk_read_service_usec"], "histogram");
  EXPECT_EQ(parsed.samples["vafs_scheduler_rounds"], 42.0);
  EXPECT_EQ(parsed.samples["vafs_scheduler_current_k"], 3.5);
  EXPECT_EQ(parsed.samples["vafs_disk_read_service_usec_sum"], 104.0);
  EXPECT_EQ(parsed.samples["vafs_disk_read_service_usec_count"], 3.0);

  // Buckets are cumulative, non-decreasing, cover every occupied power-of-
  // two edge, and end at +Inf == _count.
  const auto& buckets = parsed.buckets["vafs_disk_read_service_usec_bucket"];
  ASSERT_EQ(buckets.size(), 9u);  // le = 1..128 plus +Inf
  EXPECT_EQ(buckets.front().first, "1");
  EXPECT_EQ(buckets.front().second, 1.0);
  double previous = 0.0;
  for (const auto& [edge, cumulative] : buckets) {
    EXPECT_GE(cumulative, previous) << "le=" << edge;
    previous = cumulative;
  }
  EXPECT_EQ(buckets.back().first, "+Inf");
  EXPECT_EQ(buckets.back().second, 3.0);
  EXPECT_EQ(buckets[7].first, "128");
  EXPECT_EQ(buckets[7].second, 3.0);
}

TEST(JsonSnapshotExporterTest, BundlesMetricsSloAndTraceHealth) {
  MetricsRegistry registry;
  registry.counter("scheduler.rounds").Increment(7);

  TraceLog log(4);
  SloTracker slo;
  for (int i = 0; i < 6; ++i) {
    TraceEvent event = Event(TraceEventKind::kRoundStart, i * 100);
    event.round = i;
    log.OnEvent(event);
    slo.OnEvent(event);
  }

  const JsonSnapshotExporter exporter(&registry, &slo, &log);
  EXPECT_STREQ(exporter.FileExtension(), ".snapshot.json");
  Result<JsonValue> parsed = JsonValue::Parse(exporter.Export());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->NumberOr("version", 0), 1.0);
  EXPECT_EQ(parsed->StringOr("kind", ""), "vafs.telemetry.snapshot");
  const JsonValue* trace = parsed->Find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is_object());
  EXPECT_EQ(trace->NumberOr("events_retained", 0),
            static_cast<double>(log.events().size()));
  EXPECT_EQ(trace->NumberOr("events_dropped", -1), static_cast<double>(log.dropped()));
  EXPECT_GT(log.dropped(), 0);
  const JsonValue* slo_json = parsed->Find("slo");
  ASSERT_NE(slo_json, nullptr);
  EXPECT_EQ(slo_json->StringOr("kind", ""), "vafs.slo.report");
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->NumberOr("scheduler.rounds", 0), 7.0);
}

TEST(JsonSnapshotExporterTest, OmittedSourcesSerializeAsNull) {
  MetricsRegistry registry;
  Result<JsonValue> parsed = JsonValue::Parse(JsonSnapshotExporter(&registry).Export());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* trace = parsed->Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->type, JsonValue::Type::kNull);
  const JsonValue* slo = parsed->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->type, JsonValue::Type::kNull);
}

TEST(WriteExportTest, WritesBodyWithTrailingNewline) {
  MetricsRegistry registry;
  registry.counter("a").Increment(1);
  const PrometheusExporter exporter(&registry);
  const std::string path = ::testing::TempDir() + "vafs_export_test.prom";
  ASSERT_TRUE(WriteExport(exporter, path).ok());
  std::ifstream in(path);
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), exporter.Export() + "\n");
  std::remove(path.c_str());
}

TEST(WriteExportTest, ReportsUnwritablePath) {
  MetricsRegistry registry;
  const PrometheusExporter exporter(&registry);
  const Status status = WriteExport(exporter, "/nonexistent-dir/out.prom");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace obs
}  // namespace vafs
