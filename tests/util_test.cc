#include <gtest/gtest.h>

#include <set>

#include "src/util/prng.h"
#include "src/util/result.h"
#include "src/util/time.h"
#include "src/util/units.h"

namespace vafs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status(ErrorCode::kNoSpace, "disk full");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNoSpace);
  EXPECT_EQ(status.message(), "disk full");
  EXPECT_EQ(status.ToString(), "NO_SPACE: disk full");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kPermissionDenied, ErrorCode::kAdmissionRejected, ErrorCode::kNoSpace,
        ErrorCode::kFailedPrecondition, ErrorCode::kAlreadyExists, ErrorCode::kOutOfRange,
        ErrorCode::kInternal}) {
    EXPECT_STRNE(ErrorCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

TEST(TimeTest, SecondsToUsecRoundsUp) {
  EXPECT_EQ(SecondsToUsec(1.0), 1'000'000);
  EXPECT_EQ(SecondsToUsec(0.0000015), 2);  // rounds up, never early
  EXPECT_EQ(SecondsToUsec(0.0), 0);
}

TEST(TimeTest, RoundTrip) {
  EXPECT_DOUBLE_EQ(UsecToSeconds(SecondsToUsec(2.5)), 2.5);
  EXPECT_EQ(MillisToUsec(3.0), 3000);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(KiB(4), 4096);
  EXPECT_EQ(MiB(1), 1048576);
  EXPECT_EQ(BytesToBits(512), 4096);
  EXPECT_EQ(BitsToBytesCeil(9), 2);
  EXPECT_EQ(BitsToBytesCeil(8), 1);
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
}

TEST(PrngTest, DeterministicForSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, RangesRespected) {
  Prng prng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t value = prng.NextInRange(-5, 5);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 5);
    const double d = prng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, CoversRange) {
  Prng prng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(prng.NextInRange(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace vafs
