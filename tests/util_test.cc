#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "src/util/checksum.h"
#include "src/util/prng.h"
#include "src/util/result.h"
#include "src/util/time.h"
#include "src/util/units.h"
#include "src/util/worker_pool.h"

namespace vafs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status(ErrorCode::kNoSpace, "disk full");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNoSpace);
  EXPECT_EQ(status.message(), "disk full");
  EXPECT_EQ(status.ToString(), "NO_SPACE: disk full");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kPermissionDenied, ErrorCode::kAdmissionRejected, ErrorCode::kNoSpace,
        ErrorCode::kFailedPrecondition, ErrorCode::kAlreadyExists, ErrorCode::kOutOfRange,
        ErrorCode::kInternal}) {
    EXPECT_STRNE(ErrorCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

TEST(TimeTest, SecondsToUsecRoundsUp) {
  EXPECT_EQ(SecondsToUsec(1.0), 1'000'000);
  EXPECT_EQ(SecondsToUsec(0.0000015), 2);  // rounds up, never early
  EXPECT_EQ(SecondsToUsec(0.0), 0);
}

TEST(TimeTest, RoundTrip) {
  EXPECT_DOUBLE_EQ(UsecToSeconds(SecondsToUsec(2.5)), 2.5);
  EXPECT_EQ(MillisToUsec(3.0), 3000);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(KiB(4), 4096);
  EXPECT_EQ(MiB(1), 1048576);
  EXPECT_EQ(BytesToBits(512), 4096);
  EXPECT_EQ(BitsToBytesCeil(9), 2);
  EXPECT_EQ(BitsToBytesCeil(8), 1);
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
}

TEST(PrngTest, DeterministicForSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, RangesRespected) {
  Prng prng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t value = prng.NextInRange(-5, 5);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 5);
    const double d = prng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, CoversRange) {
  Prng prng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(prng.NextInRange(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(PrngTest, NextBelowIsUniformChiSquared) {
  // Pearson chi-squared over 10 cells, 9 degrees of freedom. The 0.999
  // quantile is 27.88; a correct generator fails each seed with p < 0.001,
  // and the old `Next() % bound` bias would not trip this for small
  // bounds, so the large-bound test below is the sharp one.
  for (uint64_t seed : {11ULL, 222ULL, 3333ULL}) {
    Prng prng(seed);
    constexpr int kCells = 10;
    constexpr int kDraws = 100'000;
    int64_t observed[kCells] = {};
    for (int i = 0; i < kDraws; ++i) {
      ++observed[prng.NextBelow(kCells)];
    }
    const double expected = static_cast<double>(kDraws) / kCells;
    double chi2 = 0.0;
    for (int64_t count : observed) {
      const double diff = static_cast<double>(count) - expected;
      chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 27.88) << "seed " << seed;
  }
}

TEST(PrngTest, NextBelowUnbiasedForHugeBound) {
  // bound = 3 * 2^62: under modulo reduction, residues below
  // 2^64 - bound = 2^62 are hit twice as often, putting HALF of all draws
  // below 2^62 instead of the uniform third. Lemire rejection must keep
  // the observed fraction at ~1/3.
  const uint64_t bound = 3ULL << 62;
  const uint64_t cutoff = 1ULL << 62;
  Prng prng(424242);
  constexpr int kDraws = 30'000;
  int below = 0;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t value = prng.NextBelow(bound);
    ASSERT_LT(value, bound);
    if (value < cutoff) {
      ++below;
    }
  }
  const double fraction = static_cast<double>(below) / kDraws;
  EXPECT_NEAR(fraction, 1.0 / 3.0, 0.02);  // biased reduction gives 0.5
}

TEST(PrngTest, NextInRangeFullDomainDoesNotOverflow) {
  // hi - lo + 1 wraps to 0 over the full int64 domain; the draw must not
  // trip signed-overflow UB and should produce both signs.
  Prng prng(5);
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 200; ++i) {
    const int64_t value =
        prng.NextInRange(std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max());
    saw_negative = saw_negative || value < 0;
    saw_positive = saw_positive || value > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
  // Degenerate single-point intervals at the extremes.
  EXPECT_EQ(prng.NextInRange(std::numeric_limits<int64_t>::min(),
                             std::numeric_limits<int64_t>::min()),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(prng.NextInRange(std::numeric_limits<int64_t>::max(),
                             std::numeric_limits<int64_t>::max()),
            std::numeric_limits<int64_t>::max());
}

TEST(PrngTest, NextInRangeCrossingZeroStaysInBounds) {
  Prng prng(77);
  for (int i = 0; i < 2000; ++i) {
    const int64_t value = prng.NextInRange(-1'000'000'000'000, 1'000'000'000'000);
    EXPECT_GE(value, -1'000'000'000'000);
    EXPECT_LE(value, 1'000'000'000'000);
  }
}

TEST(ChecksumTest, CombineMatchesConcatenation) {
  Prng prng(31337);
  std::vector<uint8_t> a(1021);
  std::vector<uint8_t> b(4099);
  for (auto& byte : a) byte = static_cast<uint8_t>(prng.Next());
  for (auto& byte : b) byte = static_cast<uint8_t>(prng.Next());
  std::vector<uint8_t> joined = a;
  joined.insert(joined.end(), b.begin(), b.end());
  EXPECT_EQ(Crc64Combine(Crc64(a), Crc64(b), b.size()), Crc64(joined));
  // Zero-length tail is the identity.
  EXPECT_EQ(Crc64Combine(Crc64(a), 0, 0), Crc64(a));
}

TEST(ChecksumTest, ParallelCrcMatchesSerial) {
  Prng prng(60065);
  std::vector<uint8_t> data(300 * 1024);
  for (auto& byte : data) byte = static_cast<uint8_t>(prng.Next());
  const uint64_t serial = Crc64(data);
  EXPECT_EQ(Crc64Parallel(data, nullptr), serial);
  WorkerPool solo(1);
  EXPECT_EQ(Crc64Parallel(data, &solo), serial);
  WorkerPool pool(4);
  EXPECT_EQ(Crc64Parallel(data, &pool), serial);
  // Small inputs take the serial path but must agree too.
  const std::vector<uint8_t> small(100, 0xAB);
  EXPECT_EQ(Crc64Parallel(small, &pool), Crc64(small));
}

TEST(WorkerPoolTest, RunAllExecutesEveryTaskAndJoins) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::atomic<int> done{0};
  std::vector<WorkerPool::Task> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.RunAll(std::move(tasks));
  // RunAll is a barrier: every task observed complete at return.
  EXPECT_EQ(done.load(), 100);
}

TEST(WorkerPoolTest, SingleWorkerRunsInline) {
  WorkerPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.RunAll({[&ran_on] { ran_on = std::this_thread::get_id(); }});
  EXPECT_EQ(ran_on, caller);
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  pool.Drain();
  EXPECT_EQ(ran_on, caller);
}

TEST(WorkerPoolTest, SubmitAndDrainCompleteBackgroundWork) {
  WorkerPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 50);
}

TEST(WorkerPoolTest, WorkersFromEnvClampsAndDefaults) {
  ASSERT_EQ(unsetenv("VAFS_WORKERS"), 0);
  EXPECT_EQ(WorkerPool::WorkersFromEnv(), 1);
  ASSERT_EQ(setenv("VAFS_WORKERS", "8", 1), 0);
  EXPECT_EQ(WorkerPool::WorkersFromEnv(), 8);
  ASSERT_EQ(setenv("VAFS_WORKERS", "0", 1), 0);
  EXPECT_EQ(WorkerPool::WorkersFromEnv(), 1);
  ASSERT_EQ(setenv("VAFS_WORKERS", "1000", 1), 0);
  EXPECT_EQ(WorkerPool::WorkersFromEnv(), 64);
  ASSERT_EQ(setenv("VAFS_WORKERS", "nonsense", 1), 0);
  EXPECT_EQ(WorkerPool::WorkersFromEnv(), 1);
  ASSERT_EQ(unsetenv("VAFS_WORKERS"), 0);
}

}  // namespace
}  // namespace vafs
