// Failure injection and boundary conditions across module seams.

#include <gtest/gtest.h>

#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/vafs/file_system.h"
#include "src/util/prng.h"
#include "src/vafs/persistence.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

TEST(DiskFullTest, RecordingFailsCleanlyAndLeaksNothing) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);
  // Leave only a sliver of space.
  const int64_t total = store.allocator().total_sectors();
  ASSERT_TRUE(store.allocator().AllocateExact(Extent{0, total - 64}).ok());
  const int64_t free_before = store.allocator().free_sectors();

  VideoSource source(TestVideo(), 1);
  Result<RecordingResult> result =
      RecordVideo(&store, &source, StrandPlacement{4, 0.0, 1.0}, 60.0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNoSpace);
  // The aborted writer returned every sector it had taken.
  EXPECT_EQ(store.allocator().free_sectors(), free_before);
  EXPECT_EQ(store.strand_count(), 0);
}

TEST(DiskFullTest, FacadeRecordPropagatesNoSpace) {
  FileSystemConfig config = TestConfig();
  MultimediaFileSystem fs(config);
  const int64_t total = fs.storage_manager().allocator().total_sectors();
  ASSERT_TRUE(fs.storage_manager().allocator().AllocateExact(Extent{0, total - 8}).ok());
  VideoSource video(TestVideo(), 1);
  Result<MultimediaFileSystem::RecordResult> result = fs.Record("alice", &video, nullptr, 10.0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNoSpace);
}

TEST(CaptureOverflowTest, SlowDiskOverflowsSmallCaptureBuffers) {
  // A recording whose bit rate is close to the disk's, with competing
  // playback traffic: writes fall behind capture and the bounded device
  // buffer pool overflows — detected, not hidden.
  Disk disk(TestDiskParameters(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  // Heavy video: 7 Mbit/s against the ~8.6 Mbit/s disk.
  const MediaProfile heavy{Medium::kVideo, 30.0, 233'000};
  ContinuityModel model(TestStorage(), DeviceProfile{heavy.BitRate() * 4, 8});
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, heavy);
  ASSERT_TRUE(placement.ok());

  // A competing playback stream to steal disk time.
  VideoSource source(TestVideo(), 1);
  ContinuityModel light_model(TestStorage(), TestVideoDevice());
  const StrandPlacement light_placement =
      *light_model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  RecordingResult light = *RecordVideo(&store, &source, light_placement, 5.0);
  const Strand* light_strand = *store.Get(light.strand);

  Simulator sim;
  AdmissionControl admission(TestStorage(), std::max(store.AverageScatteringSec(), 1e-4));
  SchedulerOptions options;
  options.bypass_admission = true;  // force the overload
  options.forced_k = 4;
  ServiceScheduler scheduler(&store, &sim, admission, options);

  PlaybackRequest playback;
  for (int64_t b = 0; b < light_strand->block_count(); ++b) {
    playback.blocks.push_back(*light_strand->index().Lookup(b));
  }
  playback.block_duration = light_strand->info().BlockDuration();
  playback.spec = RequestSpec{TestVideo(), light_placement.granularity};
  ASSERT_TRUE(scheduler.SubmitPlayback(std::move(playback)).ok());

  RecordingRequest recording;
  recording.profile = heavy;
  recording.placement = *placement;
  recording.total_blocks = 40;  // ~9 MB on the small test disk
  recording.capture_buffers = 2;  // tiny pool
  Result<RequestId> record_id = scheduler.SubmitRecording(recording);
  ASSERT_TRUE(record_id.ok());
  scheduler.RunUntilIdle();

  Result<RequestStats> stats = scheduler.stats(*record_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_GT(stats->capture_overflows, 0);

  // The same recording with ample buffers absorbs the contention.
  RecordingRequest roomy = recording;
  roomy.capture_buffers = 64;
  Result<RequestId> roomy_id = scheduler.SubmitRecording(roomy);
  ASSERT_TRUE(roomy_id.ok());
  scheduler.RunUntilIdle();
  EXPECT_LT(scheduler.stats(*roomy_id)->capture_overflows, stats->capture_overflows);
}

TEST(CorruptImageTest, GarbageRootSectorRejected) {
  Disk disk(TestDiskParameters());
  // Write noise over the root sector.
  std::vector<uint8_t> noise(512);
  for (size_t i = 0; i < noise.size(); ++i) {
    noise[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  ASSERT_TRUE(disk.Write(disk.total_sectors() - 1, 1, noise).ok());
  Result<LoadedImage> image = LoadImage(&disk);
  EXPECT_FALSE(image.ok());
}

TEST(CorruptImageTest, TruncatedCatalogRejected) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);
  RopeServer server(&store);
  VideoSource source(TestVideo(), 1);
  ContinuityModel model(TestStorage(), TestVideoDevice());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  RecordingResult recorded = *RecordVideo(&store, &source, placement, 1.0);
  (void)server.CreateRope("alice", recorded.strand, kNullStrand);
  Result<ImageReceipt> receipt = SaveImage(&store, &server, nullptr);
  ASSERT_TRUE(receipt.ok());

  // Zero the catalog body; the root still points at it.
  const std::vector<uint8_t> zeros(
      static_cast<size_t>(receipt->catalog_extent.sectors) * 512, 0);
  ASSERT_TRUE(disk.Write(receipt->catalog_extent.start_sector,
                         receipt->catalog_extent.sectors, zeros)
                  .ok());
  EXPECT_FALSE(LoadImage(&disk).ok());
}

TEST(CorruptImageTest, RandomCorruptionNeverCrashesRecovery) {
  // Flip random bytes in the saved image (root, catalog, or index blocks)
  // and require LoadImage to either fail cleanly or succeed; it must never
  // crash or read out of bounds (the ASan build checks the latter).
  Prng prng(4242);
  for (int trial = 0; trial < 12; ++trial) {
    Disk disk(TestDiskParameters());
    StrandStore store(&disk);
    RopeServer server(&store);
    VideoSource source(TestVideo(), static_cast<uint64_t>(trial) + 1);
    ContinuityModel model(TestStorage(), TestVideoDevice());
    const StrandPlacement placement =
        *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
    RecordingResult recorded = *RecordVideo(&store, &source, placement, 1.0);
    (void)server.CreateRope("alice", recorded.strand, kNullStrand);
    ASSERT_TRUE(SaveImage(&store, &server, nullptr).ok());

    // Corrupt a handful of random sectors near the end of the disk, where
    // the catalog and root live (plus whatever else is hit).
    for (int flips = 0; flips < 4; ++flips) {
      const int64_t sector =
          disk.total_sectors() - 1 - prng.NextInRange(0, 40);
      std::vector<uint8_t> data;
      ASSERT_TRUE(disk.Read(sector, 1, &data).ok());
      data[static_cast<size_t>(prng.NextBelow(data.size()))] ^=
          static_cast<uint8_t>(1 + prng.NextBelow(255));
      ASSERT_TRUE(disk.Write(sector, 1, data).ok());
    }
    Result<LoadedImage> image = LoadImage(&disk);
    // Either outcome is acceptable; crashing is not.
    if (image.ok()) {
      EXPECT_GE(image->strands_recovered, 0);
    }
  }
}

TEST(LinearSeekTest, CalibrationAndMonotonicity) {
  DiskParameters params = TestDiskParameters();
  params.seek_curve = SeekCurve::kLinear;
  DiskModel model(params);
  EXPECT_EQ(model.SeekTimeForDistance(0), 0);
  EXPECT_NEAR(model.SeekTimeForDistance(1), 2000, 1);
  EXPECT_NEAR(model.SeekTimeForDistance(params.cylinders - 1), 20000, 1);
  // Linear: the midpoint distance costs the midpoint time.
  const SimDuration mid = model.SeekTimeForDistance((params.cylinders - 1 + 1) / 2);
  EXPECT_NEAR(static_cast<double>(mid), (2000 + 20000) / 2.0, 60.0);
  // Additivity (the Eqs. 19-20 assumption): two half seeks ~ one full seek
  // up to one base cost.
  const SimDuration half = model.SeekTimeForDistance((params.cylinders - 1) / 2);
  const SimDuration full = model.SeekTimeForDistance(params.cylinders - 1);
  // 2*seek(d) - seek(2d) equals the base (settle) cost, which is one
  // coefficient below seek(1) by calibration.
  EXPECT_NEAR(static_cast<double>(2 * half - full),
              static_cast<double>(model.SeekTimeForDistance(1)), 250.0);
}

TEST(ZeroLengthOpsTest, EmptyIntervalsAreHarmless) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);
  RopeServer server(&store);
  VideoSource source(TestVideo(), 1);
  ContinuityModel model(TestStorage(), TestVideoDevice());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  RecordingResult recorded = *RecordVideo(&store, &source, placement, 2.0);
  Result<RopeId> rope = server.CreateRope("alice", recorded.strand, kNullStrand);
  ASSERT_TRUE(rope.ok());

  const double length_before = (*server.Find(*rope))->LengthSec();
  EXPECT_TRUE(server
                  .Delete("alice", *rope, MediaSelector::kAudioVisual,
                          TimeInterval{1.0, 0.0})
                  .ok());
  EXPECT_DOUBLE_EQ((*server.Find(*rope))->LengthSec(), length_before);

  Result<std::vector<PrimaryEntry>> blocks =
      server.ResolveBlocks("alice", *rope, Medium::kVideo, TimeInterval{1.0, 0.0});
  ASSERT_TRUE(blocks.ok());
  EXPECT_TRUE(blocks->empty());

  Result<RopeId> empty_sub =
      server.Substring("alice", *rope, MediaSelector::kAudioVisual, TimeInterval{1.0, 0.0});
  ASSERT_TRUE(empty_sub.ok());
  EXPECT_DOUBLE_EQ((*server.Find(*empty_sub))->LengthSec(), 0.0);
}

TEST(SchedulerEdgeTest, StopDuringTransitionIsSafe) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);
  VideoSource source(TestVideo(), 1);
  ContinuityModel model(TestStorage(), TestVideoDevice());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  RecordingResult recorded = *RecordVideo(&store, &source, placement, 5.0);
  const Strand* strand = *store.Get(recorded.strand);

  Simulator sim;
  AdmissionControl admission(TestStorage(), std::max(store.AverageScatteringSec(), 1e-4));
  ServiceScheduler scheduler(&store, &sim, admission);
  auto make_request = [&] {
    PlaybackRequest request;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      request.blocks.push_back(*strand->index().Lookup(b));
    }
    request.block_duration = strand->info().BlockDuration();
    request.spec = RequestSpec{TestVideo(), placement.granularity};
    return request;
  };
  Result<RequestId> first = scheduler.SubmitPlayback(make_request());
  ASSERT_TRUE(first.ok());
  Result<RequestId> second = scheduler.SubmitPlayback(make_request());
  ASSERT_TRUE(second.ok());
  // Stop the second request while it is still pending admission.
  ASSERT_TRUE(scheduler.Stop(*second).ok());
  scheduler.RunUntilIdle();
  EXPECT_TRUE(scheduler.stats(*first)->completed);
  EXPECT_TRUE(scheduler.stats(*second)->completed);
  EXPECT_EQ(scheduler.stats(*second)->blocks_done, 0);
}

TEST(SchedulerEdgeTest, StopRecordingKeepsPartialStrand) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);
  Simulator sim;
  AdmissionControl admission(TestStorage(), 1e-3);
  ServiceScheduler scheduler(&store, &sim, admission);
  RecordingRequest recording;
  recording.profile = TestVideo();
  recording.placement = StrandPlacement{4, 0.0, 0.05};
  recording.total_blocks = 100;
  Result<RequestId> id = scheduler.SubmitRecording(recording);
  ASSERT_TRUE(id.ok());
  sim.RunUntil(SecondsToUsec(3.0));  // ~22 blocks captured
  ASSERT_TRUE(scheduler.Stop(*id).ok());
  scheduler.RunUntilIdle();
  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->blocks_done, 0);
  EXPECT_LT(stats->blocks_done, 100);
  ASSERT_NE(stats->recorded_strand, kNullStrand);
  Result<const Strand*> strand = store.Get(stats->recorded_strand);
  ASSERT_TRUE(strand.ok());
  EXPECT_EQ((*strand)->block_count(), stats->blocks_done);
}

}  // namespace
}  // namespace vafs
