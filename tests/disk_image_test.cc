// mmap'd disk-image backing store: round-trip, crash, and fallback tests.
//
// With FileSystemConfig::disk_image_path set, sector payloads live in a
// file-backed mmap instead of the in-memory sparse store. The contract:
//
//   - a second mount of the same image file sees exactly the sectors the
//     first mount persisted (the durable prefix of a power-cut write
//     included), so Recover() on a fresh instance rebuilds the catalog
//     and fsck finds a structurally sound volume;
//   - Checkpoint() msyncs the mapping, so a committed generation is on
//     stable storage, not just in the page cache;
//   - an unopenable image path degrades soft: the disk falls back to the
//     sparse store, records why, and the file system works normally.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/media/sources.h"
#include "src/vafs/file_system.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

// A unique image path under the test tmp dir; remove() before first use
// so reruns never inherit a stale image.
std::string ImagePath(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string path = (base != nullptr ? std::string(base) : std::string("/tmp"));
  path += "/vafs_disk_image_test_" + name + ".img";
  std::remove(path.c_str());
  return path;
}

FileSystemConfig ImageConfig(const std::string& path, bool truncate) {
  FileSystemConfig config = TestConfig();
  config.disk_image_path = path;
  config.disk_image_truncate = truncate;
  return config;
}

void RecordBase(MultimediaFileSystem* fs) {
  VideoSource video(TestVideo(), 7);
  AudioSource audio(TestAudio(), SpeechProfile{}, 7);
  Result<MultimediaFileSystem::RecordResult> rec = fs->Record("alice", &video, &audio, 1.0);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  Status wrote = fs->text_files().Write("config.txt", std::vector<uint8_t>{1, 2, 3, 4});
  ASSERT_TRUE(wrote.ok()) << wrote.ToString();
  Status checkpoint = fs->Checkpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.ToString();
}

void ExpectBaseReadable(MultimediaFileSystem* fs) {
  ASSERT_GE(fs->rope_server().rope_count(), 1);
  const Rope* alice = nullptr;
  for (const Rope* rope : fs->rope_server().AllRopes()) {
    if (rope->creator() == "alice") {
      alice = rope;
    }
  }
  ASSERT_NE(alice, nullptr);
  Result<std::vector<std::vector<uint8_t>>> blocks =
      fs->ReadRopeBlocks("alice", alice->id(), Medium::kVideo, TimeInterval{0.0, 1.0});
  ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();
  EXPECT_FALSE(blocks->empty());
  Result<std::vector<uint8_t>> text = fs->text_files().Read("config.txt");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text, (std::vector<uint8_t>{1, 2, 3, 4}));
}

void ExpectStructurallySound(MultimediaFileSystem* fs) {
  Result<FsckReport> report = fs->RunFsck();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const FsckFinding& finding : report->findings) {
    EXPECT_NE(finding.kind, FsckFindingKind::kLeakedExtent)
        << FsckFindingKindName(finding.kind) << ": " << finding.detail;
    EXPECT_NE(finding.kind, FsckFindingKind::kDoublyClaimedExtent)
        << FsckFindingKindName(finding.kind) << ": " << finding.detail;
    EXPECT_NE(finding.kind, FsckFindingKind::kUnreadableStrand)
        << FsckFindingKindName(finding.kind) << ": " << finding.detail;
  }
}

TEST(DiskImageTest, CheckpointedStateRemountsFromTheSameFile) {
  const std::string path = ImagePath("remount");
  {
    MultimediaFileSystem fs(ImageConfig(path, /*truncate=*/true));
    ASSERT_TRUE(fs.disk().image_backed()) << fs.disk().image_error();
    ASSERT_NO_FATAL_FAILURE(RecordBase(&fs));
    ASSERT_NO_FATAL_FAILURE(ExpectBaseReadable(&fs));
  }  // unmount: only the mmap'd file survives this scope

  MultimediaFileSystem fs(ImageConfig(path, /*truncate=*/false));
  ASSERT_TRUE(fs.disk().image_backed()) << fs.disk().image_error();
  Status recovered = fs.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  ASSERT_NO_FATAL_FAILURE(ExpectBaseReadable(&fs));
  ASSERT_NO_FATAL_FAILURE(ExpectStructurallySound(&fs));
  std::remove(path.c_str());
}

TEST(DiskImageTest, PowerCutLeavesARecoverableImageForTheNextMount) {
  const std::string path = ImagePath("powercut");
  {
    MultimediaFileSystem fs(ImageConfig(path, /*truncate=*/true));
    ASSERT_TRUE(fs.disk().image_backed()) << fs.disk().image_error();
    ASSERT_NO_FATAL_FAILURE(RecordBase(&fs));
    // Die partway through an uncommitted mutation: the image must hold the
    // checkpointed generation plus whatever durable prefix the cut allowed.
    fs.disk().fault_injector().ArmPowerCut(/*cut_after_sectors=*/5, /*torn=*/true);
    VideoSource video(TestVideo(), 8);
    (void)fs.Record("bob", &video, nullptr, 0.2);  // dies at the crash point
    ASSERT_TRUE(fs.disk().powered_off());
  }  // abandon the dead instance without any orderly shutdown

  MultimediaFileSystem fs(ImageConfig(path, /*truncate=*/false));
  ASSERT_TRUE(fs.disk().image_backed()) << fs.disk().image_error();
  Status recovered = fs.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  ASSERT_NO_FATAL_FAILURE(ExpectBaseReadable(&fs));
  ASSERT_NO_FATAL_FAILURE(ExpectStructurallySound(&fs));
  std::remove(path.c_str());
}

TEST(DiskImageTest, GeometryMismatchFallsBackToTheSparseStore) {
  const std::string path = ImagePath("geometry");
  {
    MultimediaFileSystem fs(ImageConfig(path, /*truncate=*/true));
    ASSERT_TRUE(fs.disk().image_backed()) << fs.disk().image_error();
    ASSERT_NO_FATAL_FAILURE(RecordBase(&fs));
  }
  // Same file, different drive: the header's geometry no longer matches,
  // so the open must refuse the mapping rather than corrupt it.
  FileSystemConfig config = ImageConfig(path, /*truncate=*/false);
  config.disk.cylinders *= 2;
  MultimediaFileSystem fs(config);
  EXPECT_FALSE(fs.disk().image_backed());
  EXPECT_FALSE(fs.disk().image_error().empty());
  ASSERT_NO_FATAL_FAILURE(RecordBase(&fs));  // sparse-store fallback works
  std::remove(path.c_str());
}

TEST(DiskImageTest, UnwritablePathFallsBackToTheSparseStore) {
  FileSystemConfig config =
      ImageConfig("/nonexistent_vafs_dir/image.img", /*truncate=*/true);
  MultimediaFileSystem fs(config);
  EXPECT_FALSE(fs.disk().image_backed());
  EXPECT_FALSE(fs.disk().image_error().empty());
  ASSERT_NO_FATAL_FAILURE(RecordBase(&fs));
  ASSERT_NO_FATAL_FAILURE(ExpectBaseReadable(&fs));
}

TEST(DiskImageTest, EnvironmentVariableSelectsTheImagePath) {
  const std::string path = ImagePath("env");
  ASSERT_EQ(setenv("VAFS_DISK_IMAGE", path.c_str(), /*overwrite=*/1), 0);
  {
    MultimediaFileSystem fs(TestConfig());  // no explicit path: env applies
    ASSERT_TRUE(fs.disk().image_backed()) << fs.disk().image_error();
    ASSERT_NO_FATAL_FAILURE(RecordBase(&fs));
  }
  ASSERT_EQ(unsetenv("VAFS_DISK_IMAGE"), 0);

  MultimediaFileSystem fs(ImageConfig(path, /*truncate=*/false));
  ASSERT_TRUE(fs.disk().image_backed()) << fs.disk().image_error();
  Status recovered = fs.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  ASSERT_NO_FATAL_FAILURE(ExpectBaseReadable(&fs));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vafs
