#include <gtest/gtest.h>

#include <vector>

#include "src/disk/disk_model.h"
#include "src/layout/allocator.h"
#include "src/util/prng.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest() : model_(TestDiskParameters()), allocator_(&model_) {}

  DiskModel model_;
  ConstrainedAllocator allocator_;
};

TEST_F(AllocatorTest, StartsFullyFree) {
  EXPECT_EQ(allocator_.free_sectors(), allocator_.total_sectors());
  EXPECT_DOUBLE_EQ(allocator_.Occupancy(), 0.0);
  EXPECT_EQ(allocator_.FreeExtentCount(), 1);
  EXPECT_EQ(allocator_.LargestFreeExtent(), allocator_.total_sectors());
}

TEST_F(AllocatorTest, FirstFitAllocates) {
  Result<Extent> extent = allocator_.Allocate(16);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->start_sector, 0);
  EXPECT_EQ(extent->sectors, 16);
  EXPECT_EQ(allocator_.free_sectors(), allocator_.total_sectors() - 16);
  EXPECT_FALSE(allocator_.IsFree(*extent));
}

TEST_F(AllocatorTest, HintSkipsAhead) {
  Result<Extent> extent = allocator_.Allocate(8, 1000);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->start_sector, 1000);
}

TEST_F(AllocatorTest, HintWrapsWhenTailFull) {
  const int64_t total = allocator_.total_sectors();
  // Occupy the entire tail.
  ASSERT_TRUE(allocator_.AllocateExact(Extent{total - 100, 100}).ok());
  Result<Extent> extent = allocator_.Allocate(8, total - 50);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->start_sector, 0);
}

TEST_F(AllocatorTest, RejectsBadArguments) {
  EXPECT_EQ(allocator_.Allocate(0).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(allocator_.Allocate(-5).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(allocator_.AllocateExact(Extent{-1, 4}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(allocator_.Free(Extent{0, -1}).code(), ErrorCode::kInvalidArgument);
}

TEST_F(AllocatorTest, ExactAllocationAndDoubleAllocationFails) {
  ASSERT_TRUE(allocator_.AllocateExact(Extent{500, 10}).ok());
  EXPECT_EQ(allocator_.AllocateExact(Extent{505, 2}).code(), ErrorCode::kNoSpace);
  EXPECT_EQ(allocator_.AllocateExact(Extent{495, 10}).code(), ErrorCode::kNoSpace);
}

TEST_F(AllocatorTest, FreeMergesNeighbours) {
  ASSERT_TRUE(allocator_.AllocateExact(Extent{100, 10}).ok());
  ASSERT_TRUE(allocator_.AllocateExact(Extent{110, 10}).ok());
  ASSERT_TRUE(allocator_.AllocateExact(Extent{120, 10}).ok());
  EXPECT_EQ(allocator_.FreeExtentCount(), 2);  // head + tail
  ASSERT_TRUE(allocator_.Free(Extent{100, 10}).ok());
  ASSERT_TRUE(allocator_.Free(Extent{120, 10}).ok());
  // {100,10} merged into the head run; {120,10} merged into the tail run;
  // only {110,10} remains allocated between them.
  EXPECT_EQ(allocator_.FreeExtentCount(), 2);
  ASSERT_TRUE(allocator_.Free(Extent{110, 10}).ok());
  // Everything coalesces back into one run.
  EXPECT_EQ(allocator_.FreeExtentCount(), 1);
  EXPECT_EQ(allocator_.free_sectors(), allocator_.total_sectors());
}

TEST_F(AllocatorTest, DoubleFreeRejected) {
  ASSERT_TRUE(allocator_.AllocateExact(Extent{100, 10}).ok());
  ASSERT_TRUE(allocator_.Free(Extent{100, 10}).ok());
  EXPECT_EQ(allocator_.Free(Extent{100, 10}).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(allocator_.Free(Extent{105, 2}).code(), ErrorCode::kFailedPrecondition);
}

TEST_F(AllocatorTest, ConstrainedAllocationStaysInWindow) {
  const int64_t per_cylinder = model_.params().SectorsPerCylinder();
  // Previous block ends at cylinder 50.
  const int64_t previous_end = 50 * per_cylinder + 10;
  Result<Extent> extent = allocator_.AllocateNear(previous_end, 16, 5);
  ASSERT_TRUE(extent.ok());
  const int64_t cylinder = extent->start_sector / per_cylinder;
  EXPECT_GE(cylinder, 45);
  EXPECT_LE(cylinder, 55);
  // Forward preference: lands at or after the previous end.
  EXPECT_GE(extent->start_sector, previous_end);
}

TEST_F(AllocatorTest, ConstrainedAllocationFallsBackBackward) {
  const int64_t per_cylinder = model_.params().SectorsPerCylinder();
  // Occupy everything from cylinder 50 onward.
  const int64_t wall = 50 * per_cylinder;
  ASSERT_TRUE(allocator_.AllocateExact(Extent{wall, allocator_.total_sectors() - wall}).ok());
  const int64_t previous_end = wall;  // previous block ended right at the wall
  Result<Extent> extent = allocator_.AllocateNear(previous_end, 16, 5);
  ASSERT_TRUE(extent.ok());
  EXPECT_LT(extent->start_sector, wall);
  const int64_t cylinder = extent->start_sector / per_cylinder;
  EXPECT_GE(cylinder, 44);
}

TEST_F(AllocatorTest, ConstrainedAllocationFailsOutsideWindow) {
  const int64_t per_cylinder = model_.params().SectorsPerCylinder();
  // Only cylinders >= 100 are free; previous block at cylinder 10.
  ASSERT_TRUE(allocator_.AllocateExact(Extent{0, 100 * per_cylinder}).ok());
  Result<Extent> extent = allocator_.AllocateNear(10 * per_cylinder, 16, 5);
  EXPECT_EQ(extent.status().code(), ErrorCode::kNoSpace);
}

TEST_F(AllocatorTest, MinDistanceForcesSpacing) {
  const int64_t per_cylinder = model_.params().SectorsPerCylinder();
  const int64_t previous_end = 50 * per_cylinder;
  Result<Extent> extent = allocator_.AllocateNear(previous_end, 16, 20, 10);
  ASSERT_TRUE(extent.ok());
  const int64_t cylinder = extent->start_sector / per_cylinder;
  const int64_t distance = std::abs(cylinder - 49);  // anchor cylinder of sector previous_end-1
  EXPECT_GE(distance, 10);
  EXPECT_LE(distance, 20);
}

TEST_F(AllocatorTest, EmptyWindowRejected) {
  EXPECT_EQ(allocator_.AllocateNear(100, 4, 2, 5).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(AllocatorTest, RandomAllocFreeStressKeepsInvariants) {
  Prng prng(2024);
  std::vector<Extent> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || prng.NextDouble() < 0.6) {
      const int64_t sectors = prng.NextInRange(1, 64);
      Result<Extent> extent = allocator_.Allocate(sectors, prng.NextInRange(0, 20000));
      if (extent.ok()) {
        // No overlap with any live extent.
        for (const Extent& other : live) {
          EXPECT_TRUE(extent->end_sector() <= other.start_sector ||
                      other.end_sector() <= extent->start_sector);
        }
        live.push_back(*extent);
      }
    } else {
      const size_t victim = prng.NextBelow(live.size());
      ASSERT_TRUE(allocator_.Free(live[victim]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  int64_t live_sectors = 0;
  for (const Extent& extent : live) {
    live_sectors += extent.sectors;
  }
  EXPECT_EQ(allocator_.free_sectors(), allocator_.total_sectors() - live_sectors);
  for (const Extent& extent : live) {
    ASSERT_TRUE(allocator_.Free(extent).ok());
  }
  EXPECT_EQ(allocator_.FreeExtentCount(), 1);
  EXPECT_EQ(allocator_.free_sectors(), allocator_.total_sectors());
}

TEST_F(AllocatorTest, FillsDiskCompletely) {
  int64_t allocated = 0;
  while (true) {
    Result<Extent> extent = allocator_.Allocate(128);
    if (!extent.ok()) {
      break;
    }
    allocated += extent->sectors;
  }
  EXPECT_EQ(allocated, allocator_.total_sectors());
  EXPECT_EQ(allocator_.free_sectors(), 0);
  EXPECT_DOUBLE_EQ(allocator_.Occupancy(), 1.0);
}

}  // namespace
}  // namespace vafs
