// Property tests: random editing sequences preserve rope invariants.
//
// Whatever sequence of INSERT / REPLACE / SUBSTRING / CONCATE / DELETE is
// applied, the following must hold for every rope:
//   - every non-gap segment references a live strand and lies within it;
//   - segment unit counts are positive; track totals match durations;
//   - ResolveBlocks over the whole rope succeeds and yields only valid
//     block locations;
//   - garbage collection never reclaims a referenced strand, and after
//     deleting all ropes it reclaims everything;
//   - the allocator's free-space accounting stays consistent.

#include <gtest/gtest.h>

#include "src/msm/recorder.h"
#include "src/rope/rope_server.h"
#include "src/util/prng.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class RopePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  RopePropertyTest() : disk_(TestDiskParameters()), store_(&disk_), server_(&store_) {}

  RopeId NewRope(uint64_t seed, double duration) {
    VideoSource video(TestVideo(), seed);
    AudioSource audio(TestAudio(), SpeechProfile{}, seed);
    ContinuityModel model(TestStorage(), TestVideoDevice());
    const StrandPlacement video_placement =
        *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
    RecordingResult v = *RecordVideo(&store_, &video, video_placement, duration);
    RecordingResult a = *RecordAudio(&store_, &audio, SilenceDetector(),
                                     StrandPlacement{512, 0.0, 0.1}, duration);
    return *server_.CreateRope("fuzz", v.strand, a.strand);
  }

  void CheckInvariants(const std::vector<RopeId>& ropes) {
    for (RopeId id : ropes) {
      Result<const Rope*> rope_result = server_.Find(id);
      if (!rope_result.ok()) {
        continue;  // deleted by the fuzz sequence
      }
      const Rope& rope = **rope_result;
      for (const Track* track : {&rope.video(), &rope.audio()}) {
        int64_t total = 0;
        for (const TrackSegment& segment : track->segments) {
          ASSERT_GT(segment.unit_count, 0) << "rope " << id;
          total += segment.unit_count;
          if (segment.IsGap()) {
            continue;
          }
          Result<const Strand*> strand = store_.Get(segment.strand);
          ASSERT_TRUE(strand.ok()) << "rope " << id << " references dead strand "
                                   << segment.strand;
          ASSERT_GE(segment.start_unit, 0);
          ASSERT_LE(segment.start_unit + segment.unit_count,
                    (*strand)->info().unit_count)
              << "rope " << id << " segment outside strand";
        }
        ASSERT_EQ(total, track->TotalUnits());
      }
      // The whole rope resolves to valid blocks for each present medium.
      for (Medium medium : {Medium::kVideo, Medium::kAudio}) {
        const Track& track = rope.TrackFor(medium);
        if (track.rate <= 0 || track.TotalUnits() == 0) {
          continue;
        }
        Result<std::vector<PrimaryEntry>> blocks = server_.ResolveBlocks(
            "fuzz", id, medium, TimeInterval{0.0, track.DurationSec()});
        ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();
        for (const PrimaryEntry& entry : *blocks) {
          if (!entry.IsSilence()) {
            ASSERT_GE(entry.sector, 0);
            ASSERT_GT(entry.sector_count, 0);
            ASSERT_LE(entry.sector + entry.sector_count, disk_.total_sectors());
          }
        }
      }
    }
    // GC never touches referenced strands (CollectGarbage returns only
    // unreferenced ones; re-running is a no-op).
    server_.CollectGarbage();
    ASSERT_EQ(server_.CollectGarbage(), 0);
  }

  Disk disk_;
  StrandStore store_;
  RopeServer server_;
};

TEST_P(RopePropertyTest, RandomEditSequencesKeepInvariants) {
  Prng prng(GetParam());
  std::vector<RopeId> ropes;
  ropes.push_back(NewRope(GetParam() * 100 + 1, 4.0));
  ropes.push_back(NewRope(GetParam() * 100 + 2, 3.0));

  for (int step = 0; step < 40; ++step) {
    const RopeId base = ropes[prng.NextBelow(ropes.size())];
    Result<const Rope*> base_rope = server_.Find(base);
    if (!base_rope.ok() || (*base_rope)->LengthSec() < 0.5) {
      continue;
    }
    const double length = (*base_rope)->LengthSec();
    const double at = prng.NextDouble() * length * 0.9;
    const double span = 0.2 + prng.NextDouble() * (length - at) * 0.5;
    const RopeId other = ropes[prng.NextBelow(ropes.size())];
    const auto selector = static_cast<MediaSelector>(prng.NextBelow(3));

    switch (prng.NextBelow(5)) {
      case 0:
        (void)server_.Insert("fuzz", base, at, selector, other, TimeInterval{0.0, span});
        break;
      case 1: {
        Result<const Rope*> other_rope = server_.Find(other);
        if (other_rope.ok() && (*other_rope)->LengthSec() > span) {
          (void)server_.Replace("fuzz", base, selector, TimeInterval{at, span}, other,
                                TimeInterval{0.0, span});
        }
        break;
      }
      case 2: {
        Result<RopeId> sub = server_.Substring("fuzz", base, MediaSelector::kAudioVisual,
                                               TimeInterval{at, span});
        if (sub.ok() && ropes.size() < 8) {
          ropes.push_back(*sub);
        } else if (sub.ok()) {
          (void)server_.DeleteRope("fuzz", *sub);
        }
        break;
      }
      case 3: {
        Result<RopeId> joined = server_.Concat("fuzz", base, other);
        if (joined.ok() && ropes.size() < 8) {
          ropes.push_back(*joined);
        } else if (joined.ok()) {
          (void)server_.DeleteRope("fuzz", *joined);
        }
        break;
      }
      case 4:
        (void)server_.Delete("fuzz", base, selector, TimeInterval{at, span});
        break;
    }
    if (step % 10 == 9) {
      CheckInvariants(ropes);
    }
  }
  CheckInvariants(ropes);

  // Repair every rope and re-check.
  for (RopeId id : ropes) {
    if (server_.Find(id).ok()) {
      (void)server_.RepairRope(id, Medium::kVideo);
      (void)server_.RepairRope(id, Medium::kAudio);
    }
  }
  CheckInvariants(ropes);

  // Tear everything down: all strands must be reclaimed and the disk
  // returns to a fully free state.
  const int64_t total_sectors = store_.allocator().total_sectors();
  for (RopeId id : ropes) {
    if (server_.Find(id).ok()) {
      ASSERT_TRUE(server_.DeleteRope("fuzz", id).ok());
    }
  }
  server_.CollectGarbage();
  EXPECT_EQ(store_.strand_count(), 0);
  EXPECT_EQ(store_.allocator().free_sectors(), total_sectors);
  EXPECT_EQ(store_.allocator().FreeExtentCount(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RopePropertyTest,
                         ::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace vafs
