#include <gtest/gtest.h>

#include "src/msm/striped.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

// Media whose bit rate exceeds one test-disk member (R_dt ~ 7.9 Mbit/s
// per member at 3600 RPM x 32 sectors): 9 Mbit/s video.
MediaProfile HeavyVideo() { return MediaProfile{Medium::kVideo, 30.0, 300'000}; }

class StripedTest : public ::testing::Test {
 protected:
  StrandPlacement PlacementFor(int p, const MediaProfile& media) {
    const DiskModel model(TestDiskParameters());
    ContinuityModel continuity(StorageTimings::FromDiskModel(model),
                               DeviceProfile{media.BitRate() * 4.0, 4 * p}, p);
    Result<StrandPlacement> placement =
        continuity.DerivePlacement(RetrievalArchitecture::kConcurrent, media);
    EXPECT_TRUE(placement.ok()) << placement.status().ToString();
    return placement.ok() ? *placement : StrandPlacement{};
  }
};

TEST_F(StripedTest, RecordStripesRoundRobin) {
  DiskArray array(TestDiskParameters(), 4, DiskOptions{.retain_data = false});
  StripedStore store(&array);
  const StrandPlacement placement = PlacementFor(4, TestVideo());
  Result<StripedStrand> strand = store.Record(TestVideo(), placement, 4.0);
  ASSERT_TRUE(strand.ok());
  const int64_t blocks = static_cast<int64_t>(strand->blocks.size());
  EXPECT_EQ(blocks, (120 + placement.granularity - 1) / placement.granularity);
  // Every member received writes.
  for (int m = 0; m < 4; ++m) {
    EXPECT_GT(array.member(m).writes(), 0) << "member " << m;
  }
}

TEST_F(StripedTest, PerMemberPlacementHonorsWindow) {
  DiskArray array(TestDiskParameters(), 2, DiskOptions{.retain_data = false});
  StripedStore store(&array);
  const StrandPlacement placement = PlacementFor(2, TestVideo());
  Result<StripedStrand> strand = store.Record(TestVideo(), placement, 6.0);
  ASSERT_TRUE(strand.ok());
  const DiskModel& model = array.member_model();
  // Consecutive blocks on the SAME member stay within the window.
  for (size_t b = 2; b < strand->blocks.size(); ++b) {
    const PrimaryEntry& prev = strand->blocks[b - 2];
    const PrimaryEntry& cur = strand->blocks[b];
    const double gap = UsecToSeconds(
        model.AccessGap(prev.sector + prev.sector_count - 1, cur.sector));
    EXPECT_LE(gap, placement.max_scattering_sec + 1e-9) << "block " << b;
  }
}

TEST_F(StripedTest, PlaybackMeetsEquation3) {
  // The heavy stream is infeasible on one member but clean on four.
  const DiskModel model(TestDiskParameters());
  const StorageTimings member_timings = StorageTimings::FromDiskModel(model);
  ASSERT_GT(HeavyVideo().BitRate(), member_timings.transfer_rate_bits_per_sec);

  ContinuityModel single(member_timings, DeviceProfile{HeavyVideo().BitRate() * 4.0, 8}, 1);
  EXPECT_FALSE(
      single.DerivePlacement(RetrievalArchitecture::kPipelined, HeavyVideo()).ok());

  DiskArray array(TestDiskParameters(), 4, DiskOptions{.retain_data = false});
  StripedStore store(&array);
  const StrandPlacement placement = PlacementFor(4, HeavyVideo());
  Result<StripedStrand> strand = store.Record(HeavyVideo(), placement, 5.0);
  ASSERT_TRUE(strand.ok());
  Result<StripedStore::PlaybackOutcome> outcome = store.Play(*strand);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->blocks_done, static_cast<int64_t>(strand->blocks.size()));
  EXPECT_EQ(outcome->violations, 0);
}

TEST_F(StripedTest, BufferCapBoundsAccumulation) {
  DiskArray array(TestDiskParameters(), 4, DiskOptions{.retain_data = false});
  StripedStore store(&array);
  const StrandPlacement placement = PlacementFor(4, TestVideo());
  Result<StripedStrand> strand = store.Record(TestVideo(), placement, 6.0);
  ASSERT_TRUE(strand.ok());
  Result<StripedStore::PlaybackOutcome> outcome = store.Play(*strand, /*buffer_cap=*/8);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->violations, 0);
  EXPECT_LE(outcome->max_buffered_blocks, 8 + 4);  // cap + one batch in flight
}

TEST_F(StripedTest, FreeReturnsAllSpace) {
  DiskArray array(TestDiskParameters(), 3, DiskOptions{.retain_data = false});
  StripedStore store(&array);
  const StrandPlacement placement = PlacementFor(3, TestVideo());
  Result<StripedStrand> strand = store.Record(TestVideo(), placement, 3.0);
  ASSERT_TRUE(strand.ok());
  ASSERT_TRUE(store.Free(*strand).ok());
  // A re-record of the same size succeeds (space came back).
  Result<StripedStrand> again = store.Record(TestVideo(), placement, 3.0);
  EXPECT_TRUE(again.ok());
}

TEST_F(StripedTest, EmptyPlayRejected) {
  DiskArray array(TestDiskParameters(), 2, DiskOptions{.retain_data = false});
  StripedStore store(&array);
  EXPECT_FALSE(store.Play(StripedStrand{}).ok());
}

}  // namespace
}  // namespace vafs
