#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/obs/auditor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace vafs {
namespace obs {
namespace {

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("events").Increment();
  registry.counter("events").Increment(4);
  registry.gauge("k").Set(3.0);
  registry.gauge("k").Set(5.0);
  EXPECT_EQ(registry.counter("events").value(), 5);
  EXPECT_EQ(registry.gauge("k").value(), 5.0);
  ASSERT_NE(registry.FindCounter("events"), nullptr);
  EXPECT_EQ(registry.FindCounter("events")->value(), 5);
  EXPECT_EQ(registry.FindCounter("never"), nullptr);
  EXPECT_EQ(registry.FindGauge("never"), nullptr);
  EXPECT_EQ(registry.FindHistogram("never"), nullptr);
}

TEST(MetricsTest, HistogramBuckets) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(histogram.min(), 0.0);
  EXPECT_EQ(histogram.Mean(), 0.0);
  histogram.Record(0.0);   // bucket 0
  histogram.Record(1.0);   // bucket 0 (<= 1)
  histogram.Record(2.0);   // bucket 1 ((1, 2])
  histogram.Record(3.0);   // bucket 2 ((2, 4])
  histogram.Record(100.0); // bucket 7 ((64, 128])
  EXPECT_EQ(histogram.count(), 5);
  EXPECT_EQ(histogram.min(), 0.0);
  EXPECT_EQ(histogram.max(), 100.0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 106.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 106.0 / 5.0);
  EXPECT_EQ(histogram.buckets()[0], 2);
  EXPECT_EQ(histogram.buckets()[1], 1);
  EXPECT_EQ(histogram.buckets()[2], 1);
  EXPECT_EQ(histogram.buckets()[7], 1);
  // Overflow absorbs into the last bucket.
  histogram.Record(1e30);
  EXPECT_EQ(histogram.buckets()[Histogram::kBuckets - 1], 1);
}

TEST(MetricsTest, JsonImageIsDeterministic) {
  MetricsRegistry registry;
  registry.counter("b.count").Increment(2);
  registry.counter("a.count").Increment(1);
  registry.gauge("k").Set(4.0);
  registry.histogram("round_usec").Record(100.0);
  const std::string json = registry.ToJson();
  // Name-sorted, so a.count precedes b.count.
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.count\": 2"), std::string::npos) << json;
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"round_usec\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(TraceTest, LogRecordsAndTeeFansOut) {
  TraceLog log_a;
  TraceLog log_b;
  TeeSink tee;
  tee.Add(&log_a);
  tee.Add(&log_b);
  TraceEvent event;
  event.kind = TraceEventKind::kRoundStart;
  event.round = 7;
  tee.OnEvent(event);
  ASSERT_EQ(log_a.events().size(), 1u);
  ASSERT_EQ(log_b.events().size(), 1u);
  EXPECT_EQ(log_a.events()[0].round, 7);
  log_a.Clear();
  EXPECT_TRUE(log_a.events().empty());
}

TEST(TraceTest, EventKindNamesAreStable) {
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kSubmitAccepted), "submit_accepted");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kRoundEnd), "round_end");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kStrandWrite), "strand_write");
}

TEST(TraceTest, MetricsSinkFoldsEvents) {
  MetricsRegistry registry;
  MetricsSink sink(&registry);

  TraceEvent submit;
  submit.kind = TraceEventKind::kSubmitAccepted;
  sink.OnEvent(submit);
  TraceEvent round;
  round.kind = TraceEventKind::kRoundEnd;
  round.k = 3;
  round.blocks = 6;
  round.duration = 1500;
  round.slots.active = 2;
  sink.OnEvent(round);
  TraceEvent read;
  read.kind = TraceEventKind::kDiskRead;
  read.blocks = 64;
  read.duration = 900;
  sink.OnEvent(read);

  EXPECT_EQ(registry.FindCounter("scheduler.submits_accepted")->value(), 1);
  EXPECT_EQ(registry.FindCounter("scheduler.rounds")->value(), 1);
  EXPECT_EQ(registry.FindGauge("scheduler.current_k")->value(), 3.0);
  EXPECT_EQ(registry.FindGauge("scheduler.slots_active")->value(), 2.0);
  EXPECT_EQ(registry.FindHistogram("scheduler.round_duration_usec")->count(), 1);
  EXPECT_DOUBLE_EQ(registry.FindHistogram("scheduler.round_duration_usec")->sum(), 1500.0);
  EXPECT_EQ(registry.FindCounter("disk.reads")->value(), 1);
  EXPECT_EQ(registry.FindCounter("disk.sectors_read")->value(), 64);
}

// --- Auditor -------------------------------------------------------------

// Builders for a synthetic, internally consistent trace.
TraceEvent Lifecycle(TraceEventKind kind, uint64_t request, SlotSnapshot slots) {
  TraceEvent event;
  event.kind = kind;
  event.request = request;
  event.slots = slots;
  return event;
}

TraceEvent RoundStart(int64_t round, int64_t k, SlotSnapshot slots) {
  TraceEvent event;
  event.kind = TraceEventKind::kRoundStart;
  event.round = round;
  event.k = k;
  event.slots = slots;
  return event;
}

TraceEvent Serviced(int64_t round, uint64_t request, int64_t blocks, SimDuration playback) {
  TraceEvent event;
  event.kind = TraceEventKind::kRequestServiced;
  event.round = round;
  event.request = request;
  event.blocks = blocks;
  event.block_playback = playback;
  return event;
}

TraceEvent RoundEnd(int64_t round, int64_t k, SimDuration duration, SlotSnapshot slots) {
  TraceEvent event;
  event.kind = TraceEventKind::kRoundEnd;
  event.round = round;
  event.k = k;
  event.duration = duration;
  event.slots = slots;
  return event;
}

TEST(AuditorTest, CleanTraceAudits) {
  const SlotSnapshot one_pending{.pending = 1};
  const SlotSnapshot one_active{.active = 1};
  std::vector<TraceEvent> events;
  events.push_back(Lifecycle(TraceEventKind::kSubmitAccepted, 1, one_pending));
  events.push_back(Lifecycle(TraceEventKind::kActivated, 1, one_active));
  events.push_back(RoundStart(1, 1, one_active));
  events.push_back(Serviced(1, 1, 1, 2000));
  events.push_back(RoundEnd(1, 1, 1500, one_active));
  events.push_back(Lifecycle(TraceEventKind::kCompleted, 1, SlotSnapshot{}));
  ContinuityAuditor auditor;
  for (const TraceEvent& event : events) {
    auditor.OnEvent(event);
  }
  EXPECT_TRUE(auditor.Clean()) << auditor.Report();
  EXPECT_EQ(auditor.Report(), "audit clean");
}

TEST(AuditorTest, FlagsAdmissionDoubleCount) {
  // One pending slot holder, but admission claims to have seen two existing
  // requests: the candidate was pre-counted (the historic Resume bug).
  std::vector<TraceEvent> events;
  events.push_back(
      Lifecycle(TraceEventKind::kSubmitAccepted, 1, SlotSnapshot{.pending = 1}));
  TraceEvent plan;
  plan.kind = TraceEventKind::kAdmissionPlan;
  plan.existing = 2;
  events.push_back(plan);
  const std::vector<AuditViolation> violations = ContinuityAuditor::Replay(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].what.find("double-count"), std::string::npos);
}

TEST(AuditorTest, FlagsKJumpBeyondOneStep) {
  const SlotSnapshot one_active{.active = 1};
  std::vector<TraceEvent> events;
  events.push_back(Lifecycle(TraceEventKind::kSubmitAccepted, 1, SlotSnapshot{.pending = 1}));
  events.push_back(Lifecycle(TraceEventKind::kActivated, 1, one_active));
  events.push_back(RoundStart(1, 1, one_active));
  events.push_back(RoundEnd(1, 1, 0, one_active));
  events.push_back(RoundStart(2, 3, one_active));
  events.push_back(RoundEnd(2, 3, 0, one_active));  // 1 -> 3 in one round
  const std::vector<AuditViolation> violations = ContinuityAuditor::Replay(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].what.find("jumped"), std::string::npos);
  // The naive-jump policy opts out of the stepping check.
  EXPECT_TRUE(
      ContinuityAuditor::Replay(events, AuditorOptions{.stepped_transitions = false}).empty());
}

TEST(AuditorTest, FlagsKShrinkWithoutSlotRelease) {
  const SlotSnapshot one_active{.active = 1};
  std::vector<TraceEvent> events;
  events.push_back(Lifecycle(TraceEventKind::kSubmitAccepted, 1, SlotSnapshot{.pending = 1}));
  events.push_back(Lifecycle(TraceEventKind::kActivated, 1, one_active));
  events.push_back(RoundStart(1, 2, one_active));
  events.push_back(RoundEnd(1, 2, 0, one_active));
  events.push_back(RoundStart(2, 1, one_active));
  events.push_back(RoundEnd(2, 1, 0, one_active));  // shrank with no release
  const std::vector<AuditViolation> violations = ContinuityAuditor::Replay(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].what.find("shrank"), std::string::npos);
}

TEST(AuditorTest, DestructivePauseJustifiesKShrink) {
  const SlotSnapshot two_active{.active = 2};
  std::vector<TraceEvent> events;
  events.push_back(Lifecycle(TraceEventKind::kSubmitAccepted, 1, SlotSnapshot{.pending = 1}));
  events.push_back(Lifecycle(TraceEventKind::kActivated, 1, SlotSnapshot{.active = 1}));
  events.push_back(
      Lifecycle(TraceEventKind::kSubmitAccepted, 2, SlotSnapshot{.active = 1, .pending = 1}));
  events.push_back(Lifecycle(TraceEventKind::kActivated, 2, two_active));
  events.push_back(RoundStart(1, 2, two_active));
  events.push_back(RoundEnd(1, 2, 0, two_active));
  TraceEvent pause =
      Lifecycle(TraceEventKind::kPause, 2, SlotSnapshot{.active = 1, .paused_destructive = 1});
  pause.destructive = true;
  events.push_back(pause);
  const SlotSnapshot after_pause{.active = 1, .paused_destructive = 1};
  events.push_back(RoundStart(2, 1, after_pause));
  events.push_back(RoundEnd(2, 1, 0, after_pause));  // shrink is justified
  EXPECT_TRUE(ContinuityAuditor::Replay(events).empty());
}

TEST(AuditorTest, FlagsRoundOverrunOnSaturatedRound) {
  const SlotSnapshot one_active{.active = 1};
  std::vector<TraceEvent> events;
  events.push_back(Lifecycle(TraceEventKind::kSubmitAccepted, 1, SlotSnapshot{.pending = 1}));
  events.push_back(Lifecycle(TraceEventKind::kActivated, 1, one_active));
  events.push_back(RoundStart(1, 2, one_active));
  events.push_back(Serviced(1, 1, 2, 1000));       // budget: 2 blocks * 1000 us
  events.push_back(RoundEnd(1, 2, 2500, one_active));  // took 2500 us: Eq. 11 broken
  const std::vector<AuditViolation> violations = ContinuityAuditor::Replay(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].what.find("Eq. 11"), std::string::npos);
  // An unsaturated round (completion tail) is exempt...
  events[3] = Serviced(1, 1, 1, 1000);
  EXPECT_TRUE(ContinuityAuditor::Replay(events).empty());
  // ...and slack can absorb a legitimate overshoot.
  events[3] = Serviced(1, 1, 2, 1000);
  EXPECT_TRUE(
      ContinuityAuditor::Replay(events, AuditorOptions{.round_time_slack = 0.3}).empty());
}

TEST(AuditorTest, FlagsLedgerMismatch) {
  std::vector<TraceEvent> events;
  // Scheduler claims two pending but only one submit was ever traced.
  events.push_back(Lifecycle(TraceEventKind::kSubmitAccepted, 1, SlotSnapshot{.pending = 2}));
  const std::vector<AuditViolation> violations = ContinuityAuditor::Replay(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].what.find("disagrees"), std::string::npos);
}

TEST(AuditorTest, FlagsIllegalLifecycleTransitions) {
  std::vector<TraceEvent> events;
  events.push_back(Lifecycle(TraceEventKind::kResume, 9, SlotSnapshot{}));  // never submitted
  events.push_back(Lifecycle(TraceEventKind::kCompleted, 9, SlotSnapshot{}));
  const std::vector<AuditViolation> violations = ContinuityAuditor::Replay(events);
  // Resume of an unknown request, then completion of an unknown request.
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_NE(violations[0].what.find("not paused"), std::string::npos);
  EXPECT_NE(violations[1].what.find("unknown"), std::string::npos);
}

TEST(AuditorTest, FlagsScatteringContractBreach) {
  TraceEvent write;
  write.kind = TraceEventKind::kStrandWrite;
  write.sector = 4096;
  write.gap_sec = 0.010;
  write.gap_bound_sec = 0.004;
  const std::vector<AuditViolation> violations = ContinuityAuditor::Replay({write});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].what.find("scattering contract"), std::string::npos);
  // Within the bound (or the first block of a strand) is fine.
  write.gap_sec = 0.004;
  EXPECT_TRUE(ContinuityAuditor::Replay({write}).empty());
  write.gap_sec = -1.0;
  EXPECT_TRUE(ContinuityAuditor::Replay({write}).empty());
}

TEST(MetricsTest, QuantileInterpolatesWithinBuckets) {
  Histogram histogram;
  // 100 samples spread 1..100: p50 should land near 50, p99 near 100.
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 100.0);
  EXPECT_NEAR(histogram.Quantile(0.50), 50.0, 14.0);  // bucket (32,64] interpolation
  EXPECT_NEAR(histogram.Quantile(0.99), 100.0, 4.0);
  // Estimates never leave the sampled range, whatever the bucket edges say.
  EXPECT_GE(histogram.Quantile(0.01), 1.0);
  EXPECT_LE(histogram.Quantile(0.999), 100.0);
}

TEST(MetricsTest, QuantileSingleValueAndEmpty) {
  Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  histogram.Record(42.0);
  // One sample: every quantile is that sample (min == max clamps the bucket).
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 42.0);
}

TEST(MetricsTest, HistogramRejectsNonFiniteSamples) {
  Histogram histogram;
  histogram.Record(10.0);
  // A NaN must not poison min/max or count; infinities must not reach the
  // JSON image, where "inf" does not parse.
  histogram.Record(std::nan(""));
  histogram.Record(std::numeric_limits<double>::infinity());
  histogram.Record(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_EQ(histogram.rejected(), 3);
  EXPECT_DOUBLE_EQ(histogram.min(), 10.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 10.0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 10.0);
  // A NaN as the FIRST sample must not seed min/max either.
  Histogram fresh;
  fresh.Record(std::nan(""));
  EXPECT_EQ(fresh.count(), 0);
  fresh.Record(7.0);
  EXPECT_DOUBLE_EQ(fresh.min(), 7.0);
  EXPECT_DOUBLE_EQ(fresh.max(), 7.0);
}

TEST(MetricsTest, HistogramHugeValuesLandInOverflowBucket) {
  Histogram histogram;
  // Values at and beyond 2^64, where ceil-then-cast to uint64 is undefined
  // behaviour: they must land in the overflow bucket, not crash or scatter.
  histogram.Record(std::ldexp(1.0, 64));
  histogram.Record(std::ldexp(1.0, 100));
  histogram.Record(std::numeric_limits<double>::max());
  EXPECT_EQ(histogram.count(), 3);
  EXPECT_EQ(histogram.buckets()[Histogram::kBuckets - 1], 3);
  // The overflow-bucket quantile stays inside the observed range.
  EXPECT_GE(histogram.Quantile(0.5), std::ldexp(1.0, 64));
  EXPECT_LE(histogram.Quantile(0.99), std::numeric_limits<double>::max());
  // Just below the first power-of-two edge vs. exactly on it.
  Histogram edges;
  edges.Record(std::ldexp(1.0, Histogram::kBuckets - 1) - 1.0);
  EXPECT_EQ(edges.buckets()[Histogram::kBuckets - 1], 1);
}

TEST(MetricsTest, HistogramNegativeSamplesStayInBucketZero) {
  Histogram histogram;
  histogram.Record(-5.0);
  histogram.Record(-1e30);
  EXPECT_EQ(histogram.count(), 2);
  EXPECT_EQ(histogram.buckets()[0], 2);
  // The sign bug stays visible in min instead of crashing.
  EXPECT_DOUBLE_EQ(histogram.min(), -1e30);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), -1e30);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), -5.0);
}

TEST(MetricsTest, HistogramBucketBoundaryValues) {
  Histogram histogram;
  // Powers of two sit at bucket upper edges: 2^i lands in bucket i
  // ((2^(i-1), 2^i]); one past it spills into bucket i+1.
  histogram.Record(2.0);
  histogram.Record(4.0);
  histogram.Record(4.0 + 1e-9);
  histogram.Record(1024.0);
  EXPECT_EQ(histogram.buckets()[1], 1);
  EXPECT_EQ(histogram.buckets()[2], 1);
  EXPECT_EQ(histogram.buckets()[3], 1);
  EXPECT_EQ(histogram.buckets()[10], 1);
}

TEST(MetricsTest, ToJsonCarriesQuantiles) {
  MetricsRegistry registry;
  for (int i = 0; i < 10; ++i) {
    registry.histogram("h").Record(8.0);
  }
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"p50\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\": 8"), std::string::npos) << json;
}

TEST(MetricsTest, JsonEscapesInstrumentNamesAndControlCharacters) {
  std::string escaped;
  AppendJsonEscaped(&escaped, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(escaped, "a\\\"b\\\\c\\nd\\te\\u0001");

  MetricsRegistry registry;
  registry.counter("weird\"name\\with\nescapes").Increment();
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\nescapes\": 1"), std::string::npos) << json;
  // The raw quote must never appear unescaped inside the key.
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
}

TEST(TraceTest, BoundedLogDropsOldestAndCounts) {
  TraceLog log(/*capacity=*/8);
  EXPECT_EQ(log.capacity(), 8u);
  TraceEvent event;
  event.kind = TraceEventKind::kRoundEnd;
  for (int i = 0; i < 20; ++i) {
    event.round = i;
    log.OnEvent(event);
  }
  // Never grows past capacity, dropped + retained account for every event.
  EXPECT_LE(log.events().size(), 8u);
  EXPECT_EQ(log.dropped() + static_cast<int64_t>(log.events().size()), 20);
  // Drop-oldest: the newest event is always retained, in order.
  EXPECT_EQ(log.events().back().round, 19);
  for (size_t i = 1; i < log.events().size(); ++i) {
    EXPECT_EQ(log.events()[i].round, log.events()[i - 1].round + 1);
  }
  log.Clear();
  EXPECT_EQ(log.dropped(), 0);
  EXPECT_TRUE(log.events().empty());
}

TEST(TraceTest, UnboundedLogKeepsEverything) {
  TraceLog log;  // capacity 0
  TraceEvent event;
  for (int i = 0; i < 1000; ++i) {
    log.OnEvent(event);
  }
  EXPECT_EQ(log.events().size(), 1000u);
  EXPECT_EQ(log.dropped(), 0);
}

TEST(TraceTest, BackToBackPowerCutsCountAsDistinctCrashPoints) {
  MetricsRegistry registry;
  MetricsSink sink(&registry);
  TraceEvent cut;
  cut.kind = TraceEventKind::kPowerCut;
  TraceEvent recovery;
  recovery.kind = TraceEventKind::kRecovery;

  // Two cuts before the first successful recovery (e.g. a crash during
  // fsck): both are crash points the eventual recovery survived.
  sink.OnEvent(cut);
  sink.OnEvent(cut);
  sink.OnEvent(recovery);
  EXPECT_EQ(registry.FindCounter("disk.power_cuts")->value(), 2);
  EXPECT_EQ(registry.FindCounter("recovery.crash_points_survived")->value(), 2);

  // A later single cut/recovery pair adds exactly one more.
  sink.OnEvent(cut);
  sink.OnEvent(recovery);
  EXPECT_EQ(registry.FindCounter("recovery.crash_points_survived")->value(), 3);
  // A recovery with no preceding cut (plain restart) credits nothing.
  sink.OnEvent(recovery);
  EXPECT_EQ(registry.FindCounter("recovery.crash_points_survived")->value(), 3);
}

TEST(TraceTest, SummaryRendersKeyFields) {
  TraceEvent event;
  event.kind = TraceEventKind::kDiskRead;
  event.time = 1200;
  event.round = 3;
  event.request = 2;
  event.sector = 640;
  event.blocks = 8;
  event.seek_cylinders = 17;
  event.duration = 950;
  event.detail = "why";
  const std::string line = TraceEventSummary(event);
  EXPECT_NE(line.find("t=1200"), std::string::npos) << line;
  EXPECT_NE(line.find("disk_read"), std::string::npos);
  EXPECT_NE(line.find("req=2"), std::string::npos);
  EXPECT_NE(line.find("sector=640"), std::string::npos);
  EXPECT_NE(line.find("seek=17cyl"), std::string::npos);
  EXPECT_NE(line.find("dur=950us"), std::string::npos);
  EXPECT_NE(line.find("[why]"), std::string::npos);
}

TEST(AuditorTest, ViolationHandlerFiresPerViolation) {
  ContinuityAuditor auditor;
  std::vector<std::string> seen;
  auditor.set_violation_handler(
      [&seen](const AuditViolation& violation) { seen.push_back(violation.what); });
  TraceEvent bogus;
  bogus.kind = TraceEventKind::kActivated;
  bogus.request = 99;
  auditor.OnEvent(bogus);  // activation of an unknown request
  ASSERT_GE(seen.size(), 1u);
  EXPECT_NE(seen[0].find("unknown request"), std::string::npos);
}

TEST(AuditorTest, NonDestructiveResumeRestoresLedgerColumn) {
  const SlotSnapshot one_active{.active = 1};
  std::vector<TraceEvent> events;
  events.push_back(Lifecycle(TraceEventKind::kSubmitAccepted, 1, SlotSnapshot{.pending = 1}));
  events.push_back(Lifecycle(TraceEventKind::kActivated, 1, one_active));
  events.push_back(
      Lifecycle(TraceEventKind::kPause, 1, SlotSnapshot{.paused_nondestructive = 1}));
  events.push_back(Lifecycle(TraceEventKind::kResume, 1, one_active));
  events.push_back(Lifecycle(TraceEventKind::kCompleted, 1, SlotSnapshot{}));
  EXPECT_TRUE(ContinuityAuditor::Replay(events).empty());
}

}  // namespace
}  // namespace obs
}  // namespace vafs
