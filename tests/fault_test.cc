// Fault injection and graceful degradation: the injector's determinism
// contract, the disk/array fault surface, the scheduler's
// retry-within-slack policy, and the repair/relocation machinery that
// rescues data from latent defects.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/disk/disk.h"
#include "src/disk/disk_array.h"
#include "src/disk/fault_injector.h"
#include "src/msm/recorder.h"
#include "src/msm/scattering_repair.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

// --- Injector determinism ----------------------------------------------------

std::vector<FaultKind> ReadSchedule(FaultOptions options, int ops) {
  FaultInjector injector(options);
  std::vector<FaultKind> schedule;
  for (int i = 0; i < ops; ++i) {
    schedule.push_back(injector.OnRead(i * 8, 8));
  }
  return schedule;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultOptions options;
  options.seed = 5;
  options.read_fault_rate = 0.3;
  const std::vector<FaultKind> first = ReadSchedule(options, 200);
  const std::vector<FaultKind> second = ReadSchedule(options, 200);
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), FaultKind::kTransient), 0);
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  FaultOptions options;
  options.read_fault_rate = 0.3;
  options.seed = 5;
  const std::vector<FaultKind> first = ReadSchedule(options, 200);
  options.seed = 6;
  const std::vector<FaultKind> second = ReadSchedule(options, 200);
  EXPECT_NE(first, second);
}

TEST(FaultInjectorTest, DisabledInjectorNeverFaults) {
  FaultOptions options;
  options.seed = 99;  // a seed alone must not cause anything
  FaultInjector injector(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.OnRead(i, 4), FaultKind::kNone);
    EXPECT_EQ(injector.OnWrite(i, 4), FaultKind::kNone);
  }
  EXPECT_EQ(injector.transient_read_faults(), 0);
  EXPECT_EQ(injector.transient_write_faults(), 0);
}

TEST(FaultInjectorTest, BadRangesDominateAndClear) {
  FaultOptions options;
  options.read_fault_rate = 0.0;
  options.bad_ranges.push_back(BadRange{100, 10});
  FaultInjector injector(options);
  EXPECT_EQ(injector.OnRead(105, 2), FaultKind::kBadSector);
  EXPECT_EQ(injector.OnRead(95, 6), FaultKind::kBadSector);   // overlaps the head
  EXPECT_EQ(injector.OnRead(90, 10), FaultKind::kNone);       // ends at 100, no overlap
  EXPECT_EQ(injector.OnWrite(109, 1), FaultKind::kBadSector);
  EXPECT_EQ(injector.bad_sector_hits(), 3);
  injector.ClearBad(100, 10);
  EXPECT_EQ(injector.OnRead(105, 2), FaultKind::kNone);
}

// --- Disk-level fault surface ------------------------------------------------

TEST(FaultyDiskTest, TransientFaultChargesTheMechanism) {
  FaultOptions faults;
  faults.read_fault_rate = 1.0;  // every read faults
  Disk disk(TestDiskParameters(), DiskOptions{true, faults});
  const SimDuration expected = disk.PeekServiceTime(5000, 8);
  Result<SimDuration> read = disk.Read(5000, 8, nullptr);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kIoError);
  // The arm moved and the platter turned even though the data is missing.
  EXPECT_EQ(disk.last_fault_service(), expected);
  EXPECT_EQ(disk.busy_time(), expected);
  EXPECT_EQ(disk.reads(), 1);
  EXPECT_EQ(disk.head_cylinder(), disk.model().SectorToCylinder(5000 + 8 - 1));
}

TEST(FaultyDiskTest, BadRangeFailsUntilRelocatedSalvageSucceeds) {
  FaultOptions faults;
  faults.bad_ranges.push_back(BadRange{1000, 16});
  faults.salvage_cost_multiplier = 3.0;
  Disk disk(TestDiskParameters(), DiskOptions{true, faults});

  Result<SimDuration> read = disk.Read(1000, 16, nullptr);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kBadSector);

  // Salvage pays triple the mechanical time but is immune to the defect.
  const SimDuration normal = disk.PeekServiceTime(1000, 16);
  Result<SimDuration> salvage = disk.ReadSalvage(1000, 16, nullptr);
  ASSERT_TRUE(salvage.ok());
  EXPECT_EQ(*salvage, static_cast<SimDuration>(static_cast<double>(normal) * 3.0));
}

TEST(FaultyDiskTest, DeviceFailureAnswersInstantly) {
  Disk disk(TestDiskParameters());
  disk.set_failed(true);
  Result<SimDuration> read = disk.Read(0, 4, nullptr);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(disk.last_fault_service(), 0);
  EXPECT_FALSE(disk.Write(0, 4, {}).ok());
  EXPECT_FALSE(disk.ReadSalvage(0, 4, nullptr).ok());
  disk.set_failed(false);
  EXPECT_TRUE(disk.Read(0, 4, nullptr).ok());
}

TEST(FaultyDiskTest, DisabledFaultsAreBitIdenticalToNoInjector) {
  Disk plain(TestDiskParameters());
  FaultOptions seeded_but_off;
  seeded_but_off.seed = 424242;
  Disk seeded(TestDiskParameters(), DiskOptions{true, seeded_but_off});
  for (int i = 0; i < 50; ++i) {
    const int64_t sector = (i * 977) % 20000;
    Result<SimDuration> a = plain.Read(sector, 8, nullptr);
    Result<SimDuration> b = seeded.Read(sector, 8, nullptr);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
  EXPECT_EQ(plain.busy_time(), seeded.busy_time());
}

// --- Array-level fault surface -----------------------------------------------

TEST(FaultyArrayTest, BatchReportsPerMemberOutcomes) {
  DiskArray array(TestDiskParameters(), 3);
  array.FailMember(1);
  std::vector<DiskArray::BatchRequest> batch = {{0, 0, 4}, {1, 0, 4}, {2, 0, 4}};
  Result<DiskArray::BatchOutcome> outcome = array.ReadBatch(batch, nullptr);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->AllOk());
  EXPECT_EQ(outcome->FailedCount(), 1);
  EXPECT_TRUE(outcome->per_request[0].status.ok());
  EXPECT_EQ(outcome->per_request[1].status.code(), ErrorCode::kIoError);
  EXPECT_TRUE(outcome->per_request[2].status.ok());
  // A dead member answers instantly; the healthy members set the pace.
  EXPECT_EQ(outcome->per_request[1].service, 0);
  EXPECT_EQ(outcome->completion_time, outcome->per_request[0].service);
  array.ReviveMember(1);
  Result<DiskArray::BatchOutcome> healed = array.ReadBatch(batch, nullptr);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->AllOk());
}

TEST(FaultyArrayTest, MemberFaultSchedulesAreDecorrelated) {
  FaultOptions faults;
  faults.seed = 11;
  faults.read_fault_rate = 0.5;
  DiskArray array(TestDiskParameters(), 2, DiskOptions{true, faults});
  std::vector<FaultKind> member0;
  std::vector<FaultKind> member1;
  for (int i = 0; i < 100; ++i) {
    member0.push_back(array.member(0).fault_injector().OnRead(i * 8, 8));
    member1.push_back(array.member(1).fault_injector().OnRead(i * 8, 8));
  }
  // Same base seed, different members: a 50% rate must not fault both
  // members on the same ops (that would double a batch's loss rate).
  EXPECT_NE(member0, member1);
}

// --- Scheduler: retry within slack, degraded playback ------------------------

struct WorkloadResult {
  std::vector<RequestStats> stats;
  bool auditor_clean = false;
  std::string auditor_report;
  int64_t faults = 0;
  int64_t retried = 0;
  int64_t skipped = 0;
  int64_t violations = 0;
  int64_t metrics_retries = 0;
  int64_t metrics_skips = 0;
  SimTime end_time = 0;
};

// Records `streams` identical-length strands fault-free (write rate is
// zero), then plays them all back concurrently under the given fault
// options, with the full trace pipeline (log + strict auditor + metrics)
// attached.
WorkloadResult RunFaultedWorkload(const FaultOptions& faults, int streams,
                                  double duration_sec) {
  Disk disk(TestDiskParameters(), DiskOptions{true, faults});
  StrandStore store(&disk);
  obs::TraceLog log;
  obs::ContinuityAuditor auditor{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::MetricsRegistry registry;
  obs::MetricsSink metrics(&registry);
  obs::TeeSink tee;
  tee.Add(&log);
  tee.Add(&auditor);
  tee.Add(&metrics);
  store.set_trace_sink(&tee);
  disk.set_trace_sink(&metrics);  // device events feed metrics only

  ContinuityModel model(TestStorage(), TestVideoDevice());
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  EXPECT_TRUE(placement.ok());

  std::vector<PlaybackRequest> requests;
  for (int i = 0; i < streams; ++i) {
    VideoSource source(TestVideo(), 1000 + static_cast<uint64_t>(i));
    Result<RecordingResult> recorded = RecordVideo(&store, &source, *placement, duration_sec);
    EXPECT_TRUE(recorded.ok());
    Result<const Strand*> strand = store.Get(recorded->strand);
    EXPECT_TRUE(strand.ok());
    PlaybackRequest request;
    for (int64_t b = 0; b < (*strand)->block_count(); ++b) {
      request.blocks.push_back(*(*strand)->index().Lookup(b));
    }
    request.block_duration = (*strand)->info().BlockDuration();
    request.spec = RequestSpec{TestVideo(), placement->granularity};
    requests.push_back(std::move(request));
  }

  Simulator sim;
  AdmissionControl admission(TestStorage(), std::max(store.AverageScatteringSec(), 1e-4));
  SchedulerOptions options;
  options.trace = &tee;
  ServiceScheduler scheduler(&store, &sim, admission, options);
  std::vector<RequestId> ids;
  for (PlaybackRequest& request : requests) {
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    EXPECT_TRUE(id.ok()) << id.status().message();
    if (id.ok()) {
      ids.push_back(*id);
    }
  }
  scheduler.RunUntilIdle();

  WorkloadResult result;
  for (RequestId id : ids) {
    Result<RequestStats> stats = scheduler.stats(id);
    EXPECT_TRUE(stats.ok());
    result.stats.push_back(*stats);
    result.faults += stats->faults_seen;
    result.retried += stats->blocks_retried;
    result.skipped += stats->blocks_skipped;
    result.violations += stats->continuity_violations;
  }
  result.auditor_clean = auditor.Clean();
  result.auditor_report = auditor.Report();
  result.metrics_retries = registry.counter("scheduler.block_retries").value();
  result.metrics_skips = registry.counter("scheduler.blocks_skipped").value();
  result.end_time = sim.Now();
  return result;
}

TEST(FaultySchedulerTest, FourStreamsSurviveTransientFaults) {
  FaultOptions faults;
  faults.seed = 42;
  faults.read_fault_rate = 0.01;
  const WorkloadResult result = RunFaultedWorkload(faults, 4, 12.0);
  ASSERT_EQ(result.stats.size(), 4u);
  for (const RequestStats& stats : result.stats) {
    EXPECT_TRUE(stats.completed);
    EXPECT_EQ(stats.blocks_done, stats.blocks_total);
    EXPECT_EQ(stats.continuity_violations, 0) << "request " << stats.id;
  }
  // The schedule must actually have exercised the fault path.
  EXPECT_GT(result.faults, 0);
  EXPECT_GT(result.retried, 0);
  // Retries stayed inside the Eq. 11 slack: the strict auditor is clean.
  EXPECT_TRUE(result.auditor_clean) << result.auditor_report;
  // The metrics pipeline agrees with the per-request counters.
  EXPECT_EQ(result.metrics_retries, result.retried);
  EXPECT_EQ(result.metrics_skips, result.skipped);
}

TEST(FaultySchedulerTest, SameSeedReproducesTheRun) {
  FaultOptions faults;
  faults.seed = 7;
  faults.read_fault_rate = 0.02;
  const WorkloadResult first = RunFaultedWorkload(faults, 3, 4.0);
  const WorkloadResult second = RunFaultedWorkload(faults, 3, 4.0);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.retried, second.retried);
  EXPECT_EQ(first.skipped, second.skipped);
  EXPECT_EQ(first.end_time, second.end_time);
  ASSERT_EQ(first.stats.size(), second.stats.size());
  for (size_t i = 0; i < first.stats.size(); ++i) {
    EXPECT_EQ(first.stats[i].completion_time, second.stats[i].completion_time);
    EXPECT_EQ(first.stats[i].faults_seen, second.stats[i].faults_seen);
  }
}

TEST(FaultySchedulerTest, DisabledInjectionIsBitIdenticalToSeed) {
  const WorkloadResult plain = RunFaultedWorkload(FaultOptions{}, 2, 3.0);
  FaultOptions seeded_but_off;
  seeded_but_off.seed = 123456;
  const WorkloadResult seeded = RunFaultedWorkload(seeded_but_off, 2, 3.0);
  EXPECT_EQ(plain.faults, 0);
  EXPECT_EQ(seeded.faults, 0);
  EXPECT_EQ(plain.end_time, seeded.end_time);
  ASSERT_EQ(plain.stats.size(), seeded.stats.size());
  for (size_t i = 0; i < plain.stats.size(); ++i) {
    EXPECT_EQ(plain.stats[i].completion_time, seeded.stats[i].completion_time);
    EXPECT_EQ(plain.stats[i].startup_latency, seeded.stats[i].startup_latency);
  }
}

TEST(FaultySchedulerTest, BadBlockIsSkippedNotFatal) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);
  ContinuityModel model(TestStorage(), TestVideoDevice());
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  ASSERT_TRUE(placement.ok());
  VideoSource source(TestVideo(), 77);
  Result<RecordingResult> recorded = RecordVideo(&store, &source, *placement, 4.0);
  ASSERT_TRUE(recorded.ok());
  Result<const Strand*> strand = store.Get(recorded->strand);
  ASSERT_TRUE(strand.ok());

  // Condemn the middle block's extent after recording.
  const int64_t victim = (*strand)->block_count() / 2;
  Result<PrimaryEntry> entry = (*strand)->index().Lookup(victim);
  ASSERT_TRUE(entry.ok());
  disk.fault_injector().MarkBad(entry->sector, entry->sector_count);

  PlaybackRequest request;
  for (int64_t b = 0; b < (*strand)->block_count(); ++b) {
    request.blocks.push_back(*(*strand)->index().Lookup(b));
  }
  request.block_duration = (*strand)->info().BlockDuration();
  request.spec = RequestSpec{TestVideo(), placement->granularity};
  const int64_t total = static_cast<int64_t>(request.blocks.size());

  Simulator sim;
  AdmissionControl admission(TestStorage(), std::max(store.AverageScatteringSec(), 1e-4));
  ServiceScheduler scheduler(&store, &sim, admission);
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  scheduler.RunUntilIdle();
  Result<RequestStats> stats = scheduler.stats(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->blocks_done, total);     // the stream ran to the end
  EXPECT_EQ(stats->blocks_skipped, 1);      // one degraded frame
  EXPECT_EQ(stats->blocks_retried, 0);      // bad sectors are not retried
  EXPECT_EQ(stats->faults_seen, 1);
}

TEST(FaultySchedulerTest, ResumeAfterSlotGivenAwayIsRejectedUnderFaults) {
  FaultOptions faults;
  faults.seed = 9;
  faults.read_fault_rate = 0.01;
  Disk disk(TestDiskParameters(), DiskOptions{true, faults});
  StrandStore store(&disk);
  ContinuityModel model(TestStorage(), TestVideoDevice());
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  ASSERT_TRUE(placement.ok());
  VideoSource source(TestVideo(), 31);
  Result<RecordingResult> recorded = RecordVideo(&store, &source, *placement, 2.0);
  ASSERT_TRUE(recorded.ok());
  Result<const Strand*> strand = store.Get(recorded->strand);
  ASSERT_TRUE(strand.ok());
  PlaybackRequest prototype;
  for (int64_t b = 0; b < (*strand)->block_count(); ++b) {
    prototype.blocks.push_back(*(*strand)->index().Lookup(b));
  }
  prototype.block_duration = (*strand)->info().BlockDuration();
  prototype.spec = RequestSpec{TestVideo(), placement->granularity};

  Simulator sim;
  AdmissionControl admission(TestStorage(), std::max(store.AverageScatteringSec(), 1e-4));
  ServiceScheduler scheduler(&store, &sim, admission);

  // Fill the admission ceiling.
  std::vector<RequestId> admitted;
  for (int i = 0; i < 64; ++i) {
    Result<RequestId> id = scheduler.SubmitPlayback(prototype);
    if (!id.ok()) {
      break;
    }
    admitted.push_back(*id);
  }
  ASSERT_GE(admitted.size(), 2u);

  // A destructive pause releases the slot; a newcomer takes it.
  ASSERT_TRUE(scheduler.Pause(admitted.front(), /*destructive=*/true).ok());
  Result<RequestId> newcomer = scheduler.SubmitPlayback(prototype);
  ASSERT_TRUE(newcomer.ok());

  // The paused request's slot is gone: Resume must re-run admission and
  // fail, fault-induced retry load notwithstanding.
  Status resume = scheduler.Resume(admitted.front());
  EXPECT_FALSE(resume.ok());
  EXPECT_EQ(resume.code(), ErrorCode::kAdmissionRejected);
}

// --- Repair interruption and relocation --------------------------------------

class FaultyRepairTest : public ::testing::Test {
 protected:
  FaultyRepairTest() : disk_(TestDiskParameters()), store_(&disk_) {}

  StrandId StrandNearCylinder(int64_t cylinder, int64_t blocks, double max_scattering_sec) {
    const StrandPlacement placement{2, 0.0, max_scattering_sec};
    Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
    EXPECT_TRUE(writer.ok());
    const int64_t per_cylinder = disk_.model().params().SectorsPerCylinder();
    EXPECT_TRUE((*writer)->SetAnchor(cylinder * per_cylinder + 1).ok());
    const int64_t block_bytes = 2 * 16384 / 8;
    for (int64_t b = 0; b < blocks; ++b) {
      EXPECT_TRUE((*writer)->AppendBlock(
          std::vector<uint8_t>(block_bytes, static_cast<uint8_t>(b + 1))).ok());
    }
    Result<StrandId> id = (*writer)->Finish(blocks * 2);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  Disk disk_;
  StrandStore store_;
};

TEST_F(FaultyRepairTest, SeamRepairInterruptedMidChainIsResumable) {
  const double bound = 0.020;
  const StrandId a = StrandNearCylinder(5, 3, bound);
  const StrandId b = StrandNearCylinder(190, 40, bound);

  // Dry run on the healthy store tells us the chain length.
  Result<RepairOutcome> dry = RepairSeam(&store_, a, 2, b, 0, 40);
  ASSERT_TRUE(dry.ok());
  ASSERT_FALSE(dry->interrupted);
  ASSERT_GT(dry->blocks_copied, 1) << "seam too easy to exercise interruption";
  ASSERT_TRUE(store_.Delete(dry->copy_strand).ok());

  // Condemn the original of the second chain block; the re-run copies one
  // block, then faults, finishes the partial copy and reports resumably.
  Result<const Strand*> strand_b = store_.Get(b);
  ASSERT_TRUE(strand_b.ok());
  Result<PrimaryEntry> victim = (*strand_b)->index().Lookup(1);
  ASSERT_TRUE(victim.ok());
  disk_.fault_injector().MarkBad(victim->sector, victim->sector_count);

  Result<RepairOutcome> outcome = RepairSeam(&store_, a, 2, b, 0, 40);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->interrupted);
  EXPECT_EQ(outcome->fault.code(), ErrorCode::kBadSector);
  EXPECT_EQ(outcome->blocks_copied, 1);
  ASSERT_NE(outcome->copy_strand, kNullStrand);

  // The partial copy is a real strand whose seam to `a` is healed.
  Result<double> new_gap = SeamGapSec(&store_, a, 2, outcome->copy_strand, 0);
  ASSERT_TRUE(new_gap.ok());
  EXPECT_LE(*new_gap, bound + 1e-9);

  // Relocating the condemned block heals the source for the next pass.
  Result<BlockRelocationOutcome> relocated = RelocateBlocks(&store_, b, 1, 1);
  ASSERT_TRUE(relocated.ok());
  EXPECT_EQ(relocated->blocks_copied, 1);
  ASSERT_NE(relocated->copy_strand, kNullStrand);
  std::vector<uint8_t> rescued;
  ASSERT_TRUE(store_.ReadBlock(relocated->copy_strand, 0, &rescued).ok());
  ASSERT_FALSE(rescued.empty());
  EXPECT_EQ(rescued[0], 2);  // block 1's fill byte survived the salvage
}

TEST_F(FaultyRepairTest, InterruptionOnFirstBlockCopiesNothing) {
  const double bound = 0.020;
  const StrandId a = StrandNearCylinder(5, 3, bound);
  const StrandId b = StrandNearCylinder(190, 40, bound);
  Result<const Strand*> strand_b = store_.Get(b);
  ASSERT_TRUE(strand_b.ok());
  Result<PrimaryEntry> first = (*strand_b)->index().Lookup(0);
  ASSERT_TRUE(first.ok());
  disk_.fault_injector().MarkBad(first->sector, first->sector_count);

  Result<RepairOutcome> outcome = RepairSeam(&store_, a, 2, b, 0, 40);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->interrupted);
  EXPECT_EQ(outcome->blocks_copied, 0);
  EXPECT_EQ(outcome->copy_strand, kNullStrand);
}

TEST_F(FaultyRepairTest, RelocationEmitsTraceEvents) {
  obs::TraceLog log;
  store_.set_trace_sink(&log);
  const StrandId id = StrandNearCylinder(50, 4, 0.020);
  Result<const Strand*> strand = store_.Get(id);
  ASSERT_TRUE(strand.ok());
  Result<PrimaryEntry> victim = (*strand)->index().Lookup(2);
  ASSERT_TRUE(victim.ok());
  disk_.fault_injector().MarkBad(victim->sector, victim->sector_count);

  Result<BlockRelocationOutcome> outcome = RelocateBlocks(&store_, id, 2, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->blocks_copied, 2);
  int64_t relocation_events = 0;
  for (const obs::TraceEvent& event : log.events()) {
    if (event.kind == obs::TraceEventKind::kBlockRelocated) {
      ++relocation_events;
    }
  }
  EXPECT_EQ(relocation_events, 2);
}

// --- StrandWriter leak regression --------------------------------------------

TEST(StrandWriterFaultTest, FailedAppendReturnsItsExtent) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);
  const StrandPlacement placement{2, 0.0, 0.020};
  Result<std::unique_ptr<StrandWriter>> writer = store.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t free_before = store.allocator().free_sectors();

  // Every write fails: the whole disk is condemned.
  disk.fault_injector().MarkBad(0, disk.total_sectors());
  const std::vector<uint8_t> payload(2 * 16384 / 8, 1);
  Result<SimDuration> append = (*writer)->AppendBlock(payload);
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.status().code(), ErrorCode::kBadSector);
  // The failed block's extent went back to the pool (the historic leak).
  EXPECT_EQ(store.allocator().free_sectors(), free_before);

  // After the defect clears, the same writer can continue.
  disk.fault_injector().ClearBad(0, disk.total_sectors());
  EXPECT_TRUE((*writer)->AppendBlock(payload).ok());
  EXPECT_TRUE((*writer)->Finish(2).ok());
}

}  // namespace
}  // namespace vafs
