#include <gtest/gtest.h>

#include "src/msm/interleaved.h"
#include "src/msm/service_scheduler.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class InterleavedTest : public ::testing::Test {
 protected:
  InterleavedTest() : disk_(TestDiskParameters()), store_(&disk_) {}

  // TestVideo at 30 fps with a 3000-sample/s audio companion: 100
  // samples per frame.
  MediaProfile CompanionAudio() { return MediaProfile{Medium::kAudio, 3000.0, 8}; }

  Disk disk_;
  StrandStore store_;
};

TEST_F(InterleavedTest, LayoutDerivation) {
  Result<InterleavedLayout> layout = MakeInterleavedLayout(TestVideo(), CompanionAudio());
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->frame_bytes, 2048);
  EXPECT_EQ(layout->samples_per_frame, 100);
  EXPECT_EQ(layout->UnitBytes(), 2148);
  // The combined profile is one video-rate stream carrying both media.
  EXPECT_DOUBLE_EQ(layout->Profile().units_per_sec, 30.0);
  EXPECT_EQ(layout->Profile().bits_per_unit, 2148 * 8);
}

TEST_F(InterleavedTest, LayoutRejectsNonIntegerRatio) {
  // 44 kHz is not a multiple of 30 fps.
  EXPECT_FALSE(MakeInterleavedLayout(TestVideo(), MediaProfile{Medium::kAudio, 44000, 8}).ok());
  // Swapped media kinds.
  EXPECT_FALSE(MakeInterleavedLayout(CompanionAudio(), TestVideo()).ok());
  // 16-bit samples unsupported.
  EXPECT_FALSE(MakeInterleavedLayout(TestVideo(), MediaProfile{Medium::kAudio, 3000, 16}).ok());
}

TEST_F(InterleavedTest, RecordAndSeparateRoundTrip) {
  Result<InterleavedLayout> layout = MakeInterleavedLayout(TestVideo(), CompanionAudio());
  ASSERT_TRUE(layout.ok());
  VideoSource video(TestVideo(), 7);
  VideoSource reference_video(TestVideo(), 7);
  AudioSource audio(CompanionAudio(), SpeechProfile{}, 7);
  AudioSource reference_audio(CompanionAudio(), SpeechProfile{}, 7);

  const StrandPlacement placement{4, 0.0, 0.08};
  Result<RecordingResult> recorded =
      RecordInterleavedAv(&store_, &video, &audio, *layout, placement, 2.0);
  ASSERT_TRUE(recorded.ok());
  EXPECT_EQ(recorded->units_recorded, 60);
  EXPECT_EQ(recorded->blocks_total, 15);

  // Read a block back and separate: both media match their sources.
  std::vector<uint8_t> payload;
  ASSERT_TRUE(store_.ReadBlock(recorded->strand, 2, &payload).ok());
  for (int64_t u = 0; u < 4; ++u) {
    Result<SeparatedUnit> unit = SeparateUnit(*layout, payload, u);
    ASSERT_TRUE(unit.ok());
    const int64_t frame = 2 * 4 + u;
    EXPECT_EQ(unit->frame, reference_video.FramePayload(frame)) << "frame " << frame;
  }
  // Audio stream: frames 0..59 consumed 100 samples each in order.
  std::vector<uint8_t> expected_audio = reference_audio.NextSamples(60 * 100);
  std::vector<uint8_t> block0;
  ASSERT_TRUE(store_.ReadBlock(recorded->strand, 0, &block0).ok());
  Result<SeparatedUnit> first = SeparateUnit(*layout, block0, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(std::equal(first->samples.begin(), first->samples.end(),
                         expected_audio.begin()));
}

TEST_F(InterleavedTest, SeparateRejectsOutOfRange) {
  Result<InterleavedLayout> layout = MakeInterleavedLayout(TestVideo(), CompanionAudio());
  ASSERT_TRUE(layout.ok());
  std::vector<uint8_t> block(static_cast<size_t>(layout->UnitBytes() * 2));
  EXPECT_TRUE(SeparateUnit(*layout, block, 1).ok());
  EXPECT_FALSE(SeparateUnit(*layout, block, 2).ok());
  EXPECT_FALSE(SeparateUnit(*layout, block, -1).ok());
}

TEST_F(InterleavedTest, OneRequestServesBothMedia) {
  // The paper's point: heterogeneous blocks give implicit synchronization
  // and consume ONE admission slot where homogeneous strands need two.
  Result<InterleavedLayout> layout = MakeInterleavedLayout(TestVideo(), CompanionAudio());
  ASSERT_TRUE(layout.ok());
  VideoSource video(TestVideo(), 9);
  AudioSource audio(CompanionAudio(), SpeechProfile{}, 9);
  const StrandPlacement placement{4, 0.0, 0.08};
  Result<RecordingResult> recorded =
      RecordInterleavedAv(&store_, &video, &audio, *layout, placement, 4.0);
  ASSERT_TRUE(recorded.ok());
  Result<const Strand*> strand = store_.Get(recorded->strand);
  ASSERT_TRUE(strand.ok());

  Simulator sim;
  AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
  ServiceScheduler scheduler(&store_, &sim, admission);
  PlaybackRequest request;
  for (int64_t b = 0; b < (*strand)->block_count(); ++b) {
    request.blocks.push_back(*(*strand)->index().Lookup(b));
  }
  request.block_duration = (*strand)->info().BlockDuration();
  request.spec = RequestSpec{layout->Profile(), placement.granularity};
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  scheduler.RunUntilIdle();
  EXPECT_TRUE(scheduler.stats(*id)->completed);
  EXPECT_EQ(scheduler.stats(*id)->continuity_violations, 0);
  EXPECT_EQ(scheduler.active_request_count(), 0);
}

}  // namespace
}  // namespace vafs
