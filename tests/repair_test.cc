#include <gtest/gtest.h>

#include "src/core/editing_bounds.h"
#include "src/msm/recorder.h"
#include "src/msm/scattering_repair.h"
#include "src/obs/auditor.h"
#include "src/obs/trace.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  RepairTest() : disk_(TestDiskParameters()), store_(&disk_) {
    tee_.Add(&log_);
    tee_.Add(&auditor_);
    store_.set_trace_sink(&tee_);
  }

  // Strict mode: every block placed during the test (original strands and
  // repair copies alike) must honour its strand's scattering contract.
  void TearDown() override { EXPECT_TRUE(auditor_.Clean()) << auditor_.Report(); }

  // Records a strand whose blocks all sit near `cylinder` (tight window).
  StrandId StrandNearCylinder(int64_t cylinder, int64_t blocks, double max_scattering_sec) {
    const StrandPlacement placement{2, 0.0, max_scattering_sec};
    Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
    EXPECT_TRUE(writer.ok());
    const int64_t per_cylinder = disk_.model().params().SectorsPerCylinder();
    EXPECT_TRUE((*writer)->SetAnchor(cylinder * per_cylinder + 1).ok());
    const int64_t block_bytes = 2 * 16384 / 8;
    for (int64_t b = 0; b < blocks; ++b) {
      EXPECT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(block_bytes, 1)).ok());
    }
    Result<StrandId> id = (*writer)->Finish(blocks * 2);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  Disk disk_;
  StrandStore store_;
  obs::TraceLog log_;
  obs::ContinuityAuditor auditor_;
  obs::TeeSink tee_;
};

TEST_F(RepairTest, AdjacentStrandsNeedNoRepair) {
  // Both strands near cylinder 10: the seam gap is tiny.
  const double bound = 0.015;  // covers ~19 cylinders on this disk
  const StrandId a = StrandNearCylinder(10, 5, bound);
  const StrandId b = StrandNearCylinder(12, 5, bound);
  Result<double> gap = SeamGapSec(&store_, a, 4, b, 0);
  ASSERT_TRUE(gap.ok());
  EXPECT_LE(*gap, bound);
  Result<RepairOutcome> outcome = RepairSeam(&store_, a, 4, b, 0, 5);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->already_continuous);
  EXPECT_EQ(outcome->blocks_copied, 0);
}

TEST_F(RepairTest, DistantSeamGetsRepaired) {
  // Strand a near cylinder 5, strand b near cylinder 190; the bound
  // covers ~64 cylinders, the seam spans 185.
  const double bound = 0.020;
  const StrandId a = StrandNearCylinder(5, 5, bound);
  const StrandId b = StrandNearCylinder(190, 40, bound);
  Result<double> gap = SeamGapSec(&store_, a, 4, b, 0);
  ASSERT_TRUE(gap.ok());
  ASSERT_GT(*gap, bound);

  Result<RepairOutcome> outcome = RepairSeam(&store_, a, 4, b, 0, 40);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->already_continuous);
  EXPECT_GT(outcome->blocks_copied, 0);
  EXPECT_GT(outcome->copy_time, 0);
  ASSERT_NE(outcome->copy_strand, kNullStrand);

  // The copy strand's first block is reachable from a's last block.
  Result<const Strand*> copy = store_.Get(outcome->copy_strand);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ((*copy)->block_count(), outcome->blocks_copied);
  Result<double> new_gap = SeamGapSec(&store_, a, 4, outcome->copy_strand, 0);
  ASSERT_TRUE(new_gap.ok());
  EXPECT_LE(*new_gap, bound + 1e-9);

  // And the chain's end reaches b's remaining blocks within the bound.
  Result<double> tail_gap = SeamGapSec(&store_, outcome->copy_strand,
                                       outcome->blocks_copied - 1, b, outcome->blocks_copied);
  ASSERT_TRUE(tail_gap.ok());
  EXPECT_LE(*tail_gap, bound + 1e-9);
}

TEST_F(RepairTest, CopiedBlocksPreserveContent) {
  const double bound = 0.020;
  const StrandId a = StrandNearCylinder(5, 3, bound);

  // Strand b with distinguishable content, far away.
  const StrandPlacement placement{2, 0.0, bound};
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t per_cylinder = disk_.model().params().SectorsPerCylinder();
  ASSERT_TRUE((*writer)->SetAnchor(190 * per_cylinder + 1).ok());
  const int64_t block_bytes = 2 * 16384 / 8;
  for (int64_t b = 0; b < 30; ++b) {
    ASSERT_TRUE(
        (*writer)->AppendBlock(std::vector<uint8_t>(block_bytes, static_cast<uint8_t>(b + 1)))
            .ok());
  }
  Result<StrandId> b_id = (*writer)->Finish(60);
  ASSERT_TRUE(b_id.ok());

  Result<RepairOutcome> outcome = RepairSeam(&store_, a, 2, *b_id, 0, 30);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GT(outcome->blocks_copied, 0);
  for (int64_t i = 0; i < outcome->blocks_copied; ++i) {
    std::vector<uint8_t> copied;
    ASSERT_TRUE(store_.ReadBlock(outcome->copy_strand, i, &copied).ok());
    std::vector<uint8_t> original;
    ASSERT_TRUE(store_.ReadBlock(*b_id, i, &original).ok());
    EXPECT_EQ(copied, original) << "block " << i;
  }
}

TEST_F(RepairTest, CopyCountRespectsEq20Bound) {
  const double bound = 0.020;
  const StrandId a = StrandNearCylinder(5, 3, bound);
  const StrandId b = StrandNearCylinder(190, 60, bound);
  Result<RepairOutcome> outcome = RepairSeam(&store_, a, 2, b, 0, 60);
  ASSERT_TRUE(outcome.ok());
  // The strand's realized minimum scattering: consecutive copies land at
  // least a rotational latency apart. Eq. 20's dense bound with
  // l_ds_lower = one latency gives the worst case.
  const double l_lower = TestStorage().avg_rotational_latency_sec;
  const int64_t dense_bound =
      EditCopyBound(TestStorage().max_access_gap_sec, l_lower, DiskOccupancy::kDense);
  EXPECT_LE(outcome->blocks_copied, dense_bound);
}

TEST_F(RepairTest, RepairRespectsAvailabilityLimit) {
  const double bound = 0.020;
  const StrandId a = StrandNearCylinder(5, 3, bound);
  const StrandId b = StrandNearCylinder(190, 60, bound);
  // Only 1 block of b may be consumed: the chain is truncated even though
  // the seam is not yet bridged.
  Result<RepairOutcome> outcome = RepairSeam(&store_, a, 2, b, 0, 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome->blocks_copied, 1);
}

TEST_F(RepairTest, UnknownStrandsRejected) {
  EXPECT_FALSE(RepairSeam(&store_, 999, 0, 998, 0, 1).ok());
  EXPECT_FALSE(SeamGapSec(&store_, 999, 0, 998, 0).ok());
}

}  // namespace
}  // namespace vafs
