// Wall-clock execution engine: determinism and fault-accounting tests.
//
// The engine (DESIGN.md section 12) runs each planned round's member waves
// as real parallel tasks on a WorkerPool. The contract under test here is
// the hard one: for a fixed seed and configuration, every simulated-time
// artifact — trace log, metrics JSON, SLO verdicts, Perfetto export, the
// payload digest — is byte-identical for any worker count, including the
// inline single-worker reference. Wall-clock speed may change; simulated
// results may not.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/disk/disk_array.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/rope/rope_server.h"
#include "src/sim/simulator.h"
#include "src/util/worker_pool.h"
#include "src/vafs/persistence.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

constexpr int kMembers = 4;
constexpr int kStreams = 3;

// Every simulated-time artifact of one scheduler run, rendered to bytes.
struct RunImage {
  std::string trace;              // TraceEventSummary of the full log
  std::string metrics;            // MetricsRegistry JSON
  std::string slo;                // SloReport JSON
  std::string perfetto;           // serial PerfettoExporter output
  std::string perfetto_parallel;  // pool-backed export of the same log
  uint64_t payload_digest = 0;
  int64_t rounds = 0;
  SimTime completion = 0;
  int64_t blocks_done = 0;
  int64_t blocks_skipped = 0;
  bool auditor_clean = false;
  std::string auditor_report;
};

// One fully deterministic planned-round workload over a kMembers array,
// dispatched on `workers` wall-clock workers. With `fault_member`, member 1
// carries a whole-disk bad range, so every wave touching it faults
// mid-wave and the de-coalesced retry/skip path runs.
RunImage RunWorkload(int workers, bool fault_member) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);

  obs::TraceLog log;
  obs::ContinuityAuditor auditor{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::MetricsRegistry registry;
  obs::MetricsSink metrics_sink(&registry);
  obs::SloTracker slo;
  obs::TeeSink tee;
  tee.Add(&log);
  tee.Add(&auditor);
  tee.Add(&metrics_sink);
  tee.Add(&slo);
  store.set_trace_sink(&tee);

  // Record the strands (seeded, before any scheduling).
  ContinuityModel model(TestStorage(), TestVideoDevice());
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  EXPECT_TRUE(placement.ok());
  std::vector<PlaybackRequest> requests;
  for (int i = 0; i < kStreams; ++i) {
    VideoSource source(TestVideo(), 100 + static_cast<uint64_t>(i));
    Result<RecordingResult> recorded = RecordVideo(&store, &source, *placement, 3.0);
    EXPECT_TRUE(recorded.ok());
    Result<const Strand*> strand = store.Get(recorded->strand);
    EXPECT_TRUE(strand.ok());
    PlaybackRequest request;
    for (int64_t b = 0; b < (*strand)->block_count(); ++b) {
      request.blocks.push_back(*(*strand)->index().Lookup(b));
    }
    request.block_duration = (*strand)->info().BlockDuration();
    request.spec = RequestSpec{TestVideo(), placement->granularity};
    requests.push_back(std::move(request));
  }

  DiskArray array(TestDiskParameters(), kMembers);
  for (int m = 0; m < kMembers; ++m) {
    array.member(m).set_trace_sink(&tee);
  }
  if (fault_member) {
    array.member(1).fault_injector().MarkBad(0, array.member(1).total_sectors());
  }

  WorkerPool pool(workers);
  Simulator sim;
  SchedulerOptions options;
  options.trace = &tee;
  options.service_order = ServiceOrder::kPlanned;
  options.disk_array = &array;
  options.worker_pool = &pool;
  options.verify_payloads = true;
  const double avg = std::max(store.AverageScatteringSec(), 1e-4);
  ServiceScheduler scheduler(&store, &sim, AdmissionControl(TestStorage(), avg), options);

  std::vector<RequestId> ids;
  for (PlaybackRequest& request : requests) {
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    EXPECT_TRUE(id.ok());
    if (id.ok()) {
      ids.push_back(*id);
    }
  }
  scheduler.RunUntilIdle();

  RunImage image;
  for (const obs::TraceEvent& event : log.events()) {
    image.trace += obs::TraceEventSummary(event);
    image.trace += '\n';
  }
  image.metrics = registry.ToJson();
  image.slo = slo.Report().ToJson();
  obs::PerfettoExporter exporter(&log.events());
  image.perfetto = exporter.Export();
  image.perfetto_parallel = exporter.Export(&pool);
  image.payload_digest = scheduler.payload_digest();
  image.rounds = scheduler.rounds_executed();
  image.completion = sim.Now();
  for (RequestId id : ids) {
    Result<RequestStats> stats = scheduler.stats(id);
    EXPECT_TRUE(stats.ok());
    if (stats.ok()) {
      image.blocks_done += stats->blocks_done;
      image.blocks_skipped += stats->blocks_skipped;
      image.completion = std::max(image.completion, stats->completion_time);
    }
  }
  image.auditor_clean = auditor.Clean();
  image.auditor_report = auditor.Report();
  return image;
}

TEST(WallclockDeterminismTest, WorkerCountsProduceByteIdenticalTelemetry) {
  const RunImage reference = RunWorkload(1, /*fault_member=*/false);
  EXPECT_TRUE(reference.auditor_clean) << reference.auditor_report;
  EXPECT_GT(reference.rounds, 1);
  EXPECT_GT(reference.completion, 0);
  EXPECT_GT(reference.blocks_done, 0);
  EXPECT_FALSE(reference.trace.empty());
  // The pool-backed Perfetto export must already match the serial one in
  // the reference run (1 worker serializes inline).
  EXPECT_EQ(reference.perfetto_parallel, reference.perfetto);

  for (int workers : {2, 8}) {
    const RunImage image = RunWorkload(workers, /*fault_member=*/false);
    EXPECT_TRUE(image.auditor_clean) << image.auditor_report;
    EXPECT_EQ(image.trace, reference.trace) << "workers=" << workers;
    EXPECT_EQ(image.metrics, reference.metrics) << "workers=" << workers;
    EXPECT_EQ(image.slo, reference.slo) << "workers=" << workers;
    EXPECT_EQ(image.perfetto, reference.perfetto) << "workers=" << workers;
    EXPECT_EQ(image.perfetto_parallel, reference.perfetto) << "workers=" << workers;
    EXPECT_EQ(image.payload_digest, reference.payload_digest) << "workers=" << workers;
    EXPECT_EQ(image.rounds, reference.rounds) << "workers=" << workers;
    EXPECT_EQ(image.completion, reference.completion) << "workers=" << workers;
    EXPECT_EQ(image.blocks_done, reference.blocks_done) << "workers=" << workers;
  }
}

TEST(WallclockDeterminismTest, FaultedRunsAreByteIdenticalAcrossWorkerCounts) {
  const RunImage reference = RunWorkload(1, /*fault_member=*/true);
  // One member's platter is all bad range: waves fault mid-round, retries
  // run, blocks get skipped — the degraded path must be deterministic too.
  EXPECT_GT(reference.blocks_skipped, 0);
  EXPECT_GT(reference.completion, 0);
  for (int workers : {2, 8}) {
    const RunImage image = RunWorkload(workers, /*fault_member=*/true);
    EXPECT_EQ(image.trace, reference.trace) << "workers=" << workers;
    EXPECT_EQ(image.metrics, reference.metrics) << "workers=" << workers;
    EXPECT_EQ(image.slo, reference.slo) << "workers=" << workers;
    EXPECT_EQ(image.payload_digest, reference.payload_digest) << "workers=" << workers;
    EXPECT_EQ(image.blocks_skipped, reference.blocks_skipped) << "workers=" << workers;
    EXPECT_EQ(image.completion, reference.completion) << "workers=" << workers;
  }
}

TEST(WallclockDiskArrayTest, FaultedMemberChargesMechanicalTimeIntoCompletion) {
  // Eq. 11 accounting under faults: the batch is not done until the
  // slowest arm stops, and a faulted member's arm still moved — its
  // last_fault_service() must be inside completion_time. Identical for
  // inline and pooled dispatch.
  for (int workers : {1, 4}) {
    DiskArray array(TestDiskParameters(), 2);
    WorkerPool pool(workers);
    array.set_worker_pool(&pool);
    array.member(1).fault_injector().MarkBad(100, 8);
    const std::vector<DiskArray::BatchRequest> batch = {{0, 0, 8}, {1, 100, 8}};
    Result<DiskArray::BatchOutcome> outcome = array.ReadBatch(batch, nullptr);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->per_request.size(), 2u);
    EXPECT_TRUE(outcome->per_request[0].status.ok());
    EXPECT_FALSE(outcome->per_request[1].status.ok());
    EXPECT_GT(outcome->per_request[1].service, 0) << "faulted arm consumed no mechanism";
    EXPECT_EQ(outcome->per_request[1].service, array.member(1).last_fault_service());
    EXPECT_EQ(outcome->completion_time,
              std::max(outcome->per_request[0].service, outcome->per_request[1].service));
  }
}

TEST(WallclockDiskArrayTest, PayloadChecksumsMatchAcrossWorkerCounts) {
  // Write distinct payloads to each member, then read them back with
  // checksumming on: the per-request CRCs must be worker-count invariant.
  std::vector<uint64_t> reference;
  for (int workers : {1, 4}) {
    DiskArray array(TestDiskParameters(), 3);
    WorkerPool pool(workers);
    array.set_worker_pool(&pool);
    array.set_checksum_payloads(true);
    const int64_t sector_bytes = array.member(0).bytes_per_sector();
    std::vector<std::vector<uint8_t>> data;
    std::vector<DiskArray::BatchRequest> batch;
    for (int m = 0; m < 3; ++m) {
      batch.push_back(DiskArray::BatchRequest{m, 64 * (m + 1), 4});
      data.push_back(
          std::vector<uint8_t>(static_cast<size_t>(4 * sector_bytes), static_cast<uint8_t>(m + 7)));
    }
    Result<DiskArray::BatchOutcome> wrote = array.WriteBatch(batch, data);
    ASSERT_TRUE(wrote.ok());
    ASSERT_TRUE(wrote->AllOk());
    std::vector<std::vector<uint8_t>> read;
    Result<DiskArray::BatchOutcome> outcome = array.ReadBatch(batch, &read);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->AllOk());
    std::vector<uint64_t> crcs;
    for (size_t i = 0; i < outcome->per_request.size(); ++i) {
      EXPECT_EQ(outcome->per_request[i].payload_crc, wrote->per_request[i].payload_crc);
      EXPECT_NE(outcome->per_request[i].payload_crc, 0u);
      crcs.push_back(outcome->per_request[i].payload_crc);
    }
    if (reference.empty()) {
      reference = crcs;
    } else {
      EXPECT_EQ(crcs, reference);
    }
  }
}

TEST(WallclockPersistenceTest, CheckpointRoundTripsThroughPool) {
  Disk disk(TestDiskParameters());
  StrandStore store(&disk);
  ContinuityModel model(TestStorage(), TestVideoDevice());
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  ASSERT_TRUE(placement.ok());
  VideoSource source(TestVideo(), 9);
  ASSERT_TRUE(RecordVideo(&store, &source, *placement, 2.0).ok());

  // Save under a 4-worker pool (chunk-parallel catalog CRC), reload under
  // the same pool; the serial path is already covered by persistence_test.
  WorkerPool pool(4);
  RopeServer ropes(&store);
  Result<ImageReceipt> receipt = SaveImage(&store, &ropes, nullptr, nullptr, &pool);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->valid);
  Result<LoadedImage> image = LoadImage(&disk, &pool);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->strands_recovered, 1);
}

TEST(WallclockWorkerPoolTest, BackgroundSubmitsSurviveConcurrentRunAllBarriers) {
  // The background lane's contract: tasks Submitted from another thread —
  // even while the owner is running RunAll barriers — each execute exactly
  // once, and a final Drain makes their writes visible. The RunAll
  // restriction is on the barrier's own tasks, not on other threads.
  for (int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    WorkerPool pool(workers);
    constexpr int kBackground = 400;
    constexpr int kWaves = 40;
    constexpr int kTasksPerWave = 8;
    std::vector<std::atomic<int>> slots(kBackground);
    for (auto& slot : slots) {
      slot.store(0, std::memory_order_relaxed);
    }
    std::atomic<int64_t> barrier_work{0};
    std::thread producer([&pool, &slots] {
      for (int i = 0; i < kBackground; ++i) {
        pool.Submit([&slots, i] { slots[static_cast<size_t>(i)].fetch_add(1); });
        if (i % 32 == 0) {
          std::this_thread::yield();  // interleave with the barriers
        }
      }
    });
    for (int wave = 0; wave < kWaves; ++wave) {
      std::vector<WorkerPool::Task> tasks;
      tasks.reserve(kTasksPerWave);
      for (int t = 0; t < kTasksPerWave; ++t) {
        tasks.push_back([&barrier_work] { barrier_work.fetch_add(1); });
      }
      pool.RunAll(std::move(tasks));
    }
    producer.join();
    pool.Drain();
    EXPECT_EQ(barrier_work.load(), static_cast<int64_t>(kWaves) * kTasksPerWave);
    for (int i = 0; i < kBackground; ++i) {
      EXPECT_EQ(slots[static_cast<size_t>(i)].load(), 1) << "background task " << i;
    }
  }
}

TEST(WallclockWorkerPoolTest, DrainFromSecondThreadJoinsInFlightWork) {
  // Two threads share the background lane: one submits and drains, the
  // other hammers barriers. Drain must return only once the lane is empty,
  // and neither side may deadlock the other.
  WorkerPool pool(4);
  std::atomic<int64_t> background{0};
  std::atomic<int64_t> barrier_work{0};
  std::thread producer([&pool, &background] {
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 16; ++i) {
        pool.Submit([&background] { background.fetch_add(1); });
      }
      pool.Drain();
      const int64_t seen = background.load();
      ASSERT_GE(seen, (round + 1) * 16) << "Drain returned with work still in flight";
    }
  });
  for (int wave = 0; wave < 40; ++wave) {
    std::vector<WorkerPool::Task> tasks;
    for (int t = 0; t < 4; ++t) {
      tasks.push_back([&barrier_work] { barrier_work.fetch_add(1); });
    }
    pool.RunAll(std::move(tasks));
  }
  producer.join();
  pool.Drain();
  EXPECT_EQ(background.load(), 20 * 16);
  EXPECT_EQ(barrier_work.load(), 40 * 4);
}

}  // namespace
}  // namespace vafs
