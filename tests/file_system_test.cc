#include <gtest/gtest.h>

#include "src/vafs/file_system.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest() : fs_(TestConfig()) {}

  MultimediaFileSystem::RecordResult RecordAv(double duration_sec, uint64_t seed) {
    VideoSource video(TestVideo(), seed);
    AudioSource audio(TestAudio(), SpeechProfile{}, seed);
    Result<MultimediaFileSystem::RecordResult> result =
        fs_.Record("alice", &video, &audio, duration_sec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  MultimediaFileSystem fs_;
};

TEST_F(FileSystemTest, RecordCreatesRopeWithBothStrands) {
  const auto result = RecordAv(2.0, 1);
  EXPECT_NE(result.rope, kNullRope);
  EXPECT_NE(result.video_strand, kNullStrand);
  EXPECT_NE(result.audio_strand, kNullStrand);
  EXPECT_EQ(result.video.units_recorded, 60);
  EXPECT_EQ(result.audio.units_recorded, 8000);
  Result<const Rope*> rope = fs_.rope_server().Find(result.rope);
  ASSERT_TRUE(rope.ok());
  EXPECT_NEAR((*rope)->LengthSec(), 2.0, 0.05);
}

TEST_F(FileSystemTest, RecordValidatesInput) {
  EXPECT_EQ(fs_.Record("alice", nullptr, nullptr, 1.0).status().code(),
            ErrorCode::kInvalidArgument);
  VideoSource video(TestVideo(), 1);
  EXPECT_EQ(fs_.Record("alice", &video, nullptr, -1.0).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FileSystemTest, PlayCompletesWithoutGlitches) {
  const auto recorded = RecordAv(3.0, 2);
  Result<RequestId> request =
      fs_.Play("alice", recorded.rope, Medium::kVideo, TimeInterval{0.0, 3.0});
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  fs_.RunUntilIdle();
  Result<RequestStats> stats = fs_.Stats(*request);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->continuity_violations, 0);
  EXPECT_GT(stats->blocks_done, 0);
}

TEST_F(FileSystemTest, PlayAudioWorksToo) {
  const auto recorded = RecordAv(2.0, 3);
  Result<RequestId> request =
      fs_.Play("alice", recorded.rope, Medium::kAudio, TimeInterval{0.0, 2.0});
  ASSERT_TRUE(request.ok());
  fs_.RunUntilIdle();
  EXPECT_TRUE(fs_.Stats(*request)->completed);
  EXPECT_EQ(fs_.Stats(*request)->continuity_violations, 0);
}

TEST_F(FileSystemTest, PlayMissingMediumRejected) {
  VideoSource video(TestVideo(), 4);
  Result<MultimediaFileSystem::RecordResult> recorded =
      fs_.Record("alice", &video, nullptr, 1.0);
  ASSERT_TRUE(recorded.ok());
  EXPECT_EQ(
      fs_.Play("alice", recorded->rope, Medium::kAudio, TimeInterval{0.0, 1.0}).status().code(),
      ErrorCode::kNotFound);
  EXPECT_EQ(fs_.Play("alice", 999, Medium::kVideo, TimeInterval{0.0, 1.0}).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(FileSystemTest, PauseResumeStopLifecycle) {
  const auto recorded = RecordAv(4.0, 5);
  Result<RequestId> request =
      fs_.Play("alice", recorded.rope, Medium::kVideo, TimeInterval{0.0, 4.0});
  ASSERT_TRUE(request.ok());
  fs_.simulator().RunUntil(SecondsToUsec(0.5));
  ASSERT_TRUE(fs_.Pause(*request, /*destructive=*/false).ok());
  ASSERT_TRUE(fs_.Resume(*request).ok());
  fs_.RunUntilIdle();
  EXPECT_TRUE(fs_.Stats(*request)->completed);

  Result<RequestId> second =
      fs_.Play("alice", recorded.rope, Medium::kVideo, TimeInterval{0.0, 4.0});
  ASSERT_TRUE(second.ok());
  fs_.simulator().RunUntil(fs_.simulator().Now() + SecondsToUsec(0.5));
  ASSERT_TRUE(fs_.Stop(*second).ok());
  fs_.RunUntilIdle();
  EXPECT_TRUE(fs_.Stats(*second)->completed);
}

TEST_F(FileSystemTest, TimedRecordingProducesStrand) {
  Result<RequestId> request = fs_.StartTimedRecording(TestVideo(), 2.0);
  ASSERT_TRUE(request.ok());
  fs_.RunUntilIdle();
  Result<RequestStats> stats = fs_.Stats(*request);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->capture_overflows, 0);
  ASSERT_NE(stats->recorded_strand, kNullStrand);
  Result<const Strand*> strand = fs_.storage_manager().Get(stats->recorded_strand);
  ASSERT_TRUE(strand.ok());
  EXPECT_NEAR((*strand)->info().DurationSec(), 2.0, 0.2);
}

TEST_F(FileSystemTest, ReadRopeBlocksMatchesRecordedContent) {
  VideoSource source(TestVideo(), 6);
  VideoSource reference(TestVideo(), 6);
  Result<MultimediaFileSystem::RecordResult> recorded =
      fs_.Record("alice", &source, nullptr, 1.0);
  ASSERT_TRUE(recorded.ok());
  Result<std::vector<std::vector<uint8_t>>> blocks =
      fs_.ReadRopeBlocks("alice", recorded->rope, Medium::kVideo, TimeInterval{0.0, 1.0});
  ASSERT_TRUE(blocks.ok());
  ASSERT_FALSE(blocks->empty());
  // First frame of the first block equals the regenerated frame 0.
  const std::vector<uint8_t> expected = reference.FramePayload(0);
  ASSERT_GE((*blocks)[0].size(), expected.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), (*blocks)[0].begin()));
}

TEST_F(FileSystemTest, EditedRopePlaysAfterRepair) {
  const auto first = RecordAv(2.0, 7);
  const auto second = RecordAv(2.0, 8);
  Result<RopeId> combined = fs_.rope_server().Concat("alice", first.rope, second.rope);
  ASSERT_TRUE(combined.ok());
  ASSERT_TRUE(fs_.rope_server().RepairRope(*combined, Medium::kVideo).ok());
  Result<RequestId> request =
      fs_.Play("alice", *combined, Medium::kVideo, TimeInterval{0.0, 4.0});
  ASSERT_TRUE(request.ok());
  fs_.RunUntilIdle();
  EXPECT_TRUE(fs_.Stats(*request)->completed);
  EXPECT_EQ(fs_.Stats(*request)->continuity_violations, 0);
}

TEST_F(FileSystemTest, TextFilesCoexistWithMedia) {
  const auto recorded = RecordAv(2.0, 9);
  const std::vector<uint8_t> note{'h', 'i'};
  ASSERT_TRUE(fs_.text_files().Write("note", note).ok());
  Result<RequestId> request =
      fs_.Play("alice", recorded.rope, Medium::kVideo, TimeInterval{0.0, 2.0});
  ASSERT_TRUE(request.ok());
  fs_.RunUntilIdle();
  EXPECT_EQ(fs_.Stats(*request)->continuity_violations, 0);
  Result<std::vector<uint8_t>> read = fs_.text_files().Read("note");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, note);
}

TEST_F(FileSystemTest, PlacementForDerivesFromConfig) {
  Result<StrandPlacement> video = fs_.PlacementFor(TestVideo());
  ASSERT_TRUE(video.ok());
  EXPECT_EQ(video->granularity, 4);  // f/2 with f = 8 under pipelined
  Result<StrandPlacement> hdtv = fs_.PlacementFor(HdtvVideo());
  EXPECT_FALSE(hdtv.ok());
}

TEST_F(FileSystemTest, FastForwardPlayback) {
  const auto recorded = RecordAv(2.0, 10);
  Result<RequestId> request =
      fs_.Play("alice", recorded.rope, Medium::kVideo, TimeInterval{0.0, 2.0}, 2.0);
  ASSERT_TRUE(request.ok());
  fs_.RunUntilIdle();
  EXPECT_TRUE(fs_.Stats(*request)->completed);
}

TEST_F(FileSystemTest, CheckpointAndRecoverRoundTrip) {
  const auto recorded = RecordAv(2.0, 20);
  const std::vector<uint8_t> note{'x', 'y'};
  ASSERT_TRUE(fs_.text_files().Write("n", note).ok());
  ASSERT_TRUE(fs_.Checkpoint().ok());
  // Work after the checkpoint lands in the intent journal...
  const auto journaled = RecordAv(1.0, 21);
  ASSERT_TRUE(fs_.Recover().ok());
  // ...so recovery replays it: both ropes survive the crash.
  EXPECT_TRUE(fs_.rope_server().Find(recorded.rope).ok());
  EXPECT_TRUE(fs_.rope_server().Find(journaled.rope).ok());
  Result<std::vector<uint8_t>> read = fs_.text_files().Read("n");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, note);
  // The recovered rope still plays glitch-free.
  Result<RequestId> request =
      fs_.Play("alice", recorded.rope, Medium::kVideo, TimeInterval{0.0, 2.0});
  ASSERT_TRUE(request.ok());
  fs_.RunUntilIdle();
  EXPECT_EQ(fs_.Stats(*request)->continuity_violations, 0);
}

TEST_F(FileSystemTest, RepeatedCheckpointsSucceed) {
  RecordAv(1.0, 22);
  ASSERT_TRUE(fs_.Checkpoint().ok());
  RecordAv(1.0, 23);
  ASSERT_TRUE(fs_.Checkpoint().ok());
  ASSERT_TRUE(fs_.Recover().ok());
  EXPECT_EQ(fs_.rope_server().rope_count(), 2);
}

}  // namespace
}  // namespace vafs
