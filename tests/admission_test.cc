#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/admission.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

// A representative scattering average well under the worst case.
AdmissionControl TestAdmission() {
  const StorageTimings storage = TestStorage();
  return AdmissionControl(storage, storage.max_access_gap_sec / 10.0);
}

std::vector<RequestSpec> VideoRequests(int n, int64_t granularity = 4) {
  return std::vector<RequestSpec>(static_cast<size_t>(n),
                                  RequestSpec{TestVideo(), granularity});
}

TEST(AdmissionTest, RequestSpecDerivedQuantities) {
  RequestSpec spec{TestVideo(), 4};
  EXPECT_DOUBLE_EQ(spec.BlockBits(), 4.0 * 16384);
  EXPECT_DOUBLE_EQ(spec.BlockPlaybackDuration(), 4.0 / 30.0);
}

TEST(AdmissionTest, AnalysisMatchesEquations12To14) {
  AdmissionControl admission = TestAdmission();
  const StorageTimings storage = TestStorage();
  const auto requests = VideoRequests(3);
  const auto analysis = admission.Analyze(requests);
  const double transfer = 4.0 * 16384 / storage.transfer_rate_bits_per_sec;
  EXPECT_DOUBLE_EQ(analysis.alpha_sec, storage.max_access_gap_sec + transfer);    // Eq. 12
  EXPECT_DOUBLE_EQ(analysis.beta_sec, admission.avg_scattering_sec() + transfer); // Eq. 13
  EXPECT_DOUBLE_EQ(analysis.gamma_sec, 4.0 / 30.0);                               // Eq. 14
  EXPECT_GT(analysis.alpha_sec, analysis.beta_sec);  // l_seek_max >= l_ds_avg
  EXPECT_EQ(analysis.n, 3);
}

TEST(AdmissionTest, GammaIsTheFastestConsumer) {
  AdmissionControl admission = TestAdmission();
  std::vector<RequestSpec> requests = VideoRequests(1, 8);  // 8/30 s blocks
  requests.push_back(RequestSpec{TestVideo(), 2});          // 2/30 s blocks
  EXPECT_NEAR(admission.Analyze(requests).gamma_sec, 2.0 / 30.0, 1e-12);
}

TEST(AdmissionTest, Equation17ServiceCeiling) {
  AdmissionControl admission = TestAdmission();
  const auto analysis = admission.Analyze(VideoRequests(1));
  const int64_t expected =
      static_cast<int64_t>(std::ceil(analysis.gamma_sec / analysis.beta_sec)) - 1;
  EXPECT_EQ(analysis.n_max, expected);
  EXPECT_GE(analysis.n_max, 1);
  // Feasibility flips exactly past the ceiling.
  EXPECT_TRUE(admission.Feasible(VideoRequests(static_cast<int>(analysis.n_max))));
  EXPECT_FALSE(admission.Feasible(VideoRequests(static_cast<int>(analysis.n_max) + 1)));
}

TEST(AdmissionTest, Equation16SteadyStateK) {
  AdmissionControl admission = TestAdmission();
  const auto requests = VideoRequests(2);
  const auto analysis = admission.Analyze(requests);
  Result<int64_t> k = admission.SteadyStateBlocksPerRound(requests);
  ASSERT_TRUE(k.ok());
  const double exact = 2.0 * (analysis.alpha_sec - analysis.beta_sec) /
                       (analysis.gamma_sec - 2.0 * analysis.beta_sec);
  EXPECT_EQ(*k, std::max<int64_t>(1, static_cast<int64_t>(std::ceil(exact))));
  // The returned k satisfies Eq. 15.
  EXPECT_LE(2.0 * analysis.alpha_sec + 2.0 * static_cast<double>(*k - 1) * analysis.beta_sec,
            static_cast<double>(*k) * analysis.gamma_sec + 1e-12);
}

TEST(AdmissionTest, Equation18TransientSafeKIsLarger) {
  AdmissionControl admission = TestAdmission();
  const auto requests = VideoRequests(3);
  Result<int64_t> steady = admission.SteadyStateBlocksPerRound(requests);
  Result<int64_t> transient = admission.TransientSafeBlocksPerRound(requests);
  ASSERT_TRUE(steady.ok());
  ASSERT_TRUE(transient.ok());
  EXPECT_GE(*transient, *steady);
  // Eq. 18: transferring k+1 blocks fits in the playback of k.
  const auto analysis = admission.Analyze(requests);
  EXPECT_LE(3.0 * analysis.alpha_sec + 3.0 * static_cast<double>(*transient) * analysis.beta_sec,
            static_cast<double>(*transient) * analysis.gamma_sec + 1e-12);
}

TEST(AdmissionTest, KGrowsWithN) {
  // Figure 4: k(n) rises, steeply near n_max.
  AdmissionControl admission = TestAdmission();
  const int64_t n_max = admission.Analyze(VideoRequests(1)).n_max;
  int64_t previous = 0;
  for (int n = 1; n <= n_max; ++n) {
    Result<int64_t> k = admission.SteadyStateBlocksPerRound(VideoRequests(n));
    ASSERT_TRUE(k.ok()) << "n=" << n;
    EXPECT_GE(*k, previous) << "n=" << n;
    previous = *k;
  }
  EXPECT_FALSE(admission.SteadyStateBlocksPerRound(VideoRequests(static_cast<int>(n_max) + 1))
                   .ok());
}

TEST(AdmissionTest, EmptySetIsTriviallyAdmittable) {
  AdmissionControl admission = TestAdmission();
  EXPECT_TRUE(admission.Feasible({}));
  Result<int64_t> k = admission.SteadyStateBlocksPerRound({});
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 1);
}

TEST(AdmissionTest, PlanAdmissionStepsKByOne) {
  AdmissionControl admission = TestAdmission();
  const auto existing = VideoRequests(2);
  Result<int64_t> current = admission.TransientSafeBlocksPerRound(existing);
  ASSERT_TRUE(current.ok());
  Result<std::vector<int64_t>> plan =
      admission.PlanAdmission(existing, RequestSpec{TestVideo(), 4}, *current);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->empty());
  // Schedule is consecutive k values ending at the new target.
  for (size_t i = 0; i < plan->size(); ++i) {
    EXPECT_EQ((*plan)[i], *current + static_cast<int64_t>(i) + 1);
  }
  auto combined = existing;
  combined.push_back(RequestSpec{TestVideo(), 4});
  Result<int64_t> target = admission.TransientSafeBlocksPerRound(combined);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(plan->back(), *target);
}

TEST(AdmissionTest, PlanAdmissionKeepsSufficientK) {
  AdmissionControl admission = TestAdmission();
  Result<std::vector<int64_t>> plan =
      admission.PlanAdmission({}, RequestSpec{TestVideo(), 4}, 50);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->size(), 1u);
  EXPECT_EQ(plan->front(), 50);
}

TEST(AdmissionTest, PlanAdmissionRejectsBeyondCeiling) {
  AdmissionControl admission = TestAdmission();
  const int64_t n_max = admission.Analyze(VideoRequests(1)).n_max;
  const auto existing = VideoRequests(static_cast<int>(n_max));
  Result<std::vector<int64_t>> plan =
      admission.PlanAdmission(existing, RequestSpec{TestVideo(), 4}, 1);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), ErrorCode::kAdmissionRejected);
}

TEST(AdmissionTest, RoundTimeEquations7To10) {
  AdmissionControl admission = TestAdmission();
  const StorageTimings storage = TestStorage();
  const auto requests = VideoRequests(2);
  const std::vector<int64_t> blocks = {3, 5};
  const double transfer = 4.0 * 16384 / storage.transfer_rate_bits_per_sec;
  const double expected =
      (storage.max_access_gap_sec + transfer) * 2 +                        // Eq. 7 per request
      (2.0 * (admission.avg_scattering_sec() + transfer)) +                // Eq. 8, k_1 - 1 = 2
      (4.0 * (admission.avg_scattering_sec() + transfer));                 // Eq. 8, k_2 - 1 = 4
  EXPECT_NEAR(admission.RoundTime(requests, blocks), expected, 1e-12);
}

TEST(AdmissionTest, FeasibleRoundEquation11) {
  AdmissionControl admission = TestAdmission();
  const auto requests = VideoRequests(2);
  Result<int64_t> k = admission.SteadyStateBlocksPerRound(requests);
  ASSERT_TRUE(k.ok());
  EXPECT_TRUE(admission.FeasibleRound(requests, {*k, *k}));
  // A starved assignment (k = 1 with several requests) is infeasible when
  // the per-round overhead exceeds one block's playback.
  if (*k > 1) {
    EXPECT_FALSE(admission.FeasibleRound(requests, {1, 1}));
  }
}

TEST(AdmissionTest, MixedWorkloadUsesAverages) {
  AdmissionControl admission = TestAdmission();
  std::vector<RequestSpec> requests = {RequestSpec{TestVideo(), 4},
                                       RequestSpec{TestAudio(), 512}};
  const auto analysis = admission.Analyze(requests);
  const double avg_bits = (4.0 * 16384 + 512.0 * 8) / 2.0;
  EXPECT_NEAR(analysis.alpha_sec,
              TestStorage().max_access_gap_sec +
                  avg_bits / TestStorage().transfer_rate_bits_per_sec,
              1e-12);
}

TEST(PerRequestKTest, HomogeneousMatchesUniformAssignment) {
  AdmissionControl admission = TestAdmission();
  const auto requests = VideoRequests(3);
  Result<std::vector<int64_t>> per_request = admission.PerRequestBlocksPerRound(requests);
  ASSERT_TRUE(per_request.ok());
  ASSERT_EQ(per_request->size(), 3u);
  // Identical requests get identical (or off-by-one) round sizes, and the
  // assignment satisfies the exact Eq. 11 check.
  EXPECT_TRUE(admission.FeasibleRound(requests, *per_request));
  const int64_t lo = *std::min_element(per_request->begin(), per_request->end());
  const int64_t hi = *std::max_element(per_request->begin(), per_request->end());
  EXPECT_LE(hi - lo, 1);
  // And it never exceeds the uniform Eq. 16 answer.
  Result<int64_t> uniform = admission.SteadyStateBlocksPerRound(requests);
  ASSERT_TRUE(uniform.ok());
  EXPECT_LE(hi, *uniform + 1);
}

TEST(PerRequestKTest, HeterogeneousMixUsesSmallerFastSideRounds) {
  AdmissionControl admission = TestAdmission();
  // A fast consumer (small video blocks) next to slow audio (huge blocks
  // in playback time): the uniform simplification pins everyone to the
  // fast side's k, while the general solution keeps the audio at k = 1.
  std::vector<RequestSpec> requests = {RequestSpec{TestVideo(), 2},
                                       RequestSpec{TestAudio(), 4000}};
  Result<std::vector<int64_t>> per_request = admission.PerRequestBlocksPerRound(requests);
  ASSERT_TRUE(per_request.ok());
  EXPECT_TRUE(admission.FeasibleRound(requests, *per_request));
  EXPECT_EQ((*per_request)[1], 1);                 // audio: 1 s blocks, never binds
  EXPECT_GE((*per_request)[0], (*per_request)[1]); // video does the catching up
}

TEST(PerRequestKTest, AdmitsMixesTheUniformSimplificationRejects) {
  AdmissionControl admission = TestAdmission();
  // gamma is the FASTEST consumer under the uniform model, so one
  // fast-and-cheap stream plus many slow ones can blow past n_max even
  // though per-request rounds handle them easily.
  std::vector<RequestSpec> requests(6, RequestSpec{TestAudio(), 4000});  // 1 s blocks
  requests.push_back(RequestSpec{TestVideo(), 2});                      // 66 ms blocks
  Result<int64_t> uniform = admission.SteadyStateBlocksPerRound(requests);
  Result<std::vector<int64_t>> per_request = admission.PerRequestBlocksPerRound(requests);
  ASSERT_TRUE(per_request.ok());
  EXPECT_TRUE(admission.FeasibleRound(requests, *per_request));
  if (uniform.ok()) {
    // If the uniform model admits it at all, the general one is no worse.
    int64_t total = 0;
    for (int64_t k : *per_request) {
      total += k;
    }
    EXPECT_LE(total, static_cast<int64_t>(requests.size()) * *uniform);
  }
}

TEST(PerRequestKTest, RejectsOverload) {
  const StorageTimings storage = TestStorage();
  AdmissionControl admission(storage, storage.max_access_gap_sec / 10.0);
  // A stream whose transfer alone outpaces its playback can never fit.
  std::vector<RequestSpec> requests = {RequestSpec{HdtvVideo(), 4}};
  EXPECT_FALSE(admission.PerRequestBlocksPerRound(requests).ok());
  // And too many feasible streams are also rejected (finite k cap).
  const int64_t n_max = admission.Analyze(VideoRequests(1)).n_max;
  EXPECT_FALSE(
      admission.PerRequestBlocksPerRound(VideoRequests(static_cast<int>(n_max) * 3)).ok());
}

TEST(PerRequestKTest, EmptySetIsTrivial) {
  AdmissionControl admission = TestAdmission();
  Result<std::vector<int64_t>> per_request = admission.PerRequestBlocksPerRound({});
  ASSERT_TRUE(per_request.ok());
  EXPECT_TRUE(per_request->empty());
}

// Property sweep over the scattering average: a tighter realized
// scattering (smaller beta) admits at least as many requests.
class ScatteringSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScatteringSweep, TighterScatteringNeverHurts) {
  const StorageTimings storage = TestStorage();
  const double fraction = static_cast<double>(GetParam()) / 10.0;
  AdmissionControl loose(storage, storage.max_access_gap_sec * fraction);
  AdmissionControl tight(storage, storage.max_access_gap_sec * fraction / 2.0);
  const int64_t n_loose = loose.Analyze(VideoRequests(1)).n_max;
  const int64_t n_tight = tight.Analyze(VideoRequests(1)).n_max;
  EXPECT_GE(n_tight, n_loose);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ScatteringSweep, ::testing::Range(1, 10));

}  // namespace
}  // namespace vafs
