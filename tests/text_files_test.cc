#include <gtest/gtest.h>

#include <numeric>

#include "src/msm/recorder.h"
#include "src/vafs/text_files.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class TextFilesTest : public ::testing::Test {
 protected:
  TextFilesTest() : disk_(TestDiskParameters()), store_(&disk_), files_(&disk_, &store_.allocator()) {}

  std::vector<uint8_t> Bytes(size_t n, uint8_t seed = 1) {
    std::vector<uint8_t> data(n);
    std::iota(data.begin(), data.end(), seed);
    return data;
  }

  Disk disk_;
  StrandStore store_;
  TextFileService files_;
};

TEST_F(TextFilesTest, WriteReadRoundTrip) {
  const std::vector<uint8_t> data = Bytes(2000);
  ASSERT_TRUE(files_.Write("notes.txt", data).ok());
  EXPECT_TRUE(files_.Exists("notes.txt"));
  Result<std::vector<uint8_t>> read = files_.Read("notes.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(TextFilesTest, OverwriteReplacesContent) {
  ASSERT_TRUE(files_.Write("f", Bytes(100, 1)).ok());
  const int64_t free_after_first = store_.allocator().free_sectors();
  ASSERT_TRUE(files_.Write("f", Bytes(300, 7)).ok());
  Result<std::vector<uint8_t>> read = files_.Read("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Bytes(300, 7));
  EXPECT_EQ(files_.file_count(), 1);
  // Old extent was returned (same sector count for <=512 B, so free space
  // is back to the single-file level).
  EXPECT_EQ(store_.allocator().free_sectors(), free_after_first);
}

TEST_F(TextFilesTest, EmptyFileAndMissingFile) {
  ASSERT_TRUE(files_.Write("empty", {}).ok());
  Result<std::vector<uint8_t>> read = files_.Read("empty");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  EXPECT_EQ(files_.Read("missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(files_.Remove("missing").code(), ErrorCode::kNotFound);
  EXPECT_EQ(files_.Write("", Bytes(10)).code(), ErrorCode::kInvalidArgument);
}

TEST_F(TextFilesTest, RemoveFreesSpace) {
  const int64_t free_before = store_.allocator().free_sectors();
  ASSERT_TRUE(files_.Write("f", Bytes(5000)).ok());
  ASSERT_TRUE(files_.Remove("f").ok());
  EXPECT_EQ(store_.allocator().free_sectors(), free_before);
  EXPECT_FALSE(files_.Exists("f"));
}

TEST_F(TextFilesTest, FilesLandInScatteringGaps) {
  // Record a strand with forced inter-block spacing, then verify a text
  // file fits into the gap between the first two media blocks.
  const StrandPlacement placement{4, 0.011, 0.015};  // min one cylinder away
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t block_bytes = 4 * 16384 / 8;
  std::vector<int64_t> starts;
  for (int64_t b = 0; b < 10; ++b) {
    ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(block_bytes, 1)).ok());
  }
  Result<StrandId> id = (*writer)->Finish(40);
  ASSERT_TRUE(id.ok());
  Result<const Strand*> strand = store_.Get(*id);
  ASSERT_TRUE(strand.ok());
  const PrimaryEntry first = *(*strand)->index().Lookup(0);
  const PrimaryEntry second = *(*strand)->index().Lookup(1);
  ASSERT_GT(second.sector, first.sector + first.sector_count);  // a real gap

  ASSERT_TRUE(files_.Write("in-gap", Bytes(512)).ok());
  // The file's single sector fits strictly between the two media blocks
  // (first-fit allocation finds the gap before any later free space).
  Result<std::vector<uint8_t>> read = files_.Read("in-gap");
  ASSERT_TRUE(read.ok());
}

TEST_F(TextFilesTest, LargeFileSplitsAcrossFragments) {
  // Fragment the free space: allocate every other 64-sector chunk.
  std::vector<Extent> pins;
  for (int64_t i = 0; i < 100; ++i) {
    Result<Extent> pin = store_.allocator().Allocate(64, i * 128);
    ASSERT_TRUE(pin.ok());
    pins.push_back(*pin);
  }
  // A file larger than any single free run must still be writable.
  const int64_t largest = store_.allocator().LargestFreeExtent();
  const int64_t want_sectors = largest + 64;
  const std::vector<uint8_t> data(static_cast<size_t>(want_sectors * 512), 0x5a);
  ASSERT_TRUE(files_.Write("big", data).ok());
  Result<int64_t> extents = files_.ExtentCount("big");
  ASSERT_TRUE(extents.ok());
  EXPECT_GE(*extents, 2);
  Result<std::vector<uint8_t>> read = files_.Read("big");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(TextFilesTest, DiskFullFailsCleanly) {
  // Swallow nearly the whole disk.
  const int64_t total = store_.allocator().total_sectors();
  ASSERT_TRUE(store_.allocator().AllocateExact(Extent{0, total - 2}).ok());
  const int64_t free_before = store_.allocator().free_sectors();
  const std::vector<uint8_t> data(10 * 512, 1);
  EXPECT_EQ(files_.Write("too-big", data).code(), ErrorCode::kNoSpace);
  // The failed write leaked nothing.
  EXPECT_EQ(store_.allocator().free_sectors(), free_before);
}

TEST_F(TextFilesTest, FailedOverwriteKeepsOldContent) {
  ASSERT_TRUE(files_.Write("f", Bytes(100, 3)).ok());
  const int64_t total = store_.allocator().total_sectors();
  // Fill the disk so a large overwrite cannot succeed.
  Result<Extent> hog = store_.allocator().Allocate(store_.allocator().LargestFreeExtent());
  ASSERT_TRUE(hog.ok());
  while (store_.allocator().free_sectors() > 0) {
    Result<Extent> more = store_.allocator().Allocate(store_.allocator().LargestFreeExtent());
    ASSERT_TRUE(more.ok());
  }
  const std::vector<uint8_t> huge(static_cast<size_t>(total) * 512, 1);
  EXPECT_EQ(files_.Write("f", huge).code(), ErrorCode::kNoSpace);
  Result<std::vector<uint8_t>> read = files_.Read("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Bytes(100, 3));
}

}  // namespace
}  // namespace vafs
