#include <gtest/gtest.h>

#include <numeric>

#include "src/media/vbr_source.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

VbrProfile TestVbr() {
  VbrProfile vbr;
  vbr.group_of_pictures = 10;
  vbr.delta_mean_fraction = 0.25;
  vbr.scene_change_per_sec = 0.5;
  return vbr;
}

TEST(VbrSourceTest, IntraFramesAtGopBoundaries) {
  VbrVideoSource source(TestVideo(), TestVbr(), 1);
  EXPECT_EQ(source.FrameBytes(0), source.peak_frame_bytes());
  EXPECT_EQ(source.FrameBytes(10), source.peak_frame_bytes());
  EXPECT_EQ(source.FrameBytes(20), source.peak_frame_bytes());
  for (int64_t i = 1; i < 10; ++i) {
    EXPECT_LT(source.FrameBytes(i), source.peak_frame_bytes()) << "frame " << i;
    EXPECT_GE(source.FrameBytes(i), 1);
  }
}

TEST(VbrSourceTest, DeterministicPayloads) {
  VbrVideoSource a(TestVideo(), TestVbr(), 7);
  VbrVideoSource b(TestVideo(), TestVbr(), 7);
  for (int i = 0; i < 25; ++i) {
    const VideoFrame frame = a.NextFrame();
    EXPECT_EQ(frame.payload, b.FramePayload(i));
    EXPECT_EQ(static_cast<int64_t>(frame.payload.size()), a.FrameBytes(i));
  }
}

TEST(VbrSourceTest, MeanWellBelowPeak) {
  VbrVideoSource source(TestVideo(), TestVbr(), 3);
  const double mean = source.MeanFrameBytes(300);
  EXPECT_LT(mean, 0.6 * static_cast<double>(source.peak_frame_bytes()));
  EXPECT_GT(mean, 0.05 * static_cast<double>(source.peak_frame_bytes()));
}

TEST(VbrSourceTest, ActivityVariesAcrossScenes) {
  // Different scenes should produce visibly different delta sizes.
  VbrVideoSource source(TestVideo(), TestVbr(), 9);
  const double early = source.MeanFrameBytes(30);
  double late = 0;
  for (int64_t i = 3000; i < 3030; ++i) {
    late += static_cast<double>(source.FrameBytes(i));
  }
  late /= 30.0;
  EXPECT_NE(early, late);
}

TEST(VbrStatsTest, AnalyzeBlocksComputesMeanPeakBurst) {
  const std::vector<int64_t> blocks = {100, 100, 300, 300, 100, 100};
  const VbrStrandStats stats = AnalyzeVbrBlocks(blocks);
  EXPECT_DOUBLE_EQ(stats.mean_block_bits, 1000.0 / 6.0);
  EXPECT_EQ(stats.peak_block_bits, 300);
  // Worst burst: the two 300s in a row exceed the mean by 2*(300-166.67).
  EXPECT_NEAR(stats.worst_burst_excess_bits, 2 * (300 - 1000.0 / 6.0), 1e-9);
}

TEST(VbrStatsTest, ConstantBlocksNeedMinimalReadAhead) {
  const VbrStrandStats stats = AnalyzeVbrBlocks({500, 500, 500, 500});
  EXPECT_DOUBLE_EQ(stats.worst_burst_excess_bits, 0.0);
  EXPECT_EQ(stats.RequiredReadAhead(1e6, 0.1), 1);
}

TEST(VbrStatsTest, BurstierStreamsNeedMoreReadAhead) {
  const VbrStrandStats calm = AnalyzeVbrBlocks({90, 110, 90, 110, 90, 110});
  std::vector<int64_t> bursty = {10, 10, 10, 290, 290, 290};  // same mean (150? no)
  const VbrStrandStats rough = AnalyzeVbrBlocks(bursty);
  EXPECT_GE(rough.RequiredReadAhead(1e3, 0.05), calm.RequiredReadAhead(1e3, 0.05));
}

TEST(VbrStatsTest, EmptyIsHarmless) {
  const VbrStrandStats stats = AnalyzeVbrBlocks({});
  EXPECT_EQ(stats.peak_block_bits, 0);
}

class VbrRecordingTest : public ::testing::Test {
 protected:
  VbrRecordingTest() : disk_(TestDiskParameters()), store_(&disk_) {}

  Disk disk_;
  StrandStore store_;
};

TEST_F(VbrRecordingTest, VbrUsesLessSpaceThanCbr) {
  const StrandPlacement placement{4, 0.0, 0.05};
  const int64_t free_start = store_.allocator().free_sectors();
  VbrVideoSource vbr_source(TestVideo(), TestVbr(), 11);
  Result<RecordingResult> vbr = RecordVbrVideo(&store_, &vbr_source, placement, 5.0);
  ASSERT_TRUE(vbr.ok());
  const int64_t vbr_sectors = free_start - store_.allocator().free_sectors();

  const int64_t free_mid = store_.allocator().free_sectors();
  VideoSource cbr_source(TestVideo(), 11);
  Result<RecordingResult> cbr = RecordVideo(&store_, &cbr_source, placement, 5.0);
  ASSERT_TRUE(cbr.ok());
  const int64_t cbr_sectors = free_mid - store_.allocator().free_sectors();

  EXPECT_LT(vbr_sectors, cbr_sectors);
  EXPECT_EQ(vbr->blocks_total, cbr->blocks_total);  // same frame count, same q
  EXPECT_EQ(static_cast<int64_t>(vbr->block_bits.size()), vbr->blocks_total);
}

TEST_F(VbrRecordingTest, VariableBlocksHaveVariableSectorCounts) {
  const StrandPlacement placement{4, 0.0, 0.05};
  VbrVideoSource source(TestVideo(), TestVbr(), 13);
  Result<RecordingResult> result = RecordVbrVideo(&store_, &source, placement, 5.0);
  ASSERT_TRUE(result.ok());
  Result<const Strand*> strand = store_.Get(result->strand);
  ASSERT_TRUE(strand.ok());
  int64_t min_sectors = 1 << 30;
  int64_t max_sectors = 0;
  for (const PrimaryEntry& entry : (*strand)->index().entries()) {
    min_sectors = std::min(min_sectors, entry.sector_count);
    max_sectors = std::max(max_sectors, entry.sector_count);
  }
  EXPECT_LT(min_sectors, max_sectors);
}

TEST_F(VbrRecordingTest, VbrContentSurvivesRoundTrip) {
  const StrandPlacement placement{4, 0.0, 0.05};
  VbrVideoSource source(TestVideo(), TestVbr(), 17);
  Result<RecordingResult> result = RecordVbrVideo(&store_, &source, placement, 2.0);
  ASSERT_TRUE(result.ok());
  Result<const Strand*> strand = store_.Get(result->strand);
  ASSERT_TRUE(strand.ok());
  // Block 0 holds frames 0..3 back to back.
  std::vector<uint8_t> payload;
  ASSERT_TRUE(store_.ReadBlock(result->strand, 0, &payload).ok());
  size_t offset = 0;
  for (int64_t f = 0; f < 4; ++f) {
    const std::vector<uint8_t> expected = source.FramePayload(f);
    ASSERT_LE(offset + expected.size(), payload.size());
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                           payload.begin() + static_cast<ptrdiff_t>(offset)))
        << "frame " << f;
    offset += expected.size();
  }
}

TEST_F(VbrRecordingTest, PlaybackWithComputedReadAheadIsClean) {
  const StrandPlacement placement{4, 0.0, 0.05};
  VbrVideoSource source(TestVideo(), TestVbr(), 19);
  Result<RecordingResult> result = RecordVbrVideo(&store_, &source, placement, 10.0);
  ASSERT_TRUE(result.ok());
  const VbrStrandStats stats = AnalyzeVbrBlocks(result->block_bits);
  const double block_duration_sec = 4.0 / 30.0;
  const int64_t read_ahead = stats.RequiredReadAhead(
      TestStorage().transfer_rate_bits_per_sec, block_duration_sec);
  EXPECT_GE(read_ahead, 1);

  Result<const Strand*> strand = store_.Get(result->strand);
  ASSERT_TRUE(strand.ok());
  Simulator sim;
  AdmissionControl admission(TestStorage(), std::max(store_.AverageScatteringSec(), 1e-4));
  ServiceScheduler scheduler(&store_, &sim, admission);
  PlaybackRequest request;
  for (int64_t b = 0; b < (*strand)->block_count(); ++b) {
    request.blocks.push_back(*(*strand)->index().Lookup(b));
  }
  request.block_duration = (*strand)->info().BlockDuration();
  // Admission sees the mean-rate stream; read-ahead covers the bursts.
  MediaProfile mean_profile = TestVideo();
  mean_profile.bits_per_unit = static_cast<int64_t>(stats.mean_block_bits / 4.0);
  request.spec = RequestSpec{mean_profile, 4};
  request.read_ahead_blocks = read_ahead;
  Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
  ASSERT_TRUE(id.ok());
  scheduler.RunUntilIdle();
  EXPECT_TRUE(scheduler.stats(*id)->completed);
  EXPECT_EQ(scheduler.stats(*id)->continuity_violations, 0);
}

}  // namespace
}  // namespace vafs
