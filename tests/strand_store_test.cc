#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/core/continuity.h"
#include "src/disk/disk.h"
#include "src/msm/strand_store.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class StrandStoreTest : public ::testing::Test {
 protected:
  StrandStoreTest() : disk_(TestDiskParameters()), store_(&disk_) {}

  StrandPlacement VideoPlacement() {
    ContinuityModel model(TestStorage(), TestVideoDevice());
    Result<StrandPlacement> placement =
        model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
    EXPECT_TRUE(placement.ok());
    return *placement;
  }

  std::vector<uint8_t> BlockPayload(int64_t block, int64_t bytes) {
    std::vector<uint8_t> payload(static_cast<size_t>(bytes));
    std::iota(payload.begin(), payload.end(), static_cast<uint8_t>(block));
    return payload;
  }

  Disk disk_;
  StrandStore store_;
};

TEST_F(StrandStoreTest, RecordsAndReadsBackBlocks) {
  const StrandPlacement placement = VideoPlacement();
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t block_bytes = placement.granularity * 16384 / 8;
  for (int64_t b = 0; b < 10; ++b) {
    ASSERT_TRUE((*writer)->AppendBlock(BlockPayload(b, block_bytes)).ok());
  }
  Result<StrandId> id = (*writer)->Finish(10 * placement.granularity);
  ASSERT_TRUE(id.ok());

  Result<const Strand*> strand = store_.Get(*id);
  ASSERT_TRUE(strand.ok());
  EXPECT_EQ((*strand)->block_count(), 10);
  EXPECT_EQ((*strand)->info().unit_count, 10 * placement.granularity);

  for (int64_t b = 0; b < 10; ++b) {
    std::vector<uint8_t> payload;
    Result<SimDuration> read = store_.ReadBlock(*id, b, &payload);
    ASSERT_TRUE(read.ok());
    EXPECT_GT(*read, 0);
    payload.resize(static_cast<size_t>(block_bytes));  // strip sector padding
    EXPECT_EQ(payload, BlockPayload(b, block_bytes)) << "block " << b;
  }
}

TEST_F(StrandStoreTest, RealizedGapsRespectScatteringBound) {
  const StrandPlacement placement = VideoPlacement();
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t block_bytes = placement.granularity * 16384 / 8;
  for (int64_t b = 0; b < 50; ++b) {
    ASSERT_TRUE((*writer)->AppendBlock(BlockPayload(b, block_bytes)).ok());
  }
  EXPECT_LE((*writer)->MaxGapSec(), placement.max_scattering_sec + 1e-9);
  EXPECT_GT((*writer)->AverageGapSec(), 0.0);
  ASSERT_TRUE((*writer)->Finish(50 * placement.granularity).ok());
  EXPECT_GT(store_.AverageScatteringSec(), 0.0);
  EXPECT_LE(store_.AverageScatteringSec(), placement.max_scattering_sec);
}

TEST_F(StrandStoreTest, SilenceBlocksUseNoSpace) {
  const StrandPlacement placement{8, 0.0, 0.050};
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestAudio(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t free_before = store_.allocator().free_sectors();
  ASSERT_TRUE((*writer)->AppendSilence().ok());
  ASSERT_TRUE((*writer)->AppendSilence().ok());
  EXPECT_EQ(store_.allocator().free_sectors(), free_before);
  ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(8, 1)).ok());
  Result<StrandId> id = (*writer)->Finish(24);
  ASSERT_TRUE(id.ok());

  // Reading a silence block is free and yields no data.
  std::vector<uint8_t> payload{9, 9};
  Result<SimDuration> read = store_.ReadBlock(*id, 0, &payload);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 0);
  EXPECT_TRUE(payload.empty());
}

TEST_F(StrandStoreTest, FinishValidatesUnitCount) {
  const StrandPlacement placement = VideoPlacement();
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t block_bytes = placement.granularity * 16384 / 8;
  ASSERT_TRUE((*writer)->AppendBlock(BlockPayload(0, block_bytes)).ok());
  // 3 blocks' worth of units against 1 block: inconsistent.
  EXPECT_EQ((*writer)->Finish(3 * placement.granularity).status().code(),
            ErrorCode::kInvalidArgument);
  // Partial tail block is fine.
  EXPECT_TRUE((*writer)->Finish(placement.granularity - 1).ok());
}

TEST_F(StrandStoreTest, WriterAbortFreesEverything) {
  const int64_t free_before = store_.allocator().free_sectors();
  {
    Result<std::unique_ptr<StrandWriter>> writer =
        store_.CreateStrand(TestVideo(), VideoPlacement());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(1024, 1)).ok());
    ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(1024, 2)).ok());
    // Writer destroyed without Finish.
  }
  EXPECT_EQ(store_.allocator().free_sectors(), free_before);
}

TEST_F(StrandStoreTest, DeleteReturnsAllSpace) {
  const int64_t free_before = store_.allocator().free_sectors();
  const StrandPlacement placement = VideoPlacement();
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t block_bytes = placement.granularity * 16384 / 8;
  for (int64_t b = 0; b < 20; ++b) {
    ASSERT_TRUE((*writer)->AppendBlock(BlockPayload(b, block_bytes)).ok());
  }
  Result<StrandId> id = (*writer)->Finish(20 * placement.granularity);
  ASSERT_TRUE(id.ok());
  EXPECT_LT(store_.allocator().free_sectors(), free_before);
  ASSERT_TRUE(store_.Delete(*id).ok());
  EXPECT_EQ(store_.allocator().free_sectors(), free_before);
  EXPECT_EQ(store_.Get(*id).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store_.Delete(*id).code(), ErrorCode::kNotFound);
}

TEST_F(StrandStoreTest, IndexBlocksArePersisted) {
  // A strand with many blocks must consume extra space for PBs/SB/HB.
  const StrandPlacement placement{1, 0.0, 0.050};
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestAudio(), placement);
  ASSERT_TRUE(writer.ok());
  for (int64_t b = 0; b < 300; ++b) {  // > one primary block (fanout 256)
    ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(1, 7)).ok());
  }
  const int64_t free_before_finish = store_.allocator().free_sectors();
  Result<StrandId> id = (*writer)->Finish(300);
  ASSERT_TRUE(id.ok());
  // 2 PBs + 1 SB + 1 HB at one sector minimum each.
  EXPECT_LE(store_.allocator().free_sectors(), free_before_finish - 4);
  Result<const Strand*> strand = store_.Get(*id);
  ASSERT_TRUE(strand.ok());
  EXPECT_EQ((*strand)->index().primary_block_count(), 2);
}

TEST_F(StrandStoreTest, WriterRejectsOversizedPayload) {
  const StrandPlacement placement = VideoPlacement();
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  const int64_t block_bytes = placement.granularity * 16384 / 8;
  std::vector<uint8_t> oversized(static_cast<size_t>(block_bytes) + 512 + 1);
  EXPECT_EQ((*writer)->AppendBlock(oversized).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ((*writer)->AppendBlock({}).status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(StrandStoreTest, UseAfterFinishRejected) {
  Result<std::unique_ptr<StrandWriter>> writer =
      store_.CreateStrand(TestVideo(), VideoPlacement());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(100, 1)).ok());
  ASSERT_TRUE((*writer)->Finish(1).ok());
  EXPECT_EQ((*writer)->AppendBlock(std::vector<uint8_t>(100, 1)).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*writer)->AppendSilence().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*writer)->Finish(1).status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(StrandStoreTest, CreateStrandValidatesArguments) {
  EXPECT_FALSE(store_.CreateStrand(TestVideo(), StrandPlacement{0, 0, 0.01}).ok());
  EXPECT_FALSE(store_.CreateStrand(TestVideo(), StrandPlacement{4, 0, -0.5}).ok());
  MediaProfile bad = TestVideo();
  bad.bits_per_unit = 0;
  EXPECT_FALSE(store_.CreateStrand(bad, StrandPlacement{4, 0, 0.01}).ok());
}

TEST_F(StrandStoreTest, UnitsInBlockHandlesPartialTail) {
  const StrandPlacement placement{4, 0.0, 0.050};
  Result<std::unique_ptr<StrandWriter>> writer = store_.CreateStrand(TestVideo(), placement);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(8192, 1)).ok());
  ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(4096, 2)).ok());
  Result<StrandId> id = (*writer)->Finish(6);  // 4 + 2
  ASSERT_TRUE(id.ok());
  Result<const Strand*> strand = store_.Get(*id);
  ASSERT_TRUE(strand.ok());
  EXPECT_EQ((*strand)->UnitsInBlock(0), 4);
  EXPECT_EQ((*strand)->UnitsInBlock(1), 2);
}

TEST_F(StrandStoreTest, AllIdsEnumeratesStrands) {
  EXPECT_TRUE(store_.AllIds().empty());
  Result<std::unique_ptr<StrandWriter>> writer =
      store_.CreateStrand(TestVideo(), VideoPlacement());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(100, 1)).ok());
  Result<StrandId> id = (*writer)->Finish(1);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store_.AllIds(), std::vector<StrandId>{*id});
}

}  // namespace
}  // namespace vafs
