// Shared fixtures and parameter sets for vaFS tests: a small, fast disk
// geometry and media profiles scaled down so recording seconds of media
// touches hundreds (not hundreds of thousands) of simulated sectors.

#ifndef VAFS_TESTS_TEST_SUPPORT_H_
#define VAFS_TESTS_TEST_SUPPORT_H_

#include "src/core/continuity.h"
#include "src/core/profiles.h"
#include "src/disk/disk_model.h"
#include "src/media/media.h"
#include "src/vafs/file_system.h"

namespace vafs {

// ~13 MB disk: 200 cylinders x 4 surfaces x 32 sectors x 512 B.
inline DiskParameters TestDiskParameters() {
  DiskParameters params;
  params.cylinders = 200;
  params.surfaces = 4;
  params.sectors_per_track = 32;
  params.bytes_per_sector = 512;
  params.rpm = 3600.0;
  params.min_seek_ms = 2.0;
  params.max_seek_ms = 20.0;
  return params;
}

// Small video: 30 fps, 2 KB frames (~0.5 Mbit/s).
inline MediaProfile TestVideo() { return MediaProfile{Medium::kVideo, 30.0, 16'384}; }

// Small audio: 4000 samples/s, 8-bit.
inline MediaProfile TestAudio() { return MediaProfile{Medium::kAudio, 4000.0, 8}; }

inline StorageTimings TestStorage() {
  return StorageTimings::FromDiskModel(DiskModel(TestDiskParameters()));
}

inline DeviceProfile TestVideoDevice() {
  // Decodes at 4x the stream bit rate; 8 frame buffers.
  return DeviceProfile{TestVideo().BitRate() * 4.0, 8};
}

inline DeviceProfile TestAudioDevice() {
  // 16x-rate decode; 8192-sample internal buffer (audio buffers are cheap).
  return DeviceProfile{TestAudio().BitRate() * 16.0, 8192};
}

inline FileSystemConfig TestConfig() {
  FileSystemConfig config;
  config.disk = TestDiskParameters();
  config.video_device = TestVideoDevice();
  config.audio_device = TestAudioDevice();
  config.architecture = RetrievalArchitecture::kPipelined;
  return config;
}

}  // namespace vafs

#endif  // VAFS_TESTS_TEST_SUPPORT_H_
