#include <gtest/gtest.h>

#include <cmath>

#include "src/core/continuity.h"
#include "src/core/editing_bounds.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

ContinuityModel TestModel(int concurrency = 1) {
  return ContinuityModel(TestStorage(), TestVideoDevice(), concurrency);
}

TEST(ContinuityTest, ElementaryDurations) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  // Playback: q / R_v.
  EXPECT_DOUBLE_EQ(ContinuityModel::BlockPlaybackDuration(video, 3), 0.1);
  // Transfer: q * s / R_dt.
  EXPECT_DOUBLE_EQ(model.BlockTransferTime(video, 3),
                   3.0 * 16384 / TestStorage().transfer_rate_bits_per_sec);
  // Display: q * s / R_dp.
  EXPECT_DOUBLE_EQ(model.BlockDisplayTime(video, 3),
                   3.0 * 16384 / TestVideoDevice().display_rate_bits_per_sec);
}

TEST(ContinuityTest, Equation1SequentialBound) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  const int64_t q = 4;
  const double expected = ContinuityModel::BlockPlaybackDuration(video, q) -
                          model.BlockTransferTime(video, q) - model.BlockDisplayTime(video, q);
  EXPECT_DOUBLE_EQ(model.MaxScattering(RetrievalArchitecture::kSequential, video, q), expected);
}

TEST(ContinuityTest, Equation2PipelinedBound) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  const int64_t q = 4;
  const double expected = ContinuityModel::BlockPlaybackDuration(video, q) -
                          model.BlockTransferTime(video, q);
  EXPECT_DOUBLE_EQ(model.MaxScattering(RetrievalArchitecture::kPipelined, video, q), expected);
}

TEST(ContinuityTest, Equation3ConcurrentBound) {
  ContinuityModel model = TestModel(4);
  const MediaProfile video = TestVideo();
  const int64_t q = 2;
  const double expected = 3.0 * ContinuityModel::BlockPlaybackDuration(video, q) -
                          model.BlockTransferTime(video, q);
  EXPECT_DOUBLE_EQ(model.MaxScattering(RetrievalArchitecture::kConcurrent, video, q), expected);
}

TEST(ContinuityTest, ArchitectureOrdering) {
  // Pipelining buys display time; concurrency buys (p-1) playback periods.
  ContinuityModel model = TestModel(3);
  const MediaProfile video = TestVideo();
  const double sequential =
      model.MaxScattering(RetrievalArchitecture::kSequential, video, 4);
  const double pipelined = model.MaxScattering(RetrievalArchitecture::kPipelined, video, 4);
  const double concurrent =
      model.MaxScattering(RetrievalArchitecture::kConcurrent, video, 4);
  EXPECT_LT(sequential, pipelined);
  EXPECT_LT(pipelined, concurrent);
}

TEST(ContinuityTest, SatisfiesContinuityIsConsistentWithBound) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  const double bound = model.MaxScattering(RetrievalArchitecture::kPipelined, video, 4);
  EXPECT_TRUE(model.SatisfiesContinuity(RetrievalArchitecture::kPipelined, video, 4, bound));
  EXPECT_FALSE(
      model.SatisfiesContinuity(RetrievalArchitecture::kPipelined, video, 4, bound + 1e-9));
}

TEST(ContinuityTest, FastForwardShrinksTheBound) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  const double normal = model.MaxScattering(RetrievalArchitecture::kPipelined, video, 4, 1.0);
  const double doubled = model.MaxScattering(RetrievalArchitecture::kPipelined, video, 4, 2.0);
  EXPECT_GT(normal, doubled);
  // At 2x speed the playback duration halves exactly.
  const double playback = ContinuityModel::BlockPlaybackDuration(TestVideo(), 4);
  EXPECT_NEAR(normal - doubled, playback / 2.0, 1e-12);
}

TEST(ContinuityTest, InfeasibleMediaYieldsNegativeBound) {
  // HDTV against a single small disk: transfer alone exceeds playback.
  ContinuityModel model = TestModel();
  EXPECT_LT(model.MaxScattering(RetrievalArchitecture::kPipelined, HdtvVideo(), 4), 0.0);
}

TEST(ContinuityTest, MixedHomogeneousEquation5) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  const MediaProfile audio = TestAudio();
  // Audio granularity chosen so one audio block spans n=2 video blocks:
  // video block = 4/30 s; audio block = 2*4/30 s -> qa = 4000*8/30.
  const int64_t qv = 4;
  const int64_t qa = static_cast<int64_t>(4000.0 * 8.0 / 30.0);
  const double n = (static_cast<double>(qa) / 4000.0) / (4.0 / 30.0);
  ASSERT_NEAR(n, 2.0, 0.01);
  const double bound = model.MaxScatteringMixedHomogeneous(video, qv, audio, qa);
  const double expected =
      (n * (4.0 / 30.0) - n * model.BlockTransferTime(video, qv) -
       model.BlockTransferTime(audio, qa)) /
      (n + 1.0);
  EXPECT_NEAR(bound, expected, 1e-9);
}

TEST(ContinuityTest, MixedHeterogeneousEquation6) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  const MediaProfile audio = TestAudio();
  const int64_t qv = 4;
  const int64_t qa = static_cast<int64_t>(4000.0 * 4.0 / 30.0);  // same duration as video block
  const double bound = model.MaxScatteringMixedHeterogeneous(video, qv, audio, qa);
  const double expected =
      4.0 / 30.0 - TestStorage().TransferTime(4.0 * 16384 + static_cast<double>(qa) * 8);
  EXPECT_NEAR(bound, expected, 1e-9);
}

TEST(ContinuityTest, HeterogeneousBeatsHomogeneousPerGap) {
  // With one gap per combined block instead of (n+1) gaps per n video
  // blocks, the heterogeneous layout tolerates more scattering.
  ContinuityModel model = TestModel();
  const int64_t qv = 4;
  const int64_t qa = static_cast<int64_t>(4000.0 * 4.0 / 30.0);
  EXPECT_GT(model.MaxScatteringMixedHeterogeneous(TestVideo(), qv, TestAudio(), qa),
            model.MaxScatteringMixedHomogeneous(TestVideo(), qv, TestAudio(), qa));
}

TEST(ContinuityTest, GranularityRangesFollowSection334) {
  ContinuityModel model = TestModel(4);
  // Device has f = 8 frame buffers.
  EXPECT_EQ(model.MaxGranularityForDevice(RetrievalArchitecture::kSequential, TestVideo()), 8);
  EXPECT_EQ(model.MaxGranularityForDevice(RetrievalArchitecture::kPipelined, TestVideo()), 4);
  EXPECT_EQ(model.MaxGranularityForDevice(RetrievalArchitecture::kConcurrent, TestVideo()), 2);
}

TEST(ContinuityTest, DerivePlacementPicksLargestFeasibleGranularity) {
  ContinuityModel model = TestModel();
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->granularity, 4);  // f/2 with f = 8
  EXPECT_GT(placement->max_scattering_sec, 0.0);
  EXPECT_GE(placement->max_scattering_sec, placement->min_scattering_sec);
}

TEST(ContinuityTest, DerivePlacementRejectsInfeasibleMedia) {
  ContinuityModel model = TestModel();
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, HdtvVideo());
  EXPECT_FALSE(placement.ok());
  EXPECT_EQ(placement.status().code(), ErrorCode::kAdmissionRejected);
}

TEST(ContinuityTest, BufferingPlansMatchSection332) {
  ContinuityModel model = TestModel(3);
  const auto sequential = model.PlanBuffering(RetrievalArchitecture::kSequential, 5);
  EXPECT_EQ(sequential.read_ahead_blocks, 5);
  EXPECT_EQ(sequential.device_buffers, 5);
  const auto pipelined = model.PlanBuffering(RetrievalArchitecture::kPipelined, 5);
  EXPECT_EQ(pipelined.read_ahead_blocks, 5);
  EXPECT_EQ(pipelined.device_buffers, 10);  // 2k
  const auto concurrent = model.PlanBuffering(RetrievalArchitecture::kConcurrent, 5);
  EXPECT_EQ(concurrent.read_ahead_blocks, 15);  // pk
  EXPECT_EQ(concurrent.device_buffers, 15);
}

TEST(ContinuityTest, StrictContinuityIsKEqualsOne) {
  ContinuityModel model = TestModel();
  const auto plan = model.PlanBuffering(RetrievalArchitecture::kSequential, 1);
  EXPECT_EQ(plan.read_ahead_blocks, 1);
  EXPECT_EQ(plan.device_buffers, 1);
}

TEST(ContinuityTest, Equation4TaskSwitchReadAhead) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  const int64_t q = 4;
  const double block_duration = ContinuityModel::BlockPlaybackDuration(video, q);
  const int64_t h = model.ExtraReadAheadForTaskSwitch(video, q);
  EXPECT_EQ(h, static_cast<int64_t>(
                   std::ceil(TestStorage().max_access_gap_sec / block_duration)));
  EXPECT_GE(h, 1);
  // h blocks of playback cover the worst-case reposition.
  EXPECT_GE(static_cast<double>(h) * block_duration, TestStorage().max_access_gap_sec);
}

TEST(EditingBoundsTest, SparseIsHalfOfDense) {
  const int64_t sparse = EditCopyBound(0.05, 0.005, DiskOccupancy::kSparse);
  const int64_t dense = EditCopyBound(0.05, 0.005, DiskOccupancy::kDense);
  EXPECT_EQ(sparse, 5);   // ceil(0.05 / (2*0.005))
  EXPECT_EQ(dense, 10);   // ceil(0.05 / 0.005)
}

TEST(EditingBoundsTest, BoundaryUsesCheaperSide) {
  EXPECT_EQ(EditCopyBoundAtBoundary(0.05, 0.01, 0.005, DiskOccupancy::kDense), 5);
  EXPECT_EQ(EditCopyBoundAtBoundary(0.05, 0.005, 0.01, DiskOccupancy::kDense), 5);
}

TEST(EditingBoundsTest, TighterLowerBoundMeansFewerCopies) {
  // A larger minimum scattering means each copied block covers more of the
  // seek distance, so fewer copies are needed.
  EXPECT_LT(EditCopyBound(0.05, 0.01, DiskOccupancy::kDense),
            EditCopyBound(0.05, 0.001, DiskOccupancy::kDense));
}

// Property sweep over granularity: MaxScattering grows with q whenever
// the configuration is feasible at q = 1 (playback scales linearly while
// per-block overheads scale linearly too, leaving slack to grow).
class GranularitySweep : public ::testing::TestWithParam<int> {};

TEST_P(GranularitySweep, BoundMonotoneInGranularity) {
  ContinuityModel model = TestModel();
  const MediaProfile video = TestVideo();
  const auto arch = static_cast<RetrievalArchitecture>(GetParam());
  double previous = model.MaxScattering(arch, video, 1);
  if (previous < 0) {
    GTEST_SKIP() << "infeasible at q=1";
  }
  for (int64_t q = 2; q <= 32; ++q) {
    const double bound = model.MaxScattering(arch, video, q);
    EXPECT_GT(bound, previous) << "q=" << q;
    previous = bound;
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, GranularitySweep,
                         ::testing::Values(static_cast<int>(RetrievalArchitecture::kSequential),
                                           static_cast<int>(RetrievalArchitecture::kPipelined),
                                           static_cast<int>(RetrievalArchitecture::kConcurrent)));

// Property sweep over concurrency: more heads always relax the bound.
class ConcurrencySweep : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrencySweep, MoreHeadsMoreSlack) {
  const int p = GetParam();
  ContinuityModel narrow = ContinuityModel(TestStorage(), TestVideoDevice(), p);
  ContinuityModel wide = ContinuityModel(TestStorage(), TestVideoDevice(), p + 1);
  EXPECT_LT(narrow.MaxScattering(RetrievalArchitecture::kConcurrent, TestVideo(), 1),
            wide.MaxScattering(RetrievalArchitecture::kConcurrent, TestVideo(), 1));
}

INSTANTIATE_TEST_SUITE_P(Degrees, ConcurrencySweep, ::testing::Range(2, 9));

}  // namespace
}  // namespace vafs
