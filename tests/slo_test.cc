#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

namespace vafs {
namespace obs {
namespace {

TraceEvent Submit(uint64_t request, SimTime time) {
  TraceEvent event;
  event.kind = TraceEventKind::kSubmitAccepted;
  event.request = request;
  event.time = time;
  return event;
}

TraceEvent RoundStart(int64_t round, int64_t k, SimTime time) {
  TraceEvent event;
  event.kind = TraceEventKind::kRoundStart;
  event.round = round;
  event.k = k;
  event.time = time;
  return event;
}

TraceEvent Serviced(uint64_t request, int64_t blocks, SimDuration block_playback, SimTime time) {
  TraceEvent event;
  event.kind = TraceEventKind::kRequestServiced;
  event.request = request;
  event.blocks = blocks;
  event.block_playback = block_playback;
  event.time = time;
  return event;
}

TraceEvent RoundEnd(int64_t round, SimDuration duration, SimTime time) {
  TraceEvent event;
  event.kind = TraceEventKind::kRoundEnd;
  event.round = round;
  event.duration = duration;
  event.time = time;
  return event;
}

// Hand-computed Eq. 11 accounting: k = 2 blocks of d = 1000 us playback give
// every saturated round a 2000 us budget.
TEST(SloTrackerTest, SlackMathMatchesHandComputedBudgets) {
  SloTracker tracker;  // defaults: 10% slack target at 99.9%
  tracker.OnEvent(Submit(1, 0));

  // Round 0: duration 1500 of budget 2000 -> slack 0.25, utilization 75%.
  tracker.OnEvent(RoundStart(0, 2, 1000));
  tracker.OnEvent(Serviced(1, 2, 1000, 2500));
  tracker.OnEvent(RoundEnd(0, 1500, 2500));
  // Round 1: duration 1800 -> slack exactly 0.10 (still meets the target).
  // Service spacing 4800 - 2500 = 2300 vs the 2000 us contract: jitter 300.
  tracker.OnEvent(RoundStart(1, 2, 3000));
  tracker.OnEvent(Serviced(1, 2, 1000, 4800));
  tracker.OnEvent(RoundEnd(1, 1800, 4800));
  // Round 2: only 1 of k=2 blocks fetched (completion tail) -> exempt.
  tracker.OnEvent(RoundStart(2, 2, 5000));
  tracker.OnEvent(Serviced(1, 1, 1000, 5600));
  tracker.OnEvent(RoundEnd(2, 600, 5600));

  TraceEvent completed;
  completed.kind = TraceEventKind::kCompleted;
  completed.request = 1;
  tracker.OnEvent(completed);

  const SloReport report = tracker.Report();
  ASSERT_EQ(report.streams.size(), 1u);
  const StreamSlo& slo = report.streams[0];
  EXPECT_EQ(slo.request, 1u);
  EXPECT_TRUE(slo.completed);
  EXPECT_EQ(slo.startup_latency, 2500);  // first service completion - submit
  EXPECT_EQ(slo.rounds_accounted, 2);
  EXPECT_EQ(slo.rounds_exempt, 1);
  EXPECT_EQ(slo.rounds_within_budget, 2);
  EXPECT_EQ(slo.rounds_meeting_slack, 2);
  EXPECT_DOUBLE_EQ(slo.min_slack_fraction, 0.10);
  EXPECT_DOUBLE_EQ(slo.WithinBudgetFraction(), 1.0);
  EXPECT_DOUBLE_EQ(slo.MeetingSlackFraction(), 1.0);
  EXPECT_DOUBLE_EQ(slo.MeanBudgetUtilizationPct(), (75.0 + 90.0) / 2.0);
  EXPECT_EQ(slo.blocks_transferred, 5);
  EXPECT_EQ(slo.jitter_usec.count(), 2);  // rounds 0->1 and 1->2 spacings
  EXPECT_TRUE(slo.ContinuityMet(report.options));
  EXPECT_TRUE(tracker.AllStreamsMeetSlo());
  EXPECT_EQ(report.BreachedStreams(), 0);
  EXPECT_EQ(report.rounds_total, 3);
}

TEST(SloTrackerTest, OverrunBreachesAndFiresHandlerOnce) {
  SloTracker tracker;
  std::vector<std::string> breaches;
  tracker.set_breach_handler([&breaches](uint64_t request, const std::string& description) {
    EXPECT_EQ(request, 7u);
    breaches.push_back(description);
  });
  tracker.OnEvent(Submit(7, 0));
  // Budget 2000 us, round took 2500 us: the deadline was missed outright.
  tracker.OnEvent(RoundStart(0, 2, 0));
  tracker.OnEvent(Serviced(7, 2, 1000, 2500));
  tracker.OnEvent(RoundEnd(0, 2500, 2500));
  // A second bad round must not re-fire the handler.
  tracker.OnEvent(RoundStart(1, 2, 3000));
  tracker.OnEvent(Serviced(7, 2, 1000, 5600));
  tracker.OnEvent(RoundEnd(1, 2600, 5600));

  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_NE(breaches[0].find("stream 7 breached continuity SLO"), std::string::npos);
  const SloReport report = tracker.Report();
  ASSERT_EQ(report.streams.size(), 1u);
  EXPECT_DOUBLE_EQ(report.streams[0].WithinBudgetFraction(), 0.0);
  EXPECT_LT(report.streams[0].min_slack_fraction, 0.0);
  EXPECT_FALSE(tracker.AllStreamsMeetSlo());
  EXPECT_EQ(report.BreachedStreams(), 1);
}

TEST(SloTrackerTest, DegradedRatioCountsSkippedBlocks) {
  SloTracker tracker;
  tracker.OnEvent(Submit(1, 0));
  tracker.OnEvent(RoundStart(0, 4, 0));
  tracker.OnEvent(Serviced(1, 3, 1000, 2000));

  TraceEvent retried;
  retried.kind = TraceEventKind::kBlockRetried;
  retried.request = 1;
  tracker.OnEvent(retried);
  TraceEvent skipped;
  skipped.kind = TraceEventKind::kBlockSkipped;
  skipped.request = 1;
  tracker.OnEvent(skipped);
  tracker.OnEvent(RoundEnd(0, 2000, 2000));

  const SloReport report = tracker.Report();
  ASSERT_EQ(report.streams.size(), 1u);
  EXPECT_EQ(report.streams[0].blocks_retried, 1);
  EXPECT_EQ(report.streams[0].blocks_skipped, 1);
  // 1 skipped of (3 transferred + 1 skipped).
  EXPECT_DOUBLE_EQ(report.streams[0].DegradedRatio(), 0.25);
}

TEST(SloTrackerTest, UnknownStreamsAndStrayEventsAreIgnored) {
  SloTracker tracker;
  // Service for a stream never submitted, and a round end with no round
  // start: neither may create state or crash.
  tracker.OnEvent(Serviced(9, 2, 1000, 100));
  tracker.OnEvent(RoundEnd(0, 100, 100));
  EXPECT_TRUE(tracker.Report().streams.empty());
  EXPECT_EQ(tracker.Report().rounds_total, 1);
}

TEST(SloTrackerTest, ReportJsonRoundTripsThroughParser) {
  SloTracker tracker;
  tracker.OnEvent(Submit(3, 0));
  tracker.OnEvent(RoundStart(0, 1, 0));
  tracker.OnEvent(Serviced(3, 1, 2000, 1500));
  tracker.OnEvent(RoundEnd(0, 1500, 1500));

  Result<JsonValue> parsed = JsonValue::Parse(tracker.Report().ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->StringOr("kind", ""), "vafs.slo.report");
  EXPECT_EQ(parsed->NumberOr("version", 0), 1.0);
  EXPECT_EQ(parsed->NumberOr("rounds_total", 0), 1.0);
  const JsonValue* streams = parsed->Find("streams");
  ASSERT_NE(streams, nullptr);
  ASSERT_TRUE(streams->is_array());
  ASSERT_EQ(streams->array.size(), 1u);
  const JsonValue& stream = streams->array[0];
  EXPECT_EQ(stream.NumberOr("request", 0), 3.0);
  EXPECT_EQ(stream.NumberOr("rounds_accounted", 0), 1.0);
  // Slack = (2000 - 1500) / 2000 = 25%.
  EXPECT_NEAR(stream.NumberOr("slack_pct_p50", 0), 25.0, 1e-6);
  EXPECT_EQ(stream.NumberOr("continuity_met", 0), 1.0);
}

TEST(FlightRecorderTest, ClassifiesBySeverity) {
  TraceEvent event;
  event.kind = TraceEventKind::kRoundEnd;
  EXPECT_EQ(ClassifyTraceEvent(event), TraceSeverity::kInfo);
  event.kind = TraceEventKind::kDiskFault;
  EXPECT_EQ(ClassifyTraceEvent(event), TraceSeverity::kWarning);
  event.kind = TraceEventKind::kPowerCut;
  EXPECT_EQ(ClassifyTraceEvent(event), TraceSeverity::kCritical);
  EXPECT_STREQ(TraceSeverityName(TraceSeverity::kCritical), "crit");
}

TEST(FlightRecorderTest, RingsDropOldestPerSeverity) {
  FlightRecorder recorder(FlightRecorderOptions{.ring_capacity = 4, .dump_once = true});
  TraceEvent info;
  info.kind = TraceEventKind::kRoundEnd;
  for (int i = 0; i < 10; ++i) {
    info.round = i;
    recorder.OnEvent(info);
  }
  EXPECT_EQ(recorder.events_seen(), 10);
  EXPECT_EQ(recorder.dropped(TraceSeverity::kInfo), 6);
  EXPECT_EQ(recorder.dropped(TraceSeverity::kWarning), 0);
  // The dump keeps the 4 newest info events and reports the drop count.
  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("4 events retained"), std::string::npos) << dump;
  EXPECT_NE(dump.find("6 info dropped"), std::string::npos) << dump;
  EXPECT_NE(dump.find("round=9"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("round=5"), std::string::npos) << dump;
}

TEST(FlightRecorderTest, CriticalEventAutoDumpsOnceUntilRearmed) {
  FlightRecorder recorder;
  std::vector<std::string> reasons;
  recorder.set_dump_handler([&reasons](const std::string& reason, const std::string& dump) {
    reasons.push_back(reason);
    EXPECT_NE(dump.find("flight recorder:"), std::string::npos);
  });

  TraceEvent info;
  info.kind = TraceEventKind::kRequestServiced;
  info.request = 1;
  recorder.OnEvent(info);
  TraceEvent cut;
  cut.kind = TraceEventKind::kPowerCut;
  recorder.OnEvent(cut);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "power_cut");
  // The dump merges rings in arrival order: info before the cut.
  EXPECT_LT(recorder.last_dump().find("request_serviced"),
            recorder.last_dump().find("power_cut"));

  // Later criticals are counted but do not re-dump while armed-once.
  recorder.OnEvent(cut);
  EXPECT_EQ(reasons.size(), 1u);
  EXPECT_EQ(recorder.triggers(), 2);
  recorder.Rearm();
  recorder.OnEvent(cut);
  EXPECT_EQ(reasons.size(), 2u);
}

TEST(FlightRecorderTest, ExternalTriggerCarriesReason) {
  FlightRecorder recorder;
  TraceEvent info;
  info.kind = TraceEventKind::kRoundStart;
  recorder.OnEvent(info);
  recorder.TriggerDump("stream 4 breached continuity SLO");
  EXPECT_EQ(recorder.triggers(), 1);
  EXPECT_EQ(recorder.last_dump_reason(), "stream 4 breached continuity SLO");
  EXPECT_NE(recorder.last_dump().find("round_start"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace vafs
