#include <gtest/gtest.h>

#include "src/media/vbr_source.h"
#include "src/msm/recorder.h"
#include "src/rope/rope_server.h"
#include "src/vafs/persistence.h"
#include "tests/test_support.h"

namespace vafs {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest()
      : disk_(TestDiskParameters()),
        store_(std::make_unique<StrandStore>(&disk_)),
        server_(std::make_unique<RopeServer>(store_.get())),
        texts_(std::make_unique<TextFileService>(&disk_, &store_->allocator())) {}

  StrandPlacement VideoPlacement() {
    ContinuityModel model(TestStorage(), TestVideoDevice());
    return *model.DerivePlacement(RetrievalArchitecture::kPipelined, TestVideo());
  }

  RopeId RecordAvRope(uint64_t seed, double duration) {
    VideoSource video(TestVideo(), seed);
    AudioSource audio(TestAudio(), SpeechProfile{}, seed);
    RecordingResult v = *RecordVideo(store_.get(), &video, VideoPlacement(), duration);
    RecordingResult a =
        *RecordAudio(store_.get(), &audio, SilenceDetector(), StrandPlacement{512, 0.0, 0.1},
                     duration);
    return *server_->CreateRope("alice", v.strand, a.strand);
  }

  Disk disk_;
  std::unique_ptr<StrandStore> store_;
  std::unique_ptr<RopeServer> server_;
  std::unique_ptr<TextFileService> texts_;
};

TEST_F(PersistenceTest, EmptyImageRoundTrips) {
  Result<ImageReceipt> receipt = SaveImage(store_.get(), server_.get(), texts_.get());
  ASSERT_TRUE(receipt.ok());
  Result<LoadedImage> image = LoadImage(&disk_);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->strands_recovered, 0);
  EXPECT_EQ(image->ropes_recovered, 0);
  EXPECT_EQ(image->text_files_recovered, 0);
}

TEST_F(PersistenceTest, LoadWithoutImageFails) {
  EXPECT_EQ(LoadImage(&disk_).status().code(), ErrorCode::kNotFound);
}

TEST_F(PersistenceTest, FullStateSurvivesRemount) {
  const RopeId rope = RecordAvRope(1, 2.0);
  ASSERT_TRUE(server_->AddTrigger("alice", rope, Trigger{1.0, "mark"}).ok());
  AccessControl access;
  access.play_users = {"bob"};
  ASSERT_TRUE(server_->SetAccess("alice", rope, access).ok());
  const std::vector<uint8_t> note{'h', 'e', 'l', 'l', 'o'};
  ASSERT_TRUE(texts_->Write("note.txt", note).ok());

  // Capture pre-crash ground truth.
  const Rope* rope_before = *server_->Find(rope);
  const StrandId video_strand = rope_before->video().segments[0].strand;
  std::vector<uint8_t> block0_before;
  ASSERT_TRUE(store_->ReadBlock(video_strand, 0, &block0_before).ok());
  const int64_t free_before = store_->allocator().free_sectors();

  Result<ImageReceipt> receipt = SaveImage(store_.get(), server_.get(), texts_.get());
  ASSERT_TRUE(receipt.ok());
  const int64_t free_after_save = store_->allocator().free_sectors();

  // "Crash": discard all in-memory layers; only the Disk object survives.
  texts_.reset();
  server_.reset();
  store_.reset();

  Result<LoadedImage> image = LoadImage(&disk_);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->strands_recovered, 2);
  EXPECT_EQ(image->ropes_recovered, 1);
  EXPECT_EQ(image->text_files_recovered, 1);

  // Rope metadata intact.
  Result<const Rope*> recovered = image->ropes->Find(rope);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->creator(), "alice");
  EXPECT_NEAR((*recovered)->LengthSec(), 2.0, 0.05);
  ASSERT_EQ((*recovered)->triggers().size(), 1u);
  EXPECT_EQ((*recovered)->triggers()[0].text, "mark");
  EXPECT_EQ((*recovered)->access().play_users, std::vector<std::string>{"bob"});

  // Strand data identical (read through the recovered index).
  std::vector<uint8_t> block0_after;
  ASSERT_TRUE(image->store->ReadBlock(video_strand, 0, &block0_after).ok());
  EXPECT_EQ(block0_after, block0_before);

  // Allocator reconstructed exactly (same allocated set).
  EXPECT_EQ(image->store->allocator().free_sectors(), free_after_save);
  (void)free_before;

  // Text file intact.
  Result<std::vector<uint8_t>> read_note = image->texts->Read("note.txt");
  ASSERT_TRUE(read_note.ok());
  EXPECT_EQ(*read_note, note);
}

TEST_F(PersistenceTest, SilenceBlocksSurviveRecovery) {
  AudioSource audio(TestAudio(), SpeechProfile{.silence_mean_sec = 1.5}, 3);
  RecordingResult recorded = *RecordAudio(store_.get(), &audio, SilenceDetector(),
                                          StrandPlacement{512, 0.0, 0.1}, 20.0);
  ASSERT_GT(recorded.silence_blocks, 0);
  const RopeId rope = *server_->CreateRope("alice", kNullStrand, recorded.strand);
  (void)rope;
  ASSERT_TRUE(SaveImage(store_.get(), server_.get(), texts_.get()).ok());

  Result<LoadedImage> image = LoadImage(&disk_);
  ASSERT_TRUE(image.ok());
  Result<const Strand*> strand = image->store->Get(recorded.strand);
  ASSERT_TRUE(strand.ok());
  EXPECT_EQ((*strand)->index().silence_block_count(), recorded.silence_blocks);
  EXPECT_EQ((*strand)->block_count(), recorded.blocks_total);
}

TEST_F(PersistenceTest, ResaveReusesRootAndFreesOldCatalog) {
  const RopeId rope1 = RecordAvRope(1, 1.0);
  Result<ImageReceipt> first = SaveImage(store_.get(), server_.get(), texts_.get());
  ASSERT_TRUE(first.ok());
  const int64_t free_after_first = store_->allocator().free_sectors();

  const RopeId rope2 = RecordAvRope(2, 1.0);
  Result<ImageReceipt> second =
      SaveImage(store_.get(), server_.get(), texts_.get(), &*first);
  ASSERT_TRUE(second.ok());
  (void)free_after_first;

  Result<LoadedImage> image = LoadImage(&disk_);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->ropes_recovered, 2);
  EXPECT_TRUE(image->ropes->Find(rope1).ok());
  EXPECT_TRUE(image->ropes->Find(rope2).ok());
}

TEST_F(PersistenceTest, RecoveredStoreKeepsAllocatingCorrectly) {
  RecordAvRope(1, 1.0);
  ASSERT_TRUE(SaveImage(store_.get(), server_.get(), texts_.get()).ok());
  Result<LoadedImage> image = LoadImage(&disk_);
  ASSERT_TRUE(image.ok());

  // Record more media in the recovered store; nothing may collide (the
  // disk's data retention would surface corruption via content checks).
  VideoSource video(TestVideo(), 99);
  Result<RecordingResult> more =
      RecordVideo(image->store.get(), &video, VideoPlacement(), 1.0);
  ASSERT_TRUE(more.ok());
  // Old content still reads back fine after new writes.
  for (StrandId id : image->store->AllIds()) {
    Result<const Strand*> strand = image->store->Get(id);
    ASSERT_TRUE(strand.ok());
    std::vector<uint8_t> payload;
    EXPECT_TRUE(image->store->ReadBlock(id, 0, &payload).ok());
  }
}

TEST_F(PersistenceTest, EditedRopesSurvive) {
  const RopeId base = RecordAvRope(1, 3.0);
  const RopeId clip = RecordAvRope(2, 1.0);
  ASSERT_TRUE(server_
                  ->Insert("alice", base, 1.0, MediaSelector::kAudioVisual, clip,
                           TimeInterval{0.0, 1.0})
                  .ok());
  const Rope* before = *server_->Find(base);
  const size_t segments_before = before->video().segments.size();
  const double length_before = before->LengthSec();

  ASSERT_TRUE(SaveImage(store_.get(), server_.get(), texts_.get()).ok());
  Result<LoadedImage> image = LoadImage(&disk_);
  ASSERT_TRUE(image.ok());
  const Rope* after = *image->ropes->Find(base);
  EXPECT_EQ(after->video().segments.size(), segments_before);
  EXPECT_NEAR(after->LengthSec(), length_before, 1e-9);
  // The recovered rope resolves and its interests still protect strands.
  EXPECT_GT(image->ropes->InterestCount(after->video().segments[0].strand), 0);
  EXPECT_EQ(image->ropes->CollectGarbage(), 0);
}

TEST_F(PersistenceTest, VbrStrandsWithVariableBlockSizesRecover) {
  // VBR blocks have differing sector counts; recovery must rebuild the
  // exact per-block extents from the on-disk primary blocks.
  VbrProfile vbr;
  vbr.group_of_pictures = 10;
  VbrVideoSource source(TestVideo(), vbr, 5);
  Result<RecordingResult> recorded =
      RecordVbrVideo(store_.get(), &source, StrandPlacement{4, 0.0, 0.05}, 4.0);
  ASSERT_TRUE(recorded.ok());
  const Strand* before = *store_->Get(recorded->strand);
  const std::vector<PrimaryEntry> entries_before = before->index().entries();
  (void)server_->CreateRope("alice", recorded->strand, kNullStrand);

  ASSERT_TRUE(SaveImage(store_.get(), server_.get(), texts_.get()).ok());
  Result<LoadedImage> image = LoadImage(&disk_);
  ASSERT_TRUE(image.ok());
  Result<const Strand*> after = image->store->Get(recorded->strand);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->index().entries(), entries_before);
  // Data reads back identically through the recovered index.
  for (int64_t b = 0; b < (*after)->block_count(); ++b) {
    std::vector<uint8_t> x;
    std::vector<uint8_t> y;
    ASSERT_TRUE(image->store->ReadBlock(recorded->strand, b, &y).ok());
    ASSERT_TRUE(disk_.Read(entries_before[static_cast<size_t>(b)].sector,
                           entries_before[static_cast<size_t>(b)].sector_count, &x)
                    .ok());
    EXPECT_EQ(x, y) << "block " << b;
  }
}

TEST_F(PersistenceTest, ManyStrandIndexLevelsRecover) {
  // A strand long enough to need several primary blocks and a secondary
  // fan-out exercises the full HB -> SB -> PB walk.
  Result<std::unique_ptr<StrandWriter>> writer =
      store_->CreateStrand(TestAudio(), StrandPlacement{64, 0.0, 0.1});
  ASSERT_TRUE(writer.ok());
  for (int64_t b = 0; b < 600; ++b) {  // > 2 primary blocks at fanout 256
    if (b % 7 == 3) {
      ASSERT_TRUE((*writer)->AppendSilence().ok());
    } else {
      ASSERT_TRUE((*writer)->AppendBlock(std::vector<uint8_t>(64, 1)).ok());
    }
  }
  Result<StrandId> id = (*writer)->Finish(600 * 64);
  ASSERT_TRUE(id.ok());
  const int64_t silences = (*store_->Get(*id))->index().silence_block_count();
  (void)server_->CreateRope("alice", kNullStrand, *id);

  ASSERT_TRUE(SaveImage(store_.get(), server_.get(), texts_.get()).ok());
  Result<LoadedImage> image = LoadImage(&disk_);
  ASSERT_TRUE(image.ok());
  Result<const Strand*> recovered = image->store->Get(*id);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->block_count(), 600);
  EXPECT_EQ((*recovered)->index().silence_block_count(), silences);
  EXPECT_EQ((*recovered)->index().primary_block_count(), 3);
}

}  // namespace
}  // namespace vafs
