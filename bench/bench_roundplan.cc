// Round I/O planner: what block-level C-SCAN + coalescing + the shared
// block cache buy over the paper's per-request round loop.
//
// Scenario A ("library"): 8 admitted streams playing distinct titles
// spread across one seek-dominated disk. The same workload runs naive
// (round-robin, one disk op per block), per-request SCAN, planned, and
// planned + cache; the mean realized round time must strictly drop from
// naive to planned — that is the slack the planner reclaims from the
// worst-case switch charge — while every stream stays fault-free inside
// its Eq. 11 budget.
//
// Scenario B ("shared title"): viewers of ONE title beyond the Eq. 17
// ceiling n_max. Cache-aware admission converts the measured sharing into
// extra admitted viewers (dedup + cache hits make their rounds nearly
// free); the bench reports achieved n vs n_max and demands zero SLO
// breaches.
//
// CI gates on BENCH_roundplan_metrics.json via tools/check_roundplan.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"

namespace vafs {
namespace {

obs::MetricsRegistry g_metrics;
obs::MetricsSink g_metrics_sink(&g_metrics);

// Seek-dominated configuration (as in bench_scan): cheap transfers, slow
// arm — the regime where transfer ordering is the round cost.
DiskParameters RoundplanDisk() {
  DiskParameters params;
  params.cylinders = 5000;
  params.surfaces = 16;
  params.sectors_per_track = 256;  // R_dt ~ 262 Mbit/s
  params.rpm = 15000.0;            // 2 ms average latency
  params.min_seek_ms = 5.0;
  params.max_seek_ms = 50.0;
  return params;
}

// Collects realized round durations from the scheduler's trace stream.
class RoundDurations : public obs::TraceSink {
 public:
  void OnEvent(const obs::TraceEvent& event) override {
    if (event.kind == obs::TraceEventKind::kRoundEnd && event.duration > 0) {
      total_usec_ += static_cast<double>(event.duration);
      ++rounds_;
    }
  }
  double MeanUsec() const { return rounds_ > 0 ? total_usec_ / static_cast<double>(rounds_) : 0.0; }
  int64_t rounds() const { return rounds_; }

 private:
  double total_usec_ = 0.0;
  int64_t rounds_ = 0;
};

struct ModeOutcome {
  int admitted = 0;
  int64_t violations = 0;
  double mean_round_usec = 0.0;
  int64_t rounds = 0;
  double within_budget_min = 1.0;  // worst stream's within-budget fraction
};

// Scenario A: n distinct titles spread across the disk, admitted through
// the normal Eq. 17 path, played to completion under `order`.
ModeOutcome RunLibrary(ServiceOrder order, int n, BlockCache* cache) {
  const MediaProfile video = UvcCompressedVideo();
  const double duration = 20.0;
  Disk disk(RoundplanDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  const StorageTimings storage = StorageTimings::FromDiskModel(disk.model());
  ContinuityModel model(storage, UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);

  std::vector<std::vector<PrimaryEntry>> strands;
  const int64_t blocks_per_stream =
      static_cast<int64_t>(duration * video.units_per_sec) / placement.granularity;
  const std::vector<uint8_t> payload(
      static_cast<size_t>(placement.granularity * video.bits_per_unit / 8), 0);
  for (int s = 0; s < n; ++s) {
    Result<std::unique_ptr<StrandWriter>> writer = store.CreateStrand(video, placement);
    (*writer)->SetAllocationHint(s * (disk.total_sectors() / n));
    for (int64_t b = 0; b < blocks_per_stream; ++b) {
      (void)(*writer)->AppendBlock(payload);
    }
    const StrandId id = *(*writer)->Finish(blocks_per_stream * placement.granularity);
    const Strand* strand = *store.Get(id);
    std::vector<PrimaryEntry> blocks;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      blocks.push_back(*strand->index().Lookup(b));
    }
    strands.push_back(std::move(blocks));
  }

  Simulator sim;
  AdmissionControl admission(storage, store.AverageScatteringSec());
  RoundDurations rounds;
  obs::SloTracker slo;
  obs::TeeSink tee;
  tee.Add(&rounds);
  tee.Add(&slo);
  tee.Add(&g_metrics_sink);
  // Spans on: every mode's rounds get critical-path attribution, feeding
  // the critical_path.* metrics into the registry artifact.
  obs::CriticalPathAnalyzer analyzer(obs::CriticalPathOptions{&tee});
  SchedulerOptions options;
  options.service_order = order;
  options.block_cache = cache;
  options.trace = &analyzer;
  options.emit_spans = true;
  ServiceScheduler scheduler(&store, &sim, admission, options);

  ModeOutcome outcome;
  std::vector<RequestId> ids;
  for (int s = 0; s < n; ++s) {
    PlaybackRequest request;
    request.blocks = strands[static_cast<size_t>(s)];
    request.block_duration =
        SecondsToUsec(static_cast<double>(placement.granularity) / video.units_per_sec);
    request.spec = RequestSpec{video, placement.granularity};
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    if (!id.ok()) {
      break;
    }
    ids.push_back(*id);
    ++outcome.admitted;
  }
  scheduler.RunUntilIdle();

  for (RequestId id : ids) {
    outcome.violations += scheduler.stats(id)->continuity_violations;
  }
  outcome.mean_round_usec = rounds.MeanUsec();
  outcome.rounds = rounds.rounds();
  const obs::SloReport report = slo.Report();
  for (const obs::StreamSlo& stream : report.streams) {
    outcome.within_budget_min = std::min(outcome.within_budget_min,
                                         stream.WithinBudgetFraction());
  }
  return outcome;
}

struct SharedOutcome {
  int64_t n_max = 0;
  int achieved_n = 0;
  int cache_admitted = 0;
  int64_t breaches = 0;
  double within_budget_min = 1.0;
  double cache_hit_rate = 0.0;
  int64_t cache_hits = 0;
  int64_t disk_reads_deduped = 0;
};

// Scenario B: viewers of one title past the Eq. 17 ceiling, admitted by
// measured sharing through the facade's planned + cache stack.
SharedOutcome RunSharedTitle() {
  const double seconds = 12.0;
  FileSystemConfig config = TestbedConfig();
  config.disk = FutureDisk();
  config.retain_data = false;
  config.scheduler.service_order = ServiceOrder::kPlanned;
  config.scheduler.cache_aware_admission = true;
  config.block_cache.capacity_bytes = 64 << 20;
  config.telemetry.enabled = true;
  config.telemetry.trace_capacity = 1 << 16;
  config.telemetry.spans = true;
  MultimediaFileSystem fs(config);

  SharedOutcome outcome;
  VideoSource source(UvcCompressedVideo(), 42);
  Result<MultimediaFileSystem::RecordResult> recorded =
      fs.Record("bench", &source, nullptr, seconds);
  if (!recorded.ok()) {
    std::printf("RECORD failed: %s\n", recorded.status().ToString().c_str());
    return outcome;
  }

  const StrandPlacement placement = *fs.PlacementFor(UvcCompressedVideo());
  outcome.n_max =
      fs.admission().Analyze({RequestSpec{UvcCompressedVideo(), placement.granularity}}).n_max;

  std::vector<RequestId> ids;
  const int attempts = static_cast<int>(outcome.n_max) + 4;
  for (int v = 0; v < attempts; ++v) {
    Result<RequestId> id =
        fs.Play("bench", recorded->rope, Medium::kVideo, TimeInterval{0.0, seconds});
    if (!id.ok()) {
      break;
    }
    ids.push_back(*id);
  }
  outcome.achieved_n = static_cast<int>(ids.size());
  fs.RunUntilIdle();

  for (RequestId id : ids) {
    Result<RequestStats> stats = fs.Stats(id);
    if (stats.ok() && stats->cache_admitted) {
      ++outcome.cache_admitted;
    }
  }
  const obs::SloReport report = fs.SloSnapshot();
  for (const obs::StreamSlo& stream : report.streams) {
    outcome.within_budget_min =
        std::min(outcome.within_budget_min, stream.WithinBudgetFraction());
    if (!stream.ContinuityMet(report.options) || stream.WithinBudgetFraction() < 1.0) {
      ++outcome.breaches;
    }
  }
  if (fs.block_cache() != nullptr) {
    const BlockCacheStats& stats = fs.block_cache()->stats();
    outcome.cache_hits = stats.hits;
    outcome.cache_hit_rate = fs.block_cache()->RecentHitRate();
  }

  WriteSloJson(report, "roundplan");
  // The causal-span artifacts CI gates on: the per-round attribution
  // table (check_criticalpath.py), the span tree as Perfetto slices, and
  // folded flame stacks for tools/vafs_flame.py.
  if (const obs::CriticalPathAnalyzer* analyzer = fs.critical_path(); analyzer != nullptr) {
    WriteTextArtifact(analyzer->ToJson(), "roundplan", "_criticalpath.json", "critical path");
  }
  if (obs::TraceLog* log = fs.trace_log(); log != nullptr) {
    WriteBenchArtifact(obs::PerfettoExporter(&log->events()), "roundplan");
    WriteBenchArtifact(obs::FoldedStackExporter(&log->events()), "roundplan");
  }
  return outcome;
}

void WriteRoundplanJson(const ModeOutcome& naive, const ModeOutcome& scan,
                        const ModeOutcome& planned, const ModeOutcome& planned_cache,
                        const SharedOutcome& shared) {
  const char* path = "BENCH_roundplan_metrics.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"roundplan\": {\n"
               "    \"streams\": %d,\n"
               "    \"naive_mean_round_usec\": %.3f,\n"
               "    \"scan_mean_round_usec\": %.3f,\n"
               "    \"planned_mean_round_usec\": %.3f,\n"
               "    \"planned_cache_mean_round_usec\": %.3f,\n"
               "    \"naive_violations\": %lld,\n"
               "    \"planned_violations\": %lld,\n"
               "    \"planned_cache_violations\": %lld,\n"
               "    \"planned_within_budget_min\": %.6f,\n"
               "    \"planned_cache_within_budget_min\": %.6f\n"
               "  },\n"
               "  \"shared_title\": {\n"
               "    \"n_max\": %lld,\n"
               "    \"achieved_n\": %d,\n"
               "    \"cache_admitted\": %d,\n"
               "    \"breaches\": %lld,\n"
               "    \"within_budget_min\": %.6f,\n"
               "    \"cache_hits\": %lld,\n"
               "    \"cache_hit_rate\": %.4f\n"
               "  }\n"
               "}\n",
               naive.admitted, naive.mean_round_usec, scan.mean_round_usec,
               planned.mean_round_usec, planned_cache.mean_round_usec,
               static_cast<long long>(naive.violations),
               static_cast<long long>(planned.violations),
               static_cast<long long>(planned_cache.violations),
               planned.within_budget_min, planned_cache.within_budget_min,
               static_cast<long long>(shared.n_max), shared.achieved_n, shared.cache_admitted,
               static_cast<long long>(shared.breaches), shared.within_budget_min,
               static_cast<long long>(shared.cache_hits), shared.cache_hit_rate);
  std::fclose(file);
  std::printf("metrics: %s\n", path);
}

void PrintRoundplanTables() {
  PrintHeader("round planner", "naive vs per-request SCAN vs planned rounds, 8 titles");
  PrintOperatingPoint(RoundplanDisk());
  const int n = 8;
  const ModeOutcome naive = RunLibrary(ServiceOrder::kRoundRobin, n, nullptr);
  const ModeOutcome scan = RunLibrary(ServiceOrder::kSeekScan, n, nullptr);
  const ModeOutcome planned = RunLibrary(ServiceOrder::kPlanned, n, nullptr);
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 64 << 20});
  const ModeOutcome planned_cache = RunLibrary(ServiceOrder::kPlanned, n, &cache);

  std::printf("%16s | %8s | %14s | %9s | %8s\n", "mode", "admitted", "mean round", "glitches",
              "within%");
  const auto row = [](const char* name, const ModeOutcome& mode) {
    std::printf("%16s | %8d | %11.2f ms | %9" PRId64 " | %7.2f%%\n", name, mode.admitted,
                mode.mean_round_usec / 1e3, mode.violations, mode.within_budget_min * 100.0);
  };
  row("naive", naive);
  row("per-request scan", scan);
  row("planned", planned);
  row("planned+cache", planned_cache);
  std::printf("(one C-SCAN elevator pass over the round's coalesced transfers replaces\n"
              " per-block worst-case repositioning; the admission charge stays Eq. 17)\n");

  PrintHeader("shared title", "cache-aware admission past the Eq. 17 ceiling");
  const SharedOutcome shared = RunSharedTitle();
  std::printf("n_max = %lld, achieved n = %d (%d cache-admitted), breaches = %lld\n",
              static_cast<long long>(shared.n_max), shared.achieved_n, shared.cache_admitted,
              static_cast<long long>(shared.breaches));
  std::printf("cache hits = %lld, recent hit rate = %.2f, worst within-budget = %.2f%%\n",
              static_cast<long long>(shared.cache_hits), shared.cache_hit_rate,
              shared.within_budget_min * 100.0);
  std::printf("(viewers of one strand ride dedup'd transfers and resident blocks, so\n"
              " admitting past n_max adds no disk work until sharing collapses)\n");

  WriteRoundplanJson(naive, scan, planned, planned_cache, shared);
}

void BM_PlannedRound(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLibrary(ServiceOrder::kPlanned, 4, nullptr).violations);
  }
}
BENCHMARK(BM_PlannedRound)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintRoundplanTables();
  vafs::WriteMetricsJson(vafs::g_metrics, "roundplan_registry");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
