// Graceful degradation under disk faults: a 4-stream playback workload is
// swept across transient read-fault rates, and the table reports how much
// fault handling (re-reads within the round's Eq. 11 slack, degraded
// playback for the rest) costs in continuity terms. The paper assumes a
// fault-free disk; this bench quantifies how far that assumption can be
// relaxed before streams actually glitch.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench/bench_support.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"

namespace vafs {
namespace {

// Every scenario folds its trace into one registry, dumped as JSON at exit.
obs::MetricsRegistry g_metrics;
obs::MetricsSink g_metrics_sink(&g_metrics);

struct FaultSweepResult {
  int streams_completed = 0;
  int64_t faults_seen = 0;
  int64_t blocks_retried = 0;
  int64_t blocks_skipped = 0;
  int64_t continuity_violations = 0;
  bool auditor_clean = false;
};

FaultSweepResult RunScenario(double read_fault_rate, int streams, double seconds,
                             obs::TraceLog* log = nullptr, obs::SloTracker* slo = nullptr) {
  const MediaProfile video = UvcCompressedVideo();
  FaultOptions faults;
  faults.seed = 2024;
  faults.read_fault_rate = read_fault_rate;
  Disk disk(FutureDisk(), DiskOptions{.retain_data = false, .faults = faults});
  StrandStore store(&disk);
  obs::ContinuityAuditor auditor{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::TeeSink tee;
  tee.Add(&auditor);
  tee.Add(&g_metrics_sink);
  if (log != nullptr) {
    tee.Add(log);
  }
  if (slo != nullptr) {
    tee.Add(slo);
  }
  store.set_trace_sink(&tee);
  // The device feeds the same tee so the Perfetto export carries the disk
  // timeline next to the scheduler's (the auditor ignores device events).
  disk.set_trace_sink(&tee);

  ContinuityModel model(StorageTimings::FromDiskModel(disk.model()), UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);

  // Record the strands up front (writes are fault-free in this sweep, and
  // the read-fault coin is never consulted during recording, so the
  // playback fault schedule is identical across policies).
  std::vector<std::vector<PrimaryEntry>> strands;
  for (int s = 0; s < streams; ++s) {
    VideoSource source(video, static_cast<uint64_t>(s) + 1);
    RecordingResult recorded = *RecordVideo(&store, &source, placement, seconds);
    const Strand* strand = *store.Get(recorded.strand);
    std::vector<PrimaryEntry> blocks;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      blocks.push_back(*strand->index().Lookup(b));
    }
    strands.push_back(std::move(blocks));
  }

  Simulator sim;
  AdmissionControl admission(StorageTimings::FromDiskModel(disk.model()),
                             store.AverageScatteringSec());
  SchedulerOptions options;
  options.trace = &tee;
  ServiceScheduler scheduler(&store, &sim, admission, options);

  std::vector<RequestId> ids;
  for (int s = 0; s < streams; ++s) {
    PlaybackRequest request;
    request.blocks = strands[static_cast<size_t>(s)];
    request.block_duration =
        SecondsToUsec(static_cast<double>(placement.granularity) / video.units_per_sec);
    request.spec = RequestSpec{video, placement.granularity};
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    if (id.ok()) {
      ids.push_back(*id);
    }
  }
  scheduler.RunUntilIdle();

  FaultSweepResult result;
  for (RequestId id : ids) {
    const RequestStats stats = *scheduler.stats(id);
    if (stats.completed) {
      ++result.streams_completed;
    }
    result.faults_seen += stats.faults_seen;
    result.blocks_retried += stats.blocks_retried;
    result.blocks_skipped += stats.blocks_skipped;
    result.continuity_violations += stats.continuity_violations;
  }
  result.auditor_clean = auditor.Clean();
  return result;
}

void PrintFaultTable() {
  PrintHeader("fault injection", "retry-within-slack vs degraded playback");
  PrintOperatingPoint(FutureDisk());
  const int streams = 4;
  const double seconds = 20.0;
  std::printf("4 streams x %.0f s playback; retries only while the round fits its\n"
              "Eq. 11 budget, skipped blocks play as silence (degraded frame)\n\n",
              seconds);
  std::printf("%10s | %9s %7s %8s %8s %11s %8s %8s %7s\n", "fault rate", "completed", "faults",
              "retried", "skipped", "violations", "auditor", "within%", "degr%");
  for (double rate : {0.0, 0.005, 0.01, 0.05, 0.25}) {
    // Each rate gets its own trace log and SLO tracker; the clean run and
    // the heaviest fault run also leave artifacts for CI.
    obs::TraceLog log(1 << 16);
    obs::SloTracker slo;
    const FaultSweepResult result = RunScenario(rate, streams, seconds, &log, &slo);
    const obs::SloReport report = slo.Report();
    double min_within = 1.0;
    double max_degraded = 0.0;
    for (const obs::StreamSlo& stream : report.streams) {
      min_within = std::min(min_within, stream.WithinBudgetFraction());
      max_degraded = std::max(max_degraded, stream.DegradedRatio());
    }
    std::printf("%9.1f%% | %7d/%d %7" PRId64 " %8" PRId64 " %8" PRId64 " %11" PRId64
                " %8s %7.2f%% %6.2f%%\n",
                rate * 100.0, result.streams_completed, streams, result.faults_seen,
                result.blocks_retried, result.blocks_skipped, result.continuity_violations,
                result.auditor_clean ? "clean" : "FLAGGED", min_within * 100.0,
                max_degraded * 100.0);
    if (rate == 0.0) {
      WriteSloJson(report, "faults_clean");
    } else if (rate == 0.25) {
      WriteSloJson(report, "faults");
      WriteBenchArtifact(obs::PerfettoExporter(&log.events()), "faults");
      WriteBenchArtifact(obs::PrometheusExporter(&g_metrics), "faults");
    }
  }
  std::printf("(faults = injected transient read errors seen by the scheduler;\n"
              " retried = re-reads issued inside the round's continuity slack;\n"
              " skipped = blocks given up on and played as silence;\n"
              " within%% = min over streams of accounted rounds inside the Eq. 11 budget;\n"
              " degr%% = max over streams of blocks rendered as silence)\n");
}

void BM_FourStreamsAt1Percent(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(0.01, 4, 5.0).streams_completed);
  }
}
BENCHMARK(BM_FourStreamsAt1Percent)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintFaultTable();
  vafs::WriteMetricsJson(vafs::g_metrics, "faults");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
