// Section 4 silence elimination: "if the average energy level over a block
// falls below a threshold, no audio data is stored for that duration",
// with NULL primary-index entries acting as delay holders.
//
// Sweeps the speech/silence mix of the synthetic source and reports the
// storage saved by elimination, the block counts, and the effect of the
// audio block size (bigger blocks -> fewer whole-block silences).

#include <benchmark/benchmark.h>

#include <cinttypes>

#include "bench/bench_support.h"
#include "src/msm/recorder.h"

namespace vafs {
namespace {

struct SilenceRun {
  int64_t blocks = 0;
  int64_t silent_blocks = 0;
  int64_t sectors_used = 0;
};

SilenceRun Record(double silence_mean_sec, int64_t granularity, double threshold,
                  uint64_t seed) {
  Disk disk(TestbedDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  SpeechProfile speech;
  speech.silence_mean_sec = silence_mean_sec;
  AudioSource source(TelephoneAudio(), speech, seed);
  const StrandPlacement placement{granularity, 0.0, 0.2};
  const int64_t free_before = store.allocator().free_sectors();
  RecordingResult result =
      *RecordAudio(&store, &source, SilenceDetector(threshold), placement, 60.0);
  SilenceRun run;
  run.blocks = result.blocks_total;
  run.silent_blocks = result.silence_blocks;
  run.sectors_used = free_before - store.allocator().free_sectors();
  return run;
}

void PrintSilenceTable() {
  PrintHeader("Section 4", "silence elimination savings (60 s of telephone audio)");
  std::printf("audio: %s; block = 1024 samples (128 ms)\n",
              TelephoneAudio().ToString().c_str());
  std::printf("%14s | %8s %10s %12s %10s\n", "silence mean", "blocks", "silent",
              "sectors", "saved");
  for (double silence_mean : {0.2, 0.6, 1.2, 2.5}) {
    const SilenceRun with = Record(silence_mean, 1024, 100.0, 42);
    const SilenceRun without = Record(silence_mean, 1024, 0.0, 42);
    std::printf("%12.1f s | %8lld %10lld %12lld %9.1f%%\n", silence_mean,
                static_cast<long long>(with.blocks), static_cast<long long>(with.silent_blocks),
                static_cast<long long>(with.sectors_used),
                100.0 * (1.0 - static_cast<double>(with.sectors_used) /
                                   static_cast<double>(without.sectors_used)));
  }

  std::printf("\nblock-size sensitivity (silence mean 0.6 s):\n");
  std::printf("%16s | %8s %10s %10s\n", "block", "blocks", "silent", "saved");
  for (int64_t granularity : {256, 1024, 4096, 16384}) {
    const SilenceRun with = Record(0.6, granularity, 100.0, 42);
    const SilenceRun without = Record(0.6, granularity, 0.0, 42);
    std::printf("%7lld (%4.0fms) | %8lld %10lld %9.1f%%\n",
                static_cast<long long>(granularity),
                static_cast<double>(granularity) / 8.0,
                static_cast<long long>(with.blocks),
                static_cast<long long>(with.silent_blocks),
                100.0 * (1.0 - static_cast<double>(with.sectors_used) /
                                   static_cast<double>(without.sectors_used)));
  }
  std::printf("(coarser blocks rarely go entirely silent, so elimination fades out)\n");
}

void BM_SilenceDetection(benchmark::State& state) {
  SpeechProfile speech;
  AudioSource source(TelephoneAudio(), speech, 1);
  std::vector<uint8_t> window = source.NextSamples(1024);
  SilenceDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.IsSilent(window));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SilenceDetection);

void BM_AudioGeneration(benchmark::State& state) {
  SpeechProfile speech;
  AudioSource source(TelephoneAudio(), speech, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.NextSamples(1024).size());
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AudioGeneration);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintSilenceTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
