// Section 6.2 extension: seek-ordered (SCAN) request servicing.
//
// The paper's admission control assumes round-robin servicing in arrival
// order, charging every inter-request switch a full worst-case reposition
// — "as a result, the estimates of the maximum number of requests that
// can be simultaneously serviced are pessimistic." This bench measures
// what the proposed seek-order optimization actually buys: the same
// stream population serviced FIFO vs SCAN, comparing realized disk busy
// time and, past the pessimistic admission ceiling, who glitches first.

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <vector>

#include "bench/bench_support.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/util/prng.h"

namespace vafs {
namespace {

// Every run folds its trace into one registry, dumped as JSON at exit.
obs::MetricsRegistry g_metrics;
obs::MetricsSink g_metrics_sink(&g_metrics);

struct Outcome {
  int64_t violations = 0;
  double busy_sec = 0.0;
  double stream_sec = 0.0;  // content duration serviced
};

// A seek-dominated configuration: fast media rate (transfers are cheap),
// low rotational latency, slow arm. This is where service order matters:
// the switch cost IS the round cost.
DiskParameters ScanDisk() {
  DiskParameters params;
  params.cylinders = 5000;
  params.surfaces = 16;
  params.sectors_per_track = 256;  // R_dt ~ 262 Mbit/s
  params.rpm = 15000.0;            // 2 ms average latency
  params.min_seek_ms = 5.0;
  params.max_seek_ms = 50.0;
  return params;
}

Outcome RunStreams(ServiceOrder order, int n, int64_t forced_k) {
  const MediaProfile video = UvcCompressedVideo();
  const double duration = 20.0;
  Disk disk(ScanDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  const StorageTimings storage = StorageTimings::FromDiskModel(disk.model());
  ContinuityModel model(storage, UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);

  // Spread the strands across the whole disk, one region per stream (a
  // realistic library: titles recorded over the device's lifetime).
  std::vector<std::vector<PrimaryEntry>> strands;
  const int64_t blocks_per_stream =
      static_cast<int64_t>(duration * video.units_per_sec) / placement.granularity;
  const std::vector<uint8_t> payload(
      static_cast<size_t>(placement.granularity * video.bits_per_unit / 8), 0);
  for (int s = 0; s < n; ++s) {
    Result<std::unique_ptr<StrandWriter>> writer = store.CreateStrand(video, placement);
    (*writer)->SetAllocationHint(s * (disk.total_sectors() / n));
    for (int64_t b = 0; b < blocks_per_stream; ++b) {
      (void)(*writer)->AppendBlock(payload);
    }
    const StrandId id = *(*writer)->Finish(blocks_per_stream * placement.granularity);
    const Strand* strand = *store.Get(id);
    std::vector<PrimaryEntry> blocks;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      blocks.push_back(*strand->index().Lookup(b));
    }
    strands.push_back(std::move(blocks));
  }

  Simulator sim;
  AdmissionControl admission(storage, store.AverageScatteringSec());
  SchedulerOptions options;
  options.service_order = order;
  options.bypass_admission = true;  // measure past the pessimistic ceiling
  options.forced_k = forced_k;
  options.trace = &g_metrics_sink;
  disk.set_trace_sink(&g_metrics_sink);
  store.set_trace_sink(&g_metrics_sink);
  ServiceScheduler scheduler(&store, &sim, admission, options);

  // Arrival order is a random permutation of disk order: FIFO then pays a
  // random walk across the platters every round, while SCAN re-sorts.
  std::vector<int> arrival(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    arrival[static_cast<size_t>(s)] = s;
  }
  Prng prng(2718);
  for (size_t i = arrival.size(); i > 1; --i) {
    std::swap(arrival[i - 1], arrival[prng.NextBelow(i)]);
  }

  const SimDuration busy_before = disk.busy_time();
  std::vector<RequestId> ids;
  for (int s : arrival) {
    PlaybackRequest request;
    request.blocks = strands[static_cast<size_t>(s)];
    request.block_duration =
        SecondsToUsec(static_cast<double>(placement.granularity) / video.units_per_sec);
    request.spec = RequestSpec{video, placement.granularity};
    ids.push_back(*scheduler.SubmitPlayback(std::move(request)));
  }
  scheduler.RunUntilIdle();

  Outcome outcome;
  for (RequestId id : ids) {
    outcome.violations += scheduler.stats(id)->continuity_violations;
  }
  outcome.busy_sec = UsecToSeconds(disk.busy_time() - busy_before);
  outcome.stream_sec = duration * n;
  return outcome;
}

void PrintScanTable() {
  PrintHeader("Section 6.2 (SCAN)", "FIFO vs seek-ordered servicing, fixed k = 8");
  PrintOperatingPoint(ScanDisk());
  {
    const StorageTimings storage = StorageTimings::FromDiskModel(DiskModel(ScanDisk()));
    AdmissionControl admission(storage, storage.avg_rotational_latency_sec);
    std::printf("round-robin admission ceiling n_max = %lld (worst-case switch charge)\n",
                static_cast<long long>(
                    admission.Analyze({RequestSpec{UvcCompressedVideo(), 4}}).n_max));
  }
  std::printf("%4s | %16s %14s | %16s %14s\n", "n", "FIFO glitches", "disk busy", "SCAN glitches",
              "disk busy");
  for (int n : {8, 16, 24, 28, 32}) {
    const Outcome fifo = RunStreams(ServiceOrder::kRoundRobin, n, 8);
    const Outcome scan = RunStreams(ServiceOrder::kSeekScan, n, 8);
    std::printf("%4d | %16" PRId64 " %12.1f s | %16" PRId64 " %12.1f s\n", n, fifo.violations,
                fifo.busy_sec, scan.violations, scan.busy_sec);
  }
  std::printf("(same workload and round size; SCAN's sorted rounds cut inter-request\n"
              " repositioning, sustaining more streams past the pessimistic ceiling)\n");
}

void BM_ScanRound(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunStreams(ServiceOrder::kSeekScan, 4, 4).violations);
  }
}
BENCHMARK(BM_ScanRound)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintScanTable();
  vafs::WriteMetricsJson(vafs::g_metrics, "scan");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
