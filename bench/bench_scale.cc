// Round hot path at scale: 1k/5k/20k/50k concurrent Zipf viewers through
// planned+cache+sessions mode, with determinism receipts.
//
// The paper sizes rounds so a server admits the hardware's maximum stream
// count; this bench proves the *implementation* keeps up when that count
// is tens of thousands (DESIGN.md section 15). Two parts:
//
//   sweep   One node, planned rounds + block cache + session layer, a
//           fixed Zipf viewer population per size (a flash-crowd slice
//           arrives through OpenSession and batches/merges; the rest are
//           solo physical streams). Reports wall-clock rounds/sec, the
//           per-stream round cost (the near-linear-scaling criterion:
//           20k within 5x of 1k), and the incremental planner's reuse
//           counters. The 5k point runs twice — incremental vs
//           from-scratch planning — and every simulated-time digest must
//           match between the two.
//
//   waves   The wallclock-style array engine at 5k streams with payload
//           verification ON, run at 1 and 8 workers: digests must be
//           byte-identical, and the PagePool counters show the pooled
//           read path recycling pages instead of allocating per block.
//
// tools/check_scale.py gates digest equality (hard) and near-linear
// scaling (advisory). CI publishes BENCH_scale_metrics.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_support.h"
#include "src/disk/disk_array.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/auditor.h"
#include "src/sim/workload.h"
#include "src/util/worker_pool.h"

namespace vafs {
namespace {

constexpr int kTitles = 64;
constexpr double kTitleSec = 2.0;
// Arrivals are clustered into a short window so the whole population is
// concurrent: spreading them out would let each round activate one new
// stream (N rounds of ramp, each scanning the live rotation — O(N^2)
// bench wall time) instead of a handful of long rounds that carry all N.
constexpr double kArrivalWindowSec = 0.2;
// The sweep runs a fixed simulated horizon, not to idle. The disk is
// massively oversubscribed, so the makespan grows with the population; a
// bounded horizon keeps the round count predictable across sweep sizes
// while every round still carries the full population.
constexpr double kSweepHorizonSec = 8.0;
constexpr int64_t kSweepSizes[] = {1000, 5000, 20000, 50000};
constexpr int64_t kDeterminismSize = 5000;

// FNV-1a fold of every rendered trace event (order-sensitive, unbounded
// stream, no retention).
class TraceDigest : public obs::TraceSink {
 public:
  void OnEvent(const obs::TraceEvent& event) override {
    const std::string line = obs::TraceEventSummary(event);
    for (const char c : line) {
      digest_ = (digest_ ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
    }
    ++events_;
  }
  uint64_t digest() const { return digest_; }
  int64_t events() const { return events_; }

 private:
  uint64_t digest_ = 14695981039346656037ULL;
  int64_t events_ = 0;
};

uint64_t FnvOf(const std::string& text) {
  uint64_t digest = 14695981039346656037ULL;
  for (const char c : text) {
    digest = (digest ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return digest;
}

struct ScaleOutcome {
  const char* part = "sweep";
  int64_t viewers = 0;
  const char* mode = "incremental";
  int workers = 1;
  int64_t admitted = 0;
  int64_t sessions_batched = 0;
  int64_t sessions_merged = 0;
  double wall_sec = 0.0;
  int64_t rounds = 0;
  double rounds_per_sec = 0.0;
  double stream_round_cost_wall_sec = 0.0;  // usec of wall time per stream-round
  uint64_t trace_digest = 0;
  int64_t trace_events = 0;
  uint64_t slo_digest = 0;
  uint64_t audit_digest = 0;
  uint64_t payload_digest = 0;
  SimTime completion = 0;
  IncrementalRoundPlanner::Stats planner;
  int64_t pool_created = 0;
  int64_t pool_recycled = 0;
  int64_t pool_outstanding = 0;
};

sim::WorkloadOptions SweepWorkload() {
  sim::WorkloadOptions options;
  options.titles = kTitles;
  options.zipf_exponent = 1.0;
  options.duration_sec = kArrivalWindowSec;
  // Flash slice: ~20% of the window redirects to title 0; those viewers
  // arrive through OpenSession and exercise batching/merging.
  options.flash_start_sec = 0.4 * kArrivalWindowSec;
  options.flash_duration_sec = 0.2 * kArrivalWindowSec;
  options.flash_title_bias = 1.0;
  options.flash_title = 0;
  options.seed = 20260808;
  return options;
}

// One facade run: `viewers` Zipf arrivals against kTitles short titles,
// planned rounds + cache + sessions, admission bypassed (the point is the
// hot path, not Eq. 17 — the simulated disk is massively oversubscribed
// and the SLO records that honestly).
ScaleOutcome RunSweep(int64_t viewers, bool incremental) {
  TraceDigest trace;
  obs::ContinuityAuditor auditor{obs::AuditorOptions{.round_time_slack = 0.05}};
  obs::SloTracker slo;
  obs::TeeSink receipts;
  receipts.Add(&trace);
  receipts.Add(&auditor);
  receipts.Add(&slo);

  FileSystemConfig config = TestbedConfig();
  config.disk = FutureDisk();
  config.retain_data = false;
  config.scheduler.service_order = ServiceOrder::kPlanned;
  config.scheduler.bypass_admission = true;
  config.scheduler.forced_k = 1;
  config.scheduler.batch_activation = true;
  config.scheduler.incremental_planning = incremental;
  config.scheduler.trace = &receipts;
  config.block_cache.capacity_bytes = 8 << 20;
  config.sessions.enabled = true;
  config.sessions.batch_window_sec = 1.0;
  config.sessions.max_patch_blocks = 1 << 20;
  config.sessions.runway_margin_blocks = 0;
  config.telemetry.enabled = true;
  config.telemetry.trace_capacity = 1 << 10;
  MultimediaFileSystem fs(config);

  std::vector<RopeId> ropes;
  for (int t = 0; t < kTitles; ++t) {
    VideoSource source(UvcCompressedVideo(), 7000 + static_cast<uint64_t>(t));
    Result<MultimediaFileSystem::RecordResult> recorded =
        fs.Record("scale", &source, nullptr, kTitleSec);
    if (!recorded.ok()) {
      std::printf("RECORD failed: %s\n", recorded.status().ToString().c_str());
      return {};
    }
    ropes.push_back(recorded->rope);
  }

  const std::vector<sim::WorkloadArrival> arrivals =
      sim::WorkloadEngine(SweepWorkload()).GenerateCount(viewers);

  ScaleOutcome outcome;
  outcome.viewers = viewers;
  outcome.mode = incremental ? "incremental" : "from_scratch";
  const SimTime base = fs.simulator().Now();
  for (const sim::WorkloadArrival& arrival : arrivals) {
    const RopeId rope = ropes[static_cast<size_t>(arrival.title) % ropes.size()];
    const bool session_viewer = arrival.flash;
    fs.simulator().ScheduleAt(
        base + SecondsToUsec(arrival.time_sec), [&fs, &outcome, rope, session_viewer]() {
          const TimeInterval interval{0.0, kTitleSec};
          if (session_viewer) {
            Result<SessionTicket> ticket = fs.OpenSession("scale", rope, Medium::kVideo, interval);
            if (ticket.ok()) {
              ++outcome.admitted;
            }
          } else {
            Result<RequestId> id = fs.Play("scale", rope, Medium::kVideo, interval);
            if (id.ok()) {
              ++outcome.admitted;
            }
          }
        });
  }

  const auto start = std::chrono::steady_clock::now();
  fs.simulator().RunUntil(base + SecondsToUsec(kSweepHorizonSec));
  const auto stop = std::chrono::steady_clock::now();

  outcome.wall_sec = std::chrono::duration<double>(stop - start).count();
  outcome.rounds = fs.scheduler().rounds_executed();
  outcome.rounds_per_sec =
      outcome.wall_sec > 0.0 ? static_cast<double>(outcome.rounds) / outcome.wall_sec : 0.0;
  const double stream_rounds = static_cast<double>(outcome.rounds) * static_cast<double>(viewers);
  outcome.stream_round_cost_wall_sec =
      stream_rounds > 0.0 ? outcome.wall_sec * 1e6 / stream_rounds : 0.0;
  if (fs.session_manager() != nullptr) {
    outcome.sessions_batched = fs.session_manager()->census().batched;
    outcome.sessions_merged = fs.session_manager()->census().merged;
  }
  outcome.trace_digest = trace.digest();
  outcome.trace_events = trace.events();
  outcome.slo_digest = FnvOf(slo.Report().ToJson());
  outcome.audit_digest = FnvOf(auditor.Report());
  outcome.completion = fs.simulator().Now();
  outcome.planner = fs.scheduler().planner_stats();
  if (fs.block_cache() != nullptr) {
    PagePool& pool = fs.block_cache()->page_pool();
    outcome.pool_created = pool.pages_created();
    outcome.pool_recycled = pool.pages_recycled();
    outcome.pool_outstanding = pool.pages_outstanding();
  }
  return outcome;
}

// Seek-dominated member geometry (as in bench_wallclock).
DiskParameters WaveDisk() {
  DiskParameters params;
  params.cylinders = 5000;
  params.surfaces = 16;
  params.sectors_per_track = 256;
  params.rpm = 15000.0;
  params.min_seek_ms = 5.0;
  params.max_seek_ms = 50.0;
  return params;
}

// Wallclock-style engine at `viewers` streams over an 8-member array with
// payload verification on: the pooled read path carries every wave, and
// the digests must not move with the worker count.
ScaleOutcome RunWaves(int64_t viewers, int workers) {
  const MediaProfile video = UvcCompressedVideo();
  Disk disk(WaveDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  const StorageTimings storage = StorageTimings::FromDiskModel(disk.model());
  ContinuityModel model(storage, UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);

  // A small catalog of short strands, viewers spread across them: extents
  // repeat, so dedup + cache see real sharing while the request table
  // holds `viewers` live entries.
  constexpr int kStrands = 32;
  const int64_t blocks_per_stream =
      static_cast<int64_t>(2.0 * video.units_per_sec) / placement.granularity;
  const std::vector<uint8_t> payload(
      static_cast<size_t>(placement.granularity * video.bits_per_unit / 8), 0xA5);
  std::vector<std::vector<PrimaryEntry>> strands;
  for (int s = 0; s < kStrands; ++s) {
    Result<std::unique_ptr<StrandWriter>> writer = store.CreateStrand(video, placement);
    (*writer)->SetAllocationHint(s * (disk.total_sectors() / kStrands));
    for (int64_t b = 0; b < blocks_per_stream; ++b) {
      (void)(*writer)->AppendBlock(payload);
    }
    const StrandId id = *(*writer)->Finish(blocks_per_stream * placement.granularity);
    const Strand* strand = *store.Get(id);
    std::vector<PrimaryEntry> blocks;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      blocks.push_back(*strand->index().Lookup(b));
    }
    strands.push_back(std::move(blocks));
  }

  DiskArray array(WaveDisk(), 8);
  WorkerPool pool(workers);
  BlockCache cache(BlockCacheOptions{.capacity_bytes = 8 << 20});

  Simulator sim;
  TraceDigest trace;
  obs::SloTracker slo;
  obs::TeeSink tee;
  tee.Add(&trace);
  tee.Add(&slo);
  SchedulerOptions options;
  options.service_order = ServiceOrder::kPlanned;
  options.disk_array = &array;
  options.worker_pool = &pool;
  options.verify_payloads = true;
  options.bypass_admission = true;
  options.forced_k = 1;
  options.batch_activation = true;
  options.block_cache = &cache;
  options.trace = &tee;
  ServiceScheduler scheduler(&store, &sim, AdmissionControl(storage, store.AverageScatteringSec()),
                             options);

  ScaleOutcome outcome;
  outcome.part = "waves";
  outcome.viewers = viewers;
  outcome.workers = workers;
  for (int64_t v = 0; v < viewers; ++v) {
    PlaybackRequest request;
    request.blocks = strands[static_cast<size_t>(v % kStrands)];
    request.block_duration =
        SecondsToUsec(static_cast<double>(placement.granularity) / video.units_per_sec);
    request.spec = RequestSpec{video, placement.granularity};
    if (scheduler.SubmitPlayback(std::move(request)).ok()) {
      ++outcome.admitted;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  scheduler.RunUntilIdle();
  const auto stop = std::chrono::steady_clock::now();

  outcome.wall_sec = std::chrono::duration<double>(stop - start).count();
  outcome.rounds = scheduler.rounds_executed();
  outcome.rounds_per_sec =
      outcome.wall_sec > 0.0 ? static_cast<double>(outcome.rounds) / outcome.wall_sec : 0.0;
  const double stream_rounds = static_cast<double>(outcome.rounds) * static_cast<double>(viewers);
  outcome.stream_round_cost_wall_sec =
      stream_rounds > 0.0 ? outcome.wall_sec * 1e6 / stream_rounds : 0.0;
  outcome.trace_digest = trace.digest();
  outcome.trace_events = trace.events();
  outcome.slo_digest = FnvOf(slo.Report().ToJson());
  outcome.payload_digest = scheduler.payload_digest();
  outcome.completion = sim.Now();
  outcome.planner = scheduler.planner_stats();
  outcome.pool_created = cache.page_pool().pages_created();
  outcome.pool_recycled = cache.page_pool().pages_recycled();
  outcome.pool_outstanding = cache.page_pool().pages_outstanding();
  return outcome;
}

void WriteScaleJson(const std::vector<ScaleOutcome>& outcomes) {
  const char* path = "BENCH_scale_metrics.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"scale\": {\n"
               "    \"hardware_concurrency\": %u,\n"
               "    \"titles\": %d,\n"
               "    \"runs\": [\n",
               std::thread::hardware_concurrency(), kTitles);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ScaleOutcome& run = outcomes[i];
    std::fprintf(
        file,
        "      {\"part\": \"%s\", \"viewers\": %lld, \"mode\": \"%s\", \"workers\": %d,\n"
        "       \"admitted\": %lld, \"sessions_batched\": %lld, \"sessions_merged\": %lld,\n"
        "       \"wall_sec\": %.6f, \"rounds\": %lld, \"rounds_per_sec\": %.3f,\n"
        "       \"stream_round_cost_wall_sec\": %.6f,\n"
        "       \"trace_digest\": \"%016" PRIx64 "\", \"trace_events\": %lld,\n"
        "       \"slo_digest\": \"%016" PRIx64 "\", \"audit_digest\": \"%016" PRIx64 "\",\n"
        "       \"payload_digest\": \"%016" PRIx64 "\", \"completion_usec\": %lld,\n"
        "       \"planner_inputs_seen\": %lld, \"planner_inputs_reused\": %lld,\n"
        "       \"planner_groups_resorted\": %lld, \"planner_full_sort_fallbacks\": %lld,\n"
        "       \"pool_created\": %lld, \"pool_recycled\": %lld, \"pool_outstanding\": %lld}%s\n",
        run.part, static_cast<long long>(run.viewers), run.mode, run.workers,
        static_cast<long long>(run.admitted), static_cast<long long>(run.sessions_batched),
        static_cast<long long>(run.sessions_merged), run.wall_sec,
        static_cast<long long>(run.rounds), run.rounds_per_sec, run.stream_round_cost_wall_sec,
        run.trace_digest, static_cast<long long>(run.trace_events), run.slo_digest,
        run.audit_digest, run.payload_digest, static_cast<long long>(run.completion),
        static_cast<long long>(run.planner.inputs_seen),
        static_cast<long long>(run.planner.inputs_reused),
        static_cast<long long>(run.planner.groups_resorted),
        static_cast<long long>(run.planner.full_sort_fallbacks),
        static_cast<long long>(run.pool_created), static_cast<long long>(run.pool_recycled),
        static_cast<long long>(run.pool_outstanding), i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(file,
               "    ]\n"
               "  }\n"
               "}\n");
  std::fclose(file);
  std::printf("metrics: %s\n", path);
}

void PrintScaleTables() {
  PrintHeader("round hot path at scale", "20k+ concurrent Zipf streams per node");
  PrintOperatingPoint(FutureDisk());
  std::printf("host threads: %u, titles: %d, title length: %.1fs\n",
              std::thread::hardware_concurrency(), kTitles, kTitleSec);

  // VAFS_SCALE_MAX trims the sweep for constrained runners (digest
  // comparisons all happen at the 5k point, which is never trimmed).
  int64_t max_viewers = 50000;
  if (const char* env_max = std::getenv("VAFS_SCALE_MAX"); env_max != nullptr) {
    max_viewers = std::max<int64_t>(std::atoll(env_max), kDeterminismSize);
  }
  std::vector<ScaleOutcome> outcomes;
  for (const int64_t viewers : kSweepSizes) {
    if (viewers > max_viewers) {
      continue;
    }
    std::fprintf(stderr, "sweep %lld incremental...\n", static_cast<long long>(viewers));
    outcomes.push_back(RunSweep(viewers, /*incremental=*/true));
    if (viewers == kDeterminismSize) {
      std::fprintf(stderr, "sweep %lld from-scratch...\n", static_cast<long long>(viewers));
      outcomes.push_back(RunSweep(viewers, /*incremental=*/false));
    }
  }
  std::fprintf(stderr, "waves %lld x1...\n", static_cast<long long>(kDeterminismSize));
  outcomes.push_back(RunWaves(kDeterminismSize, /*workers=*/1));
  std::fprintf(stderr, "waves %lld x8...\n", static_cast<long long>(kDeterminismSize));
  outcomes.push_back(RunWaves(kDeterminismSize, /*workers=*/8));

  std::printf("%6s | %7s | %12s | %3s | %9s | %7s | %11s | %11s | %16s\n", "part", "viewers",
              "mode", "wk", "wall (s)", "rounds", "rounds/sec", "us/strm-rnd", "trace digest");
  for (const ScaleOutcome& run : outcomes) {
    std::printf("%6s | %7" PRId64 " | %12s | %3d | %9.3f | %7" PRId64
                " | %11.1f | %11.3f | %016" PRIx64 "\n",
                run.part, run.viewers, run.mode, run.workers, run.wall_sec, run.rounds,
                run.rounds_per_sec, run.stream_round_cost_wall_sec, run.trace_digest);
  }

  // Receipts the checker gates on (printed for the human too).
  const ScaleOutcome* inc = nullptr;
  const ScaleOutcome* scratch = nullptr;
  for (const ScaleOutcome& run : outcomes) {
    if (run.viewers == kDeterminismSize && std::string(run.part) == "sweep") {
      (std::string(run.mode) == "incremental" ? inc : scratch) = &run;
    }
  }
  if (inc != nullptr && scratch != nullptr) {
    const bool same = inc->trace_digest == scratch->trace_digest &&
                      inc->slo_digest == scratch->slo_digest &&
                      inc->audit_digest == scratch->audit_digest &&
                      inc->completion == scratch->completion && inc->rounds == scratch->rounds;
    std::printf("incremental == from-scratch planning: %s\n",
                same ? "yes" : "NO -- DETERMINISM BROKEN");
  }
  const ScaleOutcome& w1 = outcomes[outcomes.size() - 2];
  const ScaleOutcome& w8 = outcomes[outcomes.size() - 1];
  const bool workers_same =
      w1.trace_digest == w8.trace_digest && w1.slo_digest == w8.slo_digest &&
      w1.payload_digest == w8.payload_digest && w1.completion == w8.completion;
  std::printf("1-worker == 8-worker waves: %s\n",
              workers_same ? "yes" : "NO -- DETERMINISM BROKEN");
  std::printf("pooled reads: %" PRId64 " pages created, %" PRId64 " recycled (%.1f%% reuse)\n",
              w1.pool_created, w1.pool_recycled,
              100.0 * static_cast<double>(w1.pool_recycled) /
                  static_cast<double>(std::max<int64_t>(w1.pool_created + w1.pool_recycled, 1)));

  WriteScaleJson(outcomes);
}

void BM_ScaleSweep(benchmark::State& state) {
  const int64_t viewers = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSweep(viewers, /*incremental=*/true).rounds);
  }
}
BENCHMARK(BM_ScaleSweep)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintScaleTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
