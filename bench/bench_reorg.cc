// Section 6.2 extension: storage reorganization.
//
// "When it becomes impossible to place new media strands in such a way
// that their scattering bounds are satisfied, the storage of existing
// media strands on the disk may have to be reorganized." The bench
// fragments a disk through churn (record/delete cycles), shows a new
// recording failing for lack of a contiguous window, compacts, and
// retries; plus the anomaly-smoothing path: strands audited against a
// tighter recomputed bound get relocated.

#include <benchmark/benchmark.h>

#include <cinttypes>

#include "bench/bench_support.h"
#include "src/msm/recorder.h"
#include "src/msm/reorganizer.h"
#include "src/rope/rope_server.h"

namespace vafs {
namespace {

void RunCompactionStory() {
  PrintHeader("Section 6.2 (reorganization)", "fragmentation -> compaction -> placement");
  const MediaProfile video = UvcCompressedVideo();
  Disk disk(TestbedDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  RopeServer server(&store);
  const StorageTimings storage = StorageTimings::FromDiskModel(disk.model());
  ContinuityModel model(storage, UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);

  // Churn: fill the disk with short clips, then delete half of them at
  // random, leaving Swiss cheese.
  std::vector<RopeId> ropes;
  int recorded = 0;
  while (true) {
    VideoSource source(video, static_cast<uint64_t>(recorded) + 1);
    Result<RecordingResult> result = RecordVideo(&store, &source, placement, 6.0);
    if (!result.ok()) {
      break;  // disk full
    }
    ropes.push_back(*server.CreateRope("churn", result->strand, kNullStrand));
    ++recorded;
  }
  Prng prng(7);
  int deleted = 0;
  for (size_t i = 0; i < ropes.size(); ++i) {
    if (prng.NextDouble() < 0.5) {
      (void)server.DeleteRope("churn", ropes[i]);
      ++deleted;
    }
  }
  (void)server.CollectGarbage();
  std::printf("churn: %d clips recorded, %d deleted; occupancy %.1f%%\n", recorded, deleted,
              store.allocator().Occupancy() * 100.0);
  std::printf("free space: %lld sectors in %lld fragments; largest run %lld\n",
              static_cast<long long>(store.allocator().free_sectors()),
              static_cast<long long>(store.allocator().FreeExtentCount()),
              static_cast<long long>(store.allocator().LargestFreeExtent()));

  // Record a demanding strand — a tight 15 ms scattering contract, whose
  // allocation window spans only ~17 cylinders — into the fragmented
  // space. The churn holes are farther apart than the window, so the
  // placement fails until compaction consolidates the free space.
  const StrandPlacement tight{4, 0.0, 0.015};
  auto try_record = [&]() -> std::string {
    VideoSource source(video, 999);
    Result<RecordingResult> result = RecordVideo(&store, &source, tight, 60.0);
    if (!result.ok()) {
      return "FAILS (" + result.status().message() + ")";
    }
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "fits: avg gap %.2f ms, max %.2f ms",
                  result->avg_gap_sec * 1e3, result->max_gap_sec * 1e3);
    (void)store.Delete(result->strand);  // keep it out of later accounting
    return buffer;
  };
  std::printf("60 s recording at a tight 15 ms bound, before compaction: %s\n",
              try_record().c_str());

  Result<RopeServer::StorageReorgStats> stats = server.CompactStorage();
  std::printf("compaction: %lld strands moved (%lld blocks, %.1f s of disk time)\n",
              static_cast<long long>(stats->strands_relocated),
              static_cast<long long>(stats->blocks_moved),
              UsecToSeconds(stats->copy_time));
  std::printf("largest free run: %lld -> %lld sectors\n",
              static_cast<long long>(stats->largest_free_extent_before),
              static_cast<long long>(stats->largest_free_extent_after));
  std::printf("60 s recording at a tight 15 ms bound, after compaction:  %s\n",
              try_record().c_str());
}

void RunAnomalyStory() {
  PrintHeader("Section 6.2 (anomaly smoothing)", "audit against a recomputed bound");
  const MediaProfile video = UvcCompressedVideo();
  Disk disk(TestbedDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  RopeServer server(&store);

  // Strands recorded under a lax 60 ms contract; the operator then
  // tightens the target bound to 20 ms (say, for a faster display rate).
  for (int i = 0; i < 4; ++i) {
    Result<std::unique_ptr<StrandWriter>> writer =
        store.CreateStrand(video, StrandPlacement{4, 0.0, 0.060});
    // Strew every other strand across the disk.
    const std::vector<uint8_t> payload(4 * 96000 / 8, 0);
    for (int64_t b = 0; b < 20; ++b) {
      if (i % 2 == 1) {
        (*writer)->SetPlacementPreference(b % 2 == 0 ? PlacementPreference::kFarthestForward
                                                     : PlacementPreference::kFarthestBackward);
      }
      (void)(*writer)->AppendBlock(payload);
    }
    Result<StrandId> id = (*writer)->Finish(80);
    (void)server.CreateRope("ops", *id, kNullStrand);
  }

  const double new_bound = 0.020;
  int anomalous = 0;
  for (StrandId id : store.AllIds()) {
    Result<StrandHealth> health = AuditStrand(&store, id, new_bound);
    if (health.ok() && health->NeedsRepair()) {
      ++anomalous;
    }
  }
  std::printf("strands: %lld total, %d anomalous at the recomputed %.0f ms bound\n",
              static_cast<long long>(store.strand_count()), anomalous, new_bound * 1e3);

  Result<RopeServer::StorageReorgStats> stats = server.ReorganizeStorage(new_bound);
  std::printf("reorganize: %lld audited, %lld relocated, %lld blocks moved\n",
              static_cast<long long>(stats->strands_audited),
              static_cast<long long>(stats->strands_relocated),
              static_cast<long long>(stats->blocks_moved));
  int still_anomalous = 0;
  for (StrandId id : store.AllIds()) {
    Result<StrandHealth> health = AuditStrand(&store, id, new_bound);
    if (health.ok() && health->NeedsRepair()) {
      ++still_anomalous;
    }
  }
  std::printf("anomalous after reorganization: %d\n", still_anomalous);
}

void BM_AuditStrand(benchmark::State& state) {
  Disk disk(TestbedDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  ContinuityModel model(StorageTimings::FromDiskModel(disk.model()), UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, UvcCompressedVideo());
  VideoSource source(UvcCompressedVideo(), 1);
  const StrandId id = RecordVideo(&store, &source, placement, 60.0)->strand;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AuditStrand(&store, id)->max_gap_sec);
  }
}
BENCHMARK(BM_AuditStrand);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::RunCompactionStory();
  vafs::RunAnomalyStory();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
