// Section 3.4 transition argument: admitting request n+1 raises the round
// size k; jumping straight to the new k makes the transition round outlast
// the blocks buffered under the old k, glitching in-flight streams, while
// raising k one step per round (Eq. 18) is seamless.
//
// The bench starts streams one at a time on a loaded disk and reports the
// continuity violations suffered by the streams that were ALREADY playing
// when each newcomer arrived, under the naive-jump and stepped policies.

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <vector>

#include "bench/bench_support.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"

namespace vafs {
namespace {

// Every scenario folds its trace into one registry, dumped as JSON at exit.
obs::MetricsRegistry g_metrics;
obs::MetricsSink g_metrics_sink(&g_metrics);

struct TransitionResult {
  int streams_admitted = 0;
  int64_t preexisting_violations = 0;  // violations on streams admitted earlier
  int64_t final_k = 0;
};

TransitionResult RunScenario(bool stepped, int target_streams) {
  const MediaProfile video = UvcCompressedVideo();
  Disk disk(FutureDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  ContinuityModel model(StorageTimings::FromDiskModel(disk.model()), UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);

  // Record the strands up front.
  std::vector<std::vector<PrimaryEntry>> strands;
  for (int s = 0; s < target_streams; ++s) {
    VideoSource source(video, static_cast<uint64_t>(s) + 1);
    RecordingResult recorded = *RecordVideo(&store, &source, placement, 30.0);
    const Strand* strand = *store.Get(recorded.strand);
    std::vector<PrimaryEntry> blocks;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      blocks.push_back(*strand->index().Lookup(b));
    }
    strands.push_back(std::move(blocks));
  }

  Simulator sim;
  AdmissionControl admission(StorageTimings::FromDiskModel(disk.model()),
                             store.AverageScatteringSec());
  SchedulerOptions options;
  options.stepped_transitions = stepped;
  options.trace = &g_metrics_sink;
  disk.set_trace_sink(&g_metrics_sink);
  store.set_trace_sink(&g_metrics_sink);
  ServiceScheduler scheduler(&store, &sim, admission, options);

  TransitionResult result;
  std::vector<RequestId> ids;
  for (int s = 0; s < target_streams; ++s) {
    // Snapshot the violations of everyone already playing.
    int64_t violations_before = 0;
    for (RequestId id : ids) {
      violations_before += scheduler.stats(id)->continuity_violations;
    }
    PlaybackRequest request;
    request.blocks = strands[static_cast<size_t>(s)];
    request.block_duration =
        SecondsToUsec(static_cast<double>(placement.granularity) / video.units_per_sec);
    request.spec = RequestSpec{video, placement.granularity};
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    if (!id.ok()) {
      break;
    }
    ids.push_back(*id);
    ++result.streams_admitted;
    // Let the admission transition and a second of playback elapse.
    sim.RunUntil(sim.Now() + SecondsToUsec(1.0));
    int64_t violations_after = 0;
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      violations_after += scheduler.stats(ids[i])->continuity_violations;
    }
    result.preexisting_violations += violations_after - violations_before;
  }
  scheduler.RunUntilIdle();
  result.final_k = scheduler.current_k();
  // Total violations over whole playback for pre-existing streams only
  // (the last-admitted stream never had anyone admitted after it).
  int64_t total = 0;
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    total += scheduler.stats(ids[i])->continuity_violations;
  }
  result.preexisting_violations = total;
  return result;
}

void PrintTransitionTable() {
  PrintHeader("Section 3.4", "glitch-free phase-in: stepped k vs naive jump");
  PrintOperatingPoint(FutureDisk());
  std::printf("%8s | %22s | %22s\n", "streams", "stepped (Eq. 18)", "naive jump");
  std::printf("%8s | %10s %11s | %10s %11s\n", "", "admitted", "glitches", "admitted",
              "glitches");
  for (int target : {4, 8, 12}) {
    const TransitionResult stepped = RunScenario(true, target);
    const TransitionResult naive = RunScenario(false, target);
    std::printf("%8d | %10d %11" PRId64 " | %10d %11" PRId64 "\n", target,
                stepped.streams_admitted, stepped.preexisting_violations,
                naive.streams_admitted, naive.preexisting_violations);
  }
  std::printf("(glitches = continuity violations on streams that were already playing\n"
              " when a newcomer was admitted)\n");
}

void BM_AdmitOneStream(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(true, 2).streams_admitted);
  }
}
BENCHMARK(BM_AdmitOneStream)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintTransitionTable();
  vafs::WriteMetricsJson(vafs::g_metrics, "admission_transition");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
