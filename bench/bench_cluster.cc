// Cluster scale-out and fault tolerance: sharded vaFS under node loss.
//
// Two scenarios on the future disk (src/cluster/):
//
//   scaling   one cold title per node, each node saturated with twice its
//             Eq. 17 ceiling of viewers: aggregate admitted streams must
//             grow near-linearly with node count (>= 3x at 4 nodes vs 1).
//
//   failover  a 4-node cluster serving a Zipf library with a flash crowd
//             on the hot title (2 replicas); the node hosting the hot
//             title's primary replica is killed at flash peak. Every one
//             of the dead node's viewers must either resume on a replica
//             within the stamped failover bound (kFailover, checked by
//             the cluster ContinuityAuditor) or be shed with an explicit
//             kShedLoad record — zero silent stream deaths — while the
//             token-bucket repair path re-replicates the orphaned titles
//             in the background. The same seed replays byte-identically
//             (signature + per-node SLO rollup) for any VAFS_WORKERS.
//
// CI gates on BENCH_cluster_metrics.json + BENCH_cluster_slo.json via
// tools/check_cluster.py (failover bound, zero silent deaths and
// determinism are hard gates; the scaling ratio is advisory).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "src/cluster/cluster.h"
#include "src/sim/workload.h"

namespace vafs {
namespace {

constexpr double kTitleSec = 6.0;
constexpr double kEpochSec = 0.25;
constexpr int64_t kFailoverBoundEpochs = 2;
constexpr int kFailoverNodes = 4;

// The Eq. 17 ceiling for one viewer of the bench title on one node.
int64_t ComputeNmax() {
  FileSystemConfig config = TestbedConfig();
  config.disk = FutureDisk();
  config.retain_data = false;
  MultimediaFileSystem fs(config);
  const StrandPlacement placement = *fs.PlacementFor(UvcCompressedVideo());
  return fs.admission()
      .Analyze({RequestSpec{UvcCompressedVideo(), placement.granularity}})
      .n_max;
}

FileSystemConfig ClusterNodeConfig(bool merging) {
  FileSystemConfig config = TestbedConfig();
  config.disk = FutureDisk();
  config.retain_data = false;
  config.scheduler.service_order = ServiceOrder::kPlanned;
  config.telemetry.enabled = true;
  config.telemetry.trace_capacity = 1 << 14;
  // Causal spans on the failover scenario only: the scaling sweep measures
  // raw admission capacity and keeps its event volume down.
  config.telemetry.spans = merging;
  config.block_cache.capacity_bytes = 4 << 20;
  if (merging) {
    // The failover scenario runs the full session layer: orphans resuming
    // mid-title on a survivor can ride that node's existing streams.
    config.scheduler.cache_aware_admission = true;
    config.sessions.batch_window_sec = 1.0;
    config.sessions.max_patch_blocks = 1 << 20;
    config.sessions.runway_margin_blocks = 0;
  } else {
    // The scaling scenario measures raw Eq. 17 capacity: every viewer is
    // a full stream.
    config.scheduler.cache_aware_admission = false;
    config.sessions.batch_window_sec = 0.0;
    config.sessions.max_patch_blocks = 0;
  }
  return config;
}

cluster::ClusterOptions BaseOptions(int nodes, bool merging) {
  cluster::ClusterOptions options;
  options.nodes = nodes;
  options.node_config = ClusterNodeConfig(merging);
  options.media = UvcCompressedVideo();
  options.epoch_sec = kEpochSec;
  options.hot_replicas = 2;
  options.cold_replicas = 1;
  options.failover_bound_epochs = kFailoverBoundEpochs;
  return options;
}

struct ScalingPoint {
  int nodes = 0;
  int64_t arrivals = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  bool audit_clean = false;
};

// One cold title per node (least-loaded placement pins title t to node t),
// each title hit with 2x one node's ceiling: admitted streams saturate at
// roughly nodes * n_max.
ScalingPoint RunScaling(int nodes, int64_t n_max) {
  cluster::ClusterCoordinator coordinator(BaseOptions(nodes, /*merging=*/false));
  for (int t = 0; t < nodes; ++t) {
    if (!coordinator.AddTitle(t, 9000 + static_cast<uint64_t>(t), kTitleSec, /*hot=*/false)
             .ok()) {
      return {};
    }
  }
  std::vector<sim::WorkloadArrival> arrivals;
  const int64_t per_title = 2 * n_max;
  for (int t = 0; t < nodes; ++t) {
    for (int64_t i = 0; i < per_title; ++i) {
      sim::WorkloadArrival arrival;
      arrival.time_sec = 0.1 + 0.8 * static_cast<double>(i) / static_cast<double>(per_title);
      arrival.title = t;
      arrivals.push_back(arrival);
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const sim::WorkloadArrival& a, const sim::WorkloadArrival& b) {
              return a.time_sec != b.time_sec ? a.time_sec < b.time_sec : a.title < b.title;
            });
  coordinator.Run(arrivals, {}, 3.0);

  ScalingPoint point;
  point.nodes = nodes;
  point.arrivals = static_cast<int64_t>(arrivals.size());
  point.admitted = coordinator.census().admitted;
  point.rejected = coordinator.census().rejected;
  point.audit_clean = coordinator.AuditsClean();
  if (!point.audit_clean) {
    std::printf("AUDIT (scaling, %d nodes):\n%s\n", nodes, coordinator.AuditReport().c_str());
  }
  return point;
}

struct FailoverOutcome {
  int64_t arrivals = 0;
  cluster::ClusterCensus census;
  int64_t failover_events = 0;
  int64_t failover_within_bound = 0;
  int64_t shed_events = 0;
  int64_t re_replicate_events = 0;
  int64_t unaccounted_viewers = 0;  // still kViewing/kPending at the end
  SimTime max_interruption_usec = 0;
  SimTime bound_usec = 0;
  bool audit_clean = false;
  std::string signature;
  std::string slo_json;
  std::string critical_path_json;  // all nodes' rounds merged, node order
  std::string folded;              // cluster-wide folded flame stacks
  std::string perfetto;            // span slices, every node's retained log
};

sim::WorkloadOptions FailoverWorkload(int64_t n_max) {
  sim::WorkloadOptions options;
  options.titles = kFailoverNodes;
  options.zipf_exponent = 1.0;
  options.duration_sec = 4.0;
  // Base load sized to keep every node busy; the flash alone demands ~4x
  // one node's ceiling of the hot title, which its two replica holders
  // cannot absorb as full streams after one of them dies.
  options.arrival_rate_per_sec = std::max(
      1.0, static_cast<double>(kFailoverNodes) * static_cast<double>(n_max) / kTitleSec);
  options.flash_start_sec = 1.5;
  options.flash_duration_sec = 1.5;
  const double flash_rate =
      std::max(2.0, 4.0 * static_cast<double>(n_max) / options.flash_duration_sec);
  options.flash_rate_multiplier = flash_rate / options.arrival_rate_per_sec;
  options.flash_title_bias = 0.9;
  options.flash_title = 0;
  options.seed = 31337;
  // Kill the hot title's primary replica holder at flash peak — mid-epoch,
  // so its streams degrade to skip-on-time until the coordinator notices
  // at the next boundary. It never comes back; repair must restore the
  // lost replicas on survivors.
  sim::WorkloadOptions::NodeFailure kill;
  kill.time_sec = 2.3;
  kill.node = 0;
  options.node_failures = {kill};
  return options;
}

FailoverOutcome RunFailover(int64_t n_max) {
  cluster::ClusterCoordinator coordinator(BaseOptions(kFailoverNodes, /*merging=*/true));
  FailoverOutcome outcome;
  // Title 0 is the flash target: hot, two replicas (nodes 0 and 1). The
  // cold tail spreads one replica each across the remaining nodes.
  for (int t = 0; t < kFailoverNodes; ++t) {
    if (!coordinator.AddTitle(t, 7000 + static_cast<uint64_t>(t), kTitleSec, t == 0).ok()) {
      return outcome;
    }
  }
  const sim::WorkloadOptions workload = FailoverWorkload(n_max);
  const sim::WorkloadEngine engine(workload);
  coordinator.Run(engine.Generate(), engine.FailureSchedule(), 12.0);

  outcome.arrivals = static_cast<int64_t>(coordinator.viewers().size());
  outcome.census = coordinator.census();
  outcome.bound_usec = SecondsToUsec(kFailoverBoundEpochs * kEpochSec);
  for (const obs::TraceEvent& event : coordinator.trace_log().events()) {
    switch (event.kind) {
      case obs::TraceEventKind::kFailover:
        ++outcome.failover_events;
        outcome.max_interruption_usec = std::max(outcome.max_interruption_usec, event.duration);
        if (event.duration <= event.round_budget) {
          ++outcome.failover_within_bound;
        }
        break;
      case obs::TraceEventKind::kShedLoad:
        ++outcome.shed_events;
        break;
      case obs::TraceEventKind::kReReplicate:
        ++outcome.re_replicate_events;
        break;
      default:
        break;
    }
  }
  for (const cluster::ViewerRecord& viewer : coordinator.viewers()) {
    if (viewer.state == cluster::ViewerRecord::State::kViewing ||
        viewer.state == cluster::ViewerRecord::State::kPending) {
      ++outcome.unaccounted_viewers;
    }
  }
  outcome.audit_clean = coordinator.AuditsClean();
  if (!outcome.audit_clean) {
    std::printf("AUDIT (failover):\n%s\n", coordinator.AuditReport().c_str());
  }
  outcome.signature = coordinator.Signature();
  outcome.slo_json = coordinator.ClusterSloJson();

  // Merge every node's critical-path rounds and retained trace events (in
  // node order, so the artifacts are deterministic) for the CI gate and
  // the flame/Perfetto uploads.
  std::vector<obs::RoundCriticalPath> merged_rounds;
  std::vector<obs::TraceEvent> merged_events;
  for (int n = 0; n < coordinator.nodes(); ++n) {
    MultimediaFileSystem& fs = coordinator.node(n).fs();
    if (const obs::CriticalPathAnalyzer* analyzer = fs.critical_path(); analyzer != nullptr) {
      merged_rounds.insert(merged_rounds.end(), analyzer->rounds().begin(),
                           analyzer->rounds().end());
    }
    if (obs::TraceLog* log = fs.trace_log(); log != nullptr) {
      merged_events.insert(merged_events.end(), log->events().begin(), log->events().end());
    }
  }
  outcome.critical_path_json = obs::CriticalPathAnalyzer::ToJson(merged_rounds);
  outcome.folded = obs::CriticalPathAnalyzer::FoldedStacks(merged_events);
  outcome.perfetto = obs::PerfettoExporter(&merged_events).Export();
  return outcome;
}

void WriteClusterJson(int64_t n_max, const std::vector<ScalingPoint>& scaling,
                      double scaling_4x, const FailoverOutcome& failover, bool deterministic) {
  const char* path = "BENCH_cluster_metrics.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"cluster\": {\n"
               "    \"n_max\": %lld,\n"
               "    \"scaling\": [\n",
               static_cast<long long>(n_max));
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingPoint& point = scaling[i];
    std::fprintf(file,
                 "      {\"nodes\": %d, \"arrivals\": %lld, \"admitted\": %lld, "
                 "\"rejected\": %lld, \"audit_clean\": %s}%s\n",
                 point.nodes, static_cast<long long>(point.arrivals),
                 static_cast<long long>(point.admitted), static_cast<long long>(point.rejected),
                 point.audit_clean ? "true" : "false", i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(file,
               "    ],\n"
               "    \"scaling_4x_vs_1x\": %.3f,\n"
               "    \"failover\": {\n"
               "      \"nodes\": %d,\n"
               "      \"arrivals\": %lld,\n"
               "      \"admitted\": %lld,\n"
               "      \"rejected\": %lld,\n"
               "      \"finished\": %lld,\n"
               "      \"failed_over\": %lld,\n"
               "      \"shed\": %lld,\n"
               "      \"nodes_killed\": %lld,\n"
               "      \"re_replications\": %lld,\n"
               "      \"repair_blocks\": %lld,\n"
               "      \"failover_events\": %lld,\n"
               "      \"failover_within_bound\": %lld,\n"
               "      \"shed_events\": %lld,\n"
               "      \"unaccounted_viewers\": %lld,\n"
               "      \"max_interruption_usec\": %lld,\n"
               "      \"bound_usec\": %lld,\n"
               "      \"audit_clean\": %s,\n"
               "      \"deterministic\": %s\n"
               "    }\n"
               "  }\n"
               "}\n",
               scaling_4x, kFailoverNodes, static_cast<long long>(failover.arrivals),
               static_cast<long long>(failover.census.admitted),
               static_cast<long long>(failover.census.rejected),
               static_cast<long long>(failover.census.finished),
               static_cast<long long>(failover.census.failed_over),
               static_cast<long long>(failover.census.shed),
               static_cast<long long>(failover.census.nodes_killed),
               static_cast<long long>(failover.census.re_replications),
               static_cast<long long>(failover.census.repair_blocks),
               static_cast<long long>(failover.failover_events),
               static_cast<long long>(failover.failover_within_bound),
               static_cast<long long>(failover.shed_events),
               static_cast<long long>(failover.unaccounted_viewers),
               static_cast<long long>(failover.max_interruption_usec),
               static_cast<long long>(failover.bound_usec),
               failover.audit_clean ? "true" : "false", deterministic ? "true" : "false");
  std::fclose(file);
  std::printf("metrics: %s\n", path);
}

void WriteClusterSlo(const FailoverOutcome& failover) {
  const char* path = "BENCH_cluster_slo.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(failover.slo_json.data(), 1, failover.slo_json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("slo: %s\n", path);
}

void PrintClusterTables() {
  PrintHeader("cluster", "scale-out sharding and node-loss failover");
  PrintOperatingPoint(FutureDisk());
  const int64_t n_max = ComputeNmax();
  std::printf("per-node Eq. 17 ceiling n_max = %lld\n", static_cast<long long>(n_max));

  std::printf("\nscaling (one cold title per node, 2x ceiling offered per node):\n");
  std::printf("%6s | %8s | %8s | %8s | %7s | %5s\n", "nodes", "arrivals", "admitted", "rejected",
              "vs 1", "audit");
  std::vector<ScalingPoint> scaling;
  for (const int nodes : {1, 2, 4, 8}) {
    scaling.push_back(RunScaling(nodes, n_max));
    const ScalingPoint& point = scaling.back();
    const double speedup = scaling.front().admitted > 0
                               ? static_cast<double>(point.admitted) /
                                     static_cast<double>(scaling.front().admitted)
                               : 0.0;
    std::printf("%6d | %8lld | %8lld | %8lld | %6.2fx | %5s\n", point.nodes,
                static_cast<long long>(point.arrivals), static_cast<long long>(point.admitted),
                static_cast<long long>(point.rejected), speedup,
                point.audit_clean ? "ok" : "FAIL");
  }
  const double scaling_4x =
      scaling.front().admitted > 0
          ? static_cast<double>(scaling[2].admitted) / static_cast<double>(scaling.front().admitted)
          : 0.0;

  std::printf("\nfailover (kill hot replica holder at flash peak, 4 nodes):\n");
  FailoverOutcome failover = RunFailover(n_max);
  const FailoverOutcome repeat = RunFailover(n_max);
  const bool deterministic = failover.signature == repeat.signature &&
                             failover.slo_json == repeat.slo_json &&
                             failover.critical_path_json == repeat.critical_path_json &&
                             failover.folded == repeat.folded;
  std::printf("%lld viewers: %lld admitted, %lld rejected, %lld finished, %lld failed over, "
              "%lld shed\n",
              static_cast<long long>(failover.arrivals),
              static_cast<long long>(failover.census.admitted),
              static_cast<long long>(failover.census.rejected),
              static_cast<long long>(failover.census.finished),
              static_cast<long long>(failover.census.failed_over),
              static_cast<long long>(failover.census.shed));
  std::printf("failovers: %lld events, %lld within the %lld us bound (max interruption %lld us)\n",
              static_cast<long long>(failover.failover_events),
              static_cast<long long>(failover.failover_within_bound),
              static_cast<long long>(failover.bound_usec),
              static_cast<long long>(failover.max_interruption_usec));
  std::printf("shedding: %lld explicit kShedLoad records; %lld viewers unaccounted for\n",
              static_cast<long long>(failover.shed_events),
              static_cast<long long>(failover.unaccounted_viewers));
  std::printf("repair: %lld re-replications (%lld blocks) behind the token bucket\n",
              static_cast<long long>(failover.census.re_replications),
              static_cast<long long>(failover.census.repair_blocks));
  std::printf("audits: %s; deterministic replay: %s\n", failover.audit_clean ? "clean" : "DIRTY",
              deterministic ? "yes" : "NO");

  WriteClusterJson(n_max, scaling, scaling_4x, failover, deterministic);
  WriteClusterSlo(failover);
  WriteTextArtifact(failover.critical_path_json, "cluster", "_criticalpath.json",
                    "critical path");
  WriteTextArtifact(failover.folded, "cluster", ".folded", "folded");
  WriteTextArtifact(failover.perfetto, "cluster", ".perfetto.json", "perfetto");
}

void BM_ClusterScaleTwoNodes(benchmark::State& state) {
  const int64_t n_max = ComputeNmax();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScaling(2, n_max).admitted);
  }
}
BENCHMARK(BM_ClusterScaleTwoNodes)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintClusterTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
