// Section 4.2 (Eqs. 19-20) and Figures 9-10: bounded copying during
// editing.
//
// Sweeps disk occupancy and measures how many blocks the scattering repair
// actually copies to bridge an edit seam, against the paper's analytic
// bounds C = l_seek_max / (2 * l_ds_lower) (sparse) and
// C = l_seek_max / l_ds_lower (dense). Then reproduces Figure 9's INSERT
// as a rope-level operation with repair statistics.

#include <benchmark/benchmark.h>

#include <cinttypes>

#include "bench/bench_support.h"
#include "src/core/editing_bounds.h"
#include "src/msm/recorder.h"
#include "src/msm/scattering_repair.h"
#include "src/rope/rope_server.h"

namespace vafs {
namespace {

struct RepairMeasurement {
  double occupancy = 0.0;
  bool repaired = false;
  bool failed = false;
  int64_t copies = 0;
  double copy_ms = 0.0;
};

// Disk for the editing experiments: linear seek curve and low rotational
// latency, matching the additive-seek arithmetic behind Eqs. 19-20.
DiskParameters EditDisk() {
  DiskParameters params;
  params.cylinders = 2000;
  params.surfaces = 16;
  params.sectors_per_track = 128;
  params.bytes_per_sector = 512;
  params.rpm = 15000.0;  // 4 ms rotation, 2 ms average latency
  params.min_seek_ms = 2.0;
  params.max_seek_ms = 30.0;
  params.seek_curve = SeekCurve::kLinear;
  return params;
}

// The strand placement contract for the editing experiments: scattering
// in [8 ms, 20 ms], i.e. l_upper = 2.5 * l_lower, comfortably within the
// UVC continuity bound on this disk.
StrandPlacement EditPlacement() { return StrandPlacement{4, 0.008, 0.020}; }

// Fills every cylinder in [first, last] except multiples of `free_period`,
// leaving a regular grid of free cylinders for the copy chain.
void FillCylinders(StrandStore* store, int64_t first, int64_t last, int64_t free_period) {
  const int64_t per_cylinder = store->model().params().SectorsPerCylinder();
  for (int64_t cyl = first; cyl <= last; ++cyl) {
    if (free_period > 0 && cyl % free_period == 0) {
      continue;
    }
    (void)store->allocator().AllocateExact(Extent{cyl * per_cylinder, per_cylinder});
  }
}

RepairMeasurement MeasureRepair(int64_t free_period) {
  const MediaProfile video = UvcCompressedVideo();
  Disk disk(EditDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  const int64_t cylinders = disk.model().params().cylinders;
  const int64_t per_cylinder = disk.model().params().SectorsPerCylinder();

  auto record_at = [&](int64_t cylinder, int64_t blocks, const StrandPlacement& placement) {
    Result<std::unique_ptr<StrandWriter>> writer = store.CreateStrand(video, placement);
    (void)(*writer)->SetAnchor(cylinder * per_cylinder + 1);
    const std::vector<uint8_t> payload(
        static_cast<size_t>(placement.granularity * video.bits_per_unit / 8), 0);
    for (int64_t b = 0; b < blocks; ++b) {
      if (!(*writer)->AppendBlock(payload).ok()) {
        return kNullStrand;
      }
    }
    Result<StrandId> id = (*writer)->Finish(blocks * placement.granularity);
    return id.ok() ? *id : kNullStrand;
  };
  // Strand A packs tightly near the front; strand B carries the editing
  // placement contract (the repair chain inherits its bounds) at the back.
  StrandPlacement contiguous = EditPlacement();
  contiguous.min_scattering_sec = 0.0;
  const StrandId a = record_at(2, 5, contiguous);
  const StrandId b = record_at(cylinders - 12, 10, EditPlacement());

  // Fill the middle with the requested density (0 = leave it all free).
  if (free_period > 0) {
    FillCylinders(&store, 8, cylinders - 30, free_period);
  }

  RepairMeasurement measurement;
  measurement.occupancy = store.allocator().Occupancy();
  if (a == kNullStrand || b == kNullStrand) {
    measurement.failed = true;
    return measurement;
  }
  Result<RepairOutcome> outcome = RepairSeam(&store, a, 4, b, 0, 10);
  if (!outcome.ok()) {
    measurement.failed = true;
    return measurement;
  }
  measurement.repaired = !outcome->already_continuous;
  measurement.copies = outcome->blocks_copied;
  measurement.copy_ms = UsecToSeconds(outcome->copy_time) * 1e3;
  return measurement;
}

void PrintCopySweep() {
  PrintHeader("Eqs. 19-20", "blocks copied at an edit seam vs disk occupancy");
  PrintOperatingPoint(EditDisk());
  const DiskModel model(EditDisk());
  const StorageTimings storage = StorageTimings::FromDiskModel(model);
  const StrandPlacement placement = EditPlacement();
  const int64_t sparse_bound = EditCopyBound(storage.max_access_gap_sec,
                                             placement.min_scattering_sec, DiskOccupancy::kSparse);
  const int64_t dense_bound = EditCopyBound(storage.max_access_gap_sec,
                                            placement.min_scattering_sec, DiskOccupancy::kDense);
  std::printf("scattering window: l_ds in [%.1f, %.1f] ms; analytic copy bounds: "
              "sparse %lld, dense %lld\n",
              placement.min_scattering_sec * 1e3, placement.max_scattering_sec * 1e3,
              static_cast<long long>(sparse_bound), static_cast<long long>(dense_bound));
  std::printf("%14s %10s | %10s %10s %12s\n", "free spacing", "occupancy", "copies",
              "copy ms", "verdict");
  for (int64_t free_period : {0, 100, 200, 300, 400, 500, 700, 1100, 1300}) {
    const RepairMeasurement m = MeasureRepair(free_period);
    const char* verdict = m.failed                   ? "no placement"
                          : !m.repaired              ? "no repair"
                          : m.copies <= sparse_bound ? "<= sparse"
                          : m.copies <= dense_bound  ? "<= dense"
                                                     : "OVER BOUND";
    if (free_period == 0) {
      std::printf("%14s %9.1f%% | %10lld %10.2f %12s\n", "disk empty", m.occupancy * 100.0,
                  static_cast<long long>(m.copies), m.copy_ms, verdict);
    } else {
      std::printf("%11lld cyl %9.1f%% | %10lld %10.2f %12s\n",
                  static_cast<long long>(free_period), m.occupancy * 100.0,
                  static_cast<long long>(m.copies), m.copy_ms, verdict);
    }
  }
  std::printf("(denser disks force shorter hops, so the chain copies more blocks,\n"
              " approaching the dense bound; a disk with no free cylinder within the\n"
              " scattering window admits no placement at all -- the Section 6.2\n"
              " reorganization case)\n");
}

void PrintInsertExample() {
  PrintHeader("Figures 9-10", "INSERT on a rope, with seam repair");
  Disk disk(FutureDisk());
  StrandStore store(&disk);
  RopeServer server(&store);
  ContinuityModel model(StorageTimings::FromDiskModel(disk.model()), UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, UvcCompressedVideo());

  auto record_rope = [&](uint64_t seed, double seconds) {
    VideoSource source(UvcCompressedVideo(), seed);
    RecordingResult recorded = *RecordVideo(&store, &source, placement, seconds);
    return *server.CreateRope("editor", recorded.strand, kNullStrand);
  };
  const RopeId rope1 = record_rope(1, 10.0);
  const RopeId rope2 = record_rope(2, 6.0);

  std::printf("Rope1: %.1f s, Rope2: %.1f s\n", (*server.Find(rope1))->LengthSec(),
              (*server.Find(rope2))->LengthSec());
  (void)server.Insert("editor", rope1, 3.3, MediaSelector::kVideo, rope2,
                      TimeInterval{0.0, 6.0});
  const Rope* rope = *server.Find(rope1);
  std::printf("after INSERT[base: Rope1, position: 3.3s, with: Rope2[0, 6s]]: %.1f s, "
              "%zu intervals\n",
              rope->LengthSec(), rope->video().segments.size());
  for (const SyncInterval& interval : rope->SynchronizationInfo()) {
    std::printf("  [%6.2fs +%5.2fs] video strand %llu, block %lld\n", interval.start_sec,
                interval.length_sec, static_cast<unsigned long long>(interval.video_strand),
                static_cast<long long>(interval.video_block));
  }
  Result<RopeServer::RopeRepairStats> stats = server.RepairRope(rope1, Medium::kVideo);
  std::printf("repair: %lld seams checked, %lld repaired, %lld blocks copied (%.2f ms disk)\n",
              static_cast<long long>(stats->seams_checked),
              static_cast<long long>(stats->seams_repaired),
              static_cast<long long>(stats->blocks_copied),
              UsecToSeconds(stats->copy_time) * 1e3);
  std::printf("strands now: %lld (copies are new immutable strands; interests track sharing)\n",
              static_cast<long long>(store.strand_count()));
}

void BM_RepairSeam(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureRepair(4).copies);
  }
}
BENCHMARK(BM_RepairSeam)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintCopySweep();
  vafs::PrintInsertExample();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
