// Section 6.2 extension: variable-rate compression.
//
// "Variable rate compression of video [...] can result in varying but
// smaller sizes of video frames, thereby yielding better bounds for
// granularity and scattering." The bench records the same footage CBR
// (every frame at the intra size) and VBR (differencing encoder), and
// compares storage, the scattering bound computed at the realized mean
// rate, and simulated playback with the burst-covering read-ahead.

#include <benchmark/benchmark.h>

#include <cinttypes>

#include "bench/bench_support.h"
#include "src/media/vbr_source.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"

namespace vafs {
namespace {

VbrProfile NewsVbr() {
  VbrProfile vbr;
  vbr.group_of_pictures = 15;
  vbr.delta_mean_fraction = 0.2;
  vbr.scene_change_per_sec = 0.3;
  return vbr;
}

void RunComparison() {
  PrintHeader("Section 6.2 (VBR)", "constant vs variable rate video, 60 s of footage");
  PrintOperatingPoint(TestbedDisk());
  const MediaProfile video = UvcCompressedVideo();
  const double duration = 60.0;

  Disk disk(TestbedDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  const StorageTimings storage = StorageTimings::FromDiskModel(disk.model());
  ContinuityModel model(storage, UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);

  const int64_t free_start = store.allocator().free_sectors();
  VideoSource cbr_source(video, 1);
  RecordingResult cbr = *RecordVideo(&store, &cbr_source, placement, duration);
  const int64_t cbr_sectors = free_start - store.allocator().free_sectors();

  const int64_t free_mid = store.allocator().free_sectors();
  VbrVideoSource vbr_source(video, NewsVbr(), 1);
  RecordingResult vbr = *RecordVbrVideo(&store, &vbr_source, placement, duration);
  const int64_t vbr_sectors = free_mid - store.allocator().free_sectors();

  const VbrStrandStats stats = AnalyzeVbrBlocks(vbr.block_bits);
  const double block_duration_sec =
      static_cast<double>(placement.granularity) / video.units_per_sec;
  const double cbr_block_bits =
      static_cast<double>(placement.granularity * video.bits_per_unit);

  std::printf("%24s %14s %14s\n", "", "CBR", "VBR");
  std::printf("%24s %12lld %14lld\n", "sectors used", static_cast<long long>(cbr_sectors),
              static_cast<long long>(vbr_sectors));
  std::printf("%24s %11.1f%% %13.1f%%\n", "of CBR size", 100.0,
              100.0 * static_cast<double>(vbr_sectors) / static_cast<double>(cbr_sectors));
  std::printf("%24s %12.0f %14.0f\n", "mean block bits", cbr_block_bits,
              stats.mean_block_bits);
  // Better scattering bound: budget the transfer at the realized mean.
  const double cbr_bound =
      block_duration_sec - cbr_block_bits / storage.transfer_rate_bits_per_sec;
  const double vbr_bound =
      block_duration_sec - stats.mean_block_bits / storage.transfer_rate_bits_per_sec;
  std::printf("%24s %10.2f ms %12.2f ms\n", "scattering bound l_ds", cbr_bound * 1e3,
              vbr_bound * 1e3);
  const int64_t read_ahead =
      stats.RequiredReadAhead(storage.transfer_rate_bits_per_sec, block_duration_sec);
  std::printf("%24s %12d %14lld\n", "read-ahead blocks", 1,
              static_cast<long long>(read_ahead));

  // Simulated playback of the VBR strand with the computed read-ahead.
  const Strand* strand = *store.Get(vbr.strand);
  Simulator sim;
  AdmissionControl admission(storage, store.AverageScatteringSec());
  ServiceScheduler scheduler(&store, &sim, admission);
  PlaybackRequest request;
  for (int64_t b = 0; b < strand->block_count(); ++b) {
    request.blocks.push_back(*strand->index().Lookup(b));
  }
  request.block_duration = strand->info().BlockDuration();
  MediaProfile mean_profile = video;
  mean_profile.bits_per_unit =
      static_cast<int64_t>(stats.mean_block_bits / static_cast<double>(placement.granularity));
  request.spec = RequestSpec{mean_profile, placement.granularity};
  request.read_ahead_blocks = read_ahead;
  const RequestId id = *scheduler.SubmitPlayback(std::move(request));
  scheduler.RunUntilIdle();
  std::printf("VBR playback: %" PRId64 " blocks, %" PRId64
              " violations with read-ahead %lld\n",
              scheduler.stats(id)->blocks_done, scheduler.stats(id)->continuity_violations,
              static_cast<long long>(read_ahead));

  // Capacity effect: more streams fit at the mean rate.
  AdmissionControl mean_admission(storage, storage.avg_rotational_latency_sec);
  const int64_t cbr_n = mean_admission
                            .Analyze({RequestSpec{video, placement.granularity}})
                            .n_max;
  const int64_t vbr_n = mean_admission
                            .Analyze({RequestSpec{mean_profile, placement.granularity}})
                            .n_max;
  std::printf("service ceiling n_max: CBR %lld -> VBR %lld\n", static_cast<long long>(cbr_n),
              static_cast<long long>(vbr_n));
}

void BM_VbrFrameSizing(benchmark::State& state) {
  VbrVideoSource source(UvcCompressedVideo(), NewsVbr(), 5);
  int64_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.FrameBytes(frame++ % 100000));
  }
}
BENCHMARK(BM_VbrFrameSizing);

void BM_VbrBurstAnalysis(benchmark::State& state) {
  VbrVideoSource source(UvcCompressedVideo(), NewsVbr(), 5);
  std::vector<int64_t> blocks;
  for (int64_t b = 0; b < 10000; ++b) {
    int64_t bits = 0;
    for (int64_t f = 0; f < 4; ++f) {
      bits += source.FrameBytes(b * 4 + f) * 8;
    }
    blocks.push_back(bits);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeVbrBlocks(blocks).worst_burst_excess_bits);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(blocks.size()));
}
BENCHMARK(BM_VbrBurstAnalysis);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::RunComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
