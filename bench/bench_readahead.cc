// Section 3.3.2 + Eq. 4: buffering and read-ahead requirements.
//
// Reproduces the paper's buffer-count table (strict vs k-block average
// continuity across the three architectures), the extra read-ahead h a
// stream needs before the disk switches to another task (Eq. 4), and a
// simulated slow-motion run showing that bounded device buffers cap
// accumulation (the disk "switches to some other task" when they fill).

#include <benchmark/benchmark.h>

#include <cinttypes>

#include "bench/bench_support.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"

namespace vafs {
namespace {

void PrintBufferingTable() {
  PrintHeader("Section 3.3.2", "read-ahead / device buffers per architecture");
  const StorageTimings storage = StorageTimings::FromDiskModel(DiskModel(TestbedDisk()));
  ContinuityModel model(storage, UvcDisplay(), 4);
  std::printf("%4s | %18s | %18s | %18s\n", "k", "sequential", "pipelined",
              "concurrent p=4");
  std::printf("%4s | %8s %9s | %8s %9s | %8s %9s\n", "", "r-ahead", "buffers", "r-ahead",
              "buffers", "r-ahead", "buffers");
  for (int64_t k : {1, 2, 4, 8}) {
    const auto seq = model.PlanBuffering(RetrievalArchitecture::kSequential, k);
    const auto pipe = model.PlanBuffering(RetrievalArchitecture::kPipelined, k);
    const auto conc = model.PlanBuffering(RetrievalArchitecture::kConcurrent, k);
    std::printf("%4lld | %8lld %9lld | %8lld %9lld | %8lld %9lld\n",
                static_cast<long long>(k), static_cast<long long>(seq.read_ahead_blocks),
                static_cast<long long>(seq.device_buffers),
                static_cast<long long>(pipe.read_ahead_blocks),
                static_cast<long long>(pipe.device_buffers),
                static_cast<long long>(conc.read_ahead_blocks),
                static_cast<long long>(conc.device_buffers));
  }
  std::printf("(k = 1 is the strict continuity requirement)\n");
}

void PrintTaskSwitchReadAhead() {
  PrintHeader("Equation 4", "extra read-ahead h before the disk switches tasks");
  std::printf("%-28s %6s %14s %6s\n", "medium", "q", "block dur (ms)", "h");
  for (const DiskParameters& disk_params : {TestbedDisk(), FutureDisk()}) {
    const StorageTimings storage = StorageTimings::FromDiskModel(DiskModel(disk_params));
    ContinuityModel model(storage, UvcDisplay());
    std::printf("-- l_seek_max = %.1f ms --\n", storage.max_access_gap_sec * 1e3);
    struct Case {
      MediaProfile media;
      int64_t q;
    };
    for (const Case& c : {Case{UvcCompressedVideo(), 1}, Case{UvcCompressedVideo(), 4},
                          Case{TelephoneAudio(), 8000}, Case{CdAudio(), 44100}}) {
      const double duration = ContinuityModel::BlockPlaybackDuration(c.media, c.q);
      std::printf("%-28s %6lld %14.1f %6lld\n", c.media.ToString().c_str(),
                  static_cast<long long>(c.q), duration * 1e3,
                  static_cast<long long>(model.ExtraReadAheadForTaskSwitch(c.media, c.q)));
    }
  }
}

void RunSlowMotion() {
  PrintHeader("Section 3.3.2", "slow motion: bounded buffers stop accumulation");
  const MediaProfile video = UvcCompressedVideo();
  Disk disk(TestbedDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  ContinuityModel model(StorageTimings::FromDiskModel(disk.model()), UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);
  VideoSource source(video, 3);
  RecordingResult recorded = *RecordVideo(&store, &source, placement, 20.0);
  const Strand* strand = *store.Get(recorded.strand);

  std::printf("%10s %12s %14s %12s\n", "rate", "buffer cap", "max buffered", "glitches");
  for (double rate : {1.0, 0.5, 0.25}) {
    for (int64_t cap : {4, 16, 4096 /* effectively unbounded */}) {
      Simulator sim;
      AdmissionControl admission(StorageTimings::FromDiskModel(disk.model()),
                                 store.AverageScatteringSec());
      ServiceScheduler scheduler(&store, &sim, admission);
      PlaybackRequest request;
      for (int64_t b = 0; b < strand->block_count(); ++b) {
        request.blocks.push_back(*strand->index().Lookup(b));
      }
      request.block_duration = strand->info().BlockDuration();
      request.spec = RequestSpec{video, placement.granularity};
      request.rate_multiplier = rate;  // < 1 = slow motion
      request.device_buffers = cap;
      RequestId id = *scheduler.SubmitPlayback(std::move(request));
      scheduler.RunUntilIdle();
      const RequestStats stats = *scheduler.stats(id);
      std::printf("%9.2fx %12s %14" PRId64 " %12" PRId64 "\n", rate,
                  cap >= 4096 ? "unbounded" : std::to_string(cap).c_str(),
                  stats.max_buffered_blocks, stats.continuity_violations);
    }
  }
  std::printf("(slow motion over-satisfies continuity; without a cap blocks pile up)\n");
}

void BM_PlanBuffering(benchmark::State& state) {
  ContinuityModel model(StorageTimings::FromDiskModel(DiskModel(TestbedDisk())), UvcDisplay(),
                        4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.PlanBuffering(RetrievalArchitecture::kConcurrent, 8).device_buffers);
    benchmark::DoNotOptimize(model.ExtraReadAheadForTaskSwitch(UvcCompressedVideo(), 4));
  }
}
BENCHMARK(BM_PlanBuffering);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintBufferingTable();
  vafs::PrintTaskSwitchReadAhead();
  vafs::RunSlowMotion();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
