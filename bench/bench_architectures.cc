// Figures 1-3 + Table 1: continuity under the sequential, pipelined and
// concurrent retrieval architectures, and the constrained-vs-random
// placement ablation (Section 3's motivation for constrained allocation).
//
// Prints, for each architecture, the maximum scattering parameter l_ds
// that still satisfies the continuity requirement (Eqs. 1-3) as the
// granularity grows, then verifies by simulation that constrained
// placement plays back glitch-free while random placement does not.

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <vector>

#include "bench/bench_support.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/msm/striped.h"
#include "src/util/prng.h"

namespace vafs {
namespace {

void PrintContinuityTable() {
  PrintHeader("Figures 1-3", "max scattering l_ds (ms) per architecture and granularity");
  PrintOperatingPoint(TestbedDisk());
  const MediaProfile video = UvcCompressedVideo();
  std::printf("media: %s\n", video.ToString().c_str());
  const StorageTimings storage = StorageTimings::FromDiskModel(DiskModel(TestbedDisk()));
  ContinuityModel model2(storage, UvcDisplay(), 2);
  ContinuityModel model4(storage, UvcDisplay(), 4);

  std::printf("%4s %14s %14s %16s %16s\n", "q", "sequential", "pipelined", "concurrent p=2",
              "concurrent p=4");
  for (int64_t q = 1; q <= 8; ++q) {
    const double seq =
        model2.MaxScattering(RetrievalArchitecture::kSequential, video, q) * 1e3;
    const double pipe =
        model2.MaxScattering(RetrievalArchitecture::kPipelined, video, q) * 1e3;
    const double con2 =
        model2.MaxScattering(RetrievalArchitecture::kConcurrent, video, q) * 1e3;
    const double con4 =
        model4.MaxScattering(RetrievalArchitecture::kConcurrent, video, q) * 1e3;
    std::printf("%4lld %11.2f %s %11.2f %s %13.2f %s %13.2f %s\n", static_cast<long long>(q),
                seq, seq >= 0 ? "ok" : "--", pipe, pipe >= 0 ? "ok" : "--", con2,
                con2 >= 0 ? "ok" : "--", con4, con4 >= 0 ? "ok" : "--");
  }

  for (RetrievalArchitecture arch :
       {RetrievalArchitecture::kSequential, RetrievalArchitecture::kPipelined,
        RetrievalArchitecture::kConcurrent}) {
    Result<StrandPlacement> placement = model2.DerivePlacement(arch, video);
    if (placement.ok()) {
      std::printf("derived placement (%s): q = %lld, l_ds <= %.2f ms\n", ArchitectureName(arch),
                  static_cast<long long>(placement->granularity),
                  placement->max_scattering_sec * 1e3);
    } else {
      std::printf("derived placement (%s): infeasible\n", ArchitectureName(arch));
    }
  }
}

// Simulated ablation: constrained vs random placement under increasing
// concurrency. Random placement pays ~3x the positioning cost per block,
// so it starts glitching (and hits the service ceiling) at a lower stream
// count — the paper's argument for constrained allocation.
struct AblationRow {
  bool admitted = false;
  int64_t violations = 0;
  double avg_gap_ms = 0.0;
};

AblationRow RunStreams(bool constrained, int n) {
  const MediaProfile video = UvcCompressedVideo();
  const double duration_sec = 20.0;
  Disk disk(FutureDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  ContinuityModel model(StorageTimings::FromDiskModel(disk.model()), UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);
  const int64_t block_sectors = (placement.granularity * video.bits_per_unit / 8 + 511) / 512;
  const int64_t blocks_per_stream =
      static_cast<int64_t>(duration_sec * video.units_per_sec) / placement.granularity;

  // Lay out n strands.
  Prng prng(1234);
  std::vector<std::vector<PrimaryEntry>> strands(static_cast<size_t>(n));
  double total_gap = 0.0;
  int64_t gap_count = 0;
  for (int s = 0; s < n; ++s) {
    if (constrained) {
      VideoSource source(video, static_cast<uint64_t>(s) + 1);
      RecordingResult recorded = *RecordVideo(&store, &source, placement, duration_sec);
      const Strand* strand = *store.Get(recorded.strand);
      for (int64_t b = 0; b < strand->block_count(); ++b) {
        strands[static_cast<size_t>(s)].push_back(*strand->index().Lookup(b));
      }
      total_gap += recorded.avg_gap_sec * static_cast<double>(strand->block_count() - 1);
      gap_count += strand->block_count() - 1;
    } else {
      int64_t previous_end = -1;
      for (int64_t b = 0; b < blocks_per_stream; ++b) {
        while (true) {
          const int64_t start = prng.NextInRange(0, disk.total_sectors() - block_sectors - 1);
          if (store.allocator().AllocateExact(Extent{start, block_sectors}).ok()) {
            strands[static_cast<size_t>(s)].push_back(PrimaryEntry{start, block_sectors});
            if (previous_end > 0) {
              total_gap += UsecToSeconds(disk.model().AccessGap(previous_end - 1, start));
              ++gap_count;
            }
            previous_end = start + block_sectors;
            break;
          }
        }
      }
    }
  }

  // Admission assumes the placement contract's average; the realized gap
  // of random placement silently exceeds it.
  Simulator sim;
  AdmissionControl admission(StorageTimings::FromDiskModel(disk.model()),
                             UsecToSeconds(disk.model().AverageRotationalLatency()));
  ServiceScheduler scheduler(&store, &sim, admission);
  std::vector<RequestId> ids;
  AblationRow row;
  row.avg_gap_ms = gap_count > 0 ? total_gap / static_cast<double>(gap_count) * 1e3 : 0.0;
  for (int s = 0; s < n; ++s) {
    PlaybackRequest request;
    request.blocks = strands[static_cast<size_t>(s)];
    request.block_duration =
        SecondsToUsec(static_cast<double>(placement.granularity) / video.units_per_sec);
    request.spec = RequestSpec{video, placement.granularity};
    Result<RequestId> id = scheduler.SubmitPlayback(std::move(request));
    if (!id.ok()) {
      return row;  // admission ceiling reached
    }
    ids.push_back(*id);
  }
  row.admitted = true;
  scheduler.RunUntilIdle();
  for (RequestId id : ids) {
    row.violations += scheduler.stats(id)->continuity_violations;
  }
  return row;
}

void RunPlacementAblation() {
  PrintHeader("Section 3 ablation",
              "constrained vs random placement, n concurrent streams (future disk)");
  PrintOperatingPoint(FutureDisk());
  std::printf("%4s | %12s %10s | %12s %10s\n", "n", "constrained", "avg gap", "random",
              "avg gap");
  for (int n = 1; n <= 14; ++n) {
    const AblationRow constrained = RunStreams(true, n);
    const AblationRow random = RunStreams(false, n);
    auto cell = [](const AblationRow& r) {
      static char buffer[2][32];
      static int which = 0;
      which ^= 1;
      if (!r.admitted) {
        std::snprintf(buffer[which], sizeof(buffer[which]), "rejected");
      } else {
        std::snprintf(buffer[which], sizeof(buffer[which]), "%lld viol",
                      static_cast<long long>(r.violations));
      }
      return buffer[which];
    };
    std::printf("%4d | %12s %8.2fms | %12s %8.2fms\n", n, cell(constrained),
                constrained.avg_gap_ms, cell(random), random.avg_gap_ms);
    if (!constrained.admitted && !random.admitted) {
      break;
    }
  }
}

// Figure 3, operational: a stream too fast for one member disk plays
// cleanly from a striped array fetching p blocks in parallel.
void RunConcurrentSimulation() {
  PrintHeader("Figure 3", "concurrent architecture: striped playback across p members");
  const DiskModel member(TestbedDisk());
  const StorageTimings member_timings = StorageTimings::FromDiskModel(member);
  // ~1.7x one member's R_dt.
  const MediaProfile heavy{Medium::kVideo, 30.0,
                           static_cast<int64_t>(member_timings.transfer_rate_bits_per_sec *
                                                1.7 / 30.0)};
  std::printf("stream: %.1f Mbit/s vs member R_dt %.1f Mbit/s\n", heavy.BitRate() / 1e6,
              member_timings.transfer_rate_bits_per_sec / 1e6);
  for (int p : {1, 2, 4}) {
    ContinuityModel model(member_timings, DeviceProfile{heavy.BitRate() * 4.0, 4 * p}, p);
    const RetrievalArchitecture arch =
        p == 1 ? RetrievalArchitecture::kPipelined : RetrievalArchitecture::kConcurrent;
    Result<StrandPlacement> placement = model.DerivePlacement(arch, heavy);
    if (!placement.ok()) {
      std::printf("  p=%d: infeasible (%s)\n", p,
                  p == 1 ? "transfer exceeds playback on one disk"
                         : placement.status().message().c_str());
      continue;
    }
    DiskArray array(TestbedDisk(), p, DiskOptions{.retain_data = false});
    StripedStore store(&array);
    Result<StripedStrand> strand = store.Record(heavy, *placement, 15.0);
    if (!strand.ok()) {
      std::printf("  p=%d: recording failed (%s)\n", p, strand.status().message().c_str());
      continue;
    }
    Result<StripedStore::PlaybackOutcome> outcome = store.Play(*strand);
    std::printf("  p=%d: q=%lld, %" PRId64 " blocks, %" PRId64 " violations\n", p,
                static_cast<long long>(placement->granularity), outcome->blocks_done,
                outcome->violations);
  }
}

void BM_MaxScatteringEvaluation(benchmark::State& state) {
  ContinuityModel model(StorageTimings::FromDiskModel(DiskModel(TestbedDisk())), UvcDisplay(),
                        4);
  const MediaProfile video = UvcCompressedVideo();
  int64_t q = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.MaxScattering(RetrievalArchitecture::kConcurrent, video, q));
    q = q % 8 + 1;
  }
}
BENCHMARK(BM_MaxScatteringEvaluation);

void BM_ConstrainedAllocate(benchmark::State& state) {
  DiskModel model(TestbedDisk());
  for (auto _ : state) {
    state.PauseTiming();
    ConstrainedAllocator allocator(&model);
    state.ResumeTiming();
    int64_t previous_end = 1;
    for (int i = 0; i < 100; ++i) {
      Result<Extent> extent = allocator.AllocateNear(previous_end, 94, 40);
      benchmark::DoNotOptimize(extent.ok());
      previous_end = extent->end_sector();
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ConstrainedAllocate);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintContinuityTable();
  vafs::RunPlacementAblation();
  vafs::RunConcurrentSimulation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
