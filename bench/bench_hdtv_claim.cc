// Section 3's feasibility claim: "with a block size of 4 Kbytes, future
// disk arrays with 100 parallel heads and projected seek and latency times
// of the order of 10 ms will be able to support 0.32 Gigabits/s transfer
// rates in the absence of constrained block allocation. This is inadequate
// for the retrieval of even one HDTV-quality video strand which may
// require data transfer rates of up to 2.5 Gigabit/s."
//
// The bench reproduces the arithmetic from our disk/array models, then
// shows the two levers the paper's design provides: constrained placement
// (gap shrinks from 10 ms to about a rotation) and larger blocks.

#include <benchmark/benchmark.h>

#include <cinttypes>

#include "bench/bench_support.h"
#include "src/disk/disk_array.h"

namespace vafs {
namespace {

// The paper's projected future member disk: ~10 ms worst positioning.
DiskParameters ProjectedMemberDisk() {
  DiskParameters params;
  params.cylinders = 2000;
  params.surfaces = 16;
  params.sectors_per_track = 128;
  params.bytes_per_sector = 512;
  params.rpm = 10000.0;  // 6 ms rotation -> 3 ms avg latency
  params.min_seek_ms = 1.0;
  params.max_seek_ms = 7.0;  // + worst latency 6 ms ~= 13 ms; avg ~10 ms
  return params;
}

// Effective per-array throughput when every block access pays `gap`.
double EffectiveRate(const DiskModel& model, int members, int64_t block_bytes, double gap_sec) {
  const double block_bits = static_cast<double>(block_bytes) * 8.0;
  const double transfer_sec = block_bits / model.TransferRateBitsPerSec();
  return static_cast<double>(members) * block_bits / (gap_sec + transfer_sec);
}

void PrintClaim() {
  PrintHeader("Section 3 claim", "HDTV vs a 100-head array, 4 KB blocks");
  const DiskModel model(ProjectedMemberDisk());
  const double hdtv_rate = HdtvVideo().BitRate();
  std::printf("HDTV-quality strand requires %.2f Gbit/s\n", hdtv_rate / 1e9);

  // Paper's arithmetic: 4 KB per 10 ms per head.
  const double paper_rate = 100.0 * 4096.0 * 8.0 / 0.010;
  std::printf("paper's figure: 100 heads x 4 KB / 10 ms = %.2f Gbit/s\n", paper_rate / 1e9);

  const double unconstrained_gap =
      UsecToSeconds(model.SeekTimeForDistance(model.params().cylinders / 3) +
                    model.AverageRotationalLatency());
  const double constrained_gap = UsecToSeconds(model.AverageRotationalLatency());
  std::printf("model: member disk R_dt = %.1f Mbit/s, random-gap = %.1f ms, "
              "constrained-gap = %.1f ms\n",
              model.TransferRateBitsPerSec() / 1e6, unconstrained_gap * 1e3,
              constrained_gap * 1e3);

  std::printf("\n%12s | %22s %22s\n", "block size", "unconstrained (Gbit/s)",
              "constrained (Gbit/s)");
  for (int64_t block_bytes : {4096, 16384, 65536, 262144, 1048576}) {
    const double random_rate = EffectiveRate(model, 100, block_bytes, unconstrained_gap);
    const double constrained_rate = EffectiveRate(model, 100, block_bytes, constrained_gap);
    std::printf("%9lld KB | %15.3f %s %15.3f %s\n",
                static_cast<long long>(block_bytes / 1024), random_rate / 1e9,
                random_rate >= hdtv_rate ? "HDTV-ok" : "  < HDTV",
                constrained_rate / 1e9, constrained_rate >= hdtv_rate ? "HDTV-ok" : "  < HDTV");
  }
  std::printf("\nShape check: at 4 KB blocks, even 100 parallel heads cannot feed one HDTV\n"
              "strand without constrained allocation — the positioning gap, not the media\n"
              "rate, dominates. Constrained placement and larger blocks both attack the gap.\n");
}

void BM_BatchReadThroughput(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  DiskArray array(ProjectedMemberDisk(), members, DiskOptions{.retain_data = false});
  std::vector<DiskArray::BatchRequest> batch;
  for (int m = 0; m < members; ++m) {
    batch.push_back({m, m * 1000, 8});  // 4 KB per member
  }
  SimDuration total = 0;
  for (auto _ : state) {
    Result<DiskArray::BatchOutcome> outcome = array.ReadBatch(batch, nullptr);
    benchmark::DoNotOptimize(outcome.ok());
    total += outcome->completion_time;
  }
  state.counters["sim_usec_per_batch"] = static_cast<double>(total) /
                                         static_cast<double>(state.iterations());
}
BENCHMARK(BM_BatchReadThroughput)->Arg(4)->Arg(16)->Arg(100);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintClaim();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
