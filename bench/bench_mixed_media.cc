// Section 3.3.3 (Eqs. 5-6): storing multiple media — homogeneous vs
// heterogeneous blocks.
//
// Prints the max scattering for interleaved audio+video retrieval as the
// audio granularity (and hence n, the audio/video block duration ratio)
// grows, showing heterogeneous blocks (or co-located homogeneous pairs,
// Eq. 6) tolerate more scattering per gap; then verifies by simulation
// that a video + audio pair of streams plays glitch-free together.

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cmath>

#include "bench/bench_support.h"
#include "src/msm/interleaved.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"

namespace vafs {
namespace {

void PrintMixedTable() {
  PrintHeader("Equations 5-6", "audio+video continuity: homogeneous vs heterogeneous blocks");
  PrintOperatingPoint(TestbedDisk());
  const MediaProfile video = UvcCompressedVideo();
  const MediaProfile audio = TelephoneAudio();
  const StorageTimings storage = StorageTimings::FromDiskModel(DiskModel(TestbedDisk()));
  ContinuityModel model(storage, UvcDisplay());
  const int64_t qv = 4;  // video: 4 frames/block = 133 ms
  const double video_block_sec = ContinuityModel::BlockPlaybackDuration(video, qv);

  std::printf("video: q = %lld (%.0f ms blocks); audio granularity sweeps below\n",
              static_cast<long long>(qv), video_block_sec * 1e3);
  std::printf("%8s %6s %22s %24s\n", "qa", "n", "homogeneous l_ds (ms)",
              "heterogeneous l_ds (ms)");
  for (double n : {1.0, 2.0, 4.0, 8.0}) {
    const int64_t qa =
        static_cast<int64_t>(std::llround(n * video_block_sec * audio.units_per_sec));
    const double homogeneous = model.MaxScatteringMixedHomogeneous(video, qv, audio, qa) * 1e3;
    // Eq. 6 applies to the n = 1 pairing; for larger n the audio rides
    // with every n-th video block, which Eq. 6 models with the combined
    // payload spread over one gap per video block.
    const double heterogeneous =
        model.MaxScatteringMixedHeterogeneous(video, qv, audio,
                                              static_cast<int64_t>(qa / n)) *
        1e3;
    std::printf("%8lld %6.0f %22.2f %24.2f\n", static_cast<long long>(qa), n, homogeneous,
                heterogeneous);
  }
  std::printf("(heterogeneous/co-located wins: one positioning gap per combined block)\n");
}

void RunAvPairSimulation() {
  PrintHeader("Section 3.3.3", "simulated synchronized audio+video playback");
  const MediaProfile video = UvcCompressedVideo();
  const MediaProfile audio = TelephoneAudio();
  Disk disk(TestbedDisk());
  StrandStore store(&disk);
  const StorageTimings storage = StorageTimings::FromDiskModel(disk.model());
  ContinuityModel video_model(storage, UvcDisplay());
  ContinuityModel audio_model(storage, AudioDisplay());
  const StrandPlacement video_placement =
      *video_model.DerivePlacement(RetrievalArchitecture::kPipelined, video);
  const StrandPlacement audio_placement =
      *audio_model.DerivePlacement(RetrievalArchitecture::kPipelined, audio);

  VideoSource video_source(video, 5);
  AudioSource audio_source(audio, SpeechProfile{}, 5);
  RecordingResult video_recorded = *RecordVideo(&store, &video_source, video_placement, 15.0);
  RecordingResult audio_recorded =
      *RecordAudio(&store, &audio_source, SilenceDetector(), audio_placement, 15.0);

  Simulator sim;
  AdmissionControl admission(storage, store.AverageScatteringSec());
  ServiceScheduler scheduler(&store, &sim, admission);
  auto submit = [&](StrandId strand_id, const MediaProfile& media, int64_t q) {
    const Strand* strand = *store.Get(strand_id);
    PlaybackRequest request;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      request.blocks.push_back(*strand->index().Lookup(b));
    }
    request.block_duration = strand->info().BlockDuration();
    request.spec = RequestSpec{media, q};
    return *scheduler.SubmitPlayback(std::move(request));
  };
  const RequestId video_id = submit(video_recorded.strand, video, video_placement.granularity);
  const RequestId audio_id = submit(audio_recorded.strand, audio, audio_placement.granularity);
  scheduler.RunUntilIdle();

  const RequestStats video_stats = *scheduler.stats(video_id);
  const RequestStats audio_stats = *scheduler.stats(audio_id);
  std::printf("video: q=%lld, %" PRId64 " blocks, %" PRId64 " violations\n",
              static_cast<long long>(video_placement.granularity), video_stats.blocks_done,
              video_stats.continuity_violations);
  std::printf("audio: q=%lld, %" PRId64 " blocks (%" PRId64 " silent), %" PRId64
              " violations\n",
              static_cast<long long>(audio_placement.granularity), audio_stats.blocks_done,
              audio_recorded.silence_blocks, audio_stats.continuity_violations);
  std::printf("start skew (block-level correspondence keeps media aligned): %.1f ms\n",
              UsecToSeconds(std::abs(video_stats.startup_latency -
                                     audio_stats.startup_latency)) *
                  1e3);
}

// Heterogeneous blocks, implemented: one interleaved strand carries both
// media, consuming ONE admission slot with implicit synchronization.
void RunInterleavedSimulation() {
  PrintHeader("Section 3.3.3", "heterogeneous blocks: one interleaved A/V stream");
  const MediaProfile video = UvcCompressedVideo();
  // 8000 samples/s / 30 fps is not integral; interleave at 7980 (266/frame).
  const MediaProfile audio{Medium::kAudio, 7980.0, 8};
  Disk disk(TestbedDisk());
  StrandStore store(&disk);
  Result<InterleavedLayout> layout = MakeInterleavedLayout(video, audio);
  if (!layout.ok()) {
    std::printf("layout failed: %s\n", layout.status().ToString().c_str());
    return;
  }
  const StorageTimings storage = StorageTimings::FromDiskModel(disk.model());
  ContinuityModel model(storage, UvcDisplay());
  Result<StrandPlacement> placement =
      model.DerivePlacement(RetrievalArchitecture::kPipelined, layout->Profile());
  if (!placement.ok()) {
    std::printf("placement failed: %s\n", placement.status().ToString().c_str());
    return;
  }
  VideoSource video_source(video, 8);
  AudioSource audio_source(audio, SpeechProfile{}, 8);
  RecordingResult recorded =
      *RecordInterleavedAv(&store, &video_source, &audio_source, *layout, *placement, 15.0);
  const Strand* strand = *store.Get(recorded.strand);

  Simulator sim;
  AdmissionControl admission(storage, store.AverageScatteringSec());
  ServiceScheduler scheduler(&store, &sim, admission);
  PlaybackRequest request;
  for (int64_t b = 0; b < strand->block_count(); ++b) {
    request.blocks.push_back(*strand->index().Lookup(b));
  }
  request.block_duration = strand->info().BlockDuration();
  request.spec = RequestSpec{layout->Profile(), placement->granularity};
  const RequestId id = *scheduler.SubmitPlayback(std::move(request));
  scheduler.RunUntilIdle();
  std::printf("interleaved: q=%lld composite units/block (%lld B each), %" PRId64
              " blocks, %" PRId64 " violations, ONE admission slot\n",
              static_cast<long long>(placement->granularity),
              static_cast<long long>(layout->UnitBytes()), scheduler.stats(id)->blocks_done,
              scheduler.stats(id)->continuity_violations);
  std::printf("(the homogeneous run above needed two slots and explicit block-level\n"
              " correspondence; the combining/separating cost moves to the codec)\n");
}

void BM_MixedBound(benchmark::State& state) {
  ContinuityModel model(StorageTimings::FromDiskModel(DiskModel(TestbedDisk())), UvcDisplay());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.MaxScatteringMixedHomogeneous(UvcCompressedVideo(), 4, TelephoneAudio(), 1066));
    benchmark::DoNotOptimize(
        model.MaxScatteringMixedHeterogeneous(UvcCompressedVideo(), 4, TelephoneAudio(), 1066));
  }
}
BENCHMARK(BM_MixedBound);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintMixedTable();
  vafs::RunAvPairSimulation();
  vafs::RunInterleavedSimulation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
