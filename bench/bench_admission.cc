// Figure 4: variation of the round size k with the number of concurrent
// requests n, with the service ceiling n_max (Eq. 17), for both the
// steady-state solution (Eq. 16) and the transient-safe solution (Eq. 18).
//
// Also reproduces the Section 6.2 "future work" ablation: the paper's
// admission control charges every request switch the worst-case
// reposition l_seek_max; servicing requests in seek order replaces that
// with an average reposition, admitting more streams.

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "src/core/admission.h"
#include "src/media/sources.h"

namespace vafs {
namespace {

std::vector<RequestSpec> UvcRequests(int n, int64_t granularity) {
  return std::vector<RequestSpec>(static_cast<size_t>(n),
                                  RequestSpec{UvcCompressedVideo(), granularity});
}

// Average reposition for seek-ordered servicing: requests sorted by disk
// position make the inter-request hop a fraction of the full stroke.
double SeekOrderedSwitchSec(const DiskModel& model, int n) {
  const int64_t hop_cylinders = model.params().cylinders / std::max(1, n);
  return UsecToSeconds(model.SeekTimeForDistance(hop_cylinders) +
                       model.AverageRotationalLatency());
}

void PrintKofN(const DiskParameters& disk_params, const char* label) {
  PrintHeader("Figure 4", label);
  PrintOperatingPoint(disk_params);
  const DiskModel model(disk_params);
  const StorageTimings storage = StorageTimings::FromDiskModel(model);
  ContinuityModel continuity(storage, UvcDisplay());
  Result<StrandPlacement> placement =
      continuity.DerivePlacement(RetrievalArchitecture::kPipelined, UvcCompressedVideo());
  if (!placement.ok()) {
    std::printf("video infeasible on this disk\n");
    return;
  }
  // Realized scattering: nearest-fit placement lands within one rotation.
  const double realized_scattering = storage.avg_rotational_latency_sec;
  AdmissionControl admission(storage, realized_scattering);
  const int64_t n_max =
      admission.Analyze(UvcRequests(1, placement->granularity)).n_max;
  std::printf("q = %lld, l_ds_avg = %.2f ms, n_max = %lld\n",
              static_cast<long long>(placement->granularity), realized_scattering * 1e3,
              static_cast<long long>(n_max));
  std::printf("%4s %14s %18s %20s\n", "n", "k (Eq. 16)", "k transient-safe",
              "k w/ seek-ordered");
  for (int n = 1; n <= n_max; ++n) {
    Result<int64_t> steady =
        admission.SteadyStateBlocksPerRound(UvcRequests(n, placement->granularity));
    Result<int64_t> transient =
        admission.TransientSafeBlocksPerRound(UvcRequests(n, placement->granularity));
    // Seek-ordered ablation: alpha uses the n-dependent average hop.
    StorageTimings ordered = storage;
    ordered.max_access_gap_sec = SeekOrderedSwitchSec(model, n);
    AdmissionControl ordered_admission(ordered, realized_scattering);
    Result<int64_t> ordered_k =
        ordered_admission.SteadyStateBlocksPerRound(UvcRequests(n, placement->granularity));
    std::printf("%4d %14s %18s %20s\n", n,
                steady.ok() ? std::to_string(*steady).c_str() : "--",
                transient.ok() ? std::to_string(*transient).c_str() : "--",
                ordered_k.ok() ? std::to_string(*ordered_k).c_str() : "--");
  }
  // Seek-ordered ceiling: beta is unchanged, but smaller switch costs mean
  // the same n needs a much smaller k; report its ceiling too.
  StorageTimings ordered = storage;
  ordered.max_access_gap_sec = SeekOrderedSwitchSec(model, static_cast<int>(n_max));
  AdmissionControl ordered_admission(ordered, realized_scattering);
  std::printf("seek-ordered n_max = %lld (round-robin: %lld)\n",
              static_cast<long long>(
                  ordered_admission.Analyze(UvcRequests(1, placement->granularity)).n_max),
              static_cast<long long>(n_max));
}

// The general per-request formulation the paper leaves open: on a
// heterogeneous mix, uniform k (pinned to the fastest consumer's gamma)
// wastes rounds on slow streams; per-request k_i keeps them at 1.
void PrintPerRequestK() {
  PrintHeader("Eq. 11 general solution", "uniform k vs per-request k_i on mixed workloads");
  const DiskModel model(FutureDisk());
  const StorageTimings storage = StorageTimings::FromDiskModel(model);
  AdmissionControl admission(storage, storage.avg_rotational_latency_sec);

  std::printf("%34s | %10s | %s\n", "workload", "uniform k", "per-request k_i");
  struct Mix {
    const char* name;
    std::vector<RequestSpec> requests;
  };
  const RequestSpec video{UvcCompressedVideo(), 4};
  const RequestSpec audio{TelephoneAudio(), 8000};  // 1 s audio blocks
  std::vector<Mix> mixes;
  mixes.push_back({"4 video", std::vector<RequestSpec>(4, video)});
  {
    std::vector<RequestSpec> requests(4, video);
    requests.insert(requests.end(), 4, audio);
    mixes.push_back({"4 video + 4 audio", requests});
  }
  {
    std::vector<RequestSpec> requests(2, video);
    requests.insert(requests.end(), 12, audio);
    mixes.push_back({"2 video + 12 audio", requests});
  }
  for (const Mix& mix : mixes) {
    Result<int64_t> uniform = admission.SteadyStateBlocksPerRound(mix.requests);
    Result<std::vector<int64_t>> per_request =
        admission.PerRequestBlocksPerRound(mix.requests);
    std::string per_text = "rejected";
    if (per_request.ok()) {
      per_text.clear();
      int64_t video_k = 0;
      int64_t audio_k = 0;
      for (size_t i = 0; i < mix.requests.size(); ++i) {
        if (mix.requests[i].profile.medium == Medium::kVideo) {
          video_k = std::max(video_k, (*per_request)[i]);
        } else {
          audio_k = std::max(audio_k, (*per_request)[i]);
        }
      }
      per_text = "video " + std::to_string(video_k);
      if (audio_k > 0) {
        per_text += ", audio " + std::to_string(audio_k);
      }
    }
    std::printf("%34s | %10s | %s\n", mix.name,
                uniform.ok() ? std::to_string(*uniform).c_str() : "rejected",
                per_text.c_str());
  }
  std::printf("(uniform k charges every stream the fastest consumer's gamma; the\n"
              " general assignment keeps 1 s audio blocks at k = 1)\n");
}

// A deterministic simulated workload behind the analytic tables: several
// UVC streams admitted together and played to completion on the future
// disk, with the full telemetry pipeline attached. Prints the per-stream
// continuity-SLO verdicts and drops the machine-readable artifacts
// (Perfetto timeline, Prometheus exposition, SLO report) next to the
// printed table. Fault-free by construction, so every admitted stream must
// report 100% of accounted rounds inside its Eq. 11 budget — CI's
// bench-slo job fails the build if that regresses.
void RunSimulatedAdmission() {
  PrintHeader("simulated admission", "round telemetry for concurrently admitted streams");
  const int streams = 3;
  const double seconds = 12.0;
  FileSystemConfig config = TestbedConfig();
  config.disk = FutureDisk();
  config.retain_data = false;
  config.telemetry.enabled = true;
  config.telemetry.trace_capacity = 1 << 16;
  MultimediaFileSystem fs(config);

  std::vector<RopeId> ropes;
  for (int s = 0; s < streams; ++s) {
    VideoSource source(UvcCompressedVideo(), static_cast<uint64_t>(s) + 1);
    Result<MultimediaFileSystem::RecordResult> recorded =
        fs.Record("bench", &source, nullptr, seconds);
    if (!recorded.ok()) {
      std::printf("RECORD failed: %s\n", recorded.status().ToString().c_str());
      return;
    }
    ropes.push_back(recorded->rope);
  }
  int admitted = 0;
  for (RopeId rope : ropes) {
    if (fs.Play("bench", rope, Medium::kVideo, TimeInterval{0.0, seconds}).ok()) {
      ++admitted;
    }
  }
  fs.RunUntilIdle();

  const obs::SloReport report = fs.SloSnapshot();
  std::printf("%d/%d streams admitted, %lld rounds\n", admitted, streams,
              static_cast<long long>(report.rounds_total));
  std::printf("%4s %8s %8s %9s %10s %8s %8s\n", "req", "rounds", "within%", "slack p50",
              "startup ms", "degr%", "verdict");
  for (const obs::StreamSlo& slo : report.streams) {
    std::printf("%4llu %8lld %7.2f%% %8.1f%% %10.1f %7.1f%% %8s\n",
                static_cast<unsigned long long>(slo.request),
                static_cast<long long>(slo.rounds_accounted),
                slo.WithinBudgetFraction() * 100.0, slo.slack_pct.Quantile(0.50),
                UsecToSeconds(slo.startup_latency < 0 ? 0 : slo.startup_latency) * 1e3,
                slo.DegradedRatio() * 100.0,
                slo.ContinuityMet(report.options) ? "ok" : "BREACH");
  }

  WriteMetricsJson(*fs.metrics(), "admission");
  WriteSloJson(report, "admission");
  WriteBenchArtifact(obs::PerfettoExporter(&fs.trace_log()->events()), "admission");
  WriteBenchArtifact(obs::PrometheusExporter(fs.metrics()), "admission");
  WriteFlightDump(*fs.flight_recorder(), "admission");
}

void BM_AdmissionAnalyze(benchmark::State& state) {
  const StorageTimings storage = StorageTimings::FromDiskModel(DiskModel(TestbedDisk()));
  AdmissionControl admission(storage, storage.avg_rotational_latency_sec);
  const auto requests = UvcRequests(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(admission.Analyze(requests).n_max);
    benchmark::DoNotOptimize(admission.SteadyStateBlocksPerRound(requests).ok());
  }
}
BENCHMARK(BM_AdmissionAnalyze)->Arg(2)->Arg(8)->Arg(32);

void BM_PlanAdmission(benchmark::State& state) {
  const StorageTimings storage = StorageTimings::FromDiskModel(DiskModel(FutureDisk()));
  AdmissionControl admission(storage, storage.avg_rotational_latency_sec);
  const auto existing = UvcRequests(4, 4);
  const RequestSpec candidate{UvcCompressedVideo(), 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(admission.PlanAdmission(existing, candidate, 1).ok());
  }
}
BENCHMARK(BM_PlanAdmission);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintKofN(vafs::TestbedDisk(), "k vs n on the testbed disk");
  vafs::PrintKofN(vafs::FutureDisk(), "k vs n on the future disk");
  vafs::PrintPerRequestK();
  vafs::RunSimulatedAdmission();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
