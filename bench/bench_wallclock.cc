// Wall-clock execution engine: rounds/sec at 1/2/4/8 workers over an
// 8-member array, with determinism receipts.
//
// The same planned-round workload (8 streams, one strand each, spread
// across the array's address space, payload checksumming ON so every
// member task carries real CPU) runs once per worker count. For each run
// the bench reports wall-clock rounds/sec plus four digests of the
// simulated-time results — trace stream, SLO report, payload CRCs and the
// final completion time. The engine's contract is that every digest is
// identical across worker counts; tools/check_wallclock.py gates on that
// (hard) and on multi-worker throughput >= single-worker (relaxed to
// advisory when the runner has one hardware thread, where no speedup is
// physically possible).
//
// CI gates on BENCH_wallclock_metrics.json via tools/check_wallclock.py.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_support.h"
#include "src/disk/disk_array.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/util/worker_pool.h"

namespace vafs {
namespace {

constexpr int kMembers = 8;
constexpr int kStreams = 8;
constexpr double kStreamSeconds = 20.0;
constexpr int kWorkerCounts[] = {1, 2, 4, 8};

// Seek-dominated member geometry (as in bench_roundplan): waves carry
// enough mechanical time that per-member tasks are worth parallelizing.
DiskParameters WallclockDisk() {
  DiskParameters params;
  params.cylinders = 5000;
  params.surfaces = 16;
  params.sectors_per_track = 256;
  params.rpm = 15000.0;
  params.min_seek_ms = 5.0;
  params.max_seek_ms = 50.0;
  return params;
}

// Folds every trace event summary into one order-sensitive digest without
// retaining the log (FNV-1a over the rendered bytes).
class TraceDigest : public obs::TraceSink {
 public:
  void OnEvent(const obs::TraceEvent& event) override {
    const std::string line = obs::TraceEventSummary(event);
    for (const char c : line) {
      digest_ = (digest_ ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
    }
    ++events_;
  }
  uint64_t digest() const { return digest_; }
  int64_t events() const { return events_; }

 private:
  uint64_t digest_ = 14695981039346656037ULL;
  int64_t events_ = 0;
};

uint64_t FnvOf(const std::string& text) {
  uint64_t digest = 14695981039346656037ULL;
  for (const char c : text) {
    digest = (digest ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return digest;
}

struct WallclockOutcome {
  int workers = 0;
  double wall_sec = 0.0;
  int64_t rounds = 0;
  double rounds_per_sec = 0.0;
  int admitted = 0;
  uint64_t trace_digest = 0;
  int64_t trace_events = 0;
  uint64_t slo_digest = 0;
  uint64_t payload_digest = 0;
  SimTime completion = 0;
};

// One full workload on `workers` wall-clock workers. Everything is built
// fresh (no state leaks between worker counts); only RunUntilIdle is
// timed.
WallclockOutcome RunWorkload(int workers) {
  const MediaProfile video = UvcCompressedVideo();
  Disk disk(WallclockDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  const StorageTimings storage = StorageTimings::FromDiskModel(disk.model());
  ContinuityModel model(storage, UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);

  const int64_t blocks_per_stream =
      static_cast<int64_t>(kStreamSeconds * video.units_per_sec) / placement.granularity;
  const std::vector<uint8_t> payload(
      static_cast<size_t>(placement.granularity * video.bits_per_unit / 8), 0x5A);
  std::vector<std::vector<PrimaryEntry>> strands;
  for (int s = 0; s < kStreams; ++s) {
    Result<std::unique_ptr<StrandWriter>> writer = store.CreateStrand(video, placement);
    (*writer)->SetAllocationHint(s * (disk.total_sectors() / kStreams));
    for (int64_t b = 0; b < blocks_per_stream; ++b) {
      (void)(*writer)->AppendBlock(payload);
    }
    const StrandId id = *(*writer)->Finish(blocks_per_stream * placement.granularity);
    const Strand* strand = *store.Get(id);
    std::vector<PrimaryEntry> blocks;
    for (int64_t b = 0; b < strand->block_count(); ++b) {
      blocks.push_back(*strand->index().Lookup(b));
    }
    strands.push_back(std::move(blocks));
  }

  // Members retain data so the payload CRC reads real bytes back.
  DiskArray array(WallclockDisk(), kMembers);
  WorkerPool pool(workers);

  Simulator sim;
  TraceDigest trace;
  obs::SloTracker slo;
  obs::TeeSink tee;
  tee.Add(&trace);
  tee.Add(&slo);
  SchedulerOptions options;
  options.service_order = ServiceOrder::kPlanned;
  options.disk_array = &array;
  options.worker_pool = &pool;
  options.verify_payloads = true;
  options.trace = &tee;
  ServiceScheduler scheduler(&store, &sim, AdmissionControl(storage, store.AverageScatteringSec()),
                             options);

  WallclockOutcome outcome;
  outcome.workers = workers;
  for (int s = 0; s < kStreams; ++s) {
    PlaybackRequest request;
    request.blocks = strands[static_cast<size_t>(s)];
    request.block_duration =
        SecondsToUsec(static_cast<double>(placement.granularity) / video.units_per_sec);
    request.spec = RequestSpec{video, placement.granularity};
    if (scheduler.SubmitPlayback(std::move(request)).ok()) {
      ++outcome.admitted;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  scheduler.RunUntilIdle();
  const auto stop = std::chrono::steady_clock::now();

  outcome.wall_sec = std::chrono::duration<double>(stop - start).count();
  outcome.rounds = scheduler.rounds_executed();
  outcome.rounds_per_sec =
      outcome.wall_sec > 0.0 ? static_cast<double>(outcome.rounds) / outcome.wall_sec : 0.0;
  outcome.trace_digest = trace.digest();
  outcome.trace_events = trace.events();
  outcome.slo_digest = FnvOf(slo.Report().ToJson());
  outcome.payload_digest = scheduler.payload_digest();
  outcome.completion = sim.Now();
  return outcome;
}

void WriteWallclockJson(const std::vector<WallclockOutcome>& outcomes) {
  const char* path = "BENCH_wallclock_metrics.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(file,
               "{\n"
               "  \"wallclock\": {\n"
               "    \"hardware_concurrency\": %u,\n"
               "    \"members\": %d,\n"
               "    \"streams\": %d,\n"
               "    \"runs\": [\n",
               std::thread::hardware_concurrency(), kMembers, kStreams);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const WallclockOutcome& run = outcomes[i];
    std::fprintf(file,
                 "      {\"workers\": %d, \"wall_sec\": %.6f, \"rounds\": %lld,\n"
                 "       \"rounds_per_sec\": %.3f, \"admitted\": %d,\n"
                 "       \"trace_digest\": \"%016" PRIx64 "\", \"trace_events\": %lld,\n"
                 "       \"slo_digest\": \"%016" PRIx64 "\",\n"
                 "       \"payload_digest\": \"%016" PRIx64 "\",\n"
                 "       \"completion_usec\": %lld}%s\n",
                 run.workers, run.wall_sec, static_cast<long long>(run.rounds),
                 run.rounds_per_sec, run.admitted, run.trace_digest,
                 static_cast<long long>(run.trace_events), run.slo_digest, run.payload_digest,
                 static_cast<long long>(run.completion),
                 i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(file,
               "    ]\n"
               "  }\n"
               "}\n");
  std::fclose(file);
  std::printf("metrics: %s\n", path);
}

void PrintWallclockTables() {
  PrintHeader("wall-clock engine", "parallel member waves, identical simulated results");
  PrintOperatingPoint(WallclockDisk());
  std::printf("host threads: %u, array members: %d, streams: %d\n",
              std::thread::hardware_concurrency(), kMembers, kStreams);

  std::vector<WallclockOutcome> outcomes;
  for (const int workers : kWorkerCounts) {
    outcomes.push_back(RunWorkload(workers));
  }

  std::printf("%8s | %9s | %7s | %11s | %16s | %16s\n", "workers", "wall (s)", "rounds",
              "rounds/sec", "trace digest", "payload digest");
  for (const WallclockOutcome& run : outcomes) {
    std::printf("%8d | %9.3f | %7" PRId64 " | %11.1f | %016" PRIx64 " | %016" PRIx64 "\n",
                run.workers, run.wall_sec, run.rounds, run.rounds_per_sec, run.trace_digest,
                run.payload_digest);
  }

  bool identical = true;
  for (const WallclockOutcome& run : outcomes) {
    identical = identical && run.trace_digest == outcomes[0].trace_digest &&
                run.slo_digest == outcomes[0].slo_digest &&
                run.payload_digest == outcomes[0].payload_digest &&
                run.completion == outcomes[0].completion && run.rounds == outcomes[0].rounds;
  }
  std::printf("simulated-time results identical across worker counts: %s\n",
              identical ? "yes" : "NO -- DETERMINISM BROKEN");
  std::printf("(wall-clock speed is allowed to change; simulated time is not)\n");

  WriteWallclockJson(outcomes);
}

void BM_WallclockRound(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWorkload(workers).rounds);
  }
}
BENCHMARK(BM_WallclockRound)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintWallclockTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
