// Stream merging: admitted viewers per disk under a Zipf/Poisson flash
// crowd, Eq. 17 alone vs cache-aware admission vs the session layer.
//
// One seeded workload (src/sim/workload.h) — Zipf popularity over a small
// library, Poisson arrivals, a flash crowd pointed at one title — replays
// against three admission stacks on the same future disk:
//
//   eq17      the paper's admission math: every viewer is a full stream;
//   cache     PR 5's planned rounds + shared cache + cache-aware admission
//             (trailing viewers of a hot title ride resident extents);
//   sessions  the stream-merging layer on top: arrivals inside the batch
//             window ride the leader outright, later ones catch up on a
//             short patch stream and merge.
//
// The headline metric is viewers fully served at the continuity SLO
// (99.9 % of rounds inside the Eq. 11 budget, zero glitches): sessions
// must beat both the Eq. 17 ceiling n_max and the cache-only stack, with
// the strict ContinuityAuditor replaying every trace clean and the whole
// run bit-identical across repeats (same seed, same admissions).
//
// CI gates on BENCH_merge_metrics.json via tools/check_merge.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_support.h"
#include "src/obs/auditor.h"
#include "src/sim/workload.h"

namespace vafs {
namespace {

constexpr double kTitleSec = 10.0;
constexpr double kTraceSec = 12.0;
constexpr double kFlashStartSec = 1.0;
constexpr double kFlashLenSec = 3.0;
constexpr double kSloWithinBudget = 0.999;
constexpr int kTitles = 3;

enum class Policy { kEq17, kCache, kSessions };

struct PolicyOutcome {
  const char* name = "";
  int64_t n_max = 0;
  int arrivals = 0;
  int admitted = 0;   // viewers that got a ticket / request
  int rejected = 0;
  int served = 0;     // admitted viewers whose full playback completed
  int cache_admitted = 0;
  int64_t breaches = 0;  // streams below the within-budget SLO or glitching
  double within_budget_min = 1.0;
  bool audit_clean = false;
  SessionCensus census;     // sessions mode only
  std::string signature;    // per-arrival decisions, for determinism checks
};

// The Eq. 17 ceiling for one viewer spec on the bench disk, computed the
// same way every policy's scheduler will.
int64_t ComputeNmax() {
  FileSystemConfig config = TestbedConfig();
  config.disk = FutureDisk();
  config.retain_data = false;
  MultimediaFileSystem fs(config);
  const StrandPlacement placement = *fs.PlacementFor(UvcCompressedVideo());
  return fs.admission()
      .Analyze({RequestSpec{UvcCompressedVideo(), placement.granularity}})
      .n_max;
}

// One workload for every policy: base Poisson arrivals sized well under
// the ceiling, a flash crowd that alone demands ~2x n_max of one title.
sim::WorkloadOptions MergeWorkload(int64_t n_max) {
  sim::WorkloadOptions options;
  options.titles = kTitles;
  options.zipf_exponent = 1.0;
  options.duration_sec = kTraceSec;
  options.arrival_rate_per_sec = std::max(0.5, 0.3 * static_cast<double>(n_max) / kTitleSec);
  options.flash_start_sec = kFlashStartSec;
  options.flash_duration_sec = kFlashLenSec;
  const double flash_rate = std::max(2.0, 2.0 * static_cast<double>(n_max) / kFlashLenSec);
  options.flash_rate_multiplier = flash_rate / options.arrival_rate_per_sec;
  options.flash_title_bias = 0.8;
  options.flash_title = 0;
  options.seed = 424242;
  return options;
}

PolicyOutcome RunPolicy(Policy policy, const std::vector<sim::WorkloadArrival>& arrivals,
                        bool write_slo = false) {
  obs::ContinuityAuditor auditor{obs::AuditorOptions{.round_time_slack = 0.05}};
  FileSystemConfig config = TestbedConfig();
  config.disk = FutureDisk();
  config.retain_data = false;
  config.scheduler.service_order = ServiceOrder::kPlanned;
  config.scheduler.trace = &auditor;
  config.telemetry.enabled = true;
  config.telemetry.trace_capacity = 1 << 14;
  if (policy != Policy::kEq17) {
    // Deliberately smaller than one title's footprint: trailing viewers
    // hold an interval of the leader's wake, not the whole library.
    config.block_cache.capacity_bytes = 4 << 20;
    config.scheduler.cache_aware_admission = true;
  }
  if (policy == Policy::kSessions) {
    config.sessions.enabled = true;
    config.sessions.batch_window_sec = 2.0;
    config.sessions.max_patch_blocks = 1 << 20;  // any gap the leader still covers
    config.sessions.runway_margin_blocks = 0;    // uncapped rider runway
  }
  MultimediaFileSystem fs(config);

  PolicyOutcome outcome;
  std::vector<RopeId> ropes;
  for (int t = 0; t < kTitles; ++t) {
    VideoSource source(UvcCompressedVideo(), 1000 + static_cast<uint64_t>(t));
    Result<MultimediaFileSystem::RecordResult> recorded =
        fs.Record("bench", &source, nullptr, kTitleSec);
    if (!recorded.ok()) {
      std::printf("RECORD failed: %s\n", recorded.status().ToString().c_str());
      return outcome;
    }
    ropes.push_back(recorded->rope);
  }

  outcome.arrivals = static_cast<int>(arrivals.size());
  std::vector<SessionTicket> tickets;
  std::vector<RequestId> solo_ids;
  const SimTime base = fs.simulator().Now();
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const sim::WorkloadArrival& arrival = arrivals[i];
    const RopeId rope = ropes[static_cast<size_t>(arrival.title) % ropes.size()];
    fs.simulator().ScheduleAt(
        base + SecondsToUsec(arrival.time_sec),
        [&fs, &outcome, &tickets, &solo_ids, policy, rope, i]() {
          const TimeInterval interval{0.0, kTitleSec};
          if (policy == Policy::kSessions) {
            Result<SessionTicket> ticket = fs.OpenSession("crowd", rope, Medium::kVideo, interval);
            if (ticket.ok()) {
              ++outcome.admitted;
              tickets.push_back(*ticket);
              outcome.signature += std::to_string(i) + ":mode" +
                                   std::to_string(static_cast<int>(ticket->mode)) + ":gap" +
                                   std::to_string(ticket->gap_blocks) + ";";
            } else {
              ++outcome.rejected;
              outcome.signature += std::to_string(i) + ":rej;";
            }
          } else {
            Result<RequestId> id = fs.Play("crowd", rope, Medium::kVideo, interval);
            if (id.ok()) {
              ++outcome.admitted;
              solo_ids.push_back(*id);
            } else {
              ++outcome.rejected;
            }
          }
        });
  }
  fs.RunUntilIdle();

  if (policy == Policy::kSessions) {
    outcome.census = fs.session_manager()->census();
    for (const SessionTicket& ticket : tickets) {
      if (ticket.mode == SessionTicket::Mode::kPatched) {
        continue;  // counted via census.merged below
      }
      Result<RequestStats> stats = fs.Stats(ticket.request);
      if (stats.ok() && stats->completed) {
        ++outcome.served;
      }
      if (stats.ok() && stats->cache_admitted) {
        ++outcome.cache_admitted;
      }
    }
    outcome.served += static_cast<int>(outcome.census.merged);
    outcome.signature += "served" + std::to_string(outcome.served);
  } else {
    for (RequestId id : solo_ids) {
      Result<RequestStats> stats = fs.Stats(id);
      if (stats.ok() && stats->completed) {
        ++outcome.served;
      }
      if (stats.ok() && stats->cache_admitted) {
        ++outcome.cache_admitted;
      }
    }
  }

  const obs::SloReport report = fs.SloSnapshot();
  for (const obs::StreamSlo& stream : report.streams) {
    outcome.within_budget_min = std::min(outcome.within_budget_min, stream.WithinBudgetFraction());
    if (!stream.ContinuityMet(report.options) ||
        stream.WithinBudgetFraction() < kSloWithinBudget) {
      ++outcome.breaches;
    }
  }
  outcome.audit_clean = auditor.Clean();
  if (!outcome.audit_clean) {
    std::printf("AUDIT (%s):\n%s\n", outcome.name, auditor.Report().c_str());
  }
  if (write_slo) {
    WriteSloJson(report, "merge");
  }
  return outcome;
}

void WriteMergeJson(int64_t n_max, const PolicyOutcome& eq17, const PolicyOutcome& cache,
                    const PolicyOutcome& sessions, bool deterministic) {
  const char* path = "BENCH_merge_metrics.json";
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const auto policy_json = [file](const char* name, const PolicyOutcome& mode, bool last) {
    std::fprintf(file,
                 "    \"%s\": {\n"
                 "      \"arrivals\": %d,\n"
                 "      \"admitted\": %d,\n"
                 "      \"rejected\": %d,\n"
                 "      \"served\": %d,\n"
                 "      \"cache_admitted\": %d,\n"
                 "      \"breaches\": %lld,\n"
                 "      \"within_budget_min\": %.6f,\n"
                 "      \"audit_clean\": %s\n"
                 "    }%s\n",
                 name, mode.arrivals, mode.admitted, mode.rejected, mode.served,
                 mode.cache_admitted, static_cast<long long>(mode.breaches),
                 mode.within_budget_min, mode.audit_clean ? "true" : "false", last ? "" : ",");
  };
  std::fprintf(file,
               "{\n"
               "  \"merge\": {\n"
               "    \"n_max\": %lld,\n"
               "    \"deterministic\": %s,\n",
               static_cast<long long>(n_max), deterministic ? "true" : "false");
  policy_json("eq17", eq17, false);
  policy_json("cache", cache, false);
  policy_json("sessions", sessions, false);
  std::fprintf(file,
               "    \"census\": {\n"
               "      \"viewers\": %lld,\n"
               "      \"leaders\": %lld,\n"
               "      \"batched\": %lld,\n"
               "      \"patched\": %lld,\n"
               "      \"merged\": %lld,\n"
               "      \"degraded\": %lld\n"
               "    }\n"
               "  }\n"
               "}\n",
               static_cast<long long>(sessions.census.viewers),
               static_cast<long long>(sessions.census.leaders),
               static_cast<long long>(sessions.census.batched),
               static_cast<long long>(sessions.census.patched),
               static_cast<long long>(sessions.census.merged),
               static_cast<long long>(sessions.census.degraded));
  std::fclose(file);
  std::printf("metrics: %s\n", path);
}

void PrintMergeTables() {
  PrintHeader("stream merging", "flash crowd: Eq. 17 vs cache admission vs sessions");
  PrintOperatingPoint(FutureDisk());
  const int64_t n_max = ComputeNmax();
  const sim::WorkloadOptions workload = MergeWorkload(n_max);
  const std::vector<sim::WorkloadArrival> arrivals = sim::WorkloadEngine(workload).Generate();
  int flash_arrivals = 0;
  for (const sim::WorkloadArrival& arrival : arrivals) {
    flash_arrivals += arrival.flash ? 1 : 0;
  }
  std::printf("n_max = %lld; %zu arrivals over %.0f s (%d in a %.0f s flash, bias %.1f "
              "to title %lld), seed %llu\n",
              static_cast<long long>(n_max), arrivals.size(), workload.duration_sec,
              flash_arrivals, workload.flash_duration_sec, workload.flash_title_bias,
              static_cast<long long>(workload.flash_title),
              static_cast<unsigned long long>(workload.seed));

  PolicyOutcome eq17 = RunPolicy(Policy::kEq17, arrivals);
  eq17.name = "eq17";
  PolicyOutcome cache = RunPolicy(Policy::kCache, arrivals);
  cache.name = "cache";
  PolicyOutcome sessions = RunPolicy(Policy::kSessions, arrivals, /*write_slo=*/true);
  sessions.name = "sessions";
  const PolicyOutcome repeat = RunPolicy(Policy::kSessions, arrivals);
  const bool deterministic = sessions.signature == repeat.signature;

  std::printf("%10s | %8s | %8s | %6s | %8s | %8s | %7s | %5s\n", "policy", "admitted",
              "rejected", "served", "breaches", "within%", "cacheadm", "audit");
  const auto row = [](const char* name, const PolicyOutcome& mode) {
    std::printf("%10s | %8d | %8d | %6d | %8" PRId64 " | %7.2f%% | %7d | %5s\n", name,
                mode.admitted, mode.rejected, mode.served, mode.breaches,
                mode.within_budget_min * 100.0, mode.cache_admitted,
                mode.audit_clean ? "ok" : "FAIL");
  };
  row("eq17", eq17);
  row("cache", cache);
  row("sessions", sessions);
  std::printf("sessions census: %lld viewers = %lld leaders + %lld batched + %lld patched "
              "(%lld merged, %lld degraded); deterministic replay: %s\n",
              static_cast<long long>(sessions.census.viewers),
              static_cast<long long>(sessions.census.leaders),
              static_cast<long long>(sessions.census.batched),
              static_cast<long long>(sessions.census.patched),
              static_cast<long long>(sessions.census.merged),
              static_cast<long long>(sessions.census.degraded), deterministic ? "yes" : "NO");
  std::printf("(batched riders consume the leader's deliveries for free; patches pay a\n"
              " short catch-up read, then the merged pair costs one stream, not two)\n");

  WriteMergeJson(n_max, eq17, cache, sessions, deterministic);
}

void BM_SessionFlashCrowd(benchmark::State& state) {
  const int64_t n_max = ComputeNmax();
  const std::vector<sim::WorkloadArrival> arrivals =
      sim::WorkloadEngine(MergeWorkload(n_max)).Generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPolicy(Policy::kSessions, arrivals).served);
  }
}
BENCHMARK(BM_SessionFlashCrowd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintMergeTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
