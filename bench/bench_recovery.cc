// Crash-recovery cost: what a checkpoint writes, what recovery pays on
// each of its three paths (clean root load, root load + journal replay,
// fsck scavenge), and how long each takes. The paper's prototype had no
// durable catalog at all; this bench quantifies the price of adding one
// with crash consistency (A/B roots + intent journal, src/vafs/persistence.h).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <memory>
#include <vector>

#include "bench/bench_support.h"
#include "src/media/sources.h"
#include "src/util/result.h"

namespace vafs {
namespace {

// Every scenario folds its trace into one registry, dumped as JSON at exit
// (root flips, journal appends/replays, fsck findings, power cuts).
obs::MetricsRegistry g_metrics;
obs::MetricsSink g_metrics_sink(&g_metrics);

int64_t CounterValue(const char* name) {
  const obs::Counter* counter = g_metrics.FindCounter(name);
  return counter == nullptr ? 0 : counter->value();
}

// A populated file system: `ropes` video ropes of `seconds` each plus one
// text file, all trace-connected to the shared registry.
std::unique_ptr<MultimediaFileSystem> BuildPopulated(int ropes, double seconds) {
  auto fs = std::make_unique<MultimediaFileSystem>(TestbedConfig());
  fs->disk().set_trace_sink(&g_metrics_sink);
  for (int i = 0; i < ropes; ++i) {
    VideoSource video(UvcCompressedVideo(), static_cast<uint64_t>(i) + 1);
    (void)fs->Record("bench", &video, nullptr, seconds);
  }
  (void)fs->text_files().Write("manifest.txt", std::vector<uint8_t>(900, 7));
  return fs;
}

// Journaled mutations on top of a committed checkpoint.
void MutateAfterCheckpoint(MultimediaFileSystem* fs) {
  VideoSource video(UvcCompressedVideo(), 99);
  (void)fs->Record("bench", &video, nullptr, 0.5);
  (void)fs->text_files().Write("notes.txt", std::vector<uint8_t>(700, 3));
  (void)fs->text_files().Remove("manifest.txt");
}

void CorruptBothRoots(MultimediaFileSystem* fs) {
  const int64_t total = fs->disk().total_sectors();
  std::vector<uint8_t> junk(static_cast<size_t>(fs->disk().bytes_per_sector()), 0xA5);
  const char magic[8] = {'V', 'A', 'F', 'S', '0', '0', '0', '2'};
  std::copy(magic, magic + 8, junk.begin());
  (void)fs->disk().Write(total - 2, 1, junk);
  (void)fs->disk().Write(total - 1, 1, junk);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Row {
  const char* name;
  double recover_ms = 0.0;
  int64_t strands = 0;
  int64_t ropes = 0;
  int64_t replayed = 0;
  int64_t findings = 0;
};

void PrintRow(const Row& row) {
  std::printf("%-22s | %10.2f %8" PRId64 " %6" PRId64 " %9" PRId64 " %9" PRId64 "\n", row.name,
              row.recover_ms, row.strands, row.ropes, row.replayed, row.findings);
}

void PrintRecoveryTable() {
  PrintHeader("crash recovery", "checkpoint cost and the three recovery paths");
  PrintOperatingPoint(TestbedDisk());
  const int kRopes = 4;
  const double kSeconds = 2.0;

  // Checkpoint cost for the shared workload.
  {
    auto fs = BuildPopulated(kRopes, kSeconds);
    const int64_t before = fs->disk().fault_injector().sectors_written();
    const auto start = std::chrono::steady_clock::now();
    (void)fs->Checkpoint();
    const double ms = MillisSince(start);
    const int64_t sectors = fs->disk().fault_injector().sectors_written() - before;
    std::printf("\ncheckpoint of %d ropes x %.0f s video: %" PRId64
                " sectors (%.1f KB) in %.2f ms\n",
                kRopes, kSeconds, sectors,
                static_cast<double>(sectors * fs->disk().bytes_per_sector()) / 1024.0, ms);
  }

  std::printf("\n%-22s | %10s %8s %6s %9s %9s\n", "recovery path", "ms", "strands", "ropes",
              "replayed", "findings");

  // Path 1: clean load — the newest root's catalog, nothing to replay.
  {
    auto fs = BuildPopulated(kRopes, kSeconds);
    (void)fs->Checkpoint();
    const int64_t replays_before = CounterValue("persistence.journal_replays");
    const auto start = std::chrono::steady_clock::now();
    (void)fs->Recover();
    Row row{"clean load"};
    row.recover_ms = MillisSince(start);
    row.strands = fs->storage_manager().strand_count();
    row.ropes = fs->rope_server().rope_count();
    row.replayed = CounterValue("persistence.journal_replays") - replays_before;
    PrintRow(row);
  }

  // Path 2: load + journal replay of uncheckpointed mutations.
  {
    auto fs = BuildPopulated(kRopes, kSeconds);
    (void)fs->Checkpoint();
    MutateAfterCheckpoint(fs.get());
    const int64_t replays_before = CounterValue("persistence.journal_replays");
    const auto start = std::chrono::steady_clock::now();
    (void)fs->Recover();
    Row row{"load + journal replay"};
    row.recover_ms = MillisSince(start);
    row.strands = fs->storage_manager().strand_count();
    row.ropes = fs->rope_server().rope_count();
    row.replayed = CounterValue("persistence.journal_replays") - replays_before;
    PrintRow(row);
  }

  // Path 2b: power cut mid-checkpoint — the previous generation plus its
  // journal carries the full state across the crash.
  {
    auto fs = BuildPopulated(kRopes, kSeconds);
    (void)fs->Checkpoint();
    MutateAfterCheckpoint(fs.get());
    fs->disk().fault_injector().ArmPowerCut(1, /*torn=*/true);
    (void)fs->Checkpoint();  // dies mid-catalog-write
    const int64_t replays_before = CounterValue("persistence.journal_replays");
    const auto start = std::chrono::steady_clock::now();
    (void)fs->Recover();
    Row row{"crash mid-checkpoint"};
    row.recover_ms = MillisSince(start);
    row.strands = fs->storage_manager().strand_count();
    row.ropes = fs->rope_server().rope_count();
    row.replayed = CounterValue("persistence.journal_replays") - replays_before;
    PrintRow(row);
  }

  // Path 3: fsck scavenge — both roots gone, strands rebuilt from their
  // Header Block signatures; ropes die with the catalog.
  {
    auto fs = BuildPopulated(kRopes, kSeconds);
    (void)fs->Checkpoint();
    (void)fs->Checkpoint();  // populate both root slots
    CorruptBothRoots(fs.get());
    const int64_t findings_before = CounterValue("fsck.findings");
    const auto start = std::chrono::steady_clock::now();
    (void)fs->Recover();
    Row row{"fsck scavenge"};
    row.recover_ms = MillisSince(start);
    row.strands = fs->storage_manager().strand_count();
    row.ropes = fs->rope_server().rope_count();
    row.findings = CounterValue("fsck.findings") - findings_before;
    PrintRow(row);
  }

  std::printf("(replayed = intent-journal records applied on top of the loaded\n"
              " catalog; findings = fsck findings, here the corrupt roots plus one\n"
              " orphan-strand finding per scavenged strand)\n");
}

void BM_Checkpoint(benchmark::State& state) {
  auto fs = BuildPopulated(2, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs->Checkpoint().ok());
  }
}
BENCHMARK(BM_Checkpoint)->Unit(benchmark::kMillisecond);

void BM_RecoverWithJournalReplay(benchmark::State& state) {
  auto fs = BuildPopulated(2, 1.0);
  (void)fs->Checkpoint();
  MutateAfterCheckpoint(fs.get());
  for (auto _ : state) {
    // Replay does not consume the journal, so every iteration replays the
    // same generation-1 records.
    benchmark::DoNotOptimize(fs->Recover().ok());
  }
}
BENCHMARK(BM_RecoverWithJournalReplay)->Unit(benchmark::kMillisecond);

void BM_FsckScavenge(benchmark::State& state) {
  auto fs = BuildPopulated(2, 1.0);
  (void)fs->Checkpoint();
  (void)fs->Checkpoint();
  CorruptBothRoots(fs.get());
  for (auto _ : state) {
    Result<FsckReport> report = fs->RunFsck();
    benchmark::DoNotOptimize(report.ok() && report->used_scavenger);
  }
}
BENCHMARK(BM_FsckScavenge)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintRecoveryTable();
  vafs::WriteMetricsJson(vafs::g_metrics, "recovery");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
