// Shared configuration for the paper-reproduction benches.
//
// Each bench binary regenerates one table/figure/claim from the paper
// (see DESIGN.md section 4): it prints the paper-style rows computed from
// our implementation, and registers google-benchmark microbenchmarks for
// the underlying hot operations.

#ifndef VAFS_BENCH_BENCH_SUPPORT_H_
#define VAFS_BENCH_BENCH_SUPPORT_H_

#include <cstdio>
#include <string>

#include "src/core/continuity.h"
#include "src/core/profiles.h"
#include "src/disk/disk_model.h"
#include "src/media/media.h"
#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/vafs/file_system.h"

namespace vafs {

// The paper's testbed-era disk (PC-AT class, late 1980s): ~100 MB,
// 3600 RPM, 4-35 ms seeks, ~8.6 Mbit/s media rate.
inline DiskParameters TestbedDisk() { return DiskParameters(); }

// A projected "future fast disk" (the paper's Section 3 discussion):
// higher RPM and density, ~10 ms worst-case positioning.
inline DiskParameters FutureDisk() {
  DiskParameters params;
  params.cylinders = 2000;
  params.surfaces = 16;
  params.sectors_per_track = 128;
  params.bytes_per_sector = 512;
  params.rpm = 7200.0;
  params.min_seek_ms = 1.0;
  params.max_seek_ms = 8.0;
  return params;
}

// Display devices for the testbed media.
inline DeviceProfile UvcDisplay() {
  // The UVC board decodes in real time with a little headroom; 8 frame
  // buffers on the card.
  return DeviceProfile{UvcCompressedVideo().BitRate() * 3.0, 8};
}

inline DeviceProfile AudioDisplay() {
  return DeviceProfile{TelephoneAudio().BitRate() * 16.0, 16'384};
}

inline FileSystemConfig TestbedConfig() {
  FileSystemConfig config;
  config.disk = TestbedDisk();
  config.video_device = UvcDisplay();
  config.audio_device = AudioDisplay();
  config.architecture = RetrievalArchitecture::kPipelined;
  return config;
}

inline void PrintHeader(const char* artifact, const char* title) {
  std::printf("\n=== %s: %s ===\n", artifact, title);
}

inline void PrintOperatingPoint(const DiskParameters& disk) {
  const DiskModel model(disk);
  const StorageTimings timings = StorageTimings::FromDiskModel(model);
  std::printf("disk: %lld cyl x %lld surf x %lld sect (%.1f MB), %.0f rpm\n",
              static_cast<long long>(disk.cylinders), static_cast<long long>(disk.surfaces),
              static_cast<long long>(disk.sectors_per_track),
              static_cast<double>(disk.CapacityBytes()) / 1e6, disk.rpm);
  std::printf("R_dt = %.2f Mbit/s, l_seek_max = %.1f ms, avg latency = %.1f ms\n",
              timings.transfer_rate_bits_per_sec / 1e6, timings.max_access_gap_sec * 1e3,
              timings.avg_rotational_latency_sec * 1e3);
}

// Dumps the registry as BENCH_<name>_metrics.json in the working directory:
// the machine-readable twin of the bench's printed table (per-round service
// times, disk transfer distributions, admission decisions).
inline void WriteMetricsJson(const obs::MetricsRegistry& registry, const char* bench_name) {
  const std::string path = std::string("BENCH_") + bench_name + "_metrics.json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string json = registry.ToJson();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("metrics: %s\n", path.c_str());
}

// Writes one exporter artifact as BENCH_<name><extension>, logging the path
// so CI can collect it.
inline void WriteBenchArtifact(const obs::Exporter& exporter, const char* bench_name) {
  const std::string path = std::string("BENCH_") + bench_name + exporter.FileExtension();
  if (Status written = obs::WriteExport(exporter, path); !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return;
  }
  std::printf("%s: %s\n", exporter.Format(), path.c_str());
}

// Writes pre-rendered text (a critical-path JSON report, folded flame
// stacks, ...) as BENCH_<name><suffix>, logging the path for CI.
inline void WriteTextArtifact(const std::string& text, const char* bench_name, const char* suffix,
                              const char* label) {
  const std::string path = std::string("BENCH_") + bench_name + suffix;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("%s: %s\n", label, path.c_str());
}

// Writes a continuity-SLO report as BENCH_<name>_slo.json.
inline void WriteSloJson(const obs::SloReport& report, const char* bench_name) {
  const std::string path = std::string("BENCH_") + bench_name + "_slo.json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string json = report.ToJson();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("slo: %s\n", path.c_str());
}

// Writes a flight-recorder dump as BENCH_<name>_flight.txt (only when the
// recorder actually triggered; a missing file means a clean run).
inline void WriteFlightDump(const obs::FlightRecorder& flight, const char* bench_name) {
  if (flight.triggers() == 0) {
    return;
  }
  const std::string path = std::string("BENCH_") + bench_name + "_flight.txt";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string header = "trigger: " + flight.last_dump_reason() + "\n";
  std::fwrite(header.data(), 1, header.size(), file);
  const std::string dump = flight.Dump();
  std::fwrite(dump.data(), 1, dump.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("flight dump: %s\n", path.c_str());
}

}  // namespace vafs

#endif  // VAFS_BENCH_BENCH_SUPPORT_H_
