// Figures 5-6: the 3-level strand index (HB -> SB -> PB -> MB).
//
// Reports the structural size of the index (primary/secondary block
// counts, on-disk bytes) as strands grow from seconds to hours, and the
// simulated cost of a cold random lookup (3 index-block reads) vs the
// payoff: direct random access into arbitrarily large strands.

#include <benchmark/benchmark.h>

#include <cinttypes>

#include "bench/bench_support.h"
#include "src/layout/strand_index.h"
#include "src/msm/strand_store.h"
#include "src/util/prng.h"

namespace vafs {
namespace {

void PrintStructureTable() {
  PrintHeader("Figures 5-6", "index structure vs strand length (UVC video, q = 4)");
  const MediaProfile video = UvcCompressedVideo();
  const int64_t q = 4;
  const IndexFanout fanout;
  std::printf("%10s %10s %8s %8s %14s\n", "length", "blocks", "PBs", "SBs", "index bytes");
  for (double minutes : {0.5, 5.0, 30.0, 60.0, 240.0}) {
    const int64_t blocks =
        static_cast<int64_t>(minutes * 60.0 * video.units_per_sec) / q;
    StrandIndex index(fanout);
    for (int64_t b = 0; b < blocks; ++b) {
      index.Append(PrimaryEntry{b * 100, 94});
    }
    const int64_t pb_bytes = blocks * 16;
    const int64_t sb_bytes = index.primary_block_count() * 32;
    const int64_t hb_bytes = 24 + index.secondary_block_count() * 16;
    std::printf("%8.1fm %10lld %8lld %8lld %14lld\n", minutes,
                static_cast<long long>(blocks),
                static_cast<long long>(index.primary_block_count()),
                static_cast<long long>(index.secondary_block_count()),
                static_cast<long long>(pb_bytes + sb_bytes + hb_bytes));
  }
  std::printf("cold random lookup: %lld index-block reads (HB -> SB -> PB)\n",
              static_cast<long long>(StrandIndex::kColdLookupHops));
}

void PrintLookupCost() {
  PrintHeader("Figure 5", "simulated random-access cost into a 30-minute strand");
  Disk disk(FutureDisk(), DiskOptions{.retain_data = false});
  StrandStore store(&disk);
  const MediaProfile video = UvcCompressedVideo();
  ContinuityModel model(StorageTimings::FromDiskModel(disk.model()), UvcDisplay());
  const StrandPlacement placement =
      *model.DerivePlacement(RetrievalArchitecture::kPipelined, video);
  // Write a long strand (timing-only payloads).
  Result<std::unique_ptr<StrandWriter>> writer = store.CreateStrand(video, placement);
  const int64_t blocks = static_cast<int64_t>(30 * 60 * video.units_per_sec) /
                         placement.granularity;
  const std::vector<uint8_t> payload(
      static_cast<size_t>(placement.granularity * video.bits_per_unit / 8), 0);
  for (int64_t b = 0; b < blocks; ++b) {
    (void)(*writer)->AppendBlock(payload);
  }
  const StrandId id = *(*writer)->Finish(blocks * placement.granularity);

  // Random access: index lookup is in-memory once cached; the disk pays
  // one block read. A cold lookup adds kColdLookupHops index reads, which
  // we charge at one average access each.
  Prng prng(7);
  const Strand* strand = *store.Get(id);
  SimDuration data_total = 0;
  const int probes = 200;
  for (int i = 0; i < probes; ++i) {
    const int64_t block = prng.NextInRange(0, strand->block_count() - 1);
    std::vector<uint8_t> sink;
    data_total += *store.ReadBlock(id, block, &sink);
  }
  const SimDuration cold_index_cost =
      StrandIndex::kColdLookupHops *
      (disk.model().SeekTimeForDistance(disk.model().params().cylinders / 3) +
       disk.model().AverageRotationalLatency() + disk.model().TransferTime(8));
  std::printf("%lld-block strand; %d random probes\n",
              static_cast<long long>(strand->block_count()), probes);
  std::printf("avg data-block access: %.2f ms; cold 3-hop index walk: %.2f ms\n",
              UsecToSeconds(data_total / probes) * 1e3,
              UsecToSeconds(cold_index_cost) * 1e3);
}

void BM_IndexAppend(benchmark::State& state) {
  for (auto _ : state) {
    StrandIndex index;
    for (int64_t b = 0; b < state.range(0); ++b) {
      index.Append(PrimaryEntry{b, 94});
    }
    benchmark::DoNotOptimize(index.block_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexAppend)->Arg(1000)->Arg(100000);

void BM_IndexLookup(benchmark::State& state) {
  StrandIndex index;
  for (int64_t b = 0; b < 100000; ++b) {
    index.Append(PrimaryEntry{b, 94});
  }
  Prng prng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(prng.NextInRange(0, 99999)).ok());
  }
}
BENCHMARK(BM_IndexLookup);

void BM_IndexSerialize(benchmark::State& state) {
  StrandIndex index;
  for (int64_t b = 0; b < 100000; ++b) {
    index.Append(PrimaryEntry{b, 94});
  }
  for (auto _ : state) {
    for (int64_t pb = 0; pb < index.primary_block_count(); ++pb) {
      benchmark::DoNotOptimize(index.SerializePrimaryBlock(pb).size());
    }
  }
  state.SetItemsProcessed(state.iterations() * index.primary_block_count());
}
BENCHMARK(BM_IndexSerialize);

}  // namespace
}  // namespace vafs

int main(int argc, char** argv) {
  vafs::PrintStructureTable();
  vafs::PrintLookupCost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
