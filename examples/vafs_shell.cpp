// An interactive shell over the vaFS API — the closest analogue to
// mounting the file system and poking at it. Reads commands from stdin
// (or runs a scripted demo session when stdin is not a TTY and empty).
//
//   record <user> <seconds>                RECORD an A/V rope
//   play <user> <rope> <video|audio>       PLAY a whole rope
//   ls                                      list ropes
//   info <rope>                             synchronization info (Fig. 8)
//   insert <user> <base> <at> <with>        INSERT whole <with> at <at> sec
//   substring <user> <rope> <start> <len>   SUBSTRING -> new rope
//   concat <user> <a> <b>                   CONCATE -> new rope
//   delete <user> <rope> <start> <len>      DELETE a range (both media)
//   rmrope <user> <rope>                    delete the rope object
//   repair <rope>                           scattering repair (both media)
//   gc                                      collect unreferenced strands
//   write <name> <text...> / read <name>    text files in the gaps
//   checkpoint / recover                    persistence
//   df                                      disk usage
//   quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "src/media/media.h"
#include "src/media/sources.h"
#include "src/vafs/file_system.h"

namespace {

using namespace vafs;

class Shell {
 public:
  Shell() : fs_(MakeConfig()) {}

  static FileSystemConfig MakeConfig() {
    FileSystemConfig config;
    config.video_device = DeviceProfile{UvcCompressedVideo().BitRate() * 3.0, 8};
    config.audio_device = DeviceProfile{TelephoneAudio().BitRate() * 16.0, 16'384};
    return config;
  }

  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command) || command.empty() || command[0] == '#') {
      return true;
    }
    if (command == "quit" || command == "exit") {
      return false;
    }
    if (command == "record") {
      std::string user;
      double seconds = 0;
      in >> user >> seconds;
      VideoSource camera(UvcCompressedVideo(), next_seed_);
      AudioSource mic(TelephoneAudio(), SpeechProfile{}, next_seed_);
      ++next_seed_;
      Result<MultimediaFileSystem::RecordResult> result =
          fs_.Record(user, &camera, &mic, seconds);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        std::printf("rope %llu recorded (%.1f s, %lld silent audio blocks)\n",
                    static_cast<unsigned long long>(result->rope), seconds,
                    static_cast<long long>(result->audio.silence_blocks));
      }
    } else if (command == "play") {
      std::string user;
      RopeId rope = 0;
      std::string medium_name;
      in >> user >> rope >> medium_name;
      const Medium medium = medium_name == "audio" ? Medium::kAudio : Medium::kVideo;
      Result<const Rope*> rope_ptr = fs_.rope_server().Find(rope);
      if (!rope_ptr.ok()) {
        std::printf("error: %s\n", rope_ptr.status().ToString().c_str());
        return true;
      }
      Result<RequestId> request = fs_.Play(
          user, rope, medium, TimeInterval{0.0, (*rope_ptr)->TrackFor(medium).DurationSec()});
      if (!request.ok()) {
        std::printf("error: %s\n", request.status().ToString().c_str());
        return true;
      }
      fs_.RunUntilIdle();
      const RequestStats stats = *fs_.Stats(*request);
      std::printf("played %lld blocks, %lld glitches, startup %.1f ms\n",
                  static_cast<long long>(stats.blocks_done),
                  static_cast<long long>(stats.continuity_violations),
                  UsecToSeconds(stats.startup_latency) * 1e3);
    } else if (command == "ls") {
      for (const Rope* rope : fs_.rope_server().AllRopes()) {
        std::printf("rope %llu  %-10s %6.1f s  %zu video segs, %zu audio segs\n",
                    static_cast<unsigned long long>(rope->id()), rope->creator().c_str(),
                    rope->LengthSec(), rope->video().segments.size(),
                    rope->audio().segments.size());
      }
    } else if (command == "info") {
      RopeId rope = 0;
      in >> rope;
      Result<const Rope*> rope_ptr = fs_.rope_server().Find(rope);
      if (!rope_ptr.ok()) {
        std::printf("error: %s\n", rope_ptr.status().ToString().c_str());
        return true;
      }
      for (const SyncInterval& interval : (*rope_ptr)->SynchronizationInfo()) {
        std::printf("  [%6.2fs +%6.2fs] video=%llu@%lld audio=%llu@%lld\n", interval.start_sec,
                    interval.length_sec,
                    static_cast<unsigned long long>(interval.video_strand),
                    static_cast<long long>(interval.video_block),
                    static_cast<unsigned long long>(interval.audio_strand),
                    static_cast<long long>(interval.audio_block));
      }
      for (const Trigger& trigger : (*rope_ptr)->triggers()) {
        std::printf("  trigger @%.2fs: %s\n", trigger.at_sec, trigger.text.c_str());
      }
    } else if (command == "insert") {
      std::string user;
      RopeId base = 0;
      double at = 0;
      RopeId with = 0;
      in >> user >> base >> at >> with;
      Result<const Rope*> with_rope = fs_.rope_server().Find(with);
      if (!with_rope.ok()) {
        std::printf("error: %s\n", with_rope.status().ToString().c_str());
        return true;
      }
      Status status =
          fs_.rope_server().Insert(user, base, at, MediaSelector::kAudioVisual, with,
                                   TimeInterval{0.0, (*with_rope)->LengthSec()});
      std::printf("%s\n", status.ToString().c_str());
    } else if (command == "substring") {
      std::string user;
      RopeId rope = 0;
      double start = 0;
      double length = 0;
      in >> user >> rope >> start >> length;
      Result<RopeId> result = fs_.rope_server().Substring(
          user, rope, MediaSelector::kAudioVisual, TimeInterval{start, length});
      if (result.ok()) {
        std::printf("rope %llu created\n", static_cast<unsigned long long>(*result));
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    } else if (command == "concat") {
      std::string user;
      RopeId a = 0;
      RopeId b = 0;
      in >> user >> a >> b;
      Result<RopeId> result = fs_.rope_server().Concat(user, a, b);
      if (result.ok()) {
        std::printf("rope %llu created\n", static_cast<unsigned long long>(*result));
      } else {
        std::printf("error: %s\n", result.status().ToString().c_str());
      }
    } else if (command == "delete") {
      std::string user;
      RopeId rope = 0;
      double start = 0;
      double length = 0;
      in >> user >> rope >> start >> length;
      Status status = fs_.rope_server().Delete(user, rope, MediaSelector::kAudioVisual,
                                               TimeInterval{start, length});
      std::printf("%s\n", status.ToString().c_str());
    } else if (command == "rmrope") {
      std::string user;
      RopeId rope = 0;
      in >> user >> rope;
      std::printf("%s\n", fs_.rope_server().DeleteRope(user, rope).ToString().c_str());
    } else if (command == "repair") {
      RopeId rope = 0;
      in >> rope;
      for (Medium medium : {Medium::kVideo, Medium::kAudio}) {
        Result<RopeServer::RopeRepairStats> stats =
            fs_.rope_server().RepairRope(rope, medium);
        if (stats.ok()) {
          std::printf("%s: %lld seams, %lld repaired, %lld blocks copied\n",
                      MediumName(medium), static_cast<long long>(stats->seams_checked),
                      static_cast<long long>(stats->seams_repaired),
                      static_cast<long long>(stats->blocks_copied));
        }
      }
    } else if (command == "gc") {
      std::printf("%lld strands collected\n",
                  static_cast<long long>(fs_.rope_server().CollectGarbage()));
    } else if (command == "write") {
      std::string name;
      in >> name;
      std::string text;
      std::getline(in, text);
      Status status = fs_.text_files().Write(
          name, std::vector<uint8_t>(text.begin(), text.end()));
      std::printf("%s\n", status.ToString().c_str());
    } else if (command == "read") {
      std::string name;
      in >> name;
      Result<std::vector<uint8_t>> data = fs_.text_files().Read(name);
      if (data.ok()) {
        std::printf("%s\n", std::string(data->begin(), data->end()).c_str());
      } else {
        std::printf("error: %s\n", data.status().ToString().c_str());
      }
    } else if (command == "checkpoint") {
      std::printf("%s\n", fs_.Checkpoint().ToString().c_str());
    } else if (command == "recover") {
      std::printf("%s\n", fs_.Recover().ToString().c_str());
    } else if (command == "df") {
      const auto& allocator = fs_.storage_manager().allocator();
      std::printf("%.1f%% used; %lld free sectors in %lld fragments; %lld strands, "
                  "%lld ropes, %lld text files\n",
                  allocator.Occupancy() * 100.0,
                  static_cast<long long>(allocator.free_sectors()),
                  static_cast<long long>(allocator.FreeExtentCount()),
                  static_cast<long long>(fs_.storage_manager().strand_count()),
                  static_cast<long long>(fs_.rope_server().rope_count()),
                  static_cast<long long>(fs_.text_files().file_count()));
    } else {
      std::printf("unknown command: %s\n", command.c_str());
    }
    return true;
  }

 private:
  MultimediaFileSystem fs_;
  uint64_t next_seed_ = 1;
};

// The scripted session used when stdin has no commands (e.g., CI).
constexpr const char* kDemoScript[] = {
    "record alice 8",  "record bob 5",     "ls",
    "substring alice 1 2 4", "concat alice 3 2", "info 4",
    "repair 4",        "play alice 4 video", "delete alice 4 1 2",
    "write motd vaFS demo complete", "read motd", "checkpoint",
    "gc",              "df",
};

}  // namespace

int main() {
  Shell shell;
  std::string line;
  bool interactive = false;
  std::printf("vaFS shell (type 'quit' to exit)\n");
  while (std::getline(std::cin, line)) {
    interactive = true;
    std::printf("> %s\n", line.c_str());
    if (!shell.Execute(line)) {
      return 0;
    }
  }
  if (!interactive) {
    std::printf("(no input; running the demo script)\n");
    for (const char* command : kDemoScript) {
      std::printf("> %s\n", command);
      shell.Execute(command);
    }
  }
  return 0;
}
