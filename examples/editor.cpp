// A scripted multimedia editing session — the programmatic analogue of the
// paper's Figure 12 window-based editor.
//
// Records raw footage and a narration take, then builds a news segment
// with the Section 4.1 operations: SUBSTRING to cut takes, CONCATE to
// join them, INSERT to splice a clip, REPLACE to dub the narration over a
// scene, DELETE to drop a flubbed take, triggers to synchronize slide
// text, scattering repair to keep the edited rope playable, and garbage
// collection to reclaim the footage nothing references anymore.

#include <cstdio>

#include "src/media/media.h"
#include "src/media/sources.h"
#include "src/vafs/file_system.h"

namespace {

void PrintRope(vafs::MultimediaFileSystem& fs, const char* name, vafs::RopeId id) {
  const vafs::Rope* rope = *fs.rope_server().Find(id);
  std::printf("%-12s %5.1f s, %zu video intervals, %zu triggers\n", name, rope->LengthSec(),
              rope->video().segments.size(), rope->triggers().size());
  for (const vafs::SyncInterval& interval : rope->SynchronizationInfo()) {
    std::printf("    [%5.1fs +%5.1fs] video=%llu@%lld audio=%llu@%lld\n", interval.start_sec,
                interval.length_sec, static_cast<unsigned long long>(interval.video_strand),
                static_cast<long long>(interval.video_block),
                static_cast<unsigned long long>(interval.audio_strand),
                static_cast<long long>(interval.audio_block));
  }
}

}  // namespace

int main() {
  using namespace vafs;
  FileSystemConfig config;
  config.video_device = DeviceProfile{UvcCompressedVideo().BitRate() * 3.0, 8};
  config.audio_device = DeviceProfile{TelephoneAudio().BitRate() * 16.0, 16'384};
  MultimediaFileSystem fs(config);
  RopeServer& server = fs.rope_server();

  std::printf("vaFS editor session (Figure 12 analogue)\n\n");

  // Two AV takes and a narration-only take.
  auto record = [&](uint64_t seed, double seconds, bool with_audio) {
    VideoSource camera(UvcCompressedVideo(), seed);
    AudioSource microphone(TelephoneAudio(), SpeechProfile{}, seed);
    return *fs.Record("editor", &camera, with_audio ? &microphone : nullptr, seconds);
  };
  const RopeId take1 = record(1, 12.0, true).rope;
  const RopeId take2 = record(2, 8.0, true).rope;
  VideoSource unused_camera(UvcCompressedVideo(), 3);
  AudioSource narration_mic(TelephoneAudio(), SpeechProfile{}, 3);
  const RopeId narration = (*fs.Record("editor", nullptr, &narration_mic, 6.0)).rope;

  PrintRope(fs, "take1", take1);
  PrintRope(fs, "take2", take2);
  PrintRope(fs, "narration", narration);

  // Cut the best 6 seconds of take1.
  std::printf("\nSUBSTRING[take1, 2s..8s] -> scene1\n");
  const RopeId scene1 =
      *server.Substring("editor", take1, MediaSelector::kAudioVisual, TimeInterval{2.0, 6.0});
  PrintRope(fs, "scene1", scene1);

  // Join with the first 5 seconds of take2.
  std::printf("\nSUBSTRING[take2, 0s..5s] -> scene2; CONCATE[scene1, scene2] -> story\n");
  const RopeId scene2 =
      *server.Substring("editor", take2, MediaSelector::kAudioVisual, TimeInterval{0.0, 5.0});
  const RopeId story = *server.Concat("editor", scene1, scene2);
  PrintRope(fs, "story", story);

  // Splice 3 seconds of take2's ending into the middle of the story.
  std::printf("\nINSERT[story @4s, take2[5s..8s]]\n");
  (void)server.Insert("editor", story, 4.0, MediaSelector::kAudioVisual, take2,
                      TimeInterval{5.0, 3.0});
  PrintRope(fs, "story", story);

  // Dub the narration over the first 4 seconds (audio only), the paper's
  // Rope4/Rope5 REPLACE pattern.
  std::printf("\nREPLACE[story audio 0s..4s <- narration 0s..4s]\n");
  (void)server.Replace("editor", story, MediaSelector::kAudio, TimeInterval{0.0, 4.0},
                       narration, TimeInterval{0.0, 4.0});
  PrintRope(fs, "story", story);

  // Drop a flubbed second.
  std::printf("\nDELETE[story, 9s..10s]\n");
  (void)server.Delete("editor", story, MediaSelector::kAudioVisual, TimeInterval{9.0, 1.0});
  PrintRope(fs, "story", story);

  // Slide titles as trigger info.
  (void)server.AddTrigger("editor", story, Trigger{0.0, "Top story"});
  (void)server.AddTrigger("editor", story, Trigger{6.5, "Eyewitness report"});

  // Repair edit seams so the story plays continuously.
  std::printf("\nscattering repair:\n");
  for (Medium medium : {Medium::kVideo, Medium::kAudio}) {
    Result<RopeServer::RopeRepairStats> stats = server.RepairRope(story, medium);
    std::printf("  %s: %lld seams, %lld repaired, %lld blocks copied\n", MediumName(medium),
                static_cast<long long>(stats->seams_checked),
                static_cast<long long>(stats->seams_repaired),
                static_cast<long long>(stats->blocks_copied));
  }

  // Play the finished story.
  Result<RequestId> request =
      fs.Play("editor", story, Medium::kVideo,
              TimeInterval{0.0, (*server.Find(story))->video().DurationSec()});
  fs.RunUntilIdle();
  const RequestStats stats = *fs.Stats(*request);
  std::printf("\nplayback of the edited story: %lld blocks, %lld violations\n",
              static_cast<long long>(stats.blocks_done),
              static_cast<long long>(stats.continuity_violations));

  // The editor discards the scratch ropes; unreferenced footage is
  // collected via interests.
  (void)server.DeleteRope("editor", scene1);
  (void)server.DeleteRope("editor", scene2);
  (void)server.DeleteRope("editor", take1);
  const int64_t before = fs.storage_manager().strand_count();
  const int64_t collected = server.CollectGarbage();
  std::printf("\nGC: %lld strands on disk, %lld collected "
              "(story still references shared footage)\n",
              static_cast<long long>(before), static_cast<long long>(collected));
  return stats.continuity_violations == 0 ? 0 : 1;
}
