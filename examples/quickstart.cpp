// Quickstart: record a multimedia rope, play it back under real-time
// constraints, and share the disk with ordinary text files.
//
// This touches each layer of vaFS once: the continuity model derives the
// placement, RECORD writes video+audio strands (with silence elimination)
// and ties them into a rope, PLAY goes through admission control and the
// round-robin service scheduler, and the text-file service drops a README
// into the scattering gaps between media blocks.

#include <cstdio>

#include "src/media/media.h"
#include "src/media/sources.h"
#include "src/vafs/file_system.h"

int main() {
  using namespace vafs;

  // A file system on a simulated late-1980s disk (the paper's testbed
  // class) with UVC-like video hardware.
  FileSystemConfig config;
  config.video_device = DeviceProfile{UvcCompressedVideo().BitRate() * 3.0, 8};
  config.audio_device = DeviceProfile{TelephoneAudio().BitRate() * 16.0, 16'384};
  MultimediaFileSystem fs(config);

  std::printf("vaFS quickstart\n");
  std::printf("disk: %.0f MB, R_dt = %.2f Mbit/s\n",
              static_cast<double>(config.disk.CapacityBytes()) / 1e6,
              fs.disk().model().TransferRateBitsPerSec() / 1e6);

  // What placement does the continuity model dictate for this hardware?
  Result<StrandPlacement> placement = fs.PlacementFor(UvcCompressedVideo());
  std::printf("video placement: q = %lld frames/block, scattering <= %.1f ms\n",
              static_cast<long long>(placement->granularity),
              placement->max_scattering_sec * 1e3);

  // RECORD [audio+video] -> mmRopeID.
  VideoSource camera(UvcCompressedVideo(), /*seed=*/42);
  AudioSource microphone(TelephoneAudio(), SpeechProfile{}, /*seed=*/42);
  Result<MultimediaFileSystem::RecordResult> recorded =
      fs.Record("alice", &camera, &microphone, /*duration_sec=*/10.0);
  if (!recorded.ok()) {
    std::printf("RECORD failed: %s\n", recorded.status().ToString().c_str());
    return 1;
  }
  std::printf("recorded rope %llu: %lld video blocks, %lld audio blocks "
              "(%lld eliminated as silence)\n",
              static_cast<unsigned long long>(recorded->rope),
              static_cast<long long>(recorded->video.blocks_total),
              static_cast<long long>(recorded->audio.blocks_total),
              static_cast<long long>(recorded->audio.silence_blocks));

  // A text file coexists on the same disk, in the gaps.
  const char* note = "meeting notes: ship vaFS";
  (void)fs.text_files().Write("notes.txt",
                              std::vector<uint8_t>(note, note + 24));

  // PLAY [mmRopeID, interval, video] -> requestID; non-blocking.
  Result<RequestId> request =
      fs.Play("alice", recorded->rope, Medium::kVideo, TimeInterval{0.0, 10.0});
  if (!request.ok()) {
    std::printf("PLAY rejected: %s\n", request.status().ToString().c_str());
    return 1;
  }
  fs.RunUntilIdle();

  const RequestStats stats = *fs.Stats(*request);
  std::printf("playback: %lld blocks, %lld continuity violations, startup %.1f ms\n",
              static_cast<long long>(stats.blocks_done),
              static_cast<long long>(stats.continuity_violations),
              UsecToSeconds(stats.startup_latency) * 1e3);

  Result<std::vector<uint8_t>> read_back = fs.text_files().Read("notes.txt");
  std::printf("text file intact: %s\n", read_back.ok() ? "yes" : "no");
  std::printf("done: glitch-free playback %s\n",
              stats.continuity_violations == 0 ? "achieved" : "FAILED");
  return stats.continuity_violations == 0 ? 0 : 1;
}
