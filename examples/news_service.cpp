// A news-distribution service (one of the paper's motivating
// applications): a library of stories is recorded once, then many viewers
// stream concurrently. Admission control decides how many viewers the
// disk can serve without glitching anyone, raising the round size k step
// by step as viewers join; the overflow viewer is rejected outright.

#include <cstdio>
#include <vector>

#include "src/media/media.h"
#include "src/media/sources.h"
#include "src/vafs/file_system.h"

int main() {
  using namespace vafs;

  // A "future" higher-bandwidth disk so the service can host a crowd.
  FileSystemConfig config;
  config.disk.cylinders = 2000;
  config.disk.surfaces = 16;
  config.disk.sectors_per_track = 128;
  config.disk.rpm = 7200.0;
  config.disk.min_seek_ms = 1.0;
  config.disk.max_seek_ms = 8.0;
  config.video_device = DeviceProfile{UvcCompressedVideo().BitRate() * 3.0, 8};
  config.retain_data = false;  // service-scale run: timing only
  MultimediaFileSystem fs(config);

  std::printf("vaFS news service\n");
  std::printf("disk: %.1f GB, R_dt = %.1f Mbit/s; story bit rate %.2f Mbit/s\n\n",
              static_cast<double>(config.disk.CapacityBytes()) / 1e9,
              fs.disk().model().TransferRateBitsPerSec() / 1e6,
              UvcCompressedVideo().BitRate() / 1e6);

  // Publish a library of stories.
  const char* headlines[] = {"Election results", "Harbor fire contained", "Sports roundup",
                             "Weather outlook"};
  std::vector<RopeId> stories;
  for (int i = 0; i < 4; ++i) {
    VideoSource camera(UvcCompressedVideo(), static_cast<uint64_t>(i) + 1);
    Result<MultimediaFileSystem::RecordResult> recorded =
        fs.Record("newsroom", &camera, nullptr, 30.0);
    stories.push_back(recorded->rope);
    std::printf("published story %d: \"%s\" (%.0f s)\n", i + 1, headlines[i],
                (*fs.rope_server().Find(recorded->rope))->LengthSec());
  }

  // Viewers arrive one by one, each picking a story round-robin.
  std::printf("\nviewers arriving (admission control gates each):\n");
  std::vector<RequestId> sessions;
  int rejected_at = -1;
  for (int viewer = 1; viewer <= 20; ++viewer) {
    const RopeId story = stories[static_cast<size_t>((viewer - 1) % 4)];
    Result<RequestId> session =
        fs.Play("viewer", story, Medium::kVideo, TimeInterval{0.0, 30.0});
    if (!session.ok()) {
      std::printf("  viewer %2d: REJECTED (%s)\n", viewer, session.status().message().c_str());
      rejected_at = viewer;
      break;
    }
    sessions.push_back(*session);
    // A second of service elapses between arrivals.
    fs.simulator().RunUntil(fs.simulator().Now() + SecondsToUsec(1.0));
    std::printf("  viewer %2d: admitted; scheduler round size k = %lld\n", viewer,
                static_cast<long long>(fs.scheduler().current_k()));
  }

  fs.RunUntilIdle();

  std::printf("\nfinal tally:\n");
  int64_t total_violations = 0;
  for (size_t i = 0; i < sessions.size(); ++i) {
    const RequestStats stats = *fs.Stats(sessions[i]);
    total_violations += stats.continuity_violations;
    std::printf("  viewer %2zu: %4lld blocks, %lld glitches, startup %6.1f ms\n", i + 1,
                static_cast<long long>(stats.blocks_done),
                static_cast<long long>(stats.continuity_violations),
                UsecToSeconds(stats.startup_latency) * 1e3);
  }
  std::printf("\n%zu concurrent viewers served with %lld total glitches; "
              "viewer %d was turned away rather than degrade the others\n",
              sessions.size(), static_cast<long long>(total_violations), rejected_at);
  return total_violations == 0 ? 0 : 1;
}
