// Video/audio mail (another of the paper's motivating services): a sender
// records a message — the silence in their speech is elided on disk — and
// the recipient plays it back with PAUSE/RESUME and fast-forward, the
// interactive controls Section 4.1 specifies.

#include <cstdio>

#include "src/media/media.h"
#include "src/media/sources.h"
#include "src/vafs/file_system.h"

int main() {
  using namespace vafs;
  FileSystemConfig config;
  config.video_device = DeviceProfile{UvcCompressedVideo().BitRate() * 3.0, 8};
  config.audio_device = DeviceProfile{TelephoneAudio().BitRate() * 16.0, 16'384};
  MultimediaFileSystem fs(config);

  std::printf("vaFS video mail\n\n");

  // Sender records a 20-second message with plenty of pauses.
  VideoSource camera(UvcCompressedVideo(), 7);
  SpeechProfile hesitant;
  hesitant.talk_spurt_mean_sec = 0.8;
  hesitant.silence_mean_sec = 1.5;
  AudioSource microphone(TelephoneAudio(), hesitant, 7);
  Result<MultimediaFileSystem::RecordResult> mail =
      fs.Record("sender", &camera, &microphone, 20.0);
  if (!mail.ok()) {
    std::printf("record failed: %s\n", mail.status().ToString().c_str());
    return 1;
  }
  const double silence_fraction = static_cast<double>(mail->audio.silence_blocks) /
                                  static_cast<double>(mail->audio.blocks_total);
  std::printf("message recorded: %.0f s; %.0f%% of audio blocks were silence and use\n"
              "no disk space (NULL primary-index delay holders keep the timing)\n\n",
              20.0, silence_fraction * 100.0);

  // Recipient starts playback, pauses for a phone call, resumes.
  Result<RequestId> playback =
      fs.Play("recipient", mail->rope, Medium::kAudio, TimeInterval{0.0, 20.0});
  fs.simulator().RunUntil(SecondsToUsec(5.0));
  std::printf("5 s in: PAUSE (non-destructive: the admission slot stays reserved)\n");
  (void)fs.Pause(*playback, /*destructive=*/false);
  fs.simulator().RunUntil(SecondsToUsec(9.0));
  std::printf("9 s in: RESUME\n");
  (void)fs.Resume(*playback);
  fs.RunUntilIdle();
  RequestStats stats = *fs.Stats(*playback);
  std::printf("message heard: %lld blocks, %lld glitches\n\n",
              static_cast<long long>(stats.blocks_done),
              static_cast<long long>(stats.continuity_violations));

  // Skim the video at 2x to find the important part.
  std::printf("skimming the video at 2x (fast-forward without skipping):\n");
  Result<RequestId> skim =
      fs.Play("recipient", mail->rope, Medium::kVideo, TimeInterval{0.0, 20.0}, 2.0);
  if (skim.ok()) {
    fs.RunUntilIdle();
    stats = *fs.Stats(*skim);
    std::printf("  watched %.0f s of footage in ~%.1f s of wall time, %lld glitches\n", 20.0,
                UsecToSeconds(stats.completion_time - stats.submit_time),
                static_cast<long long>(stats.continuity_violations));
  } else {
    std::printf("  2x skim rejected: %s (the continuity requirement at the\n"
                "  doubled display rate exceeds this disk)\n",
                skim.status().message().c_str());
  }

  // Forward just the highlight to a colleague as a new rope.
  Result<RopeId> highlight = fs.rope_server().Substring(
      "recipient", mail->rope, MediaSelector::kAudioVisual, TimeInterval{8.0, 5.0});
  std::printf("\nforwarded highlight rope %llu (%.1f s); strands are shared, not copied:\n",
              static_cast<unsigned long long>(*highlight),
              (*fs.rope_server().Find(*highlight))->LengthSec());
  std::printf("  interests on the video strand: %lld\n",
              static_cast<long long>(fs.rope_server().InterestCount(mail->video_strand)));
  return 0;
}
