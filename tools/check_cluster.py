#!/usr/bin/env python3
"""CI gate over the cluster sharding/failover bench artifacts.

Run from a directory containing BENCH_cluster_metrics.json and
BENCH_cluster_slo.json (dropped by bench_cluster next to its printed
tables). Hard gates (exit 1):

  - zero silent stream deaths: every viewer of the killed node either
    failed over (each kFailover event inside its stamped bound) or was
    shed with an explicit kShedLoad record; nobody is left dangling;
  - a node was actually killed and at least one viewer actually failed
    over (the scenario must exercise the failover path, not dodge it);
  - every audit (cluster + per-node strict ContinuityAuditor) is clean,
    in the failover scenario and at every scaling point;
  - the seeded failure run replays byte-identically (signature and
    per-node SLO rollup);
  - the cluster SLO artifact is the vafs.slo.cluster shape with one
    entry per node, each carrying a node id, state, and SLO report.

Advisory (warn, exit 0): aggregate admitted streams at 4 nodes should
be >= 3x the single-node run — near-linear scale-out.
"""

import json
import sys

FAILURES = []
WARNINGS = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}")


def warn(message: str) -> None:
    WARNINGS.append(message)
    print(f"WARN: {message}")


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except FileNotFoundError:
        fail(f"{path}: missing artifact")
    except json.JSONDecodeError as err:
        fail(f"{path}: invalid JSON ({err})")
    return None


def check_metrics(path: str) -> None:
    data = load(path)
    if data is None:
        return
    cluster = data.get("cluster", {})
    scaling = cluster.get("scaling", [])
    failover = cluster.get("failover", {})

    # --- scaling: audits hard, the ratio advisory ---
    if not scaling:
        fail(f"{path}: no scaling points")
    by_nodes = {}
    for point in scaling:
        by_nodes[point.get("nodes", 0)] = point
        if not point.get("audit_clean", False):
            fail(f"{path}: scaling at {point.get('nodes')} nodes did not audit clean")
        if point.get("admitted", 0) <= 0:
            fail(f"{path}: scaling at {point.get('nodes')} nodes admitted nobody")
    ratio = cluster.get("scaling_4x_vs_1x", 0.0)
    if ratio < 3.0:
        warn(f"{path}: 4-node aggregate admissions only {ratio:.2f}x the single node "
             f"(want >= 3x)")
    else:
        one = by_nodes.get(1, {}).get("admitted", 0)
        four = by_nodes.get(4, {}).get("admitted", 0)
        print(f"ok: 4 nodes admitted {four} streams vs {one} on one node ({ratio:.2f}x)")

    # --- failover: everything hard ---
    if failover.get("nodes_killed", 0) < 1:
        fail(f"{path}: no node was killed — the failover scenario did not run")
    if failover.get("admitted", 0) <= 0:
        fail(f"{path}: failover scenario admitted nobody")
    if failover.get("failed_over", 0) < 1:
        fail(f"{path}: no viewer failed over — the kill missed every live stream")
    events = failover.get("failover_events", 0)
    within = failover.get("failover_within_bound", -1)
    if events != within:
        fail(f"{path}: {events - within} of {events} failovers exceeded the stamped bound "
             f"(max interruption {failover.get('max_interruption_usec')} us, bound "
             f"{failover.get('bound_usec')} us)")
    if failover.get("max_interruption_usec", 0) > failover.get("bound_usec", 0):
        fail(f"{path}: max failover interruption "
             f"{failover.get('max_interruption_usec')} us exceeds the bound "
             f"{failover.get('bound_usec')} us")
    if failover.get("shed_events", -1) != failover.get("shed", 0):
        fail(f"{path}: {failover.get('shed')} viewers shed but "
             f"{failover.get('shed_events')} kShedLoad records — shedding must be explicit")
    if failover.get("unaccounted_viewers", 1) != 0:
        fail(f"{path}: {failover.get('unaccounted_viewers')} viewers neither finished, "
             f"failed over, nor shed — silent stream deaths")
    if not failover.get("audit_clean", False):
        fail(f"{path}: failover trace did not replay clean through the strict auditors")
    if not failover.get("deterministic", False):
        fail(f"{path}: repeated seeded failure run diverged — not replay-deterministic")
    if not FAILURES:
        print(f"ok: kill at flash peak — {failover.get('failed_over')} failed over "
              f"within {failover.get('bound_usec')} us, {failover.get('shed')} shed "
              f"explicitly, {failover.get('re_replications')} repairs "
              f"({failover.get('repair_blocks')} blocks) behind the token bucket")


def check_cluster_slo(path: str) -> None:
    data = load(path)
    if data is None:
        return
    if data.get("kind") != "vafs.slo.cluster":
        fail(f"{path}: kind is {data.get('kind')!r}, want 'vafs.slo.cluster'")
        return
    nodes = data.get("nodes", [])
    if not nodes:
        fail(f"{path}: empty per-node SLO rollup")
    for entry in nodes:
        node = entry.get("node", -1)
        if node < 0:
            fail(f"{path}: rollup entry without a node id")
        if entry.get("state") not in ("up", "dead", "recovering"):
            fail(f"{path}: node {node} has unknown state {entry.get('state')!r}")
        slo = entry.get("slo")
        if not isinstance(slo, dict) or "streams" not in slo:
            fail(f"{path}: node {node} carries no SLO report")
    states = [entry.get("state") for entry in nodes]
    if "dead" not in states:
        fail(f"{path}: no node reports dead after the kill scenario")
    if not FAILURES:
        print(f"ok: per-node SLO rollup covers {len(nodes)} nodes ({', '.join(states)})")


def main() -> int:
    check_metrics("BENCH_cluster_metrics.json")
    check_cluster_slo("BENCH_cluster_slo.json")
    if FAILURES:
        print(f"{len(FAILURES)} cluster gate(s) failed")
        return 1
    if WARNINGS:
        print(f"all hard cluster gates passed ({len(WARNINGS)} advisory warning(s))")
    else:
        print("all cluster gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
