#!/usr/bin/env python3
"""CI gate over the stream-merging bench artifact.

Run from a directory containing BENCH_merge_metrics.json (dropped by
bench_merge next to its printed tables). Fails (exit 1) when:

  - the session layer did not serve more viewers at the continuity SLO
    than the Eq. 17 ceiling n_max, the plain Eq. 17 run, or the PR 5
    planned+cache stack on the identical seeded Zipf/flash-crowd trace;
  - nobody actually batched or patched (the extra admissions must come
    from stream sharing, not slack in the workload);
  - any session-layer viewer breached the SLO, a patched rider degraded,
    or the strict ContinuityAuditor flagged the replayed trace;
  - the run was not deterministic (same seed must reproduce the exact
    admission sequence).
"""

import json
import sys

FAILURES = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}")


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except FileNotFoundError:
        fail(f"{path}: missing artifact")
    except json.JSONDecodeError as err:
        fail(f"{path}: invalid JSON ({err})")
    return None


def check_merge(path: str) -> None:
    data = load(path)
    if data is None:
        return
    merge = data.get("merge", {})
    n_max = merge.get("n_max", 0)
    eq17 = merge.get("eq17", {})
    cache = merge.get("cache", {})
    sessions = merge.get("sessions", {})
    census = merge.get("census", {})

    served = sessions.get("served", 0)
    if served <= n_max:
        fail(f"{path}: sessions served {served} viewers, not past n_max = {n_max}")
    if served <= eq17.get("served", 0):
        fail(f"{path}: sessions served {served}, no better than Eq. 17 alone "
             f"({eq17.get('served', 0)})")
    if served <= cache.get("served", 0):
        fail(f"{path}: sessions served {served}, no better than the planned+cache "
             f"stack ({cache.get('served', 0)})")
    if not FAILURES:
        print(f"ok: sessions served {served} viewers > cache {cache.get('served', 0)} "
              f"> eq17 {eq17.get('served', 0)} (n_max = {n_max})")

    if census.get("batched", 0) + census.get("patched", 0) <= 0:
        fail(f"{path}: no viewer was batched or patched — nothing merged")
    if census.get("merged", 0) < census.get("patched", 0):
        fail(f"{path}: {census.get('patched', 0)} patches opened but only "
             f"{census.get('merged', 0)} merged")
    if census.get("degraded", 0) != 0:
        fail(f"{path}: {census.get('degraded')} riders degraded in a fault-free run")

    if sessions.get("breaches", 1) != 0:
        fail(f"{path}: {sessions.get('breaches')} session-layer streams breached their SLO")
    within = sessions.get("within_budget_min", 0.0)
    if within < 0.999:
        fail(f"{path}: worst session stream only {within:.4f} of rounds within budget")
    for mode in ("eq17", "cache", "sessions"):
        if not merge.get(mode, {}).get("audit_clean", False):
            fail(f"{path}: {mode} trace did not replay clean through the strict auditor")
    if not merge.get("deterministic", False):
        fail(f"{path}: repeated run diverged — admissions are not seed-deterministic")


def main() -> int:
    check_merge("BENCH_merge_metrics.json")
    if FAILURES:
        print(f"{len(FAILURES)} stream-merging gate(s) failed")
        return 1
    print("all stream-merging gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
