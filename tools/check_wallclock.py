#!/usr/bin/env python3
"""CI gate over the wall-clock execution engine bench artifact.

Run from a directory containing BENCH_wallclock_metrics.json (dropped by
bench_wallclock next to its printed tables). Fails (exit 1) when:

  - determinism breaks: any run's trace digest, SLO digest, payload
    digest, simulated completion time, round count or admitted-stream
    count differs from the single-worker reference. These gates are HARD
    on every host -- wall-clock parallelism must never change
    simulated-time results;
  - the trace stream was empty or no rounds executed (the workload did
    not actually run);
  - on a multi-core host, the best multi-worker rounds/sec falls below
    the single-worker rounds/sec (tolerance 0.9x for scheduler noise).
    On a single-hardware-thread host no speedup is physically possible,
    so the throughput gate is reported but advisory only.
"""

import json
import sys

FAILURES = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}")


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except FileNotFoundError:
        fail(f"{path}: missing artifact")
    except json.JSONDecodeError as err:
        fail(f"{path}: invalid JSON ({err})")
    return None


def check_wallclock(path: str) -> None:
    data = load(path)
    if data is None:
        return
    wallclock = data.get("wallclock", {})
    runs = wallclock.get("runs", [])
    if not runs:
        fail(f"{path}: no runs recorded")
        return

    reference = runs[0]
    if reference.get("workers") != 1:
        fail(f"{path}: first run must be the single-worker reference")
    if reference.get("rounds", 0) <= 0:
        fail(f"{path}: reference run executed no rounds")
    if reference.get("trace_events", 0) <= 0:
        fail(f"{path}: reference run produced no trace events")
    if reference.get("admitted", 0) <= 0:
        fail(f"{path}: reference run admitted no streams")

    # Hard determinism gates: byte-identical simulated-time results for
    # every worker count.
    for run in runs[1:]:
        workers = run.get("workers")
        for key in ("trace_digest", "slo_digest", "payload_digest",
                    "completion_usec", "rounds", "trace_events", "admitted"):
            if run.get(key) != reference.get(key):
                fail(f"{path}: workers={workers} {key} = {run.get(key)!r} "
                     f"!= single-worker {reference.get(key)!r} (determinism broken)")
    if not FAILURES:
        print(f"ok: {len(runs)} worker counts, simulated-time digests identical "
              f"(trace {reference.get('trace_digest')}, "
              f"payload {reference.get('payload_digest')})")

    # Throughput gate: hard on multi-core hosts, advisory on single-core.
    single = reference.get("rounds_per_sec", 0.0)
    multi = [run for run in runs if run.get("workers", 1) > 1]
    best = max((run.get("rounds_per_sec", 0.0) for run in multi), default=0.0)
    cores = wallclock.get("hardware_concurrency", 0)
    if single <= 0.0 or not multi:
        fail(f"{path}: missing throughput measurements")
        return
    ratio = best / single
    line = (f"best multi-worker {best:.1f} rounds/sec vs single-worker "
            f"{single:.1f} ({ratio:.2f}x) on {cores} hardware thread(s)")
    if cores <= 1:
        print(f"advisory: {line}; single-core host, speedup gate skipped")
    elif best < 0.9 * single:
        fail(f"{path}: {line}; parallel dispatch slower than inline")
    else:
        print(f"ok: {line}")


def main() -> int:
    check_wallclock("BENCH_wallclock_metrics.json")
    if FAILURES:
        print(f"{len(FAILURES)} wall-clock gate(s) failed")
        return 1
    print("all wall-clock gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
