#!/usr/bin/env python3
"""CI gate over the bench telemetry artifacts.

Run from a directory containing the BENCH_* files that bench_admission and
bench_faults drop next to their printed tables. Fails (exit 1) when:

  - any admitted stream in a fault-free scenario (BENCH_admission_slo.json,
    BENCH_faults_clean_slo.json) reports less than 100% of accounted rounds
    inside its Eq. 11 budget, or a failed continuity verdict;
  - the heavy-fault scenario (BENCH_faults_slo.json, 25% transient read
    faults) shows no fault handling at all (no retried or skipped blocks),
    which would mean the injection or the telemetry path is broken;
  - a Perfetto artifact is not valid JSON or carries no trace events.
"""

import json
import sys

FAILURES = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}")


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except FileNotFoundError:
        fail(f"{path}: missing artifact")
    except json.JSONDecodeError as err:
        fail(f"{path}: invalid JSON ({err})")
    return None


def clean_reports(path: str, report):
    """Yields (label, single-node SLO report) pairs that must replay clean.

    A flat vafs.slo.report yields itself; a vafs.slo.cluster rollup yields
    one report per UP node — a dead or recovering node's streams were
    legitimately interrupted by its failure, so only survivors are held to
    the fault-free bar.
    """
    if report.get("kind") == "vafs.slo.cluster":
        for entry in report.get("nodes", []):
            if entry.get("state") == "up":
                yield f"{path}[node {entry.get('node')}]", entry.get("slo", {})
    else:
        yield path, report


def check_clean_slo(path: str) -> None:
    report = load(path)
    if report is None:
        return
    clean = True
    total = 0
    for label, node_report in clean_reports(path, report):
        streams = node_report.get("streams", [])
        if not streams:
            fail(f"{label}: no streams in SLO report")
            clean = False
            continue
        total += len(streams)
        for stream in streams:
            request = int(stream.get("request", -1))
            within = stream.get("within_budget_fraction", 0.0)
            if within < 1.0:
                fail(f"{label}: stream {request} only {within:.4f} of rounds within budget")
                clean = False
            if not stream.get("continuity_met", 0):
                fail(f"{label}: stream {request} breached its continuity SLO")
                clean = False
    if clean:
        print(f"ok: {path}: {total} streams, all rounds within budget")


def check_faulty_slo(path: str) -> None:
    report = load(path)
    if report is None:
        return
    streams = report.get("streams", [])
    handled = sum(
        int(s.get("blocks_retried", 0)) + int(s.get("blocks_skipped", 0)) for s in streams
    )
    if handled == 0:
        fail(f"{path}: heavy-fault run shows no retried or skipped blocks")
        return
    degraded = max((s.get("degraded_ratio", 0.0) for s in streams), default=0.0)
    print(f"ok: {path}: {handled} blocks handled by fault paths, "
          f"max degraded ratio {degraded:.4f}")


def check_perfetto(path: str) -> None:
    trace = load(path)
    if trace is None:
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
        return
    phases = {event.get("ph") for event in events}
    if "X" not in phases:
        fail(f"{path}: no complete slices in trace")
    print(f"ok: {path}: {len(events)} trace events")


def main() -> int:
    check_clean_slo("BENCH_admission_slo.json")
    check_clean_slo("BENCH_faults_clean_slo.json")
    check_faulty_slo("BENCH_faults_slo.json")
    check_perfetto("BENCH_admission.perfetto.json")
    check_perfetto("BENCH_faults.perfetto.json")
    if FAILURES:
        print(f"{len(FAILURES)} SLO gate failure(s)")
        return 1
    print("SLO gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
