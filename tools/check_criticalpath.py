#!/usr/bin/env python3
"""CI gate over the critical-path attribution artifacts.

Run from a directory containing BENCH_*_criticalpath.json (dropped by
bench_roundplan and bench_cluster with spans enabled). The scheduler
charges every microsecond of a round to exactly one stage, so for every
attributed round:

  - the stage breakdown must sum to the round's measured service time
    within epsilon (the same bound the ContinuityAuditor enforces inline);
  - no stage may carry a negative charge, and the queue residual must be
    non-negative;
  - the reported dominant stage must actually be the largest charge;
  - total_usec must equal the recomputed stage sum exactly (it is derived
    from the same ledger).

Exits 1 if any round violates, or if no artifact yields any round at all
(spans silently off would otherwise pass vacuously).
"""

import json
import sys

# Matches obs::ContinuityAuditor::kStageSumEpsilonUsec.
EPSILON_USEC = 2

STAGES = ("queue", "seek", "transfer", "retry", "cache", "merge_patch", "append")

FAILURES = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}")


def check_artifact(path: str) -> int:
    """Returns the number of rounds checked (0 when the file is absent)."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            data = json.load(fp)
    except FileNotFoundError:
        print(f"note: {path} not present, skipping")
        return 0
    except json.JSONDecodeError as err:
        fail(f"{path}: invalid JSON ({err})")
        return 0

    if data.get("kind") != "vafs.critical_path":
        fail(f"{path}: kind is {data.get('kind')!r}, not vafs.critical_path")
        return 0
    rounds = data.get("rounds", [])
    checked = 0
    anomalies = 0
    for entry in rounds:
        checked += 1
        where = f"{path} node {entry.get('node')} round {entry.get('round')}"
        stages = entry.get("stages", {})
        for stage in STAGES:
            if stages.get(stage, 0) < 0:
                fail(f"{where}: stage {stage} charged {stages.get(stage)} < 0")
        stage_sum = sum(stages.get(stage, 0) for stage in STAGES)
        duration = entry.get("duration_usec", 0)
        if abs(stage_sum - duration) > EPSILON_USEC:
            fail(f"{where}: stage sum {stage_sum} != round duration {duration} "
                 f"(epsilon {EPSILON_USEC})")
        if entry.get("total_usec", -1) != stage_sum:
            fail(f"{where}: total_usec {entry.get('total_usec')} != stage sum {stage_sum}")
        dominant = entry.get("dominant")
        if dominant not in STAGES:
            fail(f"{where}: dominant stage {dominant!r} not in the taxonomy")
        else:
            if entry.get("dominant_usec", -1) != stages.get(dominant, 0):
                fail(f"{where}: dominant_usec {entry.get('dominant_usec')} != "
                     f"stages[{dominant}] = {stages.get(dominant, 0)}")
            largest = max(stages.get(stage, 0) for stage in STAGES)
            if stages.get(dominant, 0) != largest:
                fail(f"{where}: dominant {dominant} ({stages.get(dominant, 0)} us) is not "
                     f"the largest charge ({largest} us)")
        if entry.get("anomalous", False):
            anomalies += 1
    print(f"ok: {path}: {checked} rounds attributed, {anomalies} anomalous")
    return checked


def main() -> int:
    paths = sys.argv[1:] or [
        "BENCH_roundplan_criticalpath.json",
        "BENCH_cluster_criticalpath.json",
    ]
    total = sum(check_artifact(path) for path in paths)
    if total == 0:
        fail("no critical-path rounds found in any artifact (spans off?)")
    if FAILURES:
        print(f"{len(FAILURES)} critical-path gate(s) failed")
        return 1
    print(f"all critical-path gates passed over {total} rounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
