// vafs_top: inspector over vaFS continuity telemetry.
//
// Two modes share one renderer:
//
//   vafs_top --snapshot FILE   load a versioned telemetry snapshot (the
//                              JsonSnapshotExporter format benches and the
//                              facade emit) and render it;
//   vafs_top [demo flags]      run a deterministic demo simulation with the
//                              facade's built-in telemetry, then render its
//                              live snapshot.
//
// Demo flags:
//   --streams N          concurrent playback streams (default 4)
//   --seconds S          recorded/played duration per stream (default 8)
//   --read-fault-rate R  transient read-fault probability in [0,1]
//   --seed K             fault-injection seed (default 7)
//   --export PREFIX      also write PREFIX.snapshot.json,
//                        PREFIX.perfetto.json, PREFIX.prom and
//                        PREFIX.folded (flame stacks for vafs_flame.py)
//
// The tables map back to the paper: "service rounds" is Eq. 11 round time
// against the min k_i*d_i budget, "slots" is the admission set bounded by
// Eq. 17's n_max, "seek/gap" shows the l_ds scattering contract at work,
// and the per-stream table is the continuity SLO (fraction of accounted
// rounds with at least the target slack).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/media/media.h"
#include "src/media/sources.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/vafs/file_system.h"

namespace {

using vafs::obs::JsonValue;

const JsonValue* Child(const JsonValue* value, const char* key) {
  return value != nullptr ? value->Find(key) : nullptr;
}

double Num(const JsonValue* object, const char* key, double fallback = 0.0) {
  return object != nullptr ? object->NumberOr(key, fallback) : fallback;
}

bool Flag(const JsonValue* object, const char* key) {
  const JsonValue* value = Child(object, key);
  return value != nullptr && value->type == JsonValue::Type::kBool && value->boolean;
}

void RenderSlots(const JsonValue* counters, const JsonValue* gauges) {
  std::printf("[admission / slots]\n");
  std::printf("  k=%.0f  slots held=%.0f (active=%.0f pending=%.0f paused_nd=%.0f "
              "paused_d=%.0f)\n",
              Num(gauges, "scheduler.current_k"), Num(gauges, "scheduler.slots_held"),
              Num(gauges, "scheduler.slots_active"), Num(gauges, "scheduler.slots_pending"),
              Num(gauges, "scheduler.slots_paused_nondestructive"),
              Num(gauges, "scheduler.slots_paused_destructive"));
  std::printf("  submits: %.0f accepted / %.0f rejected   admission: %.0f plans / %.0f "
              "rejections\n",
              Num(counters, "scheduler.submits_accepted"),
              Num(counters, "scheduler.submits_rejected"),
              Num(counters, "admission.plans_accepted"), Num(counters, "admission.rejections"));
  std::printf("  pauses: %.0f nd + %.0f d   resumes: %.0f (%.0f rejected)   stops: %.0f   "
              "completions: %.0f\n\n",
              Num(counters, "scheduler.pauses_nondestructive"),
              Num(counters, "scheduler.pauses_destructive"), Num(counters, "scheduler.resumes"),
              Num(counters, "scheduler.resumes_rejected"), Num(counters, "scheduler.stops"),
              Num(counters, "scheduler.completions"));
}

void RenderHistogramRow(const JsonValue* histograms, const char* name, const char* label,
                        const char* unit) {
  const JsonValue* h = Child(histograms, name);
  if (h == nullptr || Num(h, "count") <= 0) {
    return;
  }
  std::printf("  %-22s n=%-7.0f mean=%-9.1f p50=%-9.1f p95=%-9.1f p99=%-9.1f max=%-9.1f %s\n",
              label, Num(h, "count"), Num(h, "mean"), Num(h, "p50"), Num(h, "p95"),
              Num(h, "p99"), Num(h, "max"), unit);
}

void RenderService(const JsonValue* counters, const JsonValue* histograms) {
  std::printf("[service rounds / device]  (Eq. 11: round time vs min k_i*d_i)\n");
  std::printf("  rounds=%.0f  blocks serviced=%.0f  retries=%.0f  skipped=%.0f  "
              "relocated=%.0f\n",
              Num(counters, "scheduler.rounds"), Num(counters, "scheduler.blocks_serviced"),
              Num(counters, "scheduler.block_retries"), Num(counters, "scheduler.blocks_skipped"),
              Num(counters, "store.blocks_relocated"));
  RenderHistogramRow(histograms, "scheduler.round_duration_usec", "round duration", "us");
  RenderHistogramRow(histograms, "scheduler.request_service_usec", "request service", "us");
  RenderHistogramRow(histograms, "disk.read_service_usec", "disk read", "us");
  RenderHistogramRow(histograms, "disk.seek_cylinders", "seek distance", "cyl");
  RenderHistogramRow(histograms, "store.strand_gap_ms", "scattering gap", "ms (l_ds bound)");
  std::printf("  disk: %.0f reads (%.0f sectors), %.0f writes (%.0f sectors), %.0f faults, "
              "%.0f salvage reads\n\n",
              Num(counters, "disk.reads"), Num(counters, "disk.sectors_read"),
              Num(counters, "disk.writes"), Num(counters, "disk.sectors_written"),
              Num(counters, "disk.faults"), Num(counters, "disk.salvage_reads"));
}

void RenderPlanner(const JsonValue* counters, const JsonValue* histograms) {
  const double rounds = Num(counters, "plan.rounds");
  if (rounds <= 0) {
    return;  // scheduler not running planned rounds
  }
  const double data_blocks = Num(counters, "plan.data_blocks");
  const double coalesced = Num(counters, "plan.coalesced_blocks");
  const double deduped = Num(counters, "plan.deduped_blocks");
  std::printf("[round planner]  (block-level C-SCAN + coalescing + dedup)\n");
  std::printf("  planned rounds=%.0f  transfers=%.0f for %.0f blocks  coalesced=%.0f  "
              "deduped=%.0f (ratio %.2f)\n",
              rounds, Num(counters, "plan.read_transfers"), data_blocks, coalesced, deduped,
              data_blocks > 0 ? (coalesced + deduped) / data_blocks : 0.0);
  RenderHistogramRow(histograms, "plan.transfers_per_round", "transfers/round", "ops");
  RenderHistogramRow(histograms, "plan.seek_cylinders_measured", "seek measured", "cyl/round");
  RenderHistogramRow(histograms, "plan.seek_cylinders_worst", "seek worst-case", "cyl/round");
  std::printf("  arm travel saved vs worst-case charge: %.0f cylinders\n\n",
              Num(counters, "plan.seek_cylinders_saved"));
}

void RenderCache(const JsonValue* counters, const JsonValue* gauges) {
  const double lookups = Num(counters, "cache.lookups");
  const double invalidations = Num(counters, "cache.invalidations");
  if (lookups <= 0 && invalidations <= 0) {
    return;  // no block cache configured
  }
  const double hits = Num(counters, "cache.hits");
  std::printf("[block cache]\n");
  std::printf("  lookups=%.0f  hits=%.0f (%.1f%%)  recent hit rate=%.1f%%\n", lookups, hits,
              lookups > 0 ? 100.0 * hits / lookups : 0.0,
              Num(gauges, "cache.hit_rate_recent") * 100.0);
  std::printf("  resident=%.0f KB  pinned pages=%.0f  evictions=%.0f  invalidations=%.0f "
              "(%.0f entries)\n",
              Num(gauges, "cache.resident_bytes") / 1024.0, Num(gauges, "cache.pinned_entries"),
              Num(gauges, "cache.evictions"), invalidations,
              Num(counters, "cache.invalidated_entries"));
  std::printf("  cache-aware admission: %.0f admits, %.0f revocations\n\n",
              Num(counters, "admission.cache_admits"),
              Num(counters, "admission.cache_admit_revocations"));
}

void RenderRecovery(const JsonValue* counters) {
  // Only worth a section when anything crash-consistency-shaped happened.
  const double activity = Num(counters, "disk.power_cuts") +
                          Num(counters, "recovery.completions") +
                          Num(counters, "persistence.root_flips") +
                          Num(counters, "fsck.findings");
  if (activity <= 0) {
    return;
  }
  std::printf("[recovery]\n");
  std::printf("  power cuts=%.0f  recoveries=%.0f  crash points survived=%.0f\n",
              Num(counters, "disk.power_cuts"), Num(counters, "recovery.completions"),
              Num(counters, "recovery.crash_points_survived"));
  std::printf("  root flips=%.0f  journal appends=%.0f  replays=%.0f  fsck findings=%.0f\n\n",
              Num(counters, "persistence.root_flips"),
              Num(counters, "persistence.journal_appends"),
              Num(counters, "persistence.journal_replays"), Num(counters, "fsck.findings"));
}

// Row cap for the per-stream and per-session tables (--top N; 0 = all).
// A 20k-stream snapshot renders in full otherwise, which no terminal
// survives; the streams table shows the WORST rows (breached first, then
// thinnest slack) so the cap never hides a problem.
int g_top_rows = 20;

void RenderSessions(const JsonValue* slo) {
  if (slo == nullptr || !slo->is_object()) {
    return;
  }
  const double batched = Num(slo, "sessions_batched");
  const double patched = Num(slo, "sessions_patched");
  const double merged = Num(slo, "sessions_merged");
  if (batched + patched + merged <= 0) {
    return;  // session layer disabled or nobody shared a stream
  }
  std::printf("[sessions]  (stream merging: batched riders + patched catch-ups)\n");
  std::printf("  batched=%.0f  patched=%.0f  merged=%.0f  unmerged patches=%.0f\n", batched,
              patched, merged, patched - merged);
  const JsonValue* streams = Child(slo, "streams");
  if (streams != nullptr && streams->is_array()) {
    int shown = 0;
    size_t suppressed = 0;
    for (const JsonValue& s : streams->array) {
      const double riders = Num(&s, "session_riders");
      const double patch = Num(&s, "session_patch");
      if (riders <= 0 && patch <= 0) {
        continue;
      }
      if (g_top_rows > 0 && shown >= g_top_rows) {
        ++suppressed;
        continue;
      }
      ++shown;
      if (patch > 0) {
        std::printf("  req %4.0f: patch stream for leader %.0f%s\n", Num(&s, "request"),
                    Num(&s, "session_leader"),
                    Num(&s, "session_merged") > 0 ? " (merged)" : "");
      } else {
        std::printf("  req %4.0f: leader carrying %.0f rider(s)\n", Num(&s, "request"), riders);
      }
    }
    if (suppressed > 0) {
      std::printf("  ... %zu more session row(s) (--top 0 shows all)\n", suppressed);
    }
  }
  std::printf("\n");
}

void RenderStreams(const JsonValue* slo) {
  if (slo == nullptr || !slo->is_object()) {
    return;
  }
  const JsonValue* streams = Child(slo, "streams");
  std::printf("[streams]  SLO: %.1f%% of accounted rounds with >= %.0f%% slack\n",
              Num(slo, "slo_target", 0.999) * 100.0, Num(slo, "slack_target", 0.10) * 100.0);
  std::printf("  %4s %6s %6s %7s %9s %9s %6s %7s %9s %6s  %s\n", "req", "rounds", "exempt",
              "within%", "slack p50", "slack p99", "min%", "util%", "jit p99us", "degr%",
              "verdict");
  if (streams == nullptr || !streams->is_array() || streams->array.empty()) {
    std::printf("  (no streams tracked)\n\n");
    return;
  }
  // Worst-first under the row cap: breaches, then thinnest minimum slack.
  std::vector<const JsonValue*> rows;
  rows.reserve(streams->array.size());
  for (const JsonValue& s : streams->array) {
    rows.push_back(&s);
  }
  std::stable_sort(rows.begin(), rows.end(), [](const JsonValue* a, const JsonValue* b) {
    const double breach_a = Num(a, "continuity_met") != 0.0 ? 1.0 : 0.0;
    const double breach_b = Num(b, "continuity_met") != 0.0 ? 1.0 : 0.0;
    if (breach_a != breach_b) {
      return breach_a < breach_b;  // breached streams first
    }
    return Num(a, "min_slack_fraction") < Num(b, "min_slack_fraction");
  });
  const size_t limit = g_top_rows > 0 && static_cast<size_t>(g_top_rows) < rows.size()
                           ? static_cast<size_t>(g_top_rows)
                           : rows.size();
  for (size_t i = 0; i < limit; ++i) {
    const JsonValue& s = *rows[i];
    std::printf("  %4.0f %6.0f %6.0f %7.2f %8.1f%% %8.1f%% %5.1f%% %6.1f%% %9.0f %5.1f%%  %s\n",
                Num(&s, "request"), Num(&s, "rounds_accounted"), Num(&s, "rounds_exempt"),
                Num(&s, "within_budget_fraction") * 100.0, Num(&s, "slack_pct_p50"),
                Num(&s, "slack_pct_p99"), Num(&s, "min_slack_fraction") * 100.0,
                Num(&s, "mean_budget_utilization_pct"), Num(&s, "jitter_usec_p99"),
                Num(&s, "degraded_ratio") * 100.0,
                Num(&s, "continuity_met") != 0.0 ? "ok" : "BREACH");
  }
  if (limit < rows.size()) {
    std::printf("  ... %zu more stream(s), worst shown (--top 0 shows all)\n",
                rows.size() - limit);
  }
  std::printf("  breached streams: %.0f of %zu (rounds total %.0f)\n\n",
              Num(slo, "breached_streams"), streams->array.size(), Num(slo, "rounds_total"));
}

void RenderCriticalPath(const JsonValue* critical_path) {
  const JsonValue* rounds = Child(critical_path, "rounds");
  if (rounds == nullptr || !rounds->is_array() || rounds->array.empty()) {
    return;  // spans disabled, or no round completed
  }
  // Aggregate the per-round attributions: total time charged per stage,
  // how often each stage dominated, and the anomaly count.
  static const char* const kStages[] = {"queue",  "seek",        "transfer", "retry",
                                        "cache",  "merge_patch", "append"};
  double totals[7] = {};
  double dominants[7] = {};
  double anomalies = 0.0;
  for (const JsonValue& round : rounds->array) {
    const JsonValue* stages = Child(&round, "stages");
    const std::string dominant = round.StringOr("dominant", "");
    for (int s = 0; s < 7; ++s) {
      totals[s] += Num(stages, kStages[s]);
      if (dominant == kStages[s]) {
        dominants[s] += 1.0;
      }
    }
    if (Flag(&round, "anomalous")) {
      anomalies += 1.0;
    }
  }
  std::printf("[critical path]  (per-round stage attribution; sums audited to round time)\n");
  std::printf("  rounds=%zu  anomalous=%.0f\n", rounds->array.size(), anomalies);
  std::printf("  %-12s %12s %10s\n", "stage", "total us", "dominant");
  for (int s = 0; s < 7; ++s) {
    if (totals[s] <= 0 && dominants[s] <= 0) {
      continue;
    }
    std::printf("  %-12s %12.0f %10.0f\n", kStages[s], totals[s], dominants[s]);
  }
  // The tail of the table: the most recent rounds with their verdicts.
  const size_t tail = rounds->array.size() > 5 ? rounds->array.size() - 5 : 0;
  std::printf("  %6s %5s %12s %-12s %12s %8s %7s\n", "round", "node", "duration us", "dominant",
              "dominant us", "request", "member");
  for (size_t i = tail; i < rounds->array.size(); ++i) {
    const JsonValue& round = rounds->array[i];
    std::printf("  %6.0f %5.0f %12.0f %-12s %12.0f %8.0f %7.0f%s\n", Num(&round, "round"),
                Num(&round, "node"), Num(&round, "duration_usec"),
                round.StringOr("dominant", "?").c_str(), Num(&round, "dominant_usec"),
                Num(&round, "dominant_request"), Num(&round, "dominant_member"),
                Flag(&round, "anomalous") ? "  ANOMALOUS" : "");
  }
  std::printf("\n");
}

void RenderCluster(const JsonValue* root) {
  const JsonValue* nodes = Child(root, "nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    std::printf("  (no per-node rollup)\n");
    return;
  }
  std::printf("[cluster]  per-node continuity rollup (%zu nodes)\n", nodes->array.size());
  std::printf("  %4s %-11s %7s %8s %7s %8s %8s %7s %9s %6s\n", "node", "state", "rounds",
              "streams", "breach", "batched", "patched", "merged", "cp.rounds", "anom");
  double rounds = 0.0;
  double streams = 0.0;
  double breached = 0.0;
  double cp_rounds = 0.0;
  double cp_anomalies = 0.0;
  int up = 0;
  int down = 0;
  for (const JsonValue& entry : nodes->array) {
    const JsonValue* slo = Child(&entry, "slo");
    const JsonValue* critical_path = Child(&entry, "critical_path");
    const JsonValue* node_streams = Child(slo, "streams");
    const size_t stream_count =
        node_streams != nullptr && node_streams->is_array() ? node_streams->array.size() : 0;
    const std::string state = entry.StringOr("state", "?");
    state == "up" ? ++up : ++down;
    rounds += Num(slo, "rounds_total");
    streams += static_cast<double>(stream_count);
    breached += Num(slo, "breached_streams");
    cp_rounds += Num(critical_path, "rounds");
    cp_anomalies += Num(critical_path, "anomalies");
    std::printf("  %4.0f %-11s %7.0f %8zu %7.0f %8.0f %8.0f %7.0f %9.0f %6.0f\n",
                Num(&entry, "node"), state.c_str(), Num(slo, "rounds_total"), stream_count,
                Num(slo, "breached_streams"), Num(slo, "sessions_batched"),
                Num(slo, "sessions_patched"), Num(slo, "sessions_merged"),
                Num(critical_path, "rounds"), Num(critical_path, "anomalies"));
  }
  std::printf("  rollup: %d up / %d down-or-recovering, %.0f rounds over %.0f streams, "
              "%.0f breached\n",
              up, down, rounds, streams, breached);
  if (cp_rounds > 0) {
    std::printf("  critical path: %.0f attributed rounds, %.0f anomalous\n", cp_rounds,
                cp_anomalies);
  }
  std::printf("\n");
}

int RenderSnapshot(const std::string& text, const char* source) {
  vafs::Result<JsonValue> root = JsonValue::Parse(text);
  if (!root.ok()) {
    std::fprintf(stderr, "vafs_top: cannot parse %s: %s\n", source,
                 root.status().ToString().c_str());
    return 1;
  }
  std::printf("vafs_top — continuity telemetry (%s, snapshot v%.0f)\n", source,
              root->NumberOr("version", 0));
  const JsonValue* trace = Child(&*root, "trace");
  if (trace != nullptr && trace->is_object()) {
    std::printf("trace: %.0f events retained, %.0f dropped\n\n",
                Num(trace, "events_retained"), Num(trace, "events_dropped"));
  } else {
    std::printf("\n");
  }
  // A cluster rollup (bench_cluster's BENCH_cluster_slo.json) nests one
  // SLO report per storage node under its lifecycle state.
  if (root->StringOr("kind", "") == "vafs.slo.cluster") {
    RenderCluster(&*root);
    return 0;
  }
  // A bare SLO report (WriteSloJson's BENCH_*_slo.json) carries no metric
  // tables; render just the session and stream sections from its root.
  if (root->StringOr("kind", "") == "vafs.slo.report") {
    RenderSessions(&*root);
    RenderStreams(&*root);
    return 0;
  }
  const JsonValue* metrics = Child(&*root, "metrics");
  RenderSlots(Child(metrics, "counters"), Child(metrics, "gauges"));
  RenderService(Child(metrics, "counters"), Child(metrics, "histograms"));
  RenderPlanner(Child(metrics, "counters"), Child(metrics, "histograms"));
  RenderCache(Child(metrics, "counters"), Child(metrics, "gauges"));
  RenderRecovery(Child(metrics, "counters"));
  RenderSessions(Child(&*root, "slo"));
  RenderStreams(Child(&*root, "slo"));
  RenderCriticalPath(Child(&*root, "critical_path"));
  return 0;
}

struct DemoFlags {
  int streams = 4;
  double seconds = 8.0;
  double read_fault_rate = 0.0;
  uint64_t seed = 7;
  std::string export_prefix;
};

int RunDemo(const DemoFlags& flags) {
  using namespace vafs;
  FileSystemConfig config;
  config.audio_device = DeviceProfile{TelephoneAudio().BitRate() * 16.0, 16'384};
  // The demo runs the round planner with a shared block cache so the
  // planner and cache tables render with live data.
  config.scheduler.service_order = ServiceOrder::kPlanned;
  config.block_cache.capacity_bytes = 16 << 20;
  config.telemetry.enabled = true;
  config.telemetry.trace_capacity = 1 << 16;
  config.telemetry.spans = true;  // light up the critical-path pane
  config.faults.read_fault_rate = flags.read_fault_rate;
  config.faults.seed = flags.seed;
  MultimediaFileSystem fs(config);

  // One rope per stream, recorded fault-free (only reads are injected),
  // then all played concurrently through admission control.
  std::vector<RopeId> ropes;
  for (int i = 0; i < flags.streams; ++i) {
    AudioSource microphone(TelephoneAudio(), SpeechProfile{},
                           /*seed=*/flags.seed + static_cast<uint64_t>(i));
    Result<MultimediaFileSystem::RecordResult> recorded =
        fs.Record("top", nullptr, &microphone, flags.seconds);
    if (!recorded.ok()) {
      std::fprintf(stderr, "vafs_top: RECORD failed: %s\n",
                   recorded.status().ToString().c_str());
      return 1;
    }
    ropes.push_back(recorded->rope);
  }
  int admitted = 0;
  for (RopeId rope : ropes) {
    Result<RequestId> request =
        fs.Play("top", rope, Medium::kAudio, TimeInterval{0.0, flags.seconds});
    if (request.ok()) {
      ++admitted;
    } else {
      std::fprintf(stderr, "vafs_top: PLAY rejected: %s\n",
                   request.status().ToString().c_str());
    }
  }
  if (admitted == 0) {
    std::fprintf(stderr, "vafs_top: no stream admitted\n");
    return 1;
  }
  fs.RunUntilIdle();

  const int status = RenderSnapshot(fs.TelemetrySnapshotJson(), "demo");

  obs::FlightRecorder* flight = fs.flight_recorder();
  if (flight->triggers() > 0) {
    std::printf("[flight recorder]  %lld trigger(s); first: %s\n%s\n",
                static_cast<long long>(flight->triggers()),
                flight->last_dump_reason().c_str(), flight->last_dump().c_str());
  }

  if (!flags.export_prefix.empty()) {
    const obs::PerfettoExporter perfetto(&fs.trace_log()->events());
    const obs::PrometheusExporter prometheus(fs.metrics(), fs.trace_log());
    const obs::JsonSnapshotExporter snapshot(fs.metrics(), fs.slo_tracker(), fs.trace_log(),
                                             fs.critical_path());
    const obs::FoldedStackExporter folded(&fs.trace_log()->events());
    for (const obs::Exporter* exporter :
         std::initializer_list<const obs::Exporter*>{&perfetto, &prometheus, &snapshot, &folded}) {
      const std::string path = flags.export_prefix + exporter->FileExtension();
      if (Status written = obs::WriteExport(*exporter, path); !written.ok()) {
        std::fprintf(stderr, "vafs_top: %s\n", written.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  DemoFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vafs_top: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--snapshot") {
      snapshot_path = value();
    } else if (arg == "--streams") {
      flags.streams = std::atoi(value());
    } else if (arg == "--seconds") {
      flags.seconds = std::atof(value());
    } else if (arg == "--read-fault-rate") {
      flags.read_fault_rate = std::atof(value());
    } else if (arg == "--seed") {
      flags.seed = static_cast<uint64_t>(std::atoll(value()));
    } else if (arg == "--export") {
      flags.export_prefix = value();
    } else if (arg == "--top") {
      g_top_rows = std::atoi(value());
    } else {
      std::fprintf(stderr,
                   "usage: vafs_top [--snapshot FILE] [--streams N] [--seconds S]\n"
                   "                [--read-fault-rate R] [--seed K] [--export PREFIX]\n"
                   "                [--top N]   (cap table rows, worst first; 0 = all)\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  if (!snapshot_path.empty()) {
    std::ifstream file(snapshot_path);
    if (!file) {
      std::fprintf(stderr, "vafs_top: cannot read %s\n", snapshot_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    return RenderSnapshot(text.str(), snapshot_path.c_str());
  }
  return RunDemo(flags);
}
