#!/usr/bin/env python3
"""CI gate over the round-hot-path scale bench artifact.

Run from a directory containing BENCH_scale_metrics.json (dropped by
bench_scale next to its printed tables). Fails (exit 1) when:

  - determinism breaks across planner modes: the 5k-viewer sweep run
    with incremental round planning disagrees with the from-scratch run
    on any simulated-time result (trace / SLO / audit digest, round
    count, simulated completion, admitted streams). Incremental planning
    is a pure hot-path optimisation -- it must replan byte-identically;
  - determinism breaks across worker counts: any multi-worker waves run
    disagrees with the single-worker reference on trace / SLO / payload
    digests or counters. Wall-clock parallelism must never change
    simulated-time results;
  - a sweep or waves run recorded no rounds, no trace events or no
    admitted streams (the workload did not actually run).

Advisory (reported, never fatal -- wall-clock cost depends on the host):

  - per-(stream x round) wall cost at the largest sweep size should stay
    within 5x of the 1k-viewer run; the flat request table and the
    incremental planner exist to keep that ratio flat;
  - the waves runs should recycle PagePool pages (reuse ratio > 0).
"""

import json
import sys

FAILURES = []

# The per-(stream x round) cost ratio the scale refactor targets.
COST_RATIO_LIMIT = 5.0

SWEEP_DETERMINISM_KEYS = (
    "trace_digest", "slo_digest", "audit_digest",
    "rounds", "trace_events", "completion_usec", "admitted",
    "sessions_batched", "sessions_merged",
)
WAVES_DETERMINISM_KEYS = (
    "trace_digest", "slo_digest", "payload_digest",
    "rounds", "trace_events", "completion_usec", "admitted",
)


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}")


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except FileNotFoundError:
        fail(f"{path}: missing artifact")
    except json.JSONDecodeError as err:
        fail(f"{path}: invalid JSON ({err})")
    return None


def check_alive(path: str, run) -> None:
    tag = f"{run.get('part')} viewers={run.get('viewers')} mode={run.get('mode')}"
    if run.get("rounds", 0) <= 0:
        fail(f"{path}: {tag} executed no rounds")
    if run.get("trace_events", 0) <= 0:
        fail(f"{path}: {tag} produced no trace events")
    if run.get("admitted", 0) <= 0:
        fail(f"{path}: {tag} admitted no streams")


def check_scale(path: str) -> None:
    data = load(path)
    if data is None:
        return
    runs = data.get("scale", {}).get("runs", [])
    if not runs:
        fail(f"{path}: no runs recorded")
        return
    for run in runs:
        check_alive(path, run)

    sweeps = [r for r in runs if r.get("part") == "sweep"]
    waves = [r for r in runs if r.get("part") == "waves"]

    # Hard gate 1: incremental vs from-scratch planning, same population.
    scratch = [r for r in sweeps if r.get("mode") == "from_scratch"]
    if not scratch:
        fail(f"{path}: no from-scratch sweep recorded")
    for ref in scratch:
        twin = next((r for r in sweeps if r.get("mode") == "incremental"
                     and r.get("viewers") == ref.get("viewers")), None)
        if twin is None:
            fail(f"{path}: from-scratch sweep at {ref.get('viewers')} viewers "
                 f"has no incremental twin")
            continue
        for key in SWEEP_DETERMINISM_KEYS:
            if twin.get(key) != ref.get(key):
                fail(f"{path}: viewers={ref.get('viewers')} {key} = "
                     f"{twin.get(key)!r} (incremental) != {ref.get(key)!r} "
                     f"(from scratch) -- incremental planning changed results")

    # Hard gate 2: waves across worker counts.
    if not waves:
        fail(f"{path}: no waves runs recorded")
    else:
        reference = waves[0]
        if reference.get("workers") != 1:
            fail(f"{path}: first waves run must be the single-worker reference")
        for run in waves[1:]:
            for key in WAVES_DETERMINISM_KEYS:
                if run.get(key) != reference.get(key):
                    fail(f"{path}: waves workers={run.get('workers')} {key} = "
                         f"{run.get(key)!r} != single-worker "
                         f"{reference.get(key)!r} (determinism broken)")

    if not FAILURES:
        digests = {r.get("trace_digest") for r in sweeps}
        print(f"ok: {len(sweeps)} sweep run(s) and {len(waves)} waves run(s), "
              f"digests stable across planner modes and worker counts "
              f"({len(digests)} distinct populations)")

    # Advisory: per-(stream x round) wall cost vs the smallest sweep.
    incremental = sorted((r for r in sweeps if r.get("mode") == "incremental"),
                         key=lambda r: r.get("viewers", 0))
    if len(incremental) >= 2:
        base, peak = incremental[0], incremental[-1]
        base_cost = base.get("stream_round_cost_wall_sec", 0.0)
        peak_cost = peak.get("stream_round_cost_wall_sec", 0.0)
        if base_cost > 0.0:
            ratio = peak_cost / base_cost
            line = (f"{peak.get('viewers')} viewers cost {peak_cost:.3f} "
                    f"us/(stream x round) vs {base.get('viewers')} viewers "
                    f"{base_cost:.3f} ({ratio:.2f}x, limit {COST_RATIO_LIMIT}x)")
            if ratio > COST_RATIO_LIMIT:
                print(f"advisory: {line}; hot path is not scaling flat")
            else:
                print(f"ok: {line}")

    # Advisory: the waves runs should be recycling pool pages.
    for run in waves:
        created = run.get("pool_created", 0)
        recycled = run.get("pool_recycled", 0)
        if created + recycled > 0:
            reuse = recycled / (created + recycled)
            print(f"ok: waves workers={run.get('workers')} recycled "
                  f"{recycled} of {created + recycled} page acquisitions "
                  f"({100.0 * reuse:.1f}% reuse)")
        else:
            print(f"advisory: waves workers={run.get('workers')} acquired no "
                  f"pool pages (payload verification off?)")


def main() -> int:
    check_scale("BENCH_scale_metrics.json")
    if FAILURES:
        print(f"{len(FAILURES)} scale gate(s) failed")
        return 1
    print("all scale gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
