#!/usr/bin/env python3
"""Flame-graph renderer for vaFS folded span stacks.

The FoldedStackExporter (and bench artifacts like BENCH_cluster.folded)
emit one "frame;frame;frame usec" line per unique root-to-leaf span path,
exclusive time. This tool renders them without any dependencies:

  vafs_flame.py STACKS.folded              ASCII flame tree on stdout
  vafs_flame.py STACKS.folded --svg OUT    self-contained SVG flame graph
  vafs_flame.py STACKS.folded --top N      widest-N leaf frames table

Frames come from obs::SpanFrameName: round roots ("node 2 round r17"),
waves ("wave 3"), transfers/retries/patches per request and arm. Width is
microseconds of simulated time attributed to that path.
"""

import argparse
import sys


class Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name):
        self.name = name
        self.value = 0  # exclusive usec charged directly to this path
        self.children = {}

    def total(self):
        return self.value + sum(child.total() for child in self.children.values())


def parse_folded(path):
    """Builds the frame trie from a folded-stacks file."""
    root = Node("all")
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.rstrip("\n")
            if not line:
                continue
            stack, _, value = line.rpartition(" ")
            if not stack:
                continue
            try:
                usec = int(value)
            except ValueError:
                continue
            node = root
            for frame in stack.split(";"):
                node = node.children.setdefault(frame, Node(frame))
            node.value += usec
    return root


def render_ascii(root, max_depth, min_pct, out=sys.stdout):
    grand_total = root.total()
    if grand_total <= 0:
        print("(no span samples)", file=out)
        return
    print(f"total attributed: {grand_total} usec", file=out)

    def walk(node, depth, prefix):
        if depth > max_depth:
            return
        children = sorted(node.children.values(), key=lambda c: -c.total())
        for child in children:
            total = child.total()
            pct = 100.0 * total / grand_total
            if pct < min_pct:
                continue
            bar = "#" * max(1, int(pct / 2))
            print(f"{prefix}{child.name:<40s} {total:>12d} us {pct:6.2f}% {bar}", file=out)
            walk(child, depth + 1, prefix + "  ")

    walk(root, 1, "  ")


def render_top(root, count, out=sys.stdout):
    leaves = []

    def walk(node, path):
        here = path + [node.name] if path or node.name != "all" else []
        if node.value > 0:
            leaves.append((node.value, ";".join(here)))
        for child in node.children.values():
            walk(child, here)

    walk(root, [])
    leaves.sort(reverse=True)
    print(f"{'usec':>12s}  path", file=out)
    for value, path in leaves[:count]:
        print(f"{value:>12d}  {path}", file=out)


def frame_color(name):
    """Deterministic warm color from the frame name (FNV-1a hash)."""
    h = 0xCBF29CE484222325
    for ch in name.encode("utf-8"):
        h = ((h ^ ch) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    red = 205 + (h & 0x3F) % 50
    green = 60 + ((h >> 8) & 0xFF) % 130
    blue = (h >> 20) % 60
    return f"rgb({red},{green},{blue})"


def render_svg(root, path, width=1200, frame_height=17):
    grand_total = root.total()
    rects = []

    def depth_of(node):
        if not node.children:
            return 1
        return 1 + max(depth_of(child) for child in node.children.values())

    max_depth = depth_of(root)
    height = (max_depth + 2) * frame_height + 40

    def esc(text):
        return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")

    def layout(node, x, w, depth):
        y = height - 30 - (depth + 1) * frame_height
        label = esc(node.name)
        pct = 100.0 * node.total() / grand_total if grand_total else 0.0
        rects.append(
            f'<g><title>{label}: {node.total()} us ({pct:.2f}%)</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" height="{frame_height - 1}" '
            f'fill="{frame_color(node.name)}" rx="1"/>'
            + (
                f'<text x="{x + 3:.2f}" y="{y + frame_height - 5}" font-size="11" '
                f'font-family="monospace">{label[: max(1, int(w / 7))]}</text>'
                if w > 25
                else ""
            )
            + "</g>"
        )
        cursor = x
        total = node.total()
        for child in sorted(node.children.values(), key=lambda c: c.name):
            child_w = w * child.total() / total if total else 0.0
            layout(child, cursor, child_w, depth + 1)
            cursor += child_w

    if grand_total > 0:
        layout(root, 10, width - 20, 0)
    svg = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}">'
        f'<rect width="100%" height="100%" fill="#f8f8f8"/>'
        f'<text x="10" y="20" font-size="14" font-family="monospace">'
        f"vaFS span flame graph — {grand_total} usec attributed</text>"
        + "".join(rects)
        + "</svg>\n"
    )
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(svg)
    print(f"wrote {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("folded", help="folded-stacks file (.folded)")
    parser.add_argument("--svg", metavar="PATH", help="write an SVG flame graph")
    parser.add_argument("--top", type=int, metavar="N", help="print the widest N paths")
    parser.add_argument("--max-depth", type=int, default=6, help="ASCII tree depth (default 6)")
    parser.add_argument("--min-pct", type=float, default=0.5,
                        help="hide ASCII frames narrower than this percent (default 0.5)")
    args = parser.parse_args()

    root = parse_folded(args.folded)
    if args.svg:
        render_svg(root, args.svg)
    elif args.top:
        render_top(root, args.top)
    else:
        render_ascii(root, args.max_depth, args.min_pct)
    return 0


if __name__ == "__main__":
    sys.exit(main())
