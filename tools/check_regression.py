#!/usr/bin/env python3
"""Bench-regression gate: diff BENCH_*_metrics.json against bench/baselines/.

Run from a bench output directory (CI runs it from build/bench). For every
baseline committed under bench/baselines/, if the matching artifact exists
in the current directory it is compared leaf by leaf:

  - registry dumps (top-level "counters"/"gauges"/"histograms", written by
    WriteMetricsJson) are compared structurally: every baseline metric key
    must still exist with a finite, non-negative value. Their magnitudes
    scale with google-benchmark iteration counts, so values are not banded.
  - bench summary files (the handwritten, deterministic-simulation JSONs)
    are compared with tolerance bands: exact for ints/bools/strings,
    relative tolerance for floats, with per-key overrides below for
    wall-clock measurements that vary across machines.

Artifacts the current job did not produce are skipped, so one invocation
works in every bench job. Baseline files with no band violations pass;
any violation exits 1.

Refreshing baselines after an intentional perf change:

    cd build/bench && <run the benches> && \
        python3 ../../tools/check_regression.py --update
"""

import argparse
import fnmatch
import json
import math
import os
import shutil
import sys

BASELINE_DIR = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "bench", "baselines"))

# Relative tolerance for float leaves in deterministic summary files. The
# simulation is bit-deterministic, so this only absorbs formatting noise
# and deliberate small drift; real regressions move far more.
DEFAULT_REL_TOL = 0.05

# Per-key band overrides, matched with fnmatch against "file:dotted.path".
# Modes: "skip" (never compared), ("rel", X) relative band, ("min_ratio", X)
# ratchet — current must be >= baseline * X.
OVERRIDES = [
    # Host-dependent wall-clock measurements: never gate on them.
    ("*hardware_concurrency", "skip"),
    ("*wall_sec", "skip"),
    ("*rounds_per_sec", "skip"),
    ("*speedup*", "skip"),
    # Simulated round times: a tighter band than default, these are the
    # headline perf numbers the planner work protects.
    ("BENCH_roundplan_metrics.json:roundplan.*_mean_round_usec", ("rel", 0.02)),
    # Ratchets: sharing/scaling wins must not silently erode.
    ("BENCH_roundplan_metrics.json:shared_title.achieved_n", ("min_ratio", 1.0)),
    ("BENCH_cluster_metrics.json:cluster.scaling_4x_vs_1x", ("min_ratio", 0.9)),
]

FAILURES = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}")


def load(path: str):
    with open(path, "r", encoding="utf-8") as fp:
        return json.load(fp)


def leaves(value, prefix=""):
    """Flattens nested dicts/lists into {dotted.path: leaf}."""
    out = {}
    if isinstance(value, dict):
        for key, child in value.items():
            out.update(leaves(child, f"{prefix}.{key}" if prefix else key))
    elif isinstance(value, list):
        for index, child in enumerate(value):
            out.update(leaves(child, f"{prefix}[{index}]"))
    else:
        out[prefix] = value
    return out


def band_for(name: str, path: str):
    full = f"{name}:{path}"
    for pattern, mode in OVERRIDES:
        if fnmatch.fnmatch(full, pattern) or fnmatch.fnmatch(path, pattern):
            return mode
    return None


def is_registry_dump(data) -> bool:
    return isinstance(data, dict) and "counters" in data and "histograms" in data


def compare_structure(name: str, baseline, current) -> None:
    base_leaves = leaves(baseline)
    cur_leaves = leaves(current)
    missing = [path for path in base_leaves if path not in cur_leaves]
    # Histogram bucket lists shrink/grow with sample counts; only gate on
    # instrument presence, not bucket-level paths.
    missing = [path for path in missing if "buckets" not in path]
    for path in missing:
        fail(f"{name}: metric {path} vanished (present in baseline)")
    bad = [path for path, value in cur_leaves.items()
           if isinstance(value, (int, float)) and not isinstance(value, bool)
           and (not math.isfinite(value) or value < 0)]
    for path in bad:
        fail(f"{name}: metric {path} is {cur_leaves[path]!r} (non-finite or negative)")
    if not missing and not bad:
        print(f"ok: {name}: structure intact ({len(base_leaves)} baseline leaves)")


def compare_banded(name: str, baseline, current) -> None:
    base_leaves = leaves(baseline)
    cur_leaves = leaves(current)
    checked = 0
    for path, base_value in sorted(base_leaves.items()):
        mode = band_for(name, path)
        if mode == "skip":
            continue
        if path not in cur_leaves:
            fail(f"{name}: {path} vanished (baseline {base_value!r})")
            continue
        cur_value = cur_leaves[path]
        checked += 1
        if isinstance(mode, tuple) and mode[0] == "min_ratio":
            floor = base_value * mode[1]
            if cur_value < floor:
                fail(f"{name}: {path} = {cur_value!r} below ratchet floor {floor!r} "
                     f"(baseline {base_value!r})")
            continue
        if isinstance(base_value, bool) or isinstance(base_value, str) or base_value is None:
            if cur_value != base_value:
                fail(f"{name}: {path} = {cur_value!r}, baseline {base_value!r}")
            continue
        rel = mode[1] if isinstance(mode, tuple) and mode[0] == "rel" else DEFAULT_REL_TOL
        if isinstance(base_value, int) and isinstance(cur_value, int):
            # Deterministic integer counters: allow the band scaled to the
            # magnitude, but never less than an exact match for zeros.
            limit = max(abs(base_value) * rel, 0)
            if abs(cur_value - base_value) > limit:
                fail(f"{name}: {path} = {cur_value}, baseline {base_value} "
                     f"(band +/-{limit:.1f})")
            continue
        limit = max(abs(float(base_value)) * rel, 1e-9)
        if abs(float(cur_value) - float(base_value)) > limit:
            fail(f"{name}: {path} = {cur_value}, baseline {base_value} (band +/-{limit:.3f})")
    new_keys = sorted(set(cur_leaves) - set(base_leaves))
    if new_keys:
        print(f"note: {name}: {len(new_keys)} new metric(s) not in baseline "
              f"(run --update to adopt): {', '.join(new_keys[:5])}"
              + ("..." if len(new_keys) > 5 else ""))
    print(f"ok: {name}: {checked} leaves within bands")


def update_baselines(baseline_dir: str) -> int:
    os.makedirs(baseline_dir, exist_ok=True)
    copied = 0
    for name in sorted(os.listdir(".")):
        if fnmatch.fnmatch(name, "BENCH_*_metrics.json"):
            shutil.copyfile(name, os.path.join(baseline_dir, name))
            print(f"baseline updated: {name}")
            copied += 1
    if copied == 0:
        print("no BENCH_*_metrics.json in the current directory")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baselines", default=BASELINE_DIR,
                        help=f"baseline directory (default {BASELINE_DIR})")
    parser.add_argument("--update", action="store_true",
                        help="copy current artifacts into the baseline directory")
    args = parser.parse_args()

    if args.update:
        return update_baselines(args.baselines)

    if not os.path.isdir(args.baselines):
        print(f"FAIL: baseline directory {args.baselines} missing")
        return 1
    compared = 0
    for name in sorted(os.listdir(args.baselines)):
        if not fnmatch.fnmatch(name, "BENCH_*_metrics.json"):
            continue
        if not os.path.exists(name):
            print(f"note: {name} not produced by this job, skipping")
            continue
        try:
            baseline = load(os.path.join(args.baselines, name))
            current = load(name)
        except json.JSONDecodeError as err:
            fail(f"{name}: invalid JSON ({err})")
            continue
        compared += 1
        if is_registry_dump(baseline):
            compare_structure(name, baseline, current)
        else:
            compare_banded(name, baseline, current)
    if compared == 0:
        print("note: no artifacts overlapped the baseline set; nothing gated")
    if FAILURES:
        print(f"{len(FAILURES)} regression gate(s) failed")
        return 1
    print(f"all regression gates passed ({compared} artifact(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
