#!/usr/bin/env python3
"""CI gate over the round-planner bench artifact.

Run from a directory containing BENCH_roundplan_metrics.json (dropped by
bench_roundplan next to its printed tables). Fails (exit 1) when:

  - planned rounds are not strictly faster than naive per-block rounds on
    the 8-title library workload (the planner's whole point), or adding
    the cache makes planned rounds slower than naive;
  - any planned-mode stream glitched or finished a fault-free run with
    less than 100% of its rounds inside the Eq. 11 budget;
  - cache-aware admission failed to admit more viewers of one title than
    the Eq. 17 ceiling n_max, or any of those viewers breached its SLO.
"""

import json
import sys

FAILURES = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}")


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except FileNotFoundError:
        fail(f"{path}: missing artifact")
    except json.JSONDecodeError as err:
        fail(f"{path}: invalid JSON ({err})")
    return None


def check_roundplan(path: str) -> None:
    data = load(path)
    if data is None:
        return
    plan = data.get("roundplan", {})
    naive = plan.get("naive_mean_round_usec", 0.0)
    planned = plan.get("planned_mean_round_usec", 0.0)
    planned_cache = plan.get("planned_cache_mean_round_usec", 0.0)
    if naive <= 0.0 or planned <= 0.0:
        fail(f"{path}: missing round-time measurements")
        return
    if planned >= naive:
        fail(f"{path}: planned rounds ({planned:.1f} us) not faster than naive ({naive:.1f} us)")
    else:
        print(f"ok: planned mean round {planned:.1f} us < naive {naive:.1f} us "
              f"({100.0 * (1.0 - planned / naive):.1f}% saved)")
    if planned_cache >= naive:
        fail(f"{path}: planned+cache rounds ({planned_cache:.1f} us) not faster than naive")
    for mode in ("planned", "planned_cache"):
        if plan.get(f"{mode}_violations", 1) != 0:
            fail(f"{path}: {mode} streams glitched in a fault-free run")
        within = plan.get(f"{mode}_within_budget_min", 0.0)
        if within < 1.0:
            fail(f"{path}: {mode} worst stream only {within:.4f} of rounds within budget")

    shared = data.get("shared_title", {})
    n_max = shared.get("n_max", 0)
    achieved = shared.get("achieved_n", 0)
    if achieved <= n_max:
        fail(f"{path}: cache-aware admission achieved n = {achieved}, not past n_max = {n_max}")
    else:
        print(f"ok: shared title achieved n = {achieved} > n_max = {n_max} "
              f"({shared.get('cache_admitted', 0)} cache-admitted)")
    if shared.get("cache_admitted", 0) <= 0:
        fail(f"{path}: no viewer was admitted through the cache path")
    if shared.get("breaches", 1) != 0:
        fail(f"{path}: {shared.get('breaches')} shared-title viewers breached their SLO")
    within = shared.get("within_budget_min", 0.0)
    if within < 1.0:
        fail(f"{path}: shared-title worst stream only {within:.4f} of rounds within budget")


def main() -> int:
    check_roundplan("BENCH_roundplan_metrics.json")
    if FAILURES:
        print(f"{len(FAILURES)} round-planner gate(s) failed")
        return 1
    print("all round-planner gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
