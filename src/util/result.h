// Error handling for vaFS public interfaces.
//
// File-system operations fail for predictable, recoverable reasons
// (admission rejected, disk full, bad rope ID). Those are values, not
// exceptions, so every fallible API returns Result<T> / Status.

#ifndef VAFS_SRC_UTIL_RESULT_H_
#define VAFS_SRC_UTIL_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace vafs {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // strand / rope / request ID unknown
  kPermissionDenied,  // rope access-rights check failed
  kAdmissionRejected, // admission control cannot accept the request
  kNoSpace,           // allocator could not satisfy the scattering constraint
  kFailedPrecondition,// operation not valid in the current state
  kAlreadyExists,     // ID collision
  kOutOfRange,        // interval outside strand/rope bounds
  kInternal,          // invariant violation; indicates a vaFS bug
  kIoError,           // transient device error; a retry may succeed
  kBadSector,         // latent media defect; fails until relocated
};

// Human-readable name for an ErrorCode, for logs and test failure messages.
const char* ErrorCodeName(ErrorCode code);

// A status: either OK or an error code with a message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// A value or a Status error. Minimal absl::StatusOr analogue.
template <typename T>
class Result {
 public:
  // Intentionally implicit: lets `return value;` and `return status;` both work.
  Result(T value) : state_(std::move(value)) {}
  Result(Status status) : state_(std::move(status)) {
    assert(!std::get<Status>(state_).ok() && "Result constructed from OK status without value");
  }
  Result(ErrorCode code, std::string message) : state_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(state_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(state_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace vafs

#endif  // VAFS_SRC_UTIL_RESULT_H_
