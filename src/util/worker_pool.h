// Fixed-size worker pool for wall-clock parallelism inside one simulated
// round.
//
// The simulator's timing semantics are single-threaded and deterministic;
// the pool exists only to spend real CPU faster on work that is already
// independent in simulated time — the per-member requests of one DiskArray
// wave, chunked CRC-64 sweeps, exporter serialization. Two execution
// shapes are offered:
//
//  - RunAll: a parallel-for with a join barrier. The call returns only
//    when every task has finished, so the caller can merge per-task
//    results in a fixed order afterwards; determinism is the merger's
//    job, not the scheduler's.
//  - Submit/Drain: fire-and-forget background tasks (off-round-path
//    serialization), joined explicitly before their outputs are read.
//
// A pool of one worker never spawns a thread: tasks run inline on the
// caller in index order, giving the exact sequential reference semantics
// that multi-worker runs are tested against (tests/wallclock_test.cc).
// The pool size comes from the caller or the VAFS_WORKERS environment
// knob (see README).

#ifndef VAFS_SRC_UTIL_WORKER_POOL_H_
#define VAFS_SRC_UTIL_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vafs {

class WorkerPool {
 public:
  using Task = std::function<void()>;

  // A pool of `workers` threads; values < 1 clamp to 1, and a one-worker
  // pool runs everything inline (no threads are created at all).
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return workers_; }

  // Runs every task and returns when all of them have completed (the
  // wave barrier). Tasks must be independent: they may not submit to or
  // drain this pool, and any shared state they touch must be their own.
  void RunAll(std::vector<Task> tasks);

  // Enqueues one background task (no join). Pair with Drain before
  // reading anything the task writes.
  void Submit(Task task);

  // Blocks until every task submitted or started so far has finished.
  void Drain();

  // VAFS_WORKERS environment value, clamped to [1, 64]; 1 when unset or
  // unparsable. The deterministic default: parallelism is opt-in.
  static int WorkersFromEnv();

 private:
  void WorkerLoop();

  const int workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::deque<Task> queue_;
  int64_t in_flight_ = 0;  // queued + currently executing tasks
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace vafs

#endif  // VAFS_SRC_UTIL_WORKER_POOL_H_
