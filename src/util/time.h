// Time representations used across vaFS.
//
// The analytic continuity model (src/core) works in real-valued seconds,
// because the paper's equations are algebraic relations between durations.
// The discrete-event simulator (src/sim) works in integer microseconds so
// event ordering is exact and runs are reproducible. This header provides
// both representations and the conversions between them.

#ifndef VAFS_SRC_UTIL_TIME_H_
#define VAFS_SRC_UTIL_TIME_H_

#include <cstdint>
#include <cmath>

namespace vafs {

// Simulated time in integer microseconds since the start of a run.
using SimTime = int64_t;

// Durations in integer microseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kUsecPerSec = 1'000'000;

// Converts a real-valued duration in seconds to integer microseconds,
// rounding up so that a consumer never observes data arriving earlier than
// the model predicts (conservative for continuity checks).
inline SimDuration SecondsToUsec(double seconds) {
  return static_cast<SimDuration>(std::ceil(seconds * static_cast<double>(kUsecPerSec)));
}

// Converts integer microseconds to real-valued seconds.
inline double UsecToSeconds(SimDuration usec) {
  return static_cast<double>(usec) / static_cast<double>(kUsecPerSec);
}

inline SimDuration MillisToUsec(double millis) { return SecondsToUsec(millis / 1e3); }

}  // namespace vafs

#endif  // VAFS_SRC_UTIL_TIME_H_
