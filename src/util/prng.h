// Deterministic pseudo-random number generation.
//
// Every stochastic element of vaFS (synthetic media content, silence
// profiles, workload generators) draws from an explicitly seeded generator
// so that tests and benchmarks are exactly reproducible. SplitMix64 is used
// for seeding and xoshiro256** for the stream; both are tiny, fast and have
// no global state.

#ifndef VAFS_SRC_UTIL_PRNG_H_
#define VAFS_SRC_UTIL_PRNG_H_

#include <cstdint>

namespace vafs {

// SplitMix64 step: used to expand a single seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna. Deterministic for a given seed.
class Prng {
 public:
  explicit Prng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Lemire's multiply-shift
  // with rejection: `Next() % bound` over-weights the low residues by up
  // to bound/2^64, so draws landing in the biased low fringe of the
  // 128-bit product are redrawn instead. Unbiased for every bound, at one
  // multiply per accepted draw (the rejection loop runs with probability
  // < bound/2^64).
  uint64_t NextBelow(uint64_t bound) {
    uint64_t x = Next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;  // 2^64 mod bound
      while (low < threshold) {
        x = Next();
        m = static_cast<unsigned __int128>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive. hi must be >= lo. The span is
  // computed in uint64 space: hi - lo + 1 overflows int64 whenever the
  // interval covers more than half the domain, and the full
  // [INT64_MIN, INT64_MAX] interval wraps the span to 0 — which here
  // means "all 2^64 values", served by a raw draw.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    const uint64_t offset = span == 0 ? Next() : NextBelow(span);
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + offset);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace vafs

#endif  // VAFS_SRC_UTIL_PRNG_H_
