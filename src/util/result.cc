#include "src/util/result.h"

namespace vafs {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kAdmissionRejected:
      return "ADMISSION_REJECTED";
    case ErrorCode::kNoSpace:
      return "NO_SPACE";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kBadSector:
      return "BAD_SECTOR";
  }
  return "UNKNOWN";
}

}  // namespace vafs
