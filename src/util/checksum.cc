#include "src/util/checksum.h"

#include <algorithm>
#include <array>
#include <vector>

#include "src/util/worker_pool.h"

namespace vafs {

namespace {

// Reflected ECMA-182 polynomial.
constexpr uint64_t kPoly = 0xC96C'5795'D787'0F42ULL;

std::array<uint64_t, 256> BuildTable() {
  std::array<uint64_t, 256> table{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[static_cast<size_t>(i)] = crc;
  }
  return table;
}

const std::array<uint64_t, 256>& Table() {
  static const std::array<uint64_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint64_t Crc64Update(uint64_t state, std::span<const uint8_t> bytes) {
  const std::array<uint64_t, 256>& table = Table();
  for (uint8_t byte : bytes) {
    state = table[(state ^ byte) & 0xFF] ^ (state >> 8);
  }
  return state;
}

uint64_t Crc64(std::span<const uint8_t> bytes) {
  return Crc64Finish(Crc64Update(kCrc64Init, bytes));
}

namespace {

// y = M * x over GF(2): column i of M is xored in when bit i of x is set.
uint64_t Gf2MatrixTimes(const uint64_t* matrix, uint64_t vector) {
  uint64_t sum = 0;
  for (int i = 0; vector != 0; vector >>= 1, ++i) {
    if (vector & 1) {
      sum ^= matrix[i];
    }
  }
  return sum;
}

void Gf2MatrixSquare(uint64_t* square, const uint64_t* matrix) {
  for (int n = 0; n < 64; ++n) {
    square[n] = Gf2MatrixTimes(matrix, matrix[n]);
  }
}

}  // namespace

uint64_t Crc64Combine(uint64_t crc1, uint64_t crc2, uint64_t len2) {
  // For a reflected CRC with init == xorout, feeding len2 zero bytes into
  // the register is a linear operator Z^len2, and
  // crc(A||B) = Z^len2(crc(A)) ^ crc(B) — the conditioning terms cancel.
  // Z is built by repeated squaring of the one-zero-bit operator.
  if (len2 == 0) {
    return crc1;
  }
  uint64_t even[64];  // operator for 2^(2k+1) zero bits
  uint64_t odd[64];   // operator for 2^(2k) zero bits
  // One zero bit: s -> (s >> 1) ^ (poly if s & 1).
  odd[0] = kPoly;
  uint64_t row = 1;
  for (int n = 1; n < 64; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);  // 2 zero bits
  Gf2MatrixSquare(odd, even);  // 4 zero bits
  // Walk len2 (in bytes): each squaring doubles the zero-run the operator
  // applies, starting from 8 bits = 1 byte.
  do {
    Gf2MatrixSquare(even, odd);
    if (len2 & 1) {
      crc1 = Gf2MatrixTimes(even, crc1);
    }
    len2 >>= 1;
    if (len2 == 0) {
      break;
    }
    Gf2MatrixSquare(odd, even);
    if (len2 & 1) {
      crc1 = Gf2MatrixTimes(odd, crc1);
    }
    len2 >>= 1;
  } while (len2 != 0);
  return crc1 ^ crc2;
}

uint64_t Crc64Parallel(std::span<const uint8_t> bytes, WorkerPool* pool) {
  // Below this size the combine's matrix work costs more than it saves.
  constexpr size_t kMinParallelBytes = 1 << 16;
  if (pool == nullptr || pool->workers() <= 1 || bytes.size() < kMinParallelBytes) {
    return Crc64(bytes);
  }
  const size_t chunks = std::min<size_t>(static_cast<size_t>(pool->workers()),
                                         bytes.size() / (kMinParallelBytes / 2));
  const size_t chunk_bytes = (bytes.size() + chunks - 1) / chunks;
  std::vector<std::span<const uint8_t>> spans;
  std::vector<uint64_t> partial(chunks, 0);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_bytes;
    const size_t length = std::min(chunk_bytes, bytes.size() - begin);
    spans.push_back(bytes.subspan(begin, length));
  }
  std::vector<WorkerPool::Task> tasks;
  tasks.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    tasks.push_back([&spans, &partial, c] { partial[c] = Crc64(spans[c]); });
  }
  pool->RunAll(std::move(tasks));
  uint64_t crc = partial[0];
  for (size_t c = 1; c < chunks; ++c) {
    crc = Crc64Combine(crc, partial[c], spans[c].size());
  }
  return crc;
}

}  // namespace vafs
