#include "src/util/checksum.h"

#include <array>

namespace vafs {

namespace {

// Reflected ECMA-182 polynomial.
constexpr uint64_t kPoly = 0xC96C'5795'D787'0F42ULL;

std::array<uint64_t, 256> BuildTable() {
  std::array<uint64_t, 256> table{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[static_cast<size_t>(i)] = crc;
  }
  return table;
}

const std::array<uint64_t, 256>& Table() {
  static const std::array<uint64_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint64_t Crc64Update(uint64_t state, std::span<const uint8_t> bytes) {
  const std::array<uint64_t, 256>& table = Table();
  for (uint8_t byte : bytes) {
    state = table[(state ^ byte) & 0xFF] ^ (state >> 8);
  }
  return state;
}

uint64_t Crc64(std::span<const uint8_t> bytes) {
  return Crc64Finish(Crc64Update(kCrc64Init, bytes));
}

}  // namespace vafs
