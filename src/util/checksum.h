// CRC-64 (ECMA-182 polynomial) for on-disk metadata integrity.
//
// The crash-consistency machinery stamps every durable metadata record —
// root sectors, catalog blobs, journal entries, strand Header Blocks —
// with a checksum, so recovery can tell a record that fully reached the
// platter from the prefix a power cut left behind. CRC-64 keeps the
// false-accept probability negligible for the record sizes involved while
// staying dependency-free and byte-order stable (records serialize
// little-endian, and the CRC is computed over those bytes).

#ifndef VAFS_SRC_UTIL_CHECKSUM_H_
#define VAFS_SRC_UTIL_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace vafs {

// CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout all-ones) of the
// given bytes.
uint64_t Crc64(std::span<const uint8_t> bytes);

// Incremental form: feed `bytes` into a running checksum. Start with
// kCrc64Init and finish with Crc64Finish.
inline constexpr uint64_t kCrc64Init = ~0ULL;
uint64_t Crc64Update(uint64_t state, std::span<const uint8_t> bytes);
inline uint64_t Crc64Finish(uint64_t state) { return ~state; }

}  // namespace vafs

#endif  // VAFS_SRC_UTIL_CHECKSUM_H_
