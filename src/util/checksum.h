// CRC-64 (ECMA-182 polynomial) for on-disk metadata integrity.
//
// The crash-consistency machinery stamps every durable metadata record —
// root sectors, catalog blobs, journal entries, strand Header Blocks —
// with a checksum, so recovery can tell a record that fully reached the
// platter from the prefix a power cut left behind. CRC-64 keeps the
// false-accept probability negligible for the record sizes involved while
// staying dependency-free and byte-order stable (records serialize
// little-endian, and the CRC is computed over those bytes).

#ifndef VAFS_SRC_UTIL_CHECKSUM_H_
#define VAFS_SRC_UTIL_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace vafs {

class WorkerPool;

// CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout all-ones) of the
// given bytes.
uint64_t Crc64(std::span<const uint8_t> bytes);

// Checksum of the concatenation A||B from the checksums of its halves:
// Crc64(AB) = Crc64Combine(Crc64(A), Crc64(B), |B|). The zero-extension
// operator is applied by GF(2) matrix squaring, so combining costs
// O(log len2) matrix products independent of the data size. This is what
// makes the checksum parallelizable: chunk CRCs computed independently
// fold into the exact serial value.
uint64_t Crc64Combine(uint64_t crc1, uint64_t crc2, uint64_t len2);

// Crc64 over `bytes`, with chunks checksummed on `pool` workers and folded
// with Crc64Combine. Bit-identical to the serial Crc64 for every input and
// worker count; small inputs (or a null/single-worker pool) take the
// serial path untouched. Used to keep large catalog read-back verification
// off the round path (src/vafs/persistence.cc).
uint64_t Crc64Parallel(std::span<const uint8_t> bytes, WorkerPool* pool);

// Incremental form: feed `bytes` into a running checksum. Start with
// kCrc64Init and finish with Crc64Finish.
inline constexpr uint64_t kCrc64Init = ~0ULL;
uint64_t Crc64Update(uint64_t state, std::span<const uint8_t> bytes);
inline uint64_t Crc64Finish(uint64_t state) { return ~state; }

}  // namespace vafs

#endif  // VAFS_SRC_UTIL_CHECKSUM_H_
