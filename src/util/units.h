// Unit helpers for data sizes and rates.
//
// The paper's model mixes bits (frame sizes, transfer rates) and disk
// sectors (storage units). All vaFS interfaces carry explicit unit names in
// identifiers; these helpers keep conversion sites readable.

#ifndef VAFS_SRC_UTIL_UNITS_H_
#define VAFS_SRC_UTIL_UNITS_H_

#include <cstdint>

namespace vafs {

inline constexpr int64_t kBitsPerByte = 8;

inline constexpr int64_t KiB(int64_t n) { return n * 1024; }
inline constexpr int64_t MiB(int64_t n) { return n * 1024 * 1024; }
inline constexpr int64_t GiB(int64_t n) { return n * 1024 * 1024 * 1024; }

inline constexpr int64_t BytesToBits(int64_t bytes) { return bytes * kBitsPerByte; }

// Rounds bits up to whole bytes.
inline constexpr int64_t BitsToBytesCeil(int64_t bits) {
  return (bits + kBitsPerByte - 1) / kBitsPerByte;
}

// Integer ceiling division for non-negative operands.
inline constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace vafs

#endif  // VAFS_SRC_UTIL_UNITS_H_
