#include "src/util/worker_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace vafs {

WorkerPool::WorkerPool(int workers) : workers_(std::max(workers, 1)) {
  if (workers_ == 1) {
    return;  // inline execution; nothing to spawn
  }
  threads_.reserve(static_cast<size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        work_done_.notify_all();
      }
    }
  }
}

void WorkerPool::RunAll(std::vector<Task> tasks) {
  if (workers_ == 1 || tasks.size() <= 1) {
    for (Task& task : tasks) {
      task();
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    in_flight_ += static_cast<int64_t>(tasks.size());
    for (Task& task : tasks) {
      queue_.push_back(std::move(task));
    }
  }
  work_ready_.notify_all();
  Drain();
}

void WorkerPool::Submit(Task task) {
  if (workers_ == 1) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++in_flight_;
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void WorkerPool::Drain() {
  if (workers_ == 1) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int WorkerPool::WorkersFromEnv() {
  const char* env = std::getenv("VAFS_WORKERS");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  const long value = std::strtol(env, nullptr, 10);
  return static_cast<int>(std::clamp<long>(value, 1, 64));
}

}  // namespace vafs
