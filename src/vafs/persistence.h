// On-disk image: persistence and crash recovery for the whole file system.
//
// The durable state of vaFS is (a) the strands' data and index blocks,
// already on disk in the 3-level layout of Section 3.5, and (b) the
// catalog that finds them: strand metadata with Header Block locations,
// rope structures, and text-file extents. SaveImage serializes the catalog
// into a blob, places it on disk, and stamps a fixed *root sector* (the
// disk's last sector) with a pointer to it. LoadImage starts from the root
// sector, reads the catalog, then walks every strand's HB -> SBs -> PBs
// from the platters to rebuild its index — exercising the on-disk index
// as the real source of truth — and reconstructs the allocator's free map
// from the recovered extents.

#ifndef VAFS_SRC_VAFS_PERSISTENCE_H_
#define VAFS_SRC_VAFS_PERSISTENCE_H_

#include <cstdint>
#include <memory>

#include "src/disk/disk.h"
#include "src/msm/strand_store.h"
#include "src/rope/rope_server.h"
#include "src/util/result.h"
#include "src/vafs/text_files.h"

namespace vafs {

// Where a saved image's catalog lives (needed to free it before resaving).
struct ImageReceipt {
  Extent catalog_extent;
  bool valid = false;
};

// Serializes the catalog of `store`, `ropes` and (optionally) `texts` and
// writes it to the store's disk. If `previous` is valid, its catalog
// extent is freed first (the root sector stays reserved across saves).
Result<ImageReceipt> SaveImage(StrandStore* store, const RopeServer* ropes,
                               const TextFileService* texts,
                               const ImageReceipt* previous = nullptr);

// A recovered file system: fresh layers over the same disk.
struct LoadedImage {
  std::unique_ptr<StrandStore> store;
  std::unique_ptr<RopeServer> ropes;
  std::unique_ptr<TextFileService> texts;
  ImageReceipt receipt;
  int64_t strands_recovered = 0;
  int64_t ropes_recovered = 0;
  int64_t text_files_recovered = 0;
};

// Rebuilds the file system state from the root sector of `disk`. The disk
// must outlive the returned layers.
Result<LoadedImage> LoadImage(Disk* disk);

}  // namespace vafs

#endif  // VAFS_SRC_VAFS_PERSISTENCE_H_
