// On-disk image: persistence and crash recovery for the whole file system.
//
// The durable state of vaFS is (a) the strands' data and index blocks,
// already on disk in the 3-level layout of Section 3.5, and (b) the
// catalog that finds them: strand metadata with Header Block locations,
// rope structures, and text-file extents.
//
// Crash consistency is built from three mechanisms:
//
//  1. A/B root commits. The disk's last two sectors hold alternating,
//     generation-stamped, CRC-checksummed root records. A checkpoint
//     writes the new catalog to fresh extents, verifies it by read-back,
//     flips the root into the *other* slot, and only then frees the old
//     catalog. A power cut at any write boundary leaves at least one root
//     pointing at a complete catalog.
//  2. A bounded intent journal. Between checkpoints, every metadata
//     mutation (strand finished/deleted, rope edited/deleted, text file
//     written/removed) appends a CRC-stamped redo record to a reserved
//     journal extent. Recovery replays intents on top of the catalog;
//     entries are invalidated by generation stamp, so a checkpoint
//     obsoletes the journal without erasing it.
//  3. An fsck-style scavenger. When no root yields a readable catalog,
//     Fsck rebuilds the strand catalog by scanning the disk for strand
//     Header Block signatures, and cross-checks every recovered extent
//     against the allocator for leaks and double claims.

#ifndef VAFS_SRC_VAFS_PERSISTENCE_H_
#define VAFS_SRC_VAFS_PERSISTENCE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/disk/disk.h"
#include "src/msm/strand_store.h"
#include "src/rope/rope_server.h"
#include "src/util/result.h"
#include "src/vafs/text_files.h"

namespace vafs {

class WorkerPool;

// Sectors reserved for the intent journal at the first checkpoint. Bounded:
// when the journal fills, mutations simply stop being journaled and the
// next checkpoint captures them (losing only the redo optimization, never
// consistency).
inline constexpr int64_t kJournalSectors = 64;

// Where a saved image's bookkeeping lives. `generation` counts checkpoints
// and selects the root slot (generation % 2) the image committed to.
struct ImageReceipt {
  Extent catalog_extent;
  Extent journal_extent;
  int64_t generation = 0;
  bool valid = false;
};

// Serializes the catalog of `store`, `ropes` and (optionally) `texts` and
// commits it with the A/B root protocol: write-new, verify by read-back,
// flip the root, then free the old catalog. On any failure the previous
// image remains the committed one and everything allocated by this call is
// released. A worker pool (optional) spreads the catalog-blob CRC-64 over
// chunk tasks (src/util/checksum.h, Crc64Parallel) — bit-identical to the
// serial checksum, just off the caller's critical path.
Result<ImageReceipt> SaveImage(StrandStore* store, const RopeServer* ropes,
                               const TextFileService* texts,
                               const ImageReceipt* previous = nullptr,
                               WorkerPool* pool = nullptr);

// A recovered file system: fresh layers over the same disk.
struct LoadedImage {
  std::unique_ptr<StrandStore> store;
  std::unique_ptr<RopeServer> ropes;
  std::unique_ptr<TextFileService> texts;
  ImageReceipt receipt;
  int64_t strands_recovered = 0;
  int64_t ropes_recovered = 0;
  int64_t text_files_recovered = 0;
  // Journal replay outcome, so the caller can resume appending where
  // recovery stopped.
  int64_t journal_entries_replayed = 0;
  int64_t journal_resume_offset_sectors = 0;
  int64_t journal_resume_sequence = 0;
};

// Rebuilds the file system state from the newest valid root of `disk`,
// then replays any journaled intents of that generation. The disk must
// outlive the returned layers. Returns kNotFound if neither root slot
// carries the image magic (pristine disk), kInvalidArgument if roots exist
// but no catalog is readable (Fsck territory). The optional pool
// parallelizes the catalog checksum verification, as in SaveImage.
Result<LoadedImage> LoadImage(Disk* disk, WorkerPool* pool = nullptr);

// --- Intent journal ----------------------------------------------------------

// The kind of metadata mutation a journal entry redoes.
enum class Intent : int64_t {
  kStrandAdded = 1,
  kStrandDeleted = 2,
  kRopeUpsert = 3,
  kRopeDeleted = 4,
  kTextUpsert = 5,
  kTextRemoved = 6,
};

// Appends CRC-stamped, generation-bound redo records into the reserved
// journal extent. One instance lives per committed checkpoint generation;
// Checkpoint() replaces it (the new generation stamp invalidates all prior
// entries without touching them on disk).
class IntentJournal {
 public:
  // `disk` is not owned. `extent` is the reserved journal region;
  // `generation` stamps every entry with the base image it applies on.
  IntentJournal(Disk* disk, Extent extent, int64_t generation);

  // Continues appending after recovery replayed a prefix of the journal.
  void ResumeAt(int64_t offset_sectors, int64_t next_sequence);

  // Appends one intent record (sector-aligned). Returns kNoSpace when the
  // reserved extent is full — the caller stops journaling until the next
  // checkpoint.
  Status Append(Intent intent, std::span<const uint8_t> payload);

  int64_t generation() const { return generation_; }
  int64_t offset_sectors() const { return offset_sectors_; }
  int64_t next_sequence() const { return next_sequence_; }

 private:
  Disk* disk_;
  Extent extent_;
  int64_t generation_;
  int64_t offset_sectors_ = 0;
  int64_t next_sequence_ = 0;
};

// Payload encoders for the journal, shared with replay. The strand payload
// is the catalog-entry wire format; the rope payload is the catalog rope
// wire format; the text payload is name + size + extents.
std::vector<uint8_t> EncodeStrandIntent(const StrandStore::CatalogEntry& entry);
std::vector<uint8_t> EncodeStrandDeleteIntent(StrandId id);
std::vector<uint8_t> EncodeRopeIntent(const Rope& rope);
std::vector<uint8_t> EncodeRopeDeleteIntent(RopeId id);
std::vector<uint8_t> EncodeTextIntent(const TextFileService::ExportedFile& file);
std::vector<uint8_t> EncodeTextRemoveIntent(const std::string& name);

// --- Offline scavenger (fsck) ------------------------------------------------

enum class FsckFindingKind {
  kCorruptRoot,          // a root slot failed magic/CRC/read
  kCorruptCatalog,       // a root pointed at an unreadable catalog
  kTornJournalEntry,     // the journal ended in a partial record
  kOrphanStrand,         // a strand recovered by HB scan, not via any catalog
  kUnreadableStrand,     // an HB signature whose index walk failed
  kLeakedExtent,         // allocated per the allocator, reachable by nothing
  kDoublyClaimedExtent,  // two owners claim overlapping sectors
};

const char* FsckFindingKindName(FsckFindingKind kind);

struct FsckFinding {
  FsckFindingKind kind = FsckFindingKind::kCorruptRoot;
  Extent extent;       // the sectors implicated (may be empty)
  std::string detail;  // human-readable context
};

// The scavenger's result: a best-effort recovered file system plus the
// findings that describe what was wrong.
struct FsckReport {
  std::vector<FsckFinding> findings;
  bool used_scavenger = false;  // true: catalog lost, strands came from HB scan
  std::unique_ptr<StrandStore> store;
  std::unique_ptr<RopeServer> ropes;
  std::unique_ptr<TextFileService> texts;
  ImageReceipt receipt;  // invalid when used_scavenger (no committed image)
  int64_t strands_recovered = 0;

  // No structural damage: every extent is exactly-once claimed and both
  // roots were intact.
  bool Consistent() const { return findings.empty(); }
};

// Offline check-and-repair. Loads the newest valid root when one exists
// (reporting corruption findings and cross-checking every extent claim);
// falls back to scanning the disk for strand Header Block signatures when
// no catalog is readable. Always returns a usable (possibly empty) set of
// layers.
Result<FsckReport> Fsck(Disk* disk);

}  // namespace vafs

#endif  // VAFS_SRC_VAFS_PERSISTENCE_H_
