// Conventional text files stored in the scattering gaps.
//
// Section 3: "A common file server can integrate the functions of both a
// conventional text file server and a multimedia file server by employing
// constrained block allocation for media strands, and using the gaps
// between successive blocks of a media strand to store text files." Text
// files have no placement constraint, so they allocate first-fit — which
// lands them precisely in the gaps constrained allocation leaves behind.

#ifndef VAFS_SRC_VAFS_TEXT_FILES_H_
#define VAFS_SRC_VAFS_TEXT_FILES_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/disk/disk.h"
#include "src/layout/allocator.h"
#include "src/util/result.h"

namespace vafs {

class TextFileService {
 public:
  // Neither pointer is owned.
  TextFileService(Disk* disk, ConstrainedAllocator* allocator);

  // Creates or overwrites a named file. Data may be split across several
  // extents when no single free run is large enough.
  Status Write(const std::string& name, std::span<const uint8_t> data);

  Result<std::vector<uint8_t>> Read(const std::string& name) const;

  Status Remove(const std::string& name);

  bool Exists(const std::string& name) const { return files_.count(name) != 0; }

  int64_t file_count() const { return static_cast<int64_t>(files_.size()); }

  // Number of extents a file is split across (fragmentation diagnostic).
  Result<int64_t> ExtentCount(const std::string& name) const;

  // --- Persistence support ----------------------------------------------------

  struct ExportedFile {
    std::string name;
    int64_t size_bytes = 0;
    std::vector<Extent> extents;
  };
  std::vector<ExportedFile> ExportAll() const;

  // Re-registers a recovered file whose extents the loader has already
  // marked allocated.
  Status Adopt(const std::string& name, int64_t size_bytes, std::vector<Extent> extents);

  // Observes file mutations (write or removal), so the crash-consistency
  // layer can journal intents between checkpoints. Adoption during
  // recovery does not notify.
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void OnFileWritten(const ExportedFile& file) = 0;
    virtual void OnFileRemoved(const std::string& name) = 0;
  };
  void set_listener(Listener* listener) { listener_ = listener; }

 private:
  struct FileRecord {
    int64_t size_bytes = 0;
    std::vector<Extent> extents;
  };

  void FreeFile(const FileRecord& record);

  Disk* disk_;
  ConstrainedAllocator* allocator_;
  Listener* listener_ = nullptr;
  std::map<std::string, FileRecord> files_;
};

}  // namespace vafs

#endif  // VAFS_SRC_VAFS_TEXT_FILES_H_
