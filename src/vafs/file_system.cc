#include "src/vafs/file_system.h"

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/obs/export.h"

namespace vafs {

namespace {

// The display device matching a medium.
const DeviceProfile& DeviceFor(const FileSystemConfig& config, Medium medium) {
  return medium == Medium::kVideo ? config.video_device : config.audio_device;
}

}  // namespace

MultimediaFileSystem::Telemetry::Telemetry(const TelemetryOptions& options)
    : log(options.trace_capacity),
      metrics_sink(&registry),
      slo(options.slo),
      flight(options.flight),
      critical_path(obs::CriticalPathOptions{&tee}) {
  tee.Add(&log);
  tee.Add(&metrics_sink);
  tee.Add(&slo);
  tee.Add(&flight);
  slo.set_breach_handler([this](uint64_t /*request*/, const std::string& description) {
    flight.TriggerDump(description);
  });
}

MultimediaFileSystem::MultimediaFileSystem(const FileSystemConfig& config) : config_(config) {
  if (config_.scheduler.worker_pool == nullptr) {
    worker_pool_ = std::make_unique<WorkerPool>(WorkerPool::WorkersFromEnv());
    config_.scheduler.worker_pool = worker_pool_.get();
  }
  if (config_.telemetry.enabled) {
    telemetry_ = std::make_unique<Telemetry>(config_.telemetry);
    if (config_.scheduler.trace != nullptr) {
      telemetry_->tee.Add(config_.scheduler.trace);  // user sink rides along
    }
    if (config_.telemetry.spans) {
      // The analyzer sits between the scheduler and the tee: every event
      // passes through unchanged and each round's spans are folded into a
      // kCriticalPath verdict emitted right after its kRoundEnd.
      config_.scheduler.emit_spans = true;
      config_.scheduler.node = config_.telemetry.node_id;
      config_.scheduler.trace = &telemetry_->critical_path;
    } else {
      config_.scheduler.trace = &telemetry_->tee;
    }
  }
  DiskOptions disk_options{config.retain_data, config.faults};
  disk_options.image_path = config.disk_image_path;
  disk_options.image_truncate = config.disk_image_truncate;
  if (disk_options.image_path.empty()) {
    if (const char* env_image = std::getenv("VAFS_DISK_IMAGE"); env_image != nullptr) {
      disk_options.image_path = env_image;
    }
  }
  disk_ = std::make_unique<Disk>(config.disk, disk_options);
  store_ = std::make_unique<StrandStore>(disk_.get());
  if (config_.block_cache.capacity_bytes > 0) {
    block_cache_ = std::make_unique<BlockCache>(config_.block_cache);
    config_.scheduler.block_cache = block_cache_.get();
    store_->set_block_cache(block_cache_.get());
  }
  if (telemetry_ != nullptr) {
    disk_->set_trace_sink(&telemetry_->tee);
    store_->set_trace_sink(&telemetry_->tee);
  }

  const StorageTimings storage = StorageTimings::FromDiskModel(disk_->model());
  continuity_ =
      std::make_unique<ContinuityModel>(storage, config.video_device, config.concurrency);

  double avg_scattering = config.assumed_avg_scattering_sec;
  if (avg_scattering < 0) {
    // Conservative default: assume strands realize their full scattering
    // budget; admission then under-promises rather than glitching.
    avg_scattering = storage.avg_rotational_latency_sec;
    Result<StrandPlacement> placement =
        PlacementFor(MediaProfile{Medium::kVideo, 30.0, 96'000});
    if (placement.ok()) {
      avg_scattering = placement->max_scattering_sec;
    }
  }
  if (avg_scattering > storage.max_access_gap_sec) {
    avg_scattering = storage.max_access_gap_sec;
  }
  admission_ = std::make_unique<AdmissionControl>(storage, avg_scattering);
  scheduler_ =
      std::make_unique<ServiceScheduler>(store_.get(), &simulator_, *admission_, config_.scheduler);
  if (config_.sessions.enabled && telemetry_ != nullptr) {
    // The manager observes stream progress from the tee and emits session
    // events back into it; registered last so its nested emissions reach
    // the other sinks after the event that triggered them.
    session_manager_ = std::make_unique<SessionManager>(scheduler_.get(), &simulator_,
                                                        block_cache_.get(), &telemetry_->tee,
                                                        config_.sessions);
    telemetry_->tee.Add(session_manager_.get());
  }
  ropes_ = std::make_unique<RopeServer>(store_.get());
  text_files_ = std::make_unique<TextFileService>(disk_.get(), &store_->allocator());
  InstallListeners();
}

void MultimediaFileSystem::InstallListeners() {
  store_->set_catalog_listener(&journal_hook_);
  ropes_->set_mutation_listener(&journal_hook_);
  text_files_->set_listener(&journal_hook_);
}

void MultimediaFileSystem::Journal(Intent intent, const std::vector<uint8_t>& payload) {
  if (journal_ == nullptr || journal_overflowed_) {
    return;  // no committed generation yet, or the journal filled up
  }
  if (Status status = journal_->Append(intent, payload); !status.ok()) {
    // Stop journaling; the next checkpoint captures everything anyway.
    journal_overflowed_ = true;
  }
}

void MultimediaFileSystem::JournalHook::OnStrandAdded(const StrandStore::CatalogEntry& entry) {
  fs_->Journal(Intent::kStrandAdded, EncodeStrandIntent(entry));
}

void MultimediaFileSystem::JournalHook::OnStrandDeleted(StrandId id) {
  fs_->Journal(Intent::kStrandDeleted, EncodeStrandDeleteIntent(id));
}

void MultimediaFileSystem::JournalHook::OnRopeChanged(const Rope& rope) {
  fs_->Journal(Intent::kRopeUpsert, EncodeRopeIntent(rope));
}

void MultimediaFileSystem::JournalHook::OnRopeDeleted(RopeId id) {
  fs_->Journal(Intent::kRopeDeleted, EncodeRopeDeleteIntent(id));
}

void MultimediaFileSystem::JournalHook::OnFileWritten(const TextFileService::ExportedFile& file) {
  fs_->Journal(Intent::kTextUpsert, EncodeTextIntent(file));
}

void MultimediaFileSystem::JournalHook::OnFileRemoved(const std::string& name) {
  fs_->Journal(Intent::kTextRemoved, EncodeTextRemoveIntent(name));
}

Result<StrandPlacement> MultimediaFileSystem::PlacementFor(const MediaProfile& media) const {
  const StorageTimings storage = StorageTimings::FromDiskModel(disk_->model());
  ContinuityModel model(storage, DeviceFor(config_, media.medium), config_.concurrency);
  return model.DerivePlacement(config_.architecture, media);
}

Result<MultimediaFileSystem::RecordResult> MultimediaFileSystem::Record(const std::string& user,
                                                                        VideoSource* video,
                                                                        AudioSource* audio,
                                                                        double duration_sec) {
  if (video == nullptr && audio == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "RECORD needs at least one medium");
  }
  if (duration_sec <= 0) {
    return Status(ErrorCode::kInvalidArgument, "RECORD needs a positive duration");
  }
  RecordResult result;
  if (video != nullptr) {
    Result<StrandPlacement> placement = PlacementFor(video->profile());
    if (!placement.ok()) {
      return placement.status();
    }
    Result<RecordingResult> recorded = RecordVideo(store_.get(), video, *placement, duration_sec);
    if (!recorded.ok()) {
      return recorded.status();
    }
    result.video = *recorded;
    result.video_strand = recorded->strand;
  }
  if (audio != nullptr) {
    Result<StrandPlacement> placement = PlacementFor(audio->profile());
    if (!placement.ok()) {
      return placement.status();
    }
    Result<RecordingResult> recorded =
        RecordAudio(store_.get(), audio, silence_detector_, *placement, duration_sec);
    if (!recorded.ok()) {
      return recorded.status();
    }
    result.audio = *recorded;
    result.audio_strand = recorded->strand;
  }
  Result<RopeId> rope = ropes_->CreateRope(user, result.video_strand, result.audio_strand);
  if (!rope.ok()) {
    return rope.status();
  }
  result.rope = *rope;
  return result;
}

Result<RequestId> MultimediaFileSystem::StartTimedRecording(const MediaProfile& media,
                                                            double duration_sec) {
  Result<StrandPlacement> placement = PlacementFor(media);
  if (!placement.ok()) {
    return placement.status();
  }
  const double units = duration_sec * media.units_per_sec;
  RecordingRequest request;
  request.profile = media;
  request.placement = *placement;
  request.total_blocks = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(units / static_cast<double>(placement->granularity))));
  return scheduler_->SubmitRecording(request);
}

Result<PlaybackRequest> MultimediaFileSystem::BuildPlayback(const std::string& user, RopeId rope,
                                                            Medium medium, TimeInterval interval,
                                                            double rate_multiplier) {
  Result<const Rope*> rope_ptr = ropes_->Find(rope);
  if (!rope_ptr.ok()) {
    return rope_ptr.status();
  }
  const Track& track = (*rope_ptr)->TrackFor(medium);
  if (track.rate <= 0) {
    return Status(ErrorCode::kNotFound,
                  std::string("rope has no ") + MediumName(medium) + " component");
  }
  Result<std::vector<PrimaryEntry>> blocks = ropes_->ResolveBlocks(user, rope, medium, interval);
  if (!blocks.ok()) {
    return blocks.status();
  }

  // Per-unit size: taken from the first referenced strand (every strand in
  // a track shares rate and granularity; unit size follows the medium).
  int64_t bits_per_unit = 8;
  for (const TrackSegment& segment : track.segments) {
    if (!segment.IsGap()) {
      Result<const Strand*> strand = store_->Get(segment.strand);
      if (strand.ok()) {
        bits_per_unit = (*strand)->info().bits_per_unit;
        break;
      }
    }
  }

  PlaybackRequest request;
  request.blocks = std::move(*blocks);
  request.block_duration =
      SecondsToUsec(static_cast<double>(track.granularity) / track.rate);
  request.spec =
      RequestSpec{MediaProfile{medium, track.rate, bits_per_unit}, track.granularity};
  request.rate_multiplier = rate_multiplier;
  return request;
}

Result<RequestId> MultimediaFileSystem::Play(const std::string& user, RopeId rope, Medium medium,
                                             TimeInterval interval, double rate_multiplier) {
  Result<PlaybackRequest> request = BuildPlayback(user, rope, medium, interval, rate_multiplier);
  if (!request.ok()) {
    return request.status();
  }
  return scheduler_->SubmitPlayback(std::move(*request));
}

Result<SessionTicket> MultimediaFileSystem::OpenSession(const std::string& user, RopeId rope,
                                                        Medium medium, TimeInterval interval) {
  if (session_manager_ == nullptr) {
    return Status(ErrorCode::kInvalidArgument,
                  "session layer disabled (FileSystemConfig::sessions.enabled "
                  "requires telemetry)");
  }
  Result<PlaybackRequest> request = BuildPlayback(user, rope, medium, interval, 1.0);
  if (!request.ok()) {
    return request.status();
  }
  // The title block the interval begins at: non-zero for mid-title viewers
  // (failover resumption), so the session layer can translate between this
  // viewer's block space and a live leader's.
  int64_t start_block = 0;
  if (interval.start_sec > 0.0) {
    if (Result<const Rope*> rope_ptr = ropes_->Find(rope); rope_ptr.ok()) {
      const Track& track = (*rope_ptr)->TrackFor(medium);
      if (track.rate > 0 && track.granularity > 0) {
        start_block = track.UnitsAt(interval.start_sec) / track.granularity;
      }
    }
  }
  return session_manager_->Open(rope, std::move(*request), start_block);
}

Status MultimediaFileSystem::Checkpoint() {
  Result<ImageReceipt> receipt =
      SaveImage(store_.get(), ropes_.get(), text_files_.get(),
                image_receipt_.valid ? &image_receipt_ : nullptr,
                config_.scheduler.worker_pool);
  if (!receipt.ok()) {
    // A failed save committed nothing: the previous receipt (and journal
    // generation) remain the live ones.
    return receipt.status();
  }
  image_receipt_ = *receipt;
  // The bumped generation implicitly invalidates all prior journal entries;
  // start appending a fresh generation from the top of the extent.
  journal_ = std::make_unique<IntentJournal>(disk_.get(), image_receipt_.journal_extent,
                                             image_receipt_.generation);
  journal_overflowed_ = false;
  // A durable checkpoint implies a durable backing image: msync the mmap'd
  // sector file (no-op for the in-memory store) so remounting the image
  // file after a host crash sees exactly the checkpointed state.
  disk_->SyncImage();
  return Status::Ok();
}

Status MultimediaFileSystem::Recover() {
  if (disk_->powered_off()) {
    disk_->PowerCycle();
  }

  int64_t journal_resume_offset = 0;
  int64_t journal_resume_sequence = 0;
  Result<LoadedImage> image = LoadImage(disk_.get(), config_.scheduler.worker_pool);
  if (image.ok()) {
    store_ = std::move(image->store);
    ropes_ = std::move(image->ropes);
    text_files_ = std::move(image->texts);
    image_receipt_ = image->receipt;
    journal_resume_offset = image->journal_resume_offset_sectors;
    journal_resume_sequence = image->journal_resume_sequence;
  } else if (image.status().code() == ErrorCode::kNotFound) {
    return image.status();  // pristine disk: nothing to recover
  } else {
    // Roots exist but no catalog is readable: scavenge.
    Result<FsckReport> report = Fsck(disk_.get());
    if (!report.ok()) {
      return report.status();
    }
    store_ = std::move(report->store);
    ropes_ = std::move(report->ropes);
    text_files_ = std::move(report->texts);
    image_receipt_ = report->receipt;
  }

  // The scheduler's in-flight requests died with the crash; drop the
  // simulator events still holding the dead scheduler and rebuild it over
  // the recovered store, returning every admission slot.
  simulator_.Clear();
  scheduler_ =
      std::make_unique<ServiceScheduler>(store_.get(), &simulator_, *admission_,
                                         config_.scheduler);
  if (block_cache_ != nullptr) {
    // The rebuilt store must keep invalidating, and nothing cached before
    // the crash is trustworthy against the recovered image.
    store_->set_block_cache(block_cache_.get());
    block_cache_->InvalidateAll();
  }
  if (telemetry_ != nullptr) {
    // The rebuilt store starts with no sink; the disk survived the crash
    // with its sink intact. Re-wire so post-recovery telemetry keeps
    // flowing into the same pipeline.
    store_->set_trace_sink(&telemetry_->tee);
    disk_->set_trace_sink(&telemetry_->tee);
  }
  if (session_manager_ != nullptr) {
    // Same tee registration, fresh scheduler: every leader and patch died
    // with the crash, so the manager drops its groups wholesale.
    session_manager_->Rebind(scheduler_.get());
  }
  InstallListeners();
  if (image_receipt_.valid) {
    journal_ = std::make_unique<IntentJournal>(disk_.get(), image_receipt_.journal_extent,
                                               image_receipt_.generation);
    journal_->ResumeAt(journal_resume_offset, journal_resume_sequence);
  } else {
    journal_.reset();  // scavenged state has no committed generation
  }
  journal_overflowed_ = false;
  return Status::Ok();
}

obs::MetricsRegistry* MultimediaFileSystem::metrics() {
  return telemetry_ != nullptr ? &telemetry_->registry : nullptr;
}

obs::TraceLog* MultimediaFileSystem::trace_log() {
  return telemetry_ != nullptr ? &telemetry_->log : nullptr;
}

obs::SloTracker* MultimediaFileSystem::slo_tracker() {
  return telemetry_ != nullptr ? &telemetry_->slo : nullptr;
}

obs::FlightRecorder* MultimediaFileSystem::flight_recorder() {
  return telemetry_ != nullptr ? &telemetry_->flight : nullptr;
}

obs::CriticalPathAnalyzer* MultimediaFileSystem::critical_path() {
  return telemetry_ != nullptr ? &telemetry_->critical_path : nullptr;
}

const obs::CriticalPathAnalyzer* MultimediaFileSystem::critical_path() const {
  return telemetry_ != nullptr ? &telemetry_->critical_path : nullptr;
}

obs::SloReport MultimediaFileSystem::SloSnapshot() const {
  return telemetry_ != nullptr ? telemetry_->slo.Report() : obs::SloReport{};
}

std::string MultimediaFileSystem::TelemetrySnapshotJson() const {
  if (telemetry_ == nullptr) {
    return "null";
  }
  return obs::JsonSnapshotExporter(&telemetry_->registry, &telemetry_->slo, &telemetry_->log,
                                   &telemetry_->critical_path)
      .Export();
}

Result<std::vector<std::vector<uint8_t>>> MultimediaFileSystem::ReadRopeBlocks(
    const std::string& user, RopeId rope, Medium medium, TimeInterval interval) {
  Result<std::vector<PrimaryEntry>> blocks = ropes_->ResolveBlocks(user, rope, medium, interval);
  if (!blocks.ok()) {
    return blocks.status();
  }
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(blocks->size());
  for (const PrimaryEntry& entry : *blocks) {
    if (entry.IsSilence()) {
      payloads.emplace_back();
      continue;
    }
    std::vector<uint8_t> payload;
    Result<SimDuration> read = disk_->Read(entry.sector, entry.sector_count, &payload);
    if (!read.ok()) {
      return read.status();
    }
    payloads.push_back(std::move(payload));
  }
  return payloads;
}

}  // namespace vafs
