#include "src/vafs/text_files.h"

#include <algorithm>

#include "src/util/units.h"

namespace vafs {

TextFileService::TextFileService(Disk* disk, ConstrainedAllocator* allocator)
    : disk_(disk), allocator_(allocator) {}

void TextFileService::FreeFile(const FileRecord& record) {
  for (const Extent& extent : record.extents) {
    (void)allocator_->Free(extent);
  }
}

Status TextFileService::Write(const std::string& name, std::span<const uint8_t> data) {
  if (name.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty file name");
  }
  const int64_t sector_bytes = disk_->bytes_per_sector();
  int64_t sectors_needed = std::max<int64_t>(
      1, CeilDiv(static_cast<int64_t>(data.size()), sector_bytes));

  // Gather extents first; only then replace any existing file, so a
  // failed write leaves the old contents intact.
  std::vector<Extent> extents;
  auto rollback = [&] {
    for (const Extent& extent : extents) {
      (void)allocator_->Free(extent);
    }
  };
  int64_t remaining = sectors_needed;
  while (remaining > 0) {
    // Try the largest chunk that still fits in some free run; halve on
    // failure so files pack into whatever gaps exist.
    int64_t chunk = remaining;
    Result<Extent> extent = allocator_->Allocate(chunk);
    while (!extent.ok() && chunk > 1) {
      chunk = (chunk + 1) / 2;
      extent = allocator_->Allocate(chunk);
    }
    if (!extent.ok()) {
      rollback();
      return Status(ErrorCode::kNoSpace, "disk full writing " + name);
    }
    extents.push_back(*extent);
    remaining -= extent->sectors;
  }

  // Write payload across the extents, padding the tail sector.
  int64_t offset = 0;
  const int64_t total_bytes = static_cast<int64_t>(data.size());
  for (const Extent& extent : extents) {
    const int64_t extent_bytes = extent.sectors * sector_bytes;
    std::vector<uint8_t> chunk(static_cast<size_t>(extent_bytes), 0);
    const int64_t copy = std::min(extent_bytes, total_bytes - offset);
    if (copy > 0) {
      std::copy(data.begin() + offset, data.begin() + offset + copy, chunk.begin());
    }
    if (Result<SimDuration> written = disk_->Write(extent.start_sector, extent.sectors, chunk);
        !written.ok()) {
      rollback();
      return written.status();
    }
    offset += extent_bytes;
  }

  auto it = files_.find(name);
  if (it != files_.end()) {
    FreeFile(it->second);
  }
  FileRecord& record = files_[name] = FileRecord{total_bytes, std::move(extents)};
  if (listener_ != nullptr) {
    listener_->OnFileWritten(ExportedFile{name, record.size_bytes, record.extents});
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> TextFileService::Read(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status(ErrorCode::kNotFound, name);
  }
  std::vector<uint8_t> data;
  data.reserve(static_cast<size_t>(it->second.size_bytes));
  for (const Extent& extent : it->second.extents) {
    std::vector<uint8_t> chunk;
    if (Result<SimDuration> read = disk_->Read(extent.start_sector, extent.sectors, &chunk);
        !read.ok()) {
      return read.status();
    }
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  data.resize(static_cast<size_t>(it->second.size_bytes));
  return data;
}

Status TextFileService::Remove(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status(ErrorCode::kNotFound, name);
  }
  FreeFile(it->second);
  files_.erase(it);
  if (listener_ != nullptr) {
    listener_->OnFileRemoved(name);
  }
  return Status::Ok();
}

std::vector<TextFileService::ExportedFile> TextFileService::ExportAll() const {
  std::vector<ExportedFile> files;
  for (const auto& [name, record] : files_) {
    files.push_back(ExportedFile{name, record.size_bytes, record.extents});
  }
  return files;
}

Status TextFileService::Adopt(const std::string& name, int64_t size_bytes,
                              std::vector<Extent> extents) {
  if (files_.count(name) != 0) {
    return Status(ErrorCode::kAlreadyExists, name);
  }
  files_[name] = FileRecord{size_bytes, std::move(extents)};
  return Status::Ok();
}

Result<int64_t> TextFileService::ExtentCount(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status(ErrorCode::kNotFound, name);
  }
  return static_cast<int64_t>(it->second.extents.size());
}

}  // namespace vafs
