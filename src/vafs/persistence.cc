#include "src/vafs/persistence.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "src/layout/strand_index.h"
#include "src/obs/trace.h"
#include "src/util/checksum.h"
#include "src/util/units.h"

namespace vafs {

namespace {

constexpr uint64_t kImageMagic = 0x5641'4653'3030'3031ULL;    // catalog blob, "VAFS0001"
constexpr uint64_t kRootMagic = 0x3230'3030'5346'4156ULL;     // "VAFS0002" little-endian
constexpr uint64_t kJournalMagic = 0x3230'4E4A'5346'4156ULL;  // "VAFSJN02" little-endian

// Root record layout, one per slot (sector-padded):
//   [0,8)   magic
//   [8,16)  crc64 over [16,72)
//   [16,24) generation
//   [24,32) catalog start sector
//   [32,40) catalog sectors
//   [40,48) catalog logical bytes
//   [48,56) crc64 of the catalog blob
//   [56,64) journal start sector
//   [64,72) journal sectors
constexpr size_t kRootRecordBytes = 72;

// Journal entry layout (sector-aligned):
//   [0,8)   magic
//   [8,16)  crc64 over [16, 48 + payload)
//   [16,24) generation of the base image the entry redoes on
//   [24,32) sequence number, dense from 0 per generation
//   [32,40) intent type
//   [40,48) payload bytes
//   [48,..) payload
constexpr int64_t kJournalHeaderBytes = 48;

const char* IntentName(Intent intent) {
  switch (intent) {
    case Intent::kStrandAdded:
      return "strand_added";
    case Intent::kStrandDeleted:
      return "strand_deleted";
    case Intent::kRopeUpsert:
      return "rope_upsert";
    case Intent::kRopeDeleted:
      return "rope_deleted";
    case Intent::kTextUpsert:
      return "text_upsert";
    case Intent::kTextRemoved:
      return "text_removed";
  }
  return "unknown";
}

void Emit(Disk* disk, obs::TraceEventKind kind, int64_t round, int64_t sector, int64_t blocks,
          const std::string& detail) {
  obs::TraceSink* sink = disk->trace_sink();
  if (sink == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.kind = kind;
  event.round = round;
  event.sector = sector;
  event.blocks = blocks;
  event.detail = detail;
  sink->OnEvent(event);
}

uint64_t ReadU64(const uint8_t* bytes) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

void WriteU64(uint8_t* bytes, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

// --- Byte-stream plumbing ----------------------------------------------------

class ByteWriter {
 public:
  void I64(int64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(static_cast<uint64_t>(value) >> (8 * i)));
    }
  }
  void F64(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    I64(static_cast<int64_t>(bits));
  }
  void Str(const std::string& value) {
    I64(static_cast<int64_t>(value.size()));
    bytes_.insert(bytes_.end(), value.begin(), value.end());
  }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }

  int64_t I64() {
    if (offset_ + 8 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(bytes_[offset_ + static_cast<size_t>(i)]) << (8 * i);
    }
    offset_ += 8;
    return static_cast<int64_t>(value);
  }
  double F64() {
    const int64_t raw = I64();
    uint64_t bits = static_cast<uint64_t>(raw);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  std::string Str() {
    const int64_t length = I64();
    if (length < 0 || offset_ + static_cast<size_t>(length) > bytes_.size()) {
      ok_ = false;
      return "";
    }
    std::string value(bytes_.begin() + static_cast<ptrdiff_t>(offset_),
                      bytes_.begin() + static_cast<ptrdiff_t>(offset_ + static_cast<size_t>(length)));
    offset_ += static_cast<size_t>(length);
    return value;
  }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t offset_ = 0;
  bool ok_ = true;
};

void WriteTrack(ByteWriter* out, const Track& track) {
  out->F64(track.rate);
  out->I64(track.granularity);
  out->I64(static_cast<int64_t>(track.segments.size()));
  for (const TrackSegment& segment : track.segments) {
    out->I64(static_cast<int64_t>(segment.strand));
    out->I64(segment.start_unit);
    out->I64(segment.unit_count);
  }
}

bool ReadTrack(ByteReader* in, Track* track) {
  track->rate = in->F64();
  track->granularity = in->I64();
  const int64_t segments = in->I64();
  for (int64_t i = 0; i < segments && in->ok(); ++i) {
    TrackSegment segment;
    segment.strand = static_cast<StrandId>(in->I64());
    segment.start_unit = in->I64();
    segment.unit_count = in->I64();
    track->segments.push_back(segment);
  }
  return in->ok();
}

// --- Shared wire formats (catalog blob and journal payloads) -----------------

void WriteCatalogEntry(ByteWriter* out, const StrandStore::CatalogEntry& entry) {
  out->I64(static_cast<int64_t>(entry.info.id));
  out->I64(entry.info.medium == Medium::kVideo ? 0 : 1);
  out->F64(entry.info.recording_rate);
  out->I64(entry.info.bits_per_unit);
  out->I64(entry.info.granularity);
  out->I64(entry.info.unit_count);
  out->F64(entry.info.min_scattering_sec);
  out->F64(entry.info.max_scattering_sec);
  out->I64(entry.header_block.start_sector);
  out->I64(entry.header_block.sectors);
}

bool ReadCatalogEntry(ByteReader* in, StrandInfo* info, Extent* header_block) {
  info->id = static_cast<StrandId>(in->I64());
  info->medium = in->I64() == 0 ? Medium::kVideo : Medium::kAudio;
  info->recording_rate = in->F64();
  info->bits_per_unit = in->I64();
  info->granularity = in->I64();
  info->unit_count = in->I64();
  info->min_scattering_sec = in->F64();
  info->max_scattering_sec = in->F64();
  header_block->start_sector = in->I64();
  header_block->sectors = in->I64();
  return in->ok();
}

void WriteRope(ByteWriter* out, const Rope& rope) {
  out->I64(static_cast<int64_t>(rope.id()));
  out->Str(rope.creator());
  out->I64(static_cast<int64_t>(rope.access().play_users.size()));
  for (const std::string& user : rope.access().play_users) {
    out->Str(user);
  }
  out->I64(static_cast<int64_t>(rope.access().edit_users.size()));
  for (const std::string& user : rope.access().edit_users) {
    out->Str(user);
  }
  WriteTrack(out, rope.video());
  WriteTrack(out, rope.audio());
  out->I64(static_cast<int64_t>(rope.triggers().size()));
  for (const Trigger& trigger : rope.triggers()) {
    out->F64(trigger.at_sec);
    out->Str(trigger.text);
  }
}

std::unique_ptr<Rope> ReadRope(ByteReader* in) {
  const RopeId id = static_cast<RopeId>(in->I64());
  const std::string creator = in->Str();
  auto rope = std::make_unique<Rope>(id, creator);
  const int64_t play_users = in->I64();
  for (int64_t u = 0; u < play_users && in->ok(); ++u) {
    rope->access().play_users.push_back(in->Str());
  }
  const int64_t edit_users = in->I64();
  for (int64_t u = 0; u < edit_users && in->ok(); ++u) {
    rope->access().edit_users.push_back(in->Str());
  }
  if (!ReadTrack(in, &rope->video()) || !ReadTrack(in, &rope->audio())) {
    return nullptr;
  }
  const int64_t triggers = in->I64();
  for (int64_t t = 0; t < triggers && in->ok(); ++t) {
    Trigger trigger;
    trigger.at_sec = in->F64();
    trigger.text = in->Str();
    rope->triggers().push_back(std::move(trigger));
  }
  return in->ok() ? std::move(rope) : nullptr;
}

void WriteTextFile(ByteWriter* out, const TextFileService::ExportedFile& file) {
  out->Str(file.name);
  out->I64(file.size_bytes);
  out->I64(static_cast<int64_t>(file.extents.size()));
  for (const Extent& extent : file.extents) {
    out->I64(extent.start_sector);
    out->I64(extent.sectors);
  }
}

bool ReadTextFile(ByteReader* in, TextFileService::ExportedFile* file) {
  file->name = in->Str();
  file->size_bytes = in->I64();
  const int64_t extent_count = in->I64();
  for (int64_t e = 0; e < extent_count && in->ok(); ++e) {
    Extent extent;
    extent.start_sector = in->I64();
    extent.sectors = in->I64();
    file->extents.push_back(extent);
  }
  return in->ok();
}

std::vector<uint8_t> SerializeCatalog(const StrandStore* store, const RopeServer* ropes,
                                      const TextFileService* texts) {
  ByteWriter out;
  out.I64(static_cast<int64_t>(kImageMagic));

  const auto catalog = store->ExportCatalog();
  out.I64(static_cast<int64_t>(catalog.size()));
  for (const StrandStore::CatalogEntry& entry : catalog) {
    WriteCatalogEntry(&out, entry);
  }

  const auto all_ropes = ropes->AllRopes();
  out.I64(static_cast<int64_t>(all_ropes.size()));
  for (const Rope* rope : all_ropes) {
    WriteRope(&out, *rope);
  }

  const auto files = texts != nullptr ? texts->ExportAll()
                                      : std::vector<TextFileService::ExportedFile>{};
  out.I64(static_cast<int64_t>(files.size()));
  for (const TextFileService::ExportedFile& file : files) {
    WriteTextFile(&out, file);
  }
  return out.Take();
}

// Reads an extent and trims to `bytes` (or leaves sector-padded if < 0).
Result<std::vector<uint8_t>> ReadExtent(Disk* disk, int64_t sector, int64_t sectors,
                                        int64_t bytes = -1) {
  std::vector<uint8_t> data;
  if (Result<SimDuration> read = disk->Read(sector, sectors, &data); !read.ok()) {
    return read.status();
  }
  if (bytes >= 0 && static_cast<int64_t>(data.size()) > bytes) {
    data.resize(static_cast<size_t>(bytes));
  }
  return data;
}

// Walks HB -> SBs -> PBs to rebuild a strand's index from the platters.
Result<StrandIndex> RecoverIndex(Disk* disk, const Extent& header_block,
                                 std::vector<Extent>* index_extents) {
  Result<std::vector<uint8_t>> hb_bytes =
      ReadExtent(disk, header_block.start_sector, header_block.sectors);
  if (!hb_bytes.ok()) {
    return hb_bytes.status();
  }
  Result<StrandIndex::HeaderInfo> header = StrandIndex::ParseHeaderBlock(*hb_bytes);
  if (!header.ok()) {
    return header.status();
  }

  std::vector<StrandIndex::SecondaryEntry> pb_locations;
  std::vector<Extent> sb_extents;
  for (const auto& [sb_sector, sb_sectors] : header->sb_extents) {
    Result<std::vector<uint8_t>> sb_bytes = ReadExtent(disk, sb_sector, sb_sectors);
    if (!sb_bytes.ok()) {
      return sb_bytes.status();
    }
    Result<std::vector<StrandIndex::SecondaryEntry>> entries =
        StrandIndex::ParseSecondaryBlock(*sb_bytes);
    if (!entries.ok()) {
      return entries.status();
    }
    pb_locations.insert(pb_locations.end(), entries->begin(), entries->end());
    sb_extents.push_back(Extent{sb_sector, sb_sectors});
  }

  std::vector<std::vector<uint8_t>> primaries;
  for (const StrandIndex::SecondaryEntry& pb : pb_locations) {
    Result<std::vector<uint8_t>> pb_bytes =
        ReadExtent(disk, pb.sector, pb.sector_count, pb.block_count * 16);
    if (!pb_bytes.ok()) {
      return pb_bytes.status();
    }
    primaries.push_back(std::move(*pb_bytes));
    index_extents->push_back(Extent{pb.sector, pb.sector_count});
  }
  // Writer convention: PBs first, then SBs, then the HB last.
  index_extents->insert(index_extents->end(), sb_extents.begin(), sb_extents.end());
  index_extents->push_back(header_block);

  return StrandIndex::FromSerializedPrimaries(IndexFanout(), primaries);
}

// Recovers a strand named by a catalog entry (or journal intent): index
// from the platters, extents re-marked allocated by AdoptStrand.
Status AdoptFromCatalogEntry(Disk* disk, StrandStore* store, const StrandInfo& info,
                             const Extent& header_block) {
  std::vector<Extent> index_extents;
  Result<StrandIndex> index = RecoverIndex(disk, header_block, &index_extents);
  if (!index.ok()) {
    return index.status();
  }
  return store->AdoptStrand(info, std::move(*index), std::move(index_extents));
}

// --- Root records ------------------------------------------------------------

struct RootRecord {
  int64_t generation = 0;
  int64_t catalog_sector = 0;
  int64_t catalog_sectors = 0;
  int64_t catalog_bytes = 0;
  uint64_t catalog_crc = 0;
  int64_t journal_sector = 0;
  int64_t journal_sectors = 0;
};

std::vector<uint8_t> SerializeRoot(const RootRecord& root, int64_t sector_bytes) {
  std::vector<uint8_t> bytes(static_cast<size_t>(sector_bytes), 0);
  WriteU64(bytes.data(), kRootMagic);
  WriteU64(bytes.data() + 16, static_cast<uint64_t>(root.generation));
  WriteU64(bytes.data() + 24, static_cast<uint64_t>(root.catalog_sector));
  WriteU64(bytes.data() + 32, static_cast<uint64_t>(root.catalog_sectors));
  WriteU64(bytes.data() + 40, static_cast<uint64_t>(root.catalog_bytes));
  WriteU64(bytes.data() + 48, root.catalog_crc);
  WriteU64(bytes.data() + 56, static_cast<uint64_t>(root.journal_sector));
  WriteU64(bytes.data() + 64, static_cast<uint64_t>(root.journal_sectors));
  const uint64_t crc =
      Crc64(std::span<const uint8_t>(bytes.data() + 16, kRootRecordBytes - 16));
  WriteU64(bytes.data() + 8, crc);
  return bytes;
}

// How one root slot parsed.
struct RootSlot {
  bool has_magic = false;  // the slot carries the root signature at all
  bool valid = false;      // signature + CRC + sanity all passed
  RootRecord record;
};

RootSlot ParseRoot(const std::vector<uint8_t>& bytes) {
  RootSlot slot;
  if (bytes.size() < kRootRecordBytes) {
    return slot;
  }
  if (ReadU64(bytes.data()) != kRootMagic) {
    return slot;
  }
  slot.has_magic = true;
  const uint64_t stored_crc = ReadU64(bytes.data() + 8);
  const uint64_t actual_crc =
      Crc64(std::span<const uint8_t>(bytes.data() + 16, kRootRecordBytes - 16));
  if (stored_crc != actual_crc) {
    return slot;
  }
  slot.record.generation = static_cast<int64_t>(ReadU64(bytes.data() + 16));
  slot.record.catalog_sector = static_cast<int64_t>(ReadU64(bytes.data() + 24));
  slot.record.catalog_sectors = static_cast<int64_t>(ReadU64(bytes.data() + 32));
  slot.record.catalog_bytes = static_cast<int64_t>(ReadU64(bytes.data() + 40));
  slot.record.catalog_crc = ReadU64(bytes.data() + 48);
  slot.record.journal_sector = static_cast<int64_t>(ReadU64(bytes.data() + 56));
  slot.record.journal_sectors = static_cast<int64_t>(ReadU64(bytes.data() + 64));
  slot.valid = slot.record.generation > 0 && slot.record.catalog_sector >= 0 &&
               slot.record.catalog_sectors > 0 && slot.record.catalog_bytes >= 0 &&
               slot.record.journal_sector >= 0 && slot.record.journal_sectors > 0;
  return slot;
}

// Reads both root slots and picks the newest generation whose catalog
// verifies against its recorded CRC. Collects fsck findings for every
// slot/catalog that failed on the way.
struct RootChoice {
  bool any_magic = false;
  bool chosen = false;
  RootRecord root;
  std::vector<uint8_t> catalog;  // verified, trimmed to logical bytes
  std::vector<FsckFinding> findings;
};

RootChoice ChooseRoot(Disk* disk, WorkerPool* pool = nullptr) {
  const int64_t roots_start = disk->total_sectors() - 2;
  RootChoice choice;

  RootSlot slots[2];
  for (int i = 0; i < 2; ++i) {
    Result<std::vector<uint8_t>> bytes = ReadExtent(disk, roots_start + i, 1);
    if (bytes.ok()) {
      slots[i] = ParseRoot(*bytes);
    } else {
      choice.findings.push_back(FsckFinding{FsckFindingKind::kCorruptRoot,
                                            Extent{roots_start + i, 1},
                                            "root slot " + std::to_string(i) + " unreadable"});
      continue;
    }
    if (slots[i].has_magic) {
      choice.any_magic = true;
    }
    // An empty slot (no signature) is normal — the A/B protocol writes
    // slot 0 only from generation 2 on. Only a signed-but-broken record
    // is a finding.
    if (slots[i].has_magic && !slots[i].valid) {
      choice.findings.push_back(FsckFinding{FsckFindingKind::kCorruptRoot,
                                            Extent{roots_start + i, 1},
                                            "root slot " + std::to_string(i)});
    }
  }
  if (!choice.any_magic) {
    return choice;
  }

  // Newest generation first.
  std::vector<const RootSlot*> candidates;
  for (const RootSlot& slot : slots) {
    if (slot.valid) {
      candidates.push_back(&slot);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const RootSlot* a, const RootSlot* b) {
    return a->record.generation > b->record.generation;
  });

  for (const RootSlot* slot : candidates) {
    const RootRecord& root = slot->record;
    Result<std::vector<uint8_t>> blob =
        ReadExtent(disk, root.catalog_sector, root.catalog_sectors, root.catalog_bytes);
    if (blob.ok() && Crc64Parallel(*blob, pool) == root.catalog_crc &&
        blob->size() >= 8 && ReadU64(blob->data()) == kImageMagic) {
      choice.chosen = true;
      choice.root = root;
      choice.catalog = std::move(*blob);
      return choice;
    }
    choice.findings.push_back(FsckFinding{
        FsckFindingKind::kCorruptCatalog,
        Extent{root.catalog_sector, root.catalog_sectors},
        "generation " + std::to_string(root.generation)});
  }
  return choice;
}

// --- Image building ----------------------------------------------------------

// Applies one decoded journal intent to the half-built image.
Status ApplyIntent(Disk* disk, LoadedImage* image, Intent intent,
                   const std::vector<uint8_t>& payload) {
  ByteReader in(payload);
  switch (intent) {
    case Intent::kStrandAdded: {
      StrandInfo info;
      Extent header_block;
      if (!ReadCatalogEntry(&in, &info, &header_block)) {
        return Status(ErrorCode::kInvalidArgument, "malformed strand intent");
      }
      if (Status status = AdoptFromCatalogEntry(disk, image->store.get(), info, header_block);
          !status.ok()) {
        return status;
      }
      ++image->strands_recovered;
      return Status::Ok();
    }
    case Intent::kStrandDeleted: {
      const StrandId id = static_cast<StrandId>(in.I64());
      if (!in.ok()) {
        return Status(ErrorCode::kInvalidArgument, "malformed strand-delete intent");
      }
      Status status = image->store->Delete(id);
      if (!status.ok() && status.code() != ErrorCode::kNotFound) {
        return status;
      }
      return Status::Ok();
    }
    case Intent::kRopeUpsert: {
      std::unique_ptr<Rope> rope = ReadRope(&in);
      if (rope == nullptr) {
        return Status(ErrorCode::kInvalidArgument, "malformed rope intent");
      }
      return image->ropes->AdoptRope(std::move(rope), /*replace_existing=*/true);
    }
    case Intent::kRopeDeleted: {
      const RopeId id = static_cast<RopeId>(in.I64());
      if (!in.ok()) {
        return Status(ErrorCode::kInvalidArgument, "malformed rope-delete intent");
      }
      Status status = image->ropes->EraseRope(id);
      if (!status.ok() && status.code() != ErrorCode::kNotFound) {
        return status;
      }
      return Status::Ok();
    }
    case Intent::kTextUpsert: {
      TextFileService::ExportedFile file;
      if (!ReadTextFile(&in, &file)) {
        return Status(ErrorCode::kInvalidArgument, "malformed text intent");
      }
      if (image->texts->Exists(file.name)) {
        // Remove frees the stale extents back to the allocator.
        if (Status status = image->texts->Remove(file.name); !status.ok()) {
          return status;
        }
      }
      for (const Extent& extent : file.extents) {
        if (Status status = image->store->allocator().AllocateExact(extent); !status.ok()) {
          return status;
        }
      }
      return image->texts->Adopt(file.name, file.size_bytes, std::move(file.extents));
    }
    case Intent::kTextRemoved: {
      const std::string name = in.Str();
      if (!in.ok()) {
        return Status(ErrorCode::kInvalidArgument, "malformed text-remove intent");
      }
      Status status = image->texts->Remove(name);
      if (!status.ok() && status.code() != ErrorCode::kNotFound) {
        return status;
      }
      return Status::Ok();
    }
  }
  return Status(ErrorCode::kInvalidArgument, "unknown intent type");
}

// Replays the journal of the committed generation on top of the catalog
// image. Stops at the first entry that is absent, stale, out of sequence,
// or torn; a torn entry is reported into `findings` when given.
Status ReplayJournal(Disk* disk, LoadedImage* image, const RootRecord& root,
                     std::vector<FsckFinding>* findings) {
  const int64_t sector_bytes = disk->bytes_per_sector();
  Result<std::vector<uint8_t>> journal =
      ReadExtent(disk, root.journal_sector, root.journal_sectors);
  if (!journal.ok()) {
    // An unreadable journal loses redo entries but not the base image.
    if (findings != nullptr) {
      findings->push_back(FsckFinding{FsckFindingKind::kTornJournalEntry,
                                      Extent{root.journal_sector, root.journal_sectors},
                                      "journal unreadable: " + journal.status().message()});
    }
    return Status::Ok();
  }
  const std::vector<uint8_t>& bytes = *journal;
  const int64_t size = static_cast<int64_t>(bytes.size());

  int64_t offset_sectors = 0;
  int64_t expected_sequence = 0;
  while (true) {
    const int64_t byte_off = offset_sectors * sector_bytes;
    if (byte_off + kJournalHeaderBytes > size) {
      break;
    }
    const uint8_t* entry = bytes.data() + byte_off;
    if (ReadU64(entry) != kJournalMagic) {
      break;  // end of the valid prefix (zeros or leftover foreign data)
    }
    const uint64_t stored_crc = ReadU64(entry + 8);
    const int64_t generation = static_cast<int64_t>(ReadU64(entry + 16));
    const int64_t sequence = static_cast<int64_t>(ReadU64(entry + 24));
    const int64_t type = static_cast<int64_t>(ReadU64(entry + 32));
    const int64_t payload_len = static_cast<int64_t>(ReadU64(entry + 40));
    const int64_t entry_len = kJournalHeaderBytes + payload_len;
    if (payload_len < 0 || byte_off + entry_len > size) {
      if (findings != nullptr) {
        findings->push_back(FsckFinding{FsckFindingKind::kTornJournalEntry,
                                        Extent{root.journal_sector + offset_sectors, 1},
                                        "length out of bounds"});
      }
      break;
    }
    const uint64_t actual_crc = Crc64(
        std::span<const uint8_t>(entry + 16, static_cast<size_t>(entry_len - 16)));
    if (stored_crc != actual_crc) {
      if (findings != nullptr) {
        findings->push_back(FsckFinding{FsckFindingKind::kTornJournalEntry,
                                        Extent{root.journal_sector + offset_sectors, 1},
                                        "checksum mismatch"});
      }
      break;
    }
    if (generation != root.generation || sequence != expected_sequence) {
      break;  // entry from a superseded generation: the checkpoint absorbed it
    }

    std::vector<uint8_t> payload(entry + kJournalHeaderBytes, entry + entry_len);
    if (Status status = ApplyIntent(disk, image, static_cast<Intent>(type), payload);
        !status.ok()) {
      return status;
    }
    Emit(disk, obs::TraceEventKind::kJournalReplay, sequence,
         root.journal_sector + offset_sectors, CeilDiv(entry_len, sector_bytes),
         IntentName(static_cast<Intent>(type)));
    ++image->journal_entries_replayed;
    ++expected_sequence;
    offset_sectors += CeilDiv(entry_len, sector_bytes);
  }

  image->journal_resume_offset_sectors = offset_sectors;
  image->journal_resume_sequence = expected_sequence;
  return Status::Ok();
}

// Builds the full image from a verified catalog blob, then replays the
// journal. `findings` (optional) receives torn-journal findings.
Result<LoadedImage> BuildImage(Disk* disk, const RootRecord& root,
                               const std::vector<uint8_t>& blob,
                               std::vector<FsckFinding>* findings) {
  const int64_t roots_start = disk->total_sectors() - 2;
  ByteReader in(blob);
  if (static_cast<uint64_t>(in.I64()) != kImageMagic) {
    return Status(ErrorCode::kInvalidArgument, "corrupt catalog");
  }

  LoadedImage image;
  image.store = std::make_unique<StrandStore>(disk);
  image.receipt.catalog_extent = Extent{root.catalog_sector, root.catalog_sectors};
  image.receipt.journal_extent = Extent{root.journal_sector, root.journal_sectors};
  image.receipt.generation = root.generation;
  image.receipt.valid = true;

  // Reserve the bookkeeping extents before any strand claims them.
  for (const Extent& reserved :
       {Extent{roots_start, 2}, image.receipt.catalog_extent, image.receipt.journal_extent}) {
    if (Status status = image.store->allocator().AllocateExact(reserved); !status.ok()) {
      return status;
    }
  }

  // Strands: metadata from the catalog, index from the platters.
  const int64_t strand_count = in.I64();
  for (int64_t i = 0; i < strand_count && in.ok(); ++i) {
    StrandInfo info;
    Extent header_block;
    if (!ReadCatalogEntry(&in, &info, &header_block)) {
      break;
    }
    if (Status status = AdoptFromCatalogEntry(disk, image.store.get(), info, header_block);
        !status.ok()) {
      return status;
    }
    ++image.strands_recovered;
  }

  // Ropes.
  image.ropes = std::make_unique<RopeServer>(image.store.get());
  const int64_t rope_count = in.I64();
  for (int64_t i = 0; i < rope_count && in.ok(); ++i) {
    std::unique_ptr<Rope> rope = ReadRope(&in);
    if (rope == nullptr) {
      break;
    }
    if (Status status = image.ropes->AdoptRope(std::move(rope)); !status.ok()) {
      return status;
    }
    ++image.ropes_recovered;
  }

  // Text files.
  image.texts = std::make_unique<TextFileService>(disk, &image.store->allocator());
  const int64_t file_count = in.I64();
  for (int64_t i = 0; i < file_count && in.ok(); ++i) {
    TextFileService::ExportedFile file;
    if (!ReadTextFile(&in, &file)) {
      break;
    }
    for (const Extent& extent : file.extents) {
      if (Status status = image.store->allocator().AllocateExact(extent); !status.ok()) {
        return status;
      }
    }
    if (Status status = image.texts->Adopt(file.name, file.size_bytes, std::move(file.extents));
        !status.ok()) {
      return status;
    }
    ++image.text_files_recovered;
  }

  if (!in.ok()) {
    return Status(ErrorCode::kInvalidArgument, "truncated catalog");
  }

  if (Status status = ReplayJournal(disk, &image, root, findings); !status.ok()) {
    return status;
  }
  return image;
}

}  // namespace

// --- SaveImage ---------------------------------------------------------------

Result<ImageReceipt> SaveImage(StrandStore* store, const RopeServer* ropes,
                               const TextFileService* texts, const ImageReceipt* previous,
                               WorkerPool* pool) {
  Disk& disk = store->disk();
  const int64_t sector_bytes = disk.bytes_per_sector();
  const int64_t roots_start = disk.total_sectors() - 2;

  std::vector<uint8_t> blob = SerializeCatalog(store, ropes, texts);
  const int64_t blob_bytes = static_cast<int64_t>(blob.size());
  // Chunk-parallel on the pool when one is set; bit-identical either way.
  const uint64_t blob_crc = Crc64Parallel(blob, pool);

  // Everything this call allocates is released on any failure, leaving the
  // previously committed image untouched (the in-memory frees succeed even
  // when the device is down).
  std::vector<Extent> allocated;
  auto rollback = [&] {
    for (const Extent& extent : allocated) {
      (void)store->allocator().Free(extent);
    }
  };

  RootRecord root;
  if (previous == nullptr || !previous->valid) {
    // Bootstrap: reserve both root slots and the journal region.
    if (Status status = store->allocator().AllocateExact(Extent{roots_start, 2});
        !status.ok()) {
      return Status(ErrorCode::kNoSpace,
                    "root sectors occupied; reserve them before recording media");
    }
    allocated.push_back(Extent{roots_start, 2});
    Result<Extent> journal = store->allocator().Allocate(kJournalSectors);
    if (!journal.ok()) {
      rollback();
      return journal.status();
    }
    allocated.push_back(*journal);
    root.generation = 1;
    root.journal_sector = journal->start_sector;
    root.journal_sectors = journal->sectors;
  } else {
    root.generation = previous->generation + 1;
    root.journal_sector = previous->journal_extent.start_sector;
    root.journal_sectors = previous->journal_extent.sectors;
  }

  // Write the new catalog to fresh extents; the old catalog stays intact
  // and reachable through the old root until the flip below.
  const int64_t blob_sectors = std::max<int64_t>(1, CeilDiv(blob_bytes, sector_bytes));
  Result<Extent> catalog_extent = store->allocator().Allocate(blob_sectors);
  if (!catalog_extent.ok()) {
    rollback();
    return catalog_extent.status();
  }
  allocated.push_back(*catalog_extent);
  blob.resize(static_cast<size_t>(blob_sectors * sector_bytes), 0);
  if (Result<SimDuration> write = disk.Write(catalog_extent->start_sector, blob_sectors, blob);
      !write.ok()) {
    rollback();
    return write.status();
  }

  // Verify by read-back before committing the root to it.
  Result<std::vector<uint8_t>> readback =
      ReadExtent(&disk, catalog_extent->start_sector, blob_sectors, blob_bytes);
  if (!readback.ok()) {
    rollback();
    return readback.status();
  }
  if (Crc64Parallel(*readback, pool) != blob_crc) {
    rollback();
    return Status(ErrorCode::kIoError, "catalog read-back checksum mismatch");
  }

  // Flip the root: the slot alternates with the generation, so this write
  // never touches the sector the live image depends on.
  root.catalog_sector = catalog_extent->start_sector;
  root.catalog_sectors = blob_sectors;
  root.catalog_bytes = blob_bytes;
  root.catalog_crc = blob_crc;
  const int64_t slot_sector = roots_start + (root.generation % 2 == 0 ? 0 : 1);
  const std::vector<uint8_t> root_bytes = SerializeRoot(root, sector_bytes);
  if (Result<SimDuration> write = disk.Write(slot_sector, 1, root_bytes); !write.ok()) {
    rollback();
    return write.status();
  }
  Result<std::vector<uint8_t>> root_readback = ReadExtent(&disk, slot_sector, 1);
  if (!root_readback.ok()) {
    rollback();
    return root_readback.status();
  }
  if (!std::equal(root_bytes.begin(), root_bytes.begin() + kRootRecordBytes,
                  root_readback->begin())) {
    rollback();
    return Status(ErrorCode::kIoError, "root read-back mismatch");
  }

  // Commit point passed: the new generation is durable. Only now does the
  // old catalog become garbage.
  if (previous != nullptr && previous->valid) {
    if (Status status = store->allocator().Free(previous->catalog_extent); !status.ok()) {
      return status;
    }
  }
  Emit(&disk, obs::TraceEventKind::kRootFlip, root.generation, slot_sector, blob_sectors,
       "generation " + std::to_string(root.generation));

  ImageReceipt receipt;
  receipt.catalog_extent = *catalog_extent;
  receipt.journal_extent = Extent{root.journal_sector, root.journal_sectors};
  receipt.generation = root.generation;
  receipt.valid = true;
  return receipt;
}

// --- LoadImage ---------------------------------------------------------------

Result<LoadedImage> LoadImage(Disk* disk, WorkerPool* pool) {
  RootChoice choice = ChooseRoot(disk, pool);
  if (!choice.any_magic) {
    return Status(ErrorCode::kNotFound, "no vaFS image on this disk");
  }
  if (!choice.chosen) {
    return Status(ErrorCode::kInvalidArgument, "no readable catalog behind either root");
  }
  Result<LoadedImage> image = BuildImage(disk, choice.root, choice.catalog, nullptr);
  if (!image.ok()) {
    return image.status();
  }
  Emit(disk, obs::TraceEventKind::kRecovery, image->receipt.generation, 0,
       image->strands_recovered, "load_image");
  return image;
}

// --- Intent journal ----------------------------------------------------------

IntentJournal::IntentJournal(Disk* disk, Extent extent, int64_t generation)
    : disk_(disk), extent_(extent), generation_(generation) {}

void IntentJournal::ResumeAt(int64_t offset_sectors, int64_t next_sequence) {
  offset_sectors_ = offset_sectors;
  next_sequence_ = next_sequence;
}

Status IntentJournal::Append(Intent intent, std::span<const uint8_t> payload) {
  const int64_t sector_bytes = disk_->bytes_per_sector();
  const int64_t entry_len = kJournalHeaderBytes + static_cast<int64_t>(payload.size());
  const int64_t sectors_needed = CeilDiv(entry_len, sector_bytes);
  if (offset_sectors_ + sectors_needed > extent_.sectors) {
    return Status(ErrorCode::kNoSpace, "intent journal full");
  }

  std::vector<uint8_t> bytes(static_cast<size_t>(sectors_needed * sector_bytes), 0);
  WriteU64(bytes.data(), kJournalMagic);
  WriteU64(bytes.data() + 16, static_cast<uint64_t>(generation_));
  WriteU64(bytes.data() + 24, static_cast<uint64_t>(next_sequence_));
  WriteU64(bytes.data() + 32, static_cast<uint64_t>(intent));
  WriteU64(bytes.data() + 40, static_cast<uint64_t>(payload.size()));
  std::copy(payload.begin(), payload.end(), bytes.begin() + kJournalHeaderBytes);
  const uint64_t crc = Crc64(
      std::span<const uint8_t>(bytes.data() + 16, static_cast<size_t>(entry_len - 16)));
  WriteU64(bytes.data() + 8, crc);

  const int64_t sector = extent_.start_sector + offset_sectors_;
  if (Result<SimDuration> write = disk_->Write(sector, sectors_needed, bytes); !write.ok()) {
    return write.status();
  }
  Emit(disk_, obs::TraceEventKind::kJournalAppend, next_sequence_, sector, sectors_needed,
       IntentName(intent));
  offset_sectors_ += sectors_needed;
  ++next_sequence_;
  return Status::Ok();
}

// --- Intent payload encoders -------------------------------------------------

std::vector<uint8_t> EncodeStrandIntent(const StrandStore::CatalogEntry& entry) {
  ByteWriter out;
  WriteCatalogEntry(&out, entry);
  return out.Take();
}

std::vector<uint8_t> EncodeStrandDeleteIntent(StrandId id) {
  ByteWriter out;
  out.I64(static_cast<int64_t>(id));
  return out.Take();
}

std::vector<uint8_t> EncodeRopeIntent(const Rope& rope) {
  ByteWriter out;
  WriteRope(&out, rope);
  return out.Take();
}

std::vector<uint8_t> EncodeRopeDeleteIntent(RopeId id) {
  ByteWriter out;
  out.I64(static_cast<int64_t>(id));
  return out.Take();
}

std::vector<uint8_t> EncodeTextIntent(const TextFileService::ExportedFile& file) {
  ByteWriter out;
  WriteTextFile(&out, file);
  return out.Take();
}

std::vector<uint8_t> EncodeTextRemoveIntent(const std::string& name) {
  ByteWriter out;
  out.Str(name);
  return out.Take();
}

// --- Fsck --------------------------------------------------------------------

const char* FsckFindingKindName(FsckFindingKind kind) {
  switch (kind) {
    case FsckFindingKind::kCorruptRoot:
      return "corrupt_root";
    case FsckFindingKind::kCorruptCatalog:
      return "corrupt_catalog";
    case FsckFindingKind::kTornJournalEntry:
      return "torn_journal_entry";
    case FsckFindingKind::kOrphanStrand:
      return "orphan_strand";
    case FsckFindingKind::kUnreadableStrand:
      return "unreadable_strand";
    case FsckFindingKind::kLeakedExtent:
      return "leaked_extent";
    case FsckFindingKind::kDoublyClaimedExtent:
      return "doubly_claimed_extent";
  }
  return "unknown";
}

namespace {

// Interval-set subtraction and overlap detection over sorted extents.
std::vector<Extent> MergeExtents(std::vector<Extent> extents) {
  std::sort(extents.begin(), extents.end(), [](const Extent& a, const Extent& b) {
    return a.start_sector < b.start_sector;
  });
  std::vector<Extent> merged;
  for (const Extent& extent : extents) {
    if (extent.sectors <= 0) {
      continue;
    }
    if (!merged.empty() && extent.start_sector <= merged.back().end_sector()) {
      merged.back().sectors = std::max(merged.back().end_sector(), extent.end_sector()) -
                              merged.back().start_sector;
    } else {
      merged.push_back(extent);
    }
  }
  return merged;
}

// Cross-checks every reachable extent claim against the allocator's view:
// overlapping claims and allocated-but-unreachable sectors become findings.
void CrossCheckExtents(const LoadedImage& image, Disk* disk,
                       std::vector<FsckFinding>* findings) {
  const int64_t total = disk->total_sectors();
  const int64_t roots_start = total - 2;

  std::vector<Extent> reachable;
  reachable.push_back(Extent{roots_start, 2});
  reachable.push_back(image.receipt.catalog_extent);
  reachable.push_back(image.receipt.journal_extent);
  for (const Extent& extent : image.store->AllExtents()) {
    reachable.push_back(extent);
  }
  for (const TextFileService::ExportedFile& file : image.texts->ExportAll()) {
    for (const Extent& extent : file.extents) {
      reachable.push_back(extent);
    }
  }

  // Overlaps between claims.
  std::sort(reachable.begin(), reachable.end(), [](const Extent& a, const Extent& b) {
    return a.start_sector < b.start_sector;
  });
  int64_t high_water = 0;
  for (const Extent& extent : reachable) {
    if (extent.start_sector < high_water) {
      const int64_t overlap_end = std::min(high_water, extent.end_sector());
      findings->push_back(FsckFinding{FsckFindingKind::kDoublyClaimedExtent,
                                      Extent{extent.start_sector,
                                             overlap_end - extent.start_sector},
                                      "two owners claim these sectors"});
    }
    high_water = std::max(high_water, extent.end_sector());
  }

  // Leaks: sectors the allocator holds allocated that nothing reaches.
  std::vector<Extent> allocated;
  int64_t cursor = 0;
  for (const Extent& free : image.store->allocator().FreeExtents()) {
    if (free.start_sector > cursor) {
      allocated.push_back(Extent{cursor, free.start_sector - cursor});
    }
    cursor = free.end_sector();
  }
  if (cursor < total) {
    allocated.push_back(Extent{cursor, total - cursor});
  }

  const std::vector<Extent> merged = MergeExtents(std::move(reachable));
  size_t reach_index = 0;
  for (const Extent& claim : allocated) {
    int64_t position = claim.start_sector;
    while (position < claim.end_sector()) {
      while (reach_index < merged.size() && merged[reach_index].end_sector() <= position) {
        ++reach_index;
      }
      if (reach_index >= merged.size() || merged[reach_index].start_sector >= claim.end_sector()) {
        findings->push_back(FsckFinding{FsckFindingKind::kLeakedExtent,
                                        Extent{position, claim.end_sector() - position},
                                        "allocated but unreachable"});
        break;
      }
      const Extent& reach = merged[reach_index];
      if (reach.start_sector > position) {
        findings->push_back(FsckFinding{FsckFindingKind::kLeakedExtent,
                                        Extent{position, reach.start_sector - position},
                                        "allocated but unreachable"});
      }
      position = reach.end_sector();
    }
  }
}

// Rebuilds a catalog-less disk by scanning for strand Header Block
// signatures (HBs are CRC-stamped and carry full strand metadata).
void ScavengeStrands(Disk* disk, FsckReport* report) {
  const int64_t sector_bytes = disk->bytes_per_sector();
  StrandStore* store = report->store.get();
  for (const int64_t sector : disk->PopulatedSectors()) {
    if (!store->allocator().IsFree(Extent{sector, 1})) {
      continue;  // already claimed by an adopted strand or the root slots
    }
    Result<std::vector<uint8_t>> probe = ReadExtent(disk, sector, 1);
    if (!probe.ok() || probe->size() < 24) {
      continue;
    }
    if (ReadU64(probe->data()) != StrandIndex::kHeaderBlockMagic) {
      continue;
    }
    const int64_t hb_bytes = static_cast<int64_t>(ReadU64(probe->data() + 16));
    constexpr int64_t kMaxHeaderBytes = 1 << 20;  // sanity bound before the CRC check
    if (hb_bytes <= 0 || hb_bytes > kMaxHeaderBytes) {
      report->findings.push_back(FsckFinding{FsckFindingKind::kUnreadableStrand,
                                             Extent{sector, 1},
                                             "implausible header length"});
      continue;
    }
    const Extent header_block{sector, std::max<int64_t>(1, CeilDiv(hb_bytes, sector_bytes))};
    Result<std::vector<uint8_t>> full = ReadExtent(disk, header_block.start_sector,
                                                   header_block.sectors);
    if (!full.ok()) {
      report->findings.push_back(FsckFinding{FsckFindingKind::kUnreadableStrand, header_block,
                                             full.status().message()});
      continue;
    }
    Result<StrandIndex::HeaderInfo> header = StrandIndex::ParseHeaderBlock(*full);
    if (!header.ok()) {
      report->findings.push_back(FsckFinding{FsckFindingKind::kUnreadableStrand, header_block,
                                             header.status().message()});
      continue;
    }
    StrandInfo info;
    info.id = static_cast<StrandId>(header->meta.id);
    info.medium = header->meta.medium == 0 ? Medium::kVideo : Medium::kAudio;
    info.recording_rate = header->meta.recording_rate;
    info.bits_per_unit = header->meta.bits_per_unit;
    info.granularity = header->meta.granularity;
    info.unit_count = header->meta.unit_count;
    info.min_scattering_sec = header->meta.min_scattering_sec;
    info.max_scattering_sec = header->meta.max_scattering_sec;
    if (Status status = AdoptFromCatalogEntry(disk, store, info, header_block); !status.ok()) {
      report->findings.push_back(FsckFinding{FsckFindingKind::kUnreadableStrand, header_block,
                                             status.message()});
      continue;
    }
    report->findings.push_back(FsckFinding{FsckFindingKind::kOrphanStrand, header_block,
                                           "scavenged strand " + std::to_string(info.id)});
    ++report->strands_recovered;
  }
}

}  // namespace

Result<FsckReport> Fsck(Disk* disk) {
  const int64_t roots_start = disk->total_sectors() - 2;
  FsckReport report;

  RootChoice choice = ChooseRoot(disk);
  report.findings = std::move(choice.findings);

  bool have_image = false;
  if (choice.chosen) {
    Result<LoadedImage> image = BuildImage(disk, choice.root, choice.catalog, &report.findings);
    if (image.ok()) {
      CrossCheckExtents(*image, disk, &report.findings);
      report.store = std::move(image->store);
      report.ropes = std::move(image->ropes);
      report.texts = std::move(image->texts);
      report.receipt = image->receipt;
      report.strands_recovered = image->strands_recovered;
      have_image = true;
    } else {
      report.findings.push_back(FsckFinding{
          FsckFindingKind::kCorruptCatalog,
          Extent{choice.root.catalog_sector, choice.root.catalog_sectors},
          image.status().message()});
    }
  }

  if (!have_image) {
    // No committed catalog survives: scavenge strands from their on-disk
    // Header Block signatures. Ropes and text files have no per-object
    // signature and are lost with the catalog. The root sectors are left
    // unreserved so the next checkpoint can bootstrap a fresh image.
    report.used_scavenger = true;
    report.store = std::make_unique<StrandStore>(disk);
    ScavengeStrands(disk, &report);
    report.ropes = std::make_unique<RopeServer>(report.store.get());
    report.texts = std::make_unique<TextFileService>(disk, &report.store->allocator());
    report.receipt = ImageReceipt{};
  }

  for (const FsckFinding& finding : report.findings) {
    Emit(disk, obs::TraceEventKind::kFsckFinding, 0, finding.extent.start_sector,
         finding.extent.sectors, FsckFindingKindName(finding.kind));
  }
  Emit(disk, obs::TraceEventKind::kRecovery, report.receipt.generation, 0,
       report.strands_recovered, report.used_scavenger ? "fsck_scavenge" : "fsck");
  return report;
}

}  // namespace vafs
