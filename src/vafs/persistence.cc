#include "src/vafs/persistence.h"

#include <cstring>
#include <string>
#include <utility>

#include "src/layout/strand_index.h"
#include "src/util/units.h"

namespace vafs {

namespace {

constexpr uint64_t kImageMagic = 0x5641'4653'3030'3031ULL;  // "VAFS0001"

// --- Byte-stream plumbing ----------------------------------------------------

class ByteWriter {
 public:
  void I64(int64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(static_cast<uint64_t>(value) >> (8 * i)));
    }
  }
  void F64(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    I64(static_cast<int64_t>(bits));
  }
  void Str(const std::string& value) {
    I64(static_cast<int64_t>(value.size()));
    bytes_.insert(bytes_.end(), value.begin(), value.end());
  }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }

  int64_t I64() {
    if (offset_ + 8 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(bytes_[offset_ + static_cast<size_t>(i)]) << (8 * i);
    }
    offset_ += 8;
    return static_cast<int64_t>(value);
  }
  double F64() {
    const int64_t raw = I64();
    uint64_t bits = static_cast<uint64_t>(raw);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  std::string Str() {
    const int64_t length = I64();
    if (length < 0 || offset_ + static_cast<size_t>(length) > bytes_.size()) {
      ok_ = false;
      return "";
    }
    std::string value(bytes_.begin() + static_cast<ptrdiff_t>(offset_),
                      bytes_.begin() + static_cast<ptrdiff_t>(offset_ + static_cast<size_t>(length)));
    offset_ += static_cast<size_t>(length);
    return value;
  }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t offset_ = 0;
  bool ok_ = true;
};

void WriteTrack(ByteWriter* out, const Track& track) {
  out->F64(track.rate);
  out->I64(track.granularity);
  out->I64(static_cast<int64_t>(track.segments.size()));
  for (const TrackSegment& segment : track.segments) {
    out->I64(static_cast<int64_t>(segment.strand));
    out->I64(segment.start_unit);
    out->I64(segment.unit_count);
  }
}

bool ReadTrack(ByteReader* in, Track* track) {
  track->rate = in->F64();
  track->granularity = in->I64();
  const int64_t segments = in->I64();
  for (int64_t i = 0; i < segments && in->ok(); ++i) {
    TrackSegment segment;
    segment.strand = static_cast<StrandId>(in->I64());
    segment.start_unit = in->I64();
    segment.unit_count = in->I64();
    track->segments.push_back(segment);
  }
  return in->ok();
}

}  // namespace

Result<ImageReceipt> SaveImage(StrandStore* store, const RopeServer* ropes,
                               const TextFileService* texts, const ImageReceipt* previous) {
  Disk& disk = store->disk();
  const int64_t sector_bytes = disk.bytes_per_sector();
  const int64_t root_sector = disk.total_sectors() - 1;

  // Serialize the catalog.
  ByteWriter out;
  out.I64(static_cast<int64_t>(kImageMagic));

  const auto catalog = store->ExportCatalog();
  out.I64(static_cast<int64_t>(catalog.size()));
  for (const StrandStore::CatalogEntry& entry : catalog) {
    out.I64(static_cast<int64_t>(entry.info.id));
    out.I64(entry.info.medium == Medium::kVideo ? 0 : 1);
    out.F64(entry.info.recording_rate);
    out.I64(entry.info.bits_per_unit);
    out.I64(entry.info.granularity);
    out.I64(entry.info.unit_count);
    out.F64(entry.info.min_scattering_sec);
    out.F64(entry.info.max_scattering_sec);
    out.I64(entry.header_block.start_sector);
    out.I64(entry.header_block.sectors);
  }

  const auto all_ropes = ropes->AllRopes();
  out.I64(static_cast<int64_t>(all_ropes.size()));
  for (const Rope* rope : all_ropes) {
    out.I64(static_cast<int64_t>(rope->id()));
    out.Str(rope->creator());
    out.I64(static_cast<int64_t>(rope->access().play_users.size()));
    for (const std::string& user : rope->access().play_users) {
      out.Str(user);
    }
    out.I64(static_cast<int64_t>(rope->access().edit_users.size()));
    for (const std::string& user : rope->access().edit_users) {
      out.Str(user);
    }
    WriteTrack(&out, rope->video());
    WriteTrack(&out, rope->audio());
    out.I64(static_cast<int64_t>(rope->triggers().size()));
    for (const Trigger& trigger : rope->triggers()) {
      out.F64(trigger.at_sec);
      out.Str(trigger.text);
    }
  }

  const auto files = texts != nullptr ? texts->ExportAll()
                                      : std::vector<TextFileService::ExportedFile>{};
  out.I64(static_cast<int64_t>(files.size()));
  for (const TextFileService::ExportedFile& file : files) {
    out.Str(file.name);
    out.I64(file.size_bytes);
    out.I64(static_cast<int64_t>(file.extents.size()));
    for (const Extent& extent : file.extents) {
      out.I64(extent.start_sector);
      out.I64(extent.sectors);
    }
  }

  std::vector<uint8_t> blob = out.Take();
  const int64_t blob_bytes = static_cast<int64_t>(blob.size());

  // Reserve the root sector on the first save; later saves reuse it.
  if (previous == nullptr || !previous->valid) {
    if (Status status = store->allocator().AllocateExact(Extent{root_sector, 1});
        !status.ok()) {
      return Status(ErrorCode::kNoSpace,
                    "root sector occupied; reserve it before recording media");
    }
  } else {
    if (Status status = store->allocator().Free(previous->catalog_extent); !status.ok()) {
      return status;
    }
  }

  const int64_t blob_sectors = std::max<int64_t>(1, CeilDiv(blob_bytes, sector_bytes));
  Result<Extent> catalog_extent = store->allocator().Allocate(blob_sectors);
  if (!catalog_extent.ok()) {
    return catalog_extent.status();
  }
  blob.resize(static_cast<size_t>(blob_sectors * sector_bytes), 0);
  if (Result<SimDuration> write =
          disk.Write(catalog_extent->start_sector, blob_sectors, blob);
      !write.ok()) {
    return write.status();
  }

  // Stamp the root.
  ByteWriter root;
  root.I64(static_cast<int64_t>(kImageMagic));
  root.I64(catalog_extent->start_sector);
  root.I64(blob_sectors);
  root.I64(blob_bytes);
  std::vector<uint8_t> root_bytes = root.Take();
  root_bytes.resize(static_cast<size_t>(sector_bytes), 0);
  if (Result<SimDuration> write = disk.Write(root_sector, 1, root_bytes); !write.ok()) {
    return write.status();
  }

  ImageReceipt receipt;
  receipt.catalog_extent = *catalog_extent;
  receipt.valid = true;
  return receipt;
}

namespace {

// Reads an extent and trims to `bytes` (or leaves sector-padded if < 0).
Result<std::vector<uint8_t>> ReadExtent(Disk* disk, int64_t sector, int64_t sectors,
                                        int64_t bytes = -1) {
  std::vector<uint8_t> data;
  if (Result<SimDuration> read = disk->Read(sector, sectors, &data); !read.ok()) {
    return read.status();
  }
  if (bytes >= 0 && static_cast<int64_t>(data.size()) > bytes) {
    data.resize(static_cast<size_t>(bytes));
  }
  return data;
}

// Walks HB -> SBs -> PBs to rebuild a strand's index from the platters.
Result<StrandIndex> RecoverIndex(Disk* disk, const Extent& header_block,
                                 std::vector<Extent>* index_extents) {
  Result<std::vector<uint8_t>> hb_bytes =
      ReadExtent(disk, header_block.start_sector, header_block.sectors);
  if (!hb_bytes.ok()) {
    return hb_bytes.status();
  }
  Result<StrandIndex::HeaderInfo> header = StrandIndex::ParseHeaderBlock(*hb_bytes);
  if (!header.ok()) {
    return header.status();
  }

  std::vector<StrandIndex::SecondaryEntry> pb_locations;
  std::vector<Extent> sb_extents;
  for (const auto& [sb_sector, sb_sectors] : header->sb_extents) {
    Result<std::vector<uint8_t>> sb_bytes = ReadExtent(disk, sb_sector, sb_sectors);
    if (!sb_bytes.ok()) {
      return sb_bytes.status();
    }
    Result<std::vector<StrandIndex::SecondaryEntry>> entries =
        StrandIndex::ParseSecondaryBlock(*sb_bytes);
    if (!entries.ok()) {
      return entries.status();
    }
    pb_locations.insert(pb_locations.end(), entries->begin(), entries->end());
    sb_extents.push_back(Extent{sb_sector, sb_sectors});
  }

  std::vector<std::vector<uint8_t>> primaries;
  for (const StrandIndex::SecondaryEntry& pb : pb_locations) {
    Result<std::vector<uint8_t>> pb_bytes =
        ReadExtent(disk, pb.sector, pb.sector_count, pb.block_count * 16);
    if (!pb_bytes.ok()) {
      return pb_bytes.status();
    }
    primaries.push_back(std::move(*pb_bytes));
    index_extents->push_back(Extent{pb.sector, pb.sector_count});
  }
  // Writer convention: PBs first, then SBs, then the HB last.
  index_extents->insert(index_extents->end(), sb_extents.begin(), sb_extents.end());
  index_extents->push_back(header_block);

  return StrandIndex::FromSerializedPrimaries(IndexFanout(), primaries);
}

}  // namespace

Result<LoadedImage> LoadImage(Disk* disk) {
  const int64_t sector_bytes = disk->bytes_per_sector();
  const int64_t root_sector = disk->total_sectors() - 1;

  Result<std::vector<uint8_t>> root_bytes = ReadExtent(disk, root_sector, 1);
  if (!root_bytes.ok()) {
    return root_bytes.status();
  }
  ByteReader root(*root_bytes);
  if (static_cast<uint64_t>(root.I64()) != kImageMagic) {
    return Status(ErrorCode::kNotFound, "no vaFS image on this disk");
  }
  const int64_t catalog_sector = root.I64();
  const int64_t catalog_sectors = root.I64();
  const int64_t catalog_bytes = root.I64();
  if (!root.ok() || catalog_sector < 0 || catalog_sectors <= 0 ||
      catalog_bytes > catalog_sectors * sector_bytes) {
    return Status(ErrorCode::kInvalidArgument, "corrupt root sector");
  }

  Result<std::vector<uint8_t>> blob =
      ReadExtent(disk, catalog_sector, catalog_sectors, catalog_bytes);
  if (!blob.ok()) {
    return blob.status();
  }
  ByteReader in(*blob);
  if (static_cast<uint64_t>(in.I64()) != kImageMagic) {
    return Status(ErrorCode::kInvalidArgument, "corrupt catalog");
  }

  LoadedImage image;
  image.store = std::make_unique<StrandStore>(disk);
  image.receipt.catalog_extent = Extent{catalog_sector, catalog_sectors};
  image.receipt.valid = true;

  // Reserve the bookkeeping extents before any strand claims them.
  if (Status status = image.store->allocator().AllocateExact(Extent{root_sector, 1});
      !status.ok()) {
    return status;
  }
  if (Status status =
          image.store->allocator().AllocateExact(image.receipt.catalog_extent);
      !status.ok()) {
    return status;
  }

  // Strands: metadata from the catalog, index from the platters.
  const int64_t strand_count = in.I64();
  for (int64_t i = 0; i < strand_count && in.ok(); ++i) {
    StrandInfo info;
    info.id = static_cast<StrandId>(in.I64());
    info.medium = in.I64() == 0 ? Medium::kVideo : Medium::kAudio;
    info.recording_rate = in.F64();
    info.bits_per_unit = in.I64();
    info.granularity = in.I64();
    info.unit_count = in.I64();
    info.min_scattering_sec = in.F64();
    info.max_scattering_sec = in.F64();
    Extent header_block;
    header_block.start_sector = in.I64();
    header_block.sectors = in.I64();
    if (!in.ok()) {
      break;
    }
    std::vector<Extent> index_extents;
    Result<StrandIndex> index = RecoverIndex(disk, header_block, &index_extents);
    if (!index.ok()) {
      return index.status();
    }
    if (Status status = image.store->AdoptStrand(info, std::move(*index),
                                                 std::move(index_extents));
        !status.ok()) {
      return status;
    }
    ++image.strands_recovered;
  }

  // Ropes.
  image.ropes = std::make_unique<RopeServer>(image.store.get());
  const int64_t rope_count = in.I64();
  for (int64_t i = 0; i < rope_count && in.ok(); ++i) {
    const RopeId id = static_cast<RopeId>(in.I64());
    const std::string creator = in.Str();
    auto rope = std::make_unique<Rope>(id, creator);
    const int64_t play_users = in.I64();
    for (int64_t u = 0; u < play_users && in.ok(); ++u) {
      rope->access().play_users.push_back(in.Str());
    }
    const int64_t edit_users = in.I64();
    for (int64_t u = 0; u < edit_users && in.ok(); ++u) {
      rope->access().edit_users.push_back(in.Str());
    }
    if (!ReadTrack(&in, &rope->video()) || !ReadTrack(&in, &rope->audio())) {
      break;
    }
    const int64_t triggers = in.I64();
    for (int64_t t = 0; t < triggers && in.ok(); ++t) {
      Trigger trigger;
      trigger.at_sec = in.F64();
      trigger.text = in.Str();
      rope->triggers().push_back(std::move(trigger));
    }
    if (Status status = image.ropes->AdoptRope(std::move(rope)); !status.ok()) {
      return status;
    }
    ++image.ropes_recovered;
  }

  // Text files.
  image.texts = std::make_unique<TextFileService>(disk, &image.store->allocator());
  const int64_t file_count = in.I64();
  for (int64_t i = 0; i < file_count && in.ok(); ++i) {
    const std::string name = in.Str();
    const int64_t size_bytes = in.I64();
    const int64_t extent_count = in.I64();
    std::vector<Extent> extents;
    for (int64_t e = 0; e < extent_count && in.ok(); ++e) {
      Extent extent;
      extent.start_sector = in.I64();
      extent.sectors = in.I64();
      if (Status status = image.store->allocator().AllocateExact(extent); !status.ok()) {
        return status;
      }
      extents.push_back(extent);
    }
    if (Status status = image.texts->Adopt(name, size_bytes, std::move(extents));
        !status.ok()) {
      return status;
    }
    ++image.text_files_recovered;
  }

  if (!in.ok()) {
    return Status(ErrorCode::kInvalidArgument, "truncated catalog");
  }
  return image;
}

}  // namespace vafs
