// MultimediaFileSystem: the public facade tying both layers together.
//
// Mirrors the paper's prototype (Section 5): the Multimedia Rope Server
// (device-independent rope abstraction) layered over the Multimedia
// Storage Manager (device-specific placement, admission control and
// service rounds), plus the integrated conventional text-file service.
// The client interface is the paper's Section 4.1 operation set: RECORD,
// PLAY, STOP, PAUSE (destructive or not), RESUME, and the rope editing
// utilities exposed through rope_server().

#ifndef VAFS_SRC_VAFS_FILE_SYSTEM_H_
#define VAFS_SRC_VAFS_FILE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/core/admission.h"
#include "src/core/continuity.h"
#include "src/disk/disk.h"
#include "src/media/silence.h"
#include "src/media/sources.h"
#include "src/msm/recorder.h"
#include "src/msm/service_scheduler.h"
#include "src/msm/session_manager.h"
#include "src/msm/strand_store.h"
#include "src/obs/critical_path.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/rope/rope_server.h"
#include "src/sim/simulator.h"
#include "src/util/worker_pool.h"
#include "src/vafs/persistence.h"
#include "src/vafs/text_files.h"

namespace vafs {

// Built-in telemetry for the facade: when enabled, the file system owns a
// bounded TraceLog, a MetricsSink-fed registry, a continuity-SLO tracker
// and a flight recorder, all fed from one internal tee wired into the
// scheduler, strand store and disk (and re-wired across Recover()). A
// user-supplied FileSystemConfig::scheduler.trace sink keeps receiving the
// stream alongside them.
struct TelemetryOptions {
  bool enabled = false;
  // TraceLog bound; 0 retains every event (fine for tests, not for long
  // simulations).
  size_t trace_capacity = 8192;
  obs::SloOptions slo;
  obs::FlightRecorderOptions flight;
  // Causal span tracing: the scheduler emits per-round span trees
  // (SchedulerOptions::emit_spans) and a CriticalPathAnalyzer is
  // interposed between the scheduler and the tee, so every round gets a
  // kCriticalPath attribution verdict in the same stream.
  bool spans = false;
  // Storage-node id woven into trace/span ids and stamped on the
  // scheduler's events (-1 = single-node).
  int64_t node_id = -1;
};

struct FileSystemConfig {
  DiskParameters disk;
  // Display-path devices per medium (decode rate, internal buffers).
  DeviceProfile video_device{96'000.0 * 30.0 * 4, 8};
  DeviceProfile audio_device{8.0 * 8000.0 * 16, 64};
  RetrievalArchitecture architecture = RetrievalArchitecture::kPipelined;
  int concurrency = 1;  // p, for the concurrent architecture
  SchedulerOptions scheduler;
  // Shared block cache for planned rounds (capacity 0 = disabled). When
  // enabled the facade owns the cache and wires it into the scheduler
  // (scheduler.block_cache) and the strand store (write invalidation);
  // pair with scheduler.service_order = ServiceOrder::kPlanned.
  BlockCacheOptions block_cache;
  // Average scattering assumed by admission control; < 0 derives a
  // conservative value (the video placement's upper bound).
  double assumed_avg_scattering_sec = -1.0;
  bool retain_data = true;  // false: timing-only simulation (fast benches)
  // mmap'd disk-image backing store (DESIGN.md section 15). Empty (the
  // default) consults the VAFS_DISK_IMAGE environment variable; when that
  // is unset too, sector payloads live in the sparse in-memory store.
  // Requires retain_data; an unopenable path falls back to the in-memory
  // store without changing any simulated result.
  std::string disk_image_path;
  bool disk_image_truncate = false;  // discard an existing image file
  // Stream-merging session layer (src/msm/session_manager.h). When enabled
  // the facade owns a SessionManager fed from the telemetry tee; viewers
  // admitted through OpenSession() share physical streams by batching and
  // patching. Requires telemetry (the manager observes the trace stream).
  SessionOptions sessions;
  // Disk fault injection (src/disk/fault_injector.h). The default injects
  // nothing and leaves every simulation bit-identical.
  FaultOptions faults;
  TelemetryOptions telemetry;
};

class MultimediaFileSystem {
 public:
  explicit MultimediaFileSystem(const FileSystemConfig& config);

  // --- Layer access (the prototype is a testbed; Section 5.2) --------------
  Simulator& simulator() { return simulator_; }
  Disk& disk() { return *disk_; }
  StrandStore& storage_manager() { return *store_; }
  RopeServer& rope_server() { return *ropes_; }
  ServiceScheduler& scheduler() { return *scheduler_; }
  TextFileService& text_files() { return *text_files_; }
  const ContinuityModel& continuity() const { return *continuity_; }
  const AdmissionControl& admission() const { return *admission_; }
  // Null unless FileSystemConfig::block_cache has a positive capacity.
  BlockCache* block_cache() { return block_cache_.get(); }
  // Null unless FileSystemConfig::sessions.enabled (with telemetry on).
  SessionManager* session_manager() { return session_manager_.get(); }

  // Placement derived for a media profile under the configured
  // architecture (granularity + scattering bounds).
  Result<StrandPlacement> PlacementFor(const MediaProfile& media) const;

  // --- RECORD ---------------------------------------------------------------

  // RECORD [media] -> [requestID, mmRopeID]. Records the given sources
  // (either may be null, not both) for `duration_sec`, with silence
  // elimination on audio, and ties the strands into a rope.
  struct RecordResult {
    RopeId rope = kNullRope;
    StrandId video_strand = kNullStrand;
    StrandId audio_strand = kNullStrand;
    RecordingResult video;
    RecordingResult audio;
  };
  Result<RecordResult> Record(const std::string& user, VideoSource* video, AudioSource* audio,
                              double duration_sec);

  // Timed recording through admission control and service rounds (the
  // storage-side real-time path). Completion is observed via Stats().
  Result<RequestId> StartTimedRecording(const MediaProfile& media, double duration_sec);

  // --- PLAY / STOP / PAUSE / RESUME -------------------------------------------

  // PLAY [mmRopeID, interval, media] -> requestID. Non-blocking: drive the
  // simulation with RunUntilIdle() and inspect Stats().
  Result<RequestId> Play(const std::string& user, RopeId rope, Medium medium,
                         TimeInterval interval, double rate_multiplier = 1.0);

  // PLAY through the stream-merging session layer: viewers of one rope
  // arriving close together share a physical stream (batching), or catch
  // up on a short patch stream that merges into the leader. The rope id is
  // the session title. Requires FileSystemConfig::sessions.enabled.
  Result<SessionTicket> OpenSession(const std::string& user, RopeId rope, Medium medium,
                                    TimeInterval interval);

  Status Stop(RequestId request) { return scheduler_->Stop(request); }
  Status Pause(RequestId request, bool destructive) {
    return scheduler_->Pause(request, destructive);
  }
  Status Resume(RequestId request) { return scheduler_->Resume(request); }

  void RunUntilIdle() { scheduler_->RunUntilIdle(); }

  Result<RequestStats> Stats(RequestId request) const { return scheduler_->stats(request); }

  // --- Persistence ------------------------------------------------------------

  // Commits the catalog (strands, ropes, text files) to the disk image via
  // the A/B root protocol and starts a fresh intent-journal generation. On
  // failure the previous checkpoint stays committed and `image_receipt_`
  // untouched, so a retry resumes cleanly.
  Status Checkpoint();

  // Discards all in-memory state and rebuilds it from the disk image plus
  // the replayed intent journal; falls back to the fsck scavenger when no
  // root yields a readable catalog. Restores power after a simulated cut,
  // abandons all active requests (their admission slots die with the
  // scheduler), and clears pending simulator events.
  Status Recover();

  // Offline check-and-repair over the current disk. Unlike Recover(), the
  // in-memory layers are not replaced; the report carries its own.
  Result<FsckReport> RunFsck() { return Fsck(disk_.get()); }

  // Untimed data-path read of a rope interval (for verification and
  // non-real-time clients). Returns one payload per block covering the
  // interval, in playback order; eliminated-silence blocks come back as
  // empty vectors.
  Result<std::vector<std::vector<uint8_t>>> ReadRopeBlocks(const std::string& user, RopeId rope,
                                                           Medium medium, TimeInterval interval);

  // --- Telemetry (TelemetryOptions::enabled) ---------------------------------
  //
  // All accessors return nullptr (or empty values) when telemetry is off.
  bool telemetry_enabled() const { return telemetry_ != nullptr; }
  obs::MetricsRegistry* metrics();
  obs::TraceLog* trace_log();
  obs::SloTracker* slo_tracker();
  obs::FlightRecorder* flight_recorder();
  // The per-round critical-path attributions (empty unless
  // TelemetryOptions::spans).
  obs::CriticalPathAnalyzer* critical_path();
  const obs::CriticalPathAnalyzer* critical_path() const;
  // Current per-stream continuity-SLO report (empty when disabled).
  obs::SloReport SloSnapshot() const;
  // Versioned JSON snapshot (metrics + SLO report + trace-log health), the
  // format vafs_top loads. "null" when disabled.
  std::string TelemetrySnapshotJson() const;

 private:
  // Forwards every metadata mutation into the intent journal between
  // checkpoints (redo logging: the mutation has already happened when the
  // hook fires).
  class JournalHook final : public StrandStore::CatalogListener,
                            public RopeServer::MutationListener,
                            public TextFileService::Listener {
   public:
    explicit JournalHook(MultimediaFileSystem* fs) : fs_(fs) {}
    void OnStrandAdded(const StrandStore::CatalogEntry& entry) override;
    void OnStrandDeleted(StrandId id) override;
    void OnRopeChanged(const Rope& rope) override;
    void OnRopeDeleted(RopeId id) override;
    void OnFileWritten(const TextFileService::ExportedFile& file) override;
    void OnFileRemoved(const std::string& name) override;

   private:
    MultimediaFileSystem* fs_;
  };

  // Appends one intent if a journal generation is active; a full journal
  // (or a failed append) stops journaling until the next checkpoint.
  void Journal(Intent intent, const std::vector<uint8_t>& payload);
  void InstallListeners();
  // Resolves a rope interval into the fully solo PlaybackRequest Play()
  // would submit (shared by Play and OpenSession).
  Result<PlaybackRequest> BuildPlayback(const std::string& user, RopeId rope, Medium medium,
                                        TimeInterval interval, double rate_multiplier);

  // The built-in telemetry pipeline (constructed only when enabled): one
  // tee fanning the trace stream into the bounded log, the metrics fold,
  // the SLO tracker and the flight recorder, plus any user sink from the
  // original config. The SLO breach handler triggers flight-recorder dumps.
  struct Telemetry {
    explicit Telemetry(const TelemetryOptions& options);

    obs::MetricsRegistry registry;
    obs::TraceLog log;
    obs::MetricsSink metrics_sink;
    obs::SloTracker slo;
    obs::FlightRecorder flight;
    obs::TeeSink tee;
    // Interposed between the scheduler and the tee when
    // TelemetryOptions::spans; forwards every event and appends a
    // kCriticalPath verdict after each round.
    obs::CriticalPathAnalyzer critical_path;
  };

  FileSystemConfig config_;
  // Owned wall-clock pool, sized from VAFS_WORKERS, built only when the
  // embedder did not supply SchedulerOptions::worker_pool. Declared before
  // the layers that borrow it.
  std::unique_ptr<WorkerPool> worker_pool_;
  std::unique_ptr<Telemetry> telemetry_;
  Simulator simulator_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<StrandStore> store_;
  std::unique_ptr<ContinuityModel> continuity_;
  std::unique_ptr<AdmissionControl> admission_;
  std::unique_ptr<ServiceScheduler> scheduler_;
  std::unique_ptr<SessionManager> session_manager_;
  std::unique_ptr<RopeServer> ropes_;
  std::unique_ptr<TextFileService> text_files_;
  SilenceDetector silence_detector_;
  ImageReceipt image_receipt_;
  JournalHook journal_hook_{this};
  std::unique_ptr<IntentJournal> journal_;
  bool journal_overflowed_ = false;
};

}  // namespace vafs

#endif  // VAFS_SRC_VAFS_FILE_SYSTEM_H_
