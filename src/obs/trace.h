// Structured round-trace events for the storage manager's service path.
//
// The service scheduler, admission control, disk and strand store emit one
// TraceEvent per interesting transition (request lifecycle, admission
// decision, round execution, disk transfer, strand-block placement) into a
// TraceSink. Sinks compose: TraceLog records the stream for replay, TeeSink
// fans it out, MetricsSink folds it into a MetricsRegistry, and the
// ContinuityAuditor (src/obs/auditor.h) checks the paper's service
// invariants against it after every round.

#ifndef VAFS_SRC_OBS_TRACE_H_
#define VAFS_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/time.h"

namespace vafs {
namespace obs {

enum class TraceEventKind {
  // Request lifecycle (service scheduler).
  kSubmitAccepted,
  kSubmitRejected,
  kActivated,  // left the pending queue, joined the service rotation
  kPause,
  kResume,
  kResumeRejected,
  kStop,
  kCompleted,
  // Admission decisions (admission control).
  kAdmissionPlan,
  kAdmissionReject,
  // Round execution (service scheduler).
  kRoundStart,
  kRequestServiced,
  kRoundEnd,
  // Fault handling (scheduler retry policy and relocation).
  kBlockRetried,    // a faulted block was re-read within the round's slack
  kBlockSkipped,    // retries exhausted or unaffordable: degraded playback
  kBlockRelocated,  // a defective block was copied to a fresh extent
  // Device level.
  kDiskRead,
  kDiskWrite,
  kDiskFault,    // injected fault; `detail` names the FaultKind
  kDiskSalvage,  // heroic recovery read (bypasses injection, costs extra)
  kPowerCut,     // the device lost power mid-write; `blocks` = surviving prefix
  kStrandWrite,
  // Crash consistency (src/vafs/persistence.h).
  kRootFlip,       // a checkpoint committed by flipping the A/B root
  kJournalAppend,  // a metadata intent reached the journal extent
  kJournalReplay,  // recovery applied one journal intent
  kFsckFinding,    // the scavenger reported one finding; `detail` names it
  kRecovery,       // a recovery (LoadImage or Fsck) completed
  // Round I/O planner (src/msm/round_planner.h).
  kRoundPlanned,     // a round's transfer program was built
  kSeekAccounting,   // round-end measured vs worst-case arm travel
  kCacheAdmit,       // a stream admitted on expected cache coverage
  kCacheAdmitRevoked,  // coverage collapsed; the stream degraded out
  kCacheInvalidate,  // rewritten sectors dropped resident cache entries
  // Stream-merging session layer (src/msm/session_manager.h).
  kSessionBatched,  // a viewer attached to a leader inside the batch window
  kSessionPatched,  // a late viewer opened a short catch-up stream
  kSessionMerged,   // the patch closed its gap; the rider now follows the leader
  // Cluster sharding and failover (src/cluster/).
  kNodeDown,     // the coordinator declared a node dead; `node` names it
  kNodeUp,       // a node (re)joined after its catalog reconciled
  kFailover,     // a viewer resumed on a replica; `duration` = interruption,
                 // `round_budget` = the stamped failover bound it must meet
  kReReplicate,  // background repair restored one strand's replica count
  kShedLoad,     // no survivor could absorb this viewer; explicitly dropped
  // Causal span tracing (src/obs/span.h) and critical-path attribution
  // (src/obs/critical_path.h).
  kSpan,          // one closed span: (trace_id, span_id, parent_span) + stage
  kCriticalPath,  // per-round stage attribution emitted by the analyzer
};

const char* TraceEventKindName(TraceEventKind kind);

// The analyzer's stage taxonomy. Every span names exactly one stage, and
// every microsecond of a round's service time is charged to exactly one
// stage (kQueue absorbs the residual the transfer path did not claim), so
// a round's stage breakdown sums to its measured duration by construction.
enum class SpanStage {
  kRound = 0,       // root span of one scheduler round
  kQueue,           // round time not spent moving data (dispatch residual)
  kSeek,            // arm repositioning ahead of a transfer
  kTransfer,        // media moving for normal playback/recording
  kRetry,           // faulted service + re-reads within the round's slack
  kCache,           // plan-time cache hits (zero disk time by design)
  kMergePatch,      // transfers feeding a session-layer catch-up stream
  kAppend,          // recording appends riding the round tail
  kWave,            // one parallel DiskArray dispatch wave
  kPlan,            // round-plan construction
  kRoute,           // cluster coordinator routing/failover decision
  kSession,         // session-layer attach/patch bookkeeping
};

const char* SpanStageName(SpanStage stage);

// Per-round service-time attribution (usec). The stages partition the
// round: Total() equals the round's kRoundEnd duration within the
// integer-rounding epsilon checked by the ContinuityAuditor.
struct StageBreakdown {
  SimDuration queue = 0;
  SimDuration seek = 0;
  SimDuration transfer = 0;
  SimDuration retry = 0;
  SimDuration cache = 0;
  SimDuration merge_patch = 0;
  SimDuration append = 0;

  SimDuration Total() const {
    return queue + seek + transfer + retry + cache + merge_patch + append;
  }
  bool operator==(const StageBreakdown&) const = default;
};

struct TraceEvent;

// One-line human-readable rendering ("t=1200 round=3 disk_read req=2
// sector=640+8 dur=950us ..."), for flight-recorder dumps and inspectors.
std::string TraceEventSummary(const TraceEvent& event);

// Snapshot of the scheduler's admission-slot ledger, attached to lifecycle
// and round events. A slot is held by running, pending and non-destructively
// paused requests; a destructive pause gives the slot back. Cache-admitted
// streams are tenants of the cache, not of an Eq. 17 slot: they ride the
// rotation but are counted in their own column and never in Held().
struct SlotSnapshot {
  int64_t active = 0;
  int64_t pending = 0;
  int64_t paused_nondestructive = 0;
  int64_t paused_destructive = 0;
  int64_t cache_tenants = 0;  // cache-admitted, not destructively paused

  int64_t Held() const { return active + pending + paused_nondestructive; }
  bool operator==(const SlotSnapshot&) const = default;
};

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kRoundStart;
  SimTime time = 0;       // simulated time (0 for device-level events)
  int64_t round = 0;      // rounds executed, for round-scoped events
  uint64_t request = 0;   // request id; 0 = not request-scoped
  int64_t k = 0;          // scheduler round size at emission
  int64_t blocks = 0;     // blocks or sectors moved, by kind
  SimDuration duration = 0;        // service time of the round / transfer
  SimDuration block_playback = 0;  // effective playback time of one block
  bool destructive = false;        // kPause / kResume flavor
  int64_t sector = 0;              // device events: first sector touched
  int64_t seek_cylinders = 0;      // device events: arm travel to reach it
  // Admission decisions:
  int64_t existing = 0;  // size of the existing set presented
  int64_t target_k = 0;  // final k of the planned step schedule
  int64_t n_max = 0;     // Eq. 17 ceiling of the combined set
  // Strand writes:
  double gap_sec = 0.0;        // realized gap to the previous block (-1: first)
  double gap_bound_sec = 0.0;  // the strand's max-scattering contract
  // Fault handling: the Eq. 11 round-time budget the scheduler checked a
  // retry against (0 = no budget applied).
  SimDuration round_budget = 0;
  // Round planner (kRoundPlanned / kSeekAccounting): the transfer program
  // and what it saved. `blocks` carries the planned data blocks;
  // `seek_cylinders` the measured per-round arm travel.
  int64_t transfers = 0;         // disk operations the plan dispatches
  int64_t coalesced_blocks = 0;  // blocks merged into a preceding transfer
  int64_t deduped_blocks = 0;    // blocks riding another stream's transfer
  int64_t cache_hits = 0;        // plan-time cache hits this round
  int64_t cache_lookups = 0;     // plan-time cache probes this round
  int64_t seek_cylinders_worst = 0;  // alpha-model bound for the op count
  // Block-cache occupancy at emission (kRoundPlanned).
  int64_t cache_resident_bytes = 0;
  int64_t cache_pinned_entries = 0;
  int64_t cache_evictions = 0;
  double cache_hit_rate = 0.0;  // recent-window rate, [0, 1]
  // Payload page pool at emission (kRoundPlanned); not rendered into the
  // trace digest — wall-clock-side allocator telemetry only.
  int64_t pool_outstanding = 0;  // pages currently checked out
  int64_t pool_recycled = 0;     // cumulative acquisitions served from the pool
  // Session layer (kSessionBatched / kSessionPatched / kSessionMerged).
  uint64_t session = 0;       // session id; 0 = not session-scoped
  uint64_t leader = 0;        // request id of the shared physical stream
  int64_t gap_blocks = 0;     // rider's distance behind the leader at attach
  int64_t runway_blocks = 0;  // patched: Section 3 buffer bound; merged: realized
  // Cluster events: the storage node the event concerns (-1 = not
  // node-scoped; 0 is a valid node id). kFailover additionally uses `node`
  // for the replica that absorbed the viewer and `sector` is unused.
  int64_t node = -1;
  // Causal spans (kSpan) and critical-path verdicts (kCriticalPath). Ids
  // are derived deterministically from (node, round, stage, ordinal) —
  // never from wall clock — so they are byte-identical for any worker
  // count. `member` names the disk-array arm a transfer ran on (-1 = not
  // arm-scoped); `span_seek` is the seek share of a transfer span's
  // duration; `stages` carries the full round attribution on kSpan round
  // roots and on kCriticalPath.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  int64_t span_stage = -1;  // SpanStage as int; -1 = not a span event
  SimDuration span_seek = 0;
  int64_t member = -1;
  bool anomalous = false;  // kCriticalPath: dominant stage broke the trend
  StageBreakdown stages;
  SlotSnapshot slots;
  std::string detail;  // human-readable context, e.g. a rejection reason
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Records the event stream for later replay (the round-trace log). A
// capacity of 0 keeps everything; otherwise the log holds the most recent
// `capacity` events, dropping the oldest (counted in dropped()) so a
// long-lived simulation cannot grow it without bound.
class TraceLog : public TraceSink {
 public:
  explicit TraceLog(size_t capacity = 0) : capacity_(capacity) {}

  void OnEvent(const TraceEvent& event) override;
  const std::vector<TraceEvent>& events() const { return events_; }
  size_t capacity() const { return capacity_; }
  // Events discarded so far to honour the capacity (the trace.events_dropped
  // counter exported by telemetry snapshots).
  int64_t dropped() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  size_t capacity_;
  int64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

// Buffers events for later ordered replay into another sink. This is the
// determinism seam of the wall-clock execution engine (DESIGN.md section
// 12): during a parallel DiskArray wave each member disk emits into its
// own private buffer, and at the wave barrier the buffers are flushed in
// member order — so the downstream sink graph (log, auditor, metrics,
// SLO) sees a byte-identical stream for any worker count, including 1.
// A BufferedTraceSink itself is single-threaded: one owner writes it, and
// flushing happens after the join barrier.
class BufferedTraceSink : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Replays the buffer into `sink` in recording order and clears it.
  void FlushTo(TraceSink* sink) {
    if (sink != nullptr) {
      for (const TraceEvent& event : events_) {
        sink->OnEvent(event);
      }
    }
    events_.clear();
  }

 private:
  std::vector<TraceEvent> events_;
};

// Fans one event stream out to several sinks (log + auditor + metrics).
class TeeSink : public TraceSink {
 public:
  void Add(TraceSink* sink) { sinks_.push_back(sink); }
  void OnEvent(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) {
      sink->OnEvent(event);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

// Folds the event stream into registry counters/gauges/histograms; keeps no
// event history of its own.
class MetricsSink : public TraceSink {
 public:
  explicit MetricsSink(MetricsRegistry* registry) : registry_(registry) {}
  void OnEvent(const TraceEvent& event) override;

 private:
  MetricsRegistry* registry_;
  // Power cuts seen since the last kRecovery. Each is a distinct crash
  // point; the recovery that finally lands credits them all, so
  // back-to-back cuts before one recovery are not collapsed into one.
  int64_t power_cuts_pending_ = 0;
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_TRACE_H_
