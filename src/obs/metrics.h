// Lightweight metrics for the storage manager's service path.
//
// A MetricsRegistry names three instrument kinds: counters (monotonic event
// totals), gauges (last-written instantaneous values) and histograms
// (distribution summaries over power-of-two buckets). Components never hold
// registry state themselves; they emit trace events (src/obs/trace.h) and a
// MetricsSink folds the stream into a registry. The registry serializes to
// JSON so benches can drop a machine-readable metrics file next to their
// printed tables.

#ifndef VAFS_SRC_OBS_METRICS_H_
#define VAFS_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace vafs {
namespace obs {

// Appends `text` JSON-escaped (quotes, backslashes, control characters) to
// `*out`, without surrounding quotes. Shared by the registry's ToJson and
// the exporters (src/obs/export.h).
void AppendJsonEscaped(std::string* out, const std::string& text);

// Monotonically increasing event total. Increments are atomic so worker
// tasks (src/util/worker_pool.h) may bump counters concurrently; readers
// see a consistent total after the pool's join barrier.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Increment(int64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-written instantaneous value. Atomic for the same reason as Counter;
// concurrent writers race benignly (last store wins, no torn reads).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Distribution summary. Bucket 0 counts samples <= 1 (including negative
// ones — durations and counts are never negative, so bucket 0 absorbing
// them keeps a stray sign bug visible in the min rather than crashing);
// bucket i counts samples in (2^(i-1), 2^i]; the last bucket absorbs
// everything larger. Non-finite samples (NaN, +/-inf) are rejected and
// tallied in rejected(): a NaN would poison min/max for the histogram's
// whole lifetime, and an infinity would render unparsable JSON.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void Record(double value);

  int64_t count() const { return count_; }
  // Non-finite samples dropped by Record.
  int64_t rejected() const { return rejected_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double Mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  const std::array<int64_t, kBuckets>& buckets() const { return buckets_; }

  // Estimated p-quantile (p in [0, 1]) by linear interpolation inside the
  // power-of-two bucket holding the rank, clamped to the observed [min, max]
  // so the estimate never leaves the sampled range. 0 when empty.
  double Quantile(double p) const;

 private:
  int64_t count_ = 0;
  int64_t rejected_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<int64_t, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  // Lookup-or-create by name. References stay valid for the registry's
  // lifetime (node-based map storage).
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  // Lookup without creating; nullptr when the instrument was never touched.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Name-ordered visitation, for exporters that render every instrument.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [name, counter] : counters_) fn(name, counter);
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [name, gauge] : gauges_) fn(name, gauge);
  }
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    for (const auto& [name, histogram] : histograms_) fn(name, histogram);
  }

  // Deterministic (name-sorted) JSON image of every instrument.
  std::string ToJson() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_METRICS_H_
