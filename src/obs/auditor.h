// Continuity auditor: checks the paper's service invariants against the
// scheduler's round trace, after every round.
//
// The auditor replays the trace through its own model of the admission-slot
// lifecycle (submitted -> pending -> active -> paused-destructive /
// paused-non-destructive -> completed) and flags any round where the
// scheduler's behaviour departs from the Section 3.4 guarantees:
//
//  - Eq. 11: a saturated round's service time must not outlast the playback
//    of the blocks it fetched, round_time <= min_i(k_i * d_i). Checked only
//    on rounds where every serviced request moved its full k blocks — the
//    steady-state regime the equation governs (short rounds are slack by
//    construction: a request that fetched less had buffered runway).
//  - k-transition stepping: under stepped transitions k may rise by at most
//    one per round (Eq. 18's glitch-free argument), and may shrink only
//    after a slot release (stop, completion, or destructive pause).
//  - Slot accounting: the ledger snapshot the scheduler attaches to each
//    event must equal the auditor's independently replayed ledger, and every
//    admission decision must see exactly the slot-holder set — a resuming
//    request counted both as "existing" and as the candidate (the classic
//    double-count) shows up here as an off-by-one.
//  - Strand placement: every recorded block's realized gap must honour the
//    strand's max-scattering contract.
//  - Retry budget: a faulted block may only be re-read while the round still
//    fits its Eq. 11 budget; a retry completing past the budget it was
//    checked against would have eaten the continuity slack of every other
//    stream in the round.
//  - Cache tenancy: a cache-admitted stream never holds an Eq. 17 slot, so
//    its revocation or departure must not justify a k-shrink, and the
//    ledger's cache_tenants column must replay exactly.
//  - Stream merging: a patch needs a positive gap and a positive Section 3
//    runway bound; a merge needs a preceding patch and a realized runway
//    within the bound stamped at patch time.
//
// It can run online (as the scheduler's TraceSink) or replay a recorded
// TraceLog after the fact. In strict mode, tests assert Clean().

#ifndef VAFS_SRC_OBS_AUDITOR_H_
#define VAFS_SRC_OBS_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/time.h"

namespace vafs {
namespace obs {

struct AuditViolation {
  int64_t round = 0;
  SimTime time = 0;
  std::string what;
};

struct AuditorOptions {
  // Mirrors SchedulerOptions::stepped_transitions: when false (the naive
  // jump policy), the one-step-per-round check is skipped.
  bool stepped_transitions = true;
  // Eq. 11 round-time check on saturated rounds.
  bool check_round_time = true;
  // Fractional slack on the Eq. 11 budget (0.05 = 5%), for workloads whose
  // realized scattering legitimately exceeds the fleet average admission
  // planned with.
  double round_time_slack = 0.0;
};

class ContinuityAuditor : public TraceSink {
 public:
  // Tolerance on the kCriticalPath stage-sum check: the per-stage charges
  // are integer microseconds and the seek/transfer split of one wave may
  // round against the round total by at most a microsecond each way.
  static constexpr SimDuration kStageSumEpsilonUsec = 2;

  explicit ContinuityAuditor(AuditorOptions options = AuditorOptions());

  void OnEvent(const TraceEvent& event) override;

  const std::vector<AuditViolation>& violations() const { return violations_; }
  bool Clean() const { return violations_.empty(); }

  // Fired on every violation as it is flagged (e.g. to trigger a
  // FlightRecorder dump while the rings still hold the lead-up).
  using ViolationHandler = std::function<void(const AuditViolation&)>;
  void set_violation_handler(ViolationHandler handler) {
    violation_handler_ = std::move(handler);
  }
  // All violations joined into one message, for test failure output.
  std::string Report() const;

  // Replays a recorded log through a fresh auditor and returns what it
  // flagged.
  static std::vector<AuditViolation> Replay(const std::vector<TraceEvent>& events,
                                            AuditorOptions options = AuditorOptions());

 private:
  enum class SlotState {
    kPending,
    kActive,
    kPausedNonDestructive,
    kPausedDestructive,
    kCompleted,
  };
  struct RequestState {
    SlotState state = SlotState::kPending;
    // Whether the request had joined the service rotation before a pause,
    // so a non-destructive resume restores the right ledger column.
    bool activated = false;
    // Cache-admitted tenant: rides the rotation without an Eq. 17 slot.
    // Its lifecycle must never set slot_released_ — a k-shrink justified
    // by a cache tenant's departure would eat a real stream's slack.
    bool cache = false;
  };
  struct SessionState {
    bool patched = false;       // a kSessionPatched was seen for this session
    bool merged = false;        // the patch already closed its gap
    int64_t gap_blocks = 0;     // distance behind the leader at attach
    int64_t runway_bound = 0;   // Section 3 buffer bound stamped at patch time
  };

  void Flag(const TraceEvent& event, std::string what);
  SlotSnapshot Ledger() const { return ledger_; }
  // Moves `request` in or out of its ledger column (delta of +1 / -1).
  // Every lifecycle mutation is bracketed by a -1/+1 pair, so the replayed
  // ledger stays exact without rescanning every request the trace ever
  // mentioned — CheckLedger runs on each of the O(streams) lifecycle
  // events, and a rescan there turns a 20k-stream trace into O(N^2).
  void CountRequest(const RequestState& request, int64_t delta);
  void CheckLedger(const TraceEvent& event);
  void HandleLifecycle(const TraceEvent& event);
  void HandleRound(const TraceEvent& event);
  void HandleSession(const TraceEvent& event);

  AuditorOptions options_;
  ViolationHandler violation_handler_;
  std::map<uint64_t, RequestState> requests_;
  // Replayed slot ledger, maintained incrementally by CountRequest.
  SlotSnapshot ledger_;
  // kCacheAdmit precedes the lifecycle event it qualifies (kSubmitAccepted
  // for a fresh tenant, the destructive-path kResume for a re-application):
  // the id is latched here and the flag applied when that event arrives.
  std::set<uint64_t> pending_cache_;
  // Per-session merge bookkeeping (kSessionPatched -> kSessionMerged).
  std::map<uint64_t, SessionState> sessions_;
  std::vector<AuditViolation> violations_;

  // Round bookkeeping.
  int64_t previous_round_k_ = -1;  // -1 until the first round completes
  bool slot_released_ = false;     // since the previous round end
  bool round_open_ = false;
  SimTime round_start_time_ = 0;
  int64_t round_k_ = 0;
  bool round_saturated_ = true;
  int64_t round_serviced_ = 0;
  SimDuration round_min_budget_ = 0;  // min_i(k_i * d_i) over serviced requests
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_AUDITOR_H_
