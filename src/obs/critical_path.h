// Critical-path attribution over the causal span stream.
//
// The scheduler charges every microsecond of a round to exactly one
// SpanStage and publishes the ledger on the round's root span
// (src/obs/span.h). The CriticalPathAnalyzer sits between the scheduler
// and the telemetry tee: it forwards every event unchanged, reconstructs
// each round's span tree on the fly, and after the round's kRoundEnd
// emits one kCriticalPath event naming
//
//   - the per-stage breakdown (sums to the measured round time; the
//     ContinuityAuditor enforces the sum),
//   - the dominating stage and, when a transfer dominates, the arm
//     (disk-array member) and request that ran it,
//   - whether the round is anomalous: its dominant stage deviates from
//     the modal dominant stage of the trailing window.
//
// The same walk is available statically (Analyze) over a recorded event
// vector, plus folded-stack rendering for flame graphs
// (tools/vafs_flame.py) and a JSON report for CI gates
// (tools/check_criticalpath.py).

#ifndef VAFS_SRC_OBS_CRITICAL_PATH_H_
#define VAFS_SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace vafs {
namespace obs {

// One round's attribution verdict.
struct RoundCriticalPath {
  int64_t node = -1;
  int64_t round = 0;
  uint64_t trace_id = 0;
  SimDuration duration = 0;  // measured round service time (kRoundEnd)
  StageBreakdown stages;     // the scheduler's ledger for this round
  SpanStage dominant = SpanStage::kQueue;
  SimDuration dominant_usec = 0;
  uint64_t dominant_request = 0;  // longest transfer span's request (0 = none)
  int64_t dominant_member = -1;   // ... and its disk-array arm (-1 = none)
  bool anomalous = false;
};

struct CriticalPathOptions {
  TraceSink* out = nullptr;     // downstream sink (events pass through)
  size_t trailing_window = 16;  // rounds of dominant-stage history per node
  size_t min_history = 8;       // verdicts withheld until this much history
};

class CriticalPathAnalyzer : public TraceSink {
 public:
  explicit CriticalPathAnalyzer(CriticalPathOptions options) : options_(options) {}

  void OnEvent(const TraceEvent& event) override;

  const std::vector<RoundCriticalPath>& rounds() const { return rounds_; }
  int64_t anomalies() const { return anomalies_; }

  // `{"version":1,"kind":"vafs.critical_path","rounds":[...]}` over every
  // analyzed round, deterministic field order.
  std::string ToJson() const;

  // One-shot walk over a recorded event stream (e.g. TraceLog::events()),
  // applying the same attribution and anomaly rules.
  static std::vector<RoundCriticalPath> Analyze(const std::vector<TraceEvent>& events);

  // Renders the rounds as JSON without an analyzer instance.
  static std::string ToJson(const std::vector<RoundCriticalPath>& rounds);

  // Folded flame stacks over the span events in `events`: one
  // "frame;frame;frame usec" line per unique path, exclusive time
  // (a span's duration minus its children's), path-sorted.
  static std::string FoldedStacks(const std::vector<TraceEvent>& events);

 private:
  // Longest open transfer-ish span of the round being assembled.
  struct PendingRound {
    bool root_seen = false;
    StageBreakdown stages;
    uint64_t trace_id = 0;
    SimDuration dominant_usec = 0;
    uint64_t dominant_request = 0;
    int64_t dominant_member = -1;
    bool dominant_set = false;
  };

  void Ingest(const TraceEvent& event);

  CriticalPathOptions options_;
  PendingRound pending_;
  std::vector<RoundCriticalPath> rounds_;
  // Dominant-stage history per node (node -1 maps to slot 0 via +1; nodes
  // are small dense ids).
  std::vector<std::deque<SpanStage>> history_;
  int64_t anomalies_ = 0;
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_CRITICAL_PATH_H_
