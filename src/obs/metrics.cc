#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace vafs {
namespace obs {

void Histogram::Record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  int bucket = 0;
  if (value > 1.0) {
    const uint64_t magnitude = static_cast<uint64_t>(std::ceil(value)) - 1;
    bucket = std::min(kBuckets - 1, 64 - std::countl_zero(magnitude));
  }
  ++buckets_[static_cast<size_t>(bucket)];
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

namespace {

void AppendEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out->append(buffer);
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string json = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"";
    AppendEscaped(&json, name);
    json += "\": " + std::to_string(counter.value());
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"";
    AppendEscaped(&json, name);
    json += "\": ";
    AppendDouble(&json, gauge.value());
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"";
    AppendEscaped(&json, name);
    json += "\": {\"count\": " + std::to_string(histogram.count());
    json += ", \"sum\": ";
    AppendDouble(&json, histogram.sum());
    json += ", \"min\": ";
    AppendDouble(&json, histogram.min());
    json += ", \"max\": ";
    AppendDouble(&json, histogram.max());
    json += ", \"mean\": ";
    AppendDouble(&json, histogram.Mean());
    // Sparse buckets: [upper_bound, count] pairs for the occupied ones.
    json += ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const int64_t in_bucket = histogram.buckets()[static_cast<size_t>(b)];
      if (in_bucket == 0) {
        continue;
      }
      if (!first_bucket) {
        json += ", ";
      }
      first_bucket = false;
      json += "[";
      AppendDouble(&json, std::ldexp(1.0, b));
      json += ", " + std::to_string(in_bucket) + "]";
    }
    json += "]}";
  }
  json += first ? "}\n" : "\n  }\n";
  json += "}\n";
  return json;
}

}  // namespace obs
}  // namespace vafs
