#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace vafs {
namespace obs {

void Histogram::Record(double value) {
  if (!std::isfinite(value)) {
    // A NaN poisons min_/max_ (and every later comparison) for good; an
    // infinity survives into exported JSON where "inf" does not parse.
    ++rejected_;
    return;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  int bucket = 0;
  if (value >= std::ldexp(1.0, kBuckets - 1)) {
    // Straight to the overflow bucket: for values >= 2^64 the
    // ceil-then-cast below is undefined behaviour, and everything past
    // 2^(kBuckets-1) lands there anyway.
    bucket = kBuckets - 1;
  } else if (value > 1.0) {
    const uint64_t magnitude = static_cast<uint64_t>(std::ceil(value)) - 1;
    bucket = std::min(kBuckets - 1, 64 - std::countl_zero(magnitude));
  }
  ++buckets_[static_cast<size_t>(bucket)];
}

double Histogram::Quantile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::min(1.0, std::max(0.0, p));
  const double target_rank = p * static_cast<double>(count_);
  if (target_rank <= 0.0) {
    return min_;
  }
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const int64_t in_bucket = buckets_[static_cast<size_t>(b)];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(seen + in_bucket) >= target_rank) {
      // The rank lands in this bucket: interpolate across its value range,
      // tightened to the observed extremes (bucket 0 has no lower edge, and
      // the overflow bucket no upper one).
      double lower = b == 0 ? min_ : std::ldexp(1.0, b - 1);
      double upper = b == kBuckets - 1 ? max_ : std::ldexp(1.0, b);
      lower = std::max(lower, min_);
      upper = std::min(upper, max_);
      if (upper < lower) {
        upper = lower;
      }
      const double fraction =
          (target_rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      // At fraction 1.0 return `upper` exactly: `lower + (upper - lower)`
      // cancels catastrophically when the extremes differ by many orders
      // of magnitude.
      return fraction >= 1.0 ? upper : lower + (upper - lower) * fraction;
    }
    seen += in_bucket;
  }
  return max_;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void AppendJsonEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned char>(c));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
}

namespace {

void AppendEscaped(std::string* out, const std::string& text) { AppendJsonEscaped(out, text); }

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out->append(buffer);
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string json = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"";
    AppendEscaped(&json, name);
    json += "\": " + std::to_string(counter.value());
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"";
    AppendEscaped(&json, name);
    json += "\": ";
    AppendDouble(&json, gauge.value());
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"";
    AppendEscaped(&json, name);
    json += "\": {\"count\": " + std::to_string(histogram.count());
    json += ", \"sum\": ";
    AppendDouble(&json, histogram.sum());
    json += ", \"min\": ";
    AppendDouble(&json, histogram.min());
    json += ", \"max\": ";
    AppendDouble(&json, histogram.max());
    json += ", \"mean\": ";
    AppendDouble(&json, histogram.Mean());
    json += ", \"p50\": ";
    AppendDouble(&json, histogram.Quantile(0.50));
    json += ", \"p95\": ";
    AppendDouble(&json, histogram.Quantile(0.95));
    json += ", \"p99\": ";
    AppendDouble(&json, histogram.Quantile(0.99));
    // Sparse buckets: [upper_bound, count] pairs for the occupied ones.
    json += ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const int64_t in_bucket = histogram.buckets()[static_cast<size_t>(b)];
      if (in_bucket == 0) {
        continue;
      }
      if (!first_bucket) {
        json += ", ";
      }
      first_bucket = false;
      json += "[";
      AppendDouble(&json, std::ldexp(1.0, b));
      json += ", " + std::to_string(in_bucket) + "]";
    }
    json += "]}";
  }
  json += first ? "}\n" : "\n  }\n";
  json += "}\n";
  return json;
}

}  // namespace obs
}  // namespace vafs
