// Continuity-SLO accounting over the round trace.
//
// The paper's service contract is temporal: every round must finish before
// the playback of the blocks it fetched (Eq. 11), so a stream's health is
// not "did it glitch" but "how much deadline slack did each round leave".
// SloTracker is a TraceSink that folds the scheduler's round trace into
// per-stream slack/jitter/startup accounting and a continuity-SLO verdict
// of the form "fraction p of accounted rounds ran with at least s slack".
//
// Accounting model (mirrors the ContinuityAuditor's saturation rule):
//  - A round is accounted against a stream only when the stream fetched its
//    full k blocks that round. Its Eq. 11 budget is then k * d_i (blocks
//    times per-block playback), slack = budget - round_duration, and the
//    slack fraction is slack / budget.
//  - Rounds where the stream fetched fewer blocks (completion tail, full
//    device buffers, capture lag) are exempt: the stream had buffered
//    runway, so they carry no deadline.
//  - Jitter is the deviation of consecutive service-completion spacing from
//    the contract period k * d_i, measured between adjacent rounds.
//  - Degraded-block ratio is skipped / (transferred + skipped): the share
//    of the stream rendered as silence by fault handling.
//
// The tracker can fire a breach handler the first time a stream's verdict
// turns false (wired to the FlightRecorder for post-mortem dumps).

#ifndef VAFS_SRC_OBS_SLO_H_
#define VAFS_SRC_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/time.h"

namespace vafs {
namespace obs {

struct SloOptions {
  // A round "meets target slack" when its duration leaves at least this
  // fraction of the stream's Eq. 11 budget unused.
  double slack_target = 0.10;
  // The continuity SLO holds while at least this fraction of a stream's
  // accounted rounds meet the target slack. 0.999 = "99.9% of rounds with
  // >= 10% slack".
  double slo_target = 0.999;
};

// Per-stream accounting. Histograms reuse the metrics bucketing; slack is
// recorded in percent of budget, jitter and startup latency in usec.
struct StreamSlo {
  uint64_t request = 0;
  SimTime submit_time = 0;
  SimDuration startup_latency = -1;  // -1 until first service completion
  bool completed = false;

  int64_t rounds_accounted = 0;    // saturated rounds (carry a deadline)
  int64_t rounds_exempt = 0;       // unsaturated rounds (buffered runway)
  int64_t rounds_within_budget = 0;
  int64_t rounds_meeting_slack = 0;
  double min_slack_fraction = 0.0;  // meaningful once rounds_accounted > 0
  double budget_utilization_sum_pct = 0.0;  // sum over accounted rounds

  Histogram slack_pct;     // per-round slack, percent of the Eq. 11 budget
  Histogram jitter_usec;   // |service spacing - k*d_i| between rounds

  int64_t blocks_transferred = 0;
  int64_t blocks_skipped = 0;
  int64_t blocks_retried = 0;

  // Session layer (src/msm/session_manager.h): 0 = solo stream. A leader
  // carries batched riders on its physical stream; a patch is a short
  // catch-up stream that merges into its leader when the gap closes.
  uint64_t session = 0;
  uint64_t session_leader = 0;  // for a patch: the leader's request id
  int64_t session_riders = 0;   // for a leader: viewers riding its stream
  bool session_patch = false;   // this stream is a catch-up patch
  bool session_merged = false;  // the patch closed its gap

  double WithinBudgetFraction() const {
    return rounds_accounted > 0
               ? static_cast<double>(rounds_within_budget) /
                     static_cast<double>(rounds_accounted)
               : 1.0;
  }
  double MeetingSlackFraction() const {
    return rounds_accounted > 0
               ? static_cast<double>(rounds_meeting_slack) /
                     static_cast<double>(rounds_accounted)
               : 1.0;
  }
  double MeanBudgetUtilizationPct() const {
    return rounds_accounted > 0 ? budget_utilization_sum_pct /
                                      static_cast<double>(rounds_accounted)
                                : 0.0;
  }
  double DegradedRatio() const {
    const int64_t total = blocks_transferred + blocks_skipped;
    return total > 0 ? static_cast<double>(blocks_skipped) / static_cast<double>(total) : 0.0;
  }
  // The continuity verdict: every accounted round inside the hard budget
  // is a precondition; the slack target then has to hold at the SLO rate.
  bool ContinuityMet(const SloOptions& options) const {
    return WithinBudgetFraction() >= options.slo_target &&
           MeetingSlackFraction() >= options.slo_target;
  }
};

struct SloReport {
  SloOptions options;
  int64_t rounds_total = 0;
  // Session-layer aggregates: viewers attached inside the batch window,
  // patches opened, and patches that merged.
  int64_t sessions_batched = 0;
  int64_t sessions_patched = 0;
  int64_t sessions_merged = 0;
  std::vector<StreamSlo> streams;  // ordered by request id

  // Streams whose verdict fails under `options`.
  int64_t BreachedStreams() const;
  // Versioned JSON image (embedded by JsonSnapshotExporter).
  std::string ToJson() const;
};

class SloTracker : public TraceSink {
 public:
  using BreachHandler =
      std::function<void(uint64_t request, const std::string& description)>;

  explicit SloTracker(SloOptions options = SloOptions());

  void OnEvent(const TraceEvent& event) override;

  // Fired at most once per stream, at the round end where its verdict
  // first turns false.
  void set_breach_handler(BreachHandler handler) { breach_handler_ = std::move(handler); }

  SloReport Report() const;
  const SloOptions& options() const { return options_; }
  int64_t rounds_total() const { return rounds_total_; }

  // Verdict over every tracked stream (true when none is in breach).
  bool AllStreamsMeetSlo() const;

 private:
  struct RoundService {
    uint64_t request = 0;
    int64_t blocks = 0;
    SimDuration block_playback = 0;
    SimTime completion = 0;
  };
  struct StreamState {
    StreamSlo slo;
    bool breached = false;
    // Previous round's service completion, for jitter spacing.
    int64_t last_round = -1;
    SimTime last_completion = 0;
    SimDuration last_period = 0;
  };

  void AccountRound(const TraceEvent& round_end);

  SloOptions options_;
  BreachHandler breach_handler_;
  std::map<uint64_t, StreamState> streams_;
  std::vector<RoundService> round_services_;
  int64_t sessions_batched_ = 0;
  int64_t sessions_patched_ = 0;
  int64_t sessions_merged_ = 0;
  int64_t rounds_total_ = 0;
  int64_t round_k_ = 0;
  SimTime round_start_time_ = 0;
  bool round_open_ = false;
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_SLO_H_
