// Minimal JSON document model and recursive-descent parser.
//
// The telemetry exporters (src/obs/export.h) emit JSON; vafs_top loads
// those snapshots back, and the exporter tests validate structure by
// round-tripping through this parser. It handles the full value grammar
// (objects, arrays, strings with escapes, numbers, booleans, null) but is
// deliberately small: no streaming, no comments, documents live in memory.

#ifndef VAFS_SRC_OBS_JSON_H_
#define VAFS_SRC_OBS_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace vafs {
namespace obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  static Result<JsonValue> Parse(const std::string& text);

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Convenience accessors with defaults.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key, const std::string& fallback) const;
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_JSON_H_
