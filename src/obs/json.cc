#include "src/obs/json.h"

#include <cctype>
#include <cstdlib>

namespace vafs {
namespace obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status(ErrorCode::kInvalidArgument,
                  "JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of document");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // consume '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipWhitespace();
      Result<JsonValue> key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      Result<JsonValue> member = ParseValue();
      if (!member.ok()) {
        return member;
      }
      value.object[key->string] = std::move(*member);
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // consume '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    if (Consume(']')) {
      return value;
    }
    while (true) {
      Result<JsonValue> element = ParseValue();
      if (!element.ok()) {
        return element;
      }
      value.array.push_back(std::move(*element));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return value;
      }
      if (c != '\\') {
        value.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          value.string.push_back(escape);
          break;
        case 'b':
          value.string.push_back('\b');
          break;
        case 'f':
          value.string.push_back('\f');
          break;
        case 'n':
          value.string.push_back('\n');
          break;
        case 'r':
          value.string.push_back('\r');
          break;
        case 't':
          value.string.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) {
            return Error("malformed \\u escape");
          }
          // Encode the (basic multilingual plane) code point as UTF-8.
          if (code < 0x80) {
            value.string.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            value.string.push_back(static_cast<char>(0xC0 | (code >> 6)));
            value.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            value.string.push_back(static_cast<char>(0xE0 | (code >> 12)));
            value.string.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            value.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Error("expected boolean");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Error("expected null");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = number;
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) { return Parser(text).Parse(); }

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  auto it = object.find(key);
  return it != object.end() ? &it->second : nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* member = Find(key);
  return member != nullptr && member->type == Type::kNumber ? member->number : fallback;
}

std::string JsonValue::StringOr(const std::string& key, const std::string& fallback) const {
  const JsonValue* member = Find(key);
  return member != nullptr && member->type == Type::kString ? member->string : fallback;
}

}  // namespace obs
}  // namespace vafs
