#include "src/obs/critical_path.h"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>

#include "src/obs/span.h"

namespace vafs {
namespace obs {

namespace {

// Stage preference on exact ties: real work beats bookkeeping, so a round
// that spends as long seeking as queueing is reported as seek-bound.
constexpr std::array<SpanStage, 7> kDominanceOrder = {
    SpanStage::kTransfer, SpanStage::kSeek,       SpanStage::kRetry, SpanStage::kMergePatch,
    SpanStage::kAppend,   SpanStage::kCache,      SpanStage::kQueue,
};

SimDuration StageValue(const StageBreakdown& stages, SpanStage stage) {
  switch (stage) {
    case SpanStage::kQueue:
      return stages.queue;
    case SpanStage::kSeek:
      return stages.seek;
    case SpanStage::kTransfer:
      return stages.transfer;
    case SpanStage::kRetry:
      return stages.retry;
    case SpanStage::kCache:
      return stages.cache;
    case SpanStage::kMergePatch:
      return stages.merge_patch;
    case SpanStage::kAppend:
      return stages.append;
    default:
      return 0;
  }
}

SpanStage DominantStage(const StageBreakdown& stages) {
  SpanStage best = SpanStage::kQueue;
  SimDuration best_value = -1;
  for (const SpanStage stage : kDominanceOrder) {
    const SimDuration value = StageValue(stages, stage);
    if (value > best_value) {
      best = stage;
      best_value = value;
    }
  }
  return best;
}

bool TransferLike(SpanStage stage) {
  return stage == SpanStage::kTransfer || stage == SpanStage::kMergePatch ||
         stage == SpanStage::kAppend || stage == SpanStage::kRetry;
}

void AppendRoundJson(std::string* json, const RoundCriticalPath& round) {
  *json += "{\"node\":" + std::to_string(round.node) +
           ",\"round\":" + std::to_string(round.round) +
           ",\"trace_id\":" + std::to_string(round.trace_id) +
           ",\"duration_usec\":" + std::to_string(round.duration) + ",\"stages\":{";
  *json += "\"queue\":" + std::to_string(round.stages.queue) +
           ",\"seek\":" + std::to_string(round.stages.seek) +
           ",\"transfer\":" + std::to_string(round.stages.transfer) +
           ",\"retry\":" + std::to_string(round.stages.retry) +
           ",\"cache\":" + std::to_string(round.stages.cache) +
           ",\"merge_patch\":" + std::to_string(round.stages.merge_patch) +
           ",\"append\":" + std::to_string(round.stages.append) + "}";
  *json += ",\"total_usec\":" + std::to_string(round.stages.Total());
  *json += ",\"dominant\":\"";
  *json += SpanStageName(round.dominant);
  *json += "\",\"dominant_usec\":" + std::to_string(round.dominant_usec) +
           ",\"dominant_request\":" + std::to_string(round.dominant_request) +
           ",\"dominant_member\":" + std::to_string(round.dominant_member) +
           ",\"anomalous\":" + (round.anomalous ? std::string("true") : std::string("false")) +
           "}";
}

}  // namespace

void CriticalPathAnalyzer::OnEvent(const TraceEvent& event) {
  if (options_.out != nullptr) {
    options_.out->OnEvent(event);
  }
  Ingest(event);
}

void CriticalPathAnalyzer::Ingest(const TraceEvent& event) {
  if (event.kind == TraceEventKind::kSpan) {
    const SpanStage stage = static_cast<SpanStage>(event.span_stage);
    if (stage == SpanStage::kRound) {
      pending_.root_seen = true;
      pending_.stages = event.stages;
      pending_.trace_id = event.trace_id;
    } else if (TransferLike(stage)) {
      // Longest transfer span wins; emission order (batch order) breaks
      // exact ties deterministically in favour of the earliest.
      if (!pending_.dominant_set || event.duration > pending_.dominant_usec) {
        pending_.dominant_set = true;
        pending_.dominant_usec = event.duration;
        pending_.dominant_request = event.request;
        pending_.dominant_member = event.member;
      }
    }
    return;
  }
  if (event.kind != TraceEventKind::kRoundEnd || !pending_.root_seen) {
    return;
  }

  RoundCriticalPath round;
  round.node = event.node;
  round.round = event.round;
  round.trace_id = pending_.trace_id;
  round.duration = event.duration;
  round.stages = pending_.stages;
  round.dominant = DominantStage(round.stages);
  round.dominant_usec = StageValue(round.stages, round.dominant);
  if (TransferLike(round.dominant) && pending_.dominant_set) {
    round.dominant_request = pending_.dominant_request;
    round.dominant_member = pending_.dominant_member;
  }

  const size_t slot = static_cast<size_t>(round.node + 1);
  if (history_.size() <= slot) {
    history_.resize(slot + 1);
  }
  std::deque<SpanStage>& history = history_[slot];
  if (history.size() >= options_.min_history) {
    std::array<size_t, 12> counts{};
    for (const SpanStage stage : history) {
      ++counts[static_cast<size_t>(stage)];
    }
    size_t mode = 0;
    for (size_t i = 1; i < counts.size(); ++i) {
      if (counts[i] > counts[mode]) {
        mode = i;
      }
    }
    round.anomalous = static_cast<size_t>(round.dominant) != mode;
  }
  history.push_back(round.dominant);
  while (history.size() > options_.trailing_window) {
    history.pop_front();
  }

  if (round.anomalous) {
    ++anomalies_;
  }
  rounds_.push_back(round);
  pending_ = PendingRound{};

  if (options_.out != nullptr) {
    TraceEvent verdict;
    verdict.kind = TraceEventKind::kCriticalPath;
    verdict.time = event.time;
    verdict.round = event.round;
    verdict.k = event.k;
    verdict.node = round.node;
    verdict.duration = round.duration;
    verdict.trace_id = round.trace_id;
    verdict.span_stage = static_cast<int64_t>(round.dominant);
    verdict.request = round.dominant_request;
    verdict.member = round.dominant_member;
    verdict.stages = round.stages;
    verdict.anomalous = round.anomalous;
    options_.out->OnEvent(verdict);
  }
}

std::string CriticalPathAnalyzer::ToJson() const { return ToJson(rounds_); }

std::string CriticalPathAnalyzer::ToJson(const std::vector<RoundCriticalPath>& rounds) {
  std::string json = "{\"version\":1,\"kind\":\"vafs.critical_path\",\"rounds\":[";
  for (size_t i = 0; i < rounds.size(); ++i) {
    if (i > 0) {
      json += ",";
    }
    AppendRoundJson(&json, rounds[i]);
  }
  json += "]}";
  return json;
}

std::vector<RoundCriticalPath> CriticalPathAnalyzer::Analyze(
    const std::vector<TraceEvent>& events) {
  CriticalPathAnalyzer analyzer(CriticalPathOptions{});
  for (const TraceEvent& event : events) {
    analyzer.Ingest(event);
  }
  return analyzer.rounds_;
}

std::string CriticalPathAnalyzer::FoldedStacks(const std::vector<TraceEvent>& events) {
  struct Node {
    const TraceEvent* event = nullptr;
    SimDuration children = 0;
  };
  std::unordered_map<uint64_t, Node> spans;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEventKind::kSpan && event.span_id != 0) {
      spans[event.span_id].event = &event;
    }
  }
  for (const auto& [id, node] : spans) {
    if (node.event == nullptr) {
      continue;
    }
    const auto parent = spans.find(node.event->parent_span);
    if (parent != spans.end() && parent->first != id) {
      parent->second.children += node.event->duration;
    }
  }

  std::map<std::string, SimDuration> folded;
  for (const TraceEvent& event : events) {
    if (event.kind != TraceEventKind::kSpan || event.span_id == 0) {
      continue;
    }
    const Node& node = spans[event.span_id];
    const SimDuration exclusive = std::max<SimDuration>(0, event.duration - node.children);
    if (exclusive == 0) {
      continue;
    }
    // Walk the parent chain to the root; depth-bounded so a malformed
    // stream (self-parent, cycle) cannot hang the exporter.
    std::vector<std::string> frames;
    const TraceEvent* cursor = &event;
    for (int depth = 0; cursor != nullptr && depth < 32; ++depth) {
      frames.push_back(SpanFrameName(*cursor));
      const auto parent = spans.find(cursor->parent_span);
      cursor = parent != spans.end() && parent->second.event != cursor ? parent->second.event
                                                                       : nullptr;
    }
    std::string path;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (!path.empty()) {
        path += ";";
      }
      path += *it;
    }
    folded[path] += exclusive;
  }

  std::string out;
  for (const auto& [path, usec] : folded) {
    out += path + " " + std::to_string(usec) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace vafs
