#include "src/obs/auditor.h"

#include <algorithm>
#include <utility>

namespace vafs {
namespace obs {

ContinuityAuditor::ContinuityAuditor(AuditorOptions options) : options_(options) {}

void ContinuityAuditor::Flag(const TraceEvent& event, std::string what) {
  violations_.push_back(AuditViolation{event.round, event.time, std::move(what)});
  if (violation_handler_) {
    violation_handler_(violations_.back());
  }
}

void ContinuityAuditor::CountRequest(const RequestState& request, int64_t delta) {
  switch (request.state) {
    case SlotState::kPending:
    case SlotState::kActive:
    case SlotState::kPausedNonDestructive:
      if (request.cache) {
        // A cache tenant rides the rotation without an Eq. 17 slot: one
        // column regardless of where in the lifecycle it sits.
        ledger_.cache_tenants += delta;
      } else if (request.state == SlotState::kPending) {
        ledger_.pending += delta;
      } else if (request.state == SlotState::kActive) {
        ledger_.active += delta;
      } else {
        ledger_.paused_nondestructive += delta;
      }
      break;
    case SlotState::kPausedDestructive:
      ledger_.paused_destructive += delta;
      break;
    case SlotState::kCompleted:
      break;
  }
}

void ContinuityAuditor::CheckLedger(const TraceEvent& event) {
  const SlotSnapshot replayed = Ledger();
  if (replayed == event.slots) {
    return;
  }
  auto render = [](const SlotSnapshot& s) {
    return "{active=" + std::to_string(s.active) + " pending=" + std::to_string(s.pending) +
           " paused_nd=" + std::to_string(s.paused_nondestructive) +
           " paused_d=" + std::to_string(s.paused_destructive) +
           " cache_t=" + std::to_string(s.cache_tenants) + "}";
  };
  Flag(event, std::string(TraceEventKindName(event.kind)) +
                  ": scheduler slot ledger " + render(event.slots) +
                  " disagrees with replayed lifecycle " + render(replayed));
}

void ContinuityAuditor::HandleLifecycle(const TraceEvent& event) {
  auto it = requests_.find(event.request);
  const bool known = it != requests_.end() && it->second.state != SlotState::kCompleted;
  switch (event.kind) {
    case TraceEventKind::kSubmitAccepted:
      if (known) {
        Flag(event, "submit of request " + std::to_string(event.request) +
                        " which already holds a lifecycle state");
      }
      if (it != requests_.end()) {
        CountRequest(it->second, -1);  // resubmit overwrites the old lifecycle
      }
      {
        const RequestState fresh{SlotState::kPending, false,
                                 pending_cache_.erase(event.request) > 0};
        CountRequest(fresh, +1);
        requests_[event.request] = fresh;
      }
      break;
    case TraceEventKind::kActivated:
      if (!known) {
        Flag(event, "activation of unknown request " + std::to_string(event.request));
        break;
      }
      CountRequest(it->second, -1);
      it->second.activated = true;
      if (it->second.state == SlotState::kPending) {
        it->second.state = SlotState::kActive;
      }
      CountRequest(it->second, +1);
      // A paused request can legitimately reach the head of the pending
      // queue; it stays paused and only the activated flag advances.
      break;
    case TraceEventKind::kPause:
      if (!known || (it->second.state != SlotState::kActive &&
                     it->second.state != SlotState::kPending)) {
        Flag(event, "pause of request " + std::to_string(event.request) +
                        " which is not running or pending");
        break;
      }
      CountRequest(it->second, -1);
      it->second.state = event.destructive ? SlotState::kPausedDestructive
                                           : SlotState::kPausedNonDestructive;
      CountRequest(it->second, +1);
      if (event.destructive && !it->second.cache) {
        // A cache tenant never held a slot, so revoking one (the
        // destructive pause behind kCacheAdmitRevoked) frees nothing a
        // k-shrink could be justified by.
        slot_released_ = true;  // k may legitimately shrink to fit
      }
      break;
    case TraceEventKind::kResume:
      if (!known || (it->second.state != SlotState::kPausedDestructive &&
                     it->second.state != SlotState::kPausedNonDestructive)) {
        Flag(event, "resume of request " + std::to_string(event.request) + " which is not paused");
        break;
      }
      CountRequest(it->second, -1);
      if (it->second.state == SlotState::kPausedDestructive) {
        // Rejoins through the pending queue after fresh admission. Whether
        // it re-entered as a cache tenant or under plain Eq. 17 admission is
        // decided by the kCacheAdmit that did (or did not) precede this
        // resume — the old flag must not survive the re-application.
        it->second.state = SlotState::kPending;
        it->second.activated = false;
        it->second.cache = pending_cache_.erase(event.request) > 0;
      } else {
        it->second.state = it->second.activated ? SlotState::kActive : SlotState::kPending;
      }
      CountRequest(it->second, +1);
      break;
    case TraceEventKind::kStop:
    case TraceEventKind::kCompleted:
      if (!known) {
        Flag(event, std::string(TraceEventKindName(event.kind)) + " of unknown request " +
                        std::to_string(event.request));
        break;
      }
      if (it->second.state != SlotState::kPausedDestructive && !it->second.cache) {
        slot_released_ = true;
      }
      CountRequest(it->second, -1);
      it->second.state = SlotState::kCompleted;
      CountRequest(it->second, +1);
      break;
    default:
      break;
  }
  CheckLedger(event);
}

void ContinuityAuditor::HandleRound(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kRoundStart:
      round_open_ = true;
      round_start_time_ = event.time;
      round_k_ = event.k;
      round_saturated_ = true;
      round_serviced_ = 0;
      round_min_budget_ = 0;
      break;
    case TraceEventKind::kRequestServiced: {
      if (!round_open_) {
        Flag(event, "request serviced outside a round");
        break;
      }
      if (event.blocks != round_k_) {
        round_saturated_ = false;  // completion tail, full buffers, capture lag
      }
      const SimDuration budget = event.blocks * event.block_playback;
      if (round_serviced_ == 0 || budget < round_min_budget_) {
        round_min_budget_ = budget;
      }
      ++round_serviced_;
      break;
    }
    case TraceEventKind::kRoundEnd: {
      round_open_ = false;
      CheckLedger(event);
      if (options_.stepped_transitions && previous_round_k_ >= 0) {
        if (event.k > previous_round_k_ + 1) {
          Flag(event, "k jumped " + std::to_string(previous_round_k_) + " -> " +
                          std::to_string(event.k) + " in one round (Eq. 18 allows one step)");
        } else if (event.k < previous_round_k_ && !slot_released_) {
          Flag(event, "k shrank " + std::to_string(previous_round_k_) + " -> " +
                          std::to_string(event.k) + " without any slot release");
        }
      }
      previous_round_k_ = event.k;
      slot_released_ = false;
      if (options_.check_round_time && round_saturated_ && round_serviced_ > 0) {
        // Eq. 11 on a saturated round: the round must not outlast the
        // playback of any request's fetched blocks.
        const double allowed =
            static_cast<double>(round_min_budget_) * (1.0 + options_.round_time_slack);
        if (static_cast<double>(event.duration) > allowed) {
          Flag(event, "round " + std::to_string(event.round) + " took " +
                          std::to_string(event.duration) + " us but the tightest request's " +
                          "fetched playback is " + std::to_string(round_min_budget_) +
                          " us (Eq. 11 violated)");
        }
      }
      break;
    }
    default:
      break;
  }
}

void ContinuityAuditor::HandleSession(const TraceEvent& event) {
  const std::string tag = "session " + std::to_string(event.session);
  switch (event.kind) {
    case TraceEventKind::kSessionBatched:
      // A batched rider shares the leader's stream outright; it can only
      // attach while the leader is behind it or level with it.
      if (event.gap_blocks < 0) {
        Flag(event, tag + " batched with a negative gap of " +
                        std::to_string(event.gap_blocks) + " blocks");
      }
      break;
    case TraceEventKind::kSessionPatched: {
      SessionState& session = sessions_[event.session];
      if (session.patched) {
        Flag(event, tag + " patched twice");
      }
      if (event.gap_blocks <= 0) {
        // A zero-gap arrival is a batch, not a patch: a patch stream here
        // would spend disk on blocks the leader delivers for free.
        Flag(event, tag + " opened a patch for a gap of " +
                        std::to_string(event.gap_blocks) + " blocks");
      }
      if (event.runway_blocks <= 0) {
        // Section 3 buffering math: while the patch catches up, the rider
        // banks the leader's deliveries into its runway. A bound of zero
        // means the leader had nothing left to deliver at attach — the
        // arrival should have played solo, not patched.
        Flag(event, tag + " patched with a runway bound of " +
                        std::to_string(event.runway_blocks) + " blocks");
      }
      session.patched = true;
      session.merged = false;
      session.gap_blocks = event.gap_blocks;
      session.runway_bound = event.runway_blocks;
      break;
    }
    case TraceEventKind::kSessionMerged: {
      auto it = sessions_.find(event.session);
      if (it == sessions_.end() || !it->second.patched) {
        Flag(event, tag + " merged without a preceding patch");
        break;
      }
      if (it->second.merged) {
        Flag(event, tag + " merged twice");
      }
      if (event.runway_blocks < 0) {
        // The leader moved backwards relative to the patch: the merge hands
        // the rider a hole the leader will never re-read.
        Flag(event, tag + " merged with a realized runway of " +
                        std::to_string(event.runway_blocks) + " blocks (rider is short " +
                        std::to_string(-event.runway_blocks) + " of the leader's trail)");
      } else if (event.runway_blocks > it->second.runway_bound) {
        // The rider banked more than the Section 3 bound planned for — the
        // buffer claim made at patch time understated the memory the merge
        // actually needed.
        Flag(event, tag + " merged with a realized runway of " +
                        std::to_string(event.runway_blocks) + " blocks, above the bound of " +
                        std::to_string(it->second.runway_bound) + " stamped at patch time");
      }
      it->second.merged = true;
      break;
    }
    default:
      break;
  }
}

void ContinuityAuditor::OnEvent(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kSubmitAccepted:
    case TraceEventKind::kActivated:
    case TraceEventKind::kPause:
    case TraceEventKind::kResume:
    case TraceEventKind::kStop:
    case TraceEventKind::kCompleted:
      HandleLifecycle(event);
      break;
    case TraceEventKind::kSubmitRejected:
    case TraceEventKind::kResumeRejected:
      // No state change; the snapshot must still agree.
      CheckLedger(event);
      break;
    case TraceEventKind::kAdmissionPlan:
    case TraceEventKind::kAdmissionReject: {
      // The candidate must not be pre-counted in the existing set: at plan
      // time it holds no slot (fresh submit, or destructively paused and
      // re-applying). The historic Resume double-count shows up here.
      const int64_t holders = Ledger().Held();
      if (event.existing != holders) {
        Flag(event, "admission saw " + std::to_string(event.existing) +
                        " existing requests but " + std::to_string(holders) +
                        " hold slots (double-count or leaked slot)");
      }
      break;
    }
    case TraceEventKind::kRoundStart:
    case TraceEventKind::kRequestServiced:
    case TraceEventKind::kRoundEnd:
      HandleRound(event);
      break;
    case TraceEventKind::kStrandWrite:
      if (event.gap_bound_sec > 0.0 && event.gap_sec > event.gap_bound_sec + 1e-9) {
        Flag(event, "strand block at sector " + std::to_string(event.sector) +
                        " placed with a " + std::to_string(event.gap_sec) +
                        " s gap, over the " + std::to_string(event.gap_bound_sec) +
                        " s scattering contract");
      }
      break;
    case TraceEventKind::kBlockRetried:
      // The scheduler stamps the event with the budget it pre-checked the
      // retry against and the sim time at which the retry *completed*. A
      // completion past the budget means the pre-check lied.
      if (event.round_budget > 0 && round_open_ &&
          event.time - round_start_time_ > event.round_budget) {
        Flag(event, "retry of a block for request " + std::to_string(event.request) +
                        " completed " + std::to_string(event.time - round_start_time_) +
                        " us into a round budgeted at " + std::to_string(event.round_budget) +
                        " us (retry overran the Eq. 11 slack)");
      }
      break;
    case TraceEventKind::kRecovery:
      // The scheduler was rebuilt from a checkpoint: every in-flight request
      // died with the crash, so the replayed ledger starts empty. Keeping
      // pre-crash entries would flag phantom slots against the fresh
      // scheduler's (correctly empty) snapshots.
      requests_.clear();
      pending_cache_.clear();
      sessions_.clear();
      previous_round_k_ = -1;
      slot_released_ = false;
      round_open_ = false;
      break;
    case TraceEventKind::kRoundPlanned:
      // Coalescing and dedup can only shrink the program: more dispatched
      // operations than blocks needing disk service means the planner
      // fabricated work (and each fabricated op costs a reposition).
      if (event.transfers > event.blocks - event.cache_hits) {
        Flag(event, "round " + std::to_string(event.round) + " planned " +
                        std::to_string(event.transfers) + " transfers for only " +
                        std::to_string(event.blocks - event.cache_hits) +
                        " uncached blocks (planner expanded the round)");
      }
      break;
    case TraceEventKind::kSeekAccounting:
      // The measured-vs-worst-case l_seek ledger: per-op arm travel is
      // bounded by a full stroke, so a round's measured travel above the
      // alpha-model bound means the accounting (or the plan) is wrong.
      if (event.seek_cylinders > event.seek_cylinders_worst) {
        Flag(event, "round " + std::to_string(event.round) + " measured " +
                        std::to_string(event.seek_cylinders) +
                        " seek cylinders, above the worst-case bound of " +
                        std::to_string(event.seek_cylinders_worst) + " for " +
                        std::to_string(event.transfers) + " ops");
      }
      break;
    case TraceEventKind::kCacheAdmit:
      // Emitted before the lifecycle event it qualifies: latch the id so
      // the next kSubmitAccepted (fresh tenant) or destructive-path kResume
      // (re-application) of this request is replayed as a cache tenant.
      pending_cache_.insert(event.request);
      CheckLedger(event);
      break;
    case TraceEventKind::kCacheAdmitRevoked:
      // Lifecycle effects arrive as their own kSubmitAccepted / kPause
      // events; the snapshot attached here must still agree.
      CheckLedger(event);
      break;
    case TraceEventKind::kSessionBatched:
    case TraceEventKind::kSessionPatched:
    case TraceEventKind::kSessionMerged:
      // Session events carry no slot snapshot (batching and merging move no
      // slots); only the merge bookkeeping is checked.
      HandleSession(event);
      break;
    case TraceEventKind::kFailover:
      // The robustness headline's contract: a failed-over viewer's service
      // interruption (`duration`, kill to first replica delivery) must fit
      // the bound the coordinator stamped on the event (`round_budget`).
      // An unbounded interruption is a silent stream death wearing a
      // failover costume.
      if (event.round_budget <= 0) {
        Flag(event, "failover of request " + std::to_string(event.request) +
                        " carries no stamped interruption bound");
      } else if (event.duration > event.round_budget) {
        Flag(event, "failover of request " + std::to_string(event.request) + " took " +
                        std::to_string(event.duration) + " us, over its stamped bound of " +
                        std::to_string(event.round_budget) + " us");
      }
      break;
    case TraceEventKind::kCriticalPath:
      // The analyzer's attribution must partition the measured round: every
      // microsecond the round spent is charged to exactly one stage, so the
      // stage sum equals the kRoundEnd duration (epsilon absorbs integer
      // rounding of the seek split).
      {
        const SimDuration total = event.stages.Total();
        const SimDuration delta = total > event.duration ? total - event.duration
                                                         : event.duration - total;
        if (delta > kStageSumEpsilonUsec) {
          Flag(event, "critical path of round " + std::to_string(event.round) +
                          " attributes " + std::to_string(total) +
                          " us across stages but the round measured " +
                          std::to_string(event.duration) + " us");
        }
        if (event.stages.queue < 0) {
          Flag(event, "critical path of round " + std::to_string(event.round) +
                          " charged a negative queue residual of " +
                          std::to_string(event.stages.queue) + " us (stages over-attributed)");
        }
      }
      break;
    case TraceEventKind::kSpan:
      // Span identity must be well-formed: a closed span always links into
      // a trace, and only the root (the round span) is its own parent-less
      // anchor. Durations are intervals, never negative.
      if (event.span_id == 0 || event.trace_id == 0) {
        Flag(event, "span without identity (span_id=" + std::to_string(event.span_id) +
                        " trace_id=" + std::to_string(event.trace_id) + ")");
      }
      if (event.span_stage != static_cast<int64_t>(SpanStage::kRound) &&
          event.span_stage != static_cast<int64_t>(SpanStage::kRoute) &&
          event.parent_span == 0) {
        Flag(event, "non-root span " + std::to_string(event.span_id) + " has no parent link");
      }
      if (event.duration < 0) {
        Flag(event, "span " + std::to_string(event.span_id) + " closed with a negative " +
                        "duration of " + std::to_string(event.duration) + " us");
      }
      break;
    case TraceEventKind::kBlockSkipped:
    case TraceEventKind::kBlockRelocated:
    case TraceEventKind::kDiskFault:
    case TraceEventKind::kDiskSalvage:
    case TraceEventKind::kDiskRead:
    case TraceEventKind::kDiskWrite:
    case TraceEventKind::kPowerCut:
    case TraceEventKind::kRootFlip:
    case TraceEventKind::kJournalAppend:
    case TraceEventKind::kJournalReplay:
    case TraceEventKind::kFsckFinding:
    case TraceEventKind::kCacheInvalidate:
    case TraceEventKind::kNodeDown:
    case TraceEventKind::kNodeUp:
    case TraceEventKind::kReReplicate:
    case TraceEventKind::kShedLoad:
      break;
  }
}

std::string ContinuityAuditor::Report() const {
  if (violations_.empty()) {
    return "audit clean";
  }
  std::string report = std::to_string(violations_.size()) + " audit violation(s):";
  for (const AuditViolation& violation : violations_) {
    report += "\n  [round " + std::to_string(violation.round) + " t=" +
              std::to_string(violation.time) + "] " + violation.what;
  }
  return report;
}

std::vector<AuditViolation> ContinuityAuditor::Replay(const std::vector<TraceEvent>& events,
                                                      AuditorOptions options) {
  ContinuityAuditor auditor(options);
  for (const TraceEvent& event : events) {
    auditor.OnEvent(event);
  }
  return auditor.violations_;
}

}  // namespace obs
}  // namespace vafs
