#include "src/obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vafs {
namespace obs {

SloTracker::SloTracker(SloOptions options) : options_(options) {}

void SloTracker::OnEvent(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kSubmitAccepted: {
      StreamState& state = streams_[event.request];
      state.slo.request = event.request;
      state.slo.submit_time = event.time;
      break;
    }
    case TraceEventKind::kRoundStart:
      round_open_ = true;
      round_k_ = event.k;
      round_start_time_ = event.time;
      round_services_.clear();
      break;
    case TraceEventKind::kRequestServiced: {
      if (!round_open_) {
        break;
      }
      auto it = streams_.find(event.request);
      if (it == streams_.end()) {
        break;  // stream submitted before this tracker attached
      }
      StreamState& state = it->second;
      state.slo.blocks_transferred += event.blocks;
      if (state.slo.startup_latency < 0) {
        state.slo.startup_latency = event.time - state.slo.submit_time;
      }
      round_services_.push_back(
          RoundService{event.request, event.blocks, event.block_playback, event.time});
      break;
    }
    case TraceEventKind::kRoundEnd:
      ++rounds_total_;
      if (round_open_) {
        AccountRound(event);
      }
      round_open_ = false;
      break;
    case TraceEventKind::kBlockSkipped:
      if (auto it = streams_.find(event.request); it != streams_.end()) {
        ++it->second.slo.blocks_skipped;
      }
      break;
    case TraceEventKind::kBlockRetried:
      if (auto it = streams_.find(event.request); it != streams_.end()) {
        ++it->second.slo.blocks_retried;
      }
      break;
    case TraceEventKind::kCompleted:
      if (auto it = streams_.find(event.request); it != streams_.end()) {
        it->second.slo.completed = true;
      }
      break;
    case TraceEventKind::kSessionBatched:
      ++sessions_batched_;
      if (auto it = streams_.find(event.leader); it != streams_.end()) {
        StreamSlo& leader = it->second.slo;
        leader.session = event.session;
        ++leader.session_riders;
      }
      break;
    case TraceEventKind::kSessionPatched:
      ++sessions_patched_;
      if (auto it = streams_.find(event.leader); it != streams_.end()) {
        it->second.slo.session = event.session;
      }
      if (auto it = streams_.find(event.request); it != streams_.end()) {
        StreamSlo& patch = it->second.slo;
        patch.session = event.session;
        patch.session_leader = event.leader;
        patch.session_patch = true;
      }
      break;
    case TraceEventKind::kSessionMerged:
      ++sessions_merged_;
      if (auto it = streams_.find(event.request); it != streams_.end()) {
        it->second.slo.session_merged = true;
      }
      if (auto it = streams_.find(event.leader); it != streams_.end()) {
        // The merged rider now consumes from the leader's deliveries.
        ++it->second.slo.session_riders;
      }
      break;
    default:
      break;
  }
}

void SloTracker::AccountRound(const TraceEvent& round_end) {
  const SimDuration round_duration = round_end.duration;
  const int64_t round_index = round_end.round;
  for (const RoundService& service : round_services_) {
    auto it = streams_.find(service.request);
    if (it == streams_.end()) {
      continue;
    }
    StreamState& state = it->second;
    StreamSlo& slo = state.slo;
    const SimDuration budget = service.blocks * service.block_playback;

    // Jitter: spacing of service completions between adjacent rounds,
    // against the contract period of the earlier round.
    if (state.last_round == round_index - 1 && state.last_period > 0) {
      const SimDuration spacing = service.completion - state.last_completion;
      slo.jitter_usec.Record(std::abs(static_cast<double>(spacing - state.last_period)));
    }
    state.last_round = round_index;
    state.last_completion = service.completion;
    state.last_period = budget;

    if (service.blocks != round_k_ || budget <= 0) {
      ++slo.rounds_exempt;  // unsaturated: buffered runway, no deadline
      continue;
    }
    const double slack_fraction =
        static_cast<double>(budget - round_duration) / static_cast<double>(budget);
    if (slo.rounds_accounted == 0 || slack_fraction < slo.min_slack_fraction) {
      slo.min_slack_fraction = slack_fraction;
    }
    ++slo.rounds_accounted;
    slo.budget_utilization_sum_pct +=
        100.0 * static_cast<double>(round_duration) / static_cast<double>(budget);
    slo.slack_pct.Record(100.0 * slack_fraction);
    if (round_duration <= budget) {
      ++slo.rounds_within_budget;
    }
    if (slack_fraction >= options_.slack_target) {
      ++slo.rounds_meeting_slack;
    }
    if (!state.breached && !slo.ContinuityMet(options_)) {
      state.breached = true;
      if (breach_handler_) {
        char buffer[160];
        std::snprintf(buffer, sizeof(buffer),
                      "stream %llu breached continuity SLO at round %lld: "
                      "%.4f within budget, %.4f meeting %.0f%% slack (target %.4f)",
                      static_cast<unsigned long long>(service.request),
                      static_cast<long long>(round_index), slo.WithinBudgetFraction(),
                      slo.MeetingSlackFraction(), options_.slack_target * 100.0,
                      options_.slo_target);
        breach_handler_(service.request, buffer);
      }
    }
  }
}

SloReport SloTracker::Report() const {
  SloReport report;
  report.options = options_;
  report.rounds_total = rounds_total_;
  report.sessions_batched = sessions_batched_;
  report.sessions_patched = sessions_patched_;
  report.sessions_merged = sessions_merged_;
  report.streams.reserve(streams_.size());
  for (const auto& [id, state] : streams_) {
    report.streams.push_back(state.slo);
  }
  return report;
}

bool SloTracker::AllStreamsMeetSlo() const {
  return std::all_of(streams_.begin(), streams_.end(), [this](const auto& entry) {
    return entry.second.slo.ContinuityMet(options_);
  });
}

int64_t SloReport::BreachedStreams() const {
  return static_cast<int64_t>(
      std::count_if(streams.begin(), streams.end(),
                    [this](const StreamSlo& slo) { return !slo.ContinuityMet(options); }));
}

namespace {

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out->append(buffer);
}

void AppendField(std::string* out, const char* name, double value, bool* first) {
  if (!*first) {
    *out += ", ";
  }
  *first = false;
  *out += "\"";
  *out += name;
  *out += "\": ";
  AppendDouble(out, value);
}

}  // namespace

std::string SloReport::ToJson() const {
  std::string json = "{\"version\": 1, \"kind\": \"vafs.slo.report\", \"slack_target\": ";
  AppendDouble(&json, options.slack_target);
  json += ", \"slo_target\": ";
  AppendDouble(&json, options.slo_target);
  json += ", \"rounds_total\": " + std::to_string(rounds_total);
  json += ", \"breached_streams\": " + std::to_string(BreachedStreams());
  json += ", \"sessions_batched\": " + std::to_string(sessions_batched);
  json += ", \"sessions_patched\": " + std::to_string(sessions_patched);
  json += ", \"sessions_merged\": " + std::to_string(sessions_merged);
  json += ", \"streams\": [";
  bool first_stream = true;
  for (const StreamSlo& slo : streams) {
    if (!first_stream) {
      json += ", ";
    }
    first_stream = false;
    json += "{";
    bool first = true;
    AppendField(&json, "request", static_cast<double>(slo.request), &first);
    AppendField(&json, "completed", slo.completed ? 1.0 : 0.0, &first);
    AppendField(&json, "startup_latency_usec", static_cast<double>(slo.startup_latency), &first);
    AppendField(&json, "rounds_accounted", static_cast<double>(slo.rounds_accounted), &first);
    AppendField(&json, "rounds_exempt", static_cast<double>(slo.rounds_exempt), &first);
    AppendField(&json, "within_budget_fraction", slo.WithinBudgetFraction(), &first);
    AppendField(&json, "meeting_slack_fraction", slo.MeetingSlackFraction(), &first);
    AppendField(&json, "min_slack_fraction",
                slo.rounds_accounted > 0 ? slo.min_slack_fraction : 0.0, &first);
    AppendField(&json, "mean_budget_utilization_pct", slo.MeanBudgetUtilizationPct(), &first);
    AppendField(&json, "slack_pct_p50", slo.slack_pct.Quantile(0.50), &first);
    AppendField(&json, "slack_pct_p99", slo.slack_pct.Quantile(0.99), &first);
    AppendField(&json, "jitter_usec_p50", slo.jitter_usec.Quantile(0.50), &first);
    AppendField(&json, "jitter_usec_p99", slo.jitter_usec.Quantile(0.99), &first);
    AppendField(&json, "blocks_transferred", static_cast<double>(slo.blocks_transferred), &first);
    AppendField(&json, "blocks_skipped", static_cast<double>(slo.blocks_skipped), &first);
    AppendField(&json, "blocks_retried", static_cast<double>(slo.blocks_retried), &first);
    AppendField(&json, "degraded_ratio", slo.DegradedRatio(), &first);
    AppendField(&json, "continuity_met", slo.ContinuityMet(options) ? 1.0 : 0.0, &first);
    AppendField(&json, "session", static_cast<double>(slo.session), &first);
    AppendField(&json, "session_leader", static_cast<double>(slo.session_leader), &first);
    AppendField(&json, "session_riders", static_cast<double>(slo.session_riders), &first);
    AppendField(&json, "session_patch", slo.session_patch ? 1.0 : 0.0, &first);
    AppendField(&json, "session_merged", slo.session_merged ? 1.0 : 0.0, &first);
    json += "}";
  }
  json += "]}";
  return json;
}

}  // namespace obs
}  // namespace vafs
