#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <vector>

namespace vafs {
namespace obs {

const char* TraceSeverityName(TraceSeverity severity) {
  switch (severity) {
    case TraceSeverity::kInfo:
      return "info";
    case TraceSeverity::kWarning:
      return "warn";
    case TraceSeverity::kCritical:
      return "crit";
  }
  return "unknown";
}

TraceSeverity ClassifyTraceEvent(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kBlockSkipped:   // degraded playback reached a user
    case TraceEventKind::kPowerCut:
    case TraceEventKind::kFsckFinding:
    case TraceEventKind::kRecovery:
      return TraceSeverity::kCritical;
    case TraceEventKind::kSubmitRejected:
    case TraceEventKind::kResumeRejected:
    case TraceEventKind::kAdmissionReject:
    case TraceEventKind::kBlockRetried:
    case TraceEventKind::kBlockRelocated:
    case TraceEventKind::kDiskFault:
    case TraceEventKind::kDiskSalvage:
      return TraceSeverity::kWarning;
    default:
      return TraceSeverity::kInfo;
  }
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options) : options_(options) {}

void FlightRecorder::OnEvent(const TraceEvent& event) {
  const TraceSeverity severity = ClassifyTraceEvent(event);
  Ring& ring = rings_[static_cast<size_t>(severity)];
  if (options_.ring_capacity > 0 && ring.entries.size() >= options_.ring_capacity) {
    ring.entries.pop_front();
    ++ring.dropped;
  }
  ring.entries.push_back(Entry{events_seen_++, event});
  if (severity == TraceSeverity::kCritical) {
    TriggerDump(std::string(TraceEventKindName(event.kind)) +
                (event.detail.empty() ? "" : ": " + event.detail));
  }
}

void FlightRecorder::TriggerDump(const std::string& reason) {
  ++triggers_;
  if (options_.dump_once && dumped_) {
    return;
  }
  dumped_ = true;
  last_dump_reason_ = reason;
  last_dump_ = Dump();
  if (dump_handler_) {
    dump_handler_(reason, last_dump_);
  }
}

std::string FlightRecorder::Dump() const {
  // Merge the three rings back into arrival order via the global sequence.
  struct Tagged {
    const Entry* entry;
    TraceSeverity severity;
  };
  std::vector<Tagged> merged;
  for (int s = 0; s < 3; ++s) {
    for (const Entry& entry : rings_[s].entries) {
      merged.push_back(Tagged{&entry, static_cast<TraceSeverity>(s)});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Tagged& a, const Tagged& b) {
    return a.entry->sequence < b.entry->sequence;
  });
  std::string dump = "flight recorder: " + std::to_string(merged.size()) + " events retained";
  for (int s = 0; s < 3; ++s) {
    if (rings_[s].dropped > 0) {
      dump += ", " + std::to_string(rings_[s].dropped) + " " +
              TraceSeverityName(static_cast<TraceSeverity>(s)) + " dropped";
    }
  }
  dump += "\n";
  for (const Tagged& tagged : merged) {
    dump += "[";
    dump += TraceSeverityName(tagged.severity);
    dump += "] ";
    dump += TraceEventSummary(tagged.entry->event);
    dump += "\n";
  }
  return dump;
}

}  // namespace obs
}  // namespace vafs
