// Telemetry exporters: one trace/metrics image per external toolchain.
//
// Every exporter renders an in-memory telemetry source to a string behind
// the common Exporter interface, so benches, tests and the facade write
// them uniformly:
//
//  - PerfettoExporter: Chrome trace-event JSON of a recorded TraceLog.
//    Loadable in ui.perfetto.dev / chrome://tracing: one slice track per
//    request (service windows plus lifecycle instants), a scheduler track
//    of rounds (with their Eq. 11 budget and slack in args), and a disk
//    track of individual transfers (sector, seek distance, faults).
//  - PrometheusExporter: text exposition (version 0.0.4) of a
//    MetricsRegistry. Counters/gauges map directly; histograms map to
//    native Prometheus histograms with power-of-two `le` edges.
//  - JsonSnapshotExporter: versioned JSON snapshot bundling the metrics
//    image, an optional SLO report and trace-log health, for vafs_top and
//    CI artifact diffing.

#ifndef VAFS_SRC_OBS_EXPORT_H_
#define VAFS_SRC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace vafs {

class WorkerPool;

namespace obs {

class Exporter {
 public:
  virtual ~Exporter() = default;
  // Stable format tag ("perfetto", "prometheus", "json").
  virtual const char* Format() const = 0;
  // Conventional file suffix including the dot.
  virtual const char* FileExtension() const = 0;
  virtual std::string Export() const = 0;
};

// Writes exporter output to `path` (trailing newline included).
Status WriteExport(const Exporter& exporter, const std::string& path);

class PerfettoExporter : public Exporter {
 public:
  // The events must outlive the exporter.
  explicit PerfettoExporter(const std::vector<TraceEvent>* events) : events_(events) {}
  const char* Format() const override { return "perfetto"; }
  const char* FileExtension() const override { return ".perfetto.json"; }
  std::string Export() const override;

  // Pool-backed serialization (DESIGN.md section 12): the event body is
  // split into contiguous chunks, each rendered by a worker into its own
  // string, and the chunks are concatenated in event order — the output is
  // byte-identical to the serial Export() for any worker count. Null pool
  // (or small logs) falls back to serial.
  std::string Export(WorkerPool* pool) const;

 private:
  const std::vector<TraceEvent>* events_;
};

class PrometheusExporter : public Exporter {
 public:
  explicit PrometheusExporter(const MetricsRegistry* registry) : registry_(registry) {}
  const char* Format() const override { return "prometheus"; }
  const char* FileExtension() const override { return ".prom"; }
  std::string Export() const override;

  // Instrument name -> exposition metric name: prefixed with "vafs_" and
  // every character outside [a-zA-Z0-9_] replaced by '_'.
  static std::string MetricName(const std::string& instrument);

 private:
  const MetricsRegistry* registry_;
};

class JsonSnapshotExporter : public Exporter {
 public:
  static constexpr int kVersion = 1;

  JsonSnapshotExporter(const MetricsRegistry* registry, const SloTracker* slo = nullptr,
                       const TraceLog* log = nullptr)
      : registry_(registry), slo_(slo), log_(log) {}
  const char* Format() const override { return "json"; }
  const char* FileExtension() const override { return ".snapshot.json"; }
  std::string Export() const override;

 private:
  const MetricsRegistry* registry_;
  const SloTracker* slo_;
  const TraceLog* log_;
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_EXPORT_H_
