// Telemetry exporters: one trace/metrics image per external toolchain.
//
// Every exporter renders an in-memory telemetry source to a string behind
// the common Exporter interface, so benches, tests and the facade write
// them uniformly:
//
//  - PerfettoExporter: Chrome trace-event JSON of a recorded TraceLog.
//    Loadable in ui.perfetto.dev / chrome://tracing: one slice track per
//    request (service windows plus lifecycle instants), a scheduler track
//    of rounds (with their Eq. 11 budget and slack in args), and a disk
//    track of individual transfers (sector, seek distance, faults).
//  - PrometheusExporter: text exposition (version 0.0.4) of a
//    MetricsRegistry. Counters/gauges map directly; histograms map to
//    native Prometheus histograms with power-of-two `le` edges. With a
//    TraceLog attached it also exposes the log's dropped-event counter,
//    and every histogram's rejected-sample counter rides along — silent
//    telemetry loss is itself telemetry.
//  - JsonSnapshotExporter: versioned JSON snapshot bundling the metrics
//    image, an optional SLO report, trace-log health and the critical-path
//    attribution table, for vafs_top and CI artifact diffing.
//  - FoldedStackExporter: folded flame stacks ("a;b;c usec" lines) over
//    the causal span events of a recorded log, for tools/vafs_flame.py.

#ifndef VAFS_SRC_OBS_EXPORT_H_
#define VAFS_SRC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace vafs {

class WorkerPool;

namespace obs {

class Exporter {
 public:
  virtual ~Exporter() = default;
  // Stable format tag ("perfetto", "prometheus", "json").
  virtual const char* Format() const = 0;
  // Conventional file suffix including the dot.
  virtual const char* FileExtension() const = 0;
  virtual std::string Export() const = 0;
};

// Writes exporter output to `path` (trailing newline included).
Status WriteExport(const Exporter& exporter, const std::string& path);

class PerfettoExporter : public Exporter {
 public:
  // The events must outlive the exporter.
  explicit PerfettoExporter(const std::vector<TraceEvent>* events) : events_(events) {}
  const char* Format() const override { return "perfetto"; }
  const char* FileExtension() const override { return ".perfetto.json"; }
  std::string Export() const override;

  // Pool-backed serialization (DESIGN.md section 12): the event body is
  // split into contiguous chunks, each rendered by a worker into its own
  // string, and the chunks are concatenated in event order — the output is
  // byte-identical to the serial Export() for any worker count. Null pool
  // (or small logs) falls back to serial.
  std::string Export(WorkerPool* pool) const;

 private:
  const std::vector<TraceEvent>* events_;
};

class PrometheusExporter : public Exporter {
 public:
  // With a `log`, the exposition leads with vafs_trace_events_dropped_total
  // (the TraceLog's drop counter): a dashboard reading partial telemetry
  // should be able to see that it is partial.
  explicit PrometheusExporter(const MetricsRegistry* registry, const TraceLog* log = nullptr)
      : registry_(registry), log_(log) {}
  const char* Format() const override { return "prometheus"; }
  const char* FileExtension() const override { return ".prom"; }
  std::string Export() const override;

  // Instrument name -> exposition metric name: prefixed with "vafs_" and
  // every character outside [a-zA-Z0-9_] replaced by '_'.
  static std::string MetricName(const std::string& instrument);

 private:
  const MetricsRegistry* registry_;
  const TraceLog* log_;
};

class JsonSnapshotExporter : public Exporter {
 public:
  static constexpr int kVersion = 1;

  JsonSnapshotExporter(const MetricsRegistry* registry, const SloTracker* slo = nullptr,
                       const TraceLog* log = nullptr,
                       const CriticalPathAnalyzer* critical_path = nullptr)
      : registry_(registry), slo_(slo), log_(log), critical_path_(critical_path) {}
  const char* Format() const override { return "json"; }
  const char* FileExtension() const override { return ".snapshot.json"; }
  std::string Export() const override;

 private:
  const MetricsRegistry* registry_;
  const SloTracker* slo_;
  const TraceLog* log_;
  const CriticalPathAnalyzer* critical_path_;
};

// Folded flame stacks over the span events of a recorded log: one
// "frame;frame;frame usec" line per unique root-to-leaf path, exclusive
// time, path-sorted (see CriticalPathAnalyzer::FoldedStacks).
class FoldedStackExporter : public Exporter {
 public:
  // The events must outlive the exporter.
  explicit FoldedStackExporter(const std::vector<TraceEvent>* events) : events_(events) {}
  const char* Format() const override { return "folded"; }
  const char* FileExtension() const override { return ".folded"; }
  std::string Export() const override { return CriticalPathAnalyzer::FoldedStacks(*events_); }

 private:
  const std::vector<TraceEvent>* events_;
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_EXPORT_H_
