#include "src/obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <span>

#include "src/obs/span.h"
#include "src/util/worker_pool.h"

namespace vafs {
namespace obs {

Status WriteExport(const Exporter& exporter, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status(ErrorCode::kIoError, "cannot open " + path + " for writing");
  }
  const std::string body = exporter.Export();
  const size_t written = std::fwrite(body.data(), 1, body.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  if (written != body.size()) {
    return Status(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::Ok();
}

// --- Perfetto --------------------------------------------------------------

namespace {

// Track ids in the trace-event JSON. Requests use their id as tid within
// the scheduler process; the fixed tids below stay clear of them.
constexpr int kSchedulerPid = 1;
constexpr int kDiskPid = 2;
constexpr int kPersistencePid = 3;
constexpr int kSpanPid = 4;
constexpr int kRoundsTid = 0;
constexpr int kDeviceTid = 1;

// Span slices group per storage node: node -1 (single-node) on tid 1.
int64_t SpanTid(const TraceEvent& event) { return event.node + 2; }

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out->append(buffer);
}

class EventWriter {
 public:
  // `continuation` starts the writer as if events were already written, so
  // a chunk rendered by a worker leads with the separating ",\n" and
  // chunk concatenation is byte-identical to one serial pass.
  explicit EventWriter(std::string* out, bool continuation = false)
      : out_(out), first_(!continuation) {}

  // Opens one trace event object with the common fields.
  EventWriter& Begin(const char* ph, int64_t pid, int64_t tid, const std::string& name,
                     SimTime ts) {
    if (!first_) {
      *out_ += ",\n";
    }
    first_ = false;
    *out_ += "  {\"ph\": \"";
    *out_ += ph;
    *out_ += "\", \"pid\": " + std::to_string(pid) + ", \"tid\": " + std::to_string(tid);
    *out_ += ", \"ts\": " + std::to_string(ts);
    *out_ += ", \"name\": \"";
    AppendJsonEscaped(out_, name);
    *out_ += "\"";
    args_open_ = false;
    return *this;
  }

  EventWriter& Field(const char* key, const std::string& value) {
    *out_ += ", \"";
    *out_ += key;
    *out_ += "\": \"";
    AppendJsonEscaped(out_, value);
    *out_ += "\"";
    return *this;
  }

  EventWriter& Duration(SimDuration dur) {
    *out_ += ", \"dur\": " + std::to_string(dur);
    return *this;
  }

  EventWriter& Arg(const char* key, int64_t value) {
    OpenArgs();
    *out_ += "\"";
    *out_ += key;
    *out_ += "\": " + std::to_string(value);
    return *this;
  }

  EventWriter& Arg(const char* key, const std::string& value) {
    OpenArgs();
    *out_ += "\"";
    *out_ += key;
    *out_ += "\": \"";
    AppendJsonEscaped(out_, value);
    *out_ += "\"";
    return *this;
  }

  void End() {
    if (args_open_) {
      *out_ += "}";
    }
    *out_ += "}";
  }

 private:
  void OpenArgs() {
    if (!args_open_) {
      *out_ += ", \"args\": {";
      args_open_ = true;
    } else {
      *out_ += ", ";
    }
  }

  std::string* out_;
  bool first_ = true;
  bool args_open_ = false;
};

void WriteBodyEvent(EventWriter& writer, const TraceEvent& event);

}  // namespace

std::string PerfettoExporter::Export() const { return Export(nullptr); }

std::string PerfettoExporter::Export(WorkerPool* pool) const {
  std::string json = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  EventWriter writer(&json);

  // Naming metadata: processes, the fixed tracks, one thread per request.
  auto name_process = [&](int pid, const char* name) {
    writer.Begin("M", pid, 0, "process_name", 0).Arg("name", std::string(name)).End();
  };
  auto name_thread = [&](int pid, int64_t tid, const std::string& name) {
    writer.Begin("M", pid, tid, "thread_name", 0).Arg("name", name).End();
  };
  const bool has_spans = std::any_of(events_->begin(), events_->end(), [](const TraceEvent& event) {
    return event.kind == TraceEventKind::kSpan || event.kind == TraceEventKind::kCriticalPath;
  });
  name_process(kSchedulerPid, "vafs scheduler");
  name_process(kDiskPid, "vafs disk");
  name_process(kPersistencePid, "vafs persistence");
  if (has_spans) {
    name_process(kSpanPid, "vafs spans");
  }
  name_thread(kSchedulerPid, kRoundsTid, "service rounds");
  name_thread(kDiskPid, kDeviceTid, "transfers");
  name_thread(kPersistencePid, kDeviceTid, "checkpoint/journal/fsck");
  std::set<uint64_t> requests;
  std::set<int64_t> span_nodes;
  for (const TraceEvent& event : *events_) {
    if (event.request != 0 && requests.insert(event.request).second) {
      name_thread(kSchedulerPid, static_cast<int64_t>(event.request),
                  "request " + std::to_string(event.request));
    }
    if ((event.kind == TraceEventKind::kSpan || event.kind == TraceEventKind::kCriticalPath) &&
        span_nodes.insert(event.node).second) {
      name_thread(kSpanPid, SpanTid(event),
                  event.node >= 0 ? "node " + std::to_string(event.node) + " spans" : "spans");
    }
  }

  // Body: serial when the pool is absent/solo or the log is small;
  // otherwise contiguous chunks rendered in parallel and concatenated in
  // event order. The metadata preamble above guarantees every chunk is a
  // continuation, so the bytes match the serial pass exactly.
  constexpr size_t kMinParallelEvents = 4096;
  if (pool == nullptr || pool->workers() <= 1 || events_->size() < kMinParallelEvents) {
    for (const TraceEvent& event : *events_) {
      WriteBodyEvent(writer, event);
    }
  } else {
    const size_t chunks = std::min<size_t>(static_cast<size_t>(pool->workers()),
                                           events_->size() / (kMinParallelEvents / 2));
    const size_t per_chunk = (events_->size() + chunks - 1) / chunks;
    std::vector<std::string> parts(chunks);
    std::vector<WorkerPool::Task> tasks;
    tasks.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      tasks.push_back([this, &parts, c, per_chunk] {
        const size_t begin = c * per_chunk;
        const size_t end = std::min(begin + per_chunk, events_->size());
        EventWriter chunk_writer(&parts[c], /*continuation=*/true);
        for (size_t i = begin; i < end; ++i) {
          WriteBodyEvent(chunk_writer, (*events_)[i]);
        }
      });
    }
    pool->RunAll(std::move(tasks));
    for (const std::string& part : parts) {
      json += part;
    }
  }
  json += "\n]}";
  return json;
}

namespace {

void WriteBodyEvent(EventWriter& writer, const TraceEvent& event) {
  const char* kind = TraceEventKindName(event.kind);
  switch (event.kind) {
    case TraceEventKind::kRoundEnd:
      writer
          .Begin("X", kSchedulerPid, kRoundsTid, "round " + std::to_string(event.round),
                 event.time - event.duration)
          .Duration(event.duration)
          .Arg("k", event.k)
          .Arg("blocks", event.blocks)
          .Arg("budget_usec", event.round_budget)
          .Arg("slack_usec", event.round_budget - event.duration)
          .End();
      break;
    case TraceEventKind::kRequestServiced:
      writer
          .Begin("X", kSchedulerPid, static_cast<int64_t>(event.request), "service",
                 event.time - event.duration)
          .Duration(event.duration)
          .Arg("blocks", event.blocks)
          .Arg("k", event.k)
          .Arg("block_playback_usec", event.block_playback)
          .Arg("budget_usec", event.round_budget)
          .End();
      break;
    case TraceEventKind::kSubmitAccepted:
    case TraceEventKind::kActivated:
    case TraceEventKind::kPause:
    case TraceEventKind::kResume:
    case TraceEventKind::kResumeRejected:
    case TraceEventKind::kStop:
    case TraceEventKind::kCompleted:
    case TraceEventKind::kBlockRetried:
    case TraceEventKind::kBlockSkipped:
    case TraceEventKind::kBlockRelocated: {
      EventWriter& open = writer.Begin("i", kSchedulerPid,
                                       static_cast<int64_t>(event.request), kind, event.time)
                              .Field("s", "t");
      if (event.blocks != 0) {
        open.Arg("blocks", event.blocks);
      }
      if (!event.detail.empty()) {
        open.Arg("detail", event.detail);
      }
      open.End();
      break;
    }
    case TraceEventKind::kSubmitRejected:
    case TraceEventKind::kAdmissionPlan:
    case TraceEventKind::kAdmissionReject:
    case TraceEventKind::kCacheAdmit:
    case TraceEventKind::kCacheAdmitRevoked:
    case TraceEventKind::kRoundPlanned:
    case TraceEventKind::kSeekAccounting:
    case TraceEventKind::kRoundStart: {
      EventWriter& open =
          writer.Begin("i", kSchedulerPid, kRoundsTid, kind, event.time).Field("s", "t");
      if (event.kind == TraceEventKind::kAdmissionPlan) {
        open.Arg("existing", event.existing).Arg("target_k", event.target_k).Arg("n_max",
                                                                                 event.n_max);
      }
      if (event.kind == TraceEventKind::kRoundPlanned) {
        open.Arg("transfers", event.transfers)
            .Arg("blocks", event.blocks)
            .Arg("coalesced", event.coalesced_blocks)
            .Arg("deduped", event.deduped_blocks)
            .Arg("cache_hits", event.cache_hits);
      }
      if (event.kind == TraceEventKind::kSeekAccounting) {
        open.Arg("ops", event.transfers)
            .Arg("seek_cylinders", event.seek_cylinders)
            .Arg("seek_cylinders_worst", event.seek_cylinders_worst);
      }
      if (!event.detail.empty()) {
        open.Arg("detail", event.detail);
      }
      open.End();
      break;
    }
    case TraceEventKind::kDiskRead:
    case TraceEventKind::kDiskWrite:
    case TraceEventKind::kDiskSalvage:
    case TraceEventKind::kDiskFault:
    case TraceEventKind::kPowerCut: {
      EventWriter& open = writer
                              .Begin("X", kDiskPid, kDeviceTid, kind,
                                     event.time - event.duration)
                              .Duration(event.duration)
                              .Arg("sector", event.sector)
                              .Arg("sectors", event.blocks)
                              .Arg("seek_cylinders", event.seek_cylinders);
      if (!event.detail.empty()) {
        open.Arg("detail", event.detail);
      }
      open.End();
      break;
    }
    case TraceEventKind::kCacheInvalidate: {
      writer.Begin("i", kDiskPid, kDeviceTid, kind, event.time)
          .Field("s", "t")
          .Arg("sector", event.sector)
          .Arg("entries_dropped", event.blocks)
          .End();
      break;
    }
    case TraceEventKind::kStrandWrite: {
      EventWriter& open =
          writer.Begin("i", kDiskPid, kDeviceTid, kind, event.time).Field("s", "t");
      open.Arg("sector", event.sector);
      if (event.gap_sec >= 0.0) {
        open.Arg("gap_ms", static_cast<int64_t>(event.gap_sec * 1e3));
      }
      open.End();
      break;
    }
    case TraceEventKind::kRootFlip:
    case TraceEventKind::kJournalAppend:
    case TraceEventKind::kJournalReplay:
    case TraceEventKind::kFsckFinding:
    case TraceEventKind::kRecovery: {
      EventWriter& open =
          writer.Begin("i", kPersistencePid, kDeviceTid, kind, event.time).Field("s", "t");
      if (event.sector != 0) {
        open.Arg("sector", event.sector);
      }
      if (!event.detail.empty()) {
        open.Arg("detail", event.detail);
      }
      open.End();
      break;
    }
    case TraceEventKind::kSpan: {
      // Parent-linked slice: ids ride as string args (64-bit ids overflow
      // JSON number precision), so ui.perfetto.dev can reconstruct the
      // tree via args.span_id / args.parent_id.
      EventWriter& open = writer
                              .Begin("X", kSpanPid, SpanTid(event), SpanFrameName(event),
                                     event.time - event.duration)
                              .Duration(event.duration)
                              .Arg("trace_id", std::to_string(event.trace_id))
                              .Arg("span_id", std::to_string(event.span_id))
                              .Arg("parent_id", std::to_string(event.parent_span))
                              .Arg("stage",
                                   std::string(SpanStageName(
                                       static_cast<SpanStage>(event.span_stage))));
      if (event.request != 0) {
        open.Arg("request", static_cast<int64_t>(event.request));
      }
      if (event.member >= 0) {
        open.Arg("member", event.member);
      }
      if (event.span_seek > 0) {
        open.Arg("seek_usec", event.span_seek);
      }
      open.End();
      break;
    }
    case TraceEventKind::kCriticalPath: {
      EventWriter& open =
          writer
              .Begin("i", kSpanPid, SpanTid(event),
                     "critical_path " +
                         std::string(SpanStageName(static_cast<SpanStage>(event.span_stage))),
                     event.time)
              .Field("s", "t")
              .Arg("round", event.round)
              .Arg("duration_usec", event.duration)
              .Arg("queue_usec", event.stages.queue)
              .Arg("seek_usec", event.stages.seek)
              .Arg("transfer_usec", event.stages.transfer)
              .Arg("retry_usec", event.stages.retry)
              .Arg("cache_usec", event.stages.cache)
              .Arg("merge_patch_usec", event.stages.merge_patch)
              .Arg("append_usec", event.stages.append)
              .Arg("anomalous", static_cast<int64_t>(event.anomalous ? 1 : 0));
      if (event.request != 0) {
        open.Arg("request", static_cast<int64_t>(event.request));
      }
      if (event.member >= 0) {
        open.Arg("member", event.member);
      }
      open.End();
      break;
    }
  }
}

}  // namespace

// --- Prometheus ------------------------------------------------------------

std::string PrometheusExporter::MetricName(const std::string& instrument) {
  std::string name = "vafs_";
  for (char c : instrument) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_';
    name.push_back(ok ? c : '_');
  }
  return name;
}

std::string PrometheusExporter::Export() const {
  std::string out;
  if (log_ != nullptr) {
    // Telemetry health first: a scrape that reads the rest of this page
    // should know whether the bounded log shed events to produce it.
    out += "# TYPE vafs_trace_events_dropped_total counter\n";
    out += "vafs_trace_events_dropped_total " + std::to_string(log_->dropped()) + "\n";
    out += "# TYPE vafs_trace_events_retained gauge\n";
    out += "vafs_trace_events_retained " + std::to_string(log_->events().size()) + "\n";
  }
  registry_->ForEachCounter([&](const std::string& name, const Counter& counter) {
    const std::string metric = MetricName(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(counter.value()) + "\n";
  });
  registry_->ForEachGauge([&](const std::string& name, const Gauge& gauge) {
    const std::string metric = MetricName(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " ";
    AppendDouble(&out, gauge.value());
    out += "\n";
  });
  registry_->ForEachHistogram([&](const std::string& name, const Histogram& histogram) {
    const std::string metric = MetricName(name);
    out += "# TYPE " + metric + " histogram\n";
    int last_occupied = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (histogram.buckets()[static_cast<size_t>(b)] > 0) {
        last_occupied = b;
      }
    }
    int64_t cumulative = 0;
    for (int b = 0; b <= last_occupied; ++b) {
      cumulative += histogram.buckets()[static_cast<size_t>(b)];
      out += metric + "_bucket{le=\"";
      AppendDouble(&out, std::ldexp(1.0, b));
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(histogram.count()) + "\n";
    out += metric + "_sum ";
    AppendDouble(&out, histogram.sum());
    out += "\n" + metric + "_count " + std::to_string(histogram.count()) + "\n";
    // Samples the histogram refused (non-finite values): silently dropped
    // data would make the distribution above look healthier than it is.
    out += "# TYPE " + metric + "_rejected_total counter\n";
    out += metric + "_rejected_total " + std::to_string(histogram.rejected()) + "\n";
  });
  return out;
}

// --- JSON snapshot ---------------------------------------------------------

std::string JsonSnapshotExporter::Export() const {
  std::string json = "{\"version\": " + std::to_string(kVersion) +
                     ", \"kind\": \"vafs.telemetry.snapshot\", \"trace\": ";
  if (log_ != nullptr) {
    json += "{\"events_retained\": " + std::to_string(log_->events().size()) +
            ", \"events_dropped\": " + std::to_string(log_->dropped()) + "}";
  } else {
    json += "null";
  }
  json += ", \"slo\": ";
  json += slo_ != nullptr ? slo_->Report().ToJson() : "null";
  json += ", \"critical_path\": ";
  json += critical_path_ != nullptr ? critical_path_->ToJson() : "null";
  json += ", \"metrics\": ";
  const std::string metrics = registry_->ToJson();
  // ToJson ends with a newline; trim it so the envelope stays compact.
  json.append(metrics, 0, metrics.size() - (metrics.back() == '\n' ? 1 : 0));
  json += "}";
  return json;
}

}  // namespace obs
}  // namespace vafs
