// Causal span identity for the trace stream.
//
// Every trace-producing stage can open a span: a closed interval with a
// (trace_id, span_id, parent_span) triple that links it into a per-round
// tree. The ids are pure functions of structural indices — node, round,
// stage, and a deterministic ordinal (wave number, batch slot, retry
// attempt) — mixed through splitmix64. Wall clock never feeds the ids, so
// the span stream honours the wall-clock engine's invariant (DESIGN.md
// section 12): byte-identical telemetry for any VAFS_WORKERS count.
//
// Spans are flat TraceEvents (kind = kSpan), emitted at close with their
// duration, riding the existing sink graph. The tree structure lives only
// in the id links; CriticalPathAnalyzer (src/obs/critical_path.h) and the
// Perfetto/folded-stack exporters (src/obs/export.h) rebuild it.

#ifndef VAFS_SRC_OBS_SPAN_H_
#define VAFS_SRC_OBS_SPAN_H_

#include <cstdint>
#include <string>

#include "src/obs/trace.h"

namespace vafs {
namespace obs {

// splitmix64 finalizer: a cheap, high-quality 64-bit mixer. Deterministic
// and platform-independent (pure uint64 arithmetic).
inline uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combines two ids order-sensitively (not commutative, never 0 in
// practice: MixId's output is 0 only for one input in 2^64).
inline uint64_t MixIds(uint64_t a, uint64_t b) {
  return MixId(a ^ MixId(b + 0x2545f4914f6cdd1dULL));
}

// The trace id of one scheduler round on one node. `node` is -1 for a
// single-node scheduler; the +2 offset keeps the -1 and 0 cases distinct
// without relying on signed wraparound.
inline uint64_t RoundTraceId(int64_t node, int64_t round) {
  return MixIds(static_cast<uint64_t>(node + 2), static_cast<uint64_t>(round + 1));
}

// The span id of a trace's root (the round span).
inline uint64_t RootSpanId(uint64_t trace_id) { return MixIds(trace_id, 1); }

// A child span id: parent link x stage x deterministic ordinal.
inline uint64_t ChildSpanId(uint64_t parent_span, SpanStage stage, uint64_t ordinal) {
  return MixIds(parent_span, MixIds(static_cast<uint64_t>(stage) + 1, ordinal + 1));
}

// Frame label for one span in a folded flame stack ("transfer req3 arm1",
// "node 2 round r7"). Shared by the folded-stack exporter and vafs_flame.
std::string SpanFrameName(const TraceEvent& event);

// Fills the span identity fields of an already-shaped TraceEvent and
// stamps kind = kSpan. The caller provides timing/round/request context.
inline void StampSpan(TraceEvent* event, uint64_t trace_id, uint64_t span_id,
                      uint64_t parent_span, SpanStage stage) {
  event->kind = TraceEventKind::kSpan;
  event->trace_id = trace_id;
  event->span_id = span_id;
  event->parent_span = parent_span;
  event->span_stage = static_cast<int64_t>(stage);
}

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_SPAN_H_
