#include "src/obs/span.h"

namespace vafs {
namespace obs {

std::string SpanFrameName(const TraceEvent& event) {
  if (event.span_stage < 0) {
    return "?";
  }
  const SpanStage stage = static_cast<SpanStage>(event.span_stage);
  std::string name = SpanStageName(stage);
  switch (stage) {
    case SpanStage::kRound:
      name += " r" + std::to_string(event.round);
      if (event.node >= 0) {
        name = "node " + std::to_string(event.node) + " " + name;
      }
      break;
    case SpanStage::kWave:
      name += " " + std::to_string(event.sector);  // wave ordinal
      break;
    case SpanStage::kTransfer:
    case SpanStage::kMergePatch:
    case SpanStage::kAppend:
    case SpanStage::kCache:
      if (event.request != 0) {
        name += " req" + std::to_string(event.request);
      }
      if (event.member >= 0) {
        name += " arm" + std::to_string(event.member);
      }
      break;
    case SpanStage::kRetry:
      if (event.request != 0) {
        name += " req" + std::to_string(event.request);
      }
      break;
    case SpanStage::kQueue:
    case SpanStage::kSeek:
    case SpanStage::kPlan:
    case SpanStage::kRoute:
    case SpanStage::kSession:
      break;
  }
  return name;
}

}  // namespace obs
}  // namespace vafs
