#include "src/obs/trace.h"

#include <algorithm>
#include <cstddef>

namespace vafs {
namespace obs {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmitAccepted:
      return "submit_accepted";
    case TraceEventKind::kSubmitRejected:
      return "submit_rejected";
    case TraceEventKind::kActivated:
      return "activated";
    case TraceEventKind::kPause:
      return "pause";
    case TraceEventKind::kResume:
      return "resume";
    case TraceEventKind::kResumeRejected:
      return "resume_rejected";
    case TraceEventKind::kStop:
      return "stop";
    case TraceEventKind::kCompleted:
      return "completed";
    case TraceEventKind::kAdmissionPlan:
      return "admission_plan";
    case TraceEventKind::kAdmissionReject:
      return "admission_reject";
    case TraceEventKind::kRoundStart:
      return "round_start";
    case TraceEventKind::kRequestServiced:
      return "request_serviced";
    case TraceEventKind::kRoundEnd:
      return "round_end";
    case TraceEventKind::kBlockRetried:
      return "block_retried";
    case TraceEventKind::kBlockSkipped:
      return "block_skipped";
    case TraceEventKind::kBlockRelocated:
      return "block_relocated";
    case TraceEventKind::kDiskRead:
      return "disk_read";
    case TraceEventKind::kDiskWrite:
      return "disk_write";
    case TraceEventKind::kDiskFault:
      return "disk_fault";
    case TraceEventKind::kDiskSalvage:
      return "disk_salvage";
    case TraceEventKind::kPowerCut:
      return "power_cut";
    case TraceEventKind::kStrandWrite:
      return "strand_write";
    case TraceEventKind::kRootFlip:
      return "root_flip";
    case TraceEventKind::kJournalAppend:
      return "journal_append";
    case TraceEventKind::kJournalReplay:
      return "journal_replay";
    case TraceEventKind::kFsckFinding:
      return "fsck_finding";
    case TraceEventKind::kRecovery:
      return "recovery";
    case TraceEventKind::kRoundPlanned:
      return "round_planned";
    case TraceEventKind::kSeekAccounting:
      return "seek_accounting";
    case TraceEventKind::kCacheAdmit:
      return "cache_admit";
    case TraceEventKind::kCacheAdmitRevoked:
      return "cache_admit_revoked";
    case TraceEventKind::kCacheInvalidate:
      return "cache_invalidate";
    case TraceEventKind::kSessionBatched:
      return "session_batched";
    case TraceEventKind::kSessionPatched:
      return "session_patched";
    case TraceEventKind::kSessionMerged:
      return "session_merged";
    case TraceEventKind::kNodeDown:
      return "node_down";
    case TraceEventKind::kNodeUp:
      return "node_up";
    case TraceEventKind::kFailover:
      return "failover";
    case TraceEventKind::kReReplicate:
      return "re_replicate";
    case TraceEventKind::kShedLoad:
      return "shed_load";
    case TraceEventKind::kSpan:
      return "span";
    case TraceEventKind::kCriticalPath:
      return "critical_path";
  }
  return "unknown";
}

const char* SpanStageName(SpanStage stage) {
  switch (stage) {
    case SpanStage::kRound:
      return "round";
    case SpanStage::kQueue:
      return "queue";
    case SpanStage::kSeek:
      return "seek";
    case SpanStage::kTransfer:
      return "transfer";
    case SpanStage::kRetry:
      return "retry";
    case SpanStage::kCache:
      return "cache";
    case SpanStage::kMergePatch:
      return "merge_patch";
    case SpanStage::kAppend:
      return "append";
    case SpanStage::kWave:
      return "wave";
    case SpanStage::kPlan:
      return "plan";
    case SpanStage::kRoute:
      return "route";
    case SpanStage::kSession:
      return "session";
  }
  return "?";
}

std::string TraceEventSummary(const TraceEvent& event) {
  std::string line = "t=" + std::to_string(event.time) + " round=" + std::to_string(event.round) +
                     " " + TraceEventKindName(event.kind);
  if (event.request != 0) {
    line += " req=" + std::to_string(event.request);
  }
  if (event.k != 0) {
    line += " k=" + std::to_string(event.k);
  }
  if (event.blocks != 0) {
    line += " blocks=" + std::to_string(event.blocks);
  }
  if (event.sector != 0) {
    line += " sector=" + std::to_string(event.sector);
  }
  if (event.seek_cylinders != 0) {
    line += " seek=" + std::to_string(event.seek_cylinders) + "cyl";
  }
  if (event.transfers != 0) {
    line += " transfers=" + std::to_string(event.transfers);
  }
  if (event.coalesced_blocks != 0) {
    line += " coalesced=" + std::to_string(event.coalesced_blocks);
  }
  if (event.cache_lookups != 0) {
    line += " cache=" + std::to_string(event.cache_hits) + "/" +
            std::to_string(event.cache_lookups);
  }
  if (event.seek_cylinders_worst != 0) {
    line += " seek_worst=" + std::to_string(event.seek_cylinders_worst) + "cyl";
  }
  if (event.duration != 0) {
    line += " dur=" + std::to_string(event.duration) + "us";
  }
  if (event.round_budget != 0) {
    line += " budget=" + std::to_string(event.round_budget) + "us";
  }
  if (event.destructive) {
    line += " destructive";
  }
  if (event.session != 0) {
    line += " session=" + std::to_string(event.session);
    if (event.leader != 0) {
      line += " leader=" + std::to_string(event.leader);
    }
    line += " gap=" + std::to_string(event.gap_blocks) +
            " runway=" + std::to_string(event.runway_blocks);
  }
  if (event.node >= 0) {
    line += " node=" + std::to_string(event.node);
  }
  if (event.span_id != 0) {
    line += " span=" + std::to_string(event.span_id) + "<" + std::to_string(event.parent_span) +
            " trace=" + std::to_string(event.trace_id);
    if (event.span_stage >= 0) {
      line += " stage=";
      line += SpanStageName(static_cast<SpanStage>(event.span_stage));
    }
    if (event.span_seek != 0) {
      line += " span_seek=" + std::to_string(event.span_seek) + "us";
    }
    if (event.member >= 0) {
      line += " member=" + std::to_string(event.member);
    }
  }
  if (event.kind == TraceEventKind::kCriticalPath || event.stages != StageBreakdown{}) {
    line += " stages[q=" + std::to_string(event.stages.queue) +
            " s=" + std::to_string(event.stages.seek) +
            " x=" + std::to_string(event.stages.transfer) +
            " r=" + std::to_string(event.stages.retry) +
            " c=" + std::to_string(event.stages.cache) +
            " m=" + std::to_string(event.stages.merge_patch) +
            " a=" + std::to_string(event.stages.append) + "]";
    if (event.anomalous) {
      line += " ANOMALOUS";
    }
  }
  if (!event.detail.empty()) {
    line += " [" + event.detail + "]";
  }
  return line;
}

void TraceLog::OnEvent(const TraceEvent& event) {
  if (capacity_ > 0 && events_.size() >= capacity_) {
    // Drop the oldest quarter in one go so a full log erases from the front
    // O(1) amortized rather than per event.
    const size_t drop = std::max<size_t>(1, capacity_ / 4);
    events_.erase(events_.begin(), events_.begin() + static_cast<ptrdiff_t>(drop));
    dropped_ += static_cast<int64_t>(drop);
  }
  events_.push_back(event);
}

void MetricsSink::OnEvent(const TraceEvent& event) {
  MetricsRegistry& m = *registry_;
  switch (event.kind) {
    case TraceEventKind::kSubmitAccepted:
      m.counter("scheduler.submits_accepted").Increment();
      break;
    case TraceEventKind::kSubmitRejected:
      m.counter("scheduler.submits_rejected").Increment();
      break;
    case TraceEventKind::kActivated:
      m.counter("scheduler.activations").Increment();
      break;
    case TraceEventKind::kPause:
      m.counter(event.destructive ? "scheduler.pauses_destructive"
                                  : "scheduler.pauses_nondestructive")
          .Increment();
      break;
    case TraceEventKind::kResume:
      m.counter("scheduler.resumes").Increment();
      break;
    case TraceEventKind::kResumeRejected:
      m.counter("scheduler.resumes_rejected").Increment();
      break;
    case TraceEventKind::kStop:
      m.counter("scheduler.stops").Increment();
      break;
    case TraceEventKind::kCompleted:
      m.counter("scheduler.completions").Increment();
      break;
    case TraceEventKind::kAdmissionPlan:
      m.counter("admission.plans_accepted").Increment();
      m.histogram("admission.transition_steps")
          .Record(static_cast<double>(event.target_k - event.k > 0 ? event.target_k - event.k : 0));
      break;
    case TraceEventKind::kAdmissionReject:
      m.counter("admission.rejections").Increment();
      break;
    case TraceEventKind::kRoundStart:
      break;
    case TraceEventKind::kRequestServiced:
      m.counter("scheduler.blocks_serviced").Increment(event.blocks);
      if (event.duration > 0) {
        m.histogram("scheduler.request_service_usec").Record(static_cast<double>(event.duration));
      }
      break;
    case TraceEventKind::kRoundEnd:
      m.counter("scheduler.rounds").Increment();
      m.histogram("scheduler.round_duration_usec").Record(static_cast<double>(event.duration));
      m.histogram("scheduler.round_blocks").Record(static_cast<double>(event.blocks));
      m.gauge("scheduler.current_k").Set(static_cast<double>(event.k));
      m.gauge("scheduler.slots_active").Set(static_cast<double>(event.slots.active));
      m.gauge("scheduler.slots_pending").Set(static_cast<double>(event.slots.pending));
      m.gauge("scheduler.slots_paused_nondestructive")
          .Set(static_cast<double>(event.slots.paused_nondestructive));
      m.gauge("scheduler.slots_paused_destructive")
          .Set(static_cast<double>(event.slots.paused_destructive));
      m.gauge("scheduler.slots_cache_tenants")
          .Set(static_cast<double>(event.slots.cache_tenants));
      m.gauge("scheduler.slots_held").Set(static_cast<double>(event.slots.Held()));
      break;
    case TraceEventKind::kBlockRetried:
      m.counter("scheduler.block_retries").Increment();
      m.histogram("scheduler.retry_service_usec").Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kBlockSkipped:
      m.counter("scheduler.blocks_skipped").Increment();
      break;
    case TraceEventKind::kBlockRelocated:
      m.counter("store.blocks_relocated").Increment(event.blocks);
      break;
    case TraceEventKind::kDiskRead:
      m.counter("disk.reads").Increment();
      m.counter("disk.sectors_read").Increment(event.blocks);
      m.histogram("disk.read_service_usec").Record(static_cast<double>(event.duration));
      m.histogram("disk.seek_cylinders").Record(static_cast<double>(event.seek_cylinders));
      break;
    case TraceEventKind::kDiskWrite:
      m.counter("disk.writes").Increment();
      m.counter("disk.sectors_written").Increment(event.blocks);
      m.histogram("disk.write_service_usec").Record(static_cast<double>(event.duration));
      m.histogram("disk.seek_cylinders").Record(static_cast<double>(event.seek_cylinders));
      break;
    case TraceEventKind::kDiskFault:
      m.counter("disk.faults").Increment();
      m.counter("disk.faults." + event.detail).Increment();
      m.histogram("disk.fault_service_usec").Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kDiskSalvage:
      m.counter("disk.salvage_reads").Increment();
      m.histogram("disk.salvage_service_usec").Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kPowerCut:
      m.counter("disk.power_cuts").Increment();
      ++power_cuts_pending_;
      break;
    case TraceEventKind::kStrandWrite:
      m.counter("store.strand_blocks_written").Increment();
      if (event.gap_sec >= 0.0) {
        m.histogram("store.strand_gap_ms").Record(event.gap_sec * 1e3);
      }
      break;
    case TraceEventKind::kRootFlip:
      m.counter("persistence.root_flips").Increment();
      m.gauge("persistence.generation").Set(static_cast<double>(event.round));
      break;
    case TraceEventKind::kJournalAppend:
      m.counter("persistence.journal_appends").Increment();
      break;
    case TraceEventKind::kJournalReplay:
      m.counter("persistence.journal_replays").Increment();
      break;
    case TraceEventKind::kFsckFinding:
      m.counter("fsck.findings").Increment();
      m.counter("fsck.findings." + event.detail).Increment();
      break;
    case TraceEventKind::kRecovery:
      m.counter("recovery.completions").Increment();
      if (power_cuts_pending_ > 0) {
        // Every cut since the previous recovery is its own crash point; a
        // recovery that had to ride out two back-to-back cuts survived two.
        m.counter("recovery.crash_points_survived").Increment(power_cuts_pending_);
        power_cuts_pending_ = 0;
      }
      break;
    case TraceEventKind::kRoundPlanned:
      m.counter("plan.rounds").Increment();
      m.counter("plan.read_transfers").Increment(event.transfers);
      m.counter("plan.data_blocks").Increment(event.blocks);
      m.counter("plan.coalesced_blocks").Increment(event.coalesced_blocks);
      m.counter("plan.deduped_blocks").Increment(event.deduped_blocks);
      m.histogram("plan.transfers_per_round").Record(static_cast<double>(event.transfers));
      if (event.cache_lookups > 0) {
        m.counter("cache.lookups").Increment(event.cache_lookups);
        m.counter("cache.hits").Increment(event.cache_hits);
      }
      m.gauge("cache.resident_bytes").Set(static_cast<double>(event.cache_resident_bytes));
      m.gauge("cache.pinned_entries").Set(static_cast<double>(event.cache_pinned_entries));
      m.gauge("cache.evictions").Set(static_cast<double>(event.cache_evictions));
      m.gauge("cache.hit_rate_recent").Set(event.cache_hit_rate);
      m.gauge("page_pool.outstanding").Set(static_cast<double>(event.pool_outstanding));
      m.gauge("page_pool.recycled").Set(static_cast<double>(event.pool_recycled));
      break;
    case TraceEventKind::kSeekAccounting:
      m.histogram("plan.seek_cylinders_measured").Record(static_cast<double>(event.seek_cylinders));
      m.histogram("plan.seek_cylinders_worst").Record(static_cast<double>(event.seek_cylinders_worst));
      if (event.seek_cylinders_worst > event.seek_cylinders) {
        m.counter("plan.seek_cylinders_saved")
            .Increment(event.seek_cylinders_worst - event.seek_cylinders);
      }
      break;
    case TraceEventKind::kCacheAdmit:
      m.counter("admission.cache_admits").Increment();
      break;
    case TraceEventKind::kCacheAdmitRevoked:
      m.counter("admission.cache_admit_revocations").Increment();
      break;
    case TraceEventKind::kCacheInvalidate:
      m.counter("cache.invalidations").Increment();
      m.counter("cache.invalidated_entries").Increment(event.blocks);
      break;
    case TraceEventKind::kSessionBatched:
      m.counter("sessions.batched").Increment();
      break;
    case TraceEventKind::kSessionPatched:
      m.counter("sessions.patched").Increment();
      m.histogram("sessions.patch_gap_blocks").Record(static_cast<double>(event.gap_blocks));
      break;
    case TraceEventKind::kSessionMerged:
      m.counter("sessions.merged").Increment();
      m.histogram("sessions.merge_runway_blocks")
          .Record(static_cast<double>(event.runway_blocks));
      break;
    case TraceEventKind::kNodeDown:
      m.counter("cluster.nodes_down").Increment();
      break;
    case TraceEventKind::kNodeUp:
      m.counter("cluster.nodes_up").Increment();
      break;
    case TraceEventKind::kFailover:
      m.counter("cluster.failovers").Increment();
      m.histogram("cluster.failover_interruption_usec")
          .Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kReReplicate:
      m.counter("cluster.re_replications").Increment();
      m.counter("cluster.repair_blocks").Increment(event.blocks);
      break;
    case TraceEventKind::kShedLoad:
      m.counter("cluster.viewers_shed").Increment();
      break;
    case TraceEventKind::kSpan:
      // Spans are structural (the analyzer consumes them); only the volume
      // is worth a counter here.
      m.counter("spans.emitted").Increment();
      break;
    case TraceEventKind::kCriticalPath:
      m.counter("critical_path.rounds").Increment();
      if (event.anomalous) {
        m.counter("critical_path.anomalies").Increment();
      }
      if (event.span_stage >= 0) {
        m.counter(std::string("critical_path.dominant.") +
                  SpanStageName(static_cast<SpanStage>(event.span_stage)))
            .Increment();
      }
      m.histogram("critical_path.queue_usec").Record(static_cast<double>(event.stages.queue));
      m.histogram("critical_path.seek_usec").Record(static_cast<double>(event.stages.seek));
      m.histogram("critical_path.transfer_usec")
          .Record(static_cast<double>(event.stages.transfer));
      if (event.stages.retry > 0) {
        m.histogram("critical_path.retry_usec").Record(static_cast<double>(event.stages.retry));
      }
      if (event.stages.merge_patch > 0) {
        m.histogram("critical_path.merge_patch_usec")
            .Record(static_cast<double>(event.stages.merge_patch));
      }
      if (event.stages.append > 0) {
        m.histogram("critical_path.append_usec")
            .Record(static_cast<double>(event.stages.append));
      }
      break;
  }
}

}  // namespace obs
}  // namespace vafs
