#include "src/obs/trace.h"

namespace vafs {
namespace obs {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmitAccepted:
      return "submit_accepted";
    case TraceEventKind::kSubmitRejected:
      return "submit_rejected";
    case TraceEventKind::kActivated:
      return "activated";
    case TraceEventKind::kPause:
      return "pause";
    case TraceEventKind::kResume:
      return "resume";
    case TraceEventKind::kResumeRejected:
      return "resume_rejected";
    case TraceEventKind::kStop:
      return "stop";
    case TraceEventKind::kCompleted:
      return "completed";
    case TraceEventKind::kAdmissionPlan:
      return "admission_plan";
    case TraceEventKind::kAdmissionReject:
      return "admission_reject";
    case TraceEventKind::kRoundStart:
      return "round_start";
    case TraceEventKind::kRequestServiced:
      return "request_serviced";
    case TraceEventKind::kRoundEnd:
      return "round_end";
    case TraceEventKind::kBlockRetried:
      return "block_retried";
    case TraceEventKind::kBlockSkipped:
      return "block_skipped";
    case TraceEventKind::kBlockRelocated:
      return "block_relocated";
    case TraceEventKind::kDiskRead:
      return "disk_read";
    case TraceEventKind::kDiskWrite:
      return "disk_write";
    case TraceEventKind::kDiskFault:
      return "disk_fault";
    case TraceEventKind::kDiskSalvage:
      return "disk_salvage";
    case TraceEventKind::kPowerCut:
      return "power_cut";
    case TraceEventKind::kStrandWrite:
      return "strand_write";
    case TraceEventKind::kRootFlip:
      return "root_flip";
    case TraceEventKind::kJournalAppend:
      return "journal_append";
    case TraceEventKind::kJournalReplay:
      return "journal_replay";
    case TraceEventKind::kFsckFinding:
      return "fsck_finding";
    case TraceEventKind::kRecovery:
      return "recovery";
  }
  return "unknown";
}

void MetricsSink::OnEvent(const TraceEvent& event) {
  MetricsRegistry& m = *registry_;
  switch (event.kind) {
    case TraceEventKind::kSubmitAccepted:
      m.counter("scheduler.submits_accepted").Increment();
      break;
    case TraceEventKind::kSubmitRejected:
      m.counter("scheduler.submits_rejected").Increment();
      break;
    case TraceEventKind::kActivated:
      m.counter("scheduler.activations").Increment();
      break;
    case TraceEventKind::kPause:
      m.counter(event.destructive ? "scheduler.pauses_destructive"
                                  : "scheduler.pauses_nondestructive")
          .Increment();
      break;
    case TraceEventKind::kResume:
      m.counter("scheduler.resumes").Increment();
      break;
    case TraceEventKind::kResumeRejected:
      m.counter("scheduler.resumes_rejected").Increment();
      break;
    case TraceEventKind::kStop:
      m.counter("scheduler.stops").Increment();
      break;
    case TraceEventKind::kCompleted:
      m.counter("scheduler.completions").Increment();
      break;
    case TraceEventKind::kAdmissionPlan:
      m.counter("admission.plans_accepted").Increment();
      m.histogram("admission.transition_steps")
          .Record(static_cast<double>(event.target_k - event.k > 0 ? event.target_k - event.k : 0));
      break;
    case TraceEventKind::kAdmissionReject:
      m.counter("admission.rejections").Increment();
      break;
    case TraceEventKind::kRoundStart:
      break;
    case TraceEventKind::kRequestServiced:
      m.counter("scheduler.blocks_serviced").Increment(event.blocks);
      break;
    case TraceEventKind::kRoundEnd:
      m.counter("scheduler.rounds").Increment();
      m.histogram("scheduler.round_duration_usec").Record(static_cast<double>(event.duration));
      m.histogram("scheduler.round_blocks").Record(static_cast<double>(event.blocks));
      m.gauge("scheduler.current_k").Set(static_cast<double>(event.k));
      m.gauge("scheduler.slots_active").Set(static_cast<double>(event.slots.active));
      m.gauge("scheduler.slots_pending").Set(static_cast<double>(event.slots.pending));
      m.gauge("scheduler.slots_paused_nondestructive")
          .Set(static_cast<double>(event.slots.paused_nondestructive));
      m.gauge("scheduler.slots_paused_destructive")
          .Set(static_cast<double>(event.slots.paused_destructive));
      m.gauge("scheduler.slots_held").Set(static_cast<double>(event.slots.Held()));
      break;
    case TraceEventKind::kBlockRetried:
      m.counter("scheduler.block_retries").Increment();
      m.histogram("scheduler.retry_service_usec").Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kBlockSkipped:
      m.counter("scheduler.blocks_skipped").Increment();
      break;
    case TraceEventKind::kBlockRelocated:
      m.counter("store.blocks_relocated").Increment(event.blocks);
      break;
    case TraceEventKind::kDiskRead:
      m.counter("disk.reads").Increment();
      m.counter("disk.sectors_read").Increment(event.blocks);
      m.histogram("disk.read_service_usec").Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kDiskWrite:
      m.counter("disk.writes").Increment();
      m.counter("disk.sectors_written").Increment(event.blocks);
      m.histogram("disk.write_service_usec").Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kDiskFault:
      m.counter("disk.faults").Increment();
      m.counter("disk.faults." + event.detail).Increment();
      m.histogram("disk.fault_service_usec").Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kDiskSalvage:
      m.counter("disk.salvage_reads").Increment();
      m.histogram("disk.salvage_service_usec").Record(static_cast<double>(event.duration));
      break;
    case TraceEventKind::kPowerCut:
      m.counter("disk.power_cuts").Increment();
      power_cut_seen_ = true;
      break;
    case TraceEventKind::kStrandWrite:
      m.counter("store.strand_blocks_written").Increment();
      if (event.gap_sec >= 0.0) {
        m.histogram("store.strand_gap_ms").Record(event.gap_sec * 1e3);
      }
      break;
    case TraceEventKind::kRootFlip:
      m.counter("persistence.root_flips").Increment();
      m.gauge("persistence.generation").Set(static_cast<double>(event.round));
      break;
    case TraceEventKind::kJournalAppend:
      m.counter("persistence.journal_appends").Increment();
      break;
    case TraceEventKind::kJournalReplay:
      m.counter("persistence.journal_replays").Increment();
      break;
    case TraceEventKind::kFsckFinding:
      m.counter("fsck.findings").Increment();
      m.counter("fsck.findings." + event.detail).Increment();
      break;
    case TraceEventKind::kRecovery:
      m.counter("recovery.completions").Increment();
      if (power_cut_seen_) {
        m.counter("recovery.crash_points_survived").Increment();
        power_cut_seen_ = false;
      }
      break;
  }
}

}  // namespace obs
}  // namespace vafs
