// Bounded flight recorder over the trace stream.
//
// A full TraceLog of a long simulation is too big to keep around just in
// case something goes wrong; rerunning with one attached changes nothing
// about the failure but costs a second run. The FlightRecorder keeps only
// the most recent N events per severity class in fixed rings — critical
// events (power cuts, degraded blocks, fsck findings, recoveries) survive
// much longer than the info-level round chatter that would otherwise push
// them out — and renders a merged, time-ordered dump on demand.
//
// Dumps fire automatically on the first trigger: a critical trace event
// (recovery, power cut, fsck finding), or an external hook — the
// ContinuityAuditor's violation handler and the SloTracker's breach handler
// both call TriggerDump, so the first SLO breach or invariant violation of
// a run produces a post-mortem without any TraceLog attached.

#ifndef VAFS_SRC_OBS_FLIGHT_RECORDER_H_
#define VAFS_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/obs/trace.h"

namespace vafs {
namespace obs {

enum class TraceSeverity {
  kInfo = 0,      // lifecycle, rounds, healthy transfers
  kWarning = 1,   // faults absorbed by retry/relocation, rejections
  kCritical = 2,  // degraded playback, power cuts, fsck findings, recovery
};

const char* TraceSeverityName(TraceSeverity severity);
TraceSeverity ClassifyTraceEvent(const TraceEvent& event);

struct FlightRecorderOptions {
  // Events retained per severity class.
  size_t ring_capacity = 256;
  // When true (default), only the first trigger dumps; later triggers are
  // counted but do not re-fire the handler. Rearm() resets this.
  bool dump_once = true;
};

class FlightRecorder : public TraceSink {
 public:
  using DumpHandler =
      std::function<void(const std::string& reason, const std::string& dump)>;

  explicit FlightRecorder(FlightRecorderOptions options = FlightRecorderOptions());

  void OnEvent(const TraceEvent& event) override;

  void set_dump_handler(DumpHandler handler) { dump_handler_ = std::move(handler); }

  // Renders the merged rings and fires the dump handler (subject to
  // dump_once). External monitors (auditor violations, SLO breaches) call
  // this; critical trace events call it internally.
  void TriggerDump(const std::string& reason);

  // Merged rings, oldest first, one "[severity] summary" line per event.
  std::string Dump() const;

  void Rearm() { dumped_ = false; }

  int64_t events_seen() const { return events_seen_; }
  int64_t dropped(TraceSeverity severity) const {
    return rings_[static_cast<size_t>(severity)].dropped;
  }
  int64_t triggers() const { return triggers_; }
  const std::string& last_dump_reason() const { return last_dump_reason_; }
  const std::string& last_dump() const { return last_dump_; }

 private:
  struct Entry {
    int64_t sequence = 0;
    TraceEvent event;
  };
  struct Ring {
    std::deque<Entry> entries;
    int64_t dropped = 0;
  };

  FlightRecorderOptions options_;
  DumpHandler dump_handler_;
  Ring rings_[3];
  int64_t events_seen_ = 0;
  int64_t triggers_ = 0;
  bool dumped_ = false;
  std::string last_dump_reason_;
  std::string last_dump_;
};

}  // namespace obs
}  // namespace vafs

#endif  // VAFS_SRC_OBS_FLIGHT_RECORDER_H_
