// Media stream descriptions (the paper's Table 1 symbols for each medium).
//
// A medium is characterized by its recording rate (R_v frames/sec for
// video, R_a samples/sec for audio) and the size of one unit (s_vf bits
// per frame, s_as bits per sample). Everything downstream — granularity,
// scattering, admission control — is computed from these two numbers, so
// vaFS handles any continuous medium uniformly.

#ifndef VAFS_SRC_MEDIA_MEDIA_H_
#define VAFS_SRC_MEDIA_MEDIA_H_

#include <cstdint>
#include <string>

#include "src/util/units.h"

namespace vafs {

enum class Medium {
  kVideo,
  kAudio,
};

const char* MediumName(Medium medium);

// Rate and unit-size description of one recorded stream.
struct MediaProfile {
  Medium medium = Medium::kVideo;
  double units_per_sec = 30.0;  // R_v or R_a
  int64_t bits_per_unit = 0;    // s_vf or s_as

  // Stream bandwidth in bits/second.
  double BitRate() const { return units_per_sec * static_cast<double>(bits_per_unit); }

  // Playback duration of one unit in seconds.
  double UnitDuration() const { return 1.0 / units_per_sec; }

  std::string ToString() const;
};

// The paper's testbed video: UVC hardware digitizing NTSC at 480x200
// pixels, 12 bits/pixel, 30 frames/sec, with ~12:1 compression.
MediaProfile UvcCompressedVideo();

// Uncompressed variant of the testbed video (for stress parameters).
MediaProfile UvcRawVideo();

// The paper's testbed audio: 8 KBytes/sec, 8-bit samples.
MediaProfile TelephoneAudio();

// CD-quality stereo audio: 44.1 kHz, 32 bits per (stereo) sample.
MediaProfile CdAudio();

// HDTV-quality video from the paper's Section 3 feasibility argument:
// a stream requiring data rates up to ~2.5 Gbit/s (uncompressed HDTV at
// 60 frames/sec).
MediaProfile HdtvVideo();

}  // namespace vafs

#endif  // VAFS_SRC_MEDIA_MEDIA_H_
