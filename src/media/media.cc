#include "src/media/media.h"

#include <cstdio>

namespace vafs {

const char* MediumName(Medium medium) {
  switch (medium) {
    case Medium::kVideo:
      return "video";
    case Medium::kAudio:
      return "audio";
  }
  return "unknown";
}

std::string MediaProfile::ToString() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%s: %.1f units/s x %lld bits (%.2f Mbit/s)",
                MediumName(medium), units_per_sec, static_cast<long long>(bits_per_unit),
                BitRate() / 1e6);
  return buffer;
}

MediaProfile UvcCompressedVideo() {
  // 480x200 pixels x 12 bpp = 1,152,000 bits/frame raw; the UVC board
  // compresses roughly 12:1, giving ~96,000 bits (12 KB) per frame.
  return MediaProfile{Medium::kVideo, 30.0, 96'000};
}

MediaProfile UvcRawVideo() { return MediaProfile{Medium::kVideo, 30.0, 480 * 200 * 12}; }

MediaProfile TelephoneAudio() {
  // 8 KBytes/sec of 8-bit samples = 8000 samples/sec.
  return MediaProfile{Medium::kAudio, 8000.0, 8};
}

MediaProfile CdAudio() { return MediaProfile{Medium::kAudio, 44'100.0, 32}; }

MediaProfile HdtvVideo() {
  // ~1920x1035 x 24 bpp x 52 frames/sec ~= 2.5 Gbit/s, the figure the
  // paper quotes for one HDTV-quality strand.
  return MediaProfile{Medium::kVideo, 52.0, 1920 * 1035 * 24};
}

}  // namespace vafs
