#include "src/media/vbr_source.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/units.h"

namespace vafs {

VbrVideoSource::VbrVideoSource(const MediaProfile& profile, const VbrProfile& vbr, uint64_t seed)
    : profile_(profile),
      vbr_(vbr),
      seed_(seed),
      peak_frame_bytes_(BitsToBytesCeil(profile.bits_per_unit)) {
  assert(profile_.medium == Medium::kVideo);
  assert(vbr_.group_of_pictures >= 1);
  assert(vbr_.delta_mean_fraction > 0 && vbr_.delta_mean_fraction <= 1.0);
}

double VbrVideoSource::ActivityAt(int64_t index) const {
  // Scenes are fixed-length runs of frames; each scene draws a stable
  // activity level from its own hash, so content is regenerable.
  const double frames_per_scene =
      profile_.units_per_sec / std::max(vbr_.scene_change_per_sec, 1e-6);
  const int64_t scene = static_cast<int64_t>(static_cast<double>(index) / frames_per_scene);
  uint64_t state = seed_ ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(scene + 1));
  const uint64_t word = SplitMix64(state);
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

int64_t VbrVideoSource::FrameBytes(int64_t index) const {
  if (index % vbr_.group_of_pictures == 0) {
    return peak_frame_bytes_;  // intra frame
  }
  // Delta frame: size scales with scene activity around the configured
  // mean fraction, plus per-frame jitter, clamped to [1, peak].
  const double activity = ActivityAt(index);
  uint64_t state = seed_ ^ (0xd1342543de82ef95ULL * static_cast<uint64_t>(index + 1));
  const double jitter =
      0.75 + 0.5 * (static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53);
  const double fraction = vbr_.delta_mean_fraction * (0.25 + 1.5 * activity) * jitter;
  const int64_t bytes =
      static_cast<int64_t>(std::llround(fraction * static_cast<double>(peak_frame_bytes_)));
  return std::clamp<int64_t>(bytes, 1, peak_frame_bytes_);
}

std::vector<uint8_t> VbrVideoSource::FramePayload(int64_t index) const {
  std::vector<uint8_t> payload(static_cast<size_t>(FrameBytes(index)));
  uint64_t state = seed_ ^ (0x632be59bd9b4e019ULL * static_cast<uint64_t>(index + 1));
  size_t i = 0;
  while (i < payload.size()) {
    uint64_t word = SplitMix64(state);
    for (int b = 0; b < 8 && i < payload.size(); ++b, ++i) {
      payload[i] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  return payload;
}

VideoFrame VbrVideoSource::NextFrame() {
  VideoFrame frame;
  frame.index = next_index_;
  frame.payload = FramePayload(next_index_);
  ++next_index_;
  return frame;
}

double VbrVideoSource::MeanFrameBytes(int64_t frames) const {
  assert(frames > 0);
  double total = 0.0;
  for (int64_t i = 0; i < frames; ++i) {
    total += static_cast<double>(FrameBytes(i));
  }
  return total / static_cast<double>(frames);
}

VbrStrandStats AnalyzeVbrBlocks(const std::vector<int64_t>& block_bits) {
  VbrStrandStats stats;
  if (block_bits.empty()) {
    return stats;
  }
  double total = 0.0;
  for (int64_t bits : block_bits) {
    total += static_cast<double>(bits);
    stats.peak_block_bits = std::max(stats.peak_block_bits, bits);
  }
  stats.mean_block_bits = total / static_cast<double>(block_bits.size());

  // Worst burst: maximum over windows of sum(actual - mean). Classic
  // maximum-subarray over the centered series.
  double running = 0.0;
  double worst = 0.0;
  for (int64_t bits : block_bits) {
    running += static_cast<double>(bits) - stats.mean_block_bits;
    if (running < 0) {
      running = 0;
    }
    worst = std::max(worst, running);
  }
  stats.worst_burst_excess_bits = worst;
  return stats;
}

int64_t VbrStrandStats::RequiredReadAhead(double transfer_rate_bits_per_sec,
                                          double block_duration_sec) const {
  // The burst delays transfer completion by excess/R_dt seconds relative
  // to the mean-rate budget; each buffered block buys one block duration.
  const double delay_sec = worst_burst_excess_bits / transfer_rate_bits_per_sec;
  return 1 + static_cast<int64_t>(std::ceil(delay_sec / block_duration_sec));
}

}  // namespace vafs
