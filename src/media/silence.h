// Energy-threshold silence detection (paper Section 4, silence elimination).
//
// "In silence elimination, if the average energy level over a block falls
// below a threshold, no audio data is stored for that duration." The
// detector computes mean squared deviation from the 8-bit midpoint over a
// window and compares it against a threshold.

#ifndef VAFS_SRC_MEDIA_SILENCE_H_
#define VAFS_SRC_MEDIA_SILENCE_H_

#include <cstdint>
#include <span>

namespace vafs {

class SilenceDetector {
 public:
  // `energy_threshold` is the mean squared amplitude (deviation from the
  // 128 midpoint, squared, averaged over the window) below which a window
  // counts as silent. The default separates the synthetic speech profile's
  // speech (~amplitude 90) from its residual noise (~amplitude 2) with a
  // wide margin.
  explicit SilenceDetector(double energy_threshold = 100.0)
      : energy_threshold_(energy_threshold) {}

  double energy_threshold() const { return energy_threshold_; }

  // Average energy of the window: mean of (sample - 128)^2.
  static double AverageEnergy(std::span<const uint8_t> samples);

  // True if the window's average energy is below the threshold.
  bool IsSilent(std::span<const uint8_t> samples) const {
    return AverageEnergy(samples) < energy_threshold_;
  }

 private:
  double energy_threshold_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MEDIA_SILENCE_H_
